// Whole-tree lock-order analysis behind vlora_lint --lock-order.
//
// Unlike the per-line rules in lint_rules.h this is a file-graph pass: it
// parses every ranked vlora::Mutex declaration, the REQUIRES / ACQUIRE /
// EXCLUDES thread-safety annotations, and the MutexLock nesting inside .cc
// function bodies, then checks that every implied acquisition edge strictly
// decreases in rank. Because the declared ranks are a total order, rank
// consistency is exactly the DAG property — any violating edge is reported
// together with the conflicting chain that closes the cycle when one exists.
//
// The canonical hierarchy lives in tools/lock_hierarchy.toml, which is also
// what DESIGN.md §9 documents and what the runtime checker in
// src/common/sync.h enforces in VLORA_LOCK_RANK_CHECKS builds. This pass
// cross-checks all three views:
//
//   lock-order          an acquisition edge that does not strictly decrease
//                       in rank (same rank counts: two same-rank locks taken
//                       in opposite orders by two threads deadlock)
//   lock-decl-mismatch  a Mutex declaration whose rank disagrees with the
//                       [locks] table, a ranked lock missing from the table,
//                       or a stale table entry with no declaration behind it
//   lock-unranked       a Mutex under src/ declared without a Rank
//   rank-enum-drift     enum class Rank in sync.h and [ranks] diverged
//
// The analysis is a heuristic over comment-stripped source (no real C++
// parse): lambda bodies are analysed as separate contexts with an empty held
// set (they run on other threads), and call edges are only created when the
// callee resolves confidently (same class, a typed member / local receiver,
// or a method name defined by exactly one class). Unresolved calls are
// skipped, trading recall for zero false positives. The shared machinery
// (declaration index, body walker, fixpoint) lives in tools/callgraph.h; this
// pass keeps only the lock-specific syntax and checks.

#ifndef VLORA_TOOLS_LOCK_ORDER_H_
#define VLORA_TOOLS_LOCK_ORDER_H_

#include <map>
#include <string>
#include <vector>

#include "tools/callgraph.h"
#include "tools/lint_rules.h"

namespace vlora {
namespace lint {

struct LockHierarchy {
  // Rank name -> numeric value, e.g. "kCluster" -> 60.
  std::map<std::string, int> ranks;
  // Qualified lock name -> rank name, e.g. "Replica::mutex_" -> "kReplicaIngress".
  std::map<std::string, std::string> locks;
};

// Parses the minimal TOML subset used by tools/lock_hierarchy.toml:
// [section] headers, `key = value` with optionally quoted keys and values,
// integer or string values, and # comments. Returns false and fills *error
// on malformed input or on a lock referencing an undeclared rank.
bool ParseLockHierarchy(const std::string& content, LockHierarchy* out, std::string* error);

// Runs the lock-order analysis over the given files against the hierarchy.
// (SourceFile is the framework type from tools/callgraph.h.)
std::vector<Finding> CheckLockOrder(const LockHierarchy& hierarchy,
                                    const std::vector<SourceFile>& files);

// Filesystem wrapper: loads `toml_path`, recursively collects .h/.cc/.cpp
// files under each root, and runs CheckLockOrder. IO problems surface as
// io-error findings instead of crashes.
std::vector<Finding> CheckLockOrderOverTree(const std::string& toml_path,
                                            const std::vector<std::string>& roots);

}  // namespace lint
}  // namespace vlora

#endif  // VLORA_TOOLS_LOCK_ORDER_H_

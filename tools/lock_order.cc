#include "tools/lock_order.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "tools/callgraph.h"

namespace vlora {
namespace lint {
namespace {

// Rule names assembled the same way lint_rules.cc does, so the whole-tree
// per-line scan never trips over this file's own pattern text.
const char kLockOrder[] = "lock-order";
const char kDeclMismatch[] = "lock-decl-mismatch";
const char kUnranked[] = "lock-unranked";
const char kEnumDrift[] = "rank-enum-drift";
const char kIoError[] = "io-error";

bool IsSyncHeader(const std::string& path) {
  return PathEndsWith(path, "src/common/sync.h") || path == "sync.h";
}

bool IsUnderSrc(const std::string& path) {
  return path.rfind("src/", 0) == 0 || path.find("/src/") != std::string::npos;
}

struct LockDecl {
  std::string rank_name;
  std::string file;
  int line = 0;
};

struct FuncFacts {
  std::set<std::string> requires_locks;  // caller must already hold (REQUIRES)
  std::set<std::string> acquires;        // acquired inside (ACQUIRE / EXCLUDES / body locks)
};

struct Site {
  std::string file;
  int line = 0;
};

struct AcqEvent {
  std::string lock;
  std::vector<std::string> held;
  Site site;
  bool suppressed = false;
};

struct CallEvent {
  std::string caller;
  std::string callee;
  std::vector<std::string> held;
  Site site;
  bool suppressed = false;
};

struct Analysis {
  std::map<std::string, LockDecl> decls;  // "Class::mu_" or global name
  std::map<std::string, int> rank_enum;   // from sync.h
  bool saw_rank_enum = false;
  std::string sync_path;
  std::map<std::string, FuncFacts> facts;  // "Class::Method"
  std::vector<AcqEvent> acq_events;
  std::vector<CallEvent> call_events;
  std::vector<Finding> findings;
};

const std::regex& RankedMutexRe() {
  // `Mutex name VLORA_...(...) {Rank::kX, ...}` — the annotation macro between
  // the member name and the initializer brace is optional (ACQUIRED_BEFORE).
  static const std::regex re(
      "\\bMutex\\s+(\\w+)\\s*(?:VLORA_\\w+\\s*\\([^)]*\\)\\s*)*\\{\\s*Rank\\s*::\\s*(\\w+)");
  return re;
}

const std::regex& AnyMutexDeclRe() {
  static const std::regex re("\\bMutex\\s+(\\w+)\\s*(?:VLORA_\\w+\\s*\\([^)]*\\)\\s*)*[;{(=]");
  return re;
}

const std::regex& MutexLockUseRe() {
  static const std::regex re("\\bMutex" "Lock\\s+\\w+\\s*\\(\\s*&\\s*([^()]+)\\)");
  return re;
}

// ---------------------------------------------------------------------------
// Pass 1: declarations (via the callgraph framework) + the rank enum.
// ---------------------------------------------------------------------------

void ScanRankEnum(const SourceFile& file, Analysis* a) {
  a->sync_path = file.path;
  bool in_block = false;
  bool in_enum = false;
  static const std::regex enum_start("enum\\s+class\\s+Rank\\b");
  static const std::regex enumerator("\\b(k\\w+)\\s*=\\s*(-?\\d+)");
  for (const std::string& raw : SplitLines(file.content)) {
    const std::string code = BlankStrings(StripComments(raw, &in_block));
    if (!in_enum) {
      if (std::regex_search(code, enum_start)) {
        in_enum = true;
        a->saw_rank_enum = true;
      }
      continue;
    }
    if (code.find("};") != std::string::npos) {
      break;
    }
    std::smatch m;
    std::string rest = code;
    while (std::regex_search(rest, m, enumerator)) {
      a->rank_enum[m[1].str()] = std::stoi(m[2].str());
      rest = m.suffix().str();
    }
  }
}

// The per-line declaration hook: ranked / unranked Mutex members.
void ScanMutexDeclLine(Analysis* a, const std::string& current_class, const std::string& code,
                       const std::string& raw, const std::string& path, int line_no) {
  std::smatch mm;
  if (std::regex_search(code, mm, RankedMutexRe())) {
    const std::string qual =
        current_class.empty() ? mm[1].str() : current_class + "::" + mm[1].str();
    a->decls[qual] = LockDecl{mm[2].str(), path, line_no};
  } else if (std::regex_search(code, mm, AnyMutexDeclRe())) {
    if (IsUnderSrc(path) && !IsSuppressed(raw, kUnranked)) {
      const std::string qual =
          current_class.empty() ? mm[1].str() : current_class + "::" + mm[1].str();
      a->findings.push_back(
          {kUnranked, path, line_no,
           "Mutex '" + qual + "' declared without a Rank; every mutex under src/ must "
           "carry one (see tools/lock_hierarchy.toml)"});
    }
  }
}

// Lock annotations (REQUIRES / ACQUIRE / EXCLUDES) out of the framework's
// generic annotation index, lock names qualified by the declaring class.
void BuildFuncFacts(const CodeIndex& index, Analysis* a) {
  for (const auto& [qual, annos] : index.annotations) {
    const size_t sep = qual.rfind("::");
    const std::string cls = sep == std::string::npos ? "" : qual.substr(0, sep);
    FuncFacts& facts = a->facts[qual];
    for (const SigAnnotation& anno : annos) {
      if (anno.kind != "REQUIRES" && anno.kind != "ACQUIRE" && anno.kind != "EXCLUDES") {
        continue;
      }
      std::istringstream args(anno.args);
      std::string arg;
      while (std::getline(args, arg, ',')) {
        arg = TrimText(arg);
        while (!arg.empty() && (arg[0] == '&' || arg[0] == '*')) {
          arg = TrimText(arg.substr(1));
        }
        if (arg.rfind("this->", 0) == 0) {
          arg = arg.substr(6);
        }
        if (arg.empty()) {
          continue;
        }
        const std::string lock = cls.empty() ? arg : cls + "::" + arg;
        if (anno.kind == "REQUIRES") {
          facts.requires_locks.insert(lock);
        } else {
          // EXCLUDES is this codebase's idiom for "I lock this inside":
          // treat it like ACQUIRE for edge discovery.
          facts.acquires.insert(lock);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: function bodies, as a BodyClient holding the held-lock stack.
// ---------------------------------------------------------------------------

class LockBodyClient : public BodyClient {
 public:
  LockBodyClient(Analysis* a, const CodeIndex* index) : a_(a), index_(index) {}

  void ResetFile() { held_.clear(); }

  void OnFunctionEnter(const BodyWalker& walker, const std::string& signature,
                       int body_depth) override {
    (void)signature;
    held_.clear();
    auto facts = a_->facts.find(walker.fn_qual());
    if (facts != a_->facts.end()) {
      for (const std::string& lock : facts->second.requires_locks) {
        held_.push_back({lock, body_depth});
      }
    }
  }

  void OnBodyText(const BodyWalker& walker, const std::string& text, const std::string& raw,
                  int line_no, int depth_at_start) override {
    const bool suppressed_line = IsSuppressed(raw, kLockOrder);
    std::smatch m;
    std::string rest = text;
    while (std::regex_search(rest, m, MutexLockUseRe())) {
      const std::string lock = ResolveLockExpr(walker, m[1].str());
      if (!lock.empty()) {
        a_->acq_events.push_back({lock, HeldSnapshot(), {walker.path(), line_no},
                                  suppressed_line});
        a_->facts[walker.fn_qual()].acquires.insert(lock);
        held_.push_back({lock, depth_at_start});
      }
      rest = m.suffix().str();
    }
  }

  void OnCall(const BodyWalker& walker, const std::string& callee, const std::string& raw,
              int line_no) override {
    a_->call_events.push_back({walker.fn_qual(), callee, HeldSnapshot(),
                               {walker.path(), line_no}, IsSuppressed(raw, kLockOrder)});
  }

  void OnLineEnd(const BodyWalker& walker, int depth_after) override {
    (void)walker;
    while (!held_.empty() && held_.back().entry_depth > depth_after) {
      held_.pop_back();
    }
  }

  void OnFunctionExit(const BodyWalker& walker) override {
    (void)walker;
    held_.clear();
  }

 private:
  struct HeldLock {
    std::string lock;
    int entry_depth;
  };

  std::vector<std::string> HeldSnapshot() const {
    std::vector<std::string> out;
    out.reserve(held_.size());
    for (const HeldLock& h : held_) {
      out.push_back(h.lock);
    }
    return out;
  }

  // Resolves `expr` from `MutexLock lock(&expr)` to a declared lock name.
  std::string ResolveLockExpr(const BodyWalker& walker, const std::string& expr_in) const {
    const std::string expr = TrimText(expr_in);
    static const std::regex last_ident("(\\w+)\\s*$");
    std::smatch m;
    if (!std::regex_search(expr, m, last_ident)) {
      return "";
    }
    const std::string member = m[1].str();
    static const std::regex first_ident("^([A-Za-z_]\\w*)");
    std::smatch f;
    const bool has_receiver =
        expr.find('.') != std::string::npos || expr.find("->") != std::string::npos;
    if (has_receiver && std::regex_search(expr, f, first_ident) && f[1].str() != member) {
      const std::string cls = walker.ReceiverClass(f[1].str());
      if (!cls.empty() && a_->decls.count(cls + "::" + member)) {
        return cls + "::" + member;
      }
      return "";
    }
    if (a_->decls.count(walker.fn_class() + "::" + member)) {
      return walker.fn_class() + "::" + member;
    }
    if (a_->decls.count(member)) {
      return member;  // namespace-scope lock, e.g. g_emit_mutex
    }
    return "";
  }

  Analysis* a_;
  const CodeIndex* index_;
  std::vector<HeldLock> held_;
};

// ---------------------------------------------------------------------------
// Edge construction and checks.
// ---------------------------------------------------------------------------

struct Edge {
  std::string from;
  std::string to;
  Site site;
  std::string via;  // callee for call-derived edges, empty for direct nesting
  bool suppressed = false;
};

int RankOf(const LockHierarchy& h, const Analysis& a, const std::string& lock,
           std::string* rank_name) {
  auto in_table = h.locks.find(lock);
  std::string name;
  if (in_table != h.locks.end()) {
    name = in_table->second;
  } else {
    auto decl = a.decls.find(lock);
    if (decl == a.decls.end()) {
      return -1;
    }
    name = decl->second.rank_name;
  }
  auto rank = h.ranks.find(name);
  if (rank == h.ranks.end()) {
    return -1;
  }
  *rank_name = name;
  return rank->second;
}

void CheckDeclarations(const LockHierarchy& h, Analysis* a) {
  for (const auto& [qual, decl] : a->decls) {
    auto in_table = h.locks.find(qual);
    if (in_table == h.locks.end()) {
      a->findings.push_back({kDeclMismatch, decl.file, decl.line,
                             "ranked lock '" + qual + "' (" + decl.rank_name +
                                 ") is missing from [locks] in tools/lock_hierarchy.toml"});
    } else if (in_table->second != decl.rank_name) {
      a->findings.push_back({kDeclMismatch, decl.file, decl.line,
                             "lock '" + qual + "' declared with rank " + decl.rank_name +
                                 " but tools/lock_hierarchy.toml says " + in_table->second});
    }
    if (h.ranks.find(decl.rank_name) == h.ranks.end()) {
      a->findings.push_back({kDeclMismatch, decl.file, decl.line,
                             "lock '" + qual + "' uses rank " + decl.rank_name +
                                 " which is not a [ranks] entry"});
    }
  }
  for (const auto& [lock, rank] : h.locks) {
    (void)rank;
    if (a->decls.find(lock) == a->decls.end()) {
      a->findings.push_back({kDeclMismatch, "tools/lock_hierarchy.toml", 0,
                             "stale [locks] entry '" + lock +
                                 "': no ranked Mutex declaration found for it"});
    }
  }
  if (a->saw_rank_enum) {
    for (const auto& [name, value] : h.ranks) {
      auto in_enum = a->rank_enum.find(name);
      if (in_enum == a->rank_enum.end()) {
        a->findings.push_back({kEnumDrift, a->sync_path, 0,
                               "rank " + name + " is in tools/lock_hierarchy.toml but not in "
                               "enum class Rank (src/common/sync.h)"});
      } else if (in_enum->second != value) {
        a->findings.push_back({kEnumDrift, a->sync_path, 0,
                               "rank " + name + " is " + std::to_string(in_enum->second) +
                                   " in enum class Rank but " + std::to_string(value) +
                                   " in tools/lock_hierarchy.toml"});
      }
    }
    for (const auto& [name, value] : a->rank_enum) {
      (void)value;
      if (h.ranks.find(name) == h.ranks.end()) {
        a->findings.push_back({kEnumDrift, a->sync_path, 0,
                               "rank " + name + " is in enum class Rank (src/common/sync.h) "
                               "but not in tools/lock_hierarchy.toml"});
      }
    }
  }
}

void CheckEdges(const LockHierarchy& h, Analysis* a) {
  // Transitive may-acquire sets over the call graph (fixpoint).
  std::map<std::string, std::set<std::string>> may_acquire;
  std::map<std::string, std::set<std::string>> callees;
  for (const auto& [fn, facts] : a->facts) {
    may_acquire[fn] = facts.acquires;
  }
  for (const CallEvent& call : a->call_events) {
    callees[call.caller].insert(call.callee);
  }
  PropagateTransitive(callees, &may_acquire);

  std::vector<Edge> edges;
  for (const AcqEvent& acq : a->acq_events) {
    for (const std::string& held : acq.held) {
      edges.push_back({held, acq.lock, acq.site, "", acq.suppressed});
    }
  }
  for (const CallEvent& call : a->call_events) {
    if (call.held.empty()) {
      continue;
    }
    auto acquired = may_acquire.find(call.callee);
    if (acquired == may_acquire.end()) {
      continue;
    }
    for (const std::string& held : call.held) {
      for (const std::string& lock : acquired->second) {
        // A callee that REQUIRES the held lock re-lists it via EXCLUDES
        // nowhere in this tree; a true self-edge is a self-deadlock and
        // stays reportable.
        edges.push_back({held, lock, call.site, call.callee, call.suppressed});
      }
    }
  }

  // Adjacency for cycle-path reporting.
  std::map<std::string, std::set<std::string>> adj;
  for (const Edge& e : edges) {
    adj[e.from].insert(e.to);
  }

  std::set<std::string> reported;  // "from|to"
  for (const Edge& e : edges) {
    std::string from_rank, to_rank;
    const int from_value = RankOf(h, *a, e.from, &from_rank);
    const int to_value = RankOf(h, *a, e.to, &to_rank);
    if (from_value < 0 || to_value < 0) {
      continue;  // unranked operand already reported by the decl checks
    }
    if (to_value < from_value) {
      continue;  // strictly decreasing: legal
    }
    if (e.suppressed) {
      continue;
    }
    const std::string key = e.from + "|" + e.to;
    if (!reported.insert(key).second) {
      continue;
    }
    std::string msg = "acquiring '" + e.to + "' (" + to_rank + "/" + std::to_string(to_value) +
                      ") while holding '" + e.from + "' (" + from_rank + "/" +
                      std::to_string(from_value) + "): lock rank must strictly decrease";
    if (!e.via.empty()) {
      msg += " (via call to '" + e.via + "')";
    }
    if (e.from == e.to) {
      msg += " [same mutex: self-deadlock]";
    } else {
      // BFS back from `to` to `from`: a path closes the cycle and is the
      // conflicting chain worth showing.
      std::map<std::string, std::string> parent;
      std::deque<std::string> queue{e.to};
      parent[e.to] = "";
      bool found = false;
      while (!queue.empty() && !found) {
        const std::string node = queue.front();
        queue.pop_front();
        for (const std::string& next : adj[node]) {
          if (parent.count(next)) {
            continue;
          }
          parent[next] = node;
          if (next == e.from) {
            found = true;
            break;
          }
          queue.push_back(next);
        }
      }
      if (found) {
        std::vector<std::string> chain;
        for (std::string node = e.from; !node.empty(); node = parent[node]) {
          chain.push_back(node);
          if (node == e.to) {
            break;
          }
        }
        std::reverse(chain.begin(), chain.end());
        msg += "; cycle: ";
        for (const std::string& node : chain) {
          msg += node + " -> ";
        }
        msg += e.to;
      }
    }
    a->findings.push_back({kLockOrder, e.site.file, e.site.line, msg});
  }
}

}  // namespace

bool ParseLockHierarchy(const std::string& content, LockHierarchy* out, std::string* error) {
  out->ranks.clear();
  out->locks.clear();
  std::vector<TomlEntry> entries;
  if (!ParseTomlTables(content, {"ranks", "locks"}, &entries, error)) {
    return false;
  }
  for (const TomlEntry& entry : entries) {
    if (entry.section == "ranks") {
      try {
        size_t used = 0;
        const int parsed = std::stoi(entry.value, &used);
        if (used != entry.value.size()) {
          throw std::invalid_argument(entry.value);
        }
        out->ranks[entry.key] = parsed;
      } catch (const std::exception&) {
        *error = "line " + std::to_string(entry.line) + ": rank value for " + entry.key +
                 " is not an integer";
        return false;
      }
    } else {
      out->locks[entry.key] = entry.value;
    }
  }
  for (const auto& [lock, rank] : out->locks) {
    if (out->ranks.find(rank) == out->ranks.end()) {
      *error = "lock \"" + lock + "\" references undeclared rank " + rank;
      return false;
    }
  }
  return true;
}

std::vector<Finding> CheckLockOrder(const LockHierarchy& hierarchy,
                                    const std::vector<SourceFile>& files) {
  Analysis a;
  // The lock-order pass keeps the original narrow posture: lambdas are
  // separate contexts, unresolved calls are skipped, free functions are not
  // tracked. sync.h defines the lock primitives themselves, so only its rank
  // enum is read.
  ScanOptions options;
  options.index_file = [](const std::string& path) { return !IsSyncHeader(path); };
  for (const SourceFile& file : files) {
    if (IsSyncHeader(file.path)) {
      ScanRankEnum(file, &a);
    }
  }
  CodeIndex index;
  BuildCodeIndex(files, options, &index,
                 [&a](const std::string& current_class, const std::string& code,
                      const std::string& raw, const std::string& path, int line_no) {
                   ScanMutexDeclLine(&a, current_class, code, raw, path, line_no);
                 });
  BuildFuncFacts(index, &a);
  for (const SourceFile& file : files) {
    if (PathEndsWith(file.path, ".cc") || PathEndsWith(file.path, ".cpp")) {
      IndexDefinitions(file, options, &index);
    }
  }
  LockBodyClient client(&a, &index);
  for (const SourceFile& file : files) {
    if (PathEndsWith(file.path, ".cc") || PathEndsWith(file.path, ".cpp")) {
      client.ResetFile();
      BodyWalker walker(&index, &options, &client);
      walker.ScanFile(file);
    }
  }
  CheckDeclarations(hierarchy, &a);
  CheckEdges(hierarchy, &a);
  std::sort(a.findings.begin(), a.findings.end(), [](const Finding& x, const Finding& y) {
    if (x.file != y.file) {
      return x.file < y.file;
    }
    if (x.line != y.line) {
      return x.line < y.line;
    }
    return x.rule < y.rule;
  });
  return a.findings;
}

std::vector<Finding> CheckLockOrderOverTree(const std::string& toml_path,
                                            const std::vector<std::string>& roots) {
  std::ifstream toml_stream(toml_path);
  if (!toml_stream) {
    return {{kIoError, toml_path, 0, "cannot open lock hierarchy file"}};
  }
  std::ostringstream toml_buf;
  toml_buf << toml_stream.rdbuf();
  LockHierarchy hierarchy;
  std::string error;
  if (!ParseLockHierarchy(toml_buf.str(), &hierarchy, &error)) {
    return {{kIoError, toml_path, 0, "malformed lock hierarchy: " + error}};
  }
  std::vector<Finding> findings;
  const std::vector<SourceFile> files = LoadSourceTree(roots, &findings);
  std::vector<Finding> analysis = CheckLockOrder(hierarchy, files);
  findings.insert(findings.end(), analysis.begin(), analysis.end());
  return findings;
}

}  // namespace lint
}  // namespace vlora

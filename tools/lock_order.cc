#include "tools/lock_order.h"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace vlora {
namespace lint {
namespace {

// Rule names assembled the same way lint_rules.cc does, so the whole-tree
// per-line scan never trips over this file's own pattern text.
const char kLockOrder[] = "lock-order";
const char kDeclMismatch[] = "lock-decl-mismatch";
const char kUnranked[] = "lock-unranked";
const char kEnumDrift[] = "rank-enum-drift";
const char kIoError[] = "io-error";

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsSyncHeader(const std::string& path) {
  return EndsWith(path, "src/common/sync.h") || path == "sync.h";
}

bool IsUnderSrc(const std::string& path) {
  return path.rfind("src/", 0) == 0 || path.find("/src/") != std::string::npos;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Blanks out the contents of string and char literals (quotes stay, so token
// boundaries survive). Run after StripComments; keeps brace counting and the
// regex scans from reading literal text like lock names as code.
std::string BlankStrings(const std::string& code) {
  std::string out = code;
  bool in_string = false;
  char quote = '"';
  for (size_t i = 0; i < out.size(); ++i) {
    if (in_string) {
      if (out[i] == '\\') {
        out[i] = ' ';
        if (i + 1 < out.size()) {
          out[i + 1] = ' ';
          ++i;
        }
        continue;
      }
      if (out[i] == quote) {
        in_string = false;
        continue;
      }
      out[i] = ' ';
    } else if (out[i] == '"' || out[i] == '\'') {
      in_string = true;
      quote = out[i];
    }
  }
  return out;
}

int CountChar(const std::string& s, char c) {
  return static_cast<int>(std::count(s.begin(), s.end(), c));
}

bool Suppressed(const std::string& raw_line, const char* rule) {
  const std::string marker = std::string("vlora-lint: allow(") + rule + ")";
  return raw_line.find(marker) != std::string::npos;
}

// Last CamelCase identifier in a declaration's type text — unwraps smart
// pointers and containers ("std::vector<std::unique_ptr<Replica>>" -> Replica).
std::string LastClassIdent(const std::string& type_text) {
  static const std::regex ident_re("\\b([A-Z]\\w*)\\b");
  std::string last;
  for (std::sregex_iterator it(type_text.begin(), type_text.end(), ident_re), end; it != end;
       ++it) {
    last = (*it)[1].str();
  }
  return last;
}

struct LockDecl {
  std::string rank_name;
  std::string file;
  int line = 0;
};

struct FuncFacts {
  std::set<std::string> requires_locks;  // caller must already hold (REQUIRES)
  std::set<std::string> acquires;        // acquired inside (ACQUIRE / EXCLUDES / body locks)
};

struct Site {
  std::string file;
  int line = 0;
};

struct AcqEvent {
  std::string lock;
  std::vector<std::string> held;
  Site site;
  bool suppressed = false;
};

struct CallEvent {
  std::string caller;
  std::string callee;
  std::vector<std::string> held;
  Site site;
  bool suppressed = false;
};

struct Analysis {
  std::map<std::string, LockDecl> decls;              // "Class::mu_" or global name
  std::map<std::string, int> rank_enum;               // from sync.h
  bool saw_rank_enum = false;
  std::string sync_path;
  std::map<std::string, std::string> member_types;    // "Class::member_" -> type class
  std::set<std::string> known_funcs;                  // "Class::Method"
  std::map<std::string, std::set<std::string>> method_classes;  // method -> classes
  std::map<std::string, FuncFacts> facts;             // "Class::Method"
  std::vector<AcqEvent> acq_events;
  std::vector<CallEvent> call_events;
  std::vector<Finding> findings;
};

const std::regex& ClassStartRe() {
  static const std::regex re("\\b(class|struct)\\s+(?:\\[\\[\\w+\\]\\]\\s+)?([A-Za-z_]\\w*)");
  return re;
}

const std::regex& RankedMutexRe() {
  // `Mutex name VLORA_...(...) {Rank::kX, ...}` — the annotation macro between
  // the member name and the initializer brace is optional (ACQUIRED_BEFORE).
  static const std::regex re(
      "\\bMutex\\s+(\\w+)\\s*(?:VLORA_\\w+\\s*\\([^)]*\\)\\s*)*\\{\\s*Rank\\s*::\\s*(\\w+)");
  return re;
}

const std::regex& AnyMutexDeclRe() {
  static const std::regex re("\\bMutex\\s+(\\w+)\\s*(?:VLORA_\\w+\\s*\\([^)]*\\)\\s*)*[;{(=]");
  return re;
}

const std::regex& MemberDeclRe() {
  static const std::regex re(
      "^\\s*(?:mutable\\s+)?([A-Za-z_][\\w:]*(?:\\s*<[^;]*>)?[\\s*&]+)(\\w+_)\\s*(?:[;={]|VLORA_)");
  return re;
}

const std::regex& AnnotatedSigRe() {
  // `Name(params) const VLORA_X(...) VLORA_Y(...) {` or `...;` — one level of
  // nested parens inside the parameter list is enough for this tree.
  static const std::regex re(
      "([A-Za-z_]\\w*)\\s*\\(((?:[^()]|\\([^()]*\\))*)\\)\\s*(?:const\\b\\s*)?"
      "((?:VLORA_\\w+\\s*\\([^()]*\\)\\s*)+)[;{]");
  return re;
}

const std::regex& AnnotationRe() {
  static const std::regex re("VLORA_(\\w+)\\s*\\(([^()]*)\\)");
  return re;
}

const std::regex& DefStartRe() {
  static const std::regex re("\\b([A-Z]\\w*)::(~?\\w+)\\s*\\(");
  return re;
}

const std::regex& MutexLockUseRe() {
  static const std::regex re("\\bMutex" "Lock\\s+\\w+\\s*\\(\\s*&\\s*([^()]+)\\)");
  return re;
}

const std::regex& MemberCallRe() {
  static const std::regex re(
      "\\b([A-Za-z_]\\w*)\\s*((?:\\[[^\\]]*\\])*)\\s*(?:\\.|->)\\s*([A-Za-z_]\\w*)\\s*\\(");
  return re;
}

const std::regex& BareCallRe() {
  static const std::regex re("(?:^|[^.\\w:>])([A-Za-z_]\\w*)\\s*\\(");
  return re;
}

const std::regex& LambdaOpenRe() {
  static const std::regex re(
      "\\[[^\\]]*\\]\\s*(?:\\((?:[^()]|\\([^()]*\\))*\\))?\\s*(?:mutable\\s*)?"
      "(?:->\\s*[\\w:<>]+\\s*)?\\{");
  return re;
}

const std::regex& TypedLocalRe() {
  static const std::regex re("(?:^|[(\\s])(?:const\\s+)?([A-Z]\\w*)\\s*[*&]\\s*(\\w+)\\s*[=:]");
  return re;
}

const std::regex& AutoRangeForRe() {
  static const std::regex re("for\\s*\\(\\s*(?:const\\s+)?auto[*&]?\\s+(\\w+)\\s*:\\s*(\\w+)");
  return re;
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::istringstream stream(content);
  std::string line;
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Pass 1: declarations, annotations, member types (all files).
// ---------------------------------------------------------------------------

void ScanRankEnum(const SourceFile& file, Analysis* a) {
  a->sync_path = file.path;
  bool in_block = false;
  bool in_enum = false;
  static const std::regex enum_start("enum\\s+class\\s+Rank\\b");
  static const std::regex enumerator("\\b(k\\w+)\\s*=\\s*(-?\\d+)");
  for (const std::string& raw : SplitLines(file.content)) {
    const std::string code = BlankStrings(StripComments(raw, &in_block));
    if (!in_enum) {
      if (std::regex_search(code, enum_start)) {
        in_enum = true;
        a->saw_rank_enum = true;
      }
      continue;
    }
    if (code.find("};") != std::string::npos) {
      break;
    }
    std::smatch m;
    std::string rest = code;
    while (std::regex_search(rest, m, enumerator)) {
      a->rank_enum[m[1].str()] = std::stoi(m[2].str());
      rest = m.suffix().str();
    }
  }
}

void ScanDeclarations(const SourceFile& file, Analysis* a) {
  if (IsSyncHeader(file.path)) {
    ScanRankEnum(file, a);
    return;  // sync.h defines the primitives themselves; nothing to index
  }
  struct ClassFrame {
    std::string name;
    int depth;
  };
  std::vector<ClassFrame> stack;
  int depth = 0;
  bool in_block = false;
  std::string pending_class;
  std::string decl_buf;
  const std::vector<std::string> raw_lines = SplitLines(file.content);
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& raw = raw_lines[i];
    const std::string code = BlankStrings(StripComments(raw, &in_block));
    const int line_no = static_cast<int>(i) + 1;
    const std::string current_class = stack.empty() ? "" : stack.back().name;

    // Class/struct tracking (enum class is not a class scope).
    std::smatch cm;
    if (code.find("enum") == std::string::npos && std::regex_search(code, cm, ClassStartRe())) {
      const size_t after = static_cast<size_t>(cm.position(0) + cm.length(0));
      const size_t brace = code.find('{', after);
      const size_t semi = code.find(';', after);
      if (brace != std::string::npos && (semi == std::string::npos || brace < semi)) {
        stack.push_back({cm[2].str(), depth});
      } else if (semi == std::string::npos) {
        pending_class = cm[2].str();
      }
    } else if (!pending_class.empty()) {
      const size_t brace = code.find('{');
      const size_t semi = code.find(';');
      if (brace != std::string::npos && (semi == std::string::npos || brace < semi)) {
        stack.push_back({pending_class, depth});
        pending_class.clear();
      } else if (semi != std::string::npos) {
        pending_class.clear();
      }
    }

    // Mutex declarations.
    std::smatch mm;
    if (std::regex_search(code, mm, RankedMutexRe())) {
      const std::string qual =
          current_class.empty() ? mm[1].str() : current_class + "::" + mm[1].str();
      a->decls[qual] = LockDecl{mm[2].str(), file.path, line_no};
    } else if (std::regex_search(code, mm, AnyMutexDeclRe())) {
      if (IsUnderSrc(file.path) && !Suppressed(raw, kUnranked)) {
        const std::string qual =
            current_class.empty() ? mm[1].str() : current_class + "::" + mm[1].str();
        a->findings.push_back(
            {kUnranked, file.path, line_no,
             "Mutex '" + qual + "' declared without a Rank; every mutex under src/ must "
             "carry one (see tools/lock_hierarchy.toml)"});
      }
    }

    // Member types for call-receiver resolution.
    if (!current_class.empty()) {
      std::smatch tm;
      if (std::regex_search(code, tm, MemberDeclRe())) {
        const std::string type = LastClassIdent(tm[1].str());
        if (!type.empty()) {
          a->member_types[current_class + "::" + tm[2].str()] = type;
        }
      }
    }

    // Annotated function declarations (logical-line buffered).
    decl_buf += code;
    decl_buf += ' ';
    if (code.find(';') != std::string::npos || code.find('{') != std::string::npos) {
      std::smatch sm;
      if (std::regex_search(decl_buf, sm, AnnotatedSigRe())) {
        const std::string fname = sm[1].str();
        const std::string qual =
            current_class.empty() ? fname : current_class + "::" + fname;
        FuncFacts& facts = a->facts[qual];
        if (!current_class.empty()) {
          a->method_classes[fname].insert(current_class);
          a->known_funcs.insert(qual);
        }
        const std::string annos = sm[3].str();
        std::smatch am;
        std::string rest = annos;
        while (std::regex_search(rest, am, AnnotationRe())) {
          const std::string kind = am[1].str();
          if (kind == "REQUIRES" || kind == "ACQUIRE" || kind == "EXCLUDES") {
            std::istringstream args(am[2].str());
            std::string arg;
            while (std::getline(args, arg, ',')) {
              arg = Trim(arg);
              while (!arg.empty() && (arg[0] == '&' || arg[0] == '*')) {
                arg = Trim(arg.substr(1));
              }
              if (arg.rfind("this->", 0) == 0) {
                arg = arg.substr(6);
              }
              if (arg.empty()) {
                continue;
              }
              const std::string lock =
                  current_class.empty() ? arg : current_class + "::" + arg;
              if (kind == "REQUIRES") {
                facts.requires_locks.insert(lock);
              } else {
                // EXCLUDES is this codebase's idiom for "I lock this inside":
                // treat it like ACQUIRE for edge discovery.
                facts.acquires.insert(lock);
              }
            }
          }
          rest = am.suffix().str();
        }
      }
      decl_buf.clear();
    }

    depth += CountChar(code, '{') - CountChar(code, '}');
    while (!stack.empty() && depth <= stack.back().depth) {
      stack.pop_back();
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: function bodies in .cc files.
// ---------------------------------------------------------------------------

void IndexDefinitions(const SourceFile& file, Analysis* a) {
  bool in_block = false;
  for (const std::string& raw : SplitLines(file.content)) {
    const std::string code = BlankStrings(StripComments(raw, &in_block));
    std::smatch m;
    std::string rest = code;
    while (std::regex_search(rest, m, DefStartRe())) {
      a->known_funcs.insert(m[1].str() + "::" + m[2].str());
      a->method_classes[m[2].str()].insert(m[1].str());
      rest = m.suffix().str();
    }
  }
}

struct BodyWalker {
  Analysis* a;
  std::string path;
  int depth = 0;
  bool in_block = false;
  bool in_func = false;
  bool collecting_sig = false;
  std::string sig_buf;
  std::string fn_class;
  std::string fn_qual;
  int fn_close_depth = 0;
  int lambda_suppress_depth = -1;  // active when >= 0
  struct HeldLock {
    std::string lock;
    int entry_depth;
  };
  std::vector<HeldLock> held;
  std::map<std::string, std::string> locals;  // var -> type class

  std::vector<std::string> HeldSnapshot() const {
    std::vector<std::string> out;
    out.reserve(held.size());
    for (const HeldLock& h : held) {
      out.push_back(h.lock);
    }
    return out;
  }

  // Resolves the class a call receiver refers to; empty when unknown.
  std::string ReceiverClass(const std::string& receiver) const {
    if (receiver == "this") {
      return fn_class;
    }
    auto local = locals.find(receiver);
    if (local != locals.end()) {
      return local->second;
    }
    auto member = a->member_types.find(fn_class + "::" + receiver);
    if (member != a->member_types.end()) {
      return member->second;
    }
    return "";
  }

  // Resolves `expr` from `MutexLock lock(&expr)` to a declared lock name.
  std::string ResolveLockExpr(const std::string& expr_in) const {
    const std::string expr = Trim(expr_in);
    static const std::regex last_ident("(\\w+)\\s*$");
    std::smatch m;
    if (!std::regex_search(expr, m, last_ident)) {
      return "";
    }
    const std::string member = m[1].str();
    static const std::regex first_ident("^([A-Za-z_]\\w*)");
    std::smatch f;
    const bool has_receiver =
        expr.find('.') != std::string::npos || expr.find("->") != std::string::npos;
    if (has_receiver && std::regex_search(expr, f, first_ident) && f[1].str() != member) {
      const std::string cls = ReceiverClass(f[1].str());
      if (!cls.empty() && a->decls.count(cls + "::" + member)) {
        return cls + "::" + member;
      }
      return "";
    }
    if (a->decls.count(fn_class + "::" + member)) {
      return fn_class + "::" + member;
    }
    if (a->decls.count(member)) {
      return member;  // namespace-scope lock, e.g. g_emit_mutex
    }
    return "";
  }

  void EnterFunction(const std::string& sig, int close_depth) {
    std::smatch m;
    if (!std::regex_search(sig, m, DefStartRe())) {
      in_func = false;
      return;
    }
    fn_class = m[1].str();
    fn_qual = fn_class + "::" + m[2].str();
    fn_close_depth = close_depth;
    in_func = true;
    held.clear();
    locals.clear();
    // Parameters typed `Class* p` / `Class& p`.
    std::smatch pm;
    std::string rest = sig;
    static const std::regex param_re("([A-Z]\\w*)\\s*[*&]\\s*(\\w+)\\s*[,)]");
    while (std::regex_search(rest, pm, param_re)) {
      locals[pm[2].str()] = pm[1].str();
      rest = pm.suffix().str();
    }
    auto facts = a->facts.find(fn_qual);
    if (facts != a->facts.end()) {
      for (const std::string& lock : facts->second.requires_locks) {
        held.push_back({lock, close_depth + 1});
      }
    }
  }

  void ScanBodyText(std::string text, const std::string& raw, int line_no, int depth_at_start) {
    // Excise lambdas that open and close within this line; multi-line lambdas
    // suppress scanning until their closing brace (they run on other threads,
    // with no locks inherited from here).
    std::smatch lm;
    while (std::regex_search(text, lm, LambdaOpenRe())) {
      const size_t open = static_cast<size_t>(lm.position(0) + lm.length(0)) - 1;
      int bal = 0;
      size_t close = std::string::npos;
      for (size_t i = open; i < text.size(); ++i) {
        if (text[i] == '{') {
          ++bal;
        } else if (text[i] == '}') {
          if (--bal == 0) {
            close = i;
            break;
          }
        }
      }
      if (close == std::string::npos) {
        int lead = 0;
        for (size_t i = 0; i < static_cast<size_t>(lm.position(0)); ++i) {
          if (text[i] == '{') {
            ++lead;
          } else if (text[i] == '}') {
            --lead;
          }
        }
        lambda_suppress_depth = depth_at_start + lead;
        text = text.substr(0, static_cast<size_t>(lm.position(0)));
        break;
      }
      text.erase(static_cast<size_t>(lm.position(0)), close - static_cast<size_t>(lm.position(0)) + 1);
    }

    // Local typings.
    std::smatch m;
    std::string rest = text;
    while (std::regex_search(rest, m, TypedLocalRe())) {
      locals[m[2].str()] = m[1].str();
      rest = m.suffix().str();
    }
    if (std::regex_search(text, m, AutoRangeForRe())) {
      auto member = a->member_types.find(fn_class + "::" + m[2].str());
      if (member != a->member_types.end()) {
        locals[m[1].str()] = member->second;
      }
    }

    const bool suppressed_line = Suppressed(raw, kLockOrder);

    // Lock acquisitions.
    rest = text;
    while (std::regex_search(rest, m, MutexLockUseRe())) {
      const std::string lock = ResolveLockExpr(m[1].str());
      if (!lock.empty()) {
        a->acq_events.push_back({lock, HeldSnapshot(), {path, line_no}, suppressed_line});
        a->facts[fn_qual].acquires.insert(lock);
        held.push_back({lock, depth_at_start});
      }
      rest = m.suffix().str();
    }

    // Member calls.
    rest = text;
    while (std::regex_search(rest, m, MemberCallRe())) {
      const std::string receiver = m[1].str();
      const std::string method = m[3].str();
      std::string cls = ReceiverClass(receiver);
      if (cls.empty()) {
        auto by_name = a->method_classes.find(method);
        if (by_name != a->method_classes.end() && by_name->second.size() == 1) {
          cls = *by_name->second.begin();
        }
      }
      if (!cls.empty() && a->known_funcs.count(cls + "::" + method)) {
        a->call_events.push_back(
            {fn_qual, cls + "::" + method, HeldSnapshot(), {path, line_no}, suppressed_line});
      }
      rest = m.suffix().str();
    }

    // Bare calls (same class, or a uniquely named method).
    rest = text;
    while (std::regex_search(rest, m, BareCallRe())) {
      const std::string method = m[1].str();
      std::string callee;
      if (a->known_funcs.count(fn_class + "::" + method)) {
        callee = fn_class + "::" + method;
      } else {
        auto by_name = a->method_classes.find(method);
        if (by_name != a->method_classes.end() && by_name->second.size() == 1 &&
            a->known_funcs.count(*by_name->second.begin() + "::" + method)) {
          callee = *by_name->second.begin() + "::" + method;
        }
      }
      if (!callee.empty() && callee != fn_qual) {
        a->call_events.push_back({fn_qual, callee, HeldSnapshot(), {path, line_no},
                                  suppressed_line});
      }
      rest = m.suffix().str();
    }
  }

  void ProcessLine(const std::string& raw, int line_no) {
    const std::string code = BlankStrings(StripComments(raw, &in_block));
    const int depth_before = depth;
    std::string body_text;

    if (lambda_suppress_depth >= 0) {
      depth += CountChar(code, '{') - CountChar(code, '}');
      if (depth <= lambda_suppress_depth) {
        lambda_suppress_depth = -1;
      }
      PopScopes();
      return;
    }

    if (!in_func) {
      if (!collecting_sig && std::regex_search(code, DefStartRe())) {
        collecting_sig = true;
        sig_buf.clear();
      }
      if (collecting_sig) {
        sig_buf += code;
        sig_buf += ' ';
        const size_t brace = sig_buf.find('{');
        const size_t semi = sig_buf.find(';');
        if (brace != std::string::npos && (semi == std::string::npos || brace < semi)) {
          EnterFunction(sig_buf.substr(0, brace), depth_before);
          collecting_sig = false;
          // Anything after the body-open brace on this line is body text
          // (one-line definitions like `A::~A() { Stop(); }`).
          const size_t line_brace = code.find('{');
          if (in_func && line_brace != std::string::npos && line_brace + 1 < code.size()) {
            body_text = code.substr(line_brace + 1);
          }
          sig_buf.clear();
        } else if (semi != std::string::npos) {
          collecting_sig = false;
          sig_buf.clear();
        }
        if (!in_func || body_text.empty()) {
          depth += CountChar(code, '{') - CountChar(code, '}');
          PopScopes();
          return;
        }
        // Fall through to scan the same-line body remainder.
        ScanBodyText(body_text, raw, line_no, depth_before + 1);
        depth += CountChar(code, '{') - CountChar(code, '}');
        PopScopes();
        return;
      }
      depth += CountChar(code, '{') - CountChar(code, '}');
      return;
    }

    ScanBodyText(code, raw, line_no, depth_before);
    depth += CountChar(code, '{') - CountChar(code, '}');
    PopScopes();
  }

  void PopScopes() {
    while (!held.empty() && held.back().entry_depth > depth) {
      held.pop_back();
    }
    if (in_func && depth <= fn_close_depth) {
      in_func = false;
      held.clear();
      locals.clear();
    }
  }
};

void ScanBodies(const SourceFile& file, Analysis* a) {
  BodyWalker walker;
  walker.a = a;
  walker.path = file.path;
  const std::vector<std::string> raw_lines = SplitLines(file.content);
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    walker.ProcessLine(raw_lines[i], static_cast<int>(i) + 1);
  }
}

// ---------------------------------------------------------------------------
// Edge construction and checks.
// ---------------------------------------------------------------------------

struct Edge {
  std::string from;
  std::string to;
  Site site;
  std::string via;  // callee for call-derived edges, empty for direct nesting
  bool suppressed = false;
};

int RankOf(const LockHierarchy& h, const Analysis& a, const std::string& lock,
           std::string* rank_name) {
  auto in_table = h.locks.find(lock);
  std::string name;
  if (in_table != h.locks.end()) {
    name = in_table->second;
  } else {
    auto decl = a.decls.find(lock);
    if (decl == a.decls.end()) {
      return -1;
    }
    name = decl->second.rank_name;
  }
  auto rank = h.ranks.find(name);
  if (rank == h.ranks.end()) {
    return -1;
  }
  *rank_name = name;
  return rank->second;
}

void CheckDeclarations(const LockHierarchy& h, Analysis* a) {
  for (const auto& [qual, decl] : a->decls) {
    auto in_table = h.locks.find(qual);
    if (in_table == h.locks.end()) {
      a->findings.push_back({kDeclMismatch, decl.file, decl.line,
                             "ranked lock '" + qual + "' (" + decl.rank_name +
                                 ") is missing from [locks] in tools/lock_hierarchy.toml"});
    } else if (in_table->second != decl.rank_name) {
      a->findings.push_back({kDeclMismatch, decl.file, decl.line,
                             "lock '" + qual + "' declared with rank " + decl.rank_name +
                                 " but tools/lock_hierarchy.toml says " + in_table->second});
    }
    if (h.ranks.find(decl.rank_name) == h.ranks.end()) {
      a->findings.push_back({kDeclMismatch, decl.file, decl.line,
                             "lock '" + qual + "' uses rank " + decl.rank_name +
                                 " which is not a [ranks] entry"});
    }
  }
  for (const auto& [lock, rank] : h.locks) {
    (void)rank;
    if (a->decls.find(lock) == a->decls.end()) {
      a->findings.push_back({kDeclMismatch, "tools/lock_hierarchy.toml", 0,
                             "stale [locks] entry '" + lock +
                                 "': no ranked Mutex declaration found for it"});
    }
  }
  if (a->saw_rank_enum) {
    for (const auto& [name, value] : h.ranks) {
      auto in_enum = a->rank_enum.find(name);
      if (in_enum == a->rank_enum.end()) {
        a->findings.push_back({kEnumDrift, a->sync_path, 0,
                               "rank " + name + " is in tools/lock_hierarchy.toml but not in "
                               "enum class Rank (src/common/sync.h)"});
      } else if (in_enum->second != value) {
        a->findings.push_back({kEnumDrift, a->sync_path, 0,
                               "rank " + name + " is " + std::to_string(in_enum->second) +
                                   " in enum class Rank but " + std::to_string(value) +
                                   " in tools/lock_hierarchy.toml"});
      }
    }
    for (const auto& [name, value] : a->rank_enum) {
      (void)value;
      if (h.ranks.find(name) == h.ranks.end()) {
        a->findings.push_back({kEnumDrift, a->sync_path, 0,
                               "rank " + name + " is in enum class Rank (src/common/sync.h) "
                               "but not in tools/lock_hierarchy.toml"});
      }
    }
  }
}

void CheckEdges(const LockHierarchy& h, Analysis* a) {
  // Transitive may-acquire sets over the call graph (fixpoint).
  std::map<std::string, std::set<std::string>> may_acquire;
  std::map<std::string, std::set<std::string>> callees;
  for (const auto& [fn, facts] : a->facts) {
    may_acquire[fn] = facts.acquires;
  }
  for (const CallEvent& call : a->call_events) {
    callees[call.caller].insert(call.callee);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [fn, fns] : callees) {
      std::set<std::string>& mine = may_acquire[fn];
      const size_t before = mine.size();
      for (const std::string& callee : fns) {
        auto theirs = may_acquire.find(callee);
        if (theirs != may_acquire.end()) {
          mine.insert(theirs->second.begin(), theirs->second.end());
        }
      }
      changed = changed || mine.size() != before;
    }
  }

  std::vector<Edge> edges;
  for (const AcqEvent& acq : a->acq_events) {
    for (const std::string& held : acq.held) {
      edges.push_back({held, acq.lock, acq.site, "", acq.suppressed});
    }
  }
  for (const CallEvent& call : a->call_events) {
    if (call.held.empty()) {
      continue;
    }
    auto acquired = may_acquire.find(call.callee);
    if (acquired == may_acquire.end()) {
      continue;
    }
    for (const std::string& held : call.held) {
      for (const std::string& lock : acquired->second) {
        // A callee that REQUIRES the held lock re-lists it via EXCLUDES
        // nowhere in this tree; a true self-edge is a self-deadlock and
        // stays reportable.
        edges.push_back({held, lock, call.site, call.callee, call.suppressed});
      }
    }
  }

  // Adjacency for cycle-path reporting.
  std::map<std::string, std::set<std::string>> adj;
  for (const Edge& e : edges) {
    adj[e.from].insert(e.to);
  }

  std::set<std::string> reported;  // "from|to"
  for (const Edge& e : edges) {
    std::string from_rank, to_rank;
    const int from_value = RankOf(h, *a, e.from, &from_rank);
    const int to_value = RankOf(h, *a, e.to, &to_rank);
    if (from_value < 0 || to_value < 0) {
      continue;  // unranked operand already reported by the decl checks
    }
    if (to_value < from_value) {
      continue;  // strictly decreasing: legal
    }
    if (e.suppressed) {
      continue;
    }
    const std::string key = e.from + "|" + e.to;
    if (!reported.insert(key).second) {
      continue;
    }
    std::string msg = "acquiring '" + e.to + "' (" + to_rank + "/" + std::to_string(to_value) +
                      ") while holding '" + e.from + "' (" + from_rank + "/" +
                      std::to_string(from_value) + "): lock rank must strictly decrease";
    if (!e.via.empty()) {
      msg += " (via call to '" + e.via + "')";
    }
    if (e.from == e.to) {
      msg += " [same mutex: self-deadlock]";
    } else {
      // BFS back from `to` to `from`: a path closes the cycle and is the
      // conflicting chain worth showing.
      std::map<std::string, std::string> parent;
      std::deque<std::string> queue{e.to};
      parent[e.to] = "";
      bool found = false;
      while (!queue.empty() && !found) {
        const std::string node = queue.front();
        queue.pop_front();
        for (const std::string& next : adj[node]) {
          if (parent.count(next)) {
            continue;
          }
          parent[next] = node;
          if (next == e.from) {
            found = true;
            break;
          }
          queue.push_back(next);
        }
      }
      if (found) {
        std::vector<std::string> chain;
        for (std::string node = e.from; !node.empty(); node = parent[node]) {
          chain.push_back(node);
          if (node == e.to) {
            break;
          }
        }
        std::reverse(chain.begin(), chain.end());
        msg += "; cycle: ";
        for (const std::string& node : chain) {
          msg += node + " -> ";
        }
        msg += e.to;
      }
    }
    a->findings.push_back({kLockOrder, e.site.file, e.site.line, msg});
  }
}

}  // namespace

bool ParseLockHierarchy(const std::string& content, LockHierarchy* out, std::string* error) {
  out->ranks.clear();
  out->locks.clear();
  std::string section;
  int line_no = 0;
  for (const std::string& raw : SplitLines(content)) {
    ++line_no;
    std::string line = raw;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    if (line.front() == '[' && line.back() == ']') {
      section = Trim(line.substr(1, line.size() - 2));
      if (section != "ranks" && section != "locks") {
        *error = "line " + std::to_string(line_no) + ": unknown section [" + section + "]";
        return false;
      }
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos || section.empty()) {
      *error = "line " + std::to_string(line_no) + ": expected `key = value` inside a section";
      return false;
    }
    auto unquote = [](std::string s) {
      s = Trim(s);
      if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
        s = s.substr(1, s.size() - 2);
      }
      return s;
    };
    const std::string key = unquote(line.substr(0, eq));
    const std::string value = unquote(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      *error = "line " + std::to_string(line_no) + ": empty key or value";
      return false;
    }
    if (section == "ranks") {
      try {
        size_t used = 0;
        const int parsed = std::stoi(value, &used);
        if (used != value.size()) {
          throw std::invalid_argument(value);
        }
        out->ranks[key] = parsed;
      } catch (const std::exception&) {
        *error = "line " + std::to_string(line_no) + ": rank value for " + key +
                 " is not an integer";
        return false;
      }
    } else {
      out->locks[key] = value;
    }
  }
  for (const auto& [lock, rank] : out->locks) {
    if (out->ranks.find(rank) == out->ranks.end()) {
      *error = "lock \"" + lock + "\" references undeclared rank " + rank;
      return false;
    }
  }
  return true;
}

std::vector<Finding> CheckLockOrder(const LockHierarchy& hierarchy,
                                    const std::vector<SourceFile>& files) {
  Analysis a;
  for (const SourceFile& file : files) {
    ScanDeclarations(file, &a);
  }
  for (const SourceFile& file : files) {
    if (EndsWith(file.path, ".cc") || EndsWith(file.path, ".cpp")) {
      IndexDefinitions(file, &a);
    }
  }
  for (const SourceFile& file : files) {
    if (EndsWith(file.path, ".cc") || EndsWith(file.path, ".cpp")) {
      ScanBodies(file, &a);
    }
  }
  CheckDeclarations(hierarchy, &a);
  CheckEdges(hierarchy, &a);
  std::sort(a.findings.begin(), a.findings.end(), [](const Finding& x, const Finding& y) {
    if (x.file != y.file) {
      return x.file < y.file;
    }
    if (x.line != y.line) {
      return x.line < y.line;
    }
    return x.rule < y.rule;
  });
  return a.findings;
}

std::vector<Finding> CheckLockOrderOverTree(const std::string& toml_path,
                                            const std::vector<std::string>& roots) {
  std::ifstream toml_stream(toml_path);
  if (!toml_stream) {
    return {{kIoError, toml_path, 0, "cannot open lock hierarchy file"}};
  }
  std::ostringstream toml_buf;
  toml_buf << toml_stream.rdbuf();
  LockHierarchy hierarchy;
  std::string error;
  if (!ParseLockHierarchy(toml_buf.str(), &hierarchy, &error)) {
    return {{kIoError, toml_path, 0, "malformed lock hierarchy: " + error}};
  }
  std::vector<Finding> findings;
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_regular_file(root, ec)) {
      paths.push_back(root);
      continue;
    }
    std::filesystem::recursive_directory_iterator it(root, ec), end;
    if (ec) {
      findings.push_back({kIoError, root, 0, "cannot walk directory: " + ec.message()});
      continue;
    }
    for (; it != end; it.increment(ec)) {
      if (ec) {
        break;
      }
      if (!it->is_regular_file()) {
        continue;
      }
      const std::string path = it->path().generic_string();
      if (EndsWith(path, ".h") || EndsWith(path, ".cc") || EndsWith(path, ".cpp")) {
        paths.push_back(path);
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream stream(path);
    if (!stream) {
      findings.push_back({kIoError, path, 0, "cannot open file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    files.push_back({path, buffer.str()});
  }
  std::vector<Finding> analysis = CheckLockOrder(hierarchy, files);
  findings.insert(findings.end(), analysis.begin(), analysis.end());
  return findings;
}

}  // namespace lint
}  // namespace vlora

// Repo-local lint rules behind vlora_lint (see tools/vlora_lint.cc).
//
// Each rule is a line-oriented check over one file's text. Rules are pure
// functions of (path, content) so tests can feed synthetic snippets without
// touching the filesystem; the CLI layers directory walking on top.
//
// Rules:
//   raw-mutex             std::mutex / std::condition_variable / std::lock_*
//                         outside src/common/sync.h (use vlora::Mutex, which
//                         carries the thread-safety annotations)
//   status-not-nodiscard  class Status / class Result declared without
//                         [[nodiscard]] (class-level nodiscard is what makes
//                         every ignored Status return a compile error)
//   sleep-in-test         sleep_for / sleep_until under tests/ (poll loops
//                         hide race conditions; use CondVar-backed waits like
//                         ClusterServer::WaitForReadmissions)
//   naked-new             `new T` outside a smart-pointer factory
//   thread-detach         .detach() — detached threads outlive their state
//   missing-include-guard header with neither an #ifndef guard nor
//                         #pragma once in its first non-comment lines
//   mutexlock-temporary   MutexLock constructed as an unnamed temporary
//                         (`MutexLock(mu);`) — it unlocks at the end of the
//                         statement, guarding nothing
//   status-switch-exhaustive
//                         switch over StatusCode that neither covers every
//                         enumerator nor has a default: new codes would fall
//                         through silently
//   trace-span-unclosed   explicit BatchStepBegin emission with no matching
//                         BatchStepEnd / RAII BatchStepSpan in the enclosing
//                         scope — an early return would leak an open span and
//                         corrupt the Chrome trace's B/E nesting (tests/
//                         exempt; they assert on Begin events alone)
//   raw-socket-fd         naked socket()/socketpair()/accept()/close() calls
//                         outside src/net/ — descriptors must live in the
//                         RAII net::Fd wrapper (src/net/fd.h) so no error
//                         path can leak a connection
//   raw-simd-intrinsic    _mm*/_mm256*/_mm512* intrinsic calls or
//                         <immintrin.h> includes outside src/kernels/ — SIMD
//                         lives behind the micro-kernel tables so every other
//                         layer stays portable and the scalar fallback stays
//                         the single source of truth for semantics
//   volatile-threading    the volatile keyword under src/ — volatile neither
//                         orders nor publishes anything between threads; the
//                         sanctioned idiom is std::atomic with an explicit
//                         memory order, registered in tools/atomics.toml
//   getenv-outside-init   getenv under src/ in a function whose name does not
//                         say init-time (Init* / *FromEnv / main) — the
//                         environment is configuration, read once at startup
//                         and cached; reading it on a serving path costs a
//                         libc call per hit and diverges from the startup
//                         snapshot (enclosing function found heuristically:
//                         nearest preceding column-0 definition)
//
// A finding on line N is suppressed by appending the comment
//   // vlora-lint: allow(<rule>)
// to that line. Suppressions are deliberate and visible in review.

#ifndef VLORA_TOOLS_LINT_RULES_H_
#define VLORA_TOOLS_LINT_RULES_H_

#include <string>
#include <vector>

namespace vlora {
namespace lint {

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;  // 1-based; 0 for whole-file findings
  std::string message;

  bool operator==(const Finding& o) const {
    return rule == o.rule && file == o.file && line == o.line;
  }
};

// Names of every rule, in report order.
std::vector<std::string> RuleNames();

// Runs every applicable rule over one file's content. `path` decides
// applicability (tests/ rules, header rules, the sync.h exemption); it is
// matched on suffix so absolute and relative paths behave the same.
std::vector<Finding> LintContent(const std::string& path, const std::string& content);

// Reads `path` and lints it. Missing/unreadable files yield a single
// "io-error" finding rather than a crash.
std::vector<Finding> LintFile(const std::string& path);

// One "file:line: [rule] message" line per finding.
std::string FormatFinding(const Finding& finding);

// Strips // and /* */ comment text from one line of C++; `in_block` carries
// the /* state across lines, string literals are preserved. Shared with the
// lock-order pass (tools/lock_order.cc) so both layers see the same code.
std::string StripComments(const std::string& line, bool* in_block);

}  // namespace lint
}  // namespace vlora

#endif  // VLORA_TOOLS_LINT_RULES_H_

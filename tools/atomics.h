// Atomics-discipline analysis behind vlora_lint --atomics.
//
// tools/atomics.toml registers every std::atomic declaration under src/ by
// qualified name ("Class::member_", a bare name for namespace-scope globals,
// "Function::local" for function-local atomics) and assigns it one of five
// memory-ordering protocols:
//
//   counter          relaxed RMW / relaxed loads, never used to synchronize
//                    other data — every op must state memory_order_relaxed
//                    explicitly (Counter/Gauge values, depth gauges,
//                    sequence numbers, the log level)
//   flag             a release store published by one side, an acquire load
//                    consumed by the other (replica dead_, shutdown flags)
//   published-value  flag plus named sides: release publishes only in the
//                    functions listed under publish=, acquire consumes only
//                    in the functions listed under consume=
//   epoch-seqlock    the Tracer ring idiom: the owning thread reads/writes
//                    with relaxed, publishes with release, the collector
//                    reads with acquire; any explicit order short of seq_cst
//                    is legal anywhere
//   init-once        written once (release) during initialisation, acquire
//                    loads afterwards — same order rules as flag
//
// The pass scans the tree (class members in headers, namespace globals,
// function locals, and every .load/.store/.fetch_*/.exchange/
// .compare_exchange_* site including in-class inline method bodies) and
// reports:
//
//   atomic-unregistered      a std::atomic declaration missing from the
//                            registry
//   atomic-stale-entry       a registry key matching no declaration
//   atomic-bad-protocol      unknown protocol name, publish=/consume= on a
//                            protocol that takes none, a published-value
//                            entry missing either side, or a named function
//                            the tree does not define
//   atomic-protocol-mismatch an operation whose order the protocol forbids:
//                            anything but explicit relaxed on a counter, a
//                            default (implicit seq_cst) order on a
//                            synchronizing atomic, a relaxed store / load on
//                            a flag, a publish or consume outside the
//                            declared published-value sides, explicit
//                            seq_cst on an epoch-seqlock
//   atomic-relaxed-sync      a relaxed RMW on an atomic declared as
//                            synchronizing (flag / published-value /
//                            epoch-seqlock / init-once)
//   atomic-unpaired-release  release-class stores with no acquire-class load
//                            anywhere in the scanned tree (and
//   atomic-unpaired-acquire  ... the reverse)
//   atomic-seqcst-hot        a seq_cst operation (explicit or defaulted) on
//                            a registered atomic in a function reachable
//                            from a VLORA_HOT root (tools/hot_paths.toml),
//                            reported with the root -> operation call chain
//   atomic-mixed-access      operator-form access to a registered atomic
//                            (`flag_ = true`, `if (flag_)`, `++count_`) —
//                            an implicit seq_cst op that states no protocol
//
// Every finding honors the per-line `vlora-lint: allow(<rule>)` suppression.
// The call graph reuses the wide hot-path posture from tools/callgraph.h
// (lambdas inline, free functions tracked, unresolved member calls fanned
// out) and additionally indexes in-class inline method definitions so edges
// into header-defined accessors like Counter::Add resolve. DESIGN.md §14
// documents the registry; §13 documents the framework.

#ifndef VLORA_TOOLS_ATOMICS_H_
#define VLORA_TOOLS_ATOMICS_H_

#include <map>
#include <string>
#include <vector>

#include "tools/callgraph.h"
#include "tools/hot_path.h"
#include "tools/lint_rules.h"

namespace vlora {
namespace lint {

// One registry entry: the protocol name plus the published-value side lists.
struct AtomicProtocolSpec {
  std::string protocol;
  std::vector<std::string> publishers;  // publish= functions (published-value)
  std::vector<std::string> consumers;   // consume= functions (published-value)
  std::vector<std::string> bad_tokens;  // unparseable spec tokens, reported
  int line = 0;                         // registry line, for drift findings
};

struct AtomicsConfig {
  // Qualified atomic name -> its protocol spec.
  std::map<std::string, AtomicProtocolSpec> atomics;
  // Optional [options] hot_paths = "<file>": the hot-path registry whose
  // [roots]/[boundaries] drive the atomic-seqcst-hot reachability check.
  // Resolved relative to the registry file by CheckAtomicsOverTree.
  std::string hot_paths;
  // Where the registry was loaded from; drift findings anchor here.
  std::string registry_path = "tools/atomics.toml";
};

// Parses tools/atomics.toml ([atomics] and [options] sections). Returns
// false and fills *error on malformed TOML; protocol-level problems are
// reported as findings by CheckAtomics instead so twins can assert on them.
bool ParseAtomicsRegistry(const std::string& content, AtomicsConfig* out, std::string* error);

// Runs the atomics-discipline analysis over the given files. `hot` supplies
// the VLORA_HOT roots and boundaries for the seq_cst reachability rule; pass
// an empty config to skip that rule.
std::vector<Finding> CheckAtomics(const AtomicsConfig& config, const HotPathConfig& hot,
                                  const std::vector<SourceFile>& files);

// Filesystem wrapper: loads `toml_path`, the hot-path registry it names,
// and the .h/.cc/.cpp files under each root, then runs CheckAtomics.
std::vector<Finding> CheckAtomicsOverTree(const std::string& toml_path,
                                          const std::vector<std::string>& roots);

}  // namespace lint
}  // namespace vlora

#endif  // VLORA_TOOLS_ATOMICS_H_

#include "tools/codec_symmetry.h"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace vlora {
namespace lint {
namespace {

// Rule names assembled from adjacent literals so the whole-tree per-line
// scan never trips over this file's own pattern text.
const char kAsymmetry[] = "codec-asymmetry";
const char kUnpaired[] = "codec-unpaired";

const std::regex& WireOpRe() {
  static const std::regex re(
      "(?:\\.|->)\\s*(U8|U16|U32|U64|F32|F64|Varint|SignedVarint|Str|I32Array|F32Array)"
      "\\s*\\(");
  return re;
}

const std::regex& PairDirectiveRe() {
  static const std::regex re("vlora-codec:\\s*pair\\(\\s*([\\w:]+)\\s*,\\s*([\\w:]+)\\s*\\)");
  return re;
}

const std::regex& WrapperDirectiveRe() {
  static const std::regex re("vlora-codec:\\s*wrapper\\(\\s*([\\w:]+)\\s*\\)");
  return re;
}

// One step of a codec function: a wire primitive, or a call to another
// function whose flattened sequence splices in at this position.
struct CodecItem {
  bool is_call = false;
  std::string name;  // primitive name or callee qualified name
};

struct CodecFunc {
  std::vector<CodecItem> items;
  std::string file;
  int first_line = 0;
  bool suppress_asymmetry = false;
  bool suppress_unpaired = false;
};

class CodecBodyClient : public BodyClient {
 public:
  // Wire ops (seen in OnBodyText) and helper calls (seen in OnCall) can share
  // one physical line — `!Parse(r, out) || !r.Str(&s)` — and the hook order
  // would put all ops before all calls. Each line is therefore buffered with
  // source columns and flushed in column order, so spliced helper sequences
  // land at their true position.
  void OnBodyText(const BodyWalker& walker, const std::string& text, const std::string& raw,
                  int line_no, int depth_at_start) override {
    (void)depth_at_start;
    FlushLine();
    line_text_ = text;
    for (std::sregex_iterator it(text.begin(), text.end(), WireOpRe()), end; it != end; ++it) {
      pending_.push_back({Touch(walker, line_no), static_cast<size_t>(it->position(0)),
                          {false, (*it)[1].str()}});
    }
    if (raw.find("vlora-lint: allow(codec-asymmetry)") != std::string::npos) {
      Touch(walker, line_no)->suppress_asymmetry = true;
    }
    if (raw.find("vlora-lint: allow(codec-unpaired)") != std::string::npos) {
      Touch(walker, line_no)->suppress_unpaired = true;
    }
  }

  void OnCall(const BodyWalker& walker, const std::string& callee, const std::string& raw,
              int line_no) override {
    (void)raw;
    const size_t sep = callee.rfind("::");
    const std::string base = sep == std::string::npos ? callee : callee.substr(sep + 2);
    std::smatch m;
    size_t col = line_text_.size();  // unlocatable names sort after the line's ops
    if (std::regex_search(line_text_, m, std::regex("\\b" + base + "\\s*\\("))) {
      col = static_cast<size_t>(m.position(0));
    }
    pending_.push_back({Touch(walker, line_no), col, {true, callee}});
  }

  void OnLineEnd(const BodyWalker& walker, int depth_after) override {
    (void)walker;
    (void)depth_after;
    FlushLine();
  }

  std::map<std::string, CodecFunc>& funcs() {
    FlushLine();
    return funcs_;
  }

 private:
  struct PendingItem {
    CodecFunc* fn;
    size_t col;
    CodecItem item;
  };

  void FlushLine() {
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const PendingItem& x, const PendingItem& y) { return x.col < y.col; });
    for (PendingItem& p : pending_) {
      p.fn->items.push_back(std::move(p.item));
    }
    pending_.clear();
    line_text_.clear();
  }

  CodecFunc* Touch(const BodyWalker& walker, int line_no) {
    CodecFunc& fn = funcs_[walker.fn_qual()];
    if (fn.file.empty()) {
      fn.file = walker.path();
      fn.first_line = line_no;
    }
    return &fn;
  }

  std::map<std::string, CodecFunc> funcs_;
  std::vector<PendingItem> pending_;
  std::string line_text_;
};

// Recursively inlines helper calls into a flat primitive sequence.
// Cycle-safe: a function already on the expansion stack contributes nothing.
const std::vector<std::string>& Flatten(const std::string& qual,
                                        const std::map<std::string, CodecFunc>& funcs,
                                        std::map<std::string, std::vector<std::string>>* memo,
                                        std::set<std::string>* in_progress) {
  auto cached = memo->find(qual);
  if (cached != memo->end()) {
    return cached->second;
  }
  std::vector<std::string>& out = (*memo)[qual];
  auto fn = funcs.find(qual);
  if (fn == funcs.end() || !in_progress->insert(qual).second) {
    return out;
  }
  for (const CodecItem& item : fn->second.items) {
    if (!item.is_call) {
      out.push_back(item.name);
      continue;
    }
    // memo can rehash while the recursive call fills other entries, so
    // re-resolve through the returned reference's value copy.
    const std::vector<std::string> spliced = Flatten(item.name, funcs, memo, in_progress);
    out.insert(out.end(), spliced.begin(), spliced.end());
  }
  in_progress->erase(qual);
  return (*memo)[qual];
}

// +1 encoder, -1 decoder, 0 unknown, by naming convention.
int DirectionOf(const std::string& qual) {
  const size_t sep = qual.rfind("::");
  const std::string base = sep == std::string::npos ? qual : qual.substr(sep + 2);
  if (base.rfind("Append", 0) == 0 || base.rfind("Encode", 0) == 0 ||
      base.rfind("Write", 0) == 0) {
    return 1;
  }
  if (base.rfind("Parse", 0) == 0 || base.rfind("Decode", 0) == 0 ||
      base.rfind("Read", 0) == 0) {
    return -1;
  }
  return 0;
}

// The conventionally named counterpart, or "" when the name fits no
// convention. C::AppendTo <-> C::Parse; AppendX <-> ParseX; EncodeX <->
// DecodeX; WriteX <-> ReadX.
std::string CounterpartOf(const std::string& qual) {
  const size_t sep = qual.rfind("::");
  const std::string cls = sep == std::string::npos ? "" : qual.substr(0, sep + 2);
  const std::string base = sep == std::string::npos ? qual : qual.substr(sep + 2);
  if (base == "AppendTo") {
    return cls + "Parse";
  }
  if (base == "Parse" && !cls.empty()) {
    return cls + "AppendTo";
  }
  static const std::vector<std::pair<std::string, std::string>> kSwaps = {
      {"Append", "Parse"}, {"Encode", "Decode"}, {"Write", "Read"}};
  for (const auto& [enc, dec] : kSwaps) {
    if (base.rfind(enc, 0) == 0) {
      return cls + dec + base.substr(enc.size());
    }
    if (base.rfind(dec, 0) == 0) {
      return cls + enc + base.substr(dec.size());
    }
  }
  return "";
}

std::string JoinSeq(const std::vector<std::string>& seq, size_t around) {
  // A short window around the divergence keeps messages readable.
  const size_t begin = around >= 2 ? around - 2 : 0;
  const size_t end = std::min(seq.size(), around + 3);
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    if (!out.empty()) {
      out += " ";
    }
    out += (i == around ? "[" + seq[i] + "]" : seq[i]);
  }
  return out.empty() ? "(empty)" : out;
}

struct Directives {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::set<std::string> wrappers;
};

void ScanDirectives(const SourceFile& file, Directives* out) {
  for (const std::string& raw : SplitLines(file.content)) {
    std::smatch m;
    if (std::regex_search(raw, m, PairDirectiveRe())) {
      out->pairs.emplace_back(m[1].str(), m[2].str());
    }
    if (std::regex_search(raw, m, WrapperDirectiveRe())) {
      out->wrappers.insert(m[1].str());
    }
  }
}

void ComparePair(const std::string& enc, const std::string& dec,
                 const std::map<std::string, CodecFunc>& funcs,
                 std::map<std::string, std::vector<std::string>>* memo,
                 std::vector<Finding>* findings) {
  std::set<std::string> in_progress;
  const std::vector<std::string> enc_seq = Flatten(enc, funcs, memo, &in_progress);
  const std::vector<std::string> dec_seq = Flatten(dec, funcs, memo, &in_progress);
  auto enc_fn = funcs.find(enc);
  auto dec_fn = funcs.find(dec);
  const bool suppressed =
      (enc_fn != funcs.end() && enc_fn->second.suppress_asymmetry) ||
      (dec_fn != funcs.end() && dec_fn->second.suppress_asymmetry);
  if (suppressed || enc_seq == dec_seq) {
    return;
  }
  std::string file = enc_fn != funcs.end() ? enc_fn->second.file : dec_fn->second.file;
  int line = enc_fn != funcs.end() ? enc_fn->second.first_line : dec_fn->second.first_line;
  size_t diverge = 0;
  while (diverge < enc_seq.size() && diverge < dec_seq.size() &&
         enc_seq[diverge] == dec_seq[diverge]) {
    ++diverge;
  }
  std::string msg = "encoder '" + enc + "' (" + std::to_string(enc_seq.size()) +
                    " primitives) and decoder '" + dec + "' (" +
                    std::to_string(dec_seq.size()) + " primitives) diverge at position " +
                    std::to_string(diverge) + ": encoder ... " + JoinSeq(enc_seq, diverge) +
                    " ... vs decoder ... " + JoinSeq(dec_seq, diverge) + " ...";
  findings->push_back({kAsymmetry, file, line, msg});
}

}  // namespace

std::vector<Finding> CheckCodecSymmetry(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  ScanOptions options;
  options.index_free_functions = true;
  options.inline_lambdas = true;

  CodeIndex index;
  BuildCodeIndex(files, options, &index, nullptr);
  for (const SourceFile& file : files) {
    if (PathEndsWith(file.path, ".cc") || PathEndsWith(file.path, ".cpp")) {
      IndexDefinitions(file, options, &index);
    }
  }

  CodecBodyClient client;
  Directives directives;
  for (const SourceFile& file : files) {
    ScanDirectives(file, &directives);
    if (PathEndsWith(file.path, ".cc") || PathEndsWith(file.path, ".cpp")) {
      BodyWalker walker(&index, &options, &client);
      walker.ScanFile(file);
    }
  }

  const std::map<std::string, CodecFunc>& funcs = client.funcs();
  std::map<std::string, std::vector<std::string>> memo;

  // Functions spliced into another codec are checked there, not as
  // top-level pairs.
  std::set<std::string> helper_used;
  for (const auto& [qual, fn] : funcs) {
    (void)qual;
    for (const CodecItem& item : fn.items) {
      if (item.is_call) {
        helper_used.insert(item.name);
      }
    }
  }
  std::set<std::string> in_directive_pair;
  for (const auto& [enc, dec] : directives.pairs) {
    in_directive_pair.insert(enc);
    in_directive_pair.insert(dec);
  }

  // Explicitly directed pairs first.
  for (const auto& [enc, dec] : directives.pairs) {
    ComparePair(enc, dec, funcs, &memo, &findings);
  }

  // Convention-named pairs, walked from the encoder side so each pair is
  // compared once.
  std::set<std::string> paired;
  for (const auto& [qual, fn] : funcs) {
    (void)fn;
    if (DirectionOf(qual) != 1 || in_directive_pair.count(qual) ||
        directives.wrappers.count(qual)) {
      continue;
    }
    const std::string counterpart = CounterpartOf(qual);
    if (!counterpart.empty() && funcs.count(counterpart)) {
      paired.insert(qual);
      paired.insert(counterpart);
      ComparePair(qual, counterpart, funcs, &memo, &findings);
    }
  }

  // Unpaired codecs: a function with wire primitives in its flattened
  // sequence, no counterpart, and no exemption (helper, wrapper, directive).
  for (const auto& [qual, fn] : funcs) {
    if (paired.count(qual) || in_directive_pair.count(qual) ||
        directives.wrappers.count(qual) || helper_used.count(qual) ||
        fn.suppress_unpaired) {
      continue;
    }
    std::set<std::string> in_progress;
    if (Flatten(qual, funcs, &memo, &in_progress).empty()) {
      continue;
    }
    const int dir = DirectionOf(qual);
    if (dir == 0) {
      findings.push_back({kUnpaired, fn.file, fn.first_line,
                          "'" + qual + "' touches wire primitives but its name fits no "
                          "encoder/decoder convention; rename it or add a "
                          "vlora-codec: pair(...) / wrapper(...) directive"});
      continue;
    }
    const std::string counterpart = CounterpartOf(qual);
    findings.push_back({kUnpaired, fn.file, fn.first_line,
                        std::string(dir == 1 ? "encoder '" : "decoder '") + qual +
                            "' has no counterpart" +
                            (counterpart.empty() ? "" : " (expected '" + counterpart + "')") +
                            "; every codec needs both directions or a vlora-codec directive"});
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& x, const Finding& y) {
    if (x.file != y.file) {
      return x.file < y.file;
    }
    if (x.line != y.line) {
      return x.line < y.line;
    }
    return x.rule < y.rule;
  });
  return findings;
}

std::vector<Finding> CheckCodecSymmetryOverTree(const std::vector<std::string>& paths) {
  std::vector<Finding> findings;
  const std::vector<SourceFile> files = LoadSourceTree(paths, &findings);
  std::vector<Finding> analysis = CheckCodecSymmetry(files);
  findings.insert(findings.end(), analysis.begin(), analysis.end());
  return findings;
}

}  // namespace lint
}  // namespace vlora

#include "tools/lint_rules.h"

#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace vlora {
namespace lint {
namespace {

// Rule names and the patterns below are assembled from adjacent string
// literals so this file does not trip its own rules when the CLI lints the
// whole tree (the scanner sees `std::" "mutex`, never `std::mutex`).

const char kRawMutex[] = "raw-mutex";
const char kStatusNodiscard[] = "status-not-nodiscard";
const char kSleepInTest[] = "sleep-in-test";
const char kNakedNew[] = "naked-new";
const char kThreadDetach[] = "thread-detach";
const char kMissingGuard[] = "missing-include-guard";
const char kMutexLockTemporary[] = "mutexlock-temporary";
const char kStatusSwitch[] = "status-switch-exhaustive";
const char kTraceSpan[] = "trace-span-unclosed";
const char kRawSocketFd[] = "raw-socket-fd";
const char kRawSimd[] = "raw-simd-intrinsic";
const char kGetenvOutsideInit[] = "get" "env-outside-init";
const char kVolatileThreading[] = "vola" "tile-threading";
const char kIoError[] = "io-error";

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsSyncHeader(const std::string& path) {
  return EndsWith(path, "src/common/sync.h") || path == "sync.h";
}

bool IsTestFile(const std::string& path) {
  return path.find("tests/") != std::string::npos;
}

bool IsNetFile(const std::string& path) {
  return path.find("src/net/") != std::string::npos;
}

bool IsKernelFile(const std::string& path) {
  return path.find("src/kernels/") != std::string::npos;
}

bool IsHeader(const std::string& path) { return EndsWith(path, ".h"); }

}  // namespace

// Strips // and /* */ comments for matching, preserving column positions is
// unnecessary — rules are line-granular. `in_block` carries /* state across
// lines. String literals are left in place; the rule patterns are chosen so
// log-message text does not collide with them.
std::string StripComments(const std::string& line, bool* in_block) {
  std::string out;
  out.reserve(line.size());
  size_t i = 0;
  bool in_string = false;
  char quote = '"';
  while (i < line.size()) {
    if (*in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        *in_block = false;
        i += 2;
        continue;
      }
      ++i;
      continue;
    }
    const char c = line[i];
    if (in_string) {
      out.push_back(c);
      if (c == '\\' && i + 1 < line.size()) {
        out.push_back(line[i + 1]);
        i += 2;
        continue;
      }
      if (c == quote) {
        in_string = false;
      }
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      in_string = true;
      quote = c;
      out.push_back(c);
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      break;  // rest of line is a comment
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      *in_block = true;
      i += 2;
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

namespace {

bool Suppressed(const std::string& raw_line, const char* rule) {
  const std::string marker = std::string("vlora-lint: allow(") + rule + ")";
  return raw_line.find(marker) != std::string::npos;
}

const std::regex& RawMutexRe() {
  static const std::regex re(
      "(std" "::" "(mutex|timed_mutex|recursive_mutex|shared_mutex|"
      "condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|shared_lock)\\b)"
      "|(#\\s*include\\s*<(mutex|condition_variable|shared_mutex)>)");
  return re;
}

const std::regex& StatusClassRe() {
  // Opening declaration of the status vocabulary types without [[nodiscard]].
  // Forward declarations (`class Status;`) are fine.
  static const std::regex re("\\bclass" "\\s+(Status|Result)\\s*(\\{|$|:)");
  return re;
}

const std::regex& SleepRe() {
  static const std::regex re("\\bsleep_" "(for|until)\\s*\\(");
  return re;
}

const std::regex& NakedNewRe() {
  // `new T...` — placement new (`new (buf) T`) and nothrow new are not
  // matched (open paren after `new`), nor is the `-new` in hyphenated names.
  static const std::regex re("(^|[^_A-Za-z0-9.])new" "\\s+[A-Za-z_:][A-Za-z0-9_:<]*");
  return re;
}

const std::regex& DetachRe() {
  static const std::regex re("\\.detach" "\\s*\\(\\s*\\)");
  return re;
}

const std::regex& MutexLockTempRe() {
  // `MutexLock(mu);` — an unnamed temporary that unlocks again before the
  // next statement. A named guard (`MutexLock lock(&mu);`) has an identifier
  // between the type and the paren and does not match; `~MutexLock()` and
  // member access are excluded by the leading character class.
  static const std::regex re("(^|[^_A-Za-z0-9~.])Mutex" "Lock\\s*\\(");
  return re;
}

const std::regex& RawSocketRe() {
  // A call of one of the descriptor-producing/destroying POSIX entry points.
  // Member calls (`stream.close(`, `ptr->close(`) and longer identifiers
  // (`fclose(`, `NewSoc` `ket(`) are excluded by the leading character class;
  // `::` qualification still matches.
  static const std::regex re("(^|[^_A-Za-z0-9.>~])"
                             "(soc" "ket|soc" "ketpair|acc" "ept4?|clo" "se)\\s*\\(");
  return re;
}

const std::regex& RawSimdRe() {
  // A call of an x86 vector intrinsic (`_mm_...(`, `_mm256_...(`,
  // `_mm512_...(`) or an include of the intrinsic headers. The leading
  // character class keeps longer identifiers (`foo_mm256_bar`) from matching.
  static const std::regex re("((^|[^_A-Za-z0-9])_mm" "(256|512)?_[a-z0-9_]+\\s*\\()"
                             "|(#\\s*include\\s*<(imm" "intrin|x86" "intrin|avx" "intrin|"
                             "avx2" "intrin|emm" "intrin|xmm" "intrin)\\.h>)");
  return re;
}

const std::regex& GetenvRe() {
  // A call of getenv in any spelling (bare, ::, std::, secure_). Member
  // calls (`config.get` `env(`) are excluded by the leading character class.
  static const std::regex re("(^|[^_A-Za-z0-9.>])((std\\s*)?::\\s*)?(secure_)?"
                             "get" "env\\s*\\(");
  return re;
}

const std::regex& VolatileRe() {
  // The volatile keyword in any position (qualifier, member, cast). Longer
  // identifiers do not match; asm-adjacent spellings do not occur in this
  // tree.
  static const std::regex re("(^|[^_A-Za-z0-9])vola" "tile\\b");
  return re;
}

const std::regex& InitNameRe() {
  // Function names that declare themselves init-time: Init / Initialize
  // anywhere, a FromEnv suffix idiom, or main itself.
  static const std::regex re("Init|FromEnv|^main$");
  return re;
}

// The name of the function a line most plausibly lives in: the identifier
// before the first '(' of the nearest preceding column-0 line that starts an
// identifier. Definitions in this tree start at column 0 (`KernelVariant
// ResolveFromEnv() {`, `std::string ProcessReplica::DefaultExecutorPath() {`),
// so the scan never has to parse bodies.
std::string EnclosingFunctionName(const std::vector<std::string>& code_lines, size_t from) {
  for (size_t j = from + 1; j-- > 0;) {
    const std::string& code = code_lines[j];
    if (code.empty() ||
        (!isalpha(static_cast<unsigned char>(code[0])) && code[0] != '_')) {
      continue;
    }
    const size_t paren = code.find('(');
    if (paren == std::string::npos) {
      continue;
    }
    size_t end = paren;
    while (end > 0 && isspace(static_cast<unsigned char>(code[end - 1]))) {
      --end;
    }
    size_t begin = end;
    while (begin > 0 && (isalnum(static_cast<unsigned char>(code[begin - 1])) ||
                         code[begin - 1] == '_')) {
      --begin;
    }
    if (begin < end) {
      return code.substr(begin, end - begin);
    }
  }
  return "";
}

const std::regex& SwitchRe() {
  static const std::regex re("\\bswitch" "\\s*\\(");
  return re;
}

const std::regex& CaseStatusCodeRe() {
  static const std::regex re("\\bcase" "\\s+(?:vlora::)?Status" "Code::(k\\w+)");
  return re;
}

const std::regex& DefaultLabelRe() {
  static const std::regex re("\\bdefault" "\\s*:");
  return re;
}

// Every StatusCode enumerator; must track src/common/status.h. If status.h
// grows a code missing from this list, the exhaustive switches there (which
// deliberately have no default) start failing this rule — the failure message
// names the list to update.
const char* const kStatusCodeNames[] = {
    "kOk",          "kInvalidArgument",   "kNotFound", "kResourceExhausted",
    "kFailedPrecondition", "kOutOfRange", "kUnimplemented", "kInternal",
    "kCancelled",   "kDeadlineExceeded",  "kUnavailable"};

const std::regex& TraceSpanBeginRe() {
  // A call (or declaration) of a batch-step Begin emitter. Enum references
  // like kBatchStep... and string literals naming the event do not match —
  // only the open paren after the identifier does.
  static const std::regex re("BatchStep" "Begin\\s*\\(");
  return re;
}

const std::regex& IfndefRe() {
  static const std::regex re("#\\s*ifndef" "\\s+\\w+");
  return re;
}

const std::regex& PragmaOnceRe() {
  static const std::regex re("#\\s*pragma" "\\s+once\\b");
  return re;
}

void CheckLine(const std::string& path, int line_no, const std::string& raw,
               const std::string& code, std::vector<Finding>* findings) {
  if (!IsSyncHeader(path) && std::regex_search(code, RawMutexRe()) &&
      !Suppressed(raw, kRawMutex)) {
    findings->push_back({kRawMutex, path, line_no,
                         "raw standard-library mutex primitive; use vlora::Mutex / "
                         "vlora::MutexLock / vlora::CondVar from src/common/sync.h so the "
                         "thread-safety annotations see the lock"});
  }
  std::smatch m;
  if (std::regex_search(code, m, StatusClassRe()) &&
      code.find("nodiscard") == std::string::npos && !Suppressed(raw, kStatusNodiscard)) {
    findings->push_back({kStatusNodiscard, path, line_no,
                         "class " + m[1].str() +
                             " must be declared [[nodiscard]] so ignored error returns "
                             "fail the build"});
  }
  if (IsTestFile(path) && std::regex_search(code, SleepRe()) && !Suppressed(raw, kSleepInTest)) {
    findings->push_back({kSleepInTest, path, line_no,
                         "sleeping in a test hides races and slows the suite; wait on a "
                         "condition (e.g. ClusterServer::WaitForReadmissions) instead"});
  }
  if (std::regex_search(code, NakedNewRe()) && !Suppressed(raw, kNakedNew)) {
    findings->push_back({kNakedNew, path, line_no,
                         "naked new; use std::make_unique / std::make_shared or a "
                         "container"});
  }
  if (std::regex_search(code, DetachRe()) && !Suppressed(raw, kThreadDetach)) {
    findings->push_back({kThreadDetach, path, line_no,
                         "detached threads outlive the state they touch; keep the handle "
                         "and join it"});
  }
  if (!IsSyncHeader(path) && std::regex_search(code, MutexLockTempRe()) &&
      !Suppressed(raw, kMutexLockTemporary)) {
    findings->push_back({kMutexLockTemporary, path, line_no,
                         "Mutex" "Lock temporary unlocks at the end of this statement and "
                         "guards nothing; name it: Mutex" "Lock lock(&mu)"});
  }
  if (!IsNetFile(path) && std::regex_search(code, RawSocketRe()) &&
      !Suppressed(raw, kRawSocketFd)) {
    findings->push_back({kRawSocketFd, path, line_no,
                         "raw POSIX soc" "ket/descriptor call outside src/net/; descriptors "
                         "must be owned by the RAII net::Fd wrapper (src/net/fd.h) so no "
                         "error path can leak a connection"});
  }
  if (!IsKernelFile(path) && std::regex_search(code, RawSimdRe()) &&
      !Suppressed(raw, kRawSimd)) {
    findings->push_back({kRawSimd, path, line_no,
                         "raw SIMD intrinsic outside src/kernels/; add a micro-kernel to the "
                         "variant tables (src/kernels/microkernel.h) instead so dispatch, the "
                         "scalar fallback, and the differential tests keep covering it"});
  }
  if (path.find("src/") != std::string::npos && std::regex_search(code, VolatileRe()) &&
      !Suppressed(raw, kVolatileThreading)) {
    findings->push_back({kVolatileThreading, path, line_no,
                         std::string("vola") + "tile under src/: it does not order or "
                         "publish anything between threads; use std::atomic with an "
                         "explicit memory order, registered in tools/atomics.toml"});
  }
}

// Flags environment reads under src/ outside init-named functions. The
// environment is a startup-time input: reading it per call costs a libc walk
// of environ and lets a long-lived process observe mutations that the rest of
// the system resolved once. Cold init code states the idiom in its name
// (Init*, *FromEnv, main); anything else caches a startup snapshot instead.
void CheckGetenv(const std::string& path, const std::vector<std::string>& raw_lines,
                 const std::vector<std::string>& code_lines,
                 std::vector<Finding>* findings) {
  if (path.find("src/") == std::string::npos) {
    return;
  }
  for (size_t i = 0; i < code_lines.size(); ++i) {
    if (!std::regex_search(code_lines[i], GetenvRe()) ||
        Suppressed(raw_lines[i], kGetenvOutsideInit)) {
      continue;
    }
    const std::string enclosing = EnclosingFunctionName(code_lines, i);
    if (std::regex_search(enclosing, InitNameRe())) {
      continue;
    }
    findings->push_back({kGetenvOutsideInit, path, static_cast<int>(i) + 1,
                         "get" "env in '" + (enclosing.empty() ? "?" : enclosing) +
                             "', which is not an init-time function (Init*, *FromEnv, main); "
                             "read the environment once at startup and cache the result"});
  }
}

// Flags `switch` statements over StatusCode that neither cover every
// enumerator nor carry a default. Operates on the comment-stripped lines so a
// commented-out case label cannot satisfy the check. The body is found by
// balancing parens from the switch condition and then braces; heuristic, but
// switches in this tree are plain statements, not macro soup.
void CheckStatusSwitches(const std::string& path, const std::vector<std::string>& raw_lines,
                         const std::vector<std::string>& code_lines,
                         std::vector<Finding>* findings) {
  for (size_t i = 0; i < code_lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(code_lines[i], m, SwitchRe())) {
      continue;
    }
    // Walk forward from just after "switch (": first balance the condition
    // parens, then capture the brace-balanced body.
    size_t line = i;
    size_t col = static_cast<size_t>(m.position(0) + m.length(0));
    int paren_depth = 1;
    int brace_depth = 0;
    bool in_body = false;
    std::string body;
    while (line < code_lines.size()) {
      const std::string& text = code_lines[line];
      for (; col < text.size(); ++col) {
        const char c = text[col];
        if (!in_body) {
          if (c == '(') {
            ++paren_depth;
          } else if (c == ')') {
            --paren_depth;
          } else if (c == '{' && paren_depth == 0) {
            in_body = true;
            brace_depth = 1;
          }
          continue;
        }
        if (c == '{') {
          ++brace_depth;
        } else if (c == '}') {
          if (--brace_depth == 0) {
            break;
          }
        }
        body.push_back(c);
      }
      if (in_body && brace_depth == 0) {
        break;
      }
      body.push_back('\n');
      ++line;
      col = 0;
    }
    std::set<std::string> covered;
    for (std::sregex_iterator it(body.begin(), body.end(), CaseStatusCodeRe()), end;
         it != end; ++it) {
      covered.insert((*it)[1].str());
    }
    if (covered.empty()) {
      continue;  // not a StatusCode switch
    }
    if (std::regex_search(body, DefaultLabelRe())) {
      continue;
    }
    std::vector<std::string> missing;
    for (const char* name : kStatusCodeNames) {
      if (covered.count(name) == 0) {
        missing.push_back(name);
      }
    }
    if (missing.empty()) {
      continue;  // exhaustive without default: fine, the compiler warns on new codes
    }
    if (Suppressed(raw_lines[i], kStatusSwitch)) {
      continue;
    }
    std::string msg = "switch over Status" "Code has no default and misses ";
    for (size_t k = 0; k < missing.size(); ++k) {
      if (k > 0) {
        msg += ", ";
      }
      msg += missing[k];
    }
    msg += "; add the missing cases or a default (enumerator list: tools/lint_rules.cc)";
    findings->push_back({kStatusSwitch, path, static_cast<int>(i) + 1, msg});
  }
}

// Flags an explicit BatchStep-Begin emission whose enclosing scope contains
// neither a matching End emission nor an RAII span. An early return between
// Begin and End leaks an open span and corrupts the Chrome trace's B/E
// nesting; trace::BatchStep-Span closes on every path. Scope is approximated
// by scanning forward from the trigger to the first unmatched '}' — calls at
// statement level inside a function body resolve to that function. Tests are
// exempt (they reference Begin events alone in assertions).
void CheckTraceSpans(const std::string& path, const std::vector<std::string>& raw_lines,
                     const std::vector<std::string>& code_lines,
                     std::vector<Finding>* findings) {
  if (IsTestFile(path)) {
    return;
  }
  const std::string end_token = std::string("BatchStep") + "End";
  const std::string span_token = std::string("BatchStep") + "Span";
  for (size_t i = 0; i < code_lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(code_lines[i], m, TraceSpanBeginRe())) {
      continue;
    }
    if (Suppressed(raw_lines[i], kTraceSpan)) {
      continue;
    }
    bool closed = false;
    int depth = 0;
    size_t line = i;
    size_t col = static_cast<size_t>(m.position(0) + m.length(0));
    while (line < code_lines.size()) {
      const std::string& text = code_lines[line];
      if (text.find(end_token, col) != std::string::npos ||
          text.find(span_token, col) != std::string::npos) {
        closed = true;
        break;
      }
      bool scope_over = false;
      for (; col < text.size(); ++col) {
        if (text[col] == '{') {
          ++depth;
        } else if (text[col] == '}' && --depth < 0) {
          scope_over = true;
          break;
        }
      }
      if (scope_over) {
        break;
      }
      ++line;
      col = 0;
    }
    if (!closed) {
      findings->push_back(
          {kTraceSpan, path, static_cast<int>(i) + 1,
           std::string("BatchStep") + "Begin emitted without a matching BatchStep" +
               "End or RAII BatchStep" +
               "Span in the enclosing scope; an early return would leak an open span — "
               "prefer trace::BatchStep" "Span"});
    }
  }
}

void CheckIncludeGuard(const std::string& path, const std::vector<std::string>& raw_lines,
                       std::vector<Finding>* findings) {
  if (!IsHeader(path)) {
    return;
  }
  bool in_block = false;
  for (const std::string& raw : raw_lines) {
    const std::string code = StripComments(raw, &in_block);
    if (std::regex_search(code, IfndefRe()) || std::regex_search(code, PragmaOnceRe())) {
      return;  // guarded
    }
    // Any other preprocessor directive or code before the guard means the
    // header is effectively unguarded.
    std::string trimmed;
    for (char c : code) {
      if (!isspace(static_cast<unsigned char>(c))) {
        trimmed.push_back(c);
      }
    }
    if (!trimmed.empty()) {
      break;
    }
  }
  if (!raw_lines.empty() && Suppressed(raw_lines[0], kMissingGuard)) {
    return;
  }
  findings->push_back({kMissingGuard, path, 1,
                       "header has neither an #ifndef include guard nor #pragma once"});
}

}  // namespace

std::vector<std::string> RuleNames() {
  return {kRawMutex,      kStatusNodiscard,     kSleepInTest,
          kNakedNew,      kThreadDetach,        kMissingGuard,
          kMutexLockTemporary, kStatusSwitch,   kTraceSpan,
          kRawSocketFd,   kRawSimd,             kGetenvOutsideInit,
          kVolatileThreading};
}

std::vector<Finding> LintContent(const std::string& path, const std::string& content) {
  std::vector<Finding> findings;
  std::vector<std::string> raw_lines;
  {
    std::istringstream stream(content);
    std::string line;
    while (std::getline(stream, line)) {
      raw_lines.push_back(line);
    }
  }
  std::vector<std::string> code_lines;
  code_lines.reserve(raw_lines.size());
  bool in_block = false;
  for (const std::string& raw : raw_lines) {
    code_lines.push_back(StripComments(raw, &in_block));
  }
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    CheckLine(path, static_cast<int>(i) + 1, raw_lines[i], code_lines[i], &findings);
  }
  CheckGetenv(path, raw_lines, code_lines, &findings);
  CheckStatusSwitches(path, raw_lines, code_lines, &findings);
  CheckTraceSpans(path, raw_lines, code_lines, &findings);
  CheckIncludeGuard(path, raw_lines, &findings);
  return findings;
}

std::vector<Finding> LintFile(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) {
    return {{kIoError, path, 0, "cannot open file"}};
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return LintContent(path, buffer.str());
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

}  // namespace lint
}  // namespace vlora

// Reusable call-graph framework for vlora_lint's file-graph passes.
//
// This is the machinery that originally grew inside the lock-order pass
// (tools/lock_order.cc) and is now shared by every whole-tree analysis:
//
//   * text utilities   — comment stripping lives in lint_rules.h; here are
//                        string blanking, trimming, line splitting, the
//                        per-line allow() suppression test
//   * CodeIndex        — class member types, known functions ("Class::Method"
//                        and free functions), method-name -> defining-classes,
//                        and every VLORA_* annotation attached to a signature
//   * BodyWalker       — a line-oriented scanner over .cc function bodies
//                        that tracks brace depth, signatures spanning lines,
//                        typed locals and parameters, lambda contexts, and
//                        reports resolved call edges to a client
//   * graph helpers    — transitive-attribute fixpoint (MayAcquire-style),
//                        reachability with parent chains for reporting
//   * ParseTomlTables  — the minimal TOML subset shared by
//                        tools/lock_hierarchy.toml and tools/hot_paths.toml
//   * LoadSourceTree   — filesystem walking into SourceFile lists
//
// The analysis posture is inherited from the lock-order pass: a heuristic
// over comment-stripped, string-blanked source — no real C++ parse. Call
// edges are only created when the callee resolves confidently (same class, a
// typed member / local receiver, or a method name defined by exactly one
// class). ScanOptions widens this per pass: the hot-path pass inlines lambda
// bodies into their enclosing function (they run on the calling thread),
// tracks free functions, and over-approximates virtual calls by fanning an
// unresolved method name out to every class that defines it. The lock-order
// pass keeps the original narrow settings: lambdas are separate contexts and
// unresolved calls are skipped, trading recall for zero false positives.
//
// DESIGN.md §13 documents the framework and how to add a new pass.

#ifndef VLORA_TOOLS_CALLGRAPH_H_
#define VLORA_TOOLS_CALLGRAPH_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint_rules.h"

namespace vlora {
namespace lint {

// A source file handed to an analysis; `path` decides applicability the same
// way LintContent does, so tests can feed synthetic trees.
struct SourceFile {
  std::string path;
  std::string content;
};

// ---------------------------------------------------------------------------
// Text utilities.
// ---------------------------------------------------------------------------

// Leading/trailing whitespace removed.
std::string TrimText(const std::string& s);

// Blanks out the contents of string and char literals (quotes stay, so token
// boundaries survive). Run after StripComments; keeps brace counting and the
// regex scans from reading literal text like lock names as code.
std::string BlankStrings(const std::string& code);

int CountChar(const std::string& s, char c);

// True when `raw_line` carries the `vlora-lint: allow(<rule>)` marker.
bool IsSuppressed(const std::string& raw_line, const char* rule);

// Last CamelCase identifier in a declaration's type text — unwraps smart
// pointers and containers ("std::vector<std::unique_ptr<Replica>>" -> Replica).
std::string LastClassIdent(const std::string& type_text);

std::vector<std::string> SplitLines(const std::string& content);

bool PathEndsWith(const std::string& s, const std::string& suffix);

// ---------------------------------------------------------------------------
// Pass 1: the code index.
// ---------------------------------------------------------------------------

// One VLORA_* annotation attached to a function signature, e.g.
// kind = "REQUIRES", args = "mutex_" — or kind = "HOT", args = "" for the
// parenthesis-free marker macros.
struct SigAnnotation {
  std::string kind;
  std::string args;
  std::string file;
  int line = 0;
};

struct CodeIndex {
  // "Class::member_" -> member's class type (for call-receiver resolution).
  std::map<std::string, std::string> member_types;
  // Functions with a known definition or an annotated declaration:
  // "Class::Method" always; bare free-function names when
  // ScanOptions::index_free_functions is set.
  std::set<std::string> known_funcs;
  // Method name -> every class that declares/defines it.
  std::map<std::string, std::set<std::string>> method_classes;
  // Free functions (namespace scope), bare names.
  std::set<std::string> free_funcs;
  // Qualified function -> its VLORA_* annotations, in declaration order.
  std::map<std::string, std::vector<SigAnnotation>> annotations;
};

// A per-line hook into the declaration scan, for pass-specific declaration
// syntax (ranked Mutex members, rank enums). Receives the comment-stripped,
// string-blanked code with the innermost enclosing class ("" at namespace
// scope).
using DeclLineFn = std::function<void(const std::string& current_class, const std::string& code,
                                      const std::string& raw, const std::string& path, int line)>;

struct ScanOptions {
  // Record namespace-scope function definitions (column-0 heuristic) in
  // known_funcs/free_funcs, and walk their bodies.
  bool index_free_functions = false;
  // Lambda bodies: false = separate contexts with nothing inherited from the
  // enclosing function (they may run on other threads — the lock-order
  // posture); true = scanned as part of the enclosing function (they run on
  // the calling thread — the hot-path posture).
  bool inline_lambdas = false;
  // Virtual-call over-approximation: a member call whose receiver class does
  // not resolve (or resolves to a class without that method) fans out to
  // every class defining the method, instead of only a unique definer.
  bool over_approximate_unresolved = false;
  // Also resolve chained calls (`Registry::Global().counter(...)`) by method
  // name, so singleton-accessor idioms produce edges.
  bool chained_calls = false;
  // Files for which declarations/definitions are indexed and scanned; the
  // default accepts everything. (The lock-order pass excludes sync.h: it
  // defines the lock primitives themselves.)
  std::function<bool(const std::string& path)> index_file;
};

// Scans declarations in every file: class tracking, member types, annotated
// signatures. `on_decl_line` (nullable) runs for each line of each indexed
// file.
void BuildCodeIndex(const std::vector<SourceFile>& files, const ScanOptions& options,
                    CodeIndex* index, const DeclLineFn& on_decl_line);

// Adds out-of-class definitions (`Class::Method(` anywhere; free functions at
// column 0 when index_free_functions) from one file to the index. Run over
// every .cc before body scanning so cross-file calls resolve.
void IndexDefinitions(const SourceFile& file, const ScanOptions& options, CodeIndex* index);

// ---------------------------------------------------------------------------
// Pass 2: the body walker.
// ---------------------------------------------------------------------------

class BodyWalker;

// Client hooks, invoked in source order. For each body line the order is:
// OnBodyText (pass-specific syntax: acquisitions, rule matches) then OnCall
// for every resolved call on the line, then OnLineEnd with the brace depth
// after the line (for scope-stack pops).
class BodyClient {
 public:
  virtual ~BodyClient() = default;
  // `body_depth` is the depth just inside the function's opening brace.
  virtual void OnFunctionEnter(const BodyWalker& walker, const std::string& signature,
                               int body_depth) {
    (void)walker;
    (void)signature;
    (void)body_depth;
  }
  virtual void OnBodyText(const BodyWalker& walker, const std::string& text,
                          const std::string& raw, int line_no, int depth_at_start) {
    (void)walker;
    (void)text;
    (void)raw;
    (void)line_no;
    (void)depth_at_start;
  }
  virtual void OnCall(const BodyWalker& walker, const std::string& callee, const std::string& raw,
                      int line_no) {
    (void)walker;
    (void)callee;
    (void)raw;
    (void)line_no;
  }
  virtual void OnLineEnd(const BodyWalker& walker, int depth_after) {
    (void)walker;
    (void)depth_after;
  }
  virtual void OnFunctionExit(const BodyWalker& walker) { (void)walker; }
};

// Walks one file's function bodies line by line. Construct once per file.
class BodyWalker {
 public:
  BodyWalker(const CodeIndex* index, const ScanOptions* options, BodyClient* client);

  void ScanFile(const SourceFile& file);

  // Current function ("" between functions). fn_class is empty for free
  // functions; fn_qual is "Class::Method" or the bare free-function name.
  const std::string& fn_class() const { return fn_class_; }
  const std::string& fn_qual() const { return fn_qual_; }
  const std::string& path() const { return path_; }
  bool in_func() const { return in_func_; }

  // Resolves the class a call receiver refers to ("this", a typed local or
  // parameter, or a member of the current class); empty when unknown.
  std::string ReceiverClass(const std::string& receiver) const;

 private:
  void ProcessLine(const std::string& raw, int line_no);
  void ScanBodyText(std::string text, const std::string& raw, int line_no, int depth_at_start);
  void EnterFunction(const std::string& sig, int close_depth);
  void EmitCallsFor(const std::string& text, const std::string& raw, int line_no);
  void PopScopes();

  const CodeIndex* index_;
  const ScanOptions* options_;
  BodyClient* client_;
  std::string path_;
  int depth_ = 0;
  bool in_block_ = false;
  bool in_func_ = false;
  bool collecting_sig_ = false;
  std::string sig_buf_;
  std::string fn_class_;
  std::string fn_qual_;
  int fn_close_depth_ = 0;
  int lambda_suppress_depth_ = -1;  // active when >= 0 (isolated-lambda mode)
  std::map<std::string, std::string> locals_;  // var -> type class
};

// ---------------------------------------------------------------------------
// Graph helpers.
// ---------------------------------------------------------------------------

// Transitive closure of per-function attribute sets over the call graph:
// each caller's set absorbs its callees' sets until nothing changes. This is
// the MayAcquire fixpoint from the lock-order pass, generalised.
void PropagateTransitive(const std::map<std::string, std::set<std::string>>& callees,
                         std::map<std::string, std::set<std::string>>* attrs);

// BFS reachability from `roots` over `callees`, never expanding through a
// function listed in `boundaries`. `parent` maps each reached function to the
// caller it was first discovered from (roots map to "").
struct Reachability {
  std::map<std::string, std::string> parent;

  bool Contains(const std::string& fn) const { return parent.count(fn) != 0; }
  // "root -> ... -> fn", for finding messages.
  std::vector<std::string> ChainTo(const std::string& fn) const;
};

Reachability ComputeReachable(const std::set<std::string>& roots,
                              const std::map<std::string, std::set<std::string>>& callees,
                              const std::set<std::string>& boundaries);

// ---------------------------------------------------------------------------
// Config files and the filesystem.
// ---------------------------------------------------------------------------

// One `key = value` line from a pass registry file, with the [section] it
// appeared under and its 1-based line number (for pass-specific diagnostics
// like integer-parse errors).
struct TomlEntry {
  std::string section;
  std::string key;
  std::string value;
  int line = 0;
};

// Parses the minimal TOML subset shared by the pass registries: [section]
// headers restricted to `allowed_sections`, `key = value` with optionally
// quoted keys and values, and # comments. Values stay strings; passes
// convert. Returns false and fills *error on malformed input.
bool ParseTomlTables(const std::string& content, const std::set<std::string>& allowed_sections,
                     std::vector<TomlEntry>* out, std::string* error);

// Recursively collects .h/.cc/.cpp files under each root (a root may also be
// a single file) and loads them, sorted by path. IO problems surface as
// io-error findings instead of crashes.
std::vector<SourceFile> LoadSourceTree(const std::vector<std::string>& roots,
                                       std::vector<Finding>* findings);

}  // namespace lint
}  // namespace vlora

#endif  // VLORA_TOOLS_CALLGRAPH_H_

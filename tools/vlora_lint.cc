// vlora_lint: repo-local static checks that clang/gcc do not cover.
//
// Usage: vlora_lint <file-or-dir>...
//        vlora_lint --lock-order <hierarchy.toml> <file-or-dir>...
//        vlora_lint --hot-path <hot_paths.toml> <file-or-dir>...
//        vlora_lint --atomics <atomics.toml> <file-or-dir>...
//        vlora_lint --codec-symmetry <file-or-dir>...
//
// The first form runs the per-line rules (tools/lint_rules.h). The others
// run the whole-tree file-graph passes built on tools/callgraph.h: the
// lock-order pass (tools/lock_order.h) against tools/lock_hierarchy.toml,
// the hot-path purity pass (tools/hot_path.h) against tools/hot_paths.toml,
// the atomics-discipline pass (tools/atomics.h) against tools/atomics.toml,
// and the wire-codec symmetry pass (tools/codec_symmetry.h). Directories are
// walked recursively for .h/.cc/.cpp sources; every finding prints as
// "file:line: [rule] message" and a non-empty report exits 1, so the binary
// slots straight into ctest / CI.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/atomics.h"
#include "tools/codec_symmetry.h"
#include "tools/hot_path.h"
#include "tools/lint_rules.h"
#include "tools/lock_order.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

void Collect(const fs::path& root, std::vector<std::string>* files) {
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; it != end; it.increment(ec)) {
      if (ec) {
        break;
      }
      if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
        files->push_back(it->path().generic_string());
      }
    }
  } else {
    files->push_back(root.generic_string());
  }
}

// Prints a pass's findings and returns its exit code.
int ReportPass(const char* pass_name, const std::vector<vlora::lint::Finding>& findings) {
  for (const vlora::lint::Finding& finding : findings) {
    std::printf("%s\n", vlora::lint::FormatFinding(finding).c_str());
  }
  std::printf("vlora_lint: %s: %zu finding(s)\n", pass_name, findings.size());
  return findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file-or-dir>...\n"
                 "       %s --lock-order <hierarchy.toml> <file-or-dir>...\n"
                 "       %s --hot-path <hot_paths.toml> <file-or-dir>...\n"
                 "       %s --atomics <atomics.toml> <file-or-dir>...\n"
                 "       %s --codec-symmetry <file-or-dir>...\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  if (mode == "--lock-order" || mode == "--hot-path" || mode == "--atomics") {
    if (argc < 4) {
      std::fprintf(stderr, "usage: %s %s <config.toml> <file-or-dir>...\n", argv[0],
                   mode.c_str());
      return 2;
    }
    std::vector<std::string> roots;
    for (int i = 3; i < argc; ++i) {
      roots.push_back(argv[i]);
    }
    if (mode == "--lock-order") {
      return ReportPass("lock-order", vlora::lint::CheckLockOrderOverTree(argv[2], roots));
    }
    if (mode == "--atomics") {
      return ReportPass("atomics", vlora::lint::CheckAtomicsOverTree(argv[2], roots));
    }
    return ReportPass("hot-path", vlora::lint::CheckHotPathsOverTree(argv[2], roots));
  }
  if (mode == "--codec-symmetry") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --codec-symmetry <file-or-dir>...\n", argv[0]);
      return 2;
    }
    std::vector<std::string> roots;
    for (int i = 2; i < argc; ++i) {
      roots.push_back(argv[i]);
    }
    return ReportPass("codec-symmetry", vlora::lint::CheckCodecSymmetryOverTree(roots));
  }
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    Collect(fs::path(argv[i]), &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  int64_t findings_count = 0;
  for (const std::string& file : files) {
    for (const vlora::lint::Finding& finding : vlora::lint::LintFile(file)) {
      std::printf("%s\n", vlora::lint::FormatFinding(finding).c_str());
      ++findings_count;
    }
  }
  std::printf("vlora_lint: %lld finding(s) in %zu file(s)\n",
              static_cast<long long>(findings_count), files.size());
  return findings_count == 0 ? 0 : 1;
}

// vlora_lint: repo-local static checks that clang/gcc do not cover.
//
// Usage: vlora_lint <file-or-dir>...
//        vlora_lint --lock-order <hierarchy.toml> <file-or-dir>...
//
// The first form runs the per-line rules (tools/lint_rules.h). The second
// runs the whole-tree lock-order pass (tools/lock_order.h) against the
// canonical hierarchy in tools/lock_hierarchy.toml. Directories are walked
// recursively for .h/.cc/.cpp sources; every finding prints as
// "file:line: [rule] message" and a non-empty report exits 1, so the binary
// slots straight into ctest / CI.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/lint_rules.h"
#include "tools/lock_order.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

void Collect(const fs::path& root, std::vector<std::string>* files) {
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; it != end; it.increment(ec)) {
      if (ec) {
        break;
      }
      if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
        files->push_back(it->path().generic_string());
      }
    }
  } else {
    files->push_back(root.generic_string());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file-or-dir>...\n"
                 "       %s --lock-order <hierarchy.toml> <file-or-dir>...\n",
                 argv[0], argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--lock-order") {
    if (argc < 4) {
      std::fprintf(stderr, "usage: %s --lock-order <hierarchy.toml> <file-or-dir>...\n",
                   argv[0]);
      return 2;
    }
    std::vector<std::string> roots;
    for (int i = 3; i < argc; ++i) {
      roots.push_back(argv[i]);
    }
    const std::vector<vlora::lint::Finding> findings =
        vlora::lint::CheckLockOrderOverTree(argv[2], roots);
    for (const vlora::lint::Finding& finding : findings) {
      std::printf("%s\n", vlora::lint::FormatFinding(finding).c_str());
    }
    std::printf("vlora_lint: lock-order: %zu finding(s)\n", findings.size());
    return findings.empty() ? 0 : 1;
  }
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    Collect(fs::path(argv[i]), &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  int64_t findings_count = 0;
  for (const std::string& file : files) {
    for (const vlora::lint::Finding& finding : vlora::lint::LintFile(file)) {
      std::printf("%s\n", vlora::lint::FormatFinding(finding).c_str());
      ++findings_count;
    }
  }
  std::printf("vlora_lint: %lld finding(s) in %zu file(s)\n",
              static_cast<long long>(findings_count), files.size());
  return findings_count == 0 ? 0 : 1;
}

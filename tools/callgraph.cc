#include "tools/callgraph.h"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace vlora {
namespace lint {
namespace {

const char kIoError[] = "io-error";

// Shared regexes. Pattern text for names like Mutex / Lock is assembled from
// adjacent literals the same way lint_rules.cc does, so the whole-tree
// per-line scan never trips over this file's own source.

const std::regex& ClassStartRe() {
  static const std::regex re("\\b(class|struct)\\s+(?:\\[\\[\\w+\\]\\]\\s+)?([A-Za-z_]\\w*)");
  return re;
}

const std::regex& MemberDeclRe() {
  static const std::regex re(
      "^\\s*(?:mutable\\s+)?([A-Za-z_][\\w:]*(?:\\s*<[^;]*>)?[\\s*&]+)(\\w+_)\\s*(?:[;={]|VLORA_)");
  return re;
}

const std::regex& AnnotatedSigRe() {
  // `Name(params) const VLORA_X(...) VLORA_Y {` or `...;` — one level of
  // nested parens inside the parameter list is enough for this tree. The
  // parenthesis group after each macro is optional so marker macros without
  // arguments (VLORA_HOT) are annotations too.
  static const std::regex re(
      "([A-Za-z_]\\w*)\\s*\\(((?:[^()]|\\([^()]*\\))*)\\)\\s*(?:const\\b\\s*)?"
      "((?:VLORA_\\w+\\s*(?:\\([^()]*\\))?\\s*)+)[;{]");
  return re;
}

const std::regex& AnnotationRe() {
  static const std::regex re("VLORA_(\\w+)\\s*(?:\\(([^()]*)\\))?");
  return re;
}

const std::regex& DefStartRe() {
  static const std::regex re("\\b([A-Z]\\w*)::(~?\\w+)\\s*\\(");
  return re;
}

// Free-function definitions: a return type and name starting at column 0.
// Anchoring at the line start keeps body-interior calls from matching;
// keyword guards catch the control-flow lines that survive anchoring.
const std::regex& FreeDefStartRe() {
  static const std::regex re(
      "^(?:static\\s+|inline\\s+|constexpr\\s+)*(?:const\\s+)?"
      "[A-Za-z_][\\w:]*(?:\\s*<[^;{]*>)?[\\s*&]+([A-Za-z_]\\w*)\\s*\\(");
  return re;
}

bool IsKeyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "if", "for", "while", "switch", "return", "else", "do", "sizeof", "case",
      "catch", "delete", "defined", "alignof", "decltype", "static_assert"};
  return kKeywords.count(word) != 0;
}

const std::regex& MemberCallRe() {
  static const std::regex re(
      "\\b([A-Za-z_]\\w*)\\s*((?:\\[[^\\]]*\\])*)\\s*(?:\\.|->)\\s*([A-Za-z_]\\w*)\\s*\\(");
  return re;
}

const std::regex& BareCallRe() {
  static const std::regex re("(?:^|[^.\\w:>])([A-Za-z_]\\w*)\\s*\\(");
  return re;
}

const std::regex& NamespaceCallRe() {
  // `ns::Func(...)` with a lowercase namespace prefix — free-function calls
  // through a namespace qualifier (trace::EmitRouted). Uppercase prefixes are
  // `Class::Static(...)` and stay with the member machinery.
  static const std::regex re("\\b([a-z_]\\w*)::([A-Za-z_]\\w*)\\s*\\(");
  return re;
}

const std::regex& ChainedCallRe() {
  // `...).method(` — a call on the result of another call, e.g. the
  // `Registry::Global().counter(...)` singleton idiom. The receiver type is
  // unknowable here; resolution is by method name.
  static const std::regex re("\\)\\s*(?:\\.|->)\\s*([A-Za-z_]\\w*)\\s*\\(");
  return re;
}

const std::regex& LambdaOpenRe() {
  static const std::regex re(
      "\\[[^\\]]*\\]\\s*(?:\\((?:[^()]|\\([^()]*\\))*\\))?\\s*(?:mutable\\s*)?"
      "(?:->\\s*[\\w:<>]+\\s*)?\\{");
  return re;
}

const std::regex& TypedLocalRe() {
  static const std::regex re("(?:^|[(\\s])(?:const\\s+)?([A-Z]\\w*)\\s*[*&]\\s*(\\w+)\\s*[=:]");
  return re;
}

const std::regex& AutoRangeForRe() {
  static const std::regex re("for\\s*\\(\\s*(?:const\\s+)?auto[*&]?\\s+(\\w+)\\s*:\\s*(\\w+)");
  return re;
}

bool FileIndexed(const ScanOptions& options, const std::string& path) {
  return !options.index_file || options.index_file(path);
}

}  // namespace

// ---------------------------------------------------------------------------
// Text utilities.
// ---------------------------------------------------------------------------

std::string TrimText(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string BlankStrings(const std::string& code) {
  std::string out = code;
  bool in_string = false;
  char quote = '"';
  for (size_t i = 0; i < out.size(); ++i) {
    if (in_string) {
      if (out[i] == '\\') {
        out[i] = ' ';
        if (i + 1 < out.size()) {
          out[i + 1] = ' ';
          ++i;
        }
        continue;
      }
      if (out[i] == quote) {
        in_string = false;
        continue;
      }
      out[i] = ' ';
    } else if (out[i] == '"' || out[i] == '\'') {
      in_string = true;
      quote = out[i];
    }
  }
  return out;
}

int CountChar(const std::string& s, char c) {
  return static_cast<int>(std::count(s.begin(), s.end(), c));
}

bool IsSuppressed(const std::string& raw_line, const char* rule) {
  const std::string marker = std::string("vlora-lint: allow(") + rule + ")";
  return raw_line.find(marker) != std::string::npos;
}

std::string LastClassIdent(const std::string& type_text) {
  static const std::regex ident_re("\\b([A-Z]\\w*)\\b");
  std::string last;
  for (std::sregex_iterator it(type_text.begin(), type_text.end(), ident_re), end; it != end;
       ++it) {
    last = (*it)[1].str();
  }
  return last;
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::istringstream stream(content);
  std::string line;
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  return lines;
}

bool PathEndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Pass 1: the code index.
// ---------------------------------------------------------------------------

namespace {

void ScanFileDeclarations(const SourceFile& file, const ScanOptions& options, CodeIndex* index,
                          const DeclLineFn& on_decl_line) {
  struct ClassFrame {
    std::string name;
    int depth;
  };
  std::vector<ClassFrame> stack;
  int depth = 0;
  bool in_block = false;
  std::string pending_class;
  std::string decl_buf;
  int decl_buf_line = 0;
  const std::vector<std::string> raw_lines = SplitLines(file.content);
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& raw = raw_lines[i];
    const std::string code = BlankStrings(StripComments(raw, &in_block));
    const int line_no = static_cast<int>(i) + 1;
    const std::string current_class = stack.empty() ? "" : stack.back().name;

    if (on_decl_line) {
      on_decl_line(current_class, code, raw, file.path, line_no);
    }

    // Class/struct tracking (enum class is not a class scope).
    std::smatch cm;
    if (code.find("enum") == std::string::npos && std::regex_search(code, cm, ClassStartRe())) {
      const size_t after = static_cast<size_t>(cm.position(0) + cm.length(0));
      const size_t brace = code.find('{', after);
      const size_t semi = code.find(';', after);
      if (brace != std::string::npos && (semi == std::string::npos || brace < semi)) {
        stack.push_back({cm[2].str(), depth});
      } else if (semi == std::string::npos) {
        pending_class = cm[2].str();
      }
    } else if (!pending_class.empty()) {
      const size_t brace = code.find('{');
      const size_t semi = code.find(';');
      if (brace != std::string::npos && (semi == std::string::npos || brace < semi)) {
        stack.push_back({pending_class, depth});
        pending_class.clear();
      } else if (semi != std::string::npos) {
        pending_class.clear();
      }
    }

    // Member types for call-receiver resolution.
    if (!current_class.empty()) {
      std::smatch tm;
      if (std::regex_search(code, tm, MemberDeclRe())) {
        const std::string type = LastClassIdent(tm[1].str());
        if (!type.empty()) {
          index->member_types[current_class + "::" + tm[2].str()] = type;
        }
      }
    }

    // Annotated function declarations (logical-line buffered).
    if (decl_buf.empty()) {
      decl_buf_line = line_no;
    }
    decl_buf += code;
    decl_buf += ' ';
    if (code.find(';') != std::string::npos || code.find('{') != std::string::npos) {
      std::smatch sm;
      if (std::regex_search(decl_buf, sm, AnnotatedSigRe())) {
        const std::string fname = sm[1].str();
        const std::string qual = current_class.empty() ? fname : current_class + "::" + fname;
        std::vector<SigAnnotation>& annos = index->annotations[qual];
        if (!current_class.empty()) {
          index->method_classes[fname].insert(current_class);
          index->known_funcs.insert(qual);
        } else if (options.index_free_functions) {
          index->free_funcs.insert(qual);
          index->known_funcs.insert(qual);
        }
        std::smatch am;
        std::string rest = sm[3].str();
        while (std::regex_search(rest, am, AnnotationRe())) {
          annos.push_back({am[1].str(), am[2].matched ? am[2].str() : "", file.path,
                           decl_buf_line});
          rest = am.suffix().str();
        }
      }
      decl_buf.clear();
    }

    depth += CountChar(code, '{') - CountChar(code, '}');
    while (!stack.empty() && depth <= stack.back().depth) {
      stack.pop_back();
    }
  }
}

}  // namespace

void BuildCodeIndex(const std::vector<SourceFile>& files, const ScanOptions& options,
                    CodeIndex* index, const DeclLineFn& on_decl_line) {
  for (const SourceFile& file : files) {
    if (!FileIndexed(options, file.path)) {
      continue;
    }
    ScanFileDeclarations(file, options, index, on_decl_line);
  }
}

void IndexDefinitions(const SourceFile& file, const ScanOptions& options, CodeIndex* index) {
  if (!FileIndexed(options, file.path)) {
    return;
  }
  bool in_block = false;
  for (const std::string& raw : SplitLines(file.content)) {
    const std::string code = BlankStrings(StripComments(raw, &in_block));
    std::smatch m;
    std::string rest = code;
    while (std::regex_search(rest, m, DefStartRe())) {
      index->known_funcs.insert(m[1].str() + "::" + m[2].str());
      index->method_classes[m[2].str()].insert(m[1].str());
      rest = m.suffix().str();
    }
    if (options.index_free_functions && std::regex_search(code, m, FreeDefStartRe()) &&
        !IsKeyword(m[1].str())) {
      index->free_funcs.insert(m[1].str());
      index->known_funcs.insert(m[1].str());
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: the body walker.
// ---------------------------------------------------------------------------

BodyWalker::BodyWalker(const CodeIndex* index, const ScanOptions* options, BodyClient* client)
    : index_(index), options_(options), client_(client) {}

void BodyWalker::ScanFile(const SourceFile& file) {
  path_ = file.path;
  depth_ = 0;
  in_block_ = false;
  in_func_ = false;
  collecting_sig_ = false;
  sig_buf_.clear();
  lambda_suppress_depth_ = -1;
  const std::vector<std::string> raw_lines = SplitLines(file.content);
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    ProcessLine(raw_lines[i], static_cast<int>(i) + 1);
  }
}

std::string BodyWalker::ReceiverClass(const std::string& receiver) const {
  if (receiver == "this") {
    return fn_class_;
  }
  auto local = locals_.find(receiver);
  if (local != locals_.end()) {
    return local->second;
  }
  auto member = index_->member_types.find(fn_class_ + "::" + receiver);
  if (member != index_->member_types.end()) {
    return member->second;
  }
  return "";
}

void BodyWalker::EnterFunction(const std::string& sig, int close_depth) {
  std::smatch m;
  if (std::regex_search(sig, m, DefStartRe())) {
    fn_class_ = m[1].str();
    fn_qual_ = fn_class_ + "::" + m[2].str();
  } else if (options_->index_free_functions) {
    // Column-0 free-function definitions (the sig buffer starts at the def
    // line, so the anchor still means column 0 of the source line).
    std::smatch fm;
    if (!std::regex_search(sig, fm, FreeDefStartRe()) || IsKeyword(fm[1].str())) {
      in_func_ = false;
      return;
    }
    fn_class_.clear();
    fn_qual_ = fm[1].str();
  } else {
    in_func_ = false;
    return;
  }
  fn_close_depth_ = close_depth;
  in_func_ = true;
  locals_.clear();
  // Parameters typed `Class* p` / `Class& p`.
  std::smatch pm;
  std::string rest = sig;
  static const std::regex param_re("([A-Z]\\w*)\\s*[*&]\\s*(\\w+)\\s*[,)]");
  while (std::regex_search(rest, pm, param_re)) {
    locals_[pm[2].str()] = pm[1].str();
    rest = pm.suffix().str();
  }
  if (client_ != nullptr) {
    client_->OnFunctionEnter(*this, sig, close_depth + 1);
  }
}

void BodyWalker::EmitCallsFor(const std::string& text, const std::string& raw, int line_no) {
  if (client_ == nullptr) {
    return;
  }
  std::smatch m;

  // Member calls. A typed receiver wins; an unresolved receiver falls back to
  // a uniquely named method; over_approximate_unresolved additionally fans
  // anything still unresolved out to every class defining the method.
  std::string rest = text;
  while (std::regex_search(rest, m, MemberCallRe())) {
    const std::string receiver = m[1].str();
    const std::string method = m[3].str();
    std::string cls = ReceiverClass(receiver);
    if (cls.empty()) {
      auto by_name = index_->method_classes.find(method);
      if (by_name != index_->method_classes.end() && by_name->second.size() == 1) {
        cls = *by_name->second.begin();
      }
    }
    bool emitted = false;
    if (!cls.empty() && index_->known_funcs.count(cls + "::" + method)) {
      client_->OnCall(*this, cls + "::" + method, raw, line_no);
      emitted = true;
    }
    if (!emitted && options_->over_approximate_unresolved) {
      auto by_name = index_->method_classes.find(method);
      if (by_name != index_->method_classes.end()) {
        for (const std::string& definer : by_name->second) {
          const std::string qual = definer + "::" + method;
          if (index_->known_funcs.count(qual)) {
            client_->OnCall(*this, qual, raw, line_no);
          }
        }
      }
    }
    rest = m.suffix().str();
  }

  // Bare calls (same class, a uniquely named method, or a free function).
  rest = text;
  while (std::regex_search(rest, m, BareCallRe())) {
    const std::string method = m[1].str();
    std::string callee;
    if (!fn_class_.empty() && index_->known_funcs.count(fn_class_ + "::" + method)) {
      callee = fn_class_ + "::" + method;
    } else if (options_->index_free_functions && index_->free_funcs.count(method)) {
      callee = method;
    } else {
      auto by_name = index_->method_classes.find(method);
      if (by_name != index_->method_classes.end() && by_name->second.size() == 1 &&
          index_->known_funcs.count(*by_name->second.begin() + "::" + method)) {
        callee = *by_name->second.begin() + "::" + method;
      }
    }
    if (!callee.empty() && callee != fn_qual_) {
      client_->OnCall(*this, callee, raw, line_no);
    }
    rest = m.suffix().str();
  }

  // Namespace-qualified free-function calls (trace::EmitRouted(...)).
  if (options_->index_free_functions) {
    rest = text;
    while (std::regex_search(rest, m, NamespaceCallRe())) {
      const std::string name = m[2].str();
      if (index_->free_funcs.count(name) && name != fn_qual_) {
        client_->OnCall(*this, name, raw, line_no);
      }
      rest = m.suffix().str();
    }
  }

  // Chained calls, resolved by method name only.
  if (options_->chained_calls) {
    rest = text;
    while (std::regex_search(rest, m, ChainedCallRe())) {
      const std::string method = m[1].str();
      auto by_name = index_->method_classes.find(method);
      if (by_name != index_->method_classes.end()) {
        const bool fan_out =
            by_name->second.size() == 1 || options_->over_approximate_unresolved;
        if (fan_out) {
          for (const std::string& definer : by_name->second) {
            const std::string qual = definer + "::" + method;
            if (index_->known_funcs.count(qual) && qual != fn_qual_) {
              client_->OnCall(*this, qual, raw, line_no);
            }
          }
        }
      }
      rest = m.suffix().str();
    }
  }
}

void BodyWalker::ScanBodyText(std::string text, const std::string& raw, int line_no,
                              int depth_at_start) {
  if (!options_->inline_lambdas) {
    // Excise lambdas that open and close within this line; multi-line lambdas
    // suppress scanning until their closing brace (they run on other threads,
    // with no context inherited from here).
    std::smatch lm;
    while (std::regex_search(text, lm, LambdaOpenRe())) {
      const size_t open = static_cast<size_t>(lm.position(0) + lm.length(0)) - 1;
      int bal = 0;
      size_t close = std::string::npos;
      for (size_t i = open; i < text.size(); ++i) {
        if (text[i] == '{') {
          ++bal;
        } else if (text[i] == '}') {
          if (--bal == 0) {
            close = i;
            break;
          }
        }
      }
      if (close == std::string::npos) {
        int lead = 0;
        for (size_t i = 0; i < static_cast<size_t>(lm.position(0)); ++i) {
          if (text[i] == '{') {
            ++lead;
          } else if (text[i] == '}') {
            --lead;
          }
        }
        lambda_suppress_depth_ = depth_at_start + lead;
        text = text.substr(0, static_cast<size_t>(lm.position(0)));
        break;
      }
      text.erase(static_cast<size_t>(lm.position(0)),
                 close - static_cast<size_t>(lm.position(0)) + 1);
    }
  }

  // Local typings.
  std::smatch m;
  std::string rest = text;
  while (std::regex_search(rest, m, TypedLocalRe())) {
    locals_[m[2].str()] = m[1].str();
    rest = m.suffix().str();
  }
  if (std::regex_search(text, m, AutoRangeForRe())) {
    auto member = index_->member_types.find(fn_class_ + "::" + m[2].str());
    if (member != index_->member_types.end()) {
      locals_[m[1].str()] = member->second;
    }
  }

  if (client_ != nullptr) {
    client_->OnBodyText(*this, text, raw, line_no, depth_at_start);
  }
  EmitCallsFor(text, raw, line_no);
}

void BodyWalker::ProcessLine(const std::string& raw, int line_no) {
  const std::string code = BlankStrings(StripComments(raw, &in_block_));
  const int depth_before = depth_;
  std::string body_text;

  if (lambda_suppress_depth_ >= 0) {
    depth_ += CountChar(code, '{') - CountChar(code, '}');
    if (depth_ <= lambda_suppress_depth_) {
      lambda_suppress_depth_ = -1;
    }
    PopScopes();
    return;
  }

  if (!in_func_) {
    const bool def_start =
        std::regex_search(code, DefStartRe()) ||
        (options_->index_free_functions && std::regex_search(code, FreeDefStartRe()));
    if (!collecting_sig_ && def_start) {
      collecting_sig_ = true;
      sig_buf_.clear();
    }
    if (collecting_sig_) {
      sig_buf_ += code;
      sig_buf_ += ' ';
      const size_t brace = sig_buf_.find('{');
      const size_t semi = sig_buf_.find(';');
      if (brace != std::string::npos && (semi == std::string::npos || brace < semi)) {
        EnterFunction(sig_buf_.substr(0, brace), depth_before);
        collecting_sig_ = false;
        // Anything after the body-open brace on this line is body text
        // (one-line definitions like `A::~A() { Stop(); }`).
        const size_t line_brace = code.find('{');
        if (in_func_ && line_brace != std::string::npos && line_brace + 1 < code.size()) {
          body_text = code.substr(line_brace + 1);
        }
        sig_buf_.clear();
      } else if (semi != std::string::npos) {
        collecting_sig_ = false;
        sig_buf_.clear();
      }
      if (!in_func_ || body_text.empty()) {
        depth_ += CountChar(code, '{') - CountChar(code, '}');
        PopScopes();
        return;
      }
      // Fall through to scan the same-line body remainder.
      ScanBodyText(body_text, raw, line_no, depth_before + 1);
      depth_ += CountChar(code, '{') - CountChar(code, '}');
      PopScopes();
      return;
    }
    depth_ += CountChar(code, '{') - CountChar(code, '}');
    return;
  }

  ScanBodyText(code, raw, line_no, depth_before);
  depth_ += CountChar(code, '{') - CountChar(code, '}');
  PopScopes();
}

void BodyWalker::PopScopes() {
  if (client_ != nullptr && in_func_) {
    client_->OnLineEnd(*this, depth_);
  }
  if (in_func_ && depth_ <= fn_close_depth_) {
    in_func_ = false;
    locals_.clear();
    if (client_ != nullptr) {
      client_->OnFunctionExit(*this);
    }
    fn_class_.clear();
    fn_qual_.clear();
  }
}

// ---------------------------------------------------------------------------
// Graph helpers.
// ---------------------------------------------------------------------------

void PropagateTransitive(const std::map<std::string, std::set<std::string>>& callees,
                         std::map<std::string, std::set<std::string>>* attrs) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [fn, fns] : callees) {
      std::set<std::string>& mine = (*attrs)[fn];
      const size_t before = mine.size();
      for (const std::string& callee : fns) {
        auto theirs = attrs->find(callee);
        if (theirs != attrs->end() && &theirs->second != &mine) {
          mine.insert(theirs->second.begin(), theirs->second.end());
        }
      }
      changed = changed || mine.size() != before;
    }
  }
}

std::vector<std::string> Reachability::ChainTo(const std::string& fn) const {
  std::vector<std::string> chain;
  std::string node = fn;
  while (true) {
    chain.push_back(node);
    auto it = parent.find(node);
    if (it == parent.end() || it->second.empty()) {
      break;
    }
    node = it->second;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

Reachability ComputeReachable(const std::set<std::string>& roots,
                              const std::map<std::string, std::set<std::string>>& callees,
                              const std::set<std::string>& boundaries) {
  Reachability out;
  std::deque<std::string> queue;
  for (const std::string& root : roots) {
    if (boundaries.count(root)) {
      continue;
    }
    out.parent[root] = "";
    queue.push_back(root);
  }
  while (!queue.empty()) {
    const std::string node = queue.front();
    queue.pop_front();
    auto edges = callees.find(node);
    if (edges == callees.end()) {
      continue;
    }
    for (const std::string& next : edges->second) {
      if (out.parent.count(next) || boundaries.count(next)) {
        continue;
      }
      out.parent[next] = node;
      queue.push_back(next);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Config files and the filesystem.
// ---------------------------------------------------------------------------

bool ParseTomlTables(const std::string& content, const std::set<std::string>& allowed_sections,
                     std::vector<TomlEntry>* out, std::string* error) {
  out->clear();
  std::string section;
  int line_no = 0;
  for (const std::string& raw : SplitLines(content)) {
    ++line_no;
    std::string line = raw;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = TrimText(line);
    if (line.empty()) {
      continue;
    }
    if (line.front() == '[' && line.back() == ']') {
      section = TrimText(line.substr(1, line.size() - 2));
      if (allowed_sections.count(section) == 0) {
        *error = "line " + std::to_string(line_no) + ": unknown section [" + section + "]";
        return false;
      }
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos || section.empty()) {
      *error = "line " + std::to_string(line_no) + ": expected `key = value` inside a section";
      return false;
    }
    auto unquote = [](std::string s) {
      s = TrimText(s);
      if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
        s = s.substr(1, s.size() - 2);
      }
      return s;
    };
    const std::string key = unquote(line.substr(0, eq));
    const std::string value = unquote(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      *error = "line " + std::to_string(line_no) + ": empty key or value";
      return false;
    }
    out->push_back({section, key, value, line_no});
  }
  return true;
}

std::vector<SourceFile> LoadSourceTree(const std::vector<std::string>& roots,
                                       std::vector<Finding>* findings) {
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_regular_file(root, ec)) {
      paths.push_back(root);
      continue;
    }
    std::filesystem::recursive_directory_iterator it(root, ec), end;
    if (ec) {
      findings->push_back({kIoError, root, 0, "cannot walk directory: " + ec.message()});
      continue;
    }
    for (; it != end; it.increment(ec)) {
      if (ec) {
        break;
      }
      if (!it->is_regular_file()) {
        continue;
      }
      const std::string path = it->path().generic_string();
      if (PathEndsWith(path, ".h") || PathEndsWith(path, ".cc") || PathEndsWith(path, ".cpp")) {
        paths.push_back(path);
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream stream(path);
    if (!stream) {
      findings->push_back({kIoError, path, 0, "cannot open file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    files.push_back({path, buffer.str()});
  }
  return files;
}

}  // namespace lint
}  // namespace vlora

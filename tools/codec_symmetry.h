// Wire-codec symmetry analysis behind vlora_lint --codec-symmetry.
//
// The framed binary protocol in src/net writes and reads messages through
// WireWriter / WireReader primitive calls (U8, U16, ..., Varint, Str,
// F32Array). Every encoder must emit exactly the primitive sequence its
// decoder consumes; a field added on one side only, or two fields swapped,
// silently skews the wire format. This pass extracts the ordered primitive
// sequence of every codec function in the given files (recursively inlining
// helper calls like ReadTensor or AppendModelConfig at their call site),
// pairs encoders with decoders, and diffs the sequences:
//
//   codec-asymmetry   a paired encoder/decoder whose primitive sequences
//                     diverge (reported with the first differing position)
//   codec-unpaired    a codec function with no counterpart: an AppendX /
//                     EncodeX with no ParseX / DecodeX or vice versa
//
// Pairing is by naming convention — `C::AppendTo` pairs with `C::Parse`,
// `AppendX` with `ParseX`, `EncodeX` with `DecodeX`, `WriteX` with `ReadX` —
// plus two comment directives for asymmetric names:
//
//   // vlora-codec: pair(EncodeFrame, DecodeEnvelope)
//   // vlora-codec: wrapper(EncodeAdapterFrame)
//
// `pair` forces a comparison between two differently named functions;
// `wrapper` marks a function that composes other codecs (its sequence is
// their concatenation) and is excluded from pairing. Functions that are only
// called as helpers from other codecs are exempt from the unpaired check —
// their sequences are checked where they are inlined.
//
// Like every vlora_lint file-graph pass this is a heuristic over
// comment-stripped source built on tools/callgraph.h, not a real C++ parse:
// loops contribute their body sequence once, and a line mixing primitive
// calls with helper calls is ordered primitives-first.

#ifndef VLORA_TOOLS_CODEC_SYMMETRY_H_
#define VLORA_TOOLS_CODEC_SYMMETRY_H_

#include <string>
#include <vector>

#include "tools/callgraph.h"
#include "tools/lint_rules.h"

namespace vlora {
namespace lint {

// Runs the codec-symmetry analysis over the given files.
std::vector<Finding> CheckCodecSymmetry(const std::vector<SourceFile>& files);

// Filesystem wrapper: loads each path (a file or a directory of sources) and
// runs CheckCodecSymmetry.
std::vector<Finding> CheckCodecSymmetryOverTree(const std::vector<std::string>& paths);

}  // namespace lint
}  // namespace vlora

#endif  // VLORA_TOOLS_CODEC_SYMMETRY_H_

#include "tools/atomics.h"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace vlora {
namespace lint {
namespace {

const char kUnregistered[] = "atomic-unregistered";
const char kStaleEntry[] = "atomic-stale-entry";
const char kBadProtocol[] = "atomic-bad-protocol";
const char kMismatch[] = "atomic-protocol-mismatch";
const char kRelaxedSync[] = "atomic-relaxed-sync";
const char kUnpairedRelease[] = "atomic-unpaired-release";
const char kUnpairedAcquire[] = "atomic-unpaired-acquire";
const char kSeqCstHot[] = "atomic-seqcst-hot";
const char kMixedAccess[] = "atomic-mixed-access";
const char kIoError[] = "io-error";

const char kCounterProto[] = "counter";
const char kFlagProto[] = "flag";
const char kPublishedProto[] = "published-value";
const char kSeqlockProto[] = "epoch-seqlock";
const char kInitOnceProto[] = "init-once";

bool KnownProtocol(const std::string& name) {
  return name == kCounterProto || name == kFlagProto || name == kPublishedProto ||
         name == kSeqlockProto || name == kInitOnceProto;
}

bool Synchronizing(const std::string& proto) {
  return proto != kCounterProto;
}

enum class Order { kDefault, kRelaxed, kConsume, kAcquire, kRelease, kAcqRel, kSeqCst };

const char* OrderName(Order order) {
  switch (order) {
    case Order::kDefault:
      return "default (seq_cst)";
    case Order::kRelaxed:
      return "relaxed";
    case Order::kConsume:
      return "consume";
    case Order::kAcquire:
      return "acquire";
    case Order::kRelease:
      return "release";
    case Order::kAcqRel:
      return "acq_rel";
    case Order::kSeqCst:
      return "seq_cst";
  }
  return "?";
}

Order OrderFromToken(const std::string& token) {
  if (token == "relaxed") {
    return Order::kRelaxed;
  }
  if (token == "consume") {
    return Order::kConsume;
  }
  if (token == "acquire") {
    return Order::kAcquire;
  }
  if (token == "release") {
    return Order::kRelease;
  }
  if (token == "acq_rel") {
    return Order::kAcqRel;
  }
  if (token == "seq_cst") {
    return Order::kSeqCst;
  }
  return Order::kDefault;
}

enum class OpKind { kLoad, kStore, kRmw, kCas };

OpKind KindFromMethod(const std::string& method) {
  if (method == "load") {
    return OpKind::kLoad;
  }
  if (method == "store") {
    return OpKind::kStore;
  }
  if (method.rfind("compare_exchange", 0) == 0) {
    return OpKind::kCas;
  }
  return OpKind::kRmw;
}

const char* KindName(OpKind kind) {
  switch (kind) {
    case OpKind::kLoad:
      return "load";
    case OpKind::kStore:
      return "store";
    case OpKind::kRmw:
      return "RMW";
    case OpKind::kCas:
      return "compare-exchange";
  }
  return "?";
}

struct AtomicDecl {
  std::string key;
  std::string name;
  std::string file;
  int line = 0;
  std::string raw;
};

struct AtomicOp {
  std::vector<std::string> keys;  // resolved registry keys (usually one)
  std::string name;
  OpKind kind = OpKind::kLoad;
  Order order = Order::kDefault;  // success order for compare-exchange
  std::string fn;                 // enclosing function, "" when unknown
  std::string file;
  int line = 0;
  std::string raw;
};

struct PlainUse {
  std::string key;
  std::string name;
  std::string fn;
  std::string file;
  int line = 0;
  std::string raw;
};

struct ScanResult {
  std::vector<AtomicDecl> decls;
  std::vector<AtomicOp> ops;
  std::vector<PlainUse> plain;
  std::set<std::string> inline_methods;  // "Class::Method" defined in-class
};

const std::regex& AtomicDeclRe() {
  // `std::atomic<T> name` with one level of template nesting in T. Pointer
  // and reference declarators do not match, so parameters stay invisible.
  static const std::regex re(
      "\\bstd\\s*::\\s*atomic\\s*<[^<>;{}]*(?:<[^<>]*>)?[^<>;{}]*>\\s+([A-Za-z_]\\w*)");
  return re;
}

const std::regex& OpRe() {
  static const std::regex re(
      "([A-Za-z_]\\w*)\\s*(?:\\.|->)\\s*(load|store|exchange|fetch_add|fetch_sub|"
      "fetch_and|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
      "\\s*\\(");
  return re;
}

const std::regex& ClassHeadRe() {
  static const std::regex re("\\b(class|struct)\\s+([A-Za-z_]\\w*)");
  return re;
}

const std::regex& DefStartRe() {
  static const std::regex re("\\b([A-Z]\\w*)::(~?\\w+)\\s*\\(");
  return re;
}

const std::regex& MemOrderTokenRe() {
  static const std::regex re("\\bmemory_order_(relaxed|consume|acquire|release|acq_rel|seq_cst)\\b");
  return re;
}

bool IsIdentChar(char c) {
  return isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// memory_order tokens appearing at paren depth 1 of the call whose argument
// list starts at code_lines[line_idx][col] (just after the open paren).
// Nested calls are blanked so their orders stay theirs.
std::vector<Order> CallOrders(const std::vector<std::string>& code_lines, size_t line_idx,
                              size_t col) {
  std::string depth1;
  int depth = 1;
  size_t line = line_idx;
  int spanned = 0;
  bool closed = false;
  while (line < code_lines.size() && spanned < 8 && !closed) {
    const std::string& text = code_lines[line];
    for (; col < text.size(); ++col) {
      const char c = text[col];
      if (c == '(') {
        ++depth;
        depth1.push_back(' ');
        continue;
      }
      if (c == ')') {
        --depth;
        if (depth == 0) {
          closed = true;
          break;
        }
        depth1.push_back(' ');
        continue;
      }
      depth1.push_back(depth == 1 ? c : ' ');
    }
    ++line;
    col = 0;
    ++spanned;
  }
  std::vector<Order> orders;
  for (std::sregex_iterator it(depth1.begin(), depth1.end(), MemOrderTokenRe()), end; it != end;
       ++it) {
    orders.push_back(OrderFromToken((*it)[1].str()));
  }
  return orders;
}

// ---------------------------------------------------------------------------
// The declaration/operation scanner. Unlike BodyWalker it also enters
// in-class inline method bodies (headers hold most of this repo's atomic
// accessors), tracks the innermost class for member attribution, and records
// function-local declarations under "Function::name" keys.
// ---------------------------------------------------------------------------

class AtomicScanner {
 public:
  explicit AtomicScanner(const std::map<std::string, AtomicProtocolSpec>* registry)
      : registry_(registry) {
    for (const auto& [key, spec] : *registry) {
      (void)spec;
      const size_t pos = key.rfind("::");
      const std::string leaf = pos == std::string::npos ? key : key.substr(pos + 2);
      leaves_[leaf].push_back(key);
    }
  }

  void ScanFile(const SourceFile& file, ScanResult* out) {
    out_ = out;
    path_ = file.path;
    raw_lines_ = SplitLines(file.content);
    code_lines_.clear();
    code_lines_.reserve(raw_lines_.size());
    bool in_block = false;
    for (const std::string& raw : raw_lines_) {
      code_lines_.push_back(BlankStrings(StripComments(raw, &in_block)));
    }
    depth_ = 0;
    classes_.clear();
    in_func_ = false;
    collecting_ = false;
    sig_.clear();
    fn_qual_.clear();
    fn_class_.clear();
    for (size_t i = 0; i < code_lines_.size(); ++i) {
      ProcessLine(i);
    }
  }

 private:
  struct ClassFrame {
    std::string name;
    int depth = 0;
  };

  void ProcessLine(size_t i) {
    const std::string& text = code_lines_[i];
    size_t body_from = 0;
    bool scan_body = in_func_;

    if (!in_func_) {
      // Declarations are scanned on every non-body line, independent of the
      // signature buffering below (an initializer like `{static_cast<int>(x)}`
      // also looks like a signature candidate until its ';').
      ScanDecls(text, i);
      if (collecting_) {
        sig_ += " " + text;
        EvaluateSig(text, &body_from, &scan_body);
      } else if (TryClassHead(text)) {
        // frame pushed; nothing else on this line is scanned
      } else if (SigCandidate(text)) {
        collecting_ = true;
        sig_ = text;
        EvaluateSig(text, &body_from, &scan_body);
      }
    }

    if (scan_body && in_func_) {
      ScanBody(text, body_from, i);
    }

    depth_ += CountChar(text, '{') - CountChar(text, '}');
    if (in_func_ && depth_ <= fn_close_depth_) {
      in_func_ = false;
      fn_qual_.clear();
      fn_class_.clear();
    }
    while (!classes_.empty() && depth_ <= classes_.back().depth) {
      classes_.pop_back();
    }
  }

  bool TryClassHead(const std::string& text) {
    if (text.find('{') == std::string::npos) {
      return false;
    }
    if (text.find("enum") != std::string::npos) {
      return false;  // `enum class` opens an enumerator list, not a scope
    }
    std::string name;
    for (std::sregex_iterator it(text.begin(), text.end(), ClassHeadRe()), end; it != end; ++it) {
      name = (*it)[2].str();  // last match skips `template <class T>` params
    }
    if (name.empty()) {
      return false;
    }
    classes_.push_back({name, depth_});
    return true;
  }

  bool SigCandidate(const std::string& text) const {
    if (text.find('(') == std::string::npos) {
      return false;
    }
    const std::string trimmed = TrimText(text);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '}') {
      return false;
    }
    if (!classes_.empty()) {
      return true;  // the terminator discards member declarations
    }
    if (std::regex_search(text, DefStartRe())) {
      return true;
    }
    // Free-function heuristic: a definition starts at column 0.
    const char first = text[0];
    if (isalpha(static_cast<unsigned char>(first)) == 0 && first != '_') {
      return false;
    }
    if (trimmed.rfind("using", 0) == 0 || trimmed.rfind("typedef", 0) == 0 ||
        trimmed.rfind("namespace", 0) == 0 || trimmed.rfind("static_assert", 0) == 0 ||
        trimmed.rfind("return", 0) == 0 || trimmed.rfind("extern", 0) == 0) {
      return false;
    }
    return true;
  }

  // Decides whether the buffered signature is a declaration (discard), still
  // open (keep buffering), or a definition (enter the function). On entry,
  // *body_from is set to the column just after the body '{' on this line.
  void EvaluateSig(const std::string& text, size_t* body_from, bool* scan_body) {
    int paren_depth = 0;
    bool seen_paren = false;
    size_t body_idx = std::string::npos;
    for (size_t idx = 0; idx < sig_.size(); ++idx) {
      const char c = sig_[idx];
      if (c == '(') {
        ++paren_depth;
        seen_paren = true;
      } else if (c == ')') {
        --paren_depth;
      } else if (paren_depth == 0 && (c == ';' || (c == '=' && !seen_paren))) {
        collecting_ = false;
        sig_.clear();
        return;
      } else if (paren_depth == 0 && c == '{' && seen_paren) {
        body_idx = idx;
        break;
      }
    }
    if (body_idx == std::string::npos) {
      if (sig_.size() > 2000 || CountChar(sig_, '\n') > 12) {
        collecting_ = false;
        sig_.clear();
      }
      return;
    }
    collecting_ = false;
    std::string cls;
    std::string name;
    if (!ExtractName(&cls, &name)) {
      sig_.clear();
      return;
    }
    fn_class_ = cls;
    fn_qual_ = cls.empty() ? name : cls + "::" + name;
    if (!cls.empty() && !classes_.empty()) {
      out_->inline_methods.insert(fn_qual_);
    }
    in_func_ = true;
    // Column of the body '{' within the current line (the signature was
    // extended with " " + text, so the line is the buffer's tail).
    const size_t line_start = sig_.size() - text.size();
    const size_t col = body_idx >= line_start ? body_idx - line_start : 0;
    int at_brace = depth_;
    for (size_t k = 0; k < col && k < text.size(); ++k) {
      if (text[k] == '{') {
        ++at_brace;
      } else if (text[k] == '}') {
        --at_brace;
      }
    }
    fn_close_depth_ = at_brace;
    *body_from = col + 1;
    *scan_body = true;
    sig_.clear();
  }

  bool ExtractName(std::string* cls, std::string* name) const {
    std::smatch m;
    if (std::regex_search(sig_, m, DefStartRe())) {
      *cls = m[1].str();
      *name = m[2].str();
      return true;
    }
    const size_t paren = sig_.find('(');
    if (paren == std::string::npos) {
      return false;
    }
    size_t end = paren;
    while (end > 0 && isspace(static_cast<unsigned char>(sig_[end - 1])) != 0) {
      --end;
    }
    size_t begin = end;
    while (begin > 0 && (IsIdentChar(sig_[begin - 1]) || sig_[begin - 1] == '~')) {
      --begin;
    }
    if (begin >= end) {
      return false;
    }
    const std::string ident = sig_.substr(begin, end - begin);
    if (ident == "if" || ident == "for" || ident == "while" || ident == "switch" ||
        ident == "catch" || ident == "sizeof" || ident == "decltype") {
      return false;
    }
    *cls = classes_.empty() ? "" : classes_.back().name;
    *name = ident;
    return true;
  }

  // Declarations at class or namespace scope.
  void ScanDecls(const std::string& text, size_t i) {
    for (std::sregex_iterator it(text.begin(), text.end(), AtomicDeclRe()), end; it != end; ++it) {
      const std::string name = (*it)[1].str();
      const std::string key =
          classes_.empty() ? name : classes_.back().name + "::" + name;
      out_->decls.push_back({key, name, path_, static_cast<int>(i) + 1, raw_lines_[i]});
    }
  }

  void ScanBody(const std::string& text, size_t from, size_t i) {
    const std::string body = text.substr(std::min(from, text.size()));
    // Function-local declarations.
    for (std::sregex_iterator it(body.begin(), body.end(), AtomicDeclRe()), end; it != end; ++it) {
      const std::string name = (*it)[1].str();
      out_->decls.push_back(
          {fn_qual_ + "::" + name, name, path_, static_cast<int>(i) + 1, raw_lines_[i]});
    }
    // Operation sites.
    for (std::sregex_iterator it(body.begin(), body.end(), OpRe()), end; it != end; ++it) {
      const std::string name = (*it)[1].str();
      const std::vector<std::string> keys = ResolveKeys(name, /*allow_suffix=*/true);
      if (keys.empty()) {
        continue;
      }
      const std::string method = (*it)[2].str();
      const size_t open_col = from + static_cast<size_t>(it->position(0) + it->length(0));
      const std::vector<Order> orders = CallOrders(code_lines_, i, open_col);
      AtomicOp op;
      op.keys = keys;
      op.name = name;
      op.kind = KindFromMethod(method);
      op.order = orders.empty() ? Order::kDefault : orders[0];
      if (op.kind != OpKind::kCas && orders.size() > 1) {
        op.order = orders.back();
      }
      op.fn = fn_qual_;
      op.file = path_;
      op.line = static_cast<int>(i) + 1;
      op.raw = raw_lines_[i];
      out_->ops.push_back(op);
    }
    // Operator-form (plain) access to registered atomics. Only exact-context
    // resolution applies here: a local variable that happens to share a
    // registered member's name must stay silent.
    const bool decl_line = std::regex_search(body, AtomicDeclRe());
    for (const auto& [leaf, keys] : leaves_) {
      (void)keys;
      size_t pos = 0;
      while ((pos = body.find(leaf, pos)) != std::string::npos) {
        const size_t end = pos + leaf.size();
        const bool bounded_left =
            pos == 0 || (!IsIdentChar(body[pos - 1]) && body[pos - 1] != '.' &&
                         body[pos - 1] != '>' && body[pos - 1] != ':');
        const bool bounded_right = end >= body.size() || !IsIdentChar(body[end]);
        pos = end;
        if (!bounded_left || !bounded_right) {
          continue;
        }
        if (decl_line) {
          continue;  // the declaration itself is not an access
        }
        if (FollowedByMemberCall(body, end)) {
          continue;  // a .load()/.store() site, handled above
        }
        const std::vector<std::string> resolved = ResolveKeys(leaf, /*allow_suffix=*/false);
        if (resolved.empty()) {
          continue;
        }
        out_->plain.push_back(
            {resolved[0], leaf, fn_qual_, path_, static_cast<int>(i) + 1, raw_lines_[i]});
      }
    }
  }

  static bool FollowedByMemberCall(const std::string& body, size_t end) {
    size_t j = end;
    while (j < body.size() && isspace(static_cast<unsigned char>(body[j])) != 0) {
      ++j;
    }
    if (j < body.size() && body[j] == '.') {
      ++j;
    } else if (j + 1 < body.size() && body[j] == '-' && body[j + 1] == '>') {
      j += 2;
    } else {
      return false;
    }
    while (j < body.size() && isspace(static_cast<unsigned char>(body[j])) != 0) {
      ++j;
    }
    size_t k = j;
    while (k < body.size() && IsIdentChar(body[k])) {
      ++k;
    }
    // Any member access on a resolved atomic is API surface, not operator
    // form; the operation regex above checks the orders of the audited set.
    return k > j;
  }

  // Registry keys an identifier resolves to in the current context, tried in
  // order: function-local ("Fn::name"), the enclosing class's member
  // ("Class::name"), a namespace-scope global (bare name), and — for
  // operation sites only — the unique-or-fanned suffix match that covers
  // receiver-qualified access like `buffer->head.load(...)`.
  std::vector<std::string> ResolveKeys(const std::string& name, bool allow_suffix) const {
    const auto leaf_it = leaves_.find(name);
    if (leaf_it == leaves_.end()) {
      return {};
    }
    const std::vector<std::string>& keys = leaf_it->second;
    const auto has = [&keys](const std::string& key) {
      return std::find(keys.begin(), keys.end(), key) != keys.end();
    };
    if (in_func_ && has(fn_qual_ + "::" + name)) {
      return {fn_qual_ + "::" + name};
    }
    if (!fn_class_.empty() && has(fn_class_ + "::" + name)) {
      return {fn_class_ + "::" + name};
    }
    if (!classes_.empty() && has(classes_.back().name + "::" + name)) {
      return {classes_.back().name + "::" + name};
    }
    if (has(name)) {
      return {name};
    }
    if (!allow_suffix) {
      return {};
    }
    std::vector<std::string> suffix;
    for (const std::string& key : keys) {
      if (key.size() > name.size() + 2 &&
          key.compare(key.size() - name.size() - 2, 2, "::") == 0) {
        suffix.push_back(key);
      }
    }
    return suffix;
  }

  const std::map<std::string, AtomicProtocolSpec>* registry_;
  std::map<std::string, std::vector<std::string>> leaves_;

  ScanResult* out_ = nullptr;
  std::string path_;
  std::vector<std::string> raw_lines_;
  std::vector<std::string> code_lines_;
  int depth_ = 0;
  std::vector<ClassFrame> classes_;
  bool in_func_ = false;
  bool collecting_ = false;
  std::string sig_;
  std::string fn_qual_;
  std::string fn_class_;
  int fn_close_depth_ = 0;
};

// Call edges only; the scanner above owns operation attribution.
class EdgeClient : public BodyClient {
 public:
  void OnCall(const BodyWalker& walker, const std::string& callee, const std::string& raw,
              int line_no) override {
    (void)raw;
    (void)line_no;
    callees_[walker.fn_qual()].insert(callee);
  }

  const std::map<std::string, std::set<std::string>>& callees() const { return callees_; }

 private:
  std::map<std::string, std::set<std::string>> callees_;
};

std::string JoinChain(const std::vector<std::string>& chain) {
  std::string out;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (i != 0) {
      out += " -> ";
    }
    out += chain[i];
  }
  return out;
}

std::string JoinList(const std::vector<std::string>& items) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += items[i];
  }
  return out;
}

bool Contains(const std::vector<std::string>& items, const std::string& value) {
  return std::find(items.begin(), items.end(), value) != items.end();
}

bool ReleaseClass(Order order) {
  return order == Order::kRelease || order == Order::kAcqRel || order == Order::kSeqCst ||
         order == Order::kDefault;
}

bool AcquireClass(Order order) {
  return order == Order::kAcquire || order == Order::kAcqRel || order == Order::kConsume ||
         order == Order::kSeqCst || order == Order::kDefault;
}

// Per-operation protocol check. Returns findings (not yet suppression
// filtered) for one resolved key.
void CheckOp(const AtomicOp& op, const std::string& key, const AtomicProtocolSpec& spec,
             std::vector<Finding>* findings) {
  const bool dflt = op.order == Order::kDefault;
  const Order eff = dflt ? Order::kSeqCst : op.order;
  const bool rmw = op.kind == OpKind::kRmw || op.kind == OpKind::kCas;
  const std::string opname = std::string(KindName(op.kind)) + " on '" + key + "'";

  if (spec.protocol == kCounterProto) {
    if (dflt || eff != Order::kRelaxed) {
      findings->push_back(
          {kMismatch, op.file, op.line,
           opname + " uses " + OrderName(op.order) +
               "; the counter protocol never synchronizes — every operation must state "
               "std::memory_order_relaxed explicitly"});
    }
    return;
  }

  if (dflt) {
    findings->push_back({kMismatch, op.file, op.line,
                         opname + " uses the implicit seq_cst default; the '" + spec.protocol +
                             "' protocol synchronizes and each operation must declare which "
                             "side it is on (release store / acquire load)"});
    return;
  }

  if (spec.protocol == kSeqlockProto) {
    if (eff == Order::kSeqCst) {
      findings->push_back({kMismatch, op.file, op.line,
                           opname + " uses seq_cst; the epoch-seqlock idiom needs at most "
                                    "relaxed owner access, a release publish and an acquire "
                                    "collect"});
    } else if (rmw && eff == Order::kRelaxed) {
      findings->push_back({kRelaxedSync, op.file, op.line,
                           "relaxed " + opname +
                               ", which is declared as synchronizing (epoch-seqlock); a "
                               "relaxed RMW publishes nothing"});
    }
    return;
  }

  // flag, init-once, published-value: strict release/acquire pairing.
  if (op.kind == OpKind::kStore && eff != Order::kRelease && eff != Order::kSeqCst) {
    findings->push_back({kMismatch, op.file, op.line,
                         opname + " uses " + OrderName(eff) + "; a '" + spec.protocol +
                             "' store publishes and must be std::memory_order_release"});
  }
  if (op.kind == OpKind::kLoad && eff != Order::kAcquire && eff != Order::kConsume &&
      eff != Order::kSeqCst) {
    findings->push_back({kMismatch, op.file, op.line,
                         opname + " uses " + OrderName(eff) + "; a '" + spec.protocol +
                             "' load consumes and must be std::memory_order_acquire"});
  }
  if (rmw && eff == Order::kRelaxed) {
    findings->push_back({kRelaxedSync, op.file, op.line,
                         "relaxed " + opname + ", which is declared as synchronizing ('" +
                             spec.protocol + "'); a relaxed RMW publishes nothing"});
  }

  if (spec.protocol == kPublishedProto) {
    const bool publishes =
        (op.kind == OpKind::kStore && ReleaseClass(eff)) || (rmw && ReleaseClass(eff));
    const bool consumes =
        (op.kind == OpKind::kLoad && AcquireClass(eff)) || (rmw && AcquireClass(eff));
    if (publishes && !Contains(spec.publishers, op.fn)) {
      findings->push_back({kMismatch, op.file, op.line,
                           opname + " publishes from '" + (op.fn.empty() ? "?" : op.fn) +
                               "', which is not in the declared publish= set (" +
                               JoinList(spec.publishers) + ")"});
    }
    if (consumes && !Contains(spec.consumers, op.fn)) {
      findings->push_back({kMismatch, op.file, op.line,
                           opname + " consumes from '" + (op.fn.empty() ? "?" : op.fn) +
                               "', which is not in the declared consume= set (" +
                               JoinList(spec.consumers) + ")"});
    }
  }
}

}  // namespace

bool ParseAtomicsRegistry(const std::string& content, AtomicsConfig* out, std::string* error) {
  out->atomics.clear();
  out->hot_paths.clear();
  std::vector<TomlEntry> entries;
  if (!ParseTomlTables(content, {"atomics", "options"}, &entries, error)) {
    return false;
  }
  for (const TomlEntry& entry : entries) {
    if (entry.section == "options") {
      if (entry.key == "hot_paths") {
        out->hot_paths = entry.value;
        continue;
      }
      *error = "unknown [options] key '" + entry.key + "'";
      return false;
    }
    AtomicProtocolSpec spec;
    spec.line = entry.line;
    std::istringstream tokens(entry.value);
    std::string token;
    bool first = true;
    while (tokens >> token) {
      if (first) {
        spec.protocol = token;
        first = false;
        continue;
      }
      std::vector<std::string>* side = nullptr;
      std::string rest;
      if (token.rfind("publish=", 0) == 0) {
        side = &spec.publishers;
        rest = token.substr(8);
      } else if (token.rfind("consume=", 0) == 0) {
        side = &spec.consumers;
        rest = token.substr(8);
      } else {
        spec.bad_tokens.push_back(token);
        continue;
      }
      std::istringstream names(rest);
      std::string name;
      while (std::getline(names, name, ',')) {
        if (!name.empty()) {
          side->push_back(name);
        }
      }
    }
    out->atomics[entry.key] = spec;
  }
  return true;
}

std::vector<Finding> CheckAtomics(const AtomicsConfig& config, const HotPathConfig& hot,
                                  const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  // Pass 1: declarations, operation sites, operator-form accesses.
  ScanResult scan;
  AtomicScanner scanner(&config.atomics);
  for (const SourceFile& file : files) {
    scanner.ScanFile(file, &scan);
  }

  // Pass 2: the call graph, in the wide hot-path posture, plus the in-class
  // inline methods the scanner found so edges into header-defined accessors
  // (Counter::Add and friends) resolve.
  ScanOptions options;
  options.index_free_functions = true;
  options.inline_lambdas = true;
  options.over_approximate_unresolved = true;
  options.chained_calls = true;

  CodeIndex index;
  BuildCodeIndex(files, options, &index, nullptr);
  for (const std::string& qual : scan.inline_methods) {
    index.known_funcs.insert(qual);
    const size_t pos = qual.rfind("::");
    if (pos != std::string::npos) {
      index.method_classes[qual.substr(pos + 2)].insert(qual.substr(0, pos));
    }
  }
  for (const SourceFile& file : files) {
    if (PathEndsWith(file.path, ".cc") || PathEndsWith(file.path, ".cpp")) {
      IndexDefinitions(file, options, &index);
    }
  }
  EdgeClient edges;
  for (const SourceFile& file : files) {
    if (PathEndsWith(file.path, ".cc") || PathEndsWith(file.path, ".cpp")) {
      BodyWalker walker(&index, &options, &edges);
      walker.ScanFile(file);
    }
  }

  // Registry validation.
  for (const auto& [key, spec] : config.atomics) {
    if (!KnownProtocol(spec.protocol)) {
      findings.push_back({kBadProtocol, config.registry_path, spec.line,
                          "'" + key + "' declares unknown protocol '" + spec.protocol +
                              "' (known: counter, flag, published-value, epoch-seqlock, "
                              "init-once)"});
      continue;
    }
    for (const std::string& token : spec.bad_tokens) {
      findings.push_back({kBadProtocol, config.registry_path, spec.line,
                          "'" + key + "' carries unparseable spec token '" + token +
                              "' (expected publish=Fn,... or consume=Fn,...)"});
    }
    if (spec.protocol == kPublishedProto) {
      if (spec.publishers.empty() || spec.consumers.empty()) {
        findings.push_back({kBadProtocol, config.registry_path, spec.line,
                            "'" + key + "' is published-value but does not name both "
                                        "publish= and consume= function sets"});
      }
      std::vector<std::string> named = spec.publishers;
      named.insert(named.end(), spec.consumers.begin(), spec.consumers.end());
      for (const std::string& fn : named) {
        if (index.known_funcs.count(fn) == 0 && index.free_funcs.count(fn) == 0) {
          findings.push_back({kBadProtocol, config.registry_path, spec.line,
                              "'" + key + "' names publish/consume function '" + fn +
                                  "', which the scanned tree does not define"});
        }
      }
    } else if (!spec.publishers.empty() || !spec.consumers.empty()) {
      findings.push_back({kBadProtocol, config.registry_path, spec.line,
                          "'" + key + "' declares publish=/consume= sides but protocol '" +
                              spec.protocol + "' takes none (published-value does)"});
    }
  }

  // Registry drift, both directions.
  std::set<std::string> declared;
  for (const AtomicDecl& decl : scan.decls) {
    declared.insert(decl.key);
    if (config.atomics.count(decl.key) == 0 && !IsSuppressed(decl.raw, kUnregistered)) {
      findings.push_back({kUnregistered, decl.file, decl.line,
                          "std::atomic '" + decl.key +
                              "' is not registered in " + config.registry_path +
                              "; declare its ordering protocol under [atomics]"});
    }
  }
  for (const auto& [key, spec] : config.atomics) {
    if (declared.count(key) == 0) {
      findings.push_back({kStaleEntry, config.registry_path, spec.line,
                          "registry entry '" + key +
                              "' matches no std::atomic declaration in the scanned tree"});
    }
  }

  // Per-operation protocol checks.
  for (const AtomicOp& op : scan.ops) {
    for (const std::string& key : op.keys) {
      const auto it = config.atomics.find(key);
      if (it == config.atomics.end() || !KnownProtocol(it->second.protocol)) {
        continue;
      }
      std::vector<Finding> op_findings;
      CheckOp(op, key, it->second, &op_findings);
      for (const Finding& finding : op_findings) {
        if (!IsSuppressed(op.raw, finding.rule.c_str())) {
          findings.push_back(finding);
        }
      }
    }
  }

  // Release/acquire pairing over the whole scanned tree.
  for (const auto& [key, spec] : config.atomics) {
    if (!KnownProtocol(spec.protocol) || !Synchronizing(spec.protocol) ||
        declared.count(key) == 0) {
      continue;
    }
    const AtomicOp* first_release = nullptr;
    const AtomicOp* first_acquire = nullptr;
    for (const AtomicOp& op : scan.ops) {
      if (!Contains(op.keys, key)) {
        continue;
      }
      const bool rmw = op.kind == OpKind::kRmw || op.kind == OpKind::kCas;
      if ((op.kind == OpKind::kStore || rmw) && ReleaseClass(op.order) && !first_release) {
        first_release = &op;
      }
      if ((op.kind == OpKind::kLoad || rmw) && AcquireClass(op.order) && !first_acquire) {
        first_acquire = &op;
      }
    }
    if (first_release && !first_acquire && !IsSuppressed(first_release->raw, kUnpairedRelease)) {
      findings.push_back({kUnpairedRelease, first_release->file, first_release->line,
                          "release-class store on '" + key + "' ('" + spec.protocol +
                              "') has no matching acquire-class load anywhere in the scanned "
                              "tree; nothing observes the publication"});
    }
    if (first_acquire && !first_release && !IsSuppressed(first_acquire->raw, kUnpairedAcquire)) {
      findings.push_back({kUnpairedAcquire, first_acquire->file, first_acquire->line,
                          "acquire-class load on '" + key + "' ('" + spec.protocol +
                              "') has no matching release-class store anywhere in the scanned "
                              "tree; there is no publication to consume"});
    }
  }

  // seq_cst (explicit or defaulted) reachable from a VLORA_HOT root.
  if (!hot.roots.empty()) {
    std::set<std::string> roots;
    for (const auto& [qual, desc] : hot.roots) {
      (void)desc;
      roots.insert(qual);
    }
    std::set<std::string> boundaries;
    for (const auto& [qual, reason] : hot.boundaries) {
      (void)reason;
      boundaries.insert(qual);
    }
    const Reachability reach = ComputeReachable(roots, edges.callees(), boundaries);
    for (const AtomicOp& op : scan.ops) {
      if (op.order != Order::kDefault && op.order != Order::kSeqCst) {
        continue;
      }
      if (op.fn.empty() || !reach.Contains(op.fn) || IsSuppressed(op.raw, kSeqCstHot)) {
        continue;
      }
      bool registered = false;
      for (const std::string& key : op.keys) {
        registered = registered || config.atomics.count(key) != 0;
      }
      if (!registered) {
        continue;
      }
      findings.push_back({kSeqCstHot, op.file, op.line,
                          std::string(op.order == Order::kDefault ? "defaulted" : "explicit") +
                              " seq_cst " + KindName(op.kind) + " on '" + op.keys[0] +
                              "' on the hot path (every protocol permits weaker orders): " +
                              JoinChain(reach.ChainTo(op.fn))});
    }
  }

  // Operator-form access.
  for (const PlainUse& use : scan.plain) {
    if (IsSuppressed(use.raw, kMixedAccess)) {
      continue;
    }
    findings.push_back({kMixedAccess, use.file, use.line,
                        "operator-form access to registered atomic '" + use.key + "' in '" +
                            (use.fn.empty() ? "?" : use.fn) +
                            "'; an implicit seq_cst op that states no protocol — use "
                            ".load/.store/.fetch_* with an explicit order"});
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& x, const Finding& y) {
    if (x.file != y.file) {
      return x.file < y.file;
    }
    if (x.line != y.line) {
      return x.line < y.line;
    }
    return x.rule < y.rule;
  });
  return findings;
}

std::vector<Finding> CheckAtomicsOverTree(const std::string& toml_path,
                                          const std::vector<std::string>& roots) {
  std::ifstream toml_stream(toml_path);
  if (!toml_stream) {
    return {{kIoError, toml_path, 0, "cannot open atomics registry"}};
  }
  std::ostringstream toml_buf;
  toml_buf << toml_stream.rdbuf();
  AtomicsConfig config;
  std::string error;
  if (!ParseAtomicsRegistry(toml_buf.str(), &config, &error)) {
    return {{kIoError, toml_path, 0, "malformed atomics registry: " + error}};
  }
  config.registry_path = toml_path;

  HotPathConfig hot;
  if (!config.hot_paths.empty()) {
    // Relative hot_paths entries resolve against the registry's directory.
    std::string hot_path = config.hot_paths;
    if (!hot_path.empty() && hot_path[0] != '/') {
      const size_t slash = toml_path.find_last_of('/');
      if (slash != std::string::npos) {
        hot_path = toml_path.substr(0, slash + 1) + hot_path;
      }
    }
    std::ifstream hot_stream(hot_path);
    if (!hot_stream) {
      return {{kIoError, hot_path, 0, "cannot open hot paths file named by [options]"}};
    }
    std::ostringstream hot_buf;
    hot_buf << hot_stream.rdbuf();
    if (!ParseHotPaths(hot_buf.str(), &hot, &error)) {
      return {{kIoError, hot_path, 0, "malformed hot paths file: " + error}};
    }
  }

  std::vector<Finding> findings;
  const std::vector<SourceFile> files = LoadSourceTree(roots, &findings);
  std::vector<Finding> analysis = CheckAtomics(config, hot, files);
  findings.insert(findings.end(), analysis.begin(), analysis.end());
  return findings;
}

}  // namespace lint
}  // namespace vlora

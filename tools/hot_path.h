// Hot-path purity analysis behind vlora_lint --hot-path.
//
// VLORA_HOT (src/common/annotations.h) marks serving fast-path entry points;
// tools/hot_paths.toml lists the same functions under [roots] plus a
// [boundaries] stop-list of functions the traversal must not expand through
// (cold paths, one-time initialisation, by-design blocking). The pass builds
// the whole-tree call graph on tools/callgraph.h, computes everything
// reachable from the roots, and flags operations that do not belong on a
// fast path:
//
//   hot-path-alloc      heap allocation: operator new, make_shared /
//                       make_unique, container growth (push_back, resize,
//                       insert, ...), std::string / std::to_string /
//                       stringstream construction
//   hot-path-blocking   CondVar::Wait / WaitForMs, WaitIdle / WaitDrained,
//                       thread sleeps and joins, VLORA_BLOCKING_REGION
//   hot-path-io         stdio, fstreams, socket syscalls
//   hot-path-getenv     environment reads (hoist to init-time instead)
//   hot-path-throw      throw expressions
//   hot-root-mismatch   a VLORA_HOT function missing from [roots], a [roots]
//                       entry without the annotation, or a stale [boundaries]
//                       entry naming no known function
//
// Unlike the lock-order pass this one widens the call graph on purpose:
// lambdas are scanned as part of the enclosing function (they run on the
// calling thread), free functions are tracked, unresolved member calls fan
// out to every class defining the method, and chained singleton calls
// (`Registry::Global().counter(...)`) resolve by method name. False
// positives are expected to be silenced per line with
// `vlora-lint: allow(<rule>)` plus a one-line justification, or stopped
// wholesale with a [boundaries] entry.

#ifndef VLORA_TOOLS_HOT_PATH_H_
#define VLORA_TOOLS_HOT_PATH_H_

#include <map>
#include <string>
#include <vector>

#include "tools/callgraph.h"
#include "tools/lint_rules.h"

namespace vlora {
namespace lint {

struct HotPathConfig {
  // Qualified function -> human description, e.g.
  // "ClusterServer::Submit" -> "request admission fast path".
  std::map<std::string, std::string> roots;
  // Qualified function -> reason the traversal stops there.
  std::map<std::string, std::string> boundaries;
};

// Parses tools/hot_paths.toml ([roots] and [boundaries] sections). Returns
// false and fills *error on malformed input.
bool ParseHotPaths(const std::string& content, HotPathConfig* out, std::string* error);

// Runs the hot-path analysis over the given files against the config.
std::vector<Finding> CheckHotPaths(const HotPathConfig& config,
                                   const std::vector<SourceFile>& files);

// Filesystem wrapper: loads `toml_path`, collects .h/.cc/.cpp files under
// each root directory, and runs CheckHotPaths.
std::vector<Finding> CheckHotPathsOverTree(const std::string& toml_path,
                                           const std::vector<std::string>& roots);

}  // namespace lint
}  // namespace vlora

#endif  // VLORA_TOOLS_HOT_PATH_H_

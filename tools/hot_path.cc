#include "tools/hot_path.h"

#include <algorithm>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace vlora {
namespace lint {
namespace {

// Rule names assembled from adjacent literals the same way lint_rules.cc
// does, so the whole-tree per-line scan never trips over this file's own
// pattern text.
const char kAlloc[] = "hot-path-alloc";
const char kBlocking[] = "hot-path-blocking";
const char kIo[] = "hot-path-io";
const char kGetenv[] = "hot-path-getenv";
const char kThrow[] = "hot-path-throw";
const char kRootMismatch[] = "hot-root-mismatch";
const char kIoError[] = "io-error";

// One textual pattern that is a purity violation when it appears in a
// function reachable from a hot root.
struct HotRule {
  const char* rule;
  const char* what;
  std::regex re;
};

const std::vector<HotRule>& HotRules() {
  static const std::vector<HotRule> rules = [] {
    std::vector<HotRule> r;
    // Allocation.
    r.push_back({kAlloc, "operator ne" "w", std::regex("\\bne" "w\\b")});
    r.push_back({kAlloc, "make_shared/make_unique",
                 std::regex("\\bmake_(?:shared|unique)\\s*<")});
    r.push_back({kAlloc, "container growth",
                 std::regex("(?:\\.|->)(?:push_back|emplace_back|emplace|resize|reserve|"
                            "assign|append|insert)\\s*\\(")});
    r.push_back({kAlloc, "std::string construction",
                 std::regex("\\bstd::(?:to_)?string\\s*[({]|\\bstd::string\\s+\\w+")});
    r.push_back({kAlloc, "stringstream construction",
                 std::regex("\\bstd::o?i?stringstream\\b")});
    // Blocking.
    r.push_back({kBlocking, "condition-variable wait",
                 std::regex("(?:\\.|->)Wait(?:ForMs)?\\s*\\(")});
    r.push_back({kBlocking, "Wait" "Idle/Wait" "Drained",
                 std::regex("\\bWait(?:Idle|Drained|ForReadmissions)\\s*\\(")});
    r.push_back({kBlocking, "thread sleep",
                 std::regex("\\b(?:sleep" "_for|sleep" "_until|u" "sleep|nano" "sleep)\\s*\\(")});
    r.push_back({kBlocking, "thread join", std::regex("(?:\\.|->)join\\s*\\(\\s*\\)")});
    r.push_back({kBlocking, "declared blocking region",
                 std::regex("\\bVLORA_BLOCKING" "_REGION\\b")});
    // File / socket I/O.
    r.push_back({kIo, "stdio call",
                 std::regex("\\bf(?:open|close|read|write|printf|puts|flush|gets)\\s*\\(|"
                            "\\bprintf\\s*\\(")});
    r.push_back({kIo, "fstream construction",
                 std::regex("\\bstd::[io]?fstream\\b")});
    r.push_back({kIo, "socket syscall",
                 std::regex("\\b(?:socket|connect|accept|bind|listen|sendmsg|recvmsg)\\s*\\(|"
                            "::(?:read|write|send|recv)\\s*\\(")});
    // Environment.
    r.push_back({kGetenv, "environment read", std::regex("\\bget" "env\\s*\\(")});
    // Exceptions.
    r.push_back({kThrow, "th" "row expression", std::regex("\\bth" "row\\b")});
    return r;
  }();
  return rules;
}

struct Site {
  std::string file;
  int line = 0;
};

struct Violation {
  std::string rule;
  std::string what;
  Site site;
};

class HotBodyClient : public BodyClient {
 public:
  void OnBodyText(const BodyWalker& walker, const std::string& text, const std::string& raw,
                  int line_no, int depth_at_start) override {
    (void)depth_at_start;
    for (const HotRule& rule : HotRules()) {
      if (!std::regex_search(text, rule.re)) {
        continue;
      }
      if (IsSuppressed(raw, rule.rule)) {
        continue;
      }
      violations_[walker.fn_qual()].push_back(
          {rule.rule, rule.what, {walker.path(), line_no}});
    }
  }

  void OnCall(const BodyWalker& walker, const std::string& callee, const std::string& raw,
              int line_no) override {
    (void)raw;
    (void)line_no;
    callees_[walker.fn_qual()].insert(callee);
  }

  const std::map<std::string, std::vector<Violation>>& violations() const { return violations_; }
  const std::map<std::string, std::set<std::string>>& callees() const { return callees_; }

 private:
  std::map<std::string, std::vector<Violation>> violations_;
  std::map<std::string, std::set<std::string>> callees_;
};

std::string JoinChain(const std::vector<std::string>& chain) {
  std::string out;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (i != 0) {
      out += " -> ";
    }
    out += chain[i];
  }
  return out;
}

}  // namespace

bool ParseHotPaths(const std::string& content, HotPathConfig* out, std::string* error) {
  out->roots.clear();
  out->boundaries.clear();
  std::vector<TomlEntry> entries;
  if (!ParseTomlTables(content, {"roots", "boundaries"}, &entries, error)) {
    return false;
  }
  for (const TomlEntry& entry : entries) {
    if (entry.section == "roots") {
      out->roots[entry.key] = entry.value;
    } else {
      out->boundaries[entry.key] = entry.value;
    }
  }
  return true;
}

std::vector<Finding> CheckHotPaths(const HotPathConfig& config,
                                   const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  // The hot-path posture widens everything the lock-order pass keeps narrow:
  // fast-path lambdas run on the calling thread, free functions matter
  // (kernels, trace emitters), and an unresolved virtual call must be assumed
  // to reach every implementation.
  ScanOptions options;
  options.index_free_functions = true;
  options.inline_lambdas = true;
  options.over_approximate_unresolved = true;
  options.chained_calls = true;

  CodeIndex index;
  BuildCodeIndex(files, options, &index, nullptr);
  for (const SourceFile& file : files) {
    if (PathEndsWith(file.path, ".cc") || PathEndsWith(file.path, ".cpp")) {
      IndexDefinitions(file, options, &index);
    }
  }

  HotBodyClient client;
  for (const SourceFile& file : files) {
    if (PathEndsWith(file.path, ".cc") || PathEndsWith(file.path, ".cpp")) {
      BodyWalker walker(&index, &options, &client);
      walker.ScanFile(file);
    }
  }

  // Cross-check VLORA_HOT annotations against the [roots] registry, both
  // directions, and [boundaries] entries against known functions.
  std::map<std::string, SigAnnotation> hot_annotated;  // qual -> where
  for (const auto& [qual, annos] : index.annotations) {
    for (const SigAnnotation& anno : annos) {
      if (anno.kind == "HOT") {
        hot_annotated.emplace(qual, anno);
      }
    }
  }
  for (const auto& [qual, anno] : hot_annotated) {
    if (config.roots.find(qual) == config.roots.end()) {
      findings.push_back({kRootMismatch, anno.file, anno.line,
                          "'" + qual + "' is marked VLORA_HOT but missing from [roots] in "
                          "tools/hot_paths.toml"});
    }
  }
  for (const auto& [qual, desc] : config.roots) {
    (void)desc;
    if (hot_annotated.find(qual) == hot_annotated.end()) {
      findings.push_back({kRootMismatch, "tools/hot_paths.toml", 0,
                          "[roots] entry '" + qual + "' has no VLORA_HOT annotation on its "
                          "declaration (or the function no longer exists)"});
    }
  }
  for (const auto& [qual, reason] : config.boundaries) {
    (void)reason;
    if (index.known_funcs.find(qual) == index.known_funcs.end()) {
      findings.push_back({kRootMismatch, "tools/hot_paths.toml", 0,
                          "stale [boundaries] entry '" + qual +
                              "': no such function found in the scanned tree"});
    }
  }

  // Reachability from the roots, stopping at boundaries, then report every
  // violation inside the reachable set with its call chain.
  std::set<std::string> roots;
  for (const auto& [qual, desc] : config.roots) {
    (void)desc;
    roots.insert(qual);
  }
  std::set<std::string> boundaries;
  for (const auto& [qual, reason] : config.boundaries) {
    (void)reason;
    boundaries.insert(qual);
  }
  const Reachability reach = ComputeReachable(roots, client.callees(), boundaries);
  for (const auto& [fn, violations] : client.violations()) {
    if (!reach.Contains(fn)) {
      continue;
    }
    const std::string chain = JoinChain(reach.ChainTo(fn));
    for (const Violation& v : violations) {
      findings.push_back({v.rule, v.site.file, v.site.line,
                          v.what + " in '" + fn + "' on the hot path: " + chain});
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& x, const Finding& y) {
    if (x.file != y.file) {
      return x.file < y.file;
    }
    if (x.line != y.line) {
      return x.line < y.line;
    }
    return x.rule < y.rule;
  });
  return findings;
}

std::vector<Finding> CheckHotPathsOverTree(const std::string& toml_path,
                                           const std::vector<std::string>& roots) {
  std::ifstream toml_stream(toml_path);
  if (!toml_stream) {
    return {{kIoError, toml_path, 0, "cannot open hot paths file"}};
  }
  std::ostringstream toml_buf;
  toml_buf << toml_stream.rdbuf();
  HotPathConfig config;
  std::string error;
  if (!ParseHotPaths(toml_buf.str(), &config, &error)) {
    return {{kIoError, toml_path, 0, "malformed hot paths file: " + error}};
  }
  std::vector<Finding> findings;
  const std::vector<SourceFile> files = LoadSourceTree(roots, &findings);
  std::vector<Finding> analysis = CheckHotPaths(config, files);
  findings.insert(findings.end(), analysis.begin(), analysis.end());
  return findings;
}

}  // namespace lint
}  // namespace vlora

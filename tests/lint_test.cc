// Unit tests for the vlora_lint rule library: each rule fires on a synthetic
// bad snippet at exactly the expected line, stays quiet on the good twin, and
// honours the allow() suppression. Snippet text is assembled from adjacent
// string literals so the whole-tree lint scan (vlora_lint_tree) does not trip
// over this file's own test data.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint_rules.h"

namespace vlora {
namespace lint {
namespace {

std::vector<std::string> RulesAt(const std::vector<Finding>& findings, int line) {
  std::vector<std::string> rules;
  for (const Finding& finding : findings) {
    if (finding.line == line) {
      rules.push_back(finding.rule);
    }
  }
  std::sort(rules.begin(), rules.end());
  return rules;
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(LintRulesTest, RawMutexFiresOutsideSyncHeader) {
  const std::string bad = std::string("#include <cstdint>\n") +
                          "std" "::mutex m;\n" +
                          "std" "::lock_guard<std" "::mutex> lock(m);\n" +
                          "std" "::condition_variable cv;\n";
  const std::vector<Finding> findings = LintContent("src/cluster/foo.cc", bad);
  EXPECT_EQ(RulesAt(findings, 1), std::vector<std::string>{});
  EXPECT_EQ(RulesAt(findings, 2), std::vector<std::string>{"raw-mutex"});
  EXPECT_EQ(RulesAt(findings, 3), std::vector<std::string>{"raw-mutex"});
  EXPECT_EQ(RulesAt(findings, 4), std::vector<std::string>{"raw-mutex"});
}

TEST(LintRulesTest, RawMutexIncludeDirectiveFires) {
  const std::string bad = std::string("#include <") + "mutex>\n";
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", bad), "raw-mutex"));
  const std::string ok = "#include <atomic>\n";
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", ok), "raw-mutex"));
}

TEST(LintRulesTest, RawMutexExemptInSyncHeaderAndSuppressible) {
  const std::string body = std::string("std" "::mutex mu_;\n");
  EXPECT_FALSE(HasRule(LintContent("src/common/sync.h", body), "raw-mutex"));
  EXPECT_TRUE(HasRule(LintContent("src/common/other.h", body), "raw-mutex"));
  const std::string suppressed =
      std::string("std" "::mutex mu_;  // vlora-lint: allow(raw-mutex)\n");
  EXPECT_FALSE(HasRule(LintContent("src/common/other.h", suppressed), "raw-mutex"));
}

TEST(LintRulesTest, RawMutexInCommentDoesNotFire) {
  const std::string commented = std::string("// prefer vlora::Mutex over ") + "std" "::mutex\n" +
                                "/* std" "::lock_guard is banned */\n";
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", commented), "raw-mutex"));
}

TEST(LintRulesTest, StatusClassWithoutNodiscardFires) {
  const std::string bad = std::string("class ") + "Status {\n public:\n};\n";
  const std::vector<Finding> findings = LintContent("src/common/s.cc", bad);
  EXPECT_EQ(RulesAt(findings, 1), std::vector<std::string>{"status-not-nodiscard"});

  const std::string good =
      std::string("class [[nodiscard]] ") + "Status {\n public:\n};\n";
  EXPECT_FALSE(HasRule(LintContent("src/common/s.cc", good), "status-not-nodiscard"));

  // Forward declarations carry no attribute and are fine.
  const std::string fwd = std::string("class ") + "Status;\n";
  EXPECT_FALSE(HasRule(LintContent("src/common/s.cc", fwd), "status-not-nodiscard"));
}

TEST(LintRulesTest, ResultClassWithoutNodiscardFires) {
  const std::string bad =
      std::string("template <typename T>\nclass ") + "Result {\n};\n";
  const std::vector<Finding> findings = LintContent("src/common/s.cc", bad);
  EXPECT_EQ(RulesAt(findings, 2), std::vector<std::string>{"status-not-nodiscard"});
}

TEST(LintRulesTest, SleepFiresOnlyUnderTests) {
  const std::string body =
      std::string("std::this_thread::sleep_") + "for(std::chrono::milliseconds(10));\n";
  EXPECT_TRUE(HasRule(LintContent("tests/foo_test.cc", body), "sleep-in-test"));
  EXPECT_FALSE(HasRule(LintContent("bench/foo_bench.cc", body), "sleep-in-test"));
  const std::string suppressed =
      std::string("std::this_thread::sleep_") + "for(kPaceUs);  " +
      "// vlora-lint: allow(sleep-in-test)\n";
  EXPECT_FALSE(HasRule(LintContent("tests/foo_test.cc", suppressed), "sleep-in-test"));
}

TEST(LintRulesTest, NakedNewFiresButFactoriesAndPlacementDoNot) {
  const std::string bad = std::string("auto* leak = ") + "new" " Widget();\n";
  EXPECT_EQ(RulesAt(LintContent("src/a.cc", bad), 1), std::vector<std::string>{"naked-new"});

  const std::string factory = "auto owned = std::make_unique<Widget>();\n";
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", factory), "naked-new"));

  const std::string placement = std::string("::") + "new" " (buffer) Widget();\n";
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", placement), "naked-new"));

  const std::string hyphenated = "const char kRule[] = \"naked-" "new\";\n";
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", hyphenated), "naked-new"));
}

TEST(LintRulesTest, ThreadDetachFires) {
  const std::string bad = std::string("worker.") + "detach" "();\n";
  EXPECT_EQ(RulesAt(LintContent("src/a.cc", bad), 1),
            std::vector<std::string>{"thread-detach"});
  const std::string good = "worker.join();\n";
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", good), "thread-detach"));
}

TEST(LintRulesTest, IncludeGuardAcceptsIfndefOrPragmaOnce) {
  const std::string unguarded = "int F();\n";
  const std::vector<Finding> findings = LintContent("src/common/u.h", unguarded);
  EXPECT_EQ(RulesAt(findings, 1), std::vector<std::string>{"missing-include-guard"});

  const std::string ifndef_guarded =
      std::string("// comment first\n#ifndef") + " VLORA_U_H_\n#define VLORA_U_H_\nint F();\n#endif\n";
  EXPECT_FALSE(HasRule(LintContent("src/common/u.h", ifndef_guarded), "missing-include-guard"));

  const std::string pragma_guarded = std::string("#pragma") + " once\nint F();\n";
  EXPECT_FALSE(HasRule(LintContent("src/common/u.h", pragma_guarded), "missing-include-guard"));

  // Non-headers are exempt.
  EXPECT_FALSE(HasRule(LintContent("src/common/u.cc", unguarded), "missing-include-guard"));
}

TEST(LintRulesTest, CleanFileYieldsNoFindings) {
  const std::string clean =
      std::string("#ifndef") + " VLORA_CLEAN_H_\n#define VLORA_CLEAN_H_\n" +
      "#include \"src/common/sync.h\"\n"
      "namespace vlora {\n"
      "class Clean {\n"
      " private:\n"
      "  Mutex mutex_;\n"
      "  int value_ VLORA_GUARDED_BY(mutex_) = 0;\n"
      "};\n"
      "}  // namespace vlora\n"
      "#endif\n";
  EXPECT_TRUE(LintContent("src/common/clean.h", clean).empty());
}

TEST(LintRulesTest, MutexLockTemporaryFires) {
  const std::string bad = std::string("Mutex" "Lock(&mu_);\n");
  EXPECT_EQ(RulesAt(LintContent("src/a.cc", bad), 1),
            std::vector<std::string>{"mutexlock-temporary"});

  const std::string qualified = std::string("vlora::Mutex" "Lock(&mu_);\n");
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", qualified), "mutexlock-temporary"));

  const std::string named = std::string("Mutex" "Lock lock(&mu_);\n");
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", named), "mutexlock-temporary"));

  const std::string dtor = std::string("  ~Mutex" "Lock() { mu_->Unlock(); }\n");
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", dtor), "mutexlock-temporary"));

  // The class's own declaration lives in sync.h, which is exempt.
  const std::string decl = std::string("  explicit Mutex" "Lock(Mutex* mu) : mu_(mu) {}\n");
  EXPECT_TRUE(HasRule(LintContent("src/a.cc", decl), "mutexlock-temporary"));
  EXPECT_FALSE(HasRule(LintContent("src/common/sync.h", decl), "mutexlock-temporary"));

  const std::string suppressed =
      std::string("Mutex" "Lock(&mu_);  // vlora-lint: allow(mutexlock-temporary)\n");
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", suppressed), "mutexlock-temporary"));
}

TEST(LintRulesTest, StatusSwitchMissingCasesWithoutDefaultFires) {
  const std::string bad = std::string("void F(Status s) {\n") +
                          "  " "switch" " (s.code()) {\n" +
                          "    " "case Status" "Code::kOk:\n" +
                          "      return;\n" +
                          "    " "case Status" "Code::kNotFound:\n" +
                          "      return;\n" +
                          "  }\n" +
                          "}\n";
  const std::vector<Finding> findings = LintContent("src/a.cc", bad);
  EXPECT_EQ(RulesAt(findings, 2), std::vector<std::string>{"status-switch-exhaustive"});
}

TEST(LintRulesTest, StatusSwitchWithDefaultIsQuiet) {
  const std::string good = std::string("void F(Status s) {\n") +
                           "  " "switch" " (s.code()) {\n" +
                           "    " "case Status" "Code::kOk:\n" +
                           "      return;\n" +
                           "    default:\n" +
                           "      return;\n" +
                           "  }\n" +
                           "}\n";
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", good), "status-switch-exhaustive"));
}

TEST(LintRulesTest, StatusSwitchCoveringEveryEnumeratorIsQuiet) {
  std::string good = std::string("void F(Status s) {\n") + "  " "switch" " (s.code()) {\n";
  for (const char* name :
       {"kOk", "kInvalidArgument", "kNotFound", "kResourceExhausted", "kFailedPrecondition",
        "kOutOfRange", "kUnimplemented", "kInternal", "kCancelled", "kDeadlineExceeded",
        "kUnavailable"}) {
    good += std::string("    ") + "case Status" "Code::" + name + ":\n      break;\n";
  }
  good += "  }\n}\n";
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", good), "status-switch-exhaustive"));
}

TEST(LintRulesTest, NonStatusSwitchIsIgnoredAndSuppressionWorks) {
  const std::string other = std::string("switch" " (kind) {\n") +
                            "  case Kind::kA:\n    break;\n}\n";
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", other), "status-switch-exhaustive"));

  const std::string suppressed =
      std::string("switch" " (s.code()) {  // vlora-lint: allow(status-switch-exhaustive)\n") +
      "  " "case Status" "Code::kOk:\n    break;\n}\n";
  EXPECT_FALSE(HasRule(LintContent("src/a.cc", suppressed), "status-switch-exhaustive"));
}

TEST(LintRulesTest, TraceSpanUnclosedFiresOnBeginWithoutEnd) {
  const std::string bad = std::string("void Step() {\n") +
                          "  trace::EmitBatchStep" "Begin(0, 4);\n" +
                          "  engine.Step();\n" +
                          "}\n";
  const std::vector<Finding> findings = LintContent("src/core/a.cc", bad);
  EXPECT_EQ(RulesAt(findings, 2), std::vector<std::string>{"trace-span-unclosed"});
}

TEST(LintRulesTest, TraceSpanClosedByEndOrRaiiIsQuiet) {
  const std::string paired = std::string("void Step() {\n") +
                             "  trace::EmitBatchStep" "Begin(0, 4);\n" +
                             "  engine.Step();\n" +
                             "  trace::EmitBatchStep" "End(0, 1);\n" +
                             "}\n";
  EXPECT_FALSE(HasRule(LintContent("src/core/a.cc", paired), "trace-span-unclosed"));

  const std::string raii = std::string("void Step() {\n") +
                           "  trace::EmitBatchStep" "Begin(0, 4);\n" +
                           "  trace::BatchStep" "Span span(4);\n" +
                           "}\n";
  EXPECT_FALSE(HasRule(LintContent("src/core/a.cc", raii), "trace-span-unclosed"));
}

TEST(LintRulesTest, TraceSpanEndInLaterScopeDoesNotCount) {
  // The End emission lives in a different function: the Begin's own scope
  // closes first, so the finding stands.
  const std::string bad = std::string("void Step() {\n") +
                          "  trace::EmitBatchStep" "Begin(0, 4);\n" +
                          "}\n" +
                          "void Other() {\n" +
                          "  trace::EmitBatchStep" "End(0, 1);\n" +
                          "}\n";
  const std::vector<Finding> findings = LintContent("src/core/a.cc", bad);
  EXPECT_EQ(RulesAt(findings, 2), std::vector<std::string>{"trace-span-unclosed"});
}

TEST(LintRulesTest, TraceSpanExemptionsAndSuppression) {
  const std::string bad_line = std::string("  trace::EmitBatchStep" "Begin(0, 4);\n");
  const std::string body = std::string("void Step() {\n") + bad_line + "}\n";
  // Tests are exempt: they assert on Begin events without emitting End.
  EXPECT_FALSE(HasRule(LintContent("tests/a_test.cc", body), "trace-span-unclosed"));
  // Enum references and event-name string literals do not trigger.
  const std::string refs = std::string("if (e.kind == TraceEventKind::kBatchStep" "Begin)\n") +
                           "  name = \"BatchStep" "Begin\";\n";
  EXPECT_FALSE(HasRule(LintContent("src/core/a.cc", refs), "trace-span-unclosed"));
  const std::string suppressed =
      std::string("void Step() {\n") +
      "  trace::EmitBatchStep" "Begin(0, 4);  // vlora-lint: allow(trace-span-unclosed)\n" +
      "}\n";
  EXPECT_FALSE(HasRule(LintContent("src/core/a.cc", suppressed), "trace-span-unclosed"));
}

TEST(LintRulesTest, RawSocketFdFiresOutsideNetDirectory) {
  const std::string bad = std::string("void Connect() {\n") +
                          "  int fd = ::soc" "ket(AF_INET, SOCK_STREAM, 0);\n" +
                          "  int peer = acc" "ept4(fd, nullptr, nullptr, 0);\n" +
                          "  int pair[2];\n" +
                          "  soc" "ketpair(AF_UNIX, SOCK_STREAM, 0, pair);\n" +
                          "  ::clo" "se(fd);\n" +
                          "}\n";
  const std::vector<Finding> findings = LintContent("src/cluster/foo.cc", bad);
  EXPECT_EQ(RulesAt(findings, 2), std::vector<std::string>{"raw-socket-fd"});
  EXPECT_EQ(RulesAt(findings, 3), std::vector<std::string>{"raw-socket-fd"});
  EXPECT_EQ(RulesAt(findings, 5), std::vector<std::string>{"raw-socket-fd"});
  EXPECT_EQ(RulesAt(findings, 6), std::vector<std::string>{"raw-socket-fd"});
  // The same text inside src/net/ is the RAII wrapper itself: exempt.
  EXPECT_FALSE(HasRule(LintContent("src/net/fd.cc", bad), "raw-socket-fd"));
}

TEST(LintRulesTest, RawSocketFdIgnoresMembersCommentsAndSuppression) {
  // Member calls, destructor references and identifiers that merely contain
  // the call names are not raw descriptor calls.
  const std::string quiet = std::string("channel.clo" "se();\n") +
                            "stream->clo" "se();\n" +
                            "WebSoc" "ket(url);\n" +
                            "OnClo" "se(handler);\n" +
                            "// ::clo" "se(fd) is banned here\n";
  EXPECT_FALSE(HasRule(LintContent("src/cluster/foo.cc", quiet), "raw-socket-fd"));
  const std::string suppressed =
      std::string("  ::clo" "se(fd);  // vlora-lint: allow(raw-socket-fd)\n");
  EXPECT_FALSE(HasRule(LintContent("src/cluster/foo.cc", suppressed), "raw-socket-fd"));
}

TEST(LintRulesTest, RawSimdIntrinsicFiresOutsideKernelDirectory) {
  const std::string bad = std::string("#include <imm" "intrin.h>\n") +
                          "void F(const float* a, const float* b, float* c) {\n" +
                          "  __m256 av = _mm" "256_loadu_ps(a);\n" +
                          "  __m256 cv = _mm" "256_fmadd_ps(av, _mm" "256_loadu_ps(b),\n" +
                          "                             _mm" "256_setzero_ps());\n" +
                          "  _mm" "256_storeu_ps(c, cv);\n" +
                          "  __m128 low = _mm" "_loadu_ps(a);\n" +
                          "  __m512 wide = _mm" "512_loadu_ps(a);\n" +
                          "}\n";
  const std::vector<Finding> findings = LintContent("src/engine/fast_path.cc", bad);
  EXPECT_EQ(RulesAt(findings, 1), std::vector<std::string>{"raw-simd-intrinsic"});
  EXPECT_EQ(RulesAt(findings, 3), std::vector<std::string>{"raw-simd-intrinsic"});
  EXPECT_EQ(RulesAt(findings, 4), std::vector<std::string>{"raw-simd-intrinsic"});
  EXPECT_EQ(RulesAt(findings, 5), std::vector<std::string>{"raw-simd-intrinsic"});
  EXPECT_EQ(RulesAt(findings, 6), std::vector<std::string>{"raw-simd-intrinsic"});
  EXPECT_EQ(RulesAt(findings, 7), std::vector<std::string>{"raw-simd-intrinsic"});
  EXPECT_EQ(RulesAt(findings, 8), std::vector<std::string>{"raw-simd-intrinsic"});
  // The identical text inside src/kernels/ IS the micro-kernel layer: exempt.
  EXPECT_FALSE(
      HasRule(LintContent("src/kernels/microkernel_avx2.cc", bad), "raw-simd-intrinsic"));
}

TEST(LintRulesTest, RawSimdIntrinsicGoodTwinsStayQuiet) {
  // The portable way to go fast outside src/kernels/: call the dispatched
  // kernels. Identifiers merely containing the prefix and comments are quiet.
  const std::string good = std::string("#include \"src/kernels/gemm.h\"\n") +
                           "void F(const Tensor& a, const Tensor& b, Tensor& c,\n" +
                           "       GemmWorkspace& ws) {\n" +
                           "  GemmTiled(a, b, c, TileConfig{}, ws);\n" +
                           "  int custom_mm" "256_count = 0;\n" +
                           "  // _mm" "256_fmadd_ps lives in src/kernels/ only\n" +
                           "}\n";
  EXPECT_FALSE(HasRule(LintContent("src/engine/fast_path.cc", good), "raw-simd-intrinsic"));
  const std::string suppressed =
      std::string("  __m256 v = _mm" "256_setzero_ps();  ") +
      "// vlora-lint: allow(raw-simd-intrinsic)\n";
  EXPECT_FALSE(
      HasRule(LintContent("src/engine/fast_path.cc", suppressed), "raw-simd-intrinsic"));
}

TEST(LintRulesTest, GetenvOutsideInitFiresInNonInitFunctions) {
  const std::string bad = std::string("#include <cstdlib>\n") +
                          "const char* ServeOne() {\n" +
                          "  return std::get" "env(\"VLORA_MODE\");\n" +
                          "}\n" +
                          "void HandleRequest() {\n" +
                          "  const char* raw = ::get" "env(\"VLORA_TUNING\");\n" +
                          "  (void)raw;\n" +
                          "}\n";
  const std::vector<Finding> findings = LintContent("src/engine/serve.cc", bad);
  EXPECT_EQ(RulesAt(findings, 3), std::vector<std::string>{"get" "env-outside-init"});
  EXPECT_EQ(RulesAt(findings, 6), std::vector<std::string>{"get" "env-outside-init"});
  // The identical text outside src/ (tools, tests) is exempt.
  EXPECT_FALSE(HasRule(LintContent("tools/bench_driver.cc", bad), "get" "env-outside-init"));
}

TEST(LintRulesTest, GetenvGoodTwinsStayQuiet) {
  // Init-named functions are the sanctioned place to read the environment.
  const std::string good = std::string("#include <cstdlib>\n") +
                           "KernelVariant ResolveFromEnv() {\n" +
                           "  return Parse(std::get" "env(\"VLORA_KERNEL_VARIANT\"));\n" +
                           "}\n" +
                           "void InitRuntime() {\n" +
                           "  cache = ::get" "env(\"VLORA_CACHE_DIR\");\n" +
                           "}\n" +
                           "int main(int argc, char** argv) {\n" +
                           "  const char* seed = std::get" "env(\"VLORA_SEED\");\n" +
                           "  (void)seed;\n" +
                           "  return 0;\n" +
                           "}\n" +
                           "void Hot() {\n" +
                           "  // get" "env(\"COMMENTED_OUT\") never fires\n" +
                           "  int environment = 0;  // identifier containing the word\n" +
                           "  (void)environment;\n" +
                           "}\n";
  EXPECT_FALSE(HasRule(LintContent("src/engine/serve.cc", good), "get" "env-outside-init"));
  const std::string suppressed =
      std::string("std::string Probe() {\n") +
      "  return std::get" "env(\"X\");  // vlora-lint: allow(get" "env-outside-init) one-shot\n" +
      "}\n";
  EXPECT_FALSE(HasRule(LintContent("src/engine/serve.cc", suppressed),
                       "get" "env-outside-init"));
}

TEST(LintRulesTest, VolatileThreadingFiresUnderSrc) {
  const std::string bad = std::string("class Worker {\n") +
                          "  vola" "tile bool stop_ = false;\n" +
                          "};\n" +
                          "vola" "tile int g_ticks = 0;\n" +
                          "int Read(vola" "tile int* p) { return *p; }\n";
  const std::vector<Finding> findings = LintContent("src/cluster/foo.cc", bad);
  EXPECT_EQ(RulesAt(findings, 2), std::vector<std::string>{"vola" "tile-threading"});
  EXPECT_EQ(RulesAt(findings, 4), std::vector<std::string>{"vola" "tile-threading"});
  EXPECT_EQ(RulesAt(findings, 5), std::vector<std::string>{"vola" "tile-threading"});
  // The identical text outside src/ (tools, tests, bench) is exempt.
  EXPECT_FALSE(HasRule(LintContent("tools/probe.cc", bad), "vola" "tile-threading"));
}

TEST(LintRulesTest, VolatileThreadingGoodTwinsStayQuiet) {
  const std::string good = std::string("#include <atomic>\n") +
                           "std::atomic<bool> stop_{false};\n" +
                           "// vola" "tile is banned; this comment does not fire\n" +
                           "int vola" "tileness = 0;  // longer identifier, no match\n" +
                           "(void)vola" "tileness;\n";
  EXPECT_FALSE(HasRule(LintContent("src/cluster/foo.cc", good), "vola" "tile-threading"));
  const std::string suppressed =
      std::string("vola" "tile uint32_t* mmio = MapDevice();  "
                  "// vlora-lint: allow(vola" "tile-threading) device register\n");
  EXPECT_FALSE(HasRule(LintContent("src/cluster/foo.cc", suppressed),
                       "vola" "tile-threading"));
}

TEST(LintRulesTest, RuleNamesAreStable) {
  const std::vector<std::string> names = RuleNames();
  EXPECT_EQ(names.size(), 13u);
  EXPECT_NE(std::find(names.begin(), names.end(), "vola" "tile-threading"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "raw-mutex"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "missing-include-guard"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "mutexlock-temporary"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "status-switch-exhaustive"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "trace-span-unclosed"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "raw-socket-fd"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "raw-simd-intrinsic"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "get" "env-outside-init"), names.end());
}

TEST(LintRulesTest, FormatFindingIsFileLineRuleMessage) {
  const Finding finding{"raw-mutex", "src/a.cc", 7, "msg"};
  EXPECT_EQ(FormatFinding(finding), "src/a.cc:7: [raw-mutex] msg");
}

}  // namespace
}  // namespace lint
}  // namespace vlora

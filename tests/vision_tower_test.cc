#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/engine/vision_tower.h"

namespace vlora {
namespace {

VisionTowerConfig TinyTower() {
  VisionTowerConfig config;
  config.image_size = 16;
  config.patch_size = 8;  // 4 patches
  config.d_vision = 32;
  config.num_heads = 4;
  config.num_blocks = 2;
  config.d_model = TinyConfig().d_model;
  return config;
}

TEST(SyntheticImageTest, DeterministicAndBounded) {
  const VisionTowerConfig config = TinyTower();
  Tensor a = SyntheticImage(config, 7);
  Tensor b = SyntheticImage(config, 7);
  EXPECT_EQ(Tensor::MaxAbsDiff(a, b), 0.0f);
  Tensor other = SyntheticImage(config, 8);
  EXPECT_GT(Tensor::MaxAbsDiff(a, other), 0.01f);
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    EXPECT_GE(a.data()[i], 0.0f);
    EXPECT_LE(a.data()[i], 1.0f);
  }
}

TEST(VisionTowerTest, OutputShapeAndDeterminism) {
  const VisionTowerConfig config = TinyTower();
  VisionTower tower(config, 3);
  Tensor embeddings = tower.EncodeImageId(42);
  EXPECT_EQ(embeddings.shape(), Shape(config.num_patches(), config.d_model));
  // Same tower, same image: identical embeddings.
  EXPECT_EQ(Tensor::MaxAbsDiff(embeddings, tower.EncodeImageId(42)), 0.0f);
  // Same seed, different instance: identical weights hence embeddings.
  VisionTower twin(config, 3);
  EXPECT_EQ(Tensor::MaxAbsDiff(embeddings, twin.EncodeImageId(42)), 0.0f);
  // Different image: different embeddings.
  EXPECT_GT(Tensor::MaxAbsDiff(embeddings, tower.EncodeImageId(43)), 1e-4f);
}

TEST(VisionTowerTest, SurrogateTokensContentAddressed) {
  const VisionTowerConfig config = TinyTower();
  VisionTower tower(config, 3);
  Tensor a = tower.EncodeImageId(1);
  Tensor b = tower.EncodeImageId(2);
  const std::vector<int32_t> sa = tower.SurrogateTokens(a);
  const std::vector<int32_t> sb = tower.SurrogateTokens(b);
  EXPECT_EQ(static_cast<int>(sa.size()), config.num_patches());
  EXPECT_EQ(sa, tower.SurrogateTokens(a));
  EXPECT_NE(sa, sb);
  for (int32_t token : sa) {
    EXPECT_GE(token, 0);  // 31-bit: always a valid int32 surrogate
  }
}

// Builds a prompt of injected visual embeddings followed by text tokens.
EngineRequest VisualRequest(VisionTower& tower, int64_t image_id,
                            const std::vector<int32_t>& text, int64_t id) {
  Tensor embeddings = tower.EncodeImageId(image_id);
  EngineRequest request;
  request.id = id;
  request.prompt_tokens = tower.SurrogateTokens(embeddings);
  request.prompt_tokens.insert(request.prompt_tokens.end(), text.begin(), text.end());
  InjectedEmbeddings span;
  span.position = 0;
  span.embeddings = std::move(embeddings);
  request.injected.push_back(std::move(span));
  request.max_new_tokens = 4;
  request.eos_token = -1;
  return request;
}

TEST(VisionTowerTest, EngineConsumesInjectedEmbeddings) {
  const ModelConfig config = TinyConfig();
  VisionTower tower(TinyTower(), 3);
  InferenceEngine engine(config, EngineOptions{});
  const EngineResult result =
      engine.RunToCompletion(VisualRequest(tower, 9, {5, 6, 7}, 1));
  EXPECT_EQ(result.output_tokens.size(), 4u);

  // Different image content -> (almost surely) different answer trajectory,
  // and deterministically the same answer for the same image.
  InferenceEngine engine2(config, EngineOptions{});
  const EngineResult same = engine2.RunToCompletion(VisualRequest(tower, 9, {5, 6, 7}, 2));
  EXPECT_EQ(result.output_tokens, same.output_tokens);
}

TEST(VisionTowerTest, InjectedPromptsReuseKvOnRepeatedImages) {
  const ModelConfig config = TinyConfig();
  VisionTowerConfig tower_config = TinyTower();
  tower_config.image_size = 32;  // 16 patches = one full KV block
  VisionTower tower(tower_config, 3);
  EngineOptions options;
  options.kv_block_size = 16;
  InferenceEngine engine(config, options);

  const EngineResult first =
      engine.RunToCompletion(VisualRequest(tower, 77, {5, 6, 7}, 1));
  EXPECT_EQ(first.reused_tokens, 0);
  // Same image, different question: the visual prefix (surrogate-hashed)
  // matches block-aligned, so its KV is reused from the persistent cache.
  const EngineResult second =
      engine.RunToCompletion(VisualRequest(tower, 77, {8, 9, 10}, 2));
  EXPECT_EQ(second.reused_tokens, 16);
}

TEST(VisionTowerTest, ModesAgreeWithInjectedEmbeddings) {
  const ModelConfig config = TinyConfig();
  VisionTower tower(TinyTower(), 3);
  Rng rng(5);
  LoraAdapter adapter = LoraAdapter::Random("a", config.num_layers, config.d_model, 8, rng);

  auto run = [&](InferMode mode) {
    InferenceEngine engine(config, EngineOptions{});
    const int id = engine.RegisterAdapter(&adapter);
    engine.SetMode(mode, mode == InferMode::kUnmerged ? -1 : id);
    EngineRequest request = VisualRequest(tower, 21, {5, 6}, 1);
    request.adapter_id = id;
    return engine.RunToCompletion(std::move(request)).output_tokens;
  };
  const auto unmerged = run(InferMode::kUnmerged);
  EXPECT_EQ(unmerged, run(InferMode::kMerged));
  EXPECT_EQ(unmerged, run(InferMode::kMixture));
}

TEST(VisionTowerTest, RejectsWidthMismatch) {
  const ModelConfig config = TinyConfig();
  InferenceEngine engine(config, EngineOptions{});
  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = {5, 6, 7};
  InjectedEmbeddings span;
  span.position = 0;
  span.embeddings = Tensor::Zeros(Shape(2, config.d_model + 1));  // wrong width
  request.injected.push_back(std::move(span));
  EXPECT_DEATH(engine.Submit(std::move(request)), "VLORA_CHECK");
}

}  // namespace
}  // namespace vlora

// Deterministic fault-injection scenarios for the cluster recovery layer.
//
// Every scenario scripts a FaultInjector with a fixed seed and asserts exact
// outcomes — which requests complete, how many retries fire, what the event
// log contains — then re-runs the scenario and requires the same answers.
// Scripted faults trigger on completed-request counts and request failures on
// a hash of (seed, replica, id), so none of this depends on thread timing.
// The whole file also runs under TSan and ASan via scripts/verify.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "src/cluster/cluster_server.h"
#include "src/common/fault.h"
#include "src/common/trace.h"
#include "src/workload/trace_gen.h"
#include "tests/trace_matcher.h"

namespace vlora {
namespace {

using trace::TraceEvent;
using trace::TraceEventKind;
using trace::TraceMatcher;
using trace::TraceSession;

std::vector<LoraAdapter> MakeAdapters(const ModelConfig& config, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<LoraAdapter> adapters;
  for (int i = 0; i < count; ++i) {
    adapters.push_back(LoraAdapter::Random("fault-" + std::to_string(i), config.num_layers,
                                           config.d_model, 4, rng));
  }
  return adapters;
}

std::vector<Request> SmallTrace(int num_adapters, double rate_rps, double duration_s,
                                uint64_t seed) {
  TraceOptions options;
  options.app = AppKind::kVisualRetrieval;
  options.duration_s = duration_s;
  options.rate_rps = rate_rps;
  options.num_adapters = num_adapters;
  options.skewness = 0.6;
  options.seed = seed;
  return GenerateTrace(options);
}

TraceMapOptions SmallMap() {
  TraceMapOptions map;
  map.token_scale = 32;
  map.max_prompt_tokens = 16;
  map.max_new_tokens = 3;
  return map;
}

std::unique_ptr<ClusterServer> MakeCluster(const ModelConfig& config, int replicas,
                                           const std::vector<Request>& trace,
                                           FaultInjector* fault, RecoveryOptions recovery,
                                           int64_t capacity = 64) {
  ClusterOptions options;
  options.num_replicas = replicas;
  options.policy = RoutePolicy::kRoundRobin;  // fixed routing sequence
  options.admission = AdmissionPolicy::kBlock;
  options.replica_queue_capacity = capacity;
  options.server.max_batch_size = 4;
  options.fault = fault;
  options.recovery = recovery;
  auto cluster = std::make_unique<ClusterServer>(config, options);
  for (const LoraAdapter& adapter : MakeAdapters(config, 6, 11)) {
    cluster->AddAdapter(adapter);
  }
  cluster->PlaceAdapters(AdapterShares(trace, 6));
  return cluster;
}

// --- FaultInjector unit behaviour -------------------------------------------

TEST(FaultInjectorTest, ScriptedKillFiresOnceAtThreshold) {
  FaultInjector injector(7);
  injector.KillReplicaAfter(/*replica=*/1, /*completed=*/2);
  EXPECT_FALSE(injector.OnWorkerIteration(1, 0).kill);
  EXPECT_FALSE(injector.OnWorkerIteration(1, 1).kill);
  EXPECT_FALSE(injector.OnWorkerIteration(0, 5).kill);  // other replica untouched
  EXPECT_TRUE(injector.OnWorkerIteration(1, 2).kill);
  EXPECT_FALSE(injector.OnWorkerIteration(1, 5).kill);  // fires exactly once

  const std::vector<FaultEvent> events = injector.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kKillReplica);
  EXPECT_EQ(events[0].replica, 1);
  EXPECT_EQ(events[0].sequence, 0);
}

TEST(FaultInjectorTest, RequestFailureDecisionsDependOnlyOnSeedReplicaAndId) {
  FaultInjector a(0xfeedu);
  FaultInjector b(0xfeedu);
  a.FailRequests(0.5);
  b.FailRequests(0.5);
  int failed = 0;
  for (int replica = 0; replica < 4; ++replica) {
    // Query b in reverse to prove call order does not matter.
    for (int64_t id = 99; id >= 0; --id) {
      const bool decision = a.ShouldFailRequest(replica, id);
      failed += decision ? 1 : 0;
      EXPECT_EQ(decision, b.ShouldFailRequest(replica, id))
          << "replica " << replica << " id " << id;
    }
  }
  // The hash actually spreads: roughly half of 400 draws fail.
  EXPECT_GT(failed, 100);
  EXPECT_LT(failed, 300);

  FaultInjector other_seed(0xbeefu);
  other_seed.FailRequests(0.5);
  int disagreements = 0;
  for (int64_t id = 0; id < 100; ++id) {
    disagreements += other_seed.ShouldFailRequest(0, id) != a.ShouldFailRequest(0, id) ? 1 : 0;
  }
  EXPECT_GT(disagreements, 0);
}

// --- Scenario 1: kill one of four, everything completes via retry -----------

struct KillRunOutcome {
  std::set<int64_t> completed_ids;
  std::vector<FaultEvent> events;
  std::vector<TraceEvent> trace_events;
  int64_t retries = 0;
  int64_t replica_deaths = 0;
  size_t failures = 0;
};

KillRunOutcome RunKillOneOfFour(const ModelConfig& config, const std::vector<Request>& trace) {
  TraceSession session;
  FaultInjector fault(0x5eedu);
  fault.GateWorkers();                    // queues fill before any processing
  fault.KillReplicaAfter(/*replica=*/2, /*completed=*/0);
  RecoveryOptions recovery;
  recovery.stall_quarantine_ms = 0.0;     // gated workers are parked, not stalled
  recovery.backoff_base_ms = 1.0;
  recovery.health_period_ms = 2.0;
  auto cluster = MakeCluster(config, /*replicas=*/4, trace, &fault, recovery);
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  fault.OpenGate();  // replica 2 dies holding its 10 queued requests
  const std::vector<EngineResult> results = cluster->Drain();
  const ClusterStats stats = cluster->Stats();

  KillRunOutcome outcome;
  for (const EngineResult& result : results) {
    outcome.completed_ids.insert(result.request_id);
  }
  outcome.events = fault.Events();
  outcome.retries = stats.retries;
  outcome.replica_deaths = stats.replica_deaths;
  outcome.failures = cluster->TakeFailures().size();
  EXPECT_EQ(results.size(), 40u);
  EXPECT_EQ(stats.completed, 40);
  cluster.reset();  // join supervisor + workers, then collect quiescent buffers
  session.Stop();
  outcome.trace_events = session.Collect();
  EXPECT_EQ(session.dropped_events(), 0);
  return outcome;
}

TEST(FaultInjectionTest, KillOneOfFourCompletesAllRequestsDeterministically) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 2.0, 41);
  ASSERT_GE(trace.size(), 40u);

  const KillRunOutcome first = RunKillOneOfFour(config, trace);
  // Round-robin put exactly 10 of the 40 gated requests on replica 2; its
  // death fails them over and every one is retried onto a survivor.
  EXPECT_EQ(first.completed_ids.size(), 40u);
  EXPECT_EQ(first.retries, 10);
  EXPECT_EQ(first.replica_deaths, 1);
  EXPECT_EQ(first.failures, 0u);  // nothing lost, nothing given up on
  ASSERT_EQ(first.events.size(), 1u);
  EXPECT_EQ(first.events[0].kind, FaultKind::kKillReplica);
  EXPECT_EQ(first.events[0].replica, 2);

  // The trace tells the same story, without scraping stats: exactly one Retry
  // per orphaned request, each of which then completed kOk on a survivor, and
  // nothing was routed to the dead replica after its first fail-over.
  TraceMatcher matcher(first.trace_events);
  EXPECT_EQ(matcher.Count(TraceEventKind::kRetry), 10);
  EXPECT_EQ(matcher.CountForReplica(TraceEventKind::kEnqueued, 2), 10);
  const double first_retry_ms = matcher.FirstTime({TraceEventKind::kRetry});
  ASSERT_GE(first_retry_ms, 0.0);
  EXPECT_EQ(matcher.CountAfter({TraceEventKind::kEnqueued, 2}, first_retry_ms), 0);
  std::set<int64_t> retried_ids;
  for (const TraceEvent& event : matcher.events()) {
    if (event.kind == TraceEventKind::kRetry) {
      retried_ids.insert(event.request_id);
    }
  }
  EXPECT_EQ(retried_ids.size(), 10u);
  for (int64_t id : retried_ids) {
    EXPECT_TRUE(matcher.ExpectSequence(
        id, {TraceEventKind::kRequestAdmitted, TraceEventKind::kRouted, TraceEventKind::kEnqueued,
             TraceEventKind::kRetry, TraceEventKind::kEnqueued, TraceEventKind::kCompleted}));
    EXPECT_TRUE(matcher.ExpectCompleted(id, StatusCode::kOk));
    // The retry's second Enqueued landed on a survivor, not on replica 2.
    EXPECT_EQ(matcher.CountAfter({TraceEventKind::kEnqueued, 2, id},
                                 matcher.FirstTime({TraceEventKind::kRetry, -1, id})),
              0);
  }

  // Same script, same seed: identical completions and identical event log.
  const KillRunOutcome second = RunKillOneOfFour(config, trace);
  EXPECT_EQ(second.completed_ids, first.completed_ids);
  EXPECT_EQ(second.events, first.events);
  EXPECT_EQ(second.retries, first.retries);
  EXPECT_EQ(second.replica_deaths, first.replica_deaths);
  EXPECT_EQ(TraceMatcher(second.trace_events).Count(TraceEventKind::kRetry), 10);
}

// --- Scenario 1b: full recovery ordering, asserted from the trace alone -----
//
// One replica dies mid-service, another is quarantined for a stall and later
// readmitted. The exported Chrome trace must contain the killed replica's
// batch steps, the supervisor's Quarantine/Readmit, every Retry, and each
// re-routed request's kOk completion — correctly ordered — and load cleanly.
TEST(FaultInjectionTest, KillRecoveryOrderingIsFullyTraced) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 2.0, 41);
  ASSERT_GE(trace.size(), 30u);

  TraceSession session;
  FaultInjector fault(0x5eedu);
  fault.GateWorkers();
  // Replica 2 serves a couple of batches and then dies holding the rest of
  // its queue; replica 1 stalls before ingesting anything and is quarantined.
  fault.KillReplicaAfter(/*replica=*/2, /*completed=*/2);
  fault.StallReplicaAfter(/*replica=*/1, /*completed=*/0, /*stall_ms=*/2000.0);
  RecoveryOptions recovery;
  recovery.stall_quarantine_ms = 1000.0;
  recovery.health_period_ms = 10.0;
  recovery.max_attempts = 8;
  recovery.backoff_base_ms = 1.0;
  auto cluster = MakeCluster(config, /*replicas=*/3, trace, &fault, recovery);
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  fault.OpenGate();
  const std::vector<EngineResult> results = cluster->Drain();
  EXPECT_EQ(results.size(), 30u);
  EXPECT_TRUE(cluster->TakeFailures().empty());
  // The stall ends and the health checker readmits replica 1.
  ASSERT_TRUE(cluster->WaitForReadmissions(/*count=*/1, /*timeout_ms=*/10'000.0));
  cluster.reset();
  session.Stop();
  const std::vector<TraceEvent> events = session.Collect();
  EXPECT_EQ(session.dropped_events(), 0);

  TraceMatcher matcher(events);
  // The killed replica really served batches before dying, and its last
  // BatchStepEnd precedes the first fail-over Retry.
  EXPECT_GT(matcher.CountForReplica(TraceEventKind::kBatchStepEnd, 2), 0);
  const double last_step_end_ms = matcher.LastTime({TraceEventKind::kBatchStepEnd, 2});
  const double first_retry_ms = matcher.FirstTime({TraceEventKind::kRetry});
  ASSERT_GE(first_retry_ms, 0.0);
  EXPECT_LT(last_step_end_ms, first_retry_ms);
  // Every Retry belongs to a request that then completed kOk on a survivor,
  // with the Retry preceding the terminal event and no post-death routing to
  // the dead replica.
  std::set<int64_t> retried_ids;
  for (const TraceEvent& event : events) {
    if (event.kind == TraceEventKind::kRetry) {
      retried_ids.insert(event.request_id);
    }
  }
  EXPECT_FALSE(retried_ids.empty());
  for (int64_t id : retried_ids) {
    EXPECT_TRUE(matcher.ExpectCompleted(id, StatusCode::kOk));
    EXPECT_LT(matcher.FirstTime({TraceEventKind::kRetry, -1, id}),
              matcher.LastTime({TraceEventKind::kCompleted, -1, id}));
    EXPECT_EQ(matcher.CountAfter({TraceEventKind::kEnqueued, 2, id},
                                 matcher.FirstTime({TraceEventKind::kRetry, -1, id})),
              0);
  }
  EXPECT_EQ(matcher.CountAfter({TraceEventKind::kEnqueued, 2}, first_retry_ms), 0);
  // The stalled replica was quarantined and only later readmitted; while
  // quarantined nothing was enqueued on it.
  EXPECT_TRUE(matcher.ExpectAllBefore({TraceEventKind::kQuarantine, 1},
                                      {TraceEventKind::kReadmit, 1}));
  EXPECT_EQ(
      matcher.CountAfter({TraceEventKind::kEnqueued, 1},
                         matcher.FirstTime({TraceEventKind::kQuarantine, 1})),
      0);
  // All 30 requests reached exactly one kOk terminal event.
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_TRUE(matcher.ExpectCompleted(trace[i].id, StatusCode::kOk));
  }

  // The same stream exports to Chrome-loadable JSON.
  const std::string path = "fault_recovery.trace.json";
  ASSERT_TRUE(trace::WriteChromeTraceFile(events, path));
  std::ifstream stream(path);
  ASSERT_TRUE(stream.good());
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  int64_t exported = 0;
  EXPECT_TRUE(trace::ValidateChromeTraceJson(buffer.str(), &exported));
  EXPECT_GE(exported, static_cast<int64_t>(events.size()));
}

// --- Scenario 2: stalled replica quarantined, then readmitted ---------------

TEST(FaultInjectionTest, StalledReplicaIsQuarantinedAndReadmitted) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 2.0, 43);
  ASSERT_GE(trace.size(), 30u);

  TraceSession session;
  FaultInjector fault(0x5eedu);
  fault.GateWorkers();
  // Replica 1 sleeps 2 s before ingesting anything: its 15 queued requests
  // sit in ingress where the health checker can reclaim them.
  fault.StallReplicaAfter(/*replica=*/1, /*completed=*/0, /*stall_ms=*/2000.0);
  RecoveryOptions recovery;
  // Half the injected stall, so the gated queue is reclaimed early — but
  // wide enough that a healthy worker descheduled for hundreds of ms on a
  // loaded machine is not spuriously quarantined as well.
  recovery.stall_quarantine_ms = 1000.0;
  recovery.health_period_ms = 10.0;
  // A starved (not stalled) worker can still trip the quarantine on a
  // saturated box, leaving no healthy reroute target for a moment. A real
  // retry budget lets the stolen requests wait out the readmission instead
  // of failing within milliseconds.
  recovery.max_attempts = 8;
  recovery.backoff_base_ms = 50.0;
  auto cluster = MakeCluster(config, /*replicas=*/2, trace, &fault, recovery);
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  fault.OpenGate();
  const std::vector<EngineResult> results = cluster->Drain();
  EXPECT_EQ(results.size(), 30u);  // the survivor absorbed the stolen queue
  EXPECT_TRUE(cluster->TakeFailures().empty());

  ClusterStats stats = cluster->Stats();
  EXPECT_GE(stats.quarantines, 1);
  // At least replica 1's entire gated queue was stolen; a starved-but-healthy
  // replica 0 may be transiently quarantined too on a loaded machine, adding
  // legitimate extra reroutes.
  EXPECT_GE(stats.rerouted, 15);
  EXPECT_EQ(stats.replica_deaths, 0);

  // Once the stall ends the worker's heartbeat moves again and the health
  // checker readmits the replica (eventually: supervisor ticks every 10 ms).
  ASSERT_TRUE(cluster->WaitForReadmissions(/*count=*/1, /*timeout_ms=*/10'000.0));
  stats = cluster->Stats();
  ASSERT_GE(stats.readmissions, 1);

  const std::vector<FaultEvent> fault_events = fault.Events();
  ASSERT_EQ(fault_events.size(), 1u);
  EXPECT_EQ(fault_events[0].kind, FaultKind::kStallReplica);
  EXPECT_EQ(fault_events[0].replica, 1);
  EXPECT_EQ(fault_events[0].stall_ms, 2000.0);

  // Quarantine-then-readmit ordering and the no-traffic-while-quarantined
  // guarantee come straight from the trace — no probe traffic, no retry
  // rounds, no timing margins beyond the injected stall itself.
  cluster.reset();
  session.Stop();
  TraceMatcher matcher(session.Collect());
  EXPECT_EQ(session.dropped_events(), 0);
  EXPECT_GE(matcher.CountForReplica(TraceEventKind::kQuarantine, 1), 1);
  EXPECT_TRUE(matcher.ExpectAllBefore({TraceEventKind::kQuarantine, 1},
                                      {TraceEventKind::kReadmit, 1}));
  // Everything on replica 1 was enqueued before the quarantine; nothing was
  // routed to it while it was out of rotation.
  EXPECT_EQ(
      matcher.CountAfter({TraceEventKind::kEnqueued, 1},
                         matcher.FirstTime({TraceEventKind::kQuarantine, 1})),
      0);
  // Every submitted request reached exactly one kOk terminal event even
  // though half of them were stolen from the stalled replica.
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_TRUE(matcher.ExpectCompleted(trace[i].id, StatusCode::kOk));
  }
}

// --- Scenario 3: retry count respects max_attempts --------------------------

struct RetryRunOutcome {
  std::map<int64_t, int> attempts_by_id;
  std::vector<StatusCode> codes;
  int64_t retries = 0;
  int64_t injected_failures = 0;
  size_t results = 0;
};

RetryRunOutcome RunAlwaysFail(const ModelConfig& config, const std::vector<Request>& trace) {
  FaultInjector fault(0x5eedu);
  fault.FailRequests(1.0);  // every submit attempt fails on every replica
  RecoveryOptions recovery;
  recovery.max_attempts = 3;
  recovery.backoff_base_ms = 1.0;
  recovery.health_period_ms = 2.0;
  recovery.stall_quarantine_ms = 0.0;
  auto cluster = MakeCluster(config, /*replicas=*/1, trace, &fault, recovery);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  RetryRunOutcome outcome;
  outcome.results = cluster->Drain().size();
  for (const FailedRequest& failure : cluster->TakeFailures()) {
    outcome.attempts_by_id[failure.request_id] = failure.attempts;
    outcome.codes.push_back(failure.status.code());
  }
  outcome.retries = cluster->Stats().retries;
  outcome.injected_failures = fault.injected_request_failures();
  return outcome;
}

TEST(FaultInjectionTest, RetryCountIsBoundedByMaxAttempts) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 1.0, 47);
  ASSERT_GE(trace.size(), 6u);

  const RetryRunOutcome first = RunAlwaysFail(config, trace);
  EXPECT_EQ(first.results, 0u);  // nothing can complete
  ASSERT_EQ(first.attempts_by_id.size(), 6u);
  for (const auto& [id, attempts] : first.attempts_by_id) {
    EXPECT_EQ(attempts, 3) << "request " << id;  // exactly max_attempts, never more
  }
  for (StatusCode code : first.codes) {
    EXPECT_EQ(code, StatusCode::kInternal);
  }
  // 6 first attempts + 2 retries each; every attempt hit the injector.
  EXPECT_EQ(first.retries, 12);
  EXPECT_EQ(first.injected_failures, 18);

  const RetryRunOutcome second = RunAlwaysFail(config, trace);
  EXPECT_EQ(second.attempts_by_id, first.attempts_by_id);
  EXPECT_EQ(second.retries, first.retries);
  EXPECT_EQ(second.injected_failures, first.injected_failures);
}

// --- Scenario 4: deadlines cut recovery short -------------------------------

TEST(FaultInjectionTest, DeadlineBoundsRecoveryBeforeRetriesBurnAttempts) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 1.0, 53);
  ASSERT_GE(trace.size(), 4u);

  FaultInjector fault(0x5eedu);
  fault.FailRequests(1.0);
  RecoveryOptions recovery;
  recovery.max_attempts = 5;
  recovery.backoff_base_ms = 50.0;       // first retry would fire at +50 ms...
  recovery.request_deadline_ms = 5.0;    // ...long past the budget
  recovery.health_period_ms = 5.0;
  recovery.stall_quarantine_ms = 0.0;
  auto cluster = MakeCluster(config, /*replicas=*/1, trace, &fault, recovery);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  EXPECT_TRUE(cluster->Drain().empty());

  const std::vector<FailedRequest> failures = cluster->TakeFailures();
  ASSERT_EQ(failures.size(), 4u);
  for (const FailedRequest& failure : failures) {
    EXPECT_EQ(failure.status.code(), StatusCode::kDeadlineExceeded)
        << failure.status.ToString();
    // The deadline scan runs before retry dispatch, so an expired request is
    // failed on its first attempt instead of burning more.
    EXPECT_EQ(failure.attempts, 1);
  }
  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.deadline_failures, 4);
  EXPECT_EQ(stats.failed, 4);
  EXPECT_EQ(stats.retries, 0);
}

// --- Scenario 5: disaggregated pools under faults ----------------------------
//
// The two-stage lifecycle must survive losing either pool's replica: a dead
// prefill replica re-runs the lost prefills on its pool sibling, a dead
// decode replica has the already-computed KvHandle re-routed (prefill is NOT
// recomputed), and a stalled prefill pool of one waits out its own
// readmission. Each scenario is seeded and must repeat identically.

std::unique_ptr<ClusterServer> MakeDisaggCluster(const ModelConfig& config, int replicas,
                                                 int num_prefill,
                                                 const std::vector<Request>& trace,
                                                 FaultInjector* fault,
                                                 RecoveryOptions recovery) {
  ClusterOptions options;
  options.num_replicas = replicas;
  options.policy = RoutePolicy::kRoundRobin;  // fixed routing sequence
  options.admission = AdmissionPolicy::kBlock;
  options.replica_queue_capacity = 64;
  options.server.max_batch_size = 4;
  options.disagg.enabled = true;
  options.disagg.num_prefill = num_prefill;
  options.fault = fault;
  options.recovery = recovery;
  auto cluster = std::make_unique<ClusterServer>(config, options);
  for (const LoraAdapter& adapter : MakeAdapters(config, 6, 11)) {
    cluster->AddAdapter(adapter);
  }
  cluster->PlaceAdapters(AdapterShares(trace, 6));
  return cluster;
}

struct DisaggFaultOutcome {
  std::set<int64_t> completed_ids;
  std::vector<FaultEvent> events;
  std::vector<TraceEvent> trace_events;
  size_t failures = 0;
  int64_t replica_deaths = 0;
  int64_t handoffs = 0;
  int64_t handles_created = 0;
  int64_t handles_released = 0;
};

DisaggFaultOutcome RunDisaggKillPrefill(const ModelConfig& config,
                                        const std::vector<Request>& trace) {
  TraceSession session;
  FaultInjector fault(0x5eedu);
  fault.GateWorkers();
  // Prefill pool {0, 1}: replica 0 hands off its first batch, then dies
  // holding the rest of its queue mid-stream.
  fault.KillReplicaAfter(/*replica=*/0, /*completed=*/2);
  RecoveryOptions recovery;
  recovery.stall_quarantine_ms = 0.0;
  recovery.backoff_base_ms = 1.0;
  recovery.health_period_ms = 2.0;
  recovery.max_attempts = 8;
  auto cluster =
      MakeDisaggCluster(config, /*replicas=*/4, /*num_prefill=*/2, trace, &fault, recovery);
  for (size_t i = 0; i < 24; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  fault.OpenGate();
  const std::vector<EngineResult> results = cluster->Drain();
  // Drain races the health tick that *records* the death: wait for the
  // conviction before reading stats (see WaitForReplicaDeaths contract).
  EXPECT_TRUE(cluster->WaitForReplicaDeaths(/*count=*/1, /*timeout_ms=*/10'000.0));
  const ClusterStats stats = cluster->Stats();

  DisaggFaultOutcome outcome;
  for (const EngineResult& result : results) {
    outcome.completed_ids.insert(result.request_id);
  }
  outcome.events = fault.Events();
  outcome.failures = cluster->TakeFailures().size();
  outcome.replica_deaths = stats.replica_deaths;
  outcome.handoffs = stats.handoffs;
  outcome.handles_created = stats.handles_created;
  outcome.handles_released = stats.handles_released;
  EXPECT_EQ(results.size(), 24u);
  cluster.reset();
  session.Stop();
  outcome.trace_events = session.Collect();
  EXPECT_EQ(session.dropped_events(), 0);
  return outcome;
}

TEST(FaultInjectionTest, DisaggKilledPrefillReplicaRerunsLostPrefillsOnPoolSibling) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 2.0, 59);
  ASSERT_GE(trace.size(), 24u);

  const DisaggFaultOutcome first = RunDisaggKillPrefill(config, trace);
  EXPECT_EQ(first.completed_ids.size(), 24u);
  EXPECT_EQ(first.failures, 0u);
  EXPECT_EQ(first.replica_deaths, 1);
  EXPECT_EQ(first.handles_released, first.handles_created);
  ASSERT_EQ(first.events.size(), 1u);
  EXPECT_EQ(first.events[0].kind, FaultKind::kKillReplica);
  EXPECT_EQ(first.events[0].replica, 0);

  TraceMatcher matcher(first.trace_events);
  // The victim handed off work before dying, and after its death conviction
  // (first fail-over retry) it never accepted another request.
  EXPECT_GT(matcher.CountForReplica(TraceEventKind::kKvHandoff, 0), 0);
  const double first_retry_ms = matcher.FirstTime({TraceEventKind::kRetry});
  ASSERT_GE(first_retry_ms, 0.0);
  EXPECT_EQ(matcher.CountAfter({TraceEventKind::kEnqueued, 0}, first_retry_ms), 0);
  // Every request the death orphaned re-ran its prefill exactly once — on the
  // surviving pool sibling — and then completed through the normal handoff
  // lifecycle (or at prefill, for single-step requests).
  std::set<int64_t> retried;
  for (const TraceEvent& event : matcher.events()) {
    if (event.kind == TraceEventKind::kRetry) {
      retried.insert(event.request_id);
    }
  }
  EXPECT_FALSE(retried.empty());
  for (int64_t id : retried) {
    EXPECT_TRUE(matcher.ExpectCompleted(id, StatusCode::kOk));
    EXPECT_EQ(matcher.CountForRequest(TraceEventKind::kPrefillDone, id), 1);
    EXPECT_TRUE(matcher.ExpectSequence(id, {TraceEventKind::kRetry, TraceEventKind::kEnqueued,
                                            TraceEventKind::kPrefillDone,
                                            TraceEventKind::kCompleted}));
  }
  for (size_t i = 0; i < 24; ++i) {
    EXPECT_TRUE(matcher.ExpectCompleted(trace[i].id, StatusCode::kOk));
  }

  // Same script, same seed: identical completions and fault log.
  const DisaggFaultOutcome second = RunDisaggKillPrefill(config, trace);
  EXPECT_EQ(second.completed_ids, first.completed_ids);
  EXPECT_EQ(second.events, first.events);
  EXPECT_EQ(second.failures, first.failures);
  EXPECT_EQ(second.replica_deaths, first.replica_deaths);
  EXPECT_EQ(second.handles_released, second.handles_created);
}

DisaggFaultOutcome RunDisaggKillDecode(const ModelConfig& config,
                                       const std::vector<Request>& trace) {
  TraceSession session;
  FaultInjector fault(0x5eedu);
  fault.GateWorkers();
  // Decode pool {1, 2}: replica 2 dies at its very first iteration, before
  // stepping any resumed sequence — every handle routed toward it must be
  // re-routed, not recomputed.
  fault.KillReplicaAfter(/*replica=*/2, /*completed=*/0);
  RecoveryOptions recovery;
  recovery.stall_quarantine_ms = 0.0;
  recovery.backoff_base_ms = 1.0;
  recovery.health_period_ms = 2.0;
  recovery.max_attempts = 8;
  auto cluster =
      MakeDisaggCluster(config, /*replicas=*/3, /*num_prefill=*/1, trace, &fault, recovery);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  fault.OpenGate();
  const std::vector<EngineResult> results = cluster->Drain();
  // The whole run can drain through the survivor before the victim's worker
  // thread is ever scheduled (one-CPU hosts): wait for the health tick to
  // record the death instead of racing Drain against it.
  EXPECT_TRUE(cluster->WaitForReplicaDeaths(/*count=*/1, /*timeout_ms=*/10'000.0));
  const ClusterStats stats = cluster->Stats();

  DisaggFaultOutcome outcome;
  for (const EngineResult& result : results) {
    outcome.completed_ids.insert(result.request_id);
  }
  outcome.events = fault.Events();
  outcome.failures = cluster->TakeFailures().size();
  outcome.replica_deaths = stats.replica_deaths;
  outcome.handoffs = stats.handoffs;
  outcome.handles_created = stats.handles_created;
  outcome.handles_released = stats.handles_released;
  EXPECT_EQ(results.size(), 20u);
  cluster.reset();
  session.Stop();
  outcome.trace_events = session.Collect();
  EXPECT_EQ(session.dropped_events(), 0);
  return outcome;
}

TEST(FaultInjectionTest, DisaggKilledDecodeReplicaReroutesHandlesWithoutReprefill) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 2.0, 83);
  ASSERT_GE(trace.size(), 20u);

  const DisaggFaultOutcome first = RunDisaggKillDecode(config, trace);
  EXPECT_EQ(first.completed_ids.size(), 20u);
  EXPECT_EQ(first.failures, 0u);
  EXPECT_EQ(first.replica_deaths, 1);
  EXPECT_GT(first.handoffs, 0);
  EXPECT_EQ(first.handles_released, first.handles_created);

  TraceMatcher matcher(first.trace_events);
  // The victim died before its first step: it never retired a batch. A
  // handoff can still race into its queue before its worker thread runs the
  // kill check; any such request is failed over, and once the death is
  // convicted (the first kRetry) the victim's queue accepts nothing more.
  EXPECT_EQ(matcher.CountForReplica(TraceEventKind::kBatchStepEnd, 2), 0);
  if (matcher.CountForReplica(TraceEventKind::kDecodeEnqueued, 2) > 0) {
    const double first_retry_ms = matcher.FirstTime({TraceEventKind::kRetry});
    ASSERT_GE(first_retry_ms, 0.0);
    EXPECT_EQ(matcher.CountAfter({TraceEventKind::kDecodeEnqueued, 2}, first_retry_ms), 0);
    EXPECT_EQ(matcher.CountAfter({TraceEventKind::kEnqueued, 2}, first_retry_ms), 0);
  }
  // Every handed-off request decoded on the survivor with exactly one
  // prefill and one handoff — the handle moved, the prompt was not re-run.
  std::set<int64_t> handed_off;
  for (const TraceEvent& event : matcher.events()) {
    if (event.kind == TraceEventKind::kKvHandoff) {
      handed_off.insert(event.request_id);
    }
  }
  EXPECT_FALSE(handed_off.empty());
  for (int64_t id : handed_off) {
    EXPECT_TRUE(matcher.ExpectCompleted(id, StatusCode::kOk));
    EXPECT_EQ(matcher.CountForRequest(TraceEventKind::kPrefillDone, id), 1);
    EXPECT_EQ(matcher.CountForRequest(TraceEventKind::kKvHandoff, id), 1);
    EXPECT_EQ(matcher.CountMatching({TraceEventKind::kDecodeEnqueued, 1, id}), 1);
  }
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(matcher.ExpectCompleted(trace[i].id, StatusCode::kOk));
  }

  const DisaggFaultOutcome second = RunDisaggKillDecode(config, trace);
  EXPECT_EQ(second.completed_ids, first.completed_ids);
  EXPECT_EQ(second.events, first.events);
  EXPECT_EQ(second.failures, first.failures);
  EXPECT_EQ(second.replica_deaths, first.replica_deaths);
  EXPECT_EQ(second.handoffs, first.handoffs);
  EXPECT_EQ(second.handles_released, second.handles_created);
}

TEST(FaultInjectionTest, DisaggStalledPrefillPoolRecoversThroughReadmission) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 2.0, 89);
  ASSERT_GE(trace.size(), 12u);

  TraceSession session;
  FaultInjector fault(0x5eedu);
  fault.GateWorkers();
  // The ONLY prefill replica stalls before ingesting anything. The health
  // checker steals its queue, but re-dispatch finds no live prefill member:
  // the retry budget has to outlast the stall until readmission.
  fault.StallReplicaAfter(/*replica=*/0, /*completed=*/0, /*stall_ms=*/2000.0);
  RecoveryOptions recovery;
  recovery.stall_quarantine_ms = 1000.0;
  recovery.health_period_ms = 10.0;
  // 12 attempts at exponential backoff give a ~100s retry window: the budget
  // must outlast not just the 2s stall but the sanitizer-stretched readmission
  // path (TSan runs this at ~10x), and every request burns attempts while the
  // pool is empty. Readmission lands near attempt 6 in normal builds.
  recovery.max_attempts = 12;
  recovery.backoff_base_ms = 50.0;
  auto cluster =
      MakeDisaggCluster(config, /*replicas=*/2, /*num_prefill=*/1, trace, &fault, recovery);
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  fault.OpenGate();
  const std::vector<EngineResult> results = cluster->Drain();
  EXPECT_EQ(results.size(), 12u);
  EXPECT_TRUE(cluster->TakeFailures().empty());
  ASSERT_TRUE(cluster->WaitForReadmissions(/*count=*/1, /*timeout_ms=*/10'000.0));

  const ClusterStats stats = cluster->Stats();
  EXPECT_GE(stats.quarantines, 1);
  EXPECT_GE(stats.readmissions, 1);
  EXPECT_EQ(stats.replica_deaths, 0);
  EXPECT_EQ(stats.handles_released, stats.handles_created);

  cluster.reset();
  session.Stop();
  TraceMatcher matcher(session.Collect());
  EXPECT_EQ(session.dropped_events(), 0);
  EXPECT_GE(matcher.CountForReplica(TraceEventKind::kQuarantine, 0), 1);
  EXPECT_TRUE(matcher.ExpectAllBefore({TraceEventKind::kQuarantine, 0},
                                      {TraceEventKind::kReadmit, 0}));
  // Every request still ran the full two-stage lifecycle once the pool came
  // back: exactly one prefill each, and each handoff decoded on replica 1.
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(matcher.ExpectCompleted(trace[i].id, StatusCode::kOk));
    EXPECT_EQ(matcher.CountForRequest(TraceEventKind::kPrefillDone, trace[i].id), 1);
  }
}

}  // namespace
}  // namespace vlora

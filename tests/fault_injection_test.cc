// Deterministic fault-injection scenarios for the cluster recovery layer.
//
// Every scenario scripts a FaultInjector with a fixed seed and asserts exact
// outcomes — which requests complete, how many retries fire, what the event
// log contains — then re-runs the scenario and requires the same answers.
// Scripted faults trigger on completed-request counts and request failures on
// a hash of (seed, replica, id), so none of this depends on thread timing.
// The whole file also runs under TSan and ASan via scripts/verify.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/cluster/cluster_server.h"
#include "src/common/fault.h"
#include "src/workload/trace_gen.h"

namespace vlora {
namespace {

std::vector<LoraAdapter> MakeAdapters(const ModelConfig& config, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<LoraAdapter> adapters;
  for (int i = 0; i < count; ++i) {
    adapters.push_back(LoraAdapter::Random("fault-" + std::to_string(i), config.num_layers,
                                           config.d_model, 4, rng));
  }
  return adapters;
}

std::vector<Request> SmallTrace(int num_adapters, double rate_rps, double duration_s,
                                uint64_t seed) {
  TraceOptions options;
  options.app = AppKind::kVisualRetrieval;
  options.duration_s = duration_s;
  options.rate_rps = rate_rps;
  options.num_adapters = num_adapters;
  options.skewness = 0.6;
  options.seed = seed;
  return GenerateTrace(options);
}

TraceMapOptions SmallMap() {
  TraceMapOptions map;
  map.token_scale = 32;
  map.max_prompt_tokens = 16;
  map.max_new_tokens = 3;
  return map;
}

std::unique_ptr<ClusterServer> MakeCluster(const ModelConfig& config, int replicas,
                                           const std::vector<Request>& trace,
                                           FaultInjector* fault, RecoveryOptions recovery,
                                           int64_t capacity = 64) {
  ClusterOptions options;
  options.num_replicas = replicas;
  options.policy = RoutePolicy::kRoundRobin;  // fixed routing sequence
  options.admission = AdmissionPolicy::kBlock;
  options.replica_queue_capacity = capacity;
  options.server.max_batch_size = 4;
  options.fault = fault;
  options.recovery = recovery;
  auto cluster = std::make_unique<ClusterServer>(config, options);
  for (const LoraAdapter& adapter : MakeAdapters(config, 6, 11)) {
    cluster->AddAdapter(adapter);
  }
  cluster->PlaceAdapters(AdapterShares(trace, 6));
  return cluster;
}

// --- FaultInjector unit behaviour -------------------------------------------

TEST(FaultInjectorTest, ScriptedKillFiresOnceAtThreshold) {
  FaultInjector injector(7);
  injector.KillReplicaAfter(/*replica=*/1, /*completed=*/2);
  EXPECT_FALSE(injector.OnWorkerIteration(1, 0).kill);
  EXPECT_FALSE(injector.OnWorkerIteration(1, 1).kill);
  EXPECT_FALSE(injector.OnWorkerIteration(0, 5).kill);  // other replica untouched
  EXPECT_TRUE(injector.OnWorkerIteration(1, 2).kill);
  EXPECT_FALSE(injector.OnWorkerIteration(1, 5).kill);  // fires exactly once

  const std::vector<FaultEvent> events = injector.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kKillReplica);
  EXPECT_EQ(events[0].replica, 1);
  EXPECT_EQ(events[0].sequence, 0);
}

TEST(FaultInjectorTest, RequestFailureDecisionsDependOnlyOnSeedReplicaAndId) {
  FaultInjector a(0xfeedu);
  FaultInjector b(0xfeedu);
  a.FailRequests(0.5);
  b.FailRequests(0.5);
  int failed = 0;
  for (int replica = 0; replica < 4; ++replica) {
    // Query b in reverse to prove call order does not matter.
    for (int64_t id = 99; id >= 0; --id) {
      const bool decision = a.ShouldFailRequest(replica, id);
      failed += decision ? 1 : 0;
      EXPECT_EQ(decision, b.ShouldFailRequest(replica, id))
          << "replica " << replica << " id " << id;
    }
  }
  // The hash actually spreads: roughly half of 400 draws fail.
  EXPECT_GT(failed, 100);
  EXPECT_LT(failed, 300);

  FaultInjector other_seed(0xbeefu);
  other_seed.FailRequests(0.5);
  int disagreements = 0;
  for (int64_t id = 0; id < 100; ++id) {
    disagreements += other_seed.ShouldFailRequest(0, id) != a.ShouldFailRequest(0, id) ? 1 : 0;
  }
  EXPECT_GT(disagreements, 0);
}

// --- Scenario 1: kill one of four, everything completes via retry -----------

struct KillRunOutcome {
  std::set<int64_t> completed_ids;
  std::vector<FaultEvent> events;
  int64_t retries = 0;
  int64_t replica_deaths = 0;
  size_t failures = 0;
};

KillRunOutcome RunKillOneOfFour(const ModelConfig& config, const std::vector<Request>& trace) {
  FaultInjector fault(0x5eedu);
  fault.GateWorkers();                    // queues fill before any processing
  fault.KillReplicaAfter(/*replica=*/2, /*completed=*/0);
  RecoveryOptions recovery;
  recovery.stall_quarantine_ms = 0.0;     // gated workers are parked, not stalled
  recovery.backoff_base_ms = 1.0;
  recovery.health_period_ms = 2.0;
  auto cluster = MakeCluster(config, /*replicas=*/4, trace, &fault, recovery);
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  fault.OpenGate();  // replica 2 dies holding its 10 queued requests
  const std::vector<EngineResult> results = cluster->Drain();
  const ClusterStats stats = cluster->Stats();

  KillRunOutcome outcome;
  for (const EngineResult& result : results) {
    outcome.completed_ids.insert(result.request_id);
  }
  outcome.events = fault.Events();
  outcome.retries = stats.retries;
  outcome.replica_deaths = stats.replica_deaths;
  outcome.failures = cluster->TakeFailures().size();
  EXPECT_EQ(results.size(), 40u);
  EXPECT_EQ(stats.completed, 40);
  return outcome;
}

TEST(FaultInjectionTest, KillOneOfFourCompletesAllRequestsDeterministically) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 2.0, 41);
  ASSERT_GE(trace.size(), 40u);

  const KillRunOutcome first = RunKillOneOfFour(config, trace);
  // Round-robin put exactly 10 of the 40 gated requests on replica 2; its
  // death fails them over and every one is retried onto a survivor.
  EXPECT_EQ(first.completed_ids.size(), 40u);
  EXPECT_EQ(first.retries, 10);
  EXPECT_EQ(first.replica_deaths, 1);
  EXPECT_EQ(first.failures, 0u);  // nothing lost, nothing given up on
  ASSERT_EQ(first.events.size(), 1u);
  EXPECT_EQ(first.events[0].kind, FaultKind::kKillReplica);
  EXPECT_EQ(first.events[0].replica, 2);

  // Same script, same seed: identical completions and identical event log.
  const KillRunOutcome second = RunKillOneOfFour(config, trace);
  EXPECT_EQ(second.completed_ids, first.completed_ids);
  EXPECT_EQ(second.events, first.events);
  EXPECT_EQ(second.retries, first.retries);
  EXPECT_EQ(second.replica_deaths, first.replica_deaths);
}

// --- Scenario 2: stalled replica quarantined, then readmitted ---------------

TEST(FaultInjectionTest, StalledReplicaIsQuarantinedAndReadmitted) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 2.0, 43);
  ASSERT_GE(trace.size(), 34u);

  FaultInjector fault(0x5eedu);
  fault.GateWorkers();
  // Replica 1 sleeps 2 s before ingesting anything: its 15 queued requests
  // sit in ingress where the health checker can reclaim them.
  fault.StallReplicaAfter(/*replica=*/1, /*completed=*/0, /*stall_ms=*/2000.0);
  RecoveryOptions recovery;
  // Half the injected stall, so the gated queue is reclaimed early — but
  // wide enough that a healthy worker descheduled for hundreds of ms on a
  // loaded machine is not spuriously quarantined as well.
  recovery.stall_quarantine_ms = 1000.0;
  recovery.health_period_ms = 10.0;
  // A starved (not stalled) worker can still trip the quarantine on a
  // saturated box, leaving no healthy reroute target for a moment. A real
  // retry budget lets the stolen requests wait out the readmission instead
  // of failing within milliseconds.
  recovery.max_attempts = 8;
  recovery.backoff_base_ms = 50.0;
  auto cluster = MakeCluster(config, /*replicas=*/2, trace, &fault, recovery);
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  fault.OpenGate();
  const std::vector<EngineResult> results = cluster->Drain();
  EXPECT_EQ(results.size(), 30u);  // the survivor absorbed the stolen queue
  EXPECT_TRUE(cluster->TakeFailures().empty());

  ClusterStats stats = cluster->Stats();
  EXPECT_GE(stats.quarantines, 1);
  // At least replica 1's entire gated queue was stolen; a starved-but-healthy
  // replica 0 may be transiently quarantined too on a loaded machine, adding
  // legitimate extra reroutes.
  EXPECT_GE(stats.rerouted, 15);
  EXPECT_EQ(stats.replica_deaths, 0);

  // Once the stall ends the worker's heartbeat moves again and the health
  // checker readmits the replica (eventually: supervisor ticks every 10 ms).
  ASSERT_TRUE(cluster->WaitForReadmissions(/*count=*/1, /*timeout_ms=*/10'000.0));
  stats = cluster->Stats();
  ASSERT_GE(stats.readmissions, 1);

  // A readmitted replica carries traffic again: round-robin sends half of
  // each submit round to it. One round is usually enough, but on a loaded
  // machine the freshly readmitted worker can be starved past the stall
  // threshold, re-quarantined, and its queue re-stolen — correct recovery
  // behavior that leaves it at zero completions. Retry with fresh request
  // ids until a completion lands on replica 1.
  int64_t next_id = 100'000;  // trace ids are small; keep retry ids disjoint
  int64_t completed_on_1 = 0;
  for (int round = 0; round < 25 && completed_on_1 == 0; ++round) {
    // Zero completions on replica 1 after a full drain means it was
    // quarantined during (or before) the round — every one of its requests
    // was stolen. Block on the next readmission rather than spinning through
    // rounds while it is unroutable; the wait returns immediately when the
    // readmission already happened between the drain and this check.
    const int64_t readmissions_before = cluster->Stats().readmissions;
    for (size_t i = 30; i < 34; ++i) {
      EngineRequest request = EngineRequestFromTrace(trace[i], config, SmallMap());
      request.id = next_id++;
      EXPECT_TRUE(cluster->Submit(std::move(request)));
    }
    EXPECT_EQ(cluster->Drain().size(), 4u);
    completed_on_1 = cluster->replica(1).Snapshot().completed;
    if (completed_on_1 == 0 &&
        !cluster->WaitForReadmissions(readmissions_before + 1, /*timeout_ms=*/10'000.0)) {
      break;  // replica 1 never came back; fail on the assertion below
    }
  }
  EXPECT_GT(completed_on_1, 0);

  const std::vector<FaultEvent> events = fault.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kStallReplica);
  EXPECT_EQ(events[0].replica, 1);
  EXPECT_EQ(events[0].stall_ms, 2000.0);
}

// --- Scenario 3: retry count respects max_attempts --------------------------

struct RetryRunOutcome {
  std::map<int64_t, int> attempts_by_id;
  std::vector<StatusCode> codes;
  int64_t retries = 0;
  int64_t injected_failures = 0;
  size_t results = 0;
};

RetryRunOutcome RunAlwaysFail(const ModelConfig& config, const std::vector<Request>& trace) {
  FaultInjector fault(0x5eedu);
  fault.FailRequests(1.0);  // every submit attempt fails on every replica
  RecoveryOptions recovery;
  recovery.max_attempts = 3;
  recovery.backoff_base_ms = 1.0;
  recovery.health_period_ms = 2.0;
  recovery.stall_quarantine_ms = 0.0;
  auto cluster = MakeCluster(config, /*replicas=*/1, trace, &fault, recovery);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  RetryRunOutcome outcome;
  outcome.results = cluster->Drain().size();
  for (const FailedRequest& failure : cluster->TakeFailures()) {
    outcome.attempts_by_id[failure.request_id] = failure.attempts;
    outcome.codes.push_back(failure.status.code());
  }
  outcome.retries = cluster->Stats().retries;
  outcome.injected_failures = fault.injected_request_failures();
  return outcome;
}

TEST(FaultInjectionTest, RetryCountIsBoundedByMaxAttempts) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 1.0, 47);
  ASSERT_GE(trace.size(), 6u);

  const RetryRunOutcome first = RunAlwaysFail(config, trace);
  EXPECT_EQ(first.results, 0u);  // nothing can complete
  ASSERT_EQ(first.attempts_by_id.size(), 6u);
  for (const auto& [id, attempts] : first.attempts_by_id) {
    EXPECT_EQ(attempts, 3) << "request " << id;  // exactly max_attempts, never more
  }
  for (StatusCode code : first.codes) {
    EXPECT_EQ(code, StatusCode::kInternal);
  }
  // 6 first attempts + 2 retries each; every attempt hit the injector.
  EXPECT_EQ(first.retries, 12);
  EXPECT_EQ(first.injected_failures, 18);

  const RetryRunOutcome second = RunAlwaysFail(config, trace);
  EXPECT_EQ(second.attempts_by_id, first.attempts_by_id);
  EXPECT_EQ(second.retries, first.retries);
  EXPECT_EQ(second.injected_failures, first.injected_failures);
}

// --- Scenario 4: deadlines cut recovery short -------------------------------

TEST(FaultInjectionTest, DeadlineBoundsRecoveryBeforeRetriesBurnAttempts) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 1.0, 53);
  ASSERT_GE(trace.size(), 4u);

  FaultInjector fault(0x5eedu);
  fault.FailRequests(1.0);
  RecoveryOptions recovery;
  recovery.max_attempts = 5;
  recovery.backoff_base_ms = 50.0;       // first retry would fire at +50 ms...
  recovery.request_deadline_ms = 5.0;    // ...long past the budget
  recovery.health_period_ms = 5.0;
  recovery.stall_quarantine_ms = 0.0;
  auto cluster = MakeCluster(config, /*replicas=*/1, trace, &fault, recovery);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  EXPECT_TRUE(cluster->Drain().empty());

  const std::vector<FailedRequest> failures = cluster->TakeFailures();
  ASSERT_EQ(failures.size(), 4u);
  for (const FailedRequest& failure : failures) {
    EXPECT_EQ(failure.status.code(), StatusCode::kDeadlineExceeded)
        << failure.status.ToString();
    // The deadline scan runs before retry dispatch, so an expired request is
    // failed on its first attempt instead of burning more.
    EXPECT_EQ(failure.attempts, 1);
  }
  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.deadline_failures, 4);
  EXPECT_EQ(stats.failed, 4);
  EXPECT_EQ(stats.retries, 0);
}

}  // namespace
}  // namespace vlora

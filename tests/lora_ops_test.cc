#include <gtest/gtest.h>

#include <memory>

#include "src/kernels/lora_ops.h"
#include "src/tensor/tensor.h"

namespace vlora {
namespace {

// Reference implementation: per-segment (X * down) * up * scaling added to Y.
Tensor ReferenceLora(const Tensor& x, const std::vector<LoraSegment>& segments,
                     const std::vector<AdapterWeightsView>& adapters) {
  Tensor y = Tensor::Zeros(x.shape());
  for (const LoraSegment& segment : segments) {
    const AdapterWeightsView& adapter = adapters[static_cast<size_t>(segment.adapter_index)];
    Tensor x_seg = x.RowSlice(segment.row_begin, segment.row_end);
    Tensor mid = MatMulReference(x_seg, *adapter.down);
    mid.ScaleInPlace(adapter.scaling);
    Tensor out = MatMulReference(mid, *adapter.up);
    Tensor y_seg = y.RowSlice(segment.row_begin, segment.row_end);
    y_seg.AddInPlace(out);
  }
  return y;
}

struct Fixture {
  Fixture(int num_adapters, const std::vector<int64_t>& ranks, int64_t d, uint64_t seed)
      : rng(seed) {
    for (int i = 0; i < num_adapters; ++i) {
      downs.push_back(Tensor::Random(Shape(d, ranks[static_cast<size_t>(i) % ranks.size()]), rng,
                                     0.3f));
      ups.push_back(Tensor::Random(
          Shape(ranks[static_cast<size_t>(i) % ranks.size()], d), rng, 0.3f));
    }
    for (size_t i = 0; i < downs.size(); ++i) {
      views.push_back(AdapterWeightsView{.down = &downs[i], .up = &ups[i], .scaling = 1.0f});
    }
  }

  Rng rng;
  std::vector<Tensor> downs;
  std::vector<Tensor> ups;
  std::vector<AdapterWeightsView> views;
};

std::vector<std::unique_ptr<LoraBatchOperator>> AllOperators(AtmmDispatcher& dispatcher) {
  std::vector<std::unique_ptr<LoraBatchOperator>> ops;
  ops.push_back(std::make_unique<AtmmLoraOperator>(&dispatcher));
  ops.push_back(MakeSloraOperator());
  ops.push_back(MakePunicaOperator());
  ops.push_back(std::make_unique<EinsumLoraOperator>());
  return ops;
}

TEST(SegmentsTest, ValidateAcceptsTiling) {
  std::vector<LoraSegment> segments = {{0, 3, 0}, {3, 7, 1}};
  ValidateSegments(segments, 7, 2);  // must not abort
}

TEST(SegmentsTest, NumRows) {
  LoraSegment segment{2, 9, 0};
  EXPECT_EQ(segment.NumRows(), 7);
}

TEST(LoraOpsTest, AllOperatorsAgreeHomogeneous) {
  const int64_t d = 64;
  Fixture fx(1, {16}, d, 101);
  Tensor x = Tensor::Random(Shape(12, d), fx.rng, 1.0f);
  std::vector<LoraSegment> segments = {{0, 12, 0}};
  Tensor ref = ReferenceLora(x, segments, fx.views);
  AtmmDispatcher dispatcher;
  for (auto& op : AllOperators(dispatcher)) {
    Tensor y = Tensor::Zeros(x.shape());
    op->Run(x, segments, fx.views, y);
    EXPECT_LT(Tensor::MaxAbsDiff(y, ref), 1e-3f) << op->name();
  }
}

TEST(LoraOpsTest, AllOperatorsAgreeHeterogeneousRanks) {
  const int64_t d = 96;
  // Three adapters with distinct ranks — the heterogeneity that forces
  // padding in the Einsum baseline.
  Fixture fx(3, {8, 32, 64}, d, 103);
  Tensor x = Tensor::Random(Shape(25, d), fx.rng, 1.0f);
  std::vector<LoraSegment> segments = {{0, 5, 0}, {5, 14, 1}, {14, 25, 2}};
  Tensor ref = ReferenceLora(x, segments, fx.views);
  AtmmDispatcher dispatcher;
  for (auto& op : AllOperators(dispatcher)) {
    Tensor y = Tensor::Zeros(x.shape());
    op->Run(x, segments, fx.views, y);
    EXPECT_LT(Tensor::MaxAbsDiff(y, ref), 1e-3f) << op->name();
  }
}

TEST(LoraOpsTest, SegmentsMayLeaveGaps) {
  // Rows 4-8 belong to a request running on the merged adapter: no bypass.
  const int64_t d = 32;
  Fixture fx(2, {8}, d, 105);
  Tensor x = Tensor::Random(Shape(12, d), fx.rng, 1.0f);
  std::vector<LoraSegment> segments = {{0, 4, 0}, {8, 12, 1}};
  Tensor ref = ReferenceLora(x, segments, fx.views);
  AtmmDispatcher dispatcher;
  for (auto& op : AllOperators(dispatcher)) {
    Tensor y = Tensor::Zeros(x.shape());
    op->Run(x, segments, fx.views, y);
    EXPECT_LT(Tensor::MaxAbsDiff(y, ref), 1e-3f) << op->name();
    // The gap rows received no contribution.
    for (int64_t row = 4; row < 8; ++row) {
      for (int64_t col = 0; col < d; ++col) {
        EXPECT_EQ(y.at(row, col), 0.0f) << op->name();
      }
    }
  }
}

TEST(LoraOpsTest, ScalingAndNegativeScalingApplied) {
  // Negative scaling implements the deLoRA branch: +adapter then -adapter
  // must cancel exactly.
  const int64_t d = 48;
  Fixture fx(1, {16}, d, 107);
  Tensor x = Tensor::Random(Shape(10, d), fx.rng, 1.0f);
  std::vector<AdapterWeightsView> views = {fx.views[0], fx.views[0]};
  views[1].scaling = -1.0f;
  std::vector<LoraSegment> segments = {{0, 10, 0}};
  std::vector<LoraSegment> neg_segments = {{0, 10, 1}};
  AtmmDispatcher dispatcher;
  for (auto& op : AllOperators(dispatcher)) {
    Tensor y = Tensor::Zeros(x.shape());
    op->Run(x, segments, views, y);
    op->Run(x, neg_segments, views, y);
    EXPECT_LT(Tensor::MaxAbsDiff(y, Tensor::Zeros(x.shape())), 1e-3f) << op->name();
  }
}

TEST(LoraOpsTest, AccumulatesOntoExistingY) {
  const int64_t d = 32;
  Fixture fx(1, {8}, d, 109);
  Tensor x = Tensor::Random(Shape(6, d), fx.rng, 1.0f);
  std::vector<LoraSegment> segments = {{0, 6, 0}};
  Tensor base = Tensor::Random(Shape(6, d), fx.rng, 1.0f);
  Tensor ref = ReferenceLora(x, segments, fx.views);
  ref.AddInPlace(base);
  AtmmDispatcher dispatcher;
  for (auto& op : AllOperators(dispatcher)) {
    Tensor y = base.Clone();
    op->Run(x, segments, fx.views, y);
    EXPECT_LT(Tensor::MaxAbsDiff(y, ref), 1e-3f) << op->name();
  }
}

// Property sweep over segment layouts: random segmentations of a batch onto
// random adapters must agree across all four operators.
class LoraOpsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LoraOpsPropertyTest, RandomSegmentationsAgree) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng layout_rng(seed * 7919 + 13);
  const int64_t d = 64;
  const int num_adapters = 4;
  Fixture fx(num_adapters, {8, 16, 32, 64}, d, seed);
  const int64_t total = layout_rng.NextInt(6, 40);
  Tensor x = Tensor::Random(Shape(total, d), fx.rng, 1.0f);
  std::vector<LoraSegment> segments;
  int64_t cursor = 0;
  while (cursor < total) {
    const int64_t len = std::min<int64_t>(layout_rng.NextInt(1, 9), total - cursor);
    segments.push_back(LoraSegment{cursor, cursor + len,
                                   static_cast<int>(layout_rng.NextInt(0, num_adapters - 1))});
    cursor += len;
  }
  Tensor ref = ReferenceLora(x, segments, fx.views);
  AtmmDispatcher dispatcher;
  for (auto& op : AllOperators(dispatcher)) {
    Tensor y = Tensor::Zeros(x.shape());
    op->Run(x, segments, fx.views, y);
    EXPECT_LT(Tensor::MaxAbsDiff(y, ref), 2e-3f) << op->name() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoraOpsPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace vlora

#include <gtest/gtest.h>

#include "src/tensor/slab.h"
#include "src/tensor/tensor.h"

namespace vlora {
namespace {

TEST(ShapeTest, RankAndDims) {
  Shape s1(5);
  EXPECT_EQ(s1.rank(), 1);
  EXPECT_EQ(s1.NumElements(), 5);
  Shape s2(3, 4);
  EXPECT_EQ(s2.rank(), 2);
  EXPECT_EQ(s2.dim(0), 3);
  EXPECT_EQ(s2.dim(1), 4);
  EXPECT_EQ(s2.NumElements(), 12);
  Shape s3(2, 3, 4);
  EXPECT_EQ(s3.rank(), 3);
  EXPECT_EQ(s3.NumElements(), 24);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape(3, 4), Shape(3, 4));
  EXPECT_NE(Shape(3, 4), Shape(4, 3));
  EXPECT_NE(Shape(3), Shape(3, 1));
  EXPECT_EQ(Shape(2, 3).ToString(), "[2, 3]");
}

TEST(TensorTest, ZerosAndFill) {
  Tensor t = Tensor::Zeros(Shape(4, 4));
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(t.at(i, j), 0.0f);
    }
  }
  t.Fill(2.5f);
  EXPECT_EQ(t.at(3, 3), 2.5f);
}

TEST(TensorTest, RandomWithinScale) {
  Rng rng(3);
  Tensor t = Tensor::Random(Shape(16, 16), rng, 0.5f);
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_LE(std::abs(t.data()[i]), 0.5f);
  }
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::Full(Shape(2, 2), 1.0f);
  Tensor shallow = a;
  Tensor deep = a.Clone();
  a.at(0, 0) = 9.0f;
  EXPECT_EQ(shallow.at(0, 0), 9.0f);
  EXPECT_EQ(deep.at(0, 0), 1.0f);
}

TEST(TensorTest, RowSliceSharesStorage) {
  Tensor a = Tensor::Zeros(Shape(4, 3));
  Tensor slice = a.RowSlice(1, 3);
  EXPECT_EQ(slice.shape(), Shape(2, 3));
  slice.at(0, 0) = 5.0f;
  EXPECT_EQ(a.at(1, 0), 5.0f);
}

TEST(TensorTest, RowView) {
  Tensor a = Tensor::Zeros(Shape(3, 4));
  a.at(2, 1) = 7.0f;
  Tensor row = a.Row(2);
  EXPECT_EQ(row.shape(), Shape(4));
  EXPECT_EQ(row.at(1), 7.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor a = Tensor::Zeros(Shape(2, 6));
  a.at(1, 0) = 3.0f;
  Tensor b = a.Reshape(Shape(3, 4));
  EXPECT_EQ(b.at(1, 2), 3.0f);  // flat index 6
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a = Tensor::Full(Shape(2, 2), 2.0f);
  Tensor b = Tensor::Full(Shape(2, 2), 3.0f);
  a.AddInPlace(b);
  EXPECT_EQ(a.at(0, 0), 5.0f);
  a.SubInPlace(b);
  EXPECT_EQ(a.at(1, 1), 2.0f);
  a.ScaleInPlace(-0.5f);
  EXPECT_EQ(a.at(0, 1), -1.0f);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a = Tensor::Full(Shape(2, 2), 1.0f);
  Tensor b = Tensor::Full(Shape(2, 2), 1.0f);
  b.at(1, 0) = 1.25f;
  EXPECT_FLOAT_EQ(Tensor::MaxAbsDiff(a, b), 0.25f);
}

TEST(TensorTest, MatMulReferenceKnownValues) {
  Tensor a = Tensor::Zeros(Shape(2, 3));
  Tensor b = Tensor::Zeros(Shape(3, 2));
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  Tensor c = MatMulReference(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(SlabTest, AllocatesContiguously) {
  WeightSlab slab(100);
  Tensor a = slab.Allocate(4, 5);
  Tensor b = slab.Allocate(5, 4);
  EXPECT_EQ(slab.used(), 40);
  EXPECT_EQ(slab.remaining(), 60);
  // Physically adjacent: b starts exactly where a ends.
  EXPECT_EQ(b.data(), a.data() + 20);
  EXPECT_TRUE(slab.Owns(a));
  EXPECT_TRUE(slab.Owns(b));
}

TEST(SlabTest, ZeroInitialised) {
  WeightSlab slab(16);
  Tensor a = slab.Allocate(4, 4);
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.data()[i], 0.0f);
  }
}

TEST(SlabTest, DoesNotOwnForeignTensor) {
  WeightSlab slab(16);
  (void)slab.Allocate(2, 2);
  Tensor outside = Tensor::Zeros(Shape(2, 2));
  EXPECT_FALSE(slab.Owns(outside));
}

TEST(SlabTest, SlabOutlivesViaSharedStorage) {
  Tensor view;
  {
    WeightSlab slab(8);
    view = slab.Allocate(2, 4);
    view.Fill(1.5f);
  }
  // The shared_ptr storage keeps the memory alive after the slab dies.
  EXPECT_EQ(view.at(1, 3), 1.5f);
}

}  // namespace
}  // namespace vlora

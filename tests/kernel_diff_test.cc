// Differential kernel-test harness (the proof obligation for the SIMD and
// block-quantized compute paths).
//
// Every compiled micro-kernel instantiation of every variant is swept over a
// shape grid that exercises full tiles, non-multiple-of-tile edges in each
// dimension, the m = 1 decode shape and rank-sized LoRA shapes. Results are
// compared against a double-precision reference with a hybrid bound — an
// absolute accumulation-error term of k * 3 * eps plus a ULP term — because
// the AVX2 kernels use FMA (one rounding per multiply-add) while the scalar
// kernels round twice, so bitwise equality across variants is not the
// contract. Quantized paths are compared both against the dequantized-weight
// GEMM (tight, same fp bound) and against the original weights (analytic
// per-format bound from MaxAbsErrorBound). Everything is seeded; every path
// is run twice and must be bitwise identical to itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/kernels/gemm.h"
#include "src/kernels/kernel_variant.h"
#include "src/kernels/microkernel.h"
#include "src/kernels/quant.h"
#include "src/tensor/tensor.h"

namespace vlora {
namespace {

constexpr float kEps = 1.1920929e-7f;  // FLT_EPSILON

// C = A * B accumulated in double; the reference every variant is judged by.
std::vector<double> RefGemmDouble(const float* a, const float* b, int64_t m, int64_t n,
                                  int64_t k) {
  std::vector<double> c(static_cast<size_t>(m * n), 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const double aip = static_cast<double>(a[i * k + p]);
      for (int64_t j = 0; j < n; ++j) {
        c[static_cast<size_t>(i * n + j)] += aip * static_cast<double>(b[p * n + j]);
      }
    }
  }
  return c;
}

// Distance in units-in-the-last-place between two floats (sign-magnitude
// integer ordering, the usual ULP metric).
int64_t UlpDistance(float x, float y) {
  if (x == y) {
    return 0;
  }
  int32_t ix;
  int32_t iy;
  std::memcpy(&ix, &x, sizeof(ix));
  std::memcpy(&iy, &y, sizeof(iy));
  auto key = [](int32_t i) -> int64_t {
    return i < 0 ? static_cast<int64_t>(INT32_MIN) - i : static_cast<int64_t>(i);
  };
  return std::abs(key(ix) - key(iy));
}

// Hybrid accumulation bound: absolute term covering k rounded multiply-adds
// of |a|,|b| <= scale operands, with a small ULP floor for large magnitudes.
void ExpectCloseToReference(const float* actual, const std::vector<double>& ref, int64_t count,
                            int64_t k, float operand_scale, const char* what) {
  const double abs_tol =
      3.0 * static_cast<double>(k) * static_cast<double>(kEps) * operand_scale * operand_scale;
  for (int64_t i = 0; i < count; ++i) {
    const double r = ref[static_cast<size_t>(i)];
    const double err = std::fabs(static_cast<double>(actual[i]) - r);
    const double ulp_tol = 64.0 * static_cast<double>(kEps) * std::fabs(r);
    ASSERT_LE(err, std::max(abs_tol, ulp_tol))
        << what << " element " << i << ": " << actual[i] << " vs " << r;
  }
}

struct DiffShape {
  int64_t m;
  int64_t n;
  int64_t k;
};

// Shape grid: full-tile, edge in each dimension, decode, LoRA-rank shapes.
std::vector<DiffShape> SweepShapes(int mr, int nr) {
  return {
      {mr, nr, 32},                          // exactly one micro-tile
      {3 * mr + 1, 3 * nr + 1, 33},          // edges in m, n and k at once
      {mr - 1, nr - 1, 7},                   // smaller than one tile
      {1, 64, 96},                           // m = 1 decode row
      {1, 16, 512},                          // decode through a down-projection
      {37, 16, 192},                         // prefill x (d -> rank), rank 16
      {37, 192, 16},                         // prefill x (rank -> d)
      {64, 48, 80},                          // none of m/n/k tile-aligned
  };
}

// A tiling config that legally wraps (mr, nr): block sizes are the smallest
// powers of two >= 2x the register tile, so every sweep shape produces both
// interior and edge micro-tiles.
TileConfig WrapConfig(int mr, int nr) {
  TileConfig config;
  config.mr = mr;
  config.nr = nr;
  config.mc = 2 * mr;
  config.nc = 2 * nr;
  config.kc = 32;
  return config;
}

TEST(KernelTableTest, VariantsExposeTheSameInstantiationSet) {
  const auto scalar = MicroKernelShapes(KernelVariant::kScalar);
  EXPECT_FALSE(scalar.empty());
  for (KernelVariant variant : AvailableKernelVariants()) {
    EXPECT_EQ(MicroKernelShapes(variant), scalar) << KernelVariantName(variant);
  }
  // Every entry carries its own variant tag and non-null kernels.
  for (KernelVariant variant : AvailableKernelVariants()) {
    for (const MicroKernelEntry& entry : MicroKernelTable(variant)) {
      EXPECT_EQ(entry.variant, variant);
      EXPECT_NE(entry.full, nullptr);
      EXPECT_NE(entry.edge, nullptr);
    }
  }
}

// The core differential sweep: every variant x every compiled (mr, nr)
// instantiation x every shape, against the double reference.
TEST(KernelDiffTest, EveryMicroKernelMatchesDoubleReference) {
  std::set<std::tuple<std::string, int, int>> covered;
  for (KernelVariant variant : AvailableKernelVariants()) {
    for (const auto& [mr, nr] : MicroKernelShapes(variant)) {
      covered.insert({KernelVariantName(variant), mr, nr});
      const TileConfig config = WrapConfig(mr, nr);
      ASSERT_TRUE(config.Valid()) << config.ToString();
      for (const DiffShape& shape : SweepShapes(mr, nr)) {
        Rng rng(0xD1FFull ^ static_cast<uint64_t>(shape.m * 73 + shape.n * 31 + shape.k));
        Tensor a = Tensor::Random(Shape(shape.m, shape.k), rng, 1.0f);
        Tensor b = Tensor::Random(Shape(shape.k, shape.n), rng, 1.0f);
        Tensor c = Tensor::Zeros(Shape(shape.m, shape.n));
        GemmWorkspace workspace;
        GemmTiled(a.data(), b.data(), c.data(), shape.m, shape.n, shape.k, config, workspace,
                  variant);
        const auto ref = RefGemmDouble(a.data(), b.data(), shape.m, shape.n, shape.k);
        ExpectCloseToReference(c.data(), ref, shape.m * shape.n, shape.k, 1.0f,
                               KernelVariantName(variant));
      }
    }
  }
  // The sweep really covered every compiled instantiation of every variant.
  size_t expected = 0;
  for (KernelVariant variant : AvailableKernelVariants()) {
    expected += MicroKernelTable(variant).size();
  }
  EXPECT_EQ(covered.size(), expected);
}

// AVX2 against scalar directly: same config, same inputs, ULP-bounded (FMA
// contracts one rounding per term, so k * eps absolute + ULP floor).
TEST(KernelDiffTest, Avx2MatchesScalarWithinUlps) {
  if (!Avx2Available()) {
    GTEST_SKIP() << "host has no AVX2 kernels";
  }
  for (const auto& [mr, nr] : MicroKernelShapes(KernelVariant::kAvx2)) {
    const TileConfig config = WrapConfig(mr, nr);
    for (const DiffShape& shape : SweepShapes(mr, nr)) {
      Rng rng(0xFACEull + static_cast<uint64_t>(mr * 100 + nr));
      Tensor a = Tensor::Random(Shape(shape.m, shape.k), rng, 1.0f);
      Tensor b = Tensor::Random(Shape(shape.k, shape.n), rng, 1.0f);
      Tensor c_scalar = Tensor::Zeros(Shape(shape.m, shape.n));
      Tensor c_avx2 = Tensor::Zeros(Shape(shape.m, shape.n));
      GemmWorkspace workspace;
      GemmTiled(a.data(), b.data(), c_scalar.data(), shape.m, shape.n, shape.k, config,
                workspace, KernelVariant::kScalar);
      GemmTiled(a.data(), b.data(), c_avx2.data(), shape.m, shape.n, shape.k, config, workspace,
                KernelVariant::kAvx2);
      const double abs_tol = 3.0 * static_cast<double>(shape.k) * static_cast<double>(kEps);
      for (int64_t i = 0; i < shape.m * shape.n; ++i) {
        const double err =
            std::fabs(static_cast<double>(c_scalar.data()[i]) - c_avx2.data()[i]);
        const bool ok = err <= abs_tol || UlpDistance(c_scalar.data()[i], c_avx2.data()[i]) <= 64;
        ASSERT_TRUE(ok) << mr << "x" << nr << " element " << i << ": scalar "
                        << c_scalar.data()[i] << " avx2 " << c_avx2.data()[i];
      }
    }
  }
}

// Quantized GEMM vs the dense GEMM over the dequantized weights: this isolates
// the fused-dequant plumbing from the quantization error itself, so the bound
// is the same floating-point bound as the fp32 differential.
TEST(KernelDiffTest, QuantizedGemmMatchesDequantizedReference) {
  for (KernelVariant variant : AvailableKernelVariants()) {
    for (WeightFormat format : {WeightFormat::kQ8, WeightFormat::kQ4}) {
      for (const DiffShape& shape : {DiffShape{37, 48, 80}, DiffShape{8, 16, 32},
                                     DiffShape{2, 7, 45}, DiffShape{16, 64, 256}}) {
        Rng rng(0x9A4Dull ^ static_cast<uint64_t>(shape.m + shape.n + shape.k));
        Tensor a = Tensor::Random(Shape(shape.m, shape.k), rng, 1.0f);
        Tensor b = Tensor::Random(Shape(shape.k, shape.n), rng, 1.0f);
        const QuantizedMatrix b_q = QuantizedMatrix::Quantize(b, format);

        // Dense reference over the dequantized weights, in double.
        Tensor b_deq(Shape(shape.k, shape.n));
        for (int64_t row = 0; row < shape.k; ++row) {
          b_q.DequantizeRowRange(row, 0, shape.n, b_deq.data() + row * shape.n,
                                 KernelVariant::kScalar);
        }
        const auto ref = RefGemmDouble(a.data(), b_deq.data(), shape.m, shape.n, shape.k);

        Tensor c = Tensor::Zeros(Shape(shape.m, shape.n));
        GemmWorkspace workspace;
        GemmQuantized(a.data(), b_q, c.data(), shape.m, shape.n, shape.k, TileConfig{}, workspace,
                      variant);
        ExpectCloseToReference(c.data(), ref, shape.m * shape.n, shape.k, 1.0f,
                               WeightFormatName(format));
      }
    }
  }
}

// Quantized GEMM vs the ORIGINAL weights: bounded by the analytic per-format
// error (sum over k of |a| times half a quantization step) plus fp slack.
TEST(KernelDiffTest, QuantizedGemmWithinAnalyticFormatBound) {
  for (KernelVariant variant : AvailableKernelVariants()) {
    for (WeightFormat format : {WeightFormat::kQ8, WeightFormat::kQ4}) {
      const int64_t m = 16;
      const int64_t n = 48;
      const int64_t k = 160;
      Rng rng(0xB0DEull + static_cast<uint64_t>(format));
      Tensor a = Tensor::Random(Shape(m, k), rng, 1.0f);
      Tensor b = Tensor::Random(Shape(k, n), rng, 1.0f);
      const QuantizedMatrix b_q = QuantizedMatrix::Quantize(b, format);
      const auto ref = RefGemmDouble(a.data(), b.data(), m, n, k);

      Tensor c = Tensor::Zeros(Shape(m, n));
      GemmWorkspace workspace;
      GemmQuantized(a.data(), b_q, c.data(), m, n, k, TileConfig{}, workspace, variant);

      // |a| <= 1 and every block's max-abs <= 1, so per-element quantization
      // error is at most k * MaxAbsErrorBound(format, 1).
      const double bound = static_cast<double>(k) *
                               static_cast<double>(MaxAbsErrorBound(format, 1.0f)) +
                           3.0 * static_cast<double>(k) * static_cast<double>(kEps);
      for (int64_t i = 0; i < m * n; ++i) {
        ASSERT_LE(std::fabs(static_cast<double>(c.data()[i]) - ref[static_cast<size_t>(i)]),
                  bound)
            << WeightFormatName(format) << " element " << i;
      }
    }
  }
}

// m = 1 must take the register-fused GEMV path and agree with it exactly.
TEST(KernelDiffTest, DecodeRowDelegatesToFusedGemv) {
  for (KernelVariant variant : AvailableKernelVariants()) {
    for (WeightFormat format : {WeightFormat::kQ8, WeightFormat::kQ4}) {
      const int64_t k = 192;
      const int64_t n = 70;  // partial trailing block
      Rng rng(0xDECull);
      Tensor x = Tensor::Random(Shape(1, k), rng, 1.0f);
      Tensor b = Tensor::Random(Shape(k, n), rng, 1.0f);
      const QuantizedMatrix b_q = QuantizedMatrix::Quantize(b, format);

      Tensor y_gemm = Tensor::Zeros(Shape(1, n));
      Tensor y_gemv = Tensor::Zeros(Shape(1, n));
      GemmWorkspace workspace;
      GemmQuantized(x.data(), b_q, y_gemm.data(), 1, n, k, TileConfig{}, workspace, variant);
      GemvQuantized(x.data(), b_q, y_gemv.data(), variant);
      EXPECT_EQ(0, std::memcmp(y_gemm.data(), y_gemv.data(),
                               static_cast<size_t>(n) * sizeof(float)));
      // And the GEMV itself is within the fp bound of the dequant reference.
      Tensor b_deq(Shape(k, n));
      for (int64_t row = 0; row < k; ++row) {
        b_q.DequantizeRowRange(row, 0, n, b_deq.data() + row * n, KernelVariant::kScalar);
      }
      const auto ref = RefGemmDouble(x.data(), b_deq.data(), 1, n, k);
      ExpectCloseToReference(y_gemv.data(), ref, n, k, 1.0f, "gemv");
    }
  }
}

// Seeded and deterministic: the same call twice is bitwise identical, for
// every variant and every storage format.
TEST(KernelDiffTest, RunTwiceIsBitwiseIdentical) {
  const int64_t m = 33;
  const int64_t n = 49;
  const int64_t k = 97;
  Rng rng(0x5EEDull);
  Tensor a = Tensor::Random(Shape(m, k), rng, 1.0f);
  Tensor b = Tensor::Random(Shape(k, n), rng, 1.0f);
  const size_t c_bytes = static_cast<size_t>(m * n) * sizeof(float);
  for (KernelVariant variant : AvailableKernelVariants()) {
    Tensor c1 = Tensor::Zeros(Shape(m, n));
    Tensor c2 = Tensor::Zeros(Shape(m, n));
    GemmWorkspace workspace;
    GemmTiled(a.data(), b.data(), c1.data(), m, n, k, TileConfig{}, workspace, variant);
    GemmTiled(a.data(), b.data(), c2.data(), m, n, k, TileConfig{}, workspace, variant);
    EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c_bytes)) << KernelVariantName(variant);
    for (WeightFormat format : {WeightFormat::kQ8, WeightFormat::kQ4}) {
      const QuantizedMatrix b_q = QuantizedMatrix::Quantize(b, format);
      Tensor q1 = Tensor::Zeros(Shape(m, n));
      Tensor q2 = Tensor::Zeros(Shape(m, n));
      GemmQuantized(a.data(), b_q, q1.data(), m, n, k, TileConfig{}, workspace, variant);
      GemmQuantized(a.data(), b_q, q2.data(), m, n, k, TileConfig{}, workspace, variant);
      EXPECT_EQ(0, std::memcmp(q1.data(), q2.data(), c_bytes))
          << KernelVariantName(variant) << "/" << WeightFormatName(format);
    }
  }
}

}  // namespace
}  // namespace vlora

#include <gtest/gtest.h>

#include "src/lora/adapter.h"
#include "src/lora/merge.h"
#include "src/tensor/slab.h"

namespace vlora {
namespace {

// Builds a model-like set of random weights for the given targets.
ModelMergeTargets MakeModel(WeightSlab& slab, const std::vector<LoraTarget>& targets, int layers,
                            int64_t d, Rng& rng) {
  ModelMergeTargets model;
  for (LoraTarget target : targets) {
    for (int i = 0; i < layers; ++i) {
      Tensor w = slab.Allocate(d, d);
      Tensor random = Tensor::Random(Shape(d, d), rng, 0.5f);
      w.AddInPlace(random);
      model.by_target[target].push_back(w);
    }
  }
  return model;
}

ModelMergeTargets CloneModel(const ModelMergeTargets& model) {
  ModelMergeTargets clone;
  for (const auto& [target, weights] : model.by_target) {
    for (const Tensor& w : weights) {
      clone.by_target[target].push_back(w.Clone());
    }
  }
  return clone;
}

TEST(AdapterTest, RandomAdapterShapes) {
  Rng rng(1);
  LoraAdapter adapter = LoraAdapter::Random("a", 3, 32, 8, rng);
  EXPECT_EQ(adapter.num_layers(), 3);
  EXPECT_EQ(adapter.rank(), 8);
  EXPECT_EQ(adapter.d_model(), 32);
  // All three attention projections adapted by default.
  EXPECT_EQ(adapter.targets().size(), 3u);
  for (LoraTarget target : kAllLoraTargets) {
    EXPECT_TRUE(adapter.HasTarget(target));
    EXPECT_EQ(adapter.layer(target, 0).down.shape(), Shape(32, 8));
    EXPECT_EQ(adapter.layer(target, 0).up.shape(), Shape(8, 32));
  }
  EXPECT_EQ(adapter.NumParams(), 3 * 3 * 2 * 32 * 8);
  EXPECT_EQ(adapter.SizeBytesFp16(), adapter.NumParams() * 2);
}

TEST(AdapterTest, SingleTargetAdapter) {
  Rng rng(2);
  LoraAdapter adapter = LoraAdapter::Random("a", 2, 16, 4, rng, 0.05f, {LoraTarget::kWo});
  EXPECT_TRUE(adapter.HasTarget(LoraTarget::kWo));
  EXPECT_FALSE(adapter.HasTarget(LoraTarget::kWq));
  EXPECT_EQ(adapter.NumParams(), 1 * 2 * 2 * 16 * 4);
}

TEST(AdapterTest, LayerViewCarriesScaling) {
  Rng rng(3);
  LoraAdapter adapter = LoraAdapter::Random("a", 2, 16, 4, rng);
  adapter.set_scaling(0.5f);
  AdapterWeightsView view = adapter.LayerView(LoraTarget::kWv, 1);
  EXPECT_EQ(view.scaling, 0.5f);
  EXPECT_EQ(view.rank(), 4);
  EXPECT_EQ(view.d_model(), 16);
}

TEST(AdapterTest, TaskHeadAttachment) {
  Rng rng(4);
  LoraAdapter adapter = LoraAdapter::Random("a", 1, 16, 4, rng);
  EXPECT_FALSE(adapter.task_head().has_value());
  VisionTaskHead head;
  head.task = VisionTask::kVideoClassification;
  head.weight = Tensor::Zeros(Shape(16, 10));
  adapter.SetTaskHead(std::move(head));
  ASSERT_TRUE(adapter.task_head().has_value());
  EXPECT_EQ(adapter.task_head()->num_options(), 10);
}

TEST(AdapterTest, TargetNames) {
  EXPECT_STREQ(LoraTargetName(LoraTarget::kWq), "Wq");
  EXPECT_STREQ(LoraTargetName(LoraTarget::kWv), "Wv");
  EXPECT_STREQ(LoraTargetName(LoraTarget::kWo), "Wo");
}

TEST(SwiftSwitcherTest, MergeUnmergeRoundTripAllTargets) {
  Rng rng(5);
  const int layers = 3;
  const int64_t d = 32;
  WeightSlab slab(3 * layers * d * d);
  std::vector<LoraTarget> targets(kAllLoraTargets.begin(), kAllLoraTargets.end());
  ModelMergeTargets model = MakeModel(slab, targets, layers, d, rng);
  ModelMergeTargets original = CloneModel(model);
  LoraAdapter adapter = LoraAdapter::Random("a", layers, d, 8, rng);
  AtmmDispatcher atmm;
  SwiftSwitcher switcher(&atmm);
  switcher.Apply(adapter, MergeDirection::kMerge, model);
  // Every adapted projection actually changed.
  for (LoraTarget target : kAllLoraTargets) {
    EXPECT_GT(MaxAbsDiff(model.at(target), original.at(target)), 1e-4f)
        << LoraTargetName(target);
  }
  switcher.Apply(adapter, MergeDirection::kUnmerge, model);
  EXPECT_LT(MaxAbsDiff(model, original), 1e-4f);
}

TEST(SwiftSwitcherTest, SingleTargetAdapterTouchesOnlyItsTarget) {
  Rng rng(6);
  const int layers = 2;
  const int64_t d = 16;
  WeightSlab slab(3 * layers * d * d);
  std::vector<LoraTarget> targets(kAllLoraTargets.begin(), kAllLoraTargets.end());
  ModelMergeTargets model = MakeModel(slab, targets, layers, d, rng);
  ModelMergeTargets original = CloneModel(model);
  LoraAdapter adapter = LoraAdapter::Random("a", layers, d, 4, rng, 0.05f, {LoraTarget::kWv});
  AtmmDispatcher atmm;
  SwiftSwitcher switcher(&atmm);
  switcher.Apply(adapter, MergeDirection::kMerge, model);
  EXPECT_EQ(MaxAbsDiff(model.at(LoraTarget::kWq), original.at(LoraTarget::kWq)), 0.0f);
  EXPECT_EQ(MaxAbsDiff(model.at(LoraTarget::kWo), original.at(LoraTarget::kWo)), 0.0f);
  EXPECT_GT(MaxAbsDiff(model.at(LoraTarget::kWv), original.at(LoraTarget::kWv)), 1e-4f);
}

TEST(SwiftSwitcherTest, MergedEqualsExplicitDeltaW) {
  Rng rng(7);
  const int64_t d = 24;
  WeightSlab slab(d * d);
  ModelMergeTargets model = MakeModel(slab, {LoraTarget::kWo}, 1, d, rng);
  ModelMergeTargets expected = CloneModel(model);
  LoraAdapter adapter = LoraAdapter::Random("a", 1, d, 6, rng, 0.05f, {LoraTarget::kWo});
  adapter.set_scaling(2.0f);

  // expected += scaling * down * up
  Tensor delta = MatMulReference(adapter.layer(LoraTarget::kWo, 0).down,
                                 adapter.layer(LoraTarget::kWo, 0).up);
  delta.ScaleInPlace(2.0f);
  expected.at(LoraTarget::kWo)[0].AddInPlace(delta);

  AtmmDispatcher atmm;
  SwiftSwitcher switcher(&atmm);
  switcher.Apply(adapter, MergeDirection::kMerge, model);
  EXPECT_LT(MaxAbsDiff(model, expected), 1e-4f);
}

TEST(SwiftSwitcherTest, SwitchReplacesAdapter) {
  Rng rng(9);
  const int layers = 2;
  const int64_t d = 16;
  WeightSlab slab(3 * layers * d * d);
  std::vector<LoraTarget> targets(kAllLoraTargets.begin(), kAllLoraTargets.end());
  ModelMergeTargets model = MakeModel(slab, targets, layers, d, rng);
  LoraAdapter a = LoraAdapter::Random("a", layers, d, 4, rng);
  LoraAdapter b = LoraAdapter::Random("b", layers, d, 4, rng);
  AtmmDispatcher atmm;
  SwiftSwitcher switcher(&atmm);

  // Expected end state: the clean model with only b merged.
  ModelMergeTargets expected = CloneModel(model);
  switcher.Apply(b, MergeDirection::kMerge, expected);

  switcher.Apply(a, MergeDirection::kMerge, model);
  switcher.Switch(&a, &b, model);
  EXPECT_LT(MaxAbsDiff(model, expected), 1e-4f);

  // Switching to nullptr unmerges everything.
  switcher.Switch(&b, nullptr, model);
  switcher.Apply(b, MergeDirection::kUnmerge, expected);
  EXPECT_LT(MaxAbsDiff(model, expected), 1e-4f);
}

TEST(LegacySwitcherTest, AgreesWithSwiftSwitcher) {
  Rng rng(11);
  const int layers = 2;
  const int64_t d = 20;
  WeightSlab slab_a(3 * layers * d * d);
  WeightSlab slab_b(3 * layers * d * d);
  std::vector<LoraTarget> targets(kAllLoraTargets.begin(), kAllLoraTargets.end());
  ModelMergeTargets swift_model = MakeModel(slab_a, targets, layers, d, rng);
  ModelMergeTargets legacy_model;
  for (const auto& [target, weights] : swift_model.by_target) {
    for (const Tensor& w : weights) {
      Tensor copy = slab_b.Allocate(d, d);
      copy.AddInPlace(w);
      legacy_model.by_target[target].push_back(copy);
    }
  }
  LoraAdapter adapter = LoraAdapter::Random("a", layers, d, 8, rng);
  AtmmDispatcher atmm;
  SwiftSwitcher swift(&atmm);
  LegacySwitcher legacy;
  swift.Apply(adapter, MergeDirection::kMerge, swift_model);
  legacy.Apply(adapter, MergeDirection::kMerge, legacy_model);
  EXPECT_LT(MaxAbsDiff(swift_model, legacy_model), 1e-4f);
  swift.Apply(adapter, MergeDirection::kUnmerge, swift_model);
  legacy.Apply(adapter, MergeDirection::kUnmerge, legacy_model);
  EXPECT_LT(MaxAbsDiff(swift_model, legacy_model), 1e-4f);
}

// The deLoRA identity of §4.4.2, checked in pure matrix form:
//   x (W_merged - W_deLoRA1 + W_LoRAx) == x (W_base + W_LoRAx)
TEST(DeLoraTest, MixtureIdentityHolds) {
  Rng rng(13);
  const int64_t d = 32;
  WeightSlab slab(d * d);
  ModelMergeTargets model = MakeModel(slab, {LoraTarget::kWo}, 1, d, rng);
  Tensor w_base = model.at(LoraTarget::kWo)[0].Clone();
  LoraAdapter lora1 = LoraAdapter::Random("lora1", 1, d, 8, rng, 0.05f, {LoraTarget::kWo});
  LoraAdapter lorax = LoraAdapter::Random("lorax", 1, d, 8, rng, 0.05f, {LoraTarget::kWo});
  AtmmDispatcher atmm;
  SwiftSwitcher switcher(&atmm);
  switcher.Apply(lora1, MergeDirection::kMerge, model);  // W_merged

  Tensor x = Tensor::Random(Shape(5, d), rng, 1.0f);

  // Left side: x*W_merged - deLoRA1(x) + LoRAx(x).
  Tensor left = MatMulReference(x, model.at(LoraTarget::kWo)[0]);
  Tensor delora = MatMulReference(MatMulReference(x, lora1.layer(LoraTarget::kWo, 0).down),
                                  lora1.layer(LoraTarget::kWo, 0).up);
  left.SubInPlace(delora);
  Tensor own = MatMulReference(MatMulReference(x, lorax.layer(LoraTarget::kWo, 0).down),
                               lorax.layer(LoraTarget::kWo, 0).up);
  left.AddInPlace(own);

  // Right side: x*(W_base) + LoRAx(x).
  Tensor right = MatMulReference(x, w_base);
  right.AddInPlace(own);

  EXPECT_LT(Tensor::MaxAbsDiff(left, right), 1e-3f);
}

}  // namespace
}  // namespace vlora

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/table.h"
#include "src/common/vision_task.h"

namespace vlora {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad rank");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad rank");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad rank");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing adapter"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, IntRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t value = rng.NextInt(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double value = rng.NextGaussian();
    sum += value;
    sq += value * value;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(4.0);
  }
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(RngTest, GammaMeanAndVariance) {
  Rng rng(17);
  const double shape = 0.25;
  const double scale = 2.0;
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double value = rng.NextGamma(shape, scale);
    EXPECT_GE(value, 0.0);
    sum += value;
  }
  EXPECT_NEAR(sum / n, shape * scale, 0.05);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(19);
  int head = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(10, 1.2) == 0) {
      ++head;
    }
  }
  // Index 0 should carry far more than the uniform 10% share.
  EXPECT_GT(head, n / 5);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(21);
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(rng.NextZipf(4, 0.0))];
  }
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.25, 0.03);
  }
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int zero = 0;
  int two = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const int64_t pick = rng.NextWeighted(weights);
    EXPECT_NE(pick, 1);
    if (pick == 0) {
      ++zero;
    } else {
      ++two;
    }
  }
  EXPECT_NEAR(static_cast<double>(two) / n, 0.75, 0.03);
  EXPECT_NEAR(static_cast<double>(zero) / n, 0.25, 0.03);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(25);
  std::vector<int64_t> perm = rng.Permutation(50);
  std::set<int64_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 49);
}

TEST(SampleStatsTest, BasicSummaries) {
  SampleStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 5);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 3.0);
  EXPECT_NEAR(stats.StdDev(), std::sqrt(2.0), 1e-12);
}

TEST(SampleStatsTest, PercentileInterpolates) {
  SampleStats stats;
  stats.Add(0.0);
  stats.Add(10.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100.0), 10.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(90.0), 9.0);
}

TEST(SampleStatsTest, SingleSample) {
  SampleStats stats;
  stats.Add(7.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(33.0), 7.0);
  EXPECT_DOUBLE_EQ(stats.StdDev(), 0.0);
}

TEST(SampleStatsTest, EmptyPercentileIsZero) {
  SampleStats stats;
  EXPECT_DOUBLE_EQ(stats.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(99.0), 0.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 0.0);
}

TEST(SampleStatsTest, SingleSampleAnswersEveryPercentile) {
  SampleStats stats;
  stats.Add(42.5);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.0), 42.5);
  EXPECT_DOUBLE_EQ(stats.Percentile(50.0), 42.5);
  EXPECT_DOUBLE_EQ(stats.Percentile(100.0), 42.5);
}

TEST(SampleStatsTest, AllEqualSamplesReturnTheCommonValue) {
  SampleStats stats;
  for (int i = 0; i < 8; ++i) {
    stats.Add(3.25);
  }
  EXPECT_DOUBLE_EQ(stats.Percentile(1.0), 3.25);
  EXPECT_DOUBLE_EQ(stats.Percentile(50.0), 3.25);
  EXPECT_DOUBLE_EQ(stats.Percentile(99.0), 3.25);
}

TEST(SampleStatsTest, OutOfRangePercentileClamps) {
  SampleStats stats;
  stats.Add(1.0);
  stats.Add(9.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(250.0), 9.0);
}

TEST(LatencyRecorderTest, EmptyRecorderReportsZeros) {
  LatencyRecorder recorder;
  EXPECT_TRUE(recorder.empty());
  EXPECT_DOUBLE_EQ(recorder.MeanMs(), 0.0);
  EXPECT_DOUBLE_EQ(recorder.MaxMs(), 0.0);
  EXPECT_DOUBLE_EQ(recorder.P50Ms(), 0.0);
  EXPECT_DOUBLE_EQ(recorder.P95Ms(), 0.0);
  EXPECT_DOUBLE_EQ(recorder.P99Ms(), 0.0);
}

TEST(LatencyRecorderTest, SingleRecordDefinesAllPercentiles) {
  LatencyRecorder recorder;
  recorder.Record(12.0);
  EXPECT_DOUBLE_EQ(recorder.P50Ms(), 12.0);
  EXPECT_DOUBLE_EQ(recorder.P95Ms(), 12.0);
  EXPECT_DOUBLE_EQ(recorder.P99Ms(), 12.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(0.5);   // bin 0
  hist.Add(9.9);   // bin 4
  hist.Add(-3.0);  // clamps to bin 0
  hist.Add(42.0);  // clamps to bin 4
  EXPECT_EQ(hist.BinCount(0), 2);
  EXPECT_EQ(hist.BinCount(4), 2);
  EXPECT_EQ(hist.total(), 4);
  EXPECT_DOUBLE_EQ(hist.BinLow(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.BinHigh(1), 4.0);
}

TEST(HistogramTest, AsciiRendersAllBins) {
  Histogram hist(0.0, 4.0, 4);
  hist.Add(1.0);
  const std::string art = hist.ToAscii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"system", "latency"});
  table.AddRow({"V-LoRA", "1.0"});
  table.AddRow("dLoRA", {3.14159}, 2);
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("V-LoRA"), std::string::npos);
  EXPECT_NE(rendered.find("3.14"), std::string::npos);
  EXPECT_NE(rendered.find("+--"), std::string::npos);
}

TEST(VisionTaskTest, NamesAreStable) {
  EXPECT_STREQ(VisionTaskName(VisionTask::kImageClassification), "image-classification");
  EXPECT_STREQ(VisionTaskName(VisionTask::kVideoClassification), "video-classification");
  EXPECT_STREQ(VisionTaskName(VisionTask::kVisualQuestionAnswering),
               "visual-question-answering");
}

}  // namespace
}  // namespace vlora

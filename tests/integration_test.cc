// Cross-module integration tests: the full offline -> online pipeline of
// Fig 8 on the real engine, and the simulator driven by generator output.

#include <gtest/gtest.h>

#include <map>

#include "src/baselines/policies.h"
#include "src/core/server.h"
#include "src/engine/vision.h"
#include "src/workload/trace_gen.h"

namespace vlora {
namespace {

std::vector<KnowledgeItem> MixedCatalog(const AccuracyOracle& oracle) {
  std::vector<KnowledgeItem> items;
  auto add = [&](VisionTask task, int n, double slack, int options) {
    for (int i = 0; i < n; ++i) {
      KnowledgeItem item;
      item.domain = std::string(VisionTaskName(task)) + "-" + std::to_string(i);
      item.task = task;
      item.required_accuracy = oracle.LoraAccuracy(task, 1) - slack;
      item.closed_set_options = options;
      items.push_back(item);
    }
  };
  add(VisionTask::kImageClassification, 4, 4.0, 20);
  add(VisionTask::kObjectDetection, 4, 6.0, 10);
  add(VisionTask::kVideoClassification, 2, 4.0, 50);
  add(VisionTask::kVisualQuestionAnswering, 3, 5.0, 0);
  return items;
}

TEST(IntegrationTest, OfflineToOnlinePipeline) {
  // Offline: catalogue -> generator -> materialised adapters.
  AccuracyOracle oracle(7, 0.2);
  const std::vector<KnowledgeItem> items = MixedCatalog(oracle);
  const GeneratorResult generated = GenerateAdapters(items, oracle);
  ASSERT_FALSE(generated.adapters.empty());
  for (const GeneratedAdapterSpec& spec : generated.adapters) {
    EXPECT_TRUE(SatisfiesRequirements(items, spec, oracle));
  }

  // Online: register with a server and serve a mixed batch across every
  // adapter, closed-set requests through task heads.
  const ModelConfig config = TinyConfig();
  Rng rng(61);
  ServerOptions options;
  options.max_batch_size = 6;
  VloraServer server(config, options);
  std::map<int, bool> has_head;
  for (auto& adapter : MaterializeAdapters(items, generated, config, 8, rng)) {
    const bool head = adapter->task_head().has_value();
    const int id = server.AddAdapter(std::move(adapter));
    has_head[id] = head;
  }

  VisionEncoder vision(config);
  int64_t next_id = 0;
  const int requests_per_adapter = 2;
  for (int adapter_id = 0; adapter_id < server.num_adapters(); ++adapter_id) {
    for (int i = 0; i < requests_per_adapter; ++i) {
      EngineRequest request;
      request.id = next_id++;
      request.prompt_tokens =
          vision.BuildPrompt(17 * adapter_id + i, {static_cast<int32_t>(3 + i), 5});
      request.adapter_id = adapter_id;
      request.max_new_tokens = 3;
      request.eos_token = -1;
      request.use_task_head = has_head[adapter_id];
      server.Submit(request);
    }
  }
  const std::vector<EngineResult> results = server.RunAll();
  EXPECT_EQ(results.size(),
            static_cast<size_t>(server.num_adapters() * requests_per_adapter));
  for (const EngineResult& result : results) {
    if (result.head_option >= 0) {
      EXPECT_EQ(result.decode_steps, 0);
    } else {
      EXPECT_EQ(result.output_tokens.size(), 3u);
    }
  }
  EXPECT_GT(server.stats().iterations, 0);
}

TEST(IntegrationTest, ServerIsDeterministic) {
  const ModelConfig config = TinyConfig();
  auto run_once = [&]() {
    Rng rng(71);
    ServerOptions options;
    options.max_batch_size = 4;
    VloraServer server(config, options);
    for (int i = 0; i < 2; ++i) {
      server.AddAdapter(std::make_unique<LoraAdapter>(LoraAdapter::Random(
          "a" + std::to_string(i), config.num_layers, config.d_model, 8, rng)));
    }
    VisionEncoder vision(config);
    for (int i = 0; i < 5; ++i) {
      EngineRequest request;
      request.id = i;
      request.prompt_tokens = vision.BuildPrompt(i, {7, 8});
      request.adapter_id = i % 2;
      request.max_new_tokens = 4;
      request.eos_token = -1;
      server.Submit(request);
    }
    std::map<int64_t, std::vector<int32_t>> outputs;
    for (const EngineResult& result : server.RunAll()) {
      outputs[result.request_id] = result.output_tokens;
    }
    return outputs;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(IntegrationTest, SimulatorServesGeneratorSizedFleet) {
  // The number of adapters the simulator serves comes from the generator, as
  // it would in a deployment.
  AccuracyOracle oracle(7, 0.2);
  const std::vector<KnowledgeItem> items = MixedCatalog(oracle);
  const GeneratorResult generated = GenerateAdapters(items, oracle);
  const int num_adapters = static_cast<int>(generated.adapters.size());
  ASSERT_GT(num_adapters, 1);

  TraceOptions trace_options;
  trace_options.app = AppKind::kVisualRetrieval;
  trace_options.duration_s = 15.0;
  trace_options.rate_rps = 4.0;
  trace_options.num_adapters = num_adapters;
  trace_options.skewness = 0.5;
  const std::vector<Request> trace = GenerateTrace(trace_options);
  for (const Request& req : trace) {
    ASSERT_LT(req.adapter_id, num_adapters);
  }

  SimOptions sim_options;
  sim_options.max_batch_size = 32;
  sim_options.gpu_adapter_slots = std::max(2, num_adapters / 2);
  const SimMetrics vlora = RunSimulation(trace, [] { return MakeVloraPolicy(); }, sim_options);
  const SimMetrics dlora = RunSimulation(trace, MakeDloraPolicy, sim_options);
  EXPECT_EQ(vlora.completed, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(dlora.completed, static_cast<int64_t>(trace.size()));
  EXPECT_LT(vlora.avg_token_latency_ms, dlora.avg_token_latency_ms);
}

TEST(IntegrationTest, EngineMatchesSimulatorModeSemantics) {
  // The engine's Queue() view feeds Alg1Schedule exactly like the simulator's
  // RequestView does; a homogeneous queue must be planned as merged in both.
  const ModelConfig config = TinyConfig();
  ServerOptions options;
  options.max_batch_size = 4;
  VloraServer server(config, options);
  Rng rng(81);
  server.AddAdapter(std::make_unique<LoraAdapter>(
      LoraAdapter::Random("only", config.num_layers, config.d_model, 8, rng)));
  VisionEncoder vision(config);
  for (int i = 0; i < 3; ++i) {
    EngineRequest request;
    request.id = i;
    request.prompt_tokens = vision.BuildPrompt(i, {4, 5});
    request.adapter_id = 0;
    request.max_new_tokens = 3;
    request.eos_token = -1;
    server.Submit(request);
  }
  server.RunAll();
  EXPECT_GT(server.stats().merged_iterations, 0);
  EXPECT_EQ(server.stats().unmerged_iterations, 0);
}

}  // namespace
}  // namespace vlora

// The generator driven by REAL training as its accuracy probe — the complete
// Fig 9 pipeline: sequential fusion, actual fine-tuning per candidate, and
// rollback on measured accuracy violations.

#include <gtest/gtest.h>

#include <map>

#include "src/core/generator.h"
#include "src/core/lora_trainer.h"
#include "src/engine/engine.h"

namespace vlora {
namespace {

constexpr int kClassesPerDomain = 4;
constexpr int kExamplesPerClass = 4;

ModelConfig ProbeConfig() {
  ModelConfig config = TinyConfig();
  config.num_layers = 2;
  config.d_model = 32;
  config.num_heads = 4;
  config.d_ff = 64;
  config.vocab_size = 64;
  return config;
}

std::vector<LoraTrainExample> DomainExamples(const ModelConfig& config, int domain,
                                             int label_offset) {
  std::vector<LoraTrainExample> examples;
  for (int cls = 0; cls < kClassesPerDomain; ++cls) {
    Rng rng(9000 + 100 * static_cast<uint64_t>(domain) + static_cast<uint64_t>(cls));
    for (int i = 0; i < kExamplesPerClass; ++i) {
      LoraTrainExample example;
      for (int t = 0; t < 8; ++t) {
        example.prompt_tokens.push_back(
            static_cast<int32_t>(rng.NextInt(2, config.vocab_size - 1)));
      }
      example.prompt_tokens.push_back(static_cast<int32_t>(2 + (13 * i) % 40));
      example.label = label_offset + cls;
      examples.push_back(std::move(example));
    }
  }
  return examples;
}

// Trains a fresh rank-limited adapter on the given domains; returns accuracy
// per domain (in subset order).
std::vector<double> TrainAndMeasure(InferenceEngine& engine, const std::vector<int>& domains,
                                    int64_t rank) {
  const ModelConfig& config = engine.config();
  Rng rng(41 + static_cast<uint64_t>(domains.size()));
  LoraAdapter adapter = LoraAdapter::Random("probe", config.num_layers, config.d_model, rank,
                                            rng, 0.05f, {LoraTarget::kWo});
  LoraTrainer trainer(&engine.model(), &adapter);
  const int classes = static_cast<int>(domains.size()) * kClassesPerDomain;
  VisionTaskHead head;
  head.task = VisionTask::kImageClassification;
  head.weight = Tensor::Random(Shape(config.d_model, classes), rng, 0.05f);

  std::vector<LoraTrainExample> all;
  for (size_t d = 0; d < domains.size(); ++d) {
    for (LoraTrainExample& example :
         DomainExamples(config, domains[d], static_cast<int>(d) * kClassesPerDomain)) {
      all.push_back(std::move(example));
    }
  }
  LoraTrainerOptions options;
  options.num_classes = classes;
  options.epochs = 30;
  options.factor_lr = 0.03f;
  options.head_lr = 0.25f;
  trainer.Train(all, head, options);

  std::vector<double> accuracies;
  for (size_t d = 0; d < domains.size(); ++d) {
    const auto examples =
        DomainExamples(config, domains[d], static_cast<int>(d) * kClassesPerDomain);
    int correct = 0;
    for (const LoraTrainExample& example : examples) {
      const std::vector<float> hidden = trainer.FinalHidden(example.prompt_tokens);
      int best = 0;
      double best_score = -1e300;
      for (int64_t c = 0; c < classes; ++c) {
        double z = 0.0;
        for (int64_t i = 0; i < config.d_model; ++i) {
          z += static_cast<double>(hidden[static_cast<size_t>(i)]) * head.weight.at(i, c);
        }
        if (z > best_score) {
          best_score = z;
          best = static_cast<int>(c);
        }
      }
      correct += best == example.label ? 1 : 0;
    }
    accuracies.push_back(static_cast<double>(correct) / static_cast<double>(examples.size()));
  }
  return accuracies;
}

TEST(RealGenerationTest, TightCapacityForcesMoreAdapters) {
  const ModelConfig config = ProbeConfig();
  InferenceEngine engine(config, EngineOptions{.seed = 314});

  // Five domains, each demanding >= 65 % trained accuracy — achievable for
  // two fused domains at rank 16 but not at rank 2 (measured behaviour of
  // the trainer on this synthetic family).
  std::vector<KnowledgeItem> items;
  for (int d = 0; d < 5; ++d) {
    KnowledgeItem item;
    item.domain = "domain-" + std::to_string(d);
    item.task = VisionTask::kImageClassification;
    item.required_accuracy = 65.0;
    items.push_back(item);
  }

  int probe_calls = 0;
  auto make_probe = [&](int64_t rank) {
    return [&engine, &items, rank, &probe_calls](const std::vector<int>& subset) {
      ++probe_calls;
      (void)items;
      std::vector<double> accuracies = TrainAndMeasure(engine, subset, rank);
      for (double& acc : accuracies) {
        acc *= 100.0;
      }
      return accuracies;
    };
  };

  GeneratorOptions options;
  options.shuffle = false;
  const GeneratorResult tight =
      GenerateAdaptersWithProbe(items, make_probe(/*rank=*/2), options);
  const int tight_probe_calls = probe_calls;
  probe_calls = 0;
  const GeneratorResult roomy =
      GenerateAdaptersWithProbe(items, make_probe(/*rank=*/16), options);

  // Every item packed exactly once in both runs.
  for (const GeneratorResult* result : {&tight, &roomy}) {
    std::vector<int> seen(items.size(), 0);
    for (const GeneratedAdapterSpec& adapter : result->adapters) {
      for (int index : adapter.item_indices) {
        ++seen[static_cast<size_t>(index)];
      }
    }
    for (int count : seen) {
      EXPECT_EQ(count, 1);
    }
  }

  // Capacity is the binding constraint: the rank-2 budget forces more,
  // smaller adapters than the rank-16 budget (Fig 5 -> Fig 9 causality).
  EXPECT_GT(tight.adapters.size(), roomy.adapters.size());
  EXPECT_GT(tight.rollbacks, 0);
  // Probe was called once per tentative fusion plus once per rollback reseed.
  EXPECT_EQ(tight_probe_calls,
            static_cast<int>(items.size()) + tight.rollbacks);
}

TEST(RealGenerationTest, ProbeAccuraciesRecordedInSpecs) {
  const ModelConfig config = ProbeConfig();
  InferenceEngine engine(config, EngineOptions{.seed = 271});
  std::vector<KnowledgeItem> items;
  for (int d = 0; d < 2; ++d) {
    KnowledgeItem item;
    item.domain = "d" + std::to_string(d);
    item.task = VisionTask::kImageClassification;
    item.required_accuracy = 10.0;  // loose: everything fuses
    item.closed_set_options = kClassesPerDomain;
    items.push_back(item);
  }
  auto probe = [&](const std::vector<int>& subset) {
    std::vector<double> accuracies = TrainAndMeasure(engine, subset, 8);
    for (double& acc : accuracies) {
      acc *= 100.0;
    }
    return accuracies;
  };
  const GeneratorResult result =
      GenerateAdaptersWithProbe(items, probe, GeneratorOptions{.shuffle = false});
  ASSERT_EQ(result.adapters.size(), 1u);
  EXPECT_EQ(result.adapters[0].item_indices.size(), 2u);
  ASSERT_EQ(result.adapters[0].item_accuracies.size(), 2u);
  for (double acc : result.adapters[0].item_accuracies) {
    EXPECT_GE(acc, 10.0);
    EXPECT_LE(acc, 100.0);
  }
  // Homogeneous closed-set items -> task head with summed options.
  EXPECT_TRUE(result.adapters[0].has_task_head);
  EXPECT_EQ(result.adapters[0].head_options, 2 * kClassesPerDomain);
}

}  // namespace
}  // namespace vlora

// Edge-case coverage for the engine: EOS semantics, block-boundary decode,
// long generations spanning many KV blocks, sampling x task-head interplay,
// tokenizer round trips through the engine, and queue bookkeeping.

#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/engine/tokenizer.h"

namespace vlora {
namespace {

std::vector<int32_t> Prompt(int64_t len, uint64_t seed, int64_t vocab) {
  Rng rng(seed);
  std::vector<int32_t> tokens;
  for (int64_t i = 0; i < len; ++i) {
    tokens.push_back(static_cast<int32_t>(rng.NextInt(2, vocab - 1)));
  }
  return tokens;
}

TEST(EngineEdgeTest, EosStopsGenerationEarly) {
  const ModelConfig config = TinyConfig();
  InferenceEngine engine(config, EngineOptions{});
  // Find which token the model greedily emits first, then rerun with that
  // token as EOS: generation must stop after exactly one token.
  EngineRequest probe;
  probe.id = 1;
  probe.prompt_tokens = Prompt(12, 5, config.vocab_size);
  probe.max_new_tokens = 1;
  probe.eos_token = -1;
  const int32_t first = engine.RunToCompletion(probe).output_tokens[0];

  InferenceEngine engine2(config, EngineOptions{});
  EngineRequest request = probe;
  request.id = 2;
  request.max_new_tokens = 10;
  request.eos_token = first;
  const EngineResult result = engine2.RunToCompletion(request);
  ASSERT_EQ(result.output_tokens.size(), 1u);
  EXPECT_EQ(result.output_tokens[0], first);
  EXPECT_EQ(result.decode_steps, 1);
}

TEST(EngineEdgeTest, PromptExactlyOneBlock) {
  const ModelConfig config = TinyConfig();
  EngineOptions options;
  options.kv_block_size = 16;
  InferenceEngine engine(config, options);
  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = Prompt(16, 7, config.vocab_size);  // exactly one block
  request.max_new_tokens = 3;
  request.eos_token = -1;
  const EngineResult result = engine.RunToCompletion(request);
  EXPECT_EQ(result.output_tokens.size(), 3u);
}

TEST(EngineEdgeTest, SingleTokenPrompt) {
  const ModelConfig config = TinyConfig();
  InferenceEngine engine(config, EngineOptions{});
  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = {5};
  request.max_new_tokens = 2;
  request.eos_token = -1;
  const EngineResult result = engine.RunToCompletion(request);
  EXPECT_EQ(result.output_tokens.size(), 2u);
  EXPECT_EQ(result.prefill_tokens, 1);
}

TEST(EngineEdgeTest, LongGenerationSpansManyBlocks) {
  const ModelConfig config = TinyConfig();
  EngineOptions options;
  options.kv_block_size = 8;
  options.kv_num_blocks = 64;
  InferenceEngine engine(config, options);
  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = Prompt(10, 9, config.vocab_size);
  request.max_new_tokens = 50;  // decode crosses ~7 block boundaries
  request.eos_token = -1;
  const EngineResult result = engine.RunToCompletion(request);
  EXPECT_EQ(result.output_tokens.size(), 50u);
  EXPECT_EQ(result.decode_steps, 50);
}

TEST(EngineEdgeTest, TaskHeadIgnoresSamplingParams) {
  const ModelConfig config = TinyConfig();
  InferenceEngine engine(config, EngineOptions{});
  Rng rng(11);
  LoraAdapter adapter = LoraAdapter::Random("h", config.num_layers, config.d_model, 8, rng);
  VisionTaskHead head;
  head.task = VisionTask::kObjectDetection;
  head.weight = Tensor::Random(Shape(config.d_model, 6), rng, 0.3f);
  adapter.SetTaskHead(std::move(head));
  const int id = engine.RegisterAdapter(&adapter);
  engine.SetMode(InferMode::kUnmerged);

  auto run = [&](uint64_t seed) {
    EngineRequest request;
    request.id = static_cast<int64_t>(seed);
    request.prompt_tokens = Prompt(14, 13, config.vocab_size);
    request.adapter_id = id;
    request.use_task_head = true;
    request.sampling.temperature = 2.0f;  // must not affect the head argmax
    request.sampling.seed = seed;
    return engine.RunToCompletion(request).head_option;
  };
  EXPECT_EQ(run(1), run(2));
}

TEST(EngineEdgeTest, TokenizedRoundTripThroughEngine) {
  const ModelConfig config = SmallConfig();
  Tokenizer tokenizer;
  InferenceEngine engine(config, EngineOptions{});
  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = tokenizer.Encode("how many cars are in the image");
  request.max_new_tokens = 6;
  request.eos_token = Tokenizer::kEosToken;
  const EngineResult result = engine.RunToCompletion(request);
  EXPECT_FALSE(result.output_tokens.empty());
  // Every generated id decodes (model vocab exceeds tokenizer vocab, so clamp
  // like the example does).
  std::vector<int32_t> display;
  for (int32_t token : result.output_tokens) {
    display.push_back(token % static_cast<int32_t>(tokenizer.vocab_size()));
  }
  (void)tokenizer.Decode(display);  // must not crash
}

TEST(EngineEdgeTest, InterleavedSubmitAndStep) {
  const ModelConfig config = TinyConfig();
  InferenceEngine engine(config, EngineOptions{});
  engine.SetMode(InferMode::kUnmerged);
  int finished = 0;
  for (int i = 0; i < 6; ++i) {
    EngineRequest request;
    request.id = i;
    request.prompt_tokens = Prompt(8 + i, 20 + static_cast<uint64_t>(i), config.vocab_size);
    request.max_new_tokens = 2 + i % 3;
    request.eos_token = -1;
    engine.Submit(request);
    finished += static_cast<int>(engine.Step().size());
  }
  while (engine.HasWork()) {
    finished += static_cast<int>(engine.Step().size());
  }
  EXPECT_EQ(finished, 6);
  EXPECT_TRUE(engine.Queue().empty());
}

TEST(EngineEdgeTest, ManyAdaptersInOneUnmergedBatch) {
  const ModelConfig config = TinyConfig();
  InferenceEngine engine(config, EngineOptions{});
  Rng rng(17);
  std::vector<LoraAdapter> adapters;
  adapters.reserve(6);
  for (int i = 0; i < 6; ++i) {
    adapters.push_back(
        LoraAdapter::Random("m" + std::to_string(i), config.num_layers, config.d_model, 4, rng));
  }
  for (LoraAdapter& adapter : adapters) {
    engine.RegisterAdapter(&adapter);
  }
  engine.SetMode(InferMode::kUnmerged);
  for (int i = 0; i < 6; ++i) {
    EngineRequest request;
    request.id = i;
    request.prompt_tokens = Prompt(10, 40 + static_cast<uint64_t>(i), config.vocab_size);
    request.adapter_id = i;
    request.max_new_tokens = 2;
    request.eos_token = -1;
    engine.Submit(request);
  }
  int finished = 0;
  while (engine.HasWork()) {
    finished += static_cast<int>(engine.Step().size());
  }
  EXPECT_EQ(finished, 6);
}

}  // namespace
}  // namespace vlora

// Unit tests for the atomics-discipline pass (tools/atomics.h): every
// violation class fires on its synthetic bad twin and stays silent on the
// good twin, registry drift is caught in both directions, and the per-line
// allow() suppression works on every rule. Snippet text stays clear of the
// per-line rules so the whole-tree scan does not trip on this file.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/atomics.h"

namespace vlora {
namespace lint {
namespace {

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) {
    n += f.rule == rule ? 1 : 0;
  }
  return n;
}

std::string MessagesFor(const std::vector<Finding>& findings, const std::string& rule) {
  std::string out;
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      out += FormatFinding(f) + "\n";
    }
  }
  return out;
}

std::string AllMessages(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += FormatFinding(f) + "\n";
  }
  return out;
}

AtomicsConfig Registry(const std::string& toml) {
  AtomicsConfig config;
  std::string error;
  EXPECT_TRUE(ParseAtomicsRegistry(toml, &config, &error)) << error;
  return config;
}

// --- Registry parsing -----------------------------------------------------

TEST(AtomicsRegistryTest, ParsesProtocolsSidesAndOptions) {
  const std::string toml = std::string("[atomics]\n") +
                           "\"Worker::stop_\" = \"flag\"\n" +
                           "\"g_mode\" = \"published-value publish=Refresh "
                           "consume=CurrentMode,ReadMode\"\n" +
                           "\"Stats::hits_\" = \"counter stray-token\"\n" +
                           "[options]\n" +
                           "hot_paths = \"hot_paths.toml\"\n";
  const AtomicsConfig config = Registry(toml);
  ASSERT_EQ(config.atomics.size(), 3u);
  EXPECT_EQ(config.atomics.at("Worker::stop_").protocol, "flag");
  const AtomicProtocolSpec& published = config.atomics.at("g_mode");
  EXPECT_EQ(published.protocol, "published-value");
  EXPECT_EQ(published.publishers, std::vector<std::string>{"Refresh"});
  EXPECT_EQ(published.consumers, (std::vector<std::string>{"CurrentMode", "ReadMode"}));
  EXPECT_EQ(config.atomics.at("Stats::hits_").bad_tokens,
            std::vector<std::string>{"stray-token"});
  EXPECT_EQ(config.hot_paths, "hot_paths.toml");
}

TEST(AtomicsRegistryTest, RejectsMalformedTomlAndUnknownOptions) {
  AtomicsConfig config;
  std::string error;
  EXPECT_FALSE(ParseAtomicsRegistry("[atomics]\nnot a toml line\n", &config, &error));
  EXPECT_FALSE(ParseAtomicsRegistry("[options]\nbogus = \"x\"\n", &config, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

// --- A good tree covering all five protocols ------------------------------

// Header: one class per protocol family, members declared and partly
// accessed through in-class inline methods.
std::string GoodHeader() {
  return std::string("#ifndef AT_H_\n#define AT_H_\n") +
         "class Stats {\n public:\n" +
         "  void Hit() { hits_.fetch_add(1, std::memory_order_relaxed); }\n" +
         "  long hits() const { return hits_.load(std::memory_order_relaxed); }\n" +
         " private:\n" +
         "  std::atomic<long> hits_{0};\n" +
         "};\n" +
         "class Worker {\n public:\n" +
         "  void Stop();\n  bool Running() const;\n" +
         " private:\n" +
         "  std::atomic<bool> stop_{false};\n" +
         "};\n" +
         "class Ring {\n public:\n" +
         "  void Push(long v);\n  long Snapshot() const;\n" +
         " private:\n" +
         "  std::atomic<long> head{0};\n" +
         "  long slots[8];\n" +
         "};\n#endif\n";
}

// Implementation: flag pairing, published-value sides, the seqlock idiom,
// and an init-once global.
std::string GoodImpl() {
  return std::string("#include \"at.h\"\n") +
         "std::atomic<int> g_mode{0};\n" +
         "std::atomic<bool> g_ready{false};\n" +
         "void Worker::Stop() { stop_.store(true, std::memory_order_release); }\n" +
         "bool Worker::Running() const {\n" +
         "  return !stop_.load(std::memory_order_acquire);\n" +
         "}\n" +
         "void RefreshMode(int mode) {\n" +
         "  g_mode.store(mode, std::memory_order_release);\n" +
         "}\n" +
         "int CurrentMode() { return g_mode.load(std::memory_order_acquire); }\n" +
         "void Ring::Push(long v) {\n" +
         "  const long at = head.load(std::memory_order_relaxed);\n" +
         "  slots[at & 7] = v;\n" +
         "  head.store(at + 1, std::memory_order_release);\n" +
         "}\n" +
         "long Ring::Snapshot() const { return head.load(std::memory_order_acquire); }\n" +
         "void InitRuntime() { g_ready.store(true, std::memory_order_release); }\n" +
         "bool IsReady() { return g_ready.load(std::memory_order_acquire); }\n";
}

std::string GoodRegistry() {
  return std::string("[atomics]\n") +
         "\"Stats::hits_\" = \"counter\"\n" +
         "\"Worker::stop_\" = \"flag\"\n" +
         "\"g_mode\" = \"published-value publish=RefreshMode consume=CurrentMode\"\n" +
         "\"Ring::head\" = \"epoch-seqlock\"\n" +
         "\"g_ready\" = \"init-once\"\n";
}

std::vector<SourceFile> GoodTree() {
  return {{"src/x/at.h", GoodHeader()}, {"src/x/at.cc", GoodImpl()}};
}

TEST(AtomicsTest, GoodTreeCoveringAllProtocolsIsQuiet) {
  const std::vector<Finding> findings =
      CheckAtomics(Registry(GoodRegistry()), HotPathConfig(), GoodTree());
  EXPECT_TRUE(findings.empty()) << AllMessages(findings);
}

// --- Registry drift -------------------------------------------------------

TEST(AtomicsTest, UnregisteredAtomicFiresAndSuppressionSilences) {
  std::vector<SourceFile> tree = GoodTree();
  tree.push_back({"src/x/extra.cc",
                  std::string("std::atomic<int> g_orphan{0};\n") +
                      "std::atomic<int> g_known{0};  "
                      "// vlora-lint: allow(atomic-unregistered) migration\n"});
  const std::vector<Finding> findings =
      CheckAtomics(Registry(GoodRegistry()), HotPathConfig(), tree);
  EXPECT_EQ(CountRule(findings, "atomic-unregistered"), 1)
      << MessagesFor(findings, "atomic-unregistered");
  EXPECT_NE(MessagesFor(findings, "atomic-unregistered").find("g_orphan"),
            std::string::npos);
}

TEST(AtomicsTest, StaleRegistryEntryFires) {
  const std::string registry = GoodRegistry() + "\"Gone::away_\" = \"counter\"\n";
  const std::vector<Finding> findings =
      CheckAtomics(Registry(registry), HotPathConfig(), GoodTree());
  EXPECT_EQ(CountRule(findings, "atomic-stale-entry"), 1)
      << MessagesFor(findings, "atomic-stale-entry");
  EXPECT_NE(MessagesFor(findings, "atomic-stale-entry").find("Gone::away_"),
            std::string::npos);
}

TEST(AtomicsTest, BadProtocolEntriesFire) {
  const std::string registry =
      GoodRegistry() +
      "\"Bad::unknown_\" = \"fancy-lock\"\n" +
      "\"Bad::oneside_\" = \"published-value publish=RefreshMode\"\n" +
      "\"Bad::sides_\" = \"flag publish=RefreshMode\"\n" +
      "\"Bad::ghostfn_\" = \"published-value publish=NoSuchFn consume=CurrentMode\"\n";
  const std::vector<Finding> findings =
      CheckAtomics(Registry(registry), HotPathConfig(), GoodTree());
  const std::string messages = MessagesFor(findings, "atomic-bad-protocol");
  EXPECT_EQ(CountRule(findings, "atomic-bad-protocol"), 4) << messages;
  EXPECT_NE(messages.find("fancy-lock"), std::string::npos);
  EXPECT_NE(messages.find("Bad::oneside_"), std::string::npos);
  EXPECT_NE(messages.find("Bad::sides_"), std::string::npos);
  EXPECT_NE(messages.find("NoSuchFn"), std::string::npos);
}

// --- Protocol/order mismatches --------------------------------------------

TEST(AtomicsTest, CounterOpsMustBeExplicitlyRelaxed) {
  const std::string cc = std::string("#include \"at.h\"\n") +
                         "void Tick(Stats* s) {\n" +
                         "  s->hits_.fetch_add(1);\n" +
                         "  (void)s->hits_.load(std::memory_order_acquire);\n" +
                         "}\n";
  std::vector<SourceFile> tree = GoodTree();
  tree.push_back({"src/x/tick.cc", cc});
  const std::vector<Finding> findings =
      CheckAtomics(Registry(GoodRegistry()), HotPathConfig(), tree);
  EXPECT_EQ(CountRule(findings, "atomic-protocol-mismatch"), 2)
      << MessagesFor(findings, "atomic-protocol-mismatch");
}

TEST(AtomicsTest, DefaultOrderOnSynchronizingAtomicFires) {
  const std::string cc = std::string("#include \"at.h\"\n") +
                         "void Worker::Stop() { stop_.store(true); }\n" +
                         "bool Worker::Running() const {\n" +
                         "  return !stop_.load(std::memory_order_acquire);\n" +
                         "}\n";
  const std::vector<Finding> findings =
      CheckAtomics(Registry(std::string("[atomics]\n\"Worker::stop_\" = \"flag\"\n")),
                   HotPathConfig(), {{"src/x/at.h", GoodHeader()}, {"src/x/w.cc", cc}});
  EXPECT_TRUE(HasRule(findings, "atomic-protocol-mismatch")) << AllMessages(findings);
}

TEST(AtomicsTest, RelaxedStoreOrLoadOnFlagFires) {
  const std::string cc = std::string("#include \"at.h\"\n") +
                         "void Worker::Stop() { stop_.store(true, std::memory_order_relaxed); }\n" +
                         "bool Worker::Running() const {\n" +
                         "  return !stop_.load(std::memory_order_relaxed);\n" +
                         "}\n";
  const std::vector<Finding> findings =
      CheckAtomics(Registry(std::string("[atomics]\n\"Worker::stop_\" = \"flag\"\n")),
                   HotPathConfig(), {{"src/x/at.h", GoodHeader()}, {"src/x/w.cc", cc}});
  EXPECT_EQ(CountRule(findings, "atomic-protocol-mismatch"), 2)
      << MessagesFor(findings, "atomic-protocol-mismatch");
}

TEST(AtomicsTest, RelaxedRmwOnSynchronizingAtomicFires) {
  const std::string cc =
      std::string("std::atomic<int> g_gate{0};\n") +
      "void Open() { g_gate.fetch_add(1, std::memory_order_relaxed); }\n" +
      "void Publish() { g_gate.store(1, std::memory_order_release); }\n" +
      "int See() { return g_gate.load(std::memory_order_acquire); }\n";
  const std::vector<Finding> findings =
      CheckAtomics(Registry(std::string("[atomics]\n\"g_gate\" = \"flag\"\n")),
                   HotPathConfig(), {{"src/x/g.cc", cc}});
  EXPECT_EQ(CountRule(findings, "atomic-relaxed-sync"), 1)
      << MessagesFor(findings, "atomic-relaxed-sync");
}

TEST(AtomicsTest, SeqCstOnEpochSeqlockFires) {
  const std::string cc = std::string("#include \"at.h\"\n") +
                         "void Ring::Push(long v) {\n" +
                         "  const long at = head.load(std::memory_order_seq_cst);\n" +
                         "  slots[at & 7] = v;\n" +
                         "  head.store(at + 1, std::memory_order_release);\n" +
                         "}\n" +
                         "long Ring::Snapshot() const {\n" +
                         "  return head.load(std::memory_order_acquire);\n" +
                         "}\n";
  const std::vector<Finding> findings =
      CheckAtomics(Registry(std::string("[atomics]\n\"Ring::head\" = \"epoch-seqlock\"\n")),
                   HotPathConfig(), {{"src/x/at.h", GoodHeader()}, {"src/x/r.cc", cc}});
  EXPECT_EQ(CountRule(findings, "atomic-protocol-mismatch"), 1)
      << MessagesFor(findings, "atomic-protocol-mismatch");
}

TEST(AtomicsTest, PublishedValueOutsideDeclaredSidesFires) {
  const std::string cc =
      std::string("std::atomic<int> g_mode{0};\n") +
      "void RefreshMode(int m) { g_mode.store(m, std::memory_order_release); }\n" +
      "int CurrentMode() { return g_mode.load(std::memory_order_acquire); }\n" +
      "void Rogue() { g_mode.store(7, std::memory_order_release); }\n" +
      "int Peek() { return g_mode.load(std::memory_order_acquire); }\n";
  const std::vector<Finding> findings = CheckAtomics(
      Registry(std::string("[atomics]\n\"g_mode\" = \"published-value "
                           "publish=RefreshMode consume=CurrentMode\"\n")),
      HotPathConfig(), {{"src/x/m.cc", cc}});
  const std::string messages = MessagesFor(findings, "atomic-protocol-mismatch");
  EXPECT_EQ(CountRule(findings, "atomic-protocol-mismatch"), 2) << messages;
  EXPECT_NE(messages.find("Rogue"), std::string::npos);
  EXPECT_NE(messages.find("Peek"), std::string::npos);
}

// --- Pairing over the whole tree ------------------------------------------

TEST(AtomicsTest, UnpairedReleaseStoreFires) {
  const std::string cc =
      std::string("std::atomic<bool> g_done{false};\n") +
      "void Finish() { g_done.store(true, std::memory_order_release); }\n";
  const std::vector<Finding> findings =
      CheckAtomics(Registry(std::string("[atomics]\n\"g_done\" = \"flag\"\n")),
                   HotPathConfig(), {{"src/x/d.cc", cc}});
  EXPECT_EQ(CountRule(findings, "atomic-unpaired-release"), 1)
      << MessagesFor(findings, "atomic-unpaired-release");
}

TEST(AtomicsTest, UnpairedAcquireLoadFires) {
  const std::string cc =
      std::string("std::atomic<bool> g_done{false};\n") +
      "bool Done() { return g_done.load(std::memory_order_acquire); }\n";
  const std::vector<Finding> findings =
      CheckAtomics(Registry(std::string("[atomics]\n\"g_done\" = \"flag\"\n")),
                   HotPathConfig(), {{"src/x/d.cc", cc}});
  EXPECT_EQ(CountRule(findings, "atomic-unpaired-acquire"), 1)
      << MessagesFor(findings, "atomic-unpaired-acquire");
}

// --- seq_cst on the hot path ----------------------------------------------

std::string HotImpl(const std::string& store_order, const std::string& suffix = "") {
  return std::string("std::atomic<bool> g_flag{false};\n") +
         "void HotRoot() {\n" +
         "  Step();\n" +
         "}\n" +
         "void Step() {\n" +
         "  g_flag.store(true, std::memory_order_" + store_order + ");" + suffix + "\n" +
         "}\n" +
         "bool ColdConsume() { return g_flag.load(std::memory_order_acquire); }\n";
}

HotPathConfig HotRootConfig() {
  HotPathConfig config;
  config.roots["HotRoot"] = "test root";
  return config;
}

TEST(AtomicsTest, SeqCstReachableFromHotRootFiresWithCallChain) {
  const std::vector<Finding> findings =
      CheckAtomics(Registry(std::string("[atomics]\n\"g_flag\" = \"flag\"\n")),
                   HotRootConfig(), {{"src/x/hp.cc", HotImpl("seq_cst")}});
  const std::string messages = MessagesFor(findings, "atomic-seqcst-hot");
  EXPECT_EQ(CountRule(findings, "atomic-seqcst-hot"), 1) << AllMessages(findings);
  EXPECT_NE(messages.find("HotRoot -> Step"), std::string::npos) << messages;
  EXPECT_FALSE(HasRule(findings, "atomic-protocol-mismatch")) << AllMessages(findings);
}

TEST(AtomicsTest, ReleaseOnHotPathAndSuppressedSeqCstAreQuiet) {
  const std::vector<Finding> release_findings =
      CheckAtomics(Registry(std::string("[atomics]\n\"g_flag\" = \"flag\"\n")),
                   HotRootConfig(), {{"src/x/hp.cc", HotImpl("release")}});
  EXPECT_FALSE(HasRule(release_findings, "atomic-seqcst-hot"))
      << AllMessages(release_findings);
  const std::vector<Finding> suppressed = CheckAtomics(
      Registry(std::string("[atomics]\n\"g_flag\" = \"flag\"\n")), HotRootConfig(),
      {{"src/x/hp.cc",
        HotImpl("seq_cst", "  // vlora-lint: allow(atomic-seqcst-hot) fence")}});
  EXPECT_FALSE(HasRule(suppressed, "atomic-seqcst-hot")) << AllMessages(suppressed);
}

TEST(AtomicsTest, SeqCstOffTheHotPathIsQuiet) {
  // Same seq_cst store, but the root does not reach Step.
  const std::string cc =
      std::string("std::atomic<bool> g_flag{false};\n") +
      "void HotRoot() {\n" +
      "  (void)0;\n" +
      "}\n" +
      "void Step() {\n" +
      "  g_flag.store(true, std::memory_order_seq_cst);\n" +
      "}\n" +
      "bool ColdConsume() { return g_flag.load(std::memory_order_acquire); }\n";
  const std::vector<Finding> findings =
      CheckAtomics(Registry(std::string("[atomics]\n\"g_flag\" = \"flag\"\n")),
                   HotRootConfig(), {{"src/x/hp.cc", cc}});
  EXPECT_FALSE(HasRule(findings, "atomic-seqcst-hot")) << AllMessages(findings);
}

// --- Mixed atomic / operator-form access ----------------------------------

TEST(AtomicsTest, OperatorFormAccessFiresAndSuppressionSilences) {
  const std::string cc = std::string("#include \"at.h\"\n") +
                         "void Worker::Stop() { stop_ = true; }\n" +
                         "bool Worker::Running() const {\n" +
                         "  return !stop_.load(std::memory_order_acquire);\n" +
                         "}\n" +
                         "void Worker::Reset() {\n" +
                         "  stop_ = false;  // vlora-lint: allow(atomic-mixed-access) init\n" +
                         "}\n";
  const std::vector<Finding> findings =
      CheckAtomics(Registry(std::string("[atomics]\n\"Worker::stop_\" = \"flag\"\n")),
                   HotPathConfig(), {{"src/x/at.h", GoodHeader()}, {"src/x/w.cc", cc}});
  EXPECT_EQ(CountRule(findings, "atomic-mixed-access"), 1)
      << MessagesFor(findings, "atomic-mixed-access");
}

TEST(AtomicsTest, UnrelatedIdentifierSharingALeafNameIsQuiet) {
  // Another class's plain `stop_` member and a local both share the leaf
  // name; neither resolves to the registered Worker::stop_.
  const std::string cc = std::string("#include \"at.h\"\n") +
                         "void Worker::Stop() { stop_.store(true, std::memory_order_release); }\n" +
                         "bool Worker::Running() const {\n" +
                         "  return !stop_.load(std::memory_order_acquire);\n" +
                         "}\n" +
                         "void Other::Run() {\n" +
                         "  stop_ = true;\n" +
                         "  bool stop_local = stop_;\n" +
                         "  (void)stop_local;\n" +
                         "}\n";
  const std::vector<Finding> findings =
      CheckAtomics(Registry(std::string("[atomics]\n\"Worker::stop_\" = \"flag\"\n")),
                   HotPathConfig(), {{"src/x/at.h", GoodHeader()}, {"src/x/w.cc", cc}});
  EXPECT_FALSE(HasRule(findings, "atomic-mixed-access")) << AllMessages(findings);
}

// --- Function-local atomics -----------------------------------------------

TEST(AtomicsTest, FunctionLocalAtomicsKeyByEnclosingFunction) {
  const std::string cc =
      std::string("int RunLoop() {\n") +
      "  std::atomic<long> completed{0};\n" +
      "  completed.fetch_add(1, std::memory_order_relaxed);\n" +
      "  return static_cast<int>(completed.load(std::memory_order_relaxed));\n" +
      "}\n";
  const std::vector<Finding> registered =
      CheckAtomics(Registry(std::string("[atomics]\n\"RunLoop::completed\" = \"counter\"\n")),
                   HotPathConfig(), {{"src/x/loop.cc", cc}});
  EXPECT_TRUE(registered.empty()) << AllMessages(registered);
  const std::vector<Finding> unregistered =
      CheckAtomics(Registry("[atomics]\n"), HotPathConfig(), {{"src/x/loop.cc", cc}});
  EXPECT_EQ(CountRule(unregistered, "atomic-unregistered"), 1)
      << AllMessages(unregistered);
  EXPECT_NE(MessagesFor(unregistered, "atomic-unregistered").find("RunLoop::completed"),
            std::string::npos);
}

}  // namespace
}  // namespace lint
}  // namespace vlora

// Fluent assertions over captured trace-event streams (tests only).
//
// Wraps the vector returned by TraceSession::Collect() (already sorted by
// timestamp) and answers ordering / counting / span questions about it. The
// verbose failure messages embed the request's event list so a failing
// ordering assertion shows the actual lifecycle without rerunning under a
// debugger.

#ifndef VLORA_TESTS_TRACE_MATCHER_H_
#define VLORA_TESTS_TRACE_MATCHER_H_

#include <gtest/gtest.h>

#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/trace.h"

namespace vlora {
namespace trace {

class TraceMatcher {
 public:
  // Filter over the stream: kind always, replica / request_id when >= 0.
  struct EventQuery {
    TraceEventKind kind;
    int replica = -1;
    int64_t request_id = -1;
  };

  explicit TraceMatcher(std::vector<TraceEvent> events) : events_(std::move(events)) {}

  const std::vector<TraceEvent>& events() const { return events_; }

  std::vector<TraceEvent> ForRequest(int64_t request_id) const {
    std::vector<TraceEvent> out;
    for (const TraceEvent& event : events_) {
      if (event.request_id == request_id) {
        out.push_back(event);
      }
    }
    return out;
  }

  int64_t Count(TraceEventKind kind) const { return CountMatching({kind}); }

  int64_t CountForReplica(TraceEventKind kind, int replica) const {
    return CountMatching({kind, replica});
  }

  int64_t CountForRequest(TraceEventKind kind, int64_t request_id) const {
    return CountMatching({kind, /*replica=*/-1, request_id});
  }

  int64_t CountMatching(const EventQuery& query) const {
    int64_t count = 0;
    for (const TraceEvent& event : events_) {
      if (Matches(event, query)) {
        ++count;
      }
    }
    return count;
  }

  // Matching events strictly after `when_ms`.
  int64_t CountAfter(const EventQuery& query, double when_ms) const {
    int64_t count = 0;
    for (const TraceEvent& event : events_) {
      if (event.when_ms > when_ms && Matches(event, query)) {
        ++count;
      }
    }
    return count;
  }

  // Timestamp of the first/last matching event; -1 when none matches.
  double FirstTime(const EventQuery& query) const {
    for (const TraceEvent& event : events_) {
      if (Matches(event, query)) {
        return event.when_ms;
      }
    }
    return -1.0;
  }

  double LastTime(const EventQuery& query) const {
    double last = -1.0;
    for (const TraceEvent& event : events_) {
      if (Matches(event, query)) {
        last = event.when_ms;
      }
    }
    return last;
  }

  // The request's events contain `kinds` as an ordered subsequence, e.g.
  //   ExpectSequence(id, {kRequestAdmitted, kRouted, kEnqueued, kCompleted})
  ::testing::AssertionResult ExpectSequence(int64_t request_id,
                                            std::initializer_list<TraceEventKind> kinds) const {
    const std::vector<TraceEvent> stream = ForRequest(request_id);
    auto next = stream.begin();
    for (TraceEventKind kind : kinds) {
      while (next != stream.end() && next->kind != kind) {
        ++next;
      }
      if (next == stream.end()) {
        return ::testing::AssertionFailure()
               << "request " << request_id << " missing " << TraceEventKindName(kind)
               << " (in order) from its event stream: " << Describe(stream);
      }
      ++next;
    }
    return ::testing::AssertionSuccess();
  }

  // At least one event matches each query, and every `first` match precedes
  // every `second` match.
  ::testing::AssertionResult ExpectAllBefore(const EventQuery& first,
                                             const EventQuery& second) const {
    const double last_first = LastTime(first);
    const double first_second = FirstTime(second);
    if (last_first < 0.0) {
      return ::testing::AssertionFailure() << "no event matches " << Describe(first);
    }
    if (first_second < 0.0) {
      return ::testing::AssertionFailure() << "no event matches " << Describe(second);
    }
    if (last_first >= first_second) {
      return ::testing::AssertionFailure()
             << "expected every " << Describe(first) << " (last at " << last_first
             << "ms) before every " << Describe(second) << " (first at " << first_second << "ms)";
    }
    return ::testing::AssertionSuccess();
  }

  // Admission-to-terminal duration of the request within [lo_ms, hi_ms].
  ::testing::AssertionResult ExpectSpanWithin(int64_t request_id, double lo_ms,
                                              double hi_ms) const {
    const double admitted = FirstTime({TraceEventKind::kRequestAdmitted, -1, request_id});
    const double completed = LastTime({TraceEventKind::kCompleted, -1, request_id});
    if (admitted < 0.0 || completed < 0.0) {
      return ::testing::AssertionFailure()
             << "request " << request_id << " has no closed admission->completion span: "
             << Describe(ForRequest(request_id));
    }
    const double span = completed - admitted;
    if (span < lo_ms || span > hi_ms) {
      return ::testing::AssertionFailure()
             << "request " << request_id << " span " << span << "ms outside [" << lo_ms << ", "
             << hi_ms << "]ms";
    }
    return ::testing::AssertionSuccess();
  }

  // The request reached exactly one terminal event, with the given status.
  ::testing::AssertionResult ExpectCompleted(int64_t request_id, StatusCode status) const {
    const TraceEvent* terminal = nullptr;
    int64_t terminals = 0;
    for (const TraceEvent& event : events_) {
      if (event.request_id == request_id && event.kind == TraceEventKind::kCompleted) {
        terminal = &event;
        ++terminals;
      }
    }
    if (terminals != 1) {
      return ::testing::AssertionFailure()
             << "request " << request_id << " has " << terminals
             << " terminal events (want exactly 1): " << Describe(ForRequest(request_id));
    }
    if (terminal->status != status) {
      return ::testing::AssertionFailure()
             << "request " << request_id << " completed with " << StatusCodeName(terminal->status)
             << ", want " << StatusCodeName(status);
    }
    return ::testing::AssertionSuccess();
  }

  static std::string Describe(const std::vector<TraceEvent>& stream) {
    std::ostringstream out;
    out << "[";
    for (size_t i = 0; i < stream.size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      out << TraceEventKindName(stream[i].kind);
      if (stream[i].replica >= 0) {
        out << "@r" << stream[i].replica;
      }
    }
    out << "]";
    return out.str();
  }

  static std::string Describe(const EventQuery& query) {
    std::ostringstream out;
    out << TraceEventKindName(query.kind);
    if (query.replica >= 0) {
      out << "@r" << query.replica;
    }
    if (query.request_id >= 0) {
      out << "#" << query.request_id;
    }
    return out.str();
  }

 private:
  static bool Matches(const TraceEvent& event, const EventQuery& query) {
    if (event.kind != query.kind) {
      return false;
    }
    if (query.replica >= 0 && event.replica != query.replica) {
      return false;
    }
    if (query.request_id >= 0 && event.request_id != query.request_id) {
      return false;
    }
    return true;
  }

  std::vector<TraceEvent> events_;
};

}  // namespace trace
}  // namespace vlora

#endif  // VLORA_TESTS_TRACE_MATCHER_H_

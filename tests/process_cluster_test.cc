// End-to-end tests for the multi-process cluster: a master driving forked
// vlora_executor processes over the wire protocol (ISSUE 6 acceptance).
//
// The headline scenario SIGKILLs a live executor mid-run — a real process
// death, not a simulated flag — and requires the unchanged quarantine ->
// retry -> rebalance path to complete 100% of the submitted requests, with
// the ordering asserted from the trace: the victim is quarantined before any
// fail-over retry, and nothing is enqueued to it after the quarantine.
// A parity scenario runs the same seeded workload on the thread and process
// backends and requires identical result multisets (adapter weights cross
// the wire bit-exact; the executor's engine is seeded from the Config frame).
//
// Every test skips cleanly when the executor binary is not available (ctest
// wires VLORA_EXECUTOR to the built target; manual runs can rely on the
// build-tree probe in ProcessReplica::DefaultExecutorPath).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/cluster/cluster_server.h"
#include "src/common/fault.h"
#include "src/common/trace.h"
#include "src/workload/trace_gen.h"
#include "tests/trace_matcher.h"

namespace vlora {
namespace {

using trace::TraceEvent;
using trace::TraceEventKind;
using trace::TraceMatcher;
using trace::TraceSession;

std::vector<LoraAdapter> MakeAdapters(const ModelConfig& config, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<LoraAdapter> adapters;
  for (int i = 0; i < count; ++i) {
    adapters.push_back(LoraAdapter::Random("proc-" + std::to_string(i), config.num_layers,
                                           config.d_model, 4, rng));
  }
  return adapters;
}

std::vector<Request> SmallTrace(int num_adapters, double rate_rps, double duration_s,
                                uint64_t seed) {
  TraceOptions options;
  options.app = AppKind::kVisualRetrieval;
  options.duration_s = duration_s;
  options.rate_rps = rate_rps;
  options.num_adapters = num_adapters;
  options.skewness = 0.6;
  options.seed = seed;
  return GenerateTrace(options);
}

TraceMapOptions SmallMap() {
  TraceMapOptions map;
  map.token_scale = 32;
  map.max_prompt_tokens = 16;
  map.max_new_tokens = 3;
  return map;
}

// Fast heartbeat/health timing so executor death is noticed in milliseconds,
// not the production-scale defaults.
RecoveryOptions FastRecovery() {
  RecoveryOptions recovery;
  recovery.stall_quarantine_ms = 60.0;
  recovery.health_period_ms = 5.0;
  recovery.backoff_base_ms = 1.0;
  recovery.max_attempts = 8;
  return recovery;
}

std::unique_ptr<ClusterServer> MakeProcessCluster(const ModelConfig& config, int replicas,
                                                  const std::vector<Request>& trace,
                                                  FaultInjector* fault,
                                                  ReplicaBackend backend,
                                                  int64_t max_inflight = 4,
                                                  int num_prefill = 0) {
  ClusterOptions options;
  options.num_replicas = replicas;
  options.policy = RoutePolicy::kRoundRobin;  // fixed routing sequence
  options.admission = AdmissionPolicy::kBlock;
  options.replica_queue_capacity = 64;
  options.server.max_batch_size = 4;
  options.backend = backend;
  if (num_prefill > 0) {
    options.disagg.enabled = true;
    options.disagg.num_prefill = num_prefill;
  }
  options.process.max_inflight = max_inflight;
  options.process.heartbeat_period_ms = 5.0;
  options.fault = fault;
  options.recovery = FastRecovery();
  auto cluster = std::make_unique<ClusterServer>(config, options);
  for (const LoraAdapter& adapter : MakeAdapters(config, 6, 11)) {
    cluster->AddAdapter(adapter);
  }
  cluster->PlaceAdapters(AdapterShares(trace, 6));
  return cluster;
}

// Multiset of (request id -> output tokens): completion order varies across
// backends and replica counts, content must not.
std::map<int64_t, std::vector<int32_t>> ResultKey(const std::vector<EngineResult>& results) {
  std::map<int64_t, std::vector<int32_t>> key;
  for (const EngineResult& result : results) {
    key[result.request_id] = result.output_tokens;
  }
  return key;
}

#define SKIP_WITHOUT_EXECUTOR()                                                    \
  do {                                                                             \
    if (!ProcessReplica::ExecutorAvailable()) {                                    \
      GTEST_SKIP() << "vlora_executor not built/locatable; set VLORA_EXECUTOR";    \
    }                                                                              \
  } while (0)

// --- Plain serving over the wire --------------------------------------------

TEST(ProcessClusterTest, ServesAWorkloadAndReportsProcessBackendSnapshots) {
  SKIP_WITHOUT_EXECUTOR();
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 25.0, 1.0, 23);
  ASSERT_GE(trace.size(), 8u);

  auto cluster =
      MakeProcessCluster(config, /*replicas=*/2, trace, nullptr, ReplicaBackend::kProcess);
  for (const Request& request : trace) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(request, config, SmallMap())));
  }
  const std::vector<EngineResult> results = cluster->Drain();
  EXPECT_EQ(results.size(), trace.size());
  EXPECT_TRUE(cluster->TakeFailures().empty());
  cluster->Shutdown();

  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.completed, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(stats.replica_deaths, 0);
  EXPECT_EQ(stats.quarantines, 0);
  ASSERT_EQ(stats.replicas.size(), 2u);
  int64_t submitted = 0;
  for (const ReplicaSnapshot& snapshot : stats.replicas) {
    EXPECT_STREQ(snapshot.backend, "process");
    EXPECT_FALSE(snapshot.dead);  // clean shutdown is not a death
    submitted += snapshot.submitted;
    EXPECT_EQ(snapshot.completed + snapshot.failed + snapshot.cancelled + snapshot.stolen,
              snapshot.submitted);
  }
  EXPECT_EQ(submitted, static_cast<int64_t>(trace.size()));
}

// --- Thread/process parity --------------------------------------------------

TEST(ProcessClusterTest, ThreadAndProcessBackendsProduceIdenticalResults) {
  SKIP_WITHOUT_EXECUTOR();
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 25.0, 1.0, 31);
  ASSERT_GE(trace.size(), 8u);

  std::map<int64_t, std::vector<int32_t>> reference;
  for (ReplicaBackend backend : {ReplicaBackend::kThread, ReplicaBackend::kProcess}) {
    auto cluster = MakeProcessCluster(config, /*replicas=*/2, trace, nullptr, backend);
    for (const Request& request : trace) {
      EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(request, config, SmallMap())));
    }
    const std::vector<EngineResult> results = cluster->Drain();
    EXPECT_EQ(results.size(), trace.size());
    const auto key = ResultKey(results);
    EXPECT_EQ(key.size(), trace.size());
    if (backend == ReplicaBackend::kThread) {
      reference = key;
    } else {
      EXPECT_EQ(key, reference) << "process backend diverged from thread backend";
    }
  }
}

// The KV handle crosses the wire as KvHandleMeta + KvPage frames between the
// prefill executor and the master, then again down to the decode executor.
// The differential proof: a unified thread cluster, a disaggregated thread
// cluster, and a disaggregated process cluster must all produce the same
// per-request token streams on the same seeded workload.
TEST(ProcessClusterTest, DisaggregatedProcessBackendMatchesUnifiedResults) {
  SKIP_WITHOUT_EXECUTOR();
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 25.0, 1.0, 37);
  ASSERT_GE(trace.size(), 8u);

  struct Leg {
    ReplicaBackend backend;
    int num_prefill;  // 0 -> unified
  };
  const Leg legs[] = {{ReplicaBackend::kThread, 0},
                      {ReplicaBackend::kThread, 1},
                      {ReplicaBackend::kProcess, 1}};

  std::map<int64_t, std::vector<int32_t>> reference;
  for (const Leg& leg : legs) {
    auto cluster = MakeProcessCluster(config, /*replicas=*/3, trace, nullptr, leg.backend,
                                      /*max_inflight=*/4, leg.num_prefill);
    for (const Request& request : trace) {
      EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(request, config, SmallMap())));
    }
    const std::vector<EngineResult> results = cluster->Drain();
    EXPECT_EQ(results.size(), trace.size());
    EXPECT_TRUE(cluster->TakeFailures().empty());
    cluster->Shutdown();

    const ClusterStats stats = cluster->Stats();
    if (leg.num_prefill > 0) {
      EXPECT_GT(stats.handoffs, 0) << "disaggregated run never handed off KV";
      EXPECT_EQ(stats.handles_created, stats.handoffs);
      EXPECT_EQ(stats.handles_released, stats.handles_created);
    } else {
      EXPECT_EQ(stats.handoffs, 0);
    }

    const auto key = ResultKey(results);
    EXPECT_EQ(key.size(), trace.size());
    if (reference.empty()) {
      reference = key;
    } else {
      EXPECT_EQ(key, reference)
          << (leg.backend == ReplicaBackend::kProcess ? "process" : "thread")
          << " disaggregated run diverged from the unified reference";
    }
  }
}

// --- SIGKILL mid-run recovery -----------------------------------------------

TEST(ProcessClusterTest, SigkillMidRunRecoversEveryRequestThroughQuarantine) {
  SKIP_WITHOUT_EXECUTOR();
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 2.0, 41);
  ASSERT_GE(trace.size(), 40u);
  constexpr int kVictim = 1;
  constexpr size_t kRequests = 40;

  TraceSession session;
  FaultInjector fault(0x5eedu);
  // SIGKILL replica 1's executor once the master has observed two of its
  // completions — a real mid-run death with requests still on the wire and
  // queued behind the inflight window.
  fault.KillProcessAfter(kVictim, /*completed=*/2);

  auto cluster = MakeProcessCluster(config, /*replicas=*/2, trace, &fault,
                                    ReplicaBackend::kProcess, /*max_inflight=*/2);
  const pid_t victim_pid =
      static_cast<ProcessReplica&>(cluster->replica(kVictim)).executor_pid();
  EXPECT_GT(victim_pid, 0);

  for (size_t i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  const std::vector<EngineResult> results = cluster->Drain();
  EXPECT_TRUE(cluster->TakeFailures().empty());
  EXPECT_EQ(results.size(), kRequests);  // 100% completion despite the kill
  EXPECT_EQ(ResultKey(results).size(), kRequests);
  // The fail-over ran before the orphans completed, but the health tick that
  // *records* the death can trail Drain — wait for it instead of racing it.
  ASSERT_TRUE(cluster->WaitForReplicaDeaths(/*count=*/1, /*timeout_ms=*/10'000.0));

  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.completed, static_cast<int64_t>(kRequests));
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.replica_deaths, 1);
  EXPECT_EQ(stats.quarantines, 1);
  EXPECT_EQ(stats.readmissions, 0);  // a SIGKILLed executor never comes back
  // The inflight window fails over through retries; the master-side queue is
  // stolen and re-routed at quarantine. Both paths must have fired.
  EXPECT_GE(stats.retries, 1);
  EXPECT_GE(stats.rerouted, 1);
  ASSERT_EQ(stats.replicas.size(), 2u);
  EXPECT_TRUE(stats.replicas[kVictim].dead);
  EXPECT_STREQ(stats.replicas[kVictim].backend, "process");

  // The injector recorded exactly one kill, of the right replica.
  const std::vector<FaultEvent> events = fault.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kKillProcess);
  EXPECT_EQ(events[0].replica, kVictim);

  cluster.reset();  // join supervisor + reader threads, reap executors
  session.Stop();
  TraceMatcher matcher(session.Collect());
  EXPECT_EQ(session.dropped_events(), 0);

  // Suspicion before conviction: the victim was quarantined (stalled-replica
  // signature from the frozen heartbeat) before any fail-over Retry fired.
  EXPECT_EQ(matcher.CountForReplica(TraceEventKind::kQuarantine, kVictim), 1);
  EXPECT_TRUE(matcher.ExpectAllBefore({TraceEventKind::kQuarantine, kVictim},
                                      {TraceEventKind::kRetry}));
  // Once quarantined, the dead executor never saw another enqueue.
  const double quarantine_ms = matcher.FirstTime({TraceEventKind::kQuarantine, kVictim});
  ASSERT_GE(quarantine_ms, 0.0);
  EXPECT_EQ(matcher.CountAfter({TraceEventKind::kEnqueued, kVictim}, quarantine_ms), 0);
  EXPECT_EQ(matcher.Count(TraceEventKind::kReadmit), 0);

  // Every retried request completed kOk on the survivor, with the Retry
  // strictly before its terminal event.
  std::set<int64_t> retried_ids;
  for (const TraceEvent& event : matcher.events()) {
    if (event.kind == TraceEventKind::kRetry) {
      retried_ids.insert(event.request_id);
    }
  }
  EXPECT_FALSE(retried_ids.empty());
  for (int64_t id : retried_ids) {
    EXPECT_LT(matcher.FirstTime({TraceEventKind::kRetry, -1, id}),
              matcher.LastTime({TraceEventKind::kCompleted, -1, id}));
    EXPECT_EQ(matcher.CountAfter({TraceEventKind::kEnqueued, kVictim, id},
                                 matcher.FirstTime({TraceEventKind::kRetry, -1, id})),
              0);
  }
  // All submitted requests reached exactly one kOk terminal event.
  for (size_t i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(matcher.ExpectCompleted(trace[i].id, StatusCode::kOk));
  }
}

// A second run of the kill scenario completes everything again — the
// recovery path is not a one-shot fluke, and no state leaks between clusters
// (socket files, zombie executors) breaks a follow-up run in-process.
TEST(ProcessClusterTest, SigkillRecoveryRepeatsCleanly) {
  SKIP_WITHOUT_EXECUTOR();
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 1.0, 43);
  ASSERT_GE(trace.size(), 16u);

  for (int run = 0; run < 2; ++run) {
    FaultInjector fault(0x5eedu);
    fault.KillProcessAfter(/*replica=*/0, /*completed=*/1);
    auto cluster = MakeProcessCluster(config, /*replicas=*/2, trace, &fault,
                                      ReplicaBackend::kProcess, /*max_inflight=*/2);
    for (size_t i = 0; i < 16; ++i) {
      EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
    }
    const std::vector<EngineResult> results = cluster->Drain();
    EXPECT_EQ(results.size(), 16u) << "run " << run;
    EXPECT_TRUE(cluster->TakeFailures().empty()) << "run " << run;
    ASSERT_TRUE(cluster->WaitForReplicaDeaths(/*count=*/1, /*timeout_ms=*/10'000.0))
        << "run " << run;
    const ClusterStats stats = cluster->Stats();
    EXPECT_EQ(stats.replica_deaths, 1) << "run " << run;
  }
}

}  // namespace
}  // namespace vlora

// Unit tests for the shared call-graph framework (tools/callgraph.h): text
// utilities, the code index, call-edge resolution under both the narrow
// (lock-order) and widened (hot-path) ScanOptions postures, lambda handling,
// the graph helpers, and the shared TOML subset. Snippet text is assembled
// from adjacent string literals so the whole-tree per-line scan does not trip
// on this file's own test data.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/callgraph.h"

namespace vlora {
namespace lint {
namespace {

// Records every resolved call edge, keyed by the calling function.
class CallRecorder : public BodyClient {
 public:
  void OnCall(const BodyWalker& walker, const std::string& callee, const std::string& raw,
              int line_no) override {
    (void)raw;
    (void)line_no;
    edges_[walker.fn_qual()].insert(callee);
  }

  const std::map<std::string, std::set<std::string>>& edges() const { return edges_; }
  std::set<std::string> CalleesOf(const std::string& fn) const {
    auto it = edges_.find(fn);
    return it == edges_.end() ? std::set<std::string>{} : it->second;
  }

 private:
  std::map<std::string, std::set<std::string>> edges_;
};

std::map<std::string, std::set<std::string>> ScanEdges(const std::vector<SourceFile>& files,
                                                       const ScanOptions& options) {
  CodeIndex index;
  BuildCodeIndex(files, options, &index, nullptr);
  for (const SourceFile& file : files) {
    if (PathEndsWith(file.path, ".cc")) {
      IndexDefinitions(file, options, &index);
    }
  }
  CallRecorder recorder;
  for (const SourceFile& file : files) {
    if (PathEndsWith(file.path, ".cc")) {
      BodyWalker walker(&index, &options, &recorder);
      walker.ScanFile(file);
    }
  }
  return recorder.edges();
}

std::set<std::string> EdgesOf(const std::map<std::string, std::set<std::string>>& edges,
                              const std::string& fn) {
  auto it = edges.find(fn);
  return it == edges.end() ? std::set<std::string>{} : it->second;
}

TEST(TextUtilTest, BlankStringsKeepsQuotesAndLength) {
  EXPECT_EQ(BlankStrings("Lock(\"a{b\")"), "Lock(\"   \")");
  EXPECT_EQ(BlankStrings("x = 'c';"), "x = ' ';");
}

TEST(TextUtilTest, TrimAndLastClassIdent) {
  EXPECT_EQ(TrimText("  x \t"), "x");
  EXPECT_EQ(LastClassIdent("std::vector<std::unique_ptr<Replica>>"), "Replica");
  EXPECT_EQ(LastClassIdent("int"), "");
}

TEST(TextUtilTest, SuppressionMarkerMatchesExactRule) {
  EXPECT_TRUE(IsSuppressed("x();  // vlora-lint: allow(hot-path-alloc) reason", "hot-path-alloc"));
  EXPECT_FALSE(IsSuppressed("x();  // vlora-lint: allow(hot-path-alloc)", "hot-path-io"));
}

// --- The code index -------------------------------------------------------

std::string TwoClassHeader() {
  return std::string("#ifndef CG_H_\n#define CG_H_\n") +
         "class Inner {\n public:\n  void Touch();\n};\n" +
         "class Outer {\n public:\n  void Run() VLORA_HOT;\n" +
         "  void Helper() VLORA_REQUIRES(mu_) VLORA_HOT;\n" +
         " private:\n  Inner inner_;\n};\n#endif\n";
}

TEST(CodeIndexTest, IndexesMembersMethodsAndAnnotations) {
  ScanOptions options;
  CodeIndex index;
  BuildCodeIndex({{"src/x/cg.h", TwoClassHeader()}}, options, &index, nullptr);
  EXPECT_EQ(index.member_types.at("Outer::inner_"), "Inner");
  // method_classes tracks annotated declarations (plain ones join via
  // IndexDefinitions when their out-of-class definition is scanned).
  EXPECT_TRUE(index.method_classes.at("Run").count("Outer"));
  EXPECT_FALSE(index.method_classes.count("Touch"));
  // Parenthesis-free marker annotations index with empty args; annotated
  // declarations land in known_funcs.
  ASSERT_TRUE(index.annotations.count("Outer::Run"));
  EXPECT_EQ(index.annotations.at("Outer::Run")[0].kind, "HOT");
  EXPECT_EQ(index.annotations.at("Outer::Run")[0].args, "");
  // Stacked annotations all index, in order.
  ASSERT_EQ(index.annotations.at("Outer::Helper").size(), 2u);
  EXPECT_EQ(index.annotations.at("Outer::Helper")[0].kind, "REQUIRES");
  EXPECT_EQ(index.annotations.at("Outer::Helper")[0].args, "mu_");
  EXPECT_EQ(index.annotations.at("Outer::Helper")[1].kind, "HOT");
  EXPECT_TRUE(index.known_funcs.count("Outer::Run"));
}

TEST(CodeIndexTest, FreeFunctionsIndexOnlyWhenRequested) {
  const std::string cc = std::string("#include \"cg.h\"\n") +
                         "void EmitThing(int x) {\n  (void)x;\n}\n";
  ScanOptions narrow;
  CodeIndex index;
  IndexDefinitions({"src/x/cg.cc", cc}, narrow, &index);
  EXPECT_FALSE(index.free_funcs.count("EmitThing"));

  ScanOptions wide;
  wide.index_free_functions = true;
  CodeIndex wide_index;
  IndexDefinitions({"src/x/cg.cc", cc}, wide, &wide_index);
  EXPECT_TRUE(wide_index.free_funcs.count("EmitThing"));
  EXPECT_TRUE(wide_index.known_funcs.count("EmitThing"));
}

// --- Call-edge resolution -------------------------------------------------

TEST(BodyWalkerTest, ResolvesTypedReceiversAndSameClassCalls) {
  const std::string cc = std::string("#include \"cg.h\"\n") +
                         "void Inner::Touch() {}\n" +
                         "void Outer::Helper() {}\n" +
                         "void Outer::Run() {\n" +
                         "  Helper();\n" +          // same-class bare call
                         "  inner_.Touch();\n" +    // typed member receiver
                         "  Inner local;\n" +
                         "  local.Touch();\n" +     // typed local receiver
                         "}\n";
  const auto edges = ScanEdges({{"src/x/cg.h", TwoClassHeader()}, {"src/x/cg.cc", cc}},
                               ScanOptions{});
  const std::set<std::string> expected{"Outer::Helper", "Inner::Touch"};
  EXPECT_EQ(EdgesOf(edges, "Outer::Run"), expected);
}

TEST(BodyWalkerTest, UnresolvedReceiverFallsBackOnlyWhenMethodNameIsUnique) {
  // `obj` is never declared, so its class cannot resolve. Touch is defined by
  // exactly one class, so the narrow posture still resolves the call; Poke is
  // defined by two classes and produces no edge without over-approximation.
  const std::string header = std::string("#ifndef AM_H_\n#define AM_H_\n") +
                             "class A {\n public:\n  void Poke();\n};\n" +
                             "class B {\n public:\n  void Poke();\n};\n" +
                             "class C {\n public:\n  void Touch();\n};\n#endif\n";
  const std::string cc = std::string("#include \"am.h\"\n") +
                         "void A::Poke() {}\n" +
                         "void B::Poke() {}\n" +
                         "void C::Touch() {}\n" +
                         "void Driver(int k) {\n" +
                         "  (void)k;\n" +
                         "  obj.Touch();\n" +
                         "  obj.Poke();\n" +
                         "}\n";
  ScanOptions narrow;
  narrow.index_free_functions = true;  // so Driver itself is walked
  const auto edges = ScanEdges({{"src/x/am.h", header}, {"src/x/am.cc", cc}}, narrow);
  EXPECT_EQ(EdgesOf(edges, "Driver"), std::set<std::string>{"C::Touch"});

  ScanOptions wide = narrow;
  wide.over_approximate_unresolved = true;
  const auto wide_edges = ScanEdges({{"src/x/am.h", header}, {"src/x/am.cc", cc}}, wide);
  const std::set<std::string> fan{"A::Poke", "B::Poke", "C::Touch"};
  EXPECT_EQ(EdgesOf(wide_edges, "Driver"), fan);
}

TEST(BodyWalkerTest, ChainedSingletonCallsResolveByMethodName) {
  const std::string header = std::string("#ifndef SG_H_\n#define SG_H_\n") +
                             "class Registry {\n public:\n" +
                             "  static Registry& Global();\n  int counter(int k);\n};\n#endif\n";
  const std::string cc = std::string("#include \"sg.h\"\n") +
                         "int Registry::counter(int k) { return k; }\n" +
                         "void Driver() {\n" +
                         "  Registry::Global().counter(1);\n" +
                         "}\n";
  ScanOptions narrow;
  narrow.index_free_functions = true;
  const auto edges = ScanEdges({{"src/x/sg.h", header}, {"src/x/sg.cc", cc}}, narrow);
  EXPECT_FALSE(EdgesOf(edges, "Driver").count("Registry::counter"));

  ScanOptions wide = narrow;
  wide.chained_calls = true;
  const auto wide_edges = ScanEdges({{"src/x/sg.h", header}, {"src/x/sg.cc", cc}}, wide);
  EXPECT_TRUE(EdgesOf(wide_edges, "Driver").count("Registry::counter"));
}

TEST(BodyWalkerTest, LambdaBodiesAreIsolatedUnlessInlined) {
  // The lock-order posture treats a lambda as a separate context (it may run
  // on another thread); the hot-path posture inlines it into the enclosing
  // function (it runs on the calling thread).
  const std::string cc = std::string("#include \"cg.h\"\n") +
                         "void Inner::Touch() {}\n" +
                         "void Outer::Helper() {}\n" +
                         "void Outer::Run() {\n" +
                         "  auto cb = [this] {\n" +
                         "    inner_.Touch();\n" +
                         "  };\n" +
                         "  cb();\n" +
                         "  Helper();\n" +
                         "}\n";
  const std::vector<SourceFile> tree{{"src/x/cg.h", TwoClassHeader()}, {"src/x/cg.cc", cc}};
  const auto narrow_edges = ScanEdges(tree, ScanOptions{});
  EXPECT_EQ(EdgesOf(narrow_edges, "Outer::Run"), std::set<std::string>{"Outer::Helper"});

  ScanOptions wide;
  wide.inline_lambdas = true;
  const auto wide_edges = ScanEdges(tree, wide);
  const std::set<std::string> both{"Outer::Helper", "Inner::Touch"};
  EXPECT_EQ(EdgesOf(wide_edges, "Outer::Run"), both);
}

// --- Graph helpers --------------------------------------------------------

TEST(GraphTest, PropagateTransitiveReachesFixpoint) {
  const std::map<std::string, std::set<std::string>> callees{
      {"A", {"B"}}, {"B", {"C"}}, {"C", {}}};
  std::map<std::string, std::set<std::string>> attrs{{"C", {"x"}}};
  PropagateTransitive(callees, &attrs);
  EXPECT_TRUE(attrs["A"].count("x"));
  EXPECT_TRUE(attrs["B"].count("x"));
}

TEST(GraphTest, ReachabilityStopsAtBoundariesAndReportsChains) {
  const std::map<std::string, std::set<std::string>> callees{
      {"Root", {"Mid", "Cold"}}, {"Mid", {"Leaf"}}, {"Cold", {"Deep"}}};
  const Reachability reach = ComputeReachable({"Root"}, callees, {"Cold"});
  EXPECT_TRUE(reach.Contains("Leaf"));
  EXPECT_FALSE(reach.Contains("Cold"));
  EXPECT_FALSE(reach.Contains("Deep"));
  const std::vector<std::string> chain{"Root", "Mid", "Leaf"};
  EXPECT_EQ(reach.ChainTo("Leaf"), chain);
}

// --- The shared TOML subset ----------------------------------------------

TEST(TomlTest, ParsesSectionsWithLineNumbers) {
  const std::string toml = "# comment\n[roots]\n\"A::B\" = \"desc\"\n\n[boundaries]\nC = why\n";
  std::vector<TomlEntry> entries;
  std::string error;
  ASSERT_TRUE(ParseTomlTables(toml, {"roots", "boundaries"}, &entries, &error)) << error;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].section, "roots");
  EXPECT_EQ(entries[0].key, "A::B");
  EXPECT_EQ(entries[0].value, "desc");
  EXPECT_EQ(entries[0].line, 3);
  EXPECT_EQ(entries[1].section, "boundaries");
  EXPECT_EQ(entries[1].line, 6);
}

TEST(TomlTest, RejectsUnknownSectionsAndStrayLines) {
  std::vector<TomlEntry> entries;
  std::string error;
  EXPECT_FALSE(ParseTomlTables("[oops]\nk = v\n", {"roots"}, &entries, &error));
  EXPECT_NE(error.find("unknown section"), std::string::npos);
  EXPECT_FALSE(ParseTomlTables("k = v\n", {"roots"}, &entries, &error));
  EXPECT_NE(error.find("inside a section"), std::string::npos);
}

}  // namespace
}  // namespace lint
}  // namespace vlora

// Block-quantization storage tests: round-trip error bounds, exactness on the
// quantization grid, partial trailing blocks (k not a multiple of 32), packed
// buffer alignment, and byte-level determinism.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/kernels/quant.h"
#include "src/tensor/tensor.h"

namespace vlora {
namespace {

constexpr WeightFormat kBlockFormats[] = {WeightFormat::kQ8, WeightFormat::kQ4};

float BlockMaxAbs(const float* row, int64_t cols, int64_t block) {
  const int64_t begin = block * kQuantBlockSize;
  const int64_t end = std::min(begin + kQuantBlockSize, cols);
  float max_abs = 0.0f;
  for (int64_t i = begin; i < end; ++i) {
    max_abs = std::max(max_abs, std::fabs(row[i]));
  }
  return max_abs;
}

TEST(QuantFormatTest, BlockMetadata) {
  EXPECT_EQ(QuantBlockBytes(WeightFormat::kQ8), sizeof(BlockQ8));
  EXPECT_EQ(QuantBlockBytes(WeightFormat::kQ4), sizeof(BlockQ4));
  EXPECT_EQ(QuantMaxLevel(WeightFormat::kQ8), 127);
  EXPECT_EQ(QuantMaxLevel(WeightFormat::kQ4), 7);
  // Half a quantization step, and monotone in the block maximum.
  EXPECT_GT(MaxAbsErrorBound(WeightFormat::kQ4, 1.0f),
            MaxAbsErrorBound(WeightFormat::kQ8, 1.0f));
  EXPECT_GE(MaxAbsErrorBound(WeightFormat::kQ8, 1.0f),
            0.5f * 1.0f / 127.0f);
}

// Round-trip error of every element is within the per-block analytic bound.
TEST(QuantRoundTripTest, WithinBoundPerBlock) {
  const int64_t rows = 7;
  const int64_t cols = 96;
  Rng rng(0xCAFEull);
  Tensor src = Tensor::Random(Shape(rows, cols), rng, 2.5f);
  for (WeightFormat format : kBlockFormats) {
    const QuantizedMatrix q = QuantizedMatrix::Quantize(src, format);
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.rows(), rows);
    EXPECT_EQ(q.cols(), cols);
    EXPECT_EQ(q.format(), format);
    std::vector<float> deq(static_cast<size_t>(cols));
    for (int64_t row = 0; row < rows; ++row) {
      q.DequantizeRowRange(row, 0, cols, deq.data(), KernelVariant::kScalar);
      const float* src_row = src.data() + row * cols;
      for (int64_t i = 0; i < cols; ++i) {
        const float bound =
            MaxAbsErrorBound(format, BlockMaxAbs(src_row, cols, i / kQuantBlockSize));
        EXPECT_LE(std::fabs(deq[static_cast<size_t>(i)] - src_row[i]), bound)
            << WeightFormatName(format) << " row " << row << " col " << i;
      }
    }
  }
}

// Values that already sit on the quantization grid survive the round trip
// exactly: v = s * q with a power-of-two s and the block max at the top level.
TEST(QuantRoundTripTest, ExactOnQuantizationGrid) {
  for (WeightFormat format : kBlockFormats) {
    const int qmax = QuantMaxLevel(format);
    const float s = 0.015625f;  // 2^-6: scale arithmetic stays exact
    const int64_t cols = 2 * kQuantBlockSize;
    std::vector<float> src(static_cast<size_t>(cols));
    Rng rng(0x641Dull);
    for (int64_t i = 0; i < cols; ++i) {
      // Pin the first element of each block to +-qmax so the computed scale
      // is exactly s; the rest are arbitrary grid points.
      const int64_t in_block = i % kQuantBlockSize;
      const int level = in_block == 0 ? qmax : rng.NextInt(-qmax, qmax);
      src[static_cast<size_t>(i)] = s * static_cast<float>(level);
    }
    const QuantizedMatrix q = QuantizedMatrix::Quantize(src.data(), 1, cols, format);
    std::vector<float> deq(static_cast<size_t>(cols));
    q.DequantizeRowRange(0, 0, cols, deq.data(), KernelVariant::kScalar);
    for (int64_t i = 0; i < cols; ++i) {
      EXPECT_EQ(deq[static_cast<size_t>(i)], src[static_cast<size_t>(i)])
          << WeightFormatName(format) << " col " << i;
    }
  }
}

// An all-zero block must produce scale 0 and dequantize to exact zeros (the
// inv_scale guard; a naive 0/0 would produce NaNs).
TEST(QuantRoundTripTest, ZeroBlockIsExact) {
  for (WeightFormat format : kBlockFormats) {
    std::vector<float> src(kQuantBlockSize, 0.0f);
    const QuantizedMatrix q = QuantizedMatrix::Quantize(src.data(), 1, kQuantBlockSize, format);
    std::vector<float> deq(kQuantBlockSize, -1.0f);
    q.DequantizeRowRange(0, 0, kQuantBlockSize, deq.data(), KernelVariant::kScalar);
    for (float v : deq) {
      EXPECT_EQ(v, 0.0f);
    }
  }
}

// cols not a multiple of the block size: the trailing partial block must
// round-trip within bound, and dequantizing a row must write exactly
// [col_begin, col_end) — the padding quants never leak into dst.
TEST(QuantBlockEdgeTest, PartialTrailingBlock) {
  const int64_t rows = 3;
  const int64_t cols = 45;  // 1 full block + 13 trailing elements
  Rng rng(0xED6Eull);
  Tensor src = Tensor::Random(Shape(rows, cols), rng, 1.0f);
  for (WeightFormat format : kBlockFormats) {
    const QuantizedMatrix q = QuantizedMatrix::Quantize(src, format);
    EXPECT_EQ(q.BlocksPerRow(), 2);
    constexpr float kCanary = 1234.5f;
    std::vector<float> deq(static_cast<size_t>(cols) + 8, kCanary);
    for (int64_t row = 0; row < rows; ++row) {
      q.DequantizeRowRange(row, 0, cols, deq.data(), KernelVariant::kScalar);
      const float* src_row = src.data() + row * cols;
      for (int64_t i = 0; i < cols; ++i) {
        const float bound =
            MaxAbsErrorBound(format, BlockMaxAbs(src_row, cols, i / kQuantBlockSize));
        EXPECT_LE(std::fabs(deq[static_cast<size_t>(i)] - src_row[i]), bound);
      }
      // Nothing written past the logical column count.
      for (size_t i = static_cast<size_t>(cols); i < deq.size(); ++i) {
        ASSERT_EQ(deq[i], kCanary) << "write past col_end at offset " << i;
      }
    }
  }
}

// Sub-range dequantization agrees with the corresponding slice of the full
// row, for ranges that start/end mid-block.
TEST(QuantBlockEdgeTest, ArbitrarySubRanges) {
  const int64_t cols = 100;
  Rng rng(0x5ABEull);
  Tensor src = Tensor::Random(Shape(1, cols), rng, 1.0f);
  for (WeightFormat format : kBlockFormats) {
    const QuantizedMatrix q = QuantizedMatrix::Quantize(src, format);
    std::vector<float> full(static_cast<size_t>(cols));
    q.DequantizeRowRange(0, 0, cols, full.data(), KernelVariant::kScalar);
    const struct {
      int64_t begin;
      int64_t end;
    } ranges[] = {{0, 1}, {5, 27}, {30, 34}, {17, 83}, {95, 100}, {32, 64}};
    for (const auto& range : ranges) {
      std::vector<float> part(static_cast<size_t>(range.end - range.begin));
      q.DequantizeRowRange(0, range.begin, range.end, part.data(), KernelVariant::kScalar);
      for (int64_t i = 0; i < range.end - range.begin; ++i) {
        ASSERT_EQ(part[static_cast<size_t>(i)], full[static_cast<size_t>(range.begin + i)])
            << WeightFormatName(format) << " range [" << range.begin << ", " << range.end << ")";
      }
    }
  }
}

// The AVX2 row helpers (when compiled in) must agree with the scalar
// dequantization bit-for-bit on full interior blocks.
TEST(QuantBlockEdgeTest, Avx2RowDequantMatchesScalar) {
  if (!Avx2Available()) {
    GTEST_SKIP() << "host has no AVX2 kernels";
  }
  const int64_t cols = 77;  // full blocks + partial tail
  Rng rng(0xA2B2ull);
  Tensor src = Tensor::Random(Shape(1, cols), rng, 1.0f);
  for (WeightFormat format : kBlockFormats) {
    const QuantizedMatrix q = QuantizedMatrix::Quantize(src, format);
    std::vector<float> scalar(static_cast<size_t>(cols));
    std::vector<float> avx2(static_cast<size_t>(cols));
    q.DequantizeRowRange(0, 0, cols, scalar.data(), KernelVariant::kScalar);
    q.DequantizeRowRange(0, 0, cols, avx2.data(), KernelVariant::kAvx2);
    EXPECT_EQ(0, std::memcmp(scalar.data(), avx2.data(), avx2.size() * sizeof(float)))
        << WeightFormatName(format);
  }
}

// Packed-buffer contract: every row's block storage starts kQuantAlignment-
// aligned, the row stride is a multiple of the alignment, and the compression
// ratio versus dense fp32 is what the format promises.
TEST(QuantStorageTest, AlignmentAndCompression) {
  const int64_t rows = 5;
  const int64_t cols = 4096;
  Rng rng(0xA116ull);
  Tensor src = Tensor::Random(Shape(rows, cols), rng, 1.0f);
  const int64_t dense_bytes = rows * cols * static_cast<int64_t>(sizeof(float));
  for (WeightFormat format : kBlockFormats) {
    const QuantizedMatrix q = QuantizedMatrix::Quantize(src, format);
    EXPECT_EQ(q.RowStrideBytes() % kQuantAlignment, 0u);
    for (int64_t row = 0; row < rows; ++row) {
      EXPECT_EQ(reinterpret_cast<uintptr_t>(q.RowBlocks(row)) % kQuantAlignment, 0u)
          << "row " << row;
    }
    const double ratio = static_cast<double>(dense_bytes) / static_cast<double>(q.SizeBytes());
    if (format == WeightFormat::kQ8) {
      EXPECT_GE(ratio, 3.4) << "Q8 should shrink ~3.6x";
    } else {
      EXPECT_GE(ratio, 6.0) << "Q4 should shrink ~6.4x";
    }
  }
}

// Q4 nibble layout is part of the serialized format: quant 2i in the low
// nibble, 2i+1 in the high nibble, biased by +8.
TEST(QuantStorageTest, Q4NibbleLayout) {
  std::vector<float> src(kQuantBlockSize);
  for (int i = 0; i < kQuantBlockSize; ++i) {
    // Levels cycle through [-7, 7] with the max hit first so scale == 1/7*7.
    src[static_cast<size_t>(i)] = static_cast<float>((i % 15) - 7);
  }
  src[0] = 7.0f;  // block max 7 -> scale exactly 1
  const QuantizedMatrix q = QuantizedMatrix::Quantize(src.data(), 1, kQuantBlockSize,
                                                      WeightFormat::kQ4);
  BlockQ4 block;
  std::memcpy(&block, q.RowBlocks(0), sizeof(block));
  EXPECT_EQ(block.scale, 1.0f);
  for (int i = 0; i < kQuantBlockSize / 2; ++i) {
    const int lo = static_cast<int>(block.q[i] & 0x0F) - 8;
    const int hi = static_cast<int>(block.q[i] >> 4) - 8;
    EXPECT_EQ(static_cast<float>(lo), src[static_cast<size_t>(2 * i)]) << "low nibble " << i;
    EXPECT_EQ(static_cast<float>(hi), src[static_cast<size_t>(2 * i + 1)]) << "high nibble " << i;
  }
}

// Quantization is deterministic down to the byte, including alignment padding
// (which is zero-initialised, so whole-buffer memcmp is well-defined).
TEST(QuantStorageTest, DeterministicBytes) {
  const int64_t rows = 4;
  const int64_t cols = 45;
  Rng rng(0xDE7Eull);
  Tensor src = Tensor::Random(Shape(rows, cols), rng, 1.0f);
  for (WeightFormat format : kBlockFormats) {
    const QuantizedMatrix q1 = QuantizedMatrix::Quantize(src, format);
    const QuantizedMatrix q2 = QuantizedMatrix::Quantize(src, format);
    ASSERT_EQ(q1.SizeBytes(), q2.SizeBytes());
    EXPECT_EQ(0, std::memcmp(q1.RowBlocks(0), q2.RowBlocks(0),
                             static_cast<size_t>(q1.SizeBytes())))
        << WeightFormatName(format);
  }
}

}  // namespace
}  // namespace vlora

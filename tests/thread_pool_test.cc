#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "src/common/thread_pool.h"
#include "src/kernels/gemm.h"
#include "src/tensor/tensor.h"

namespace vlora {
namespace {

// Negative compile-time test for the thread-safety analysis. Building
//   clang++ -DVLORA_THREAD_SAFETY=ON ... -DVLORA_EXPECT_TS_ERROR
// must FAIL: the probe reads a guarded member without holding its mutex,
// which -Werror=thread-safety rejects. Normal builds never compile this
// block; it exists so the analysis itself can be smoke-tested (an ON build
// that accepts it means the annotations are wired up wrong).
#ifdef VLORA_EXPECT_TS_ERROR
struct TsNegativeProbe {
  Mutex mu{Rank::kLeaf, "TsNegativeProbe::mu"};
  int guarded VLORA_GUARDED_BY(mu) = 0;
  int ReadWithoutLock() { return guarded; }  // thread-safety error here
};
#endif

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(0, 100, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleIndexRunsInline) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed;
  pool.ParallelFor(3, 4, [&](int64_t i) {
    EXPECT_EQ(i, 3);
    executed = std::this_thread::get_id();
  });
  EXPECT_EQ(executed, caller);
}

TEST(ThreadPoolTest, SequentialParallelForsReuseWorkers) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(0, 50, [&](int64_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 20 * (49 * 50 / 2));
}

TEST(ThreadPoolTest, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(GemmParallelTest, BitwiseMatchesSerial) {
  ThreadPool pool(4);
  Rng rng(1234);
  for (auto [m, n, k] : {std::tuple<int64_t, int64_t, int64_t>{7, 5, 9},
                         {64, 32, 128},
                         {300, 64, 96},
                         {1, 16, 16}}) {
    Tensor a = Tensor::Random(Shape(m, k), rng, 1.0f);
    Tensor b = Tensor::Random(Shape(k, n), rng, 1.0f);
    for (const TileConfig& config :
         {TileConfig{16, 16, 32, 4, 4}, TileConfig{64, 32, 64, 8, 8},
          TileConfig{128, 64, 128, 8, 8}}) {
      Tensor serial = Tensor::Zeros(Shape(m, n));
      Tensor parallel = Tensor::Zeros(Shape(m, n));
      GemmWorkspace ws1;
      GemmWorkspace ws2;
      GemmTiled(a, b, serial, config, ws1);
      GemmTiledParallel(a.data(), b.data(), parallel.data(), m, n, k, config, ws2, pool);
      // Disjoint C tiles with identical per-tile arithmetic: bitwise equal.
      EXPECT_EQ(Tensor::MaxAbsDiff(serial, parallel), 0.0f)
          << m << "x" << n << "x" << k << " " << config.ToString();
    }
  }
}

TEST(GemmParallelTest, DeterministicAcrossRuns) {
  ThreadPool pool(8);
  Rng rng(77);
  const int64_t m = 250;
  const int64_t n = 48;
  const int64_t k = 80;
  Tensor a = Tensor::Random(Shape(m, k), rng, 1.0f);
  Tensor b = Tensor::Random(Shape(k, n), rng, 1.0f);
  const TileConfig config{32, 32, 64, 8, 8};
  Tensor first = Tensor::Zeros(Shape(m, n));
  GemmWorkspace ws;
  GemmTiledParallel(a.data(), b.data(), first.data(), m, n, k, config, ws, pool);
  for (int run = 0; run < 5; ++run) {
    Tensor again = Tensor::Zeros(Shape(m, n));
    GemmTiledParallel(a.data(), b.data(), again.data(), m, n, k, config, ws, pool);
    EXPECT_EQ(Tensor::MaxAbsDiff(first, again), 0.0f);
  }
}

}  // namespace
}  // namespace vlora

// Death tests for the debug deadlock detector in src/common/sync.h.
//
// This TU is compiled with VLORA_LOCK_RANK_CHECKS=1 (set per-target in
// tests/CMakeLists.txt) even in release trees: the detector is header-only
// (inline thread_local), so enabling it here instruments exactly the mutexes
// this file creates without rebuilding any library. Each EXPECT_DEATH body
// constructs its own mutexes inside the forked child so the parent's
// thread-local held stack stays empty.

#include <gtest/gtest.h>

#include "src/common/sync.h"

namespace vlora {
namespace {

class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Death tests fork; "threadsafe" re-execs the binary so the child is not
    // a clone of a multi-threaded parent.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LockRankTest, CorrectDecreasingNestingIsSilent) {
  Mutex outer(Rank::kCluster, "test::outer");
  Mutex middle(Rank::kReplicaStep, "test::middle");
  Mutex inner(Rank::kLeaf, "test::inner");
  {
    MutexLock a(&outer);
    MutexLock b(&middle);
    MutexLock c(&inner);
    EXPECT_EQ(lock_debug::HeldCount(), 3);
  }
  EXPECT_EQ(lock_debug::HeldCount(), 0);
}

TEST_F(LockRankTest, ReacquiringAfterFullReleaseIsSilent) {
  Mutex low(Rank::kLeaf, "test::low");
  Mutex high(Rank::kCluster, "test::high");
  // low then high is fine sequentially — only *nested* ascent is an error.
  { MutexLock a(&low); }
  { MutexLock b(&high); }
  { MutexLock c(&low); }
  EXPECT_EQ(lock_debug::HeldCount(), 0);
}

TEST_F(LockRankTest, InvertedAcquisitionAborts) {
  EXPECT_DEATH(
      {
        Mutex low(Rank::kLeaf, "test::low");
        Mutex high(Rank::kCluster, "test::high");
        MutexLock a(&low);
        MutexLock b(&high);
      },
      "lock-rank violation: acquiring 'test::high' \\(kCluster/60\\) while "
      "holding 'test::low' \\(kLeaf/10\\)");
}

TEST_F(LockRankTest, SameRankAcquisitionAborts) {
  // Equal rank counts as a violation: two same-rank locks taken in opposite
  // orders by two threads deadlock just as surely as an inversion.
  EXPECT_DEATH(
      {
        Mutex a(Rank::kPool, "test::a");
        Mutex b(Rank::kPool, "test::b");
        MutexLock la(&a);
        MutexLock lb(&b);
      },
      "lock-rank violation: acquiring 'test::b' \\(kPool/20\\) while holding "
      "'test::a' \\(kPool/20\\)");
}

TEST_F(LockRankTest, SelfRelockAbortsWithSelfDeadlockTag) {
  EXPECT_DEATH(
      {
        Mutex mu(Rank::kLeaf, "test::mu");
        MutexLock a(&mu);
        MutexLock b(&mu);
      },
      "same mutex: self-deadlock");
}

TEST_F(LockRankTest, TryLockJoinsTheHeldStack) {
  // A successful TryLock is held to the same discipline — the later blocking
  // acquisition above it must still abort.
  EXPECT_DEATH(
      {
        Mutex low(Rank::kLeaf, "test::low");
        Mutex high(Rank::kReplicaStep, "test::high");
        ASSERT_TRUE(low.TryLock());
        MutexLock b(&high);
      },
      "acquiring 'test::high' \\(kReplicaStep/50\\) while holding "
      "'test::low' \\(kLeaf/10\\)");
}

TEST_F(LockRankTest, DiagnosticListsTheFullHeldStack) {
  EXPECT_DEATH(
      {
        Mutex outer(Rank::kCluster, "test::outer");
        Mutex inner(Rank::kPool, "test::inner");
        MutexLock a(&outer);
        MutexLock b(&inner);
        Mutex bad(Rank::kReplicaStep, "test::bad");
        MutexLock c(&bad);
      },
      "held locks \\(oldest first\\):\n  0: 'test::outer' \\(kCluster/60\\)\n"
      "  1: 'test::inner' \\(kPool/20\\)");
}

TEST_F(LockRankTest, BlockingWhileHoldingAnotherLockAborts) {
  // Waiting on `inner` while also holding `outer` (rank kPool, above the
  // default kLogging threshold) must abort: the wait can stall indefinitely
  // with a real lock pinned.
  EXPECT_DEATH(
      {
        Mutex outer(Rank::kPool, "test::outer");
        Mutex inner(Rank::kLeaf, "test::inner");
        CondVar cv;
        MutexLock a(&outer);
        MutexLock b(&inner);
        cv.WaitForMs(inner, 1.0);
      },
      "lock-rank violation: blocking in CondVar::WaitForMs while holding "
      "'test::outer' \\(kPool/20\\) above the blocking threshold "
      "\\(kLogging/0\\)");
}

TEST_F(LockRankTest, WaitingOnTheSoleHeldLockIsSilent) {
  Mutex mu(Rank::kReplicaIngress, "test::mu");
  CondVar cv;
  MutexLock lock(&mu);
  // Times out after 1ms; the point is that OnBlock does not abort when the
  // only held lock is the one the wait releases.
  EXPECT_FALSE(cv.WaitForMs(mu, 1.0));
}

TEST_F(LockRankTest, RaisedBlockingThresholdPermitsTheWait) {
  const Rank previous = lock_debug::SetMaxBlockingHeldRank(Rank::kCluster);
  EXPECT_EQ(previous, Rank::kLogging);
  {
    Mutex outer(Rank::kPool, "test::outer");
    Mutex inner(Rank::kLeaf, "test::inner");
    CondVar cv;
    MutexLock a(&outer);
    MutexLock b(&inner);
    EXPECT_FALSE(cv.WaitForMs(inner, 1.0));
  }
  EXPECT_EQ(lock_debug::SetMaxBlockingHeldRank(previous), Rank::kCluster);
}

TEST_F(LockRankTest, RankAndNameAccessorsSurvive) {
  Mutex mu(Rank::kServerStage, "test::named");
  EXPECT_EQ(mu.rank(), Rank::kServerStage);
  EXPECT_STREQ(mu.name(), "test::named");
  Mutex anonymous(Rank::kLeaf);
  EXPECT_STREQ(anonymous.name(), "kLeaf");
}

}  // namespace
}  // namespace vlora

// Runtime kernel dispatch: VLORA_KERNEL_VARIANT forcing, function-pointer
// table consistency, and serial-vs-parallel bitwise identity per variant.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/kernels/gemm.h"
#include "src/kernels/kernel_variant.h"
#include "src/kernels/microkernel.h"
#include "src/tensor/tensor.h"

namespace vlora {
namespace {

// Forces VLORA_KERNEL_VARIANT for the current scope and restores the previous
// value (or unsets) on destruction, refreshing the cached dispatch both ways.
class ScopedKernelVariantEnv {
 public:
  explicit ScopedKernelVariantEnv(const char* value) {
    const char* old = std::getenv("VLORA_KERNEL_VARIANT");
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    if (value == nullptr) {
      unsetenv("VLORA_KERNEL_VARIANT");
    } else {
      setenv("VLORA_KERNEL_VARIANT", value, /*overwrite=*/1);
    }
    RefreshKernelVariantFromEnv();
  }

  ~ScopedKernelVariantEnv() {
    if (had_old_) {
      setenv("VLORA_KERNEL_VARIANT", old_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv("VLORA_KERNEL_VARIANT");
    }
    RefreshKernelVariantFromEnv();
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(KernelVariantTest, ParseAcceptsExactNamesOnly) {
  KernelVariant variant;
  EXPECT_TRUE(ParseKernelVariant("scalar", &variant));
  EXPECT_EQ(variant, KernelVariant::kScalar);
  EXPECT_TRUE(ParseKernelVariant("avx2", &variant));
  EXPECT_EQ(variant, KernelVariant::kAvx2);
  EXPECT_FALSE(ParseKernelVariant("auto", &variant));
  EXPECT_FALSE(ParseKernelVariant("AVX2", &variant));
  EXPECT_FALSE(ParseKernelVariant("", &variant));
  EXPECT_FALSE(ParseKernelVariant("turbo", &variant));
}

TEST(KernelVariantTest, AvailabilityIsConsistent) {
  // Scalar is always available; AVX2 availability must match its table.
  const auto available = AvailableKernelVariants();
  ASSERT_FALSE(available.empty());
  EXPECT_EQ(available.front(), KernelVariant::kScalar);
  EXPECT_EQ(Avx2Available(), !Avx2MicroKernelTable().empty() && available.size() == 2);
  // The detected best variant is one of the available ones.
  const KernelVariant best = DetectBestKernelVariant();
  EXPECT_EQ(best, Avx2Available() ? KernelVariant::kAvx2 : KernelVariant::kScalar);
}

// Forcing each variant through the env override must be reflected by the
// active variant AND by the function-pointer table actually dispatched to.
TEST(KernelVariantTest, EnvOverrideForcesEachVariant) {
  {
    ScopedKernelVariantEnv env("scalar");
    EXPECT_EQ(ActiveKernelVariant(), KernelVariant::kScalar);
    for (const MicroKernelEntry& entry : MicroKernelTable(ActiveKernelVariant())) {
      EXPECT_EQ(entry.variant, KernelVariant::kScalar);
    }
  }
  {
    ScopedKernelVariantEnv env("avx2");
    if (Avx2Available()) {
      EXPECT_EQ(ActiveKernelVariant(), KernelVariant::kAvx2);
      for (const MicroKernelEntry& entry : MicroKernelTable(ActiveKernelVariant())) {
        EXPECT_EQ(entry.variant, KernelVariant::kAvx2);
        EXPECT_NE(entry.full, nullptr);
        EXPECT_NE(entry.edge, nullptr);
      }
    } else {
      // Graceful degradation on hosts without AVX2: warn and serve scalar.
      EXPECT_EQ(ActiveKernelVariant(), KernelVariant::kScalar);
    }
  }
}

TEST(KernelVariantTest, UnparsableEnvFallsBackToAuto) {
  ScopedKernelVariantEnv env("turbo-encabulator");
  EXPECT_EQ(ActiveKernelVariant(), DetectBestKernelVariant());
}

TEST(KernelVariantTest, EmptyAndAutoSelectBest) {
  {
    ScopedKernelVariantEnv env("auto");
    EXPECT_EQ(ActiveKernelVariant(), DetectBestKernelVariant());
  }
  {
    ScopedKernelVariantEnv env(nullptr);
    EXPECT_EQ(ActiveKernelVariant(), DetectBestKernelVariant());
  }
}

// The implicit-dispatch GemmTiled overload must produce bitwise-identical
// output to the explicit-variant overload for whatever variant is forced.
TEST(KernelDispatchTest, ImplicitOverloadHonoursForcedVariant) {
  const int64_t m = 37;
  const int64_t n = 53;
  const int64_t k = 71;
  Rng rng(0xD15Cull);
  Tensor a = Tensor::Random(Shape(m, k), rng, 1.0f);
  Tensor b = Tensor::Random(Shape(k, n), rng, 1.0f);
  for (KernelVariant variant : AvailableKernelVariants()) {
    ScopedKernelVariantEnv env(KernelVariantName(variant));
    Tensor c_implicit = Tensor::Zeros(Shape(m, n));
    Tensor c_explicit = Tensor::Zeros(Shape(m, n));
    GemmWorkspace workspace;
    GemmTiled(a.data(), b.data(), c_implicit.data(), m, n, k, TileConfig{}, workspace);
    GemmTiled(a.data(), b.data(), c_explicit.data(), m, n, k, TileConfig{}, workspace, variant);
    EXPECT_EQ(0, std::memcmp(c_implicit.data(), c_explicit.data(),
                             static_cast<size_t>(m * n) * sizeof(float)))
        << KernelVariantName(variant);
  }
}

// GemmTiledParallel must be bitwise identical to serial GemmTiled for EVERY
// variant: disjoint C tiles and identical per-tile arithmetic order make the
// parallel decomposition exact, not merely close.
TEST(KernelDispatchTest, ParallelIsBitwiseIdenticalToSerialForEveryVariant) {
  ThreadPool pool(4);
  const struct {
    int64_t m;
    int64_t n;
    int64_t k;
  } shapes[] = {{128, 96, 64}, {33, 49, 97}, {1, 64, 128}, {200, 16, 512}};
  for (KernelVariant variant : AvailableKernelVariants()) {
    for (const auto& shape : shapes) {
      Rng rng(0xBEEFull ^ static_cast<uint64_t>(shape.m));
      Tensor a = Tensor::Random(Shape(shape.m, shape.k), rng, 1.0f);
      Tensor b = Tensor::Random(Shape(shape.k, shape.n), rng, 1.0f);
      Tensor c_serial = Tensor::Zeros(Shape(shape.m, shape.n));
      Tensor c_parallel = Tensor::Zeros(Shape(shape.m, shape.n));
      GemmWorkspace ws_serial;
      GemmWorkspace ws_parallel;
      const TileConfig config{32, 32, 64, 8, 8};  // several block tiles in m
      GemmTiled(a.data(), b.data(), c_serial.data(), shape.m, shape.n, shape.k, config,
                ws_serial, variant);
      GemmTiledParallel(a.data(), b.data(), c_parallel.data(), shape.m, shape.n, shape.k, config,
                        ws_parallel, pool, variant);
      EXPECT_EQ(0, std::memcmp(c_serial.data(), c_parallel.data(),
                               static_cast<size_t>(shape.m * shape.n) * sizeof(float)))
          << KernelVariantName(variant) << " " << shape.m << "x" << shape.n << "x" << shape.k;
    }
  }
}

// FindMicroKernel degrades to scalar rather than failing when a variant lacks
// an instantiation (it never does today, but the fallback is the contract).
TEST(KernelDispatchTest, LookupFallsBackToScalar) {
  EXPECT_EQ(FindMicroKernel(KernelVariant::kScalar, 5, 5), nullptr);
  const MicroKernelEntry* entry = FindMicroKernel(KernelVariant::kAvx2, 8, 8);
  ASSERT_NE(entry, nullptr);
  if (Avx2Available()) {
    EXPECT_EQ(entry->variant, KernelVariant::kAvx2);
  } else {
    EXPECT_EQ(entry->variant, KernelVariant::kScalar);
  }
  EXPECT_TRUE(HasMicroKernel(8, 8));
  EXPECT_FALSE(HasMicroKernel(KernelVariant::kAvx2, 5, 5));
}

}  // namespace
}  // namespace vlora

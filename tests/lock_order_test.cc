// Unit tests for the vlora_lint lock-order pass (tools/lock_order.h): the
// TOML hierarchy parser, the declaration/table cross-checks, and the
// acquisition-edge analysis over synthetic source trees — each violation has
// a good twin that must stay silent. Snippet text is assembled from adjacent
// string literals so the whole-tree per-line scan does not trip on this
// file's own test data.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lock_order.h"

namespace vlora {
namespace lint {
namespace {

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::string MessagesFor(const std::vector<Finding>& findings, const std::string& rule) {
  std::string out;
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      out += FormatFinding(f) + "\n";
    }
  }
  return out;
}

LockHierarchy TwoLevelHierarchy() {
  LockHierarchy h;
  h.ranks = {{"kHigh", 20}, {"kLow", 10}};
  h.locks = {{"Outer::mu_", "kHigh"}, {"Inner::mu_", "kLow"}};
  return h;
}

// A header declaring one high-ranked and one low-ranked lock.
std::string TwinHeader() {
  return std::string("#ifndef T_H_\n#define T_H_\n") +
         "class Outer {\n public:\n  void Run();\n  void Helper() VLORA_REQUIRES(mu_);\n" +
         " private:\n  Mutex" " mu_{Rank" "::kHigh, \"Outer::mu_\"};\n  Inner inner_;\n};\n" +
         "class Inner {\n public:\n  void Touch() VLORA_EXCLUDES(mu_);\n" +
         " private:\n  Mutex" " mu_{Rank" "::kLow, \"Inner::mu_\"};\n};\n#endif\n";
}

TEST(ParseLockHierarchyTest, ParsesRanksAndLocks) {
  const std::string toml =
      "# comment\n[ranks]\nkHigh = 20\nkLow = 10\n\n[locks]\n"
      "\"Outer::mu_\" = \"kHigh\"\n\"Inner::mu_\" = \"kLow\"\n";
  LockHierarchy h;
  std::string error;
  ASSERT_TRUE(ParseLockHierarchy(toml, &h, &error)) << error;
  EXPECT_EQ(h.ranks.at("kHigh"), 20);
  EXPECT_EQ(h.ranks.at("kLow"), 10);
  EXPECT_EQ(h.locks.at("Outer::mu_"), "kHigh");
  EXPECT_EQ(h.locks.at("Inner::mu_"), "kLow");
}

TEST(ParseLockHierarchyTest, RejectsMalformedInput) {
  LockHierarchy h;
  std::string error;
  EXPECT_FALSE(ParseLockHierarchy("[ranks]\nkHigh = banana\n", &h, &error));
  EXPECT_FALSE(ParseLockHierarchy("keyless line\n", &h, &error));
  EXPECT_FALSE(ParseLockHierarchy("[mystery]\nx = 1\n", &h, &error));
  // A lock referencing an undeclared rank is an error, not a silent pass.
  EXPECT_FALSE(ParseLockHierarchy("[ranks]\nkHigh = 20\n[locks]\n\"A::m_\" = \"kGhost\"\n",
                                  &h, &error));
  EXPECT_NE(error.find("kGhost"), std::string::npos);
}

TEST(LockOrderTest, CorrectNestingIsSilent) {
  const std::string good_cc =
      std::string("#include \"t.h\"\n") +
      "void Outer::Run() {\n"
      "  Mutex" "Lock lock(&mu_);\n"
      "  {\n"
      "    Mutex" "Lock inner_lock(&inner_.mu_);\n"  // low under high: legal
      "  }\n"
      "}\n";
  const std::vector<Finding> findings = CheckLockOrder(
      TwoLevelHierarchy(), {{"src/t.h", TwinHeader()}, {"src/t.cc", good_cc}});
  EXPECT_FALSE(HasRule(findings, "lock-order")) << MessagesFor(findings, "lock-order");
  EXPECT_FALSE(HasRule(findings, "lock-decl-mismatch"))
      << MessagesFor(findings, "lock-decl-mismatch");
  EXPECT_FALSE(HasRule(findings, "lock-unranked"));
}

TEST(LockOrderTest, InvertedNestingIsFlaggedWithBothNames) {
  const std::string bad_cc =
      std::string("#include \"t.h\"\n") +
      "void Inner::Touch() {\n"
      "  Mutex" "Lock lock(&mu_);\n"
      "}\n"
      "void Outer::Run() {\n"
      "  Mutex" "Lock inner_lock(&inner_.mu_);\n"
      "  Mutex" "Lock lock(&mu_);\n"  // high acquired under low: inversion
      "}\n";
  const std::vector<Finding> findings = CheckLockOrder(
      TwoLevelHierarchy(), {{"src/t.h", TwinHeader()}, {"src/t.cc", bad_cc}});
  ASSERT_TRUE(HasRule(findings, "lock-order"));
  const std::string report = MessagesFor(findings, "lock-order");
  EXPECT_NE(report.find("Outer::mu_"), std::string::npos) << report;
  EXPECT_NE(report.find("Inner::mu_"), std::string::npos) << report;
  EXPECT_NE(report.find("src/t.cc:7"), std::string::npos) << report;
}

TEST(LockOrderTest, SameRankNestingIsFlagged) {
  LockHierarchy h;
  h.ranks = {{"kSame", 10}};
  h.locks = {{"A::left_", "kSame"}, {"A::right_", "kSame"}};
  const std::string header =
      std::string("#ifndef S_H_\n#define S_H_\nclass A {\n") +
      "  Mutex" " left_{Rank" "::kSame, \"A::left_\"};\n" +
      "  Mutex" " right_{Rank" "::kSame, \"A::right_\"};\n};\n#endif\n";
  const std::string body =
      std::string("void A::F() {\n  Mutex" "Lock l(&left_);\n  Mutex" "Lock r(&right_);\n}\n");
  const std::vector<Finding> findings =
      CheckLockOrder(h, {{"src/s.h", header}, {"src/s.cc", body}});
  EXPECT_TRUE(HasRule(findings, "lock-order")) << "same-rank nesting must be rejected";
}

TEST(LockOrderTest, RequiresAnnotationSeedsTheHeldSet) {
  // Helper() REQUIRES the high lock; its body never takes it explicitly, yet
  // acquiring the low lock inside is an edge — and a legal one. The inverted
  // twin requires the LOW lock and acquires the high one: violation.
  const std::string good_cc =
      std::string("void Outer::Helper() {\n  Mutex" "Lock lock(&inner_.mu_);\n}\n");
  const std::vector<Finding> good = CheckLockOrder(
      TwoLevelHierarchy(), {{"src/t.h", TwinHeader()}, {"src/t.cc", good_cc}});
  EXPECT_FALSE(HasRule(good, "lock-order")) << MessagesFor(good, "lock-order");

  const std::string bad_header =
      std::string("#ifndef B_H_\n#define B_H_\n") +
      "class Inner {\n public:\n  void Helper() VLORA_REQUIRES(mu_);\n" +
      " private:\n  Mutex" " mu_{Rank" "::kLow, \"Inner::mu_\"};\n  Outer outer_;\n};\n" +
      "class Outer {\n private:\n  Mutex" " mu_{Rank" "::kHigh, \"Outer::mu_\"};\n" +
      "  friend class Inner;\n};\n#endif\n";
  const std::string bad_cc =
      std::string("void Inner::Helper() {\n  Mutex" "Lock lock(&outer_.mu_);\n}\n");
  const std::vector<Finding> bad = CheckLockOrder(
      TwoLevelHierarchy(), {{"src/b.h", bad_header}, {"src/b.cc", bad_cc}});
  EXPECT_TRUE(HasRule(bad, "lock-order"));
}

TEST(LockOrderTest, CallGraphEdgeThroughAnnotatedCalleeIsFlagged) {
  // Inner::Grab EXCLUDES (i.e. acquires) the high lock; calling it while
  // holding the low lock is an inversion even though no MutexLock of the high
  // lock appears in the caller.
  LockHierarchy h;
  h.ranks = {{"kHigh", 20}, {"kLow", 10}};
  h.locks = {{"Holder::low_", "kLow"}, {"Target::high_", "kHigh"}};
  const std::string header =
      std::string("#ifndef C_H_\n#define C_H_\n") +
      "class Target {\n public:\n  void Grab() VLORA_EXCLUDES(high_);\n" +
      " private:\n  Mutex" " high_{Rank" "::kHigh, \"Target::high_\"};\n};\n" +
      "class Holder {\n public:\n  void Call();\n" +
      " private:\n  Mutex" " low_{Rank" "::kLow, \"Holder::low_\"};\n  Target target_;\n};\n" +
      "#endif\n";
  const std::string body =
      std::string("void Holder::Call() {\n  Mutex" "Lock lock(&low_);\n") +
      "  target_.Grab();\n}\n" +
      "void Target::Grab() {\n  Mutex" "Lock lock(&high_);\n}\n";
  const std::vector<Finding> findings =
      CheckLockOrder(h, {{"src/c.h", header}, {"src/c.cc", body}});
  ASSERT_TRUE(HasRule(findings, "lock-order"));
  const std::string report = MessagesFor(findings, "lock-order");
  EXPECT_NE(report.find("Target::Grab"), std::string::npos) << report;
}

TEST(LockOrderTest, CycleAcrossTwoFilesReportsThePath) {
  // Two classes each take their own lock then the other's: a real AB/BA
  // deadlock. Whichever direction the rank table blesses, the other edge
  // violates, and the report spells out the cycle path.
  LockHierarchy h;
  h.ranks = {{"kHigh", 20}, {"kLow", 10}};
  h.locks = {{"Ping::mu_", "kHigh"}, {"Pong::mu_", "kLow"}};
  const std::string header =
      std::string("#ifndef P_H_\n#define P_H_\n") +
      "class Pong;\n" +
      "class Ping {\n public:\n  void Go(Pong* pong);\n" +
      "  Mutex" " mu_{Rank" "::kHigh, \"Ping::mu_\"};\n};\n" +
      "class Pong {\n public:\n  void Go(Ping* ping);\n" +
      "  Mutex" " mu_{Rank" "::kLow, \"Pong::mu_\"};\n};\n#endif\n";
  const std::string ping_cc =
      std::string("void Ping::Go(Pong* pong) {\n") +
      "  Mutex" "Lock lock(&mu_);\n  Mutex" "Lock other(&pong->mu_);\n}\n";
  const std::string pong_cc =
      std::string("void Pong::Go(Ping* ping) {\n") +
      "  Mutex" "Lock lock(&mu_);\n  Mutex" "Lock other(&ping->mu_);\n}\n";
  const std::vector<Finding> findings = CheckLockOrder(
      h, {{"src/p.h", header}, {"src/ping.cc", ping_cc}, {"src/pong.cc", pong_cc}});
  ASSERT_TRUE(HasRule(findings, "lock-order"));
  const std::string report = MessagesFor(findings, "lock-order");
  // The violating edge is Pong::mu_ -> Ping::mu_ (low before high); the
  // legal reverse edge exists in ping.cc, closing the cycle.
  EXPECT_NE(report.find("cycle:"), std::string::npos) << report;
  EXPECT_NE(report.find("src/pong.cc"), std::string::npos) << report;
}

TEST(LockOrderTest, DeclMismatchAndStaleEntryAreFlagged) {
  LockHierarchy h;
  h.ranks = {{"kHigh", 20}, {"kLow", 10}};
  h.locks = {{"A::mu_", "kHigh"}, {"Gone::mu_", "kLow"}};
  const std::string header =
      std::string("#ifndef M_H_\n#define M_H_\nclass A {\n") +
      "  Mutex" " mu_{Rank" "::kLow, \"A::mu_\"};\n};\n#endif\n";
  const std::vector<Finding> findings = CheckLockOrder(h, {{"src/m.h", header}});
  const std::string report = MessagesFor(findings, "lock-decl-mismatch");
  EXPECT_NE(report.find("A::mu_"), std::string::npos) << report;     // rank disagrees
  EXPECT_NE(report.find("Gone::mu_"), std::string::npos) << report;  // stale entry
}

TEST(LockOrderTest, UnrankedMutexUnderSrcIsFlagged) {
  const std::string header =
      std::string("#ifndef U_H_\n#define U_H_\nclass A {\n") +
      "  Mutex" " mu_;\n};\n#endif\n";
  LockHierarchy h;
  h.ranks = {{"kLow", 10}};
  const std::vector<Finding> findings = CheckLockOrder(h, {{"src/u.h", header}});
  ASSERT_TRUE(HasRule(findings, "lock-unranked"));
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LockOrderTest, RankEnumDriftAgainstSyncHeaderIsFlagged) {
  LockHierarchy h;
  h.ranks = {{"kHigh", 20}, {"kLow", 10}};
  const std::string sync =
      std::string("#ifndef SYNC_H_\n#define SYNC_H_\n") +
      "enum class Rank" " : int {\n  kLow = 10,\n  kHigh = 25,\n  kExtra = 30,\n};\n#endif\n";
  const std::vector<Finding> findings = CheckLockOrder(h, {{"src/common/sync.h", sync}});
  const std::string report = MessagesFor(findings, "rank-enum-drift");
  EXPECT_NE(report.find("kHigh"), std::string::npos) << report;   // value drift 25 vs 20
  EXPECT_NE(report.find("kExtra"), std::string::npos) << report;  // enum-only rank
}

TEST(LockOrderTest, SuppressionCommentSilencesTheEdge) {
  const std::string bad_cc =
      std::string("#include \"t.h\"\n") +
      "void Outer::Run() {\n"
      "  Mutex" "Lock inner_lock(&inner_.mu_);\n"
      "  Mutex" "Lock lock(&mu_);  // vlora-lint: " "allow(lock-order)\n"
      "}\n";
  const std::vector<Finding> findings = CheckLockOrder(
      TwoLevelHierarchy(), {{"src/t.h", TwinHeader()}, {"src/t.cc", bad_cc}});
  EXPECT_FALSE(HasRule(findings, "lock-order")) << MessagesFor(findings, "lock-order");
}

TEST(LockOrderTest, LambdaBodyIsASeparateContext) {
  // The callback posted from inside the critical section runs on another
  // thread with no inherited locks: re-taking the same high lock there is NOT
  // an edge from the enclosing function.
  const std::string body_cc =
      std::string("#include \"t.h\"\n") +
      "void Outer::Run() {\n"
      "  Mutex" "Lock lock(&mu_);\n"
      "  pool->Post([this] {\n"
      "    Mutex" "Lock again(&mu_);\n"
      "  });\n"
      "}\n";
  const std::vector<Finding> findings = CheckLockOrder(
      TwoLevelHierarchy(), {{"src/t.h", TwinHeader()}, {"src/t.cc", body_cc}});
  EXPECT_FALSE(HasRule(findings, "lock-order")) << MessagesFor(findings, "lock-order");
}

}  // namespace
}  // namespace lint
}  // namespace vlora

// Trace-driven proofs of the disaggregated prefill/decode lifecycle
// (DESIGN.md §15). Everything here runs the thread backend so the whole
// two-stage story — admit, prefill-route, KV-handoff, decode-route,
// complete — is visible in one process's trace stream; the wire-level
// equivalents live in net_test.cc / process_cluster_test.cc. The suite also
// runs under TSan/ASan via scripts/verify.sh (`disagg` + `concurrency`
// labels), so traces stay short.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/cluster/cluster_server.h"
#include "src/common/fault.h"
#include "src/common/trace.h"
#include "src/workload/trace_gen.h"
#include "tests/trace_matcher.h"

namespace vlora {
namespace {

using trace::TraceEvent;
using trace::TraceEventKindName;
using trace::TraceEventKind;
using trace::TraceMatcher;
using trace::TraceSession;

std::vector<LoraAdapter> MakeAdapters(const ModelConfig& config, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<LoraAdapter> adapters;
  for (int i = 0; i < count; ++i) {
    adapters.push_back(LoraAdapter::Random("disagg-" + std::to_string(i), config.num_layers,
                                           config.d_model, 4, rng));
  }
  return adapters;
}

std::vector<Request> SmallTrace(int num_adapters, double rate_rps, double duration_s,
                                uint64_t seed) {
  TraceOptions options;
  options.app = AppKind::kVisualRetrieval;
  options.duration_s = duration_s;
  options.rate_rps = rate_rps;
  options.num_adapters = num_adapters;
  options.skewness = 0.6;
  options.seed = seed;
  return GenerateTrace(options);
}

TraceMapOptions SmallMap() {
  TraceMapOptions map;
  map.token_scale = 32;
  map.max_prompt_tokens = 16;
  map.max_new_tokens = 3;
  return map;
}

std::unique_ptr<ClusterServer> MakeDisaggCluster(const ModelConfig& config, int replicas,
                                                 int num_prefill,
                                                 const std::vector<Request>& trace,
                                                 FaultInjector* fault = nullptr,
                                                 RecoveryOptions recovery = {},
                                                 DisaggOptions disagg_extra = {}) {
  ClusterOptions options;
  options.num_replicas = replicas;
  options.policy = RoutePolicy::kRoundRobin;  // fixed routing sequence
  options.admission = AdmissionPolicy::kBlock;
  options.replica_queue_capacity = 256;
  options.server.max_batch_size = 4;
  options.disagg = disagg_extra;
  options.disagg.enabled = true;
  options.disagg.num_prefill = num_prefill;
  options.fault = fault;
  options.recovery = recovery;
  auto cluster = std::make_unique<ClusterServer>(config, options);
  for (const LoraAdapter& adapter : MakeAdapters(config, 6, 11)) {
    cluster->AddAdapter(adapter);
  }
  cluster->PlaceAdapters(AdapterShares(trace, 6));
  return cluster;
}

// --- The two-stage lifecycle, event by event --------------------------------

TEST(DisaggregatedTest, TwoStageLifecycleIsFullyTraced) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 1.0, 61);
  ASSERT_GE(trace.size(), 20u);
  constexpr int kPrefillPool = 1;  // replicas {0} prefill, {1, 2} decode

  TraceSession session;
  auto cluster = MakeDisaggCluster(config, /*replicas=*/3, kPrefillPool, trace);
  for (size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  const std::vector<EngineResult> results = cluster->Drain();
  EXPECT_EQ(results.size(), 20u);
  EXPECT_TRUE(cluster->TakeFailures().empty());
  const ClusterStats stats = cluster->Stats();
  cluster.reset();
  session.Stop();
  TraceMatcher matcher(session.Collect());
  EXPECT_EQ(session.dropped_events(), 0);

  // The pool split is visible in the events themselves: handoffs only leave
  // prefill replicas, decode routing only targets decode replicas.
  for (const TraceEvent& event : matcher.events()) {
    if (event.kind == TraceEventKind::kKvHandoff) {
      EXPECT_LT(event.replica, kPrefillPool) << "handoff from a non-prefill replica";
    }
    if (event.kind == TraceEventKind::kDecodeRouted ||
        event.kind == TraceEventKind::kDecodeEnqueued) {
      EXPECT_GE(event.replica, kPrefillPool)
          << TraceEventKindName(event.kind) << " targeted the prefill pool";
    }
  }

  std::set<int64_t> handed_off;
  for (const TraceEvent& event : matcher.events()) {
    if (event.kind == TraceEventKind::kKvHandoff) {
      handed_off.insert(event.request_id);
    }
  }
  EXPECT_EQ(static_cast<int64_t>(handed_off.size()), stats.handoffs);
  EXPECT_GT(stats.handoffs, 0);
  EXPECT_EQ(stats.handles_created, stats.handoffs);
  EXPECT_EQ(stats.handles_released, stats.handles_created);

  for (size_t i = 0; i < 20; ++i) {
    const int64_t id = trace[i].id;
    EXPECT_TRUE(matcher.ExpectCompleted(id, StatusCode::kOk));
    if (handed_off.count(id) != 0) {
      // Exactly one handoff, embedded in the full two-stage sequence. The
      // decode replica's generic kEnqueued lands between kDecodeRouted and
      // kDecodeEnqueued; subsequence matching absorbs it.
      EXPECT_EQ(matcher.CountForRequest(TraceEventKind::kKvHandoff, id), 1);
      EXPECT_TRUE(matcher.ExpectSequence(
          id, {TraceEventKind::kRequestAdmitted, TraceEventKind::kRouted,
               TraceEventKind::kEnqueued, TraceEventKind::kPrefillDone,
               TraceEventKind::kKvHandoff, TraceEventKind::kDecodeRouted,
               TraceEventKind::kDecodeEnqueued, TraceEventKind::kCompleted}));
      // The prefill happened exactly once: the decode pool resumed from the
      // handle instead of recomputing the prompt.
      EXPECT_EQ(matcher.CountForRequest(TraceEventKind::kPrefillDone, id), 1);
      // A prefill batch step retired between the request entering the prefill
      // replica and its KV leaving it.
      const double enqueued_ms = matcher.FirstTime({TraceEventKind::kEnqueued, -1, id});
      const double handoff_ms = matcher.FirstTime({TraceEventKind::kKvHandoff, -1, id});
      bool stepped = false;
      for (const TraceEvent& event : matcher.events()) {
        if (event.kind == TraceEventKind::kBatchStepEnd && event.replica < kPrefillPool &&
            event.when_ms > enqueued_ms && event.when_ms <= handoff_ms) {
          stepped = true;
          break;
        }
      }
      EXPECT_TRUE(stepped) << "no prefill BatchStepEnd inside request " << id
                           << "'s enqueue->handoff window";
      // The handoff carried the sequence's actual KV pages.
      for (const TraceEvent& event : matcher.ForRequest(id)) {
        if (event.kind == TraceEventKind::kKvHandoff) {
          EXPECT_GT(event.handoff_pages(), 0);
          EXPECT_GT(event.handoff_floats(), 0);
        }
      }
    } else {
      // Finished at prefill (eos / single-token / task head): stage two never
      // started for it.
      EXPECT_EQ(matcher.CountForRequest(TraceEventKind::kDecodeRouted, id), 0);
      EXPECT_EQ(matcher.CountForRequest(TraceEventKind::kDecodeEnqueued, id), 0);
    }
  }
}

// --- Decode-pool death: no routing to the lost replica ----------------------

TEST(DisaggregatedTest, DeadDecodeReplicaIsNeverTargetedAgain) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 2.0, 67);
  ASSERT_GE(trace.size(), 40u);
  constexpr int kVictim = 2;  // decode pool is {1, 2}

  TraceSession session;
  FaultInjector fault(0x5eedu);
  fault.GateWorkers();  // first wave piles up so the kill orphans queued work
  // The victim idles until the whole first wave's handoffs are routed (its
  // decodes are microseconds, so without the stall it can drain each handoff
  // before the next arrives and die with an empty queue — no retry to prove).
  fault.StallReplicaAfter(kVictim, /*completed=*/0, /*stall_ms=*/200.0);
  fault.KillReplicaAfter(kVictim, /*completed=*/1);
  RecoveryOptions recovery;
  recovery.stall_quarantine_ms = 0.0;
  recovery.backoff_base_ms = 1.0;
  recovery.health_period_ms = 2.0;
  recovery.max_attempts = 8;
  // Serialize decode completions (TPOT cap -> batch of 1): the victim cannot
  // clear its whole queue in one batch step, so the kill after its first
  // completion always orphans queued decodes and forces the retry path.
  DisaggOptions serial_decode;
  serial_decode.tpot_slo_ms = 1.0;
  serial_decode.est_decode_step_ms = 1.0;
  auto cluster = MakeDisaggCluster(config, /*replicas=*/3, /*num_prefill=*/1, trace, &fault,
                                   recovery, serial_decode);
  for (size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  fault.OpenGate();  // the victim dies holding its share of queued decodes
  const std::vector<EngineResult> first_wave = cluster->Drain();
  EXPECT_EQ(first_wave.size(), 20u);
  EXPECT_TRUE(cluster->TakeFailures().empty());
  ASSERT_TRUE(cluster->WaitForReplicaDeaths(/*count=*/1, /*timeout_ms=*/10'000.0));

  // Second wave, submitted after the death is recorded: the decode router and
  // the rebalanced decode placement must steer every handoff to replica 1.
  for (size_t i = 20; i < 40; ++i) {
    ASSERT_TRUE(cluster->Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  const std::vector<EngineResult> second_wave = cluster->Drain();
  EXPECT_EQ(second_wave.size(), 20u);
  EXPECT_TRUE(cluster->TakeFailures().empty());
  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.replica_deaths, 1);
  EXPECT_EQ(stats.handles_released, stats.handles_created);
  cluster.reset();
  session.Stop();
  TraceMatcher matcher(session.Collect());
  EXPECT_EQ(session.dropped_events(), 0);

  // The victim really served decode work before dying...
  EXPECT_GT(matcher.CountForReplica(TraceEventKind::kDecodeEnqueued, kVictim), 0);
  // ...and once its death convicted (first fail-over retry), its pool never
  // accepted another handoff.
  const double first_retry_ms = matcher.FirstTime({TraceEventKind::kRetry});
  ASSERT_GE(first_retry_ms, 0.0);
  EXPECT_EQ(matcher.CountAfter({TraceEventKind::kDecodeEnqueued, kVictim}, first_retry_ms), 0);
  EXPECT_EQ(matcher.CountAfter({TraceEventKind::kEnqueued, kVictim}, first_retry_ms), 0);
  // Requests orphaned on the victim re-routed their existing handle: one
  // prefill, one handoff, then a retry into the surviving decode replica.
  std::set<int64_t> retried;
  for (const TraceEvent& event : matcher.events()) {
    if (event.kind == TraceEventKind::kRetry) {
      retried.insert(event.request_id);
    }
  }
  EXPECT_FALSE(retried.empty());
  for (int64_t id : retried) {
    EXPECT_TRUE(matcher.ExpectCompleted(id, StatusCode::kOk));
    EXPECT_EQ(matcher.CountForRequest(TraceEventKind::kPrefillDone, id), 1);
    EXPECT_EQ(matcher.CountForRequest(TraceEventKind::kKvHandoff, id), 1);
    EXPECT_TRUE(matcher.ExpectSequence(
        id, {TraceEventKind::kKvHandoff, TraceEventKind::kRetry,
             TraceEventKind::kDecodeEnqueued, TraceEventKind::kCompleted}));
  }
  // Every post-death completion in the second wave still has the full
  // two-stage (or prefill-terminal) lifecycle.
  for (size_t i = 20; i < 40; ++i) {
    EXPECT_TRUE(matcher.ExpectCompleted(trace[i].id, StatusCode::kOk));
  }
}

// --- TTFT admission gate ----------------------------------------------------

TEST(DisaggregatedTest, TtftAdmissionRejectsWhenPrefillPoolIsSaturated) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 2.0, 71);
  ASSERT_GE(trace.size(), 20u);

  TraceSession session;
  FaultInjector fault(0x5eedu);
  fault.GateWorkers();  // prefill depth only grows while the gate is closed
  ClusterOptions options;
  options.num_replicas = 2;
  options.policy = RoutePolicy::kRoundRobin;
  options.admission = AdmissionPolicy::kBlock;
  options.replica_queue_capacity = 256;
  options.server.max_batch_size = 4;
  options.disagg.enabled = true;
  options.disagg.num_prefill = 1;
  // threshold = max(1, 40 / 5) = 8 queued requests on the only prefill
  // replica; the 9th Submit must bounce.
  options.disagg.ttft_slo_ms = 40.0;
  options.disagg.est_prefill_ms = 5.0;
  options.fault = &fault;
  options.recovery.stall_quarantine_ms = 0.0;
  ClusterServer cluster(config, options);
  for (const LoraAdapter& adapter : MakeAdapters(config, 6, 11)) {
    cluster.AddAdapter(adapter);
  }
  cluster.PlaceAdapters(AdapterShares(trace, 6));

  int admitted = 0;
  int rejected = 0;
  for (size_t i = 0; i < 12; ++i) {
    if (cluster.Submit(EngineRequestFromTrace(trace[i], config, SmallMap()))) {
      ++admitted;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(admitted, 8);
  EXPECT_EQ(rejected, 4);
  fault.OpenGate();
  const std::vector<EngineResult> results = cluster.Drain();
  EXPECT_EQ(static_cast<int>(results.size()), admitted);
  const ClusterStats stats = cluster.Stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.handles_released, stats.handles_created);
  cluster.Shutdown();
  session.Stop();
  TraceMatcher matcher(session.Collect());
  // Rejected submissions never entered the lifecycle: admitted events match
  // the accepted count exactly.
  EXPECT_EQ(matcher.Count(TraceEventKind::kRequestAdmitted), admitted);
}

// --- TPOT decode batch cap --------------------------------------------------

TEST(DisaggregatedTest, TpotSloCapsDecodeBatchSize) {
  const ModelConfig config = TinyConfig();
  const std::vector<Request> trace = SmallTrace(6, 40.0, 1.0, 73);
  ASSERT_GE(trace.size(), 16u);

  TraceSession session;
  FaultInjector fault(0x5eedu);
  fault.GateWorkers();  // all 16 requests queue on the prefill replica first
  ClusterOptions options;
  options.num_replicas = 2;
  options.policy = RoutePolicy::kRoundRobin;
  options.replica_queue_capacity = 256;
  options.server.max_batch_size = 4;
  options.disagg.enabled = true;
  options.disagg.num_prefill = 1;
  // cap = clamp(2.0 / 1.0, 1, 4) = 2: decode batches may not exceed two
  // sequences even though prefill still batches four.
  options.disagg.tpot_slo_ms = 2.0;
  options.disagg.est_decode_step_ms = 1.0;
  options.fault = &fault;
  options.recovery.stall_quarantine_ms = 0.0;  // gated workers are parked, not stalled
  ClusterServer cluster(config, options);
  for (const LoraAdapter& adapter : MakeAdapters(config, 6, 11)) {
    cluster.AddAdapter(adapter);
  }
  cluster.PlaceAdapters(AdapterShares(trace, 6));
  for (size_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(cluster.Submit(EngineRequestFromTrace(trace[i], config, SmallMap())));
  }
  fault.OpenGate();
  const std::vector<EngineResult> results = cluster.Drain();
  EXPECT_EQ(results.size(), 16u);
  const ClusterStats stats = cluster.Stats();
  EXPECT_EQ(stats.handles_released, stats.handles_created);
  cluster.Shutdown();
  session.Stop();
  TraceMatcher matcher(session.Collect());
  EXPECT_EQ(session.dropped_events(), 0);

  // The decode replica's engine never stepped a batch wider than the cap,
  // while the prefill replica (16 requests deep at gate-open) still filled
  // its configured width.
  int64_t prefill_widest = 0;
  for (const TraceEvent& event : matcher.events()) {
    if (event.kind != TraceEventKind::kBatchStepBegin) {
      continue;
    }
    if (event.replica == 1) {
      EXPECT_LE(event.batch_size(), 2) << "decode batch exceeded the TPOT cap";
    } else if (event.replica == 0) {
      prefill_widest = std::max(prefill_widest, event.batch_size());
    }
  }
  EXPECT_EQ(prefill_widest, 4);
}

}  // namespace
}  // namespace vlora

// Unit tests for the two analyses built on the call-graph framework: the
// hot-path purity pass (tools/hot_path.h) and the codec-symmetry pass
// (tools/codec_symmetry.h), each over synthetic source trees with a bad twin
// that must be flagged and a good twin that must stay silent. Snippet text is
// assembled from adjacent string literals so the whole-tree per-line scan
// does not trip on this file's own test data.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/codec_symmetry.h"
#include "tools/hot_path.h"

namespace vlora {
namespace lint {
namespace {

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::string MessagesFor(const std::vector<Finding>& findings, const std::string& rule) {
  std::string out;
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      out += FormatFinding(f) + "\n";
    }
  }
  return out;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) {
    n += f.rule == rule ? 1 : 0;
  }
  return n;
}

// --- Hot-path purity ------------------------------------------------------

// A header annotating Engine::Serve as the single hot root.
std::string HotHeader() {
  return std::string("#ifndef HP_H_\n#define HP_H_\n") +
         "class Engine {\n public:\n  void Serve() VLORA_HOT;\n" +
         "  void Cold();\n private:\n  Buffer buf_;\n};\n" +
         "class Buffer {\n public:\n  void Push(int v);\n};\n#endif\n";
}

HotPathConfig ServeConfig() {
  HotPathConfig config;
  config.roots["Engine::Serve"] = "test root";
  return config;
}

TEST(HotPathTest, FlagsEachViolationClassOnTheBadTwin) {
  const std::string cc = std::string("#include \"hp.h\"\n") +
                         "void Engine::Serve() {\n" +
                         "  int* p = ne" "w int[4];\n" +
                         "  auto q = std::make_unique<int>(3);\n" +
                         "  cv_.Wait(mu_);\n" +
                         "  std::this_thread::sleep" "_for(ms);\n" +
                         "  fprintf(stderr, \"x\");\n" +
                         "  const char* env = get" "env(\"X\");\n" +
                         "  th" "row std::runtime_error(\"no\");\n" +
                         "}\n";
  const std::vector<Finding> findings =
      CheckHotPaths(ServeConfig(), {{"src/x/hp.h", HotHeader()}, {"src/x/hp.cc", cc}});
  EXPECT_EQ(CountRule(findings, "hot-path-alloc"), 2) << MessagesFor(findings, "hot-path-alloc");
  EXPECT_EQ(CountRule(findings, "hot-path-blocking"), 2)
      << MessagesFor(findings, "hot-path-blocking");
  EXPECT_TRUE(HasRule(findings, "hot-path-io"));
  EXPECT_TRUE(HasRule(findings, "hot-path-get" "env"));
  EXPECT_TRUE(HasRule(findings, "hot-path-th" "row"));
  EXPECT_FALSE(HasRule(findings, "hot-root-mismatch"));
}

TEST(HotPathTest, GoodTwinAndColdFunctionsStayQuiet) {
  // The same operations in a function NOT reachable from a root are fine, and
  // a hot function doing pure arithmetic produces nothing.
  const std::string cc = std::string("#include \"hp.h\"\n") +
                         "void Engine::Serve() {\n" +
                         "  int acc = 0;\n" +
                         "  for (int i = 0; i < 4; ++i) {\n    acc += i;\n  }\n" +
                         "  (void)acc;\n" +
                         "}\n" +
                         "void Engine::Cold() {\n" +
                         "  scratch_.push_back(1);\n" +
                         "  th" "row std::runtime_error(\"fine here\");\n" +
                         "}\n";
  const std::vector<Finding> findings =
      CheckHotPaths(ServeConfig(), {{"src/x/hp.h", HotHeader()}, {"src/x/hp.cc", cc}});
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings[0]);
}

TEST(HotPathTest, ViolationsReachThroughCallChainsWithChainInMessage) {
  const std::string cc = std::string("#include \"hp.h\"\n") +
                         "void Buffer::Push(int v) {\n" +
                         "  items_.push_back(v);\n" +
                         "}\n" +
                         "void Engine::Serve() {\n" +
                         "  buf_.Push(1);\n" +
                         "}\n";
  const std::vector<Finding> findings =
      CheckHotPaths(ServeConfig(), {{"src/x/hp.h", HotHeader()}, {"src/x/hp.cc", cc}});
  ASSERT_TRUE(HasRule(findings, "hot-path-alloc"));
  const std::string msgs = MessagesFor(findings, "hot-path-alloc");
  EXPECT_NE(msgs.find("Engine::Serve -> Buffer::Push"), std::string::npos) << msgs;
}

TEST(HotPathTest, BoundariesStopTheTraversal) {
  const std::string cc = std::string("#include \"hp.h\"\n") +
                         "void Buffer::Push(int v) {\n" +
                         "  items_.push_back(v);\n" +
                         "}\n" +
                         "void Engine::Serve() {\n" +
                         "  buf_.Push(1);\n" +
                         "}\n";
  HotPathConfig config = ServeConfig();
  config.boundaries["Buffer::Push"] = "bounded ring, audited by hand";
  const std::vector<Finding> findings =
      CheckHotPaths(config, {{"src/x/hp.h", HotHeader()}, {"src/x/hp.cc", cc}});
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings[0]);
}

TEST(HotPathTest, LambdasInsideHotFunctionsAreScanned) {
  // The hot-path posture inlines lambdas: work dispatched inline still runs
  // on the serving thread.
  const std::string cc = std::string("#include \"hp.h\"\n") +
                         "void Engine::Serve() {\n" +
                         "  auto grow = [&] {\n" +
                         "    scratch_.push_back(1);\n" +
                         "  };\n" +
                         "  grow();\n" +
                         "}\n";
  const std::vector<Finding> findings =
      CheckHotPaths(ServeConfig(), {{"src/x/hp.h", HotHeader()}, {"src/x/hp.cc", cc}});
  EXPECT_TRUE(HasRule(findings, "hot-path-alloc"));
}

TEST(HotPathTest, PerLineAllowSuppresses) {
  const std::string cc = std::string("#include \"hp.h\"\n") +
                         "void Engine::Serve() {\n" +
                         "  scratch_.push_back(1);  // vlora-lint: allow(hot-path-alloc) amortized\n" +
                         "}\n";
  const std::vector<Finding> findings =
      CheckHotPaths(ServeConfig(), {{"src/x/hp.h", HotHeader()}, {"src/x/hp.cc", cc}});
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings[0]);
}

TEST(HotPathTest, RootRegistryAndAnnotationsAreCrossChecked) {
  // Serve is annotated but not registered; Ghost is registered but neither
  // annotated nor defined; the boundary names no known function.
  const std::string cc = std::string("#include \"hp.h\"\n") +
                         "void Engine::Serve() {}\n";
  HotPathConfig config;
  config.roots["Engine::Ghost"] = "gone";
  config.boundaries["Engine::Vanished"] = "gone too";
  const std::vector<Finding> findings =
      CheckHotPaths(config, {{"src/x/hp.h", HotHeader()}, {"src/x/hp.cc", cc}});
  const std::string msgs = MessagesFor(findings, "hot-root-mismatch");
  EXPECT_EQ(CountRule(findings, "hot-root-mismatch"), 3) << msgs;
  EXPECT_NE(msgs.find("'Engine::Serve' is marked VLORA_HOT but missing"), std::string::npos);
  EXPECT_NE(msgs.find("'Engine::Ghost' has no VLORA_HOT annotation"), std::string::npos);
  EXPECT_NE(msgs.find("stale [boundaries] entry 'Engine::Vanished'"), std::string::npos);
}

TEST(HotPathTest, ParseHotPathsReadsBothSections) {
  const std::string toml = std::string("# registry\n[roots]\n") +
                           "\"Engine::Serve\" = \"fast path\"\n" +
                           "[boundaries]\n\"Engine::Cold\" = \"cold by design\"\n";
  HotPathConfig config;
  std::string error;
  ASSERT_TRUE(ParseHotPaths(toml, &config, &error)) << error;
  EXPECT_EQ(config.roots.at("Engine::Serve"), "fast path");
  EXPECT_EQ(config.boundaries.at("Engine::Cold"), "cold by design");
  EXPECT_FALSE(ParseHotPaths("[nope]\nk = v\n", &config, &error));
}

// --- Codec symmetry -------------------------------------------------------

TEST(CodecSymmetryTest, SymmetricPairStaysQuiet) {
  const std::string cc = std::string("#include \"wire.h\"\n") +
                         "void Msg::AppendTo(WireWriter& w) const {\n" +
                         "  w.Str(name);\n  w.SignedVarint(count);\n  w.F64(score);\n" +
                         "}\n" +
                         "bool Msg::Parse(WireReader& r, Msg* out) {\n" +
                         "  return r.Str(&out->name) && r.SignedVarint(&out->count) &&\n" +
                         "         r.F64(&out->score);\n" +
                         "}\n";
  const std::vector<Finding> findings = CheckCodecSymmetry({{"src/net/m.cc", cc}});
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings[0]);
}

TEST(CodecSymmetryTest, FieldOrderDriftIsFlaggedWithPosition) {
  // Decoder reads count before name: classic silent wire corruption.
  const std::string cc = std::string("#include \"wire.h\"\n") +
                         "void Msg::AppendTo(WireWriter& w) const {\n" +
                         "  w.Str(name);\n  w.SignedVarint(count);\n" +
                         "}\n" +
                         "bool Msg::Parse(WireReader& r, Msg* out) {\n" +
                         "  return r.SignedVarint(&out->count) && r.Str(&out->name);\n" +
                         "}\n";
  const std::vector<Finding> findings = CheckCodecSymmetry({{"src/net/m.cc", cc}});
  ASSERT_TRUE(HasRule(findings, "codec-asymmetry"));
  const std::string msgs = MessagesFor(findings, "codec-asymmetry");
  EXPECT_NE(msgs.find("diverge at position 0"), std::string::npos) << msgs;
}

TEST(CodecSymmetryTest, FieldCountDriftIsFlagged) {
  // Encoder grew a trailing field the decoder never learned about.
  const std::string cc = std::string("#include \"wire.h\"\n") +
                         "void Msg::AppendTo(WireWriter& w) const {\n" +
                         "  w.Str(name);\n  w.U64(seed);\n" +
                         "}\n" +
                         "bool Msg::Parse(WireReader& r, Msg* out) {\n" +
                         "  return r.Str(&out->name);\n" +
                         "}\n";
  const std::vector<Finding> findings = CheckCodecSymmetry({{"src/net/m.cc", cc}});
  ASSERT_TRUE(HasRule(findings, "codec-asymmetry"));
  const std::string msgs = MessagesFor(findings, "codec-asymmetry");
  EXPECT_NE(msgs.find("(2 primitives)"), std::string::npos) << msgs;
  EXPECT_NE(msgs.find("(1 primitives)"), std::string::npos) << msgs;
}

TEST(CodecSymmetryTest, HelperCallsSpliceInSourceOrderEvenOnSharedLines) {
  // The decoder calls its helper on the same physical line as inline wire
  // ops; the helper's sequence must splice in at its true position, not after
  // the line's other ops.
  const std::string cc = std::string("#include \"wire.h\"\n") +
                         "void AppendHeader(WireWriter& w, const Msg& m) {\n" +
                         "  w.Str(m.name);\n" +
                         "}\n" +
                         "bool ParseHeader(WireReader& r, Msg* m) {\n" +
                         "  return r.Str(&m->name);\n" +
                         "}\n" +
                         "void Msg::AppendTo(WireWriter& w) const {\n" +
                         "  AppendHeader(w, *this);\n" +
                         "  w.SignedVarint(count);\n" +
                         "}\n" +
                         "bool Msg::Parse(WireReader& r, Msg* out) {\n" +
                         "  return ParseHeader(r, out) && r.SignedVarint(&out->count);\n" +
                         "}\n";
  const std::vector<Finding> findings = CheckCodecSymmetry({{"src/net/m.cc", cc}});
  EXPECT_TRUE(findings.empty()) << FormatFinding(findings[0]);
}

TEST(CodecSymmetryTest, UnpairedCodecsAreFlaggedAndDirectivesExempt) {
  const std::string unpaired = std::string("#include \"wire.h\"\n") +
                               "void AppendOrphan(WireWriter& w, int v) {\n" +
                               "  w.SignedVarint(v);\n" +
                               "}\n";
  const std::vector<Finding> findings = CheckCodecSymmetry({{"src/net/m.cc", unpaired}});
  ASSERT_TRUE(HasRule(findings, "codec-unpaired"));
  EXPECT_NE(MessagesFor(findings, "codec-unpaired").find("expected 'ParseOrphan'"),
            std::string::npos);

  const std::string wrapped = std::string("// vlora-codec: wrapper(AppendOrphan)\n") + unpaired;
  EXPECT_FALSE(HasRule(CheckCodecSymmetry({{"src/net/m.cc", wrapped}}), "codec-unpaired"));
}

TEST(CodecSymmetryTest, PairDirectiveComparesUnconventionalNames) {
  // Frame(…) and Unwrap(…) fit no naming convention; the directive pairs them
  // and the comparison still catches drift.
  const std::string cc = std::string("#include \"wire.h\"\n") +
                         "// vlora-codec: pair(Frame, Unwrap)\n" +
                         "void Frame(WireWriter& w) {\n" +
                         "  w.U16(magic);\n  w.U8(version);\n" +
                         "}\n" +
                         "bool Unwrap(WireReader& r) {\n" +
                         "  return r.U16(&magic) && r.U32(&version);\n" +
                         "}\n";
  const std::vector<Finding> findings = CheckCodecSymmetry({{"src/net/m.cc", cc}});
  ASSERT_TRUE(HasRule(findings, "codec-asymmetry"));
  EXPECT_NE(MessagesFor(findings, "codec-asymmetry").find("diverge at position 1"),
            std::string::npos);
}

TEST(CodecSymmetryTest, WireTouchingFunctionWithNoConventionIsReported) {
  const std::string cc = std::string("#include \"wire.h\"\n") +
                         "void Mangle(WireWriter& w) {\n" +
                         "  w.U8(x);\n" +
                         "}\n";
  const std::vector<Finding> findings = CheckCodecSymmetry({{"src/net/m.cc", cc}});
  ASSERT_TRUE(HasRule(findings, "codec-unpaired"));
  EXPECT_NE(MessagesFor(findings, "codec-unpaired").find("fits no"), std::string::npos);
}

TEST(CodecSymmetryTest, PerLineAllowSuppresses) {
  const std::string cc = std::string("#include \"wire.h\"\n") +
                         "void Msg::AppendTo(WireWriter& w) const {\n" +
                         "  // vlora-lint: allow(codec-asymmetry) versioned field, reader gated\n" +
                         "  w.Str(name);\n  w.U64(extra);\n" +
                         "}\n" +
                         "bool Msg::Parse(WireReader& r, Msg* out) {\n" +
                         "  return r.Str(&out->name);\n" +
                         "}\n";
  EXPECT_FALSE(HasRule(CheckCodecSymmetry({{"src/net/m.cc", cc}}), "codec-asymmetry"));
}

}  // namespace
}  // namespace lint
}  // namespace vlora

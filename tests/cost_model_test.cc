#include <gtest/gtest.h>

#include "src/gpusim/cost_model.h"

namespace vlora {
namespace {

TEST(CostModelTest, PrefillIsUnderOneMsPerToken) {
  GpuCostModel cost;
  for (int64_t tokens : {128, 256, 1024, 4096}) {
    EXPECT_LT(cost.PrefillMs(tokens) / static_cast<double>(tokens), 1.0) << tokens;
  }
  EXPECT_EQ(cost.PrefillMs(0), 0.0);
}

TEST(CostModelTest, DecodeStepInPaperBand) {
  GpuCostModel cost;
  // §6.2: 30-50 ms per output token for realistic batches.
  for (int64_t batch : {1, 8, 32, 64}) {
    const double step = cost.DecodeStepMs(batch);
    EXPECT_GE(step, 30.0) << batch;
    EXPECT_LE(step, 50.0) << batch;
  }
  EXPECT_EQ(cost.DecodeStepMs(0), 0.0);
}

TEST(CostModelTest, UnmergedExtraMatchesFig6Band) {
  GpuCostModel cost;
  // The Fig 6 workload: 2-4 requests of 128-1024 tokens. The extra latency of
  // the baseline operators must land in the reported 27-140 ms band at the
  // heavy end and Einsum must peak near 140 ms.
  const double einsum_heavy = cost.UnmergedExtraMs(OperatorKind::kEinsum, 4 * 1024, 4);
  EXPECT_NEAR(einsum_heavy, 140.0, 15.0);
  const double punica_heavy = cost.UnmergedExtraMs(OperatorKind::kPunica, 4 * 1024, 4);
  const double slora_heavy = cost.UnmergedExtraMs(OperatorKind::kSlora, 4 * 1024, 4);
  EXPECT_GT(einsum_heavy, punica_heavy);
  EXPECT_GT(punica_heavy, slora_heavy);
  EXPECT_GT(slora_heavy, 27.0);
}

TEST(CostModelTest, AtmmSpeedupsMatchFig17) {
  GpuCostModel cost;
  // Prefill-heavy shapes: §6.3.2 reports 2.7x / 2.3x / 3.4x mean speedups
  // over S-LoRA / Punica / dLoRA(Einsum).
  const int64_t tokens = 4096;
  const double atmm = cost.UnmergedExtraMs(OperatorKind::kAtmm, tokens, 4);
  const double slora = cost.UnmergedExtraMs(OperatorKind::kSlora, tokens, 4);
  const double punica = cost.UnmergedExtraMs(OperatorKind::kPunica, tokens, 4);
  const double einsum = cost.UnmergedExtraMs(OperatorKind::kEinsum, tokens, 4);
  EXPECT_NEAR(slora / atmm, 2.7, 0.8);
  EXPECT_NEAR(punica / atmm, 2.6, 0.9);
  EXPECT_NEAR(einsum / atmm, 3.4, 1.0);
}

TEST(CostModelTest, DecodeStageAtmmComparableToSlora) {
  GpuCostModel cost;
  // §6.3.2: at decode shapes ATMM ≈ S-LoRA, 4.5x faster than dLoRA and 2.6x
  // than Punica.
  const int64_t tokens = 4;  // four decode rows
  const double atmm = cost.UnmergedExtraMs(OperatorKind::kAtmm, tokens, 4);
  const double slora = cost.UnmergedExtraMs(OperatorKind::kSlora, tokens, 4);
  const double punica = cost.UnmergedExtraMs(OperatorKind::kPunica, tokens, 4);
  const double einsum = cost.UnmergedExtraMs(OperatorKind::kEinsum, tokens, 4);
  EXPECT_NEAR(slora / atmm, 1.0, 0.2);
  EXPECT_NEAR(einsum / atmm, 4.5, 1.0);
  EXPECT_NEAR(punica / atmm, 2.6, 0.7);
}

TEST(CostModelTest, SwitchCostsMatchPaper) {
  GpuCostModel cost;
  EXPECT_LT(cost.SwiftSwitchMs(), 10.0);   // §4.4.1: < 10 ms
  EXPECT_NEAR(cost.DloraSwitchMs(), 53.0, 1.0);
  EXPECT_GT(cost.DloraSwitchMs() / cost.SwiftSwitchMs(), 5.0);  // > 5x speedup
}

TEST(CostModelTest, SwapCostsMatchPaper) {
  GpuCostModel cost;
  EXPECT_NEAR(cost.AdapterSwapMs(), 15.0, 1.0);              // §3.1
  EXPECT_NEAR(cost.PrecomputedDeltaSwapMs(), 1000.0, 50.0);  // §4.4.1
}

TEST(CostModelTest, LargerModelsCostMore) {
  GpuCostModel qwen{QwenVl7bConfig()};
  GpuCostModel llava13{Llava13bConfig()};
  EXPECT_NEAR(qwen.model_scale(), 1.0, 1e-9);
  EXPECT_GT(llava13.model_scale(), 1.5);
  EXPECT_GT(llava13.DecodeStepMs(8), qwen.DecodeStepMs(8));
  EXPECT_GT(llava13.PrefillMs(1024), qwen.PrefillMs(1024));
}

TEST(CostModelTest, ExtraGrowsWithAdapterCount) {
  GpuCostModel cost;
  EXPECT_GT(cost.UnmergedExtraMs(OperatorKind::kAtmm, 100, 8),
            cost.UnmergedExtraMs(OperatorKind::kAtmm, 100, 1));
  EXPECT_EQ(cost.UnmergedExtraMs(OperatorKind::kAtmm, 0, 4), 0.0);
  EXPECT_EQ(cost.UnmergedExtraMs(OperatorKind::kAtmm, 100, 0), 0.0);
}

TEST(CostModelTest, OperatorNames) {
  EXPECT_STREQ(OperatorKindName(OperatorKind::kAtmm), "ATMM");
  EXPECT_STREQ(OperatorKindName(OperatorKind::kEinsum), "Einsum");
}

}  // namespace
}  // namespace vlora

#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/engine/tokenizer.h"

namespace vlora {
namespace {

TEST(TokenizerTest, RoundTripExactOnPrintable) {
  Tokenizer tokenizer;
  for (const std::string& text :
       {std::string("how many cars are in the image"),
        std::string("A boy wearing a red sweater lost at the corner"),
        std::string("count: 7 (seven)!"), std::string("  leading and   inner spaces "),
        std::string("MiXeD CaSe & punctuation?!"), std::string("line one\nline two")}) {
    const std::vector<int32_t> tokens = tokenizer.Encode(text);
    EXPECT_EQ(tokenizer.Decode(tokens), text) << text;
  }
}

TEST(TokenizerTest, WordsCompressBetterThanBytes) {
  Tokenizer tokenizer;
  const std::string text = "how many cars are in the image";
  const std::vector<int32_t> tokens = tokenizer.Encode(text);
  // Greedy longest-match uses the word vocabulary, far fewer tokens than the
  // byte count.
  EXPECT_LT(tokens.size(), text.size() / 2);
}

TEST(TokenizerTest, Deterministic) {
  Tokenizer a;
  Tokenizer b;
  EXPECT_EQ(a.Encode("detect the traffic light"), b.Encode("detect the traffic light"));
  EXPECT_EQ(a.vocab_size(), b.vocab_size());
}

TEST(TokenizerTest, ReservedTokens) {
  Tokenizer tokenizer;
  EXPECT_EQ(Tokenizer::kPadToken, 0);
  EXPECT_EQ(Tokenizer::kEosToken, 1);
  EXPECT_EQ(Tokenizer::kUnkToken, 2);
  // Control tokens decode to nothing.
  EXPECT_EQ(tokenizer.Decode({Tokenizer::kPadToken, Tokenizer::kEosToken}), "");
}

TEST(TokenizerTest, UnencodableBytesBecomeUnk) {
  Tokenizer tokenizer;
  const std::string text = "ok\x01\x02";
  const std::vector<int32_t> tokens = tokenizer.Encode(text);
  EXPECT_EQ(std::count(tokens.begin(), tokens.end(), Tokenizer::kUnkToken), 2);
  EXPECT_EQ(tokenizer.Decode(tokens), "ok\xEF\xBF\xBD\xEF\xBF\xBD");
}

TEST(TokenizerTest, FitsSmallModelVocab) {
  Tokenizer tokenizer;
  const ModelConfig config = SmallConfig();
  EXPECT_LE(tokenizer.vocab_size(), config.vocab_size);
  for (int32_t token : tokenizer.Encode("find the person riding a bicycle near the bus")) {
    EXPECT_GE(token, 0);
    EXPECT_LT(token, config.vocab_size);
  }
}

TEST(SamplingTest, ZeroTemperatureIsGreedyAndDeterministic) {
  const ModelConfig config = TinyConfig();
  auto run = [&](SamplingParams params) {
    InferenceEngine engine(config, EngineOptions{});
    EngineRequest request;
    request.id = 1;
    request.prompt_tokens = {5, 9, 23, 17};
    request.max_new_tokens = 6;
    request.eos_token = -1;
    request.sampling = params;
    return engine.RunToCompletion(request).output_tokens;
  };
  EXPECT_EQ(run(SamplingParams{}), run(SamplingParams{}));
}

TEST(SamplingTest, TemperatureSamplingIsSeedDeterministic) {
  const ModelConfig config = TinyConfig();
  auto run = [&](uint64_t seed) {
    InferenceEngine engine(config, EngineOptions{});
    EngineRequest request;
    request.id = 1;
    request.prompt_tokens = {5, 9, 23, 17};
    request.max_new_tokens = 8;
    request.eos_token = -1;
    request.sampling.temperature = 1.0f;
    request.sampling.top_k = 20;
    request.sampling.seed = seed;
    return engine.RunToCompletion(request).output_tokens;
  };
  EXPECT_EQ(run(42), run(42));
  // Different seeds eventually diverge.
  EXPECT_NE(run(42), run(43));
}

TEST(SamplingTest, HighTemperatureDiversifiesOutputs) {
  const ModelConfig config = TinyConfig();
  InferenceEngine engine(config, EngineOptions{});
  std::set<std::vector<int32_t>> outputs;
  for (int i = 0; i < 5; ++i) {
    EngineRequest request;
    request.id = i;
    request.prompt_tokens = {5, 9, 23, 17};
    request.max_new_tokens = 6;
    request.eos_token = -1;
    request.sampling.temperature = 2.0f;
    request.sampling.top_k = 64;
    request.sampling.seed = static_cast<uint64_t>(i);
    outputs.insert(engine.RunToCompletion(request).output_tokens);
  }
  EXPECT_GT(outputs.size(), 1u);
}

TEST(SamplingTest, TopKOneIsGreedy) {
  const ModelConfig config = TinyConfig();
  auto run = [&](float temperature, int top_k) {
    InferenceEngine engine(config, EngineOptions{});
    EngineRequest request;
    request.id = 1;
    request.prompt_tokens = {5, 9, 23, 17};
    request.max_new_tokens = 5;
    request.eos_token = -1;
    request.sampling.temperature = temperature;
    request.sampling.top_k = top_k;
    return engine.RunToCompletion(request).output_tokens;
  };
  EXPECT_EQ(run(1.5f, 1), run(0.0f, 40));  // top-k = 1 degenerates to argmax
}

}  // namespace
}  // namespace vlora

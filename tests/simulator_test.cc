#include <gtest/gtest.h>

#include "src/baselines/policies.h"
#include "src/core/scheduler.h"
#include "src/gpusim/simulator.h"
#include "src/workload/trace_gen.h"

namespace vlora {
namespace {

std::vector<Request> SmallTrace(double rate, double skew, int adapters, uint64_t seed = 1,
                                double duration = 20.0) {
  TraceOptions options;
  options.app = AppKind::kVisualRetrieval;
  options.duration_s = duration;
  options.rate_rps = rate;
  options.skewness = skew;
  options.num_adapters = adapters;
  options.seed = seed;
  return GenerateTrace(options);
}

SimOptions DefaultSim() {
  SimOptions options;
  options.max_batch_size = 32;
  options.gpu_adapter_slots = 8;
  return options;
}

TEST(SimulatorTest, CompletesEveryRequest) {
  const std::vector<Request> trace = SmallTrace(3.0, 0.6, 4);
  for (const PolicyFactory& factory :
       {PolicyFactory(MakeSloraPolicy), PolicyFactory(MakePunicaPolicy),
        PolicyFactory(MakeDloraPolicy), PolicyFactory([] { return MakeVloraPolicy(); }),
        PolicyFactory(MakeMergeOnlyPolicy), PolicyFactory(MakeUnmergeOnlyPolicy)}) {
    const SimMetrics metrics = RunSimulation(trace, factory, DefaultSim());
    EXPECT_EQ(metrics.completed, static_cast<int64_t>(trace.size()));
    EXPECT_GT(metrics.avg_token_latency_ms, 0.0);
    EXPECT_GT(metrics.makespan_s, 0.0);
  }
}

TEST(SimulatorTest, LatencyPercentilesOrdered) {
  const std::vector<Request> trace = SmallTrace(4.0, 0.6, 4);
  const SimMetrics metrics = RunSimulation(trace, [] { return MakeVloraPolicy(); }, DefaultSim());
  EXPECT_LE(metrics.p50_latency_ms, metrics.p90_latency_ms);
  EXPECT_LE(metrics.p90_latency_ms, metrics.p99_latency_ms);
  EXPECT_GT(metrics.avg_request_latency_ms, metrics.avg_token_latency_ms);
}

TEST(SimulatorTest, VloraBeatsBaselinesOnSkewedWorkload) {
  // The headline Fig 14 relationship at a load near saturation.
  const std::vector<Request> trace = SmallTrace(5.0, 0.6, 8, 3, 30.0);
  SimOptions options = DefaultSim();
  const double vlora =
      RunSimulation(trace, [] { return MakeVloraPolicy(); }, options).avg_token_latency_ms;
  const double slora = RunSimulation(trace, MakeSloraPolicy, options).avg_token_latency_ms;
  const double punica = RunSimulation(trace, MakePunicaPolicy, options).avg_token_latency_ms;
  const double dlora = RunSimulation(trace, MakeDloraPolicy, options).avg_token_latency_ms;
  EXPECT_LT(vlora, slora);
  EXPECT_LT(vlora, punica);
  EXPECT_LT(vlora, dlora);
}

TEST(SimulatorTest, MergeFriendlyWorkloadReducesOperatorExtra) {
  // Single adapter, merge-friendly: V-LoRA pays strictly less operator extra
  // than unmerge-only S-LoRA. (Algorithm 1 gates merged mode on
  // |R_merge| > MaxBS/2, so the gap is modest below saturation.)
  const std::vector<Request> trace = SmallTrace(4.0, 1.0, 1, 5);
  const SimMetrics vlora =
      RunSimulation(trace, [] { return MakeVloraPolicy(); }, DefaultSim());
  const SimMetrics slora = RunSimulation(trace, MakeSloraPolicy, DefaultSim());
  EXPECT_LT(vlora.unmerged_extra_ms, slora.unmerged_extra_ms);
}

TEST(SimulatorTest, SaturatedSkewedLoadTriggersMergedIterations) {
  // At saturation the queue exceeds MaxBS/2 for the hot adapter, so Algorithm
  // 1's merged / mixture branches fire and most tokens skip the bypass.
  const std::vector<Request> trace = SmallTrace(20.0, 1.0, 1, 5, 15.0);
  SimOptions options = DefaultSim();
  options.record_iterations = true;
  const SimMetrics vlora = RunSimulation(trace, [] { return MakeVloraPolicy(); }, options);
  int64_t merge_like = 0;
  for (const IterationRecord& record : vlora.iterations) {
    if (record.mode != InferMode::kUnmerged) {
      ++merge_like;
    }
  }
  EXPECT_GT(merge_like, static_cast<int64_t>(vlora.iterations.size()) / 2);
  const SimMetrics slora = RunSimulation(trace, MakeSloraPolicy, options);
  EXPECT_LT(vlora.unmerged_extra_ms, slora.unmerged_extra_ms * 0.5);
}

TEST(SimulatorTest, MultiGpuIncreasesThroughput) {
  // Saturating load so throughput is capacity-bound (Table 3).
  const std::vector<Request> trace = SmallTrace(40.0, 0.6, 8, 7, 30.0);
  SimOptions options = DefaultSim();
  options.num_gpus = 1;
  const double t1 =
      RunSimulation(trace, [] { return MakeVloraPolicy(); }, options).throughput_rps;
  options.num_gpus = 2;
  const double t2 =
      RunSimulation(trace, [] { return MakeVloraPolicy(); }, options).throughput_rps;
  options.num_gpus = 4;
  const double t4 =
      RunSimulation(trace, [] { return MakeVloraPolicy(); }, options).throughput_rps;
  EXPECT_GT(t2, t1 * 1.5);
  EXPECT_GT(t4, t2 * 1.5);
}

TEST(SimulatorTest, TaskHeadCutsAnalyticsLatency) {
  TraceOptions trace_options;
  trace_options.app = AppKind::kVideoAnalytics;
  trace_options.duration_s = 20.0;
  trace_options.rate_rps = 4.0;
  trace_options.num_adapters = 4;
  const std::vector<Request> trace = GenerateTrace(trace_options);
  const SimMetrics with_head =
      RunSimulation(trace, [] { return MakeVloraPolicy(); }, DefaultSim());
  const SimMetrics without_head = RunSimulation(trace, MakeSloraPolicy, DefaultSim());
  // The vision task head resolves closed-set outputs in one round instead of
  // 5-10 decode rounds; analytics latency collapses (Fig 16).
  EXPECT_LT(with_head.avg_request_latency_ms, without_head.avg_request_latency_ms * 0.7);
}

TEST(SimulatorTest, IterationRecordingCapturesSwitches) {
  const std::vector<Request> trace = SmallTrace(4.0, 0.7, 4, 9);
  SimOptions options = DefaultSim();
  options.record_iterations = true;
  const SimMetrics metrics = RunSimulation(trace, MakeDloraPolicy, options);
  EXPECT_FALSE(metrics.iterations.empty());
  double recorded_switch_ms = 0.0;
  for (const IterationRecord& record : metrics.iterations) {
    EXPECT_GE(record.duration_ms, 0.0);
    EXPECT_GE(record.batch_size, 1);
    recorded_switch_ms += record.switch_ms;
  }
  if (metrics.mode_switches > 0) {
    EXPECT_GT(recorded_switch_ms, 0.0);
  }
}

TEST(SimulatorTest, AdapterPressureCausesSwaps) {
  // More adapters than GPU slots forces swapping (Fig 23's regime).
  const std::vector<Request> trace = SmallTrace(4.0, 0.2, 16, 11, 30.0);
  SimOptions options = DefaultSim();
  options.gpu_adapter_slots = 4;
  const SimMetrics slora = RunSimulation(trace, MakeSloraPolicy, options);
  EXPECT_GT(slora.adapter_swaps, 0);
  EXPECT_GT(slora.visible_swap_ms, 0.0);
  // V-LoRA's asynchronous swap hides most of the visible cost.
  const SimMetrics vlora = RunSimulation(trace, [] { return MakeVloraPolicy(); }, options);
  EXPECT_LT(vlora.visible_swap_ms, slora.visible_swap_ms);
}

TEST(SimulatorTest, SloViolationRateBounded) {
  const std::vector<Request> trace = SmallTrace(2.0, 0.6, 4, 13);
  const SimMetrics metrics =
      RunSimulation(trace, [] { return MakeVloraPolicy(); }, DefaultSim());
  EXPECT_GE(metrics.slo_violation_rate, 0.0);
  EXPECT_LE(metrics.slo_violation_rate, 1.0);
}

TEST(BaselinePolicyTest, SloraAlwaysUnmerged) {
  auto policy = MakeSloraPolicy();
  std::vector<RequestView> queue;
  for (int i = 0; i < 6; ++i) {
    RequestView view;
    view.index = i;
    view.adapter_id = 0;  // fully merge-friendly, but S-LoRA cannot merge
    view.wait_ms = 10.0 * i;
    view.arrival_wait_ms = 10.0 * i;
    queue.push_back(view);
  }
  PolicyContext context;
  context.max_batch_size = 4;
  const IterationPlan plan = policy->Plan(queue, context);
  EXPECT_EQ(plan.mode, InferMode::kUnmerged);
  EXPECT_EQ(plan.selected.size(), 4u);
  // Longest-waiting requests picked first.
  EXPECT_EQ(plan.selected[0], 5);
}

TEST(BaselinePolicyTest, DloraMergesOnDominantGroup) {
  auto policy = MakeDloraPolicy();
  std::vector<RequestView> queue;
  for (int i = 0; i < 5; ++i) {
    RequestView view;
    view.index = i;
    view.adapter_id = 0;
    queue.push_back(view);
  }
  RequestView other;
  other.index = 5;
  other.adapter_id = 1;
  queue.push_back(other);
  PolicyContext context;
  context.max_batch_size = 8;
  const IterationPlan plan = policy->Plan(queue, context);
  EXPECT_EQ(plan.mode, InferMode::kMerged);
  EXPECT_EQ(plan.merged_adapter, 0);
  EXPECT_EQ(plan.selected.size(), 5u);
}

TEST(BaselinePolicyTest, DloraUnmergesOnEvenSpread) {
  auto policy = MakeDloraPolicy();
  std::vector<RequestView> queue;
  for (int i = 0; i < 6; ++i) {
    RequestView view;
    view.index = i;
    view.adapter_id = i % 3;
    queue.push_back(view);
  }
  PolicyContext context;
  context.max_batch_size = 8;
  const IterationPlan plan = policy->Plan(queue, context);
  EXPECT_EQ(plan.mode, InferMode::kUnmerged);
  EXPECT_EQ(plan.selected.size(), 6u);
}

TEST(BaselinePolicyTest, MergeOnlySticksWithCurrentAdapter) {
  auto policy = MakeMergeOnlyPolicy();
  std::vector<RequestView> queue;
  for (int i = 0; i < 3; ++i) {
    RequestView view;
    view.index = i;
    view.adapter_id = 1;
    queue.push_back(view);
  }
  RequestView hot;
  hot.index = 3;
  hot.adapter_id = 2;
  queue.push_back(hot);
  PolicyContext context;
  context.max_batch_size = 8;
  context.current_mode = InferMode::kMerged;
  context.merged_adapter = 2;  // currently merged on the minority adapter
  const IterationPlan plan = policy->Plan(queue, context);
  EXPECT_EQ(plan.mode, InferMode::kMerged);
  EXPECT_EQ(plan.merged_adapter, 2);  // no thrash: 2 still has work
  EXPECT_EQ(plan.selected.size(), 1u);
}

}  // namespace
}  // namespace vlora

#include <gtest/gtest.h>

#include "src/core/lora_trainer.h"
#include "src/engine/engine.h"

namespace vlora {
namespace {

ModelConfig TrainerConfig() {
  ModelConfig config = TinyConfig();
  config.num_layers = 2;
  config.d_model = 32;
  config.num_heads = 4;
  config.d_ff = 64;
  config.vocab_size = 64;
  return config;
}

std::vector<int32_t> Prompt(int64_t len, uint64_t seed, int64_t vocab) {
  Rng rng(seed);
  std::vector<int32_t> tokens;
  for (int64_t i = 0; i < len; ++i) {
    tokens.push_back(static_cast<int32_t>(rng.NextInt(2, vocab - 1)));
  }
  return tokens;
}

TEST(LoraTrainerTest, FinalHiddenMatchesEngine) {
  const ModelConfig config = TrainerConfig();
  EngineOptions options;
  options.seed = 77;
  InferenceEngine engine(config, options);
  Rng rng(5);
  LoraAdapter adapter = LoraAdapter::Random("t", config.num_layers, config.d_model, 4, rng,
                                            0.05f, {LoraTarget::kWo});
  const int id = engine.RegisterAdapter(&adapter);
  engine.SetMode(InferMode::kUnmerged);

  const std::vector<int32_t> prompt = Prompt(9, 3, config.vocab_size);
  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = prompt;
  request.adapter_id = id;
  request.max_new_tokens = 1;
  request.eos_token = -1;
  request.capture_final_hidden = true;
  const EngineResult result = engine.RunToCompletion(request);

  LoraTrainer trainer(&engine.model(), &adapter);
  const std::vector<float> hidden = trainer.FinalHidden(prompt);
  ASSERT_EQ(hidden.size(), result.final_hidden.size());
  for (size_t i = 0; i < hidden.size(); ++i) {
    EXPECT_NEAR(hidden[i], result.final_hidden[i], 1e-4f) << i;
  }
}

TEST(LoraTrainerTest, GradientsMatchFiniteDifferences) {
  const ModelConfig config = TrainerConfig();
  InferenceEngine engine(config, EngineOptions{.seed = 99});
  Rng rng(7);
  LoraAdapter adapter = LoraAdapter::Random("g", config.num_layers, config.d_model, 4, rng,
                                            0.1f, {LoraTarget::kWo});
  LoraTrainer trainer(&engine.model(), &adapter);

  VisionTaskHead head;
  head.task = VisionTask::kImageClassification;
  head.weight = Tensor::Random(Shape(config.d_model, 3), rng, 0.2f);

  LoraTrainExample example;
  example.prompt_tokens = Prompt(7, 11, config.vocab_size);
  example.label = 1;

  // Analytic gradients via one zero-lr "training" pass: recompute directly.
  LoraLayerWeights& factors = adapter.layer(LoraTarget::kWo, config.num_layers - 1);
  // Use the public API: run Train with 0 epochs is useless; instead compute
  // analytic grads by finite-difference cross-check through ExampleLoss on a
  // few sampled coordinates, using an epsilon small enough for fp32.
  // We obtain analytic gradients by a single SGD step with a tiny lr and
  // reading off the parameter delta: w' = w - lr * g  =>  g = (w - w') / lr.
  const float lr = 1e-3f;
  Tensor down_before = factors.down.Clone();
  Tensor up_before = factors.up.Clone();
  Tensor head_before = head.weight.Clone();
  LoraTrainerOptions train_options;
  train_options.num_classes = 3;
  train_options.epochs = 1;
  train_options.factor_lr = lr;
  train_options.head_lr = lr;
  trainer.Train({example}, head, train_options);

  auto analytic = [&](Tensor& before, const Tensor& after, int64_t i, int64_t j) {
    return (before.at(i, j) - after.at(i, j)) / lr;
  };
  // Restore parameters for the finite-difference probes.
  Tensor down_after = factors.down.Clone();
  Tensor up_after = factors.up.Clone();
  Tensor head_after = head.weight.Clone();
  factors.down = down_before.Clone();
  factors.up = up_before.Clone();
  head.weight = head_before.Clone();

  const float eps = 2e-3f;
  Rng pick(13);
  // Probe a handful of coordinates in each parameter.
  for (int probe = 0; probe < 4; ++probe) {
    const int64_t i = pick.NextInt(0, config.d_model - 1);
    const int64_t r = pick.NextInt(0, adapter.rank() - 1);
    const float g = analytic(down_before, down_after, i, r);
    const float saved = factors.down.at(i, r);
    factors.down.at(i, r) = saved + eps;
    const double plus = trainer.ExampleLoss(example, head);
    factors.down.at(i, r) = saved - eps;
    const double minus = trainer.ExampleLoss(example, head);
    factors.down.at(i, r) = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(g, numeric, std::max(5e-3, 0.1 * std::abs(numeric)))
        << "down(" << i << "," << r << ")";
  }
  for (int probe = 0; probe < 4; ++probe) {
    const int64_t r = pick.NextInt(0, adapter.rank() - 1);
    const int64_t i = pick.NextInt(0, config.d_model - 1);
    const float g = analytic(up_before, up_after, r, i);
    const float saved = factors.up.at(r, i);
    factors.up.at(r, i) = saved + eps;
    const double plus = trainer.ExampleLoss(example, head);
    factors.up.at(r, i) = saved - eps;
    const double minus = trainer.ExampleLoss(example, head);
    factors.up.at(r, i) = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(g, numeric, std::max(5e-3, 0.1 * std::abs(numeric)))
        << "up(" << r << "," << i << ")";
  }
  for (int probe = 0; probe < 4; ++probe) {
    const int64_t i = pick.NextInt(0, config.d_model - 1);
    const int64_t c = pick.NextInt(0, 2);
    const float g = analytic(head_before, head_after, i, c);
    const float saved = head.weight.at(i, c);
    head.weight.at(i, c) = saved + eps;
    const double plus = trainer.ExampleLoss(example, head);
    head.weight.at(i, c) = saved - eps;
    const double minus = trainer.ExampleLoss(example, head);
    head.weight.at(i, c) = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(g, numeric, std::max(5e-3, 0.1 * std::abs(numeric)))
        << "head(" << i << "," << c << ")";
  }
}

TEST(LoraTrainerTest, TrainingReducesLossAndFitsData) {
  const ModelConfig config = TrainerConfig();
  InferenceEngine engine(config, EngineOptions{.seed = 55});
  Rng rng(9);
  LoraAdapter adapter = LoraAdapter::Random("f", config.num_layers, config.d_model, 4, rng,
                                            0.05f, {LoraTarget::kWo});
  LoraTrainer trainer(&engine.model(), &adapter);

  VisionTaskHead head;
  head.task = VisionTask::kVideoClassification;
  head.weight = Tensor::Random(Shape(config.d_model, 2), rng, 0.05f);

  // Two classes anchored to two prompt prefixes with varying suffixes.
  std::vector<LoraTrainExample> examples;
  for (int cls = 0; cls < 2; ++cls) {
    for (int i = 0; i < 5; ++i) {
      LoraTrainExample example;
      example.prompt_tokens = Prompt(8, 100 + static_cast<uint64_t>(cls), config.vocab_size);
      example.prompt_tokens.push_back(
          static_cast<int32_t>(2 + (7 * i + cls) % (config.vocab_size - 2)));
      example.label = cls;
      examples.push_back(std::move(example));
    }
  }

  LoraTrainerOptions options;
  options.num_classes = 2;
  options.epochs = 25;
  const LoraTrainResult result = trainer.Train(examples, head, options);
  EXPECT_LT(result.final_loss, result.initial_loss);
  EXPECT_LT(result.final_loss, 0.2);
  EXPECT_GE(result.train_accuracy, 0.9);
}

TEST(LoraTrainerTest, TrainedAdapterServesThroughEngine) {
  const ModelConfig config = TrainerConfig();
  InferenceEngine engine(config, EngineOptions{.seed = 21});
  Rng rng(33);
  LoraAdapter adapter = LoraAdapter::Random("serve", config.num_layers, config.d_model, 4, rng,
                                            0.05f, {LoraTarget::kWo});
  LoraTrainer trainer(&engine.model(), &adapter);
  VisionTaskHead head;
  head.task = VisionTask::kImageClassification;
  head.weight = Tensor::Random(Shape(config.d_model, 2), rng, 0.05f);

  std::vector<LoraTrainExample> examples;
  for (int cls = 0; cls < 2; ++cls) {
    for (int i = 0; i < 4; ++i) {
      LoraTrainExample example;
      example.prompt_tokens = Prompt(8, 200 + static_cast<uint64_t>(cls), config.vocab_size);
      example.prompt_tokens.push_back(static_cast<int32_t>(3 + 5 * i));
      example.label = cls;
      examples.push_back(std::move(example));
    }
  }
  LoraTrainerOptions options;
  options.num_classes = 2;
  options.epochs = 25;
  const LoraTrainResult trained = trainer.Train(examples, head, options);
  ASSERT_GE(trained.train_accuracy, 0.9);

  adapter.SetTaskHead(std::move(head));
  const int id = engine.RegisterAdapter(&adapter);
  engine.SetMode(InferMode::kUnmerged);
  int correct = 0;
  for (size_t e = 0; e < examples.size(); ++e) {
    EngineRequest request;
    request.id = static_cast<int64_t>(e);
    request.prompt_tokens = examples[e].prompt_tokens;
    request.adapter_id = id;
    request.use_task_head = true;
    request.eos_token = -1;
    const EngineResult result = engine.RunToCompletion(request);
    correct += result.head_option == examples[e].label ? 1 : 0;
  }
  EXPECT_GE(correct, static_cast<int>(examples.size()) - 1);
}

}  // namespace
}  // namespace vlora

#include <gtest/gtest.h>

#include "src/kernels/request_mapping.h"

namespace vlora {
namespace {

TEST(RequestTypeMatrixTest, OneHotPerSegment) {
  std::vector<LoraSegment> segments = {{0, 2, 1}, {2, 5, 0}};
  const Tensor mapping = BuildRequestTypeMatrix(segments, 5, 2);
  EXPECT_EQ(mapping.shape(), Shape(5, 2));
  EXPECT_EQ(mapping.at(0, 1), 1.0f);
  EXPECT_EQ(mapping.at(0, 0), 0.0f);
  EXPECT_EQ(mapping.at(4, 0), 1.0f);
  EXPECT_EQ(mapping.at(4, 1), 0.0f);
}

TEST(RequestTypeMatrixTest, GapsLeaveZeroRows) {
  std::vector<LoraSegment> segments = {{0, 1, 0}, {3, 4, 0}};
  const Tensor mapping = BuildRequestTypeMatrix(segments, 4, 1);
  EXPECT_EQ(mapping.at(1, 0), 0.0f);
  EXPECT_EQ(mapping.at(2, 0), 0.0f);
}

TEST(RequestTypeMatrixTest, OverlapAccumulates) {
  // The deLoRA pattern: the same rows route through two branches.
  std::vector<LoraSegment> segments = {{0, 2, 0}, {0, 2, 1}};
  const Tensor mapping = BuildRequestTypeMatrix(segments, 2, 2);
  EXPECT_EQ(mapping.at(0, 0), 1.0f);
  EXPECT_EQ(mapping.at(0, 1), 1.0f);
}

struct MappingFixture {
  MappingFixture() : rng(211) {
    for (int64_t rank : {8, 16}) {
      downs.push_back(Tensor::Random(Shape(48, rank), rng, 0.3f));
      ups.push_back(Tensor::Random(Shape(rank, 48), rng, 0.3f));
    }
    for (size_t i = 0; i < downs.size(); ++i) {
      views.push_back(AdapterWeightsView{.down = &downs[i], .up = &ups[i], .scaling = 1.0f});
    }
  }
  Rng rng;
  std::vector<Tensor> downs;
  std::vector<Tensor> ups;
  std::vector<AdapterWeightsView> views;
};

TEST(MappedLoraOperatorTest, AgreesWithSegmentedAtmm) {
  MappingFixture fx;
  Tensor x = Tensor::Random(Shape(14, 48), fx.rng, 1.0f);
  std::vector<LoraSegment> segments = {{0, 4, 0}, {4, 9, 1}, {9, 14, 0}};

  AtmmDispatcher dispatcher;
  AtmmLoraOperator segmented(&dispatcher);
  Tensor y_segmented = Tensor::Zeros(x.shape());
  segmented.Run(x, segments, fx.views, y_segmented);

  MappedLoraOperator mapped;
  Tensor y_mapped = Tensor::Zeros(x.shape());
  mapped.Run(x, segments, fx.views, y_mapped);

  EXPECT_LT(Tensor::MaxAbsDiff(y_segmented, y_mapped), 1e-3f);
}

TEST(MappedLoraOperatorTest, HandlesDeLoraOverlap) {
  MappingFixture fx;
  Tensor x = Tensor::Random(Shape(6, 48), fx.rng, 1.0f);
  std::vector<AdapterWeightsView> views = {fx.views[0], fx.views[0]};
  views[1].scaling = -1.0f;
  std::vector<LoraSegment> segments = {{0, 6, 0}, {0, 6, 1}};
  MappedLoraOperator mapped;
  Tensor y = Tensor::Zeros(x.shape());
  mapped.Run(x, segments, views, y);
  // +adapter and -adapter over the same rows cancel exactly.
  EXPECT_LT(Tensor::MaxAbsDiff(y, Tensor::Zeros(x.shape())), 1e-3f);
}

TEST(MappedLoraOperatorTest, SkipsUnusedAdapters) {
  MappingFixture fx;
  Tensor x = Tensor::Random(Shape(5, 48), fx.rng, 1.0f);
  // Only adapter 1 appears; adapter 0 must contribute nothing (and in
  // particular must not crash on a d-model mismatch check).
  std::vector<LoraSegment> segments = {{0, 5, 1}};
  AtmmDispatcher dispatcher;
  AtmmLoraOperator segmented(&dispatcher);
  Tensor expected = Tensor::Zeros(x.shape());
  segmented.Run(x, segments, fx.views, expected);
  MappedLoraOperator mapped;
  Tensor y = Tensor::Zeros(x.shape());
  mapped.Run(x, segments, fx.views, y);
  EXPECT_LT(Tensor::MaxAbsDiff(y, expected), 1e-3f);
}

}  // namespace
}  // namespace vlora

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/workload/trace_gen.h"

namespace vlora {
namespace {

TEST(TraceGenTest, RetrievalRateApproximatelyHonoured) {
  TraceOptions options;
  options.app = AppKind::kVisualRetrieval;
  options.duration_s = 200.0;
  options.rate_rps = 5.0;
  options.seed = 3;
  const std::vector<Request> trace = GenerateTrace(options);
  const double rate = static_cast<double>(trace.size()) / options.duration_s;
  EXPECT_NEAR(rate, 5.0, 1.0);
}

TEST(TraceGenTest, ArrivalsSortedAndWithinDuration) {
  TraceOptions options;
  options.duration_s = 30.0;
  options.rate_rps = 10.0;
  for (AppKind app : {AppKind::kVisualRetrieval, AppKind::kVideoAnalytics}) {
    options.app = app;
    const std::vector<Request> trace = GenerateTrace(options);
    ASSERT_FALSE(trace.empty());
    for (size_t i = 1; i < trace.size(); ++i) {
      EXPECT_LE(trace[i - 1].arrival_s, trace[i].arrival_s);
    }
    EXPECT_GE(trace.front().arrival_s, 0.0);
    EXPECT_LT(trace.back().arrival_s, options.duration_s);
    // Ids are dense and unique.
    for (size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(trace[i].id, static_cast<int64_t>(i));
    }
  }
}

TEST(TraceGenTest, SkewnessControlsHotAdapterShare) {
  TraceOptions options;
  options.duration_s = 400.0;
  options.rate_rps = 10.0;
  options.num_adapters = 8;
  for (double skew : {0.2, 0.5, 0.9}) {
    options.skewness = skew;
    const std::vector<Request> trace = GenerateTrace(options);
    const std::vector<double> shares = AdapterShares(trace, options.num_adapters);
    EXPECT_NEAR(shares[0], skew, 0.05) << "skew " << skew;
  }
}

TEST(TraceGenTest, RemainingShareIsZipfTailed) {
  TraceOptions options;
  options.duration_s = 600.0;
  options.rate_rps = 10.0;
  options.num_adapters = 6;
  options.skewness = 0.3;
  options.zipf_s = 1.2;
  const std::vector<Request> trace = GenerateTrace(options);
  const std::vector<double> shares = AdapterShares(trace, options.num_adapters);
  // Adapter 1 (head of the tail) gets more than the last adapter.
  EXPECT_GT(shares[1], shares[5]);
}

TEST(TraceGenTest, RetrievalTokenRanges) {
  TraceOptions options;
  options.app = AppKind::kVisualRetrieval;
  options.duration_s = 120.0;
  options.rate_rps = 8.0;
  const std::vector<Request> trace = GenerateTrace(options);
  for (const Request& req : trace) {
    EXPECT_EQ(req.app, AppKind::kVisualRetrieval);
    EXPECT_GE(req.input_tokens, 128);
    EXPECT_LE(req.input_tokens, 1024);
    EXPECT_GE(req.output_tokens, 20);
    EXPECT_LE(req.output_tokens, 400);
    EXPECT_FALSE(req.closed_set_output);
  }
}

TEST(TraceGenTest, AnalyticsShapesMatchPaper) {
  TraceOptions options;
  options.app = AppKind::kVideoAnalytics;
  options.duration_s = 60.0;
  options.rate_rps = 8.0;
  options.num_streams = 4;
  const std::vector<Request> trace = GenerateTrace(options);
  bool saw_video = false;
  for (const Request& req : trace) {
    EXPECT_EQ(req.app, AppKind::kVideoAnalytics);
    EXPECT_TRUE(req.closed_set_output);
    EXPECT_GE(req.output_tokens, 5);
    EXPECT_LE(req.output_tokens, 10);
    EXPECT_GT(req.slo_ms, 0.0);
    if (req.task == VisionTask::kVideoClassification) {
      saw_video = true;
      EXPECT_EQ(req.input_tokens, 6 * 256);  // 6 frames x 256 tokens (§6.2)
    }
  }
  EXPECT_TRUE(saw_video);
}

TEST(TraceGenTest, DeterministicForSeed) {
  TraceOptions options;
  options.duration_s = 20.0;
  options.rate_rps = 10.0;
  options.seed = 99;
  const std::vector<Request> a = GenerateTrace(options);
  const std::vector<Request> b = GenerateTrace(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].adapter_id, b[i].adapter_id);
    EXPECT_EQ(a[i].input_tokens, b[i].input_tokens);
  }
}

TEST(TraceGenTest, BurstinessIncreasesVariance) {
  TraceOptions options;
  options.duration_s = 400.0;
  options.rate_rps = 6.0;
  options.seed = 5;

  auto interarrival_cv = [](const std::vector<Request>& trace) {
    double sum = 0.0;
    double sq = 0.0;
    int n = 0;
    for (size_t i = 1; i < trace.size(); ++i) {
      const double gap = trace[i].arrival_s - trace[i - 1].arrival_s;
      sum += gap;
      sq += gap * gap;
      ++n;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    return std::sqrt(std::max(0.0, var)) / mean;
  };

  options.burstiness_cv = 0.3;
  const double low = interarrival_cv(GenerateTrace(options));
  options.burstiness_cv = 3.0;
  const double high = interarrival_cv(GenerateTrace(options));
  EXPECT_GT(high, low * 2.0);
}

}  // namespace
}  // namespace vlora

#include <gtest/gtest.h>

#include "src/kernels/atmm.h"
#include "src/kernels/tiling_search.h"
#include "src/tensor/tensor.h"

namespace vlora {
namespace {

TEST(ShapeKeyTest, PackedIsInjectiveOnRange) {
  ShapeKey a{256, 64, 4096};
  ShapeKey b{256, 64, 4097};
  ShapeKey c{257, 64, 4096};
  EXPECT_NE(a.Packed(), b.Packed());
  EXPECT_NE(a.Packed(), c.Packed());
  EXPECT_EQ(a.Packed(), (ShapeKey{256, 64, 4096}.Packed()));
}

TEST(AtmmDispatcherTest, ExactHit) {
  AtmmDispatcher dispatcher;
  TileConfig config{32, 32, 64, 8, 8};
  dispatcher.Register(ShapeKey{128, 64, 256}, config);
  EXPECT_EQ(dispatcher.Select(128, 64, 256), config);
  EXPECT_EQ(dispatcher.TableSize(), 1);
}

TEST(AtmmDispatcherTest, SnapsMToGrid) {
  AtmmDispatcher dispatcher;
  TileConfig config{64, 32, 64, 8, 8};
  dispatcher.Register(ShapeKey{64, 64, 256}, config);
  // m = 50 rounds up to 64 on the 32-step grid.
  EXPECT_EQ(dispatcher.Select(50, 64, 256), config);
  // m = 70 rounds up to 96 (miss), then down to 64 (hit).
  EXPECT_EQ(dispatcher.Select(70, 64, 256), config);
}

TEST(AtmmDispatcherTest, FallsBackToHeuristic) {
  AtmmDispatcher dispatcher;
  const TileConfig config = dispatcher.Select(100, 100, 100);
  EXPECT_TRUE(config.Valid());
}

TEST(AtmmDispatcherTest, HeuristicAlwaysValid) {
  for (int64_t m : {1, 3, 8, 32, 511, 4096, 100000}) {
    for (int64_t n : {1, 4, 32, 64, 4096}) {
      for (int64_t k : {1, 16, 64, 4096}) {
        const TileConfig config = AtmmDispatcher::HeuristicConfig(m, n, k);
        EXPECT_TRUE(config.Valid()) << m << "x" << n << "x" << k << " -> " << config.ToString();
        EXPECT_TRUE(HasMicroKernel(config.mr, config.nr)) << config.ToString();
      }
    }
  }
}

TEST(AtmmDispatcherTest, ExecuteMatchesReference) {
  AtmmDispatcher dispatcher;
  Rng rng(31);
  for (auto [m, n, k] : {std::tuple<int64_t, int64_t, int64_t>{5, 7, 9},
                         {64, 32, 128},
                         {130, 64, 64},
                         {1, 64, 64}}) {
    Tensor a = Tensor::Random(Shape(m, k), rng, 1.0f);
    Tensor b = Tensor::Random(Shape(k, n), rng, 1.0f);
    Tensor c = Tensor::Zeros(Shape(m, n));
    dispatcher.Execute(a, b, c);
    EXPECT_LT(Tensor::MaxAbsDiff(c, MatMulReference(a, b)), 1e-3f);
  }
}

TEST(TilingSearchTest, PopulatesTable) {
  AtmmDispatcher dispatcher;
  TilingSearchOptions options;
  options.nk_pairs = {{32, 128}, {128, 32}};
  options.m_min = 32;
  options.m_max = 96;
  options.m_stride_multiplier = 1;
  options.repetitions = 1;
  // Small candidate set keeps the test fast.
  options.candidates = {TileConfig{16, 16, 32, 4, 4}, TileConfig{64, 32, 64, 8, 8},
                        TileConfig{32, 32, 64, 8, 8}};
  const TilingSearchResult result = RunTilingSearch(options, dispatcher);
  // 3 m-values x 2 nk pairs.
  EXPECT_EQ(result.shapes_profiled, 6);
  EXPECT_EQ(dispatcher.TableSize(), 6);
  EXPECT_GT(result.configs_tried, 0);
}

TEST(TilingSearchTest, RegisteredConfigIsUsedAtRuntime) {
  AtmmDispatcher dispatcher;
  TilingSearchOptions options;
  options.nk_pairs = {{32, 128}};
  options.m_min = 64;
  options.m_max = 64;
  options.m_stride_multiplier = 1;
  options.repetitions = 1;
  options.candidates = {TileConfig{16, 16, 32, 4, 4}, TileConfig{64, 32, 64, 8, 8}};
  RunTilingSearch(options, dispatcher);
  const TileConfig selected = dispatcher.Select(64, 32, 128);
  const bool is_candidate = selected == options.candidates[0] || selected == options.candidates[1];
  EXPECT_TRUE(is_candidate) << selected.ToString();
  // Execution with the selected config stays correct.
  Rng rng(33);
  Tensor a = Tensor::Random(Shape(64, 128), rng, 1.0f);
  Tensor b = Tensor::Random(Shape(128, 32), rng, 1.0f);
  Tensor c = Tensor::Zeros(Shape(64, 32));
  dispatcher.Execute(a, b, c);
  EXPECT_LT(Tensor::MaxAbsDiff(c, MatMulReference(a, b)), 1e-3f);
}

TEST(TilingSearchTest, PrunesOversizedWorkspace) {
  AtmmDispatcher dispatcher;
  TilingSearchOptions options;
  options.nk_pairs = {{32, 64}};
  options.m_min = 32;
  options.m_max = 32;
  options.m_stride_multiplier = 1;
  options.repetitions = 1;
  options.max_workspace_floats = 1;  // prunes every candidate
  options.candidates = {TileConfig{64, 64, 64, 8, 8}};
  const TilingSearchResult result = RunTilingSearch(options, dispatcher);
  EXPECT_EQ(result.configs_tried, 0);
  // Falls back to the heuristic but still registers an entry.
  EXPECT_EQ(dispatcher.TableSize(), 1);
  EXPECT_TRUE(dispatcher.Select(32, 32, 64).Valid());
}

}  // namespace
}  // namespace vlora

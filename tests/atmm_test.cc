#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/thread_pool.h"
#include "src/kernels/atmm.h"
#include "src/kernels/quant.h"
#include "src/kernels/tiling_search.h"
#include "src/tensor/tensor.h"

namespace vlora {
namespace {

TEST(ShapeKeyTest, PackedIsInjectiveOnRange) {
  ShapeKey a{256, 64, 4096};
  ShapeKey b{256, 64, 4097};
  ShapeKey c{257, 64, 4096};
  EXPECT_NE(a.Packed(), b.Packed());
  EXPECT_NE(a.Packed(), c.Packed());
  EXPECT_EQ(a.Packed(), (ShapeKey{256, 64, 4096}.Packed()));
}

TEST(AtmmDispatcherTest, ExactHit) {
  AtmmDispatcher dispatcher;
  TileConfig config{32, 32, 64, 8, 8};
  dispatcher.Register(ShapeKey{128, 64, 256}, config);
  EXPECT_EQ(dispatcher.Select(128, 64, 256), config);
  EXPECT_EQ(dispatcher.TableSize(), 1);
}

TEST(AtmmDispatcherTest, SnapsMToGrid) {
  AtmmDispatcher dispatcher;
  TileConfig config{64, 32, 64, 8, 8};
  dispatcher.Register(ShapeKey{64, 64, 256}, config);
  // m = 50 rounds up to 64 on the 32-step grid.
  EXPECT_EQ(dispatcher.Select(50, 64, 256), config);
  // m = 70 rounds up to 96 (miss), then down to 64 (hit).
  EXPECT_EQ(dispatcher.Select(70, 64, 256), config);
}

TEST(AtmmDispatcherTest, FallsBackToHeuristic) {
  AtmmDispatcher dispatcher;
  const TileConfig config = dispatcher.Select(100, 100, 100);
  EXPECT_TRUE(config.Valid());
}

TEST(AtmmDispatcherTest, HeuristicAlwaysValid) {
  for (int64_t m : {1, 3, 8, 32, 511, 4096, 100000}) {
    for (int64_t n : {1, 4, 32, 64, 4096}) {
      for (int64_t k : {1, 16, 64, 4096}) {
        const TileConfig config = AtmmDispatcher::HeuristicConfig(m, n, k);
        EXPECT_TRUE(config.Valid()) << m << "x" << n << "x" << k << " -> " << config.ToString();
        EXPECT_TRUE(HasMicroKernel(config.mr, config.nr)) << config.ToString();
        const TileConfig avx2 =
            AtmmDispatcher::HeuristicConfig(m, n, k, KernelVariant::kAvx2);
        EXPECT_TRUE(avx2.Valid()) << m << "x" << n << "x" << k << " -> " << avx2.ToString();
        EXPECT_TRUE(HasMicroKernel(avx2.mr, avx2.nr)) << avx2.ToString();
      }
    }
  }
}

TEST(AtmmDispatcherTest, ExecuteMatchesReference) {
  AtmmDispatcher dispatcher;
  Rng rng(31);
  for (auto [m, n, k] : {std::tuple<int64_t, int64_t, int64_t>{5, 7, 9},
                         {64, 32, 128},
                         {130, 64, 64},
                         {1, 64, 64}}) {
    Tensor a = Tensor::Random(Shape(m, k), rng, 1.0f);
    Tensor b = Tensor::Random(Shape(k, n), rng, 1.0f);
    Tensor c = Tensor::Zeros(Shape(m, n));
    dispatcher.Execute(a, b, c);
    EXPECT_LT(Tensor::MaxAbsDiff(c, MatMulReference(a, b)), 1e-3f);
  }
}

TEST(TilingSearchTest, PopulatesTable) {
  AtmmDispatcher dispatcher;
  TilingSearchOptions options;
  options.nk_pairs = {{32, 128}, {128, 32}};
  options.m_min = 32;
  options.m_max = 96;
  options.m_stride_multiplier = 1;
  options.repetitions = 1;
  // Small candidate set keeps the test fast.
  options.candidates = {TileConfig{16, 16, 32, 4, 4}, TileConfig{64, 32, 64, 8, 8},
                        TileConfig{32, 32, 64, 8, 8}};
  const TilingSearchResult result = RunTilingSearch(options, dispatcher);
  // 3 m-values x 2 nk pairs.
  EXPECT_EQ(result.shapes_profiled, 6);
  EXPECT_EQ(dispatcher.TableSize(), 6);
  EXPECT_GT(result.configs_tried, 0);
}

TEST(TilingSearchTest, RegisteredConfigIsUsedAtRuntime) {
  AtmmDispatcher dispatcher;
  TilingSearchOptions options;
  options.nk_pairs = {{32, 128}};
  options.m_min = 64;
  options.m_max = 64;
  options.m_stride_multiplier = 1;
  options.repetitions = 1;
  options.candidates = {TileConfig{16, 16, 32, 4, 4}, TileConfig{64, 32, 64, 8, 8}};
  RunTilingSearch(options, dispatcher);
  const TileConfig selected = dispatcher.Select(64, 32, 128);
  const bool is_candidate = selected == options.candidates[0] || selected == options.candidates[1];
  EXPECT_TRUE(is_candidate) << selected.ToString();
  // Execution with the selected config stays correct.
  Rng rng(33);
  Tensor a = Tensor::Random(Shape(64, 128), rng, 1.0f);
  Tensor b = Tensor::Random(Shape(128, 32), rng, 1.0f);
  Tensor c = Tensor::Zeros(Shape(64, 32));
  dispatcher.Execute(a, b, c);
  EXPECT_LT(Tensor::MaxAbsDiff(c, MatMulReference(a, b)), 1e-3f);
}

// The per-(variant, format) tables are isolated: an entry registered for one
// compute path is never served to another, in either direction.
TEST(AtmmDispatcherTest, PerVariantFormatTablesAreIsolated) {
  AtmmDispatcher dispatcher;
  const ShapeKey key{128, 64, 256};
  const TileConfig scalar_cfg{16, 16, 32, 4, 4};
  const TileConfig avx2_cfg{32, 64, 64, 16, 16};
  const TileConfig q8_cfg{128, 32, 256, 8, 8};
  dispatcher.Register(key, scalar_cfg, KernelVariant::kScalar, WeightFormat::kFp32);
  dispatcher.Register(key, avx2_cfg, KernelVariant::kAvx2, WeightFormat::kFp32);
  dispatcher.Register(key, q8_cfg, KernelVariant::kScalar, WeightFormat::kQ8);

  // Each compute path sees exactly its own entry.
  EXPECT_EQ(dispatcher.Select(128, 64, 256, KernelVariant::kScalar, WeightFormat::kFp32),
            scalar_cfg);
  EXPECT_EQ(dispatcher.Select(128, 64, 256, KernelVariant::kAvx2, WeightFormat::kFp32),
            avx2_cfg);
  EXPECT_EQ(dispatcher.Select(128, 64, 256, KernelVariant::kScalar, WeightFormat::kQ8), q8_cfg);

  // A path with no entry for the shape gets the heuristic, never a
  // neighbouring path's profiled config.
  const TileConfig heuristic =
      AtmmDispatcher::HeuristicConfig(128, 64, 256, KernelVariant::kAvx2);
  const TileConfig q4 = dispatcher.Select(128, 64, 256, KernelVariant::kAvx2, WeightFormat::kQ4);
  EXPECT_EQ(q4, heuristic);
  EXPECT_FALSE(q4 == scalar_cfg);
  EXPECT_FALSE(q4 == avx2_cfg);

  EXPECT_EQ(dispatcher.TableSize(), 3);
  EXPECT_EQ(dispatcher.TableSize(KernelVariant::kScalar, WeightFormat::kFp32), 1);
  EXPECT_EQ(dispatcher.TableSize(KernelVariant::kAvx2, WeightFormat::kFp32), 1);
  EXPECT_EQ(dispatcher.TableSize(KernelVariant::kScalar, WeightFormat::kQ8), 1);
  EXPECT_EQ(dispatcher.TableSize(KernelVariant::kAvx2, WeightFormat::kQ4), 0);

  const std::vector<AtmmTableEntry> all = dispatcher.AllEntries();
  ASSERT_EQ(all.size(), 3u);
  for (const AtmmTableEntry& entry : all) {
    EXPECT_TRUE(entry.shape == key);
    if (entry.variant == KernelVariant::kScalar && entry.format == WeightFormat::kFp32) {
      EXPECT_EQ(entry.config, scalar_cfg);
    } else if (entry.variant == KernelVariant::kAvx2) {
      EXPECT_EQ(entry.format, WeightFormat::kFp32);
      EXPECT_EQ(entry.config, avx2_cfg);
    } else {
      EXPECT_EQ(entry.format, WeightFormat::kQ8);
      EXPECT_EQ(entry.config, q8_cfg);
    }
  }
}

// Scalar-profiled configs are never served to AVX2 selections and vice versa,
// even when only one side of the table is populated.
TEST(AtmmDispatcherTest, ScalarEntriesNeverLeakToAvx2) {
  AtmmDispatcher dispatcher;
  const TileConfig scalar_only{16, 16, 32, 4, 4};
  for (int64_t m = 32; m <= 256; m += 32) {
    dispatcher.Register(ShapeKey{m, 64, 256}, scalar_only, KernelVariant::kScalar,
                        WeightFormat::kFp32);
  }
  // Exact hits and grid-snapped lookups on the AVX2 side miss everything and
  // fall through to the (variant-aware) heuristic.
  for (int64_t m : {32, 50, 128, 256}) {
    EXPECT_EQ(dispatcher.Select(m, 64, 256, KernelVariant::kAvx2, WeightFormat::kFp32),
              AtmmDispatcher::HeuristicConfig(m, 64, 256, KernelVariant::kAvx2))
        << "m=" << m;
  }
  // And the mirror image: an AVX2-only entry is invisible to scalar.
  AtmmDispatcher mirror;
  const TileConfig avx2_only{64, 64, 128, 16, 16};
  mirror.Register(ShapeKey{64, 64, 256}, avx2_only, KernelVariant::kAvx2, WeightFormat::kFp32);
  EXPECT_EQ(mirror.Select(64, 64, 256, KernelVariant::kScalar, WeightFormat::kFp32),
            AtmmDispatcher::HeuristicConfig(64, 64, 256));
}

// ExecuteQuantized selects from the (variant, format) table and computes the
// same product as the dense reference over the dequantized weights.
TEST(AtmmDispatcherTest, ExecuteQuantizedMatchesReference) {
  AtmmDispatcher dispatcher;
  Rng rng(47);
  for (WeightFormat format : {WeightFormat::kQ8, WeightFormat::kQ4}) {
    for (auto [m, n, k] : {std::tuple<int64_t, int64_t, int64_t>{5, 7, 45},
                           {64, 32, 128},
                           {1, 64, 64}}) {
      Tensor a = Tensor::Random(Shape(m, k), rng, 1.0f);
      Tensor b = Tensor::Random(Shape(k, n), rng, 1.0f);
      const QuantizedMatrix b_q = QuantizedMatrix::Quantize(b, format);
      Tensor b_deq(Shape(k, n));
      for (int64_t row = 0; row < k; ++row) {
        b_q.DequantizeRowRange(row, 0, n, b_deq.data() + row * n, KernelVariant::kScalar);
      }
      Tensor c = Tensor::Zeros(Shape(m, n));
      dispatcher.ExecuteQuantized(a.data(), b_q, c.data(), m);
      EXPECT_LT(Tensor::MaxAbsDiff(c, MatMulReference(a, b_deq)), 1e-3f)
          << WeightFormatName(format) << " " << m << "x" << n << "x" << k;
    }
  }
}

// Concurrent Register (profiling shards) and Select (serving threads) on a
// shared dispatcher must be race-free — this is the TSan-labelled test.
TEST(AtmmDispatcherTest, ConcurrentRegisterAndSelect) {
  AtmmDispatcher dispatcher;
  ThreadPool pool(4);
  const TileConfig config{32, 32, 64, 8, 8};
  constexpr int64_t kIterations = 256;
  pool.ParallelFor(0, kIterations, [&](int64_t i) {
    const KernelVariant variant =
        (i % 4 < 2) ? KernelVariant::kScalar : KernelVariant::kAvx2;
    const WeightFormat format = (i % 2 == 0) ? WeightFormat::kFp32 : WeightFormat::kQ8;
    if (i % 3 == 0) {
      dispatcher.Register(ShapeKey{32 * (i / 3 + 1), 64, 256}, config, variant, format);
    } else {
      const TileConfig selected = dispatcher.Select(32 * (i % 16 + 1), 64, 256, variant, format);
      ASSERT_TRUE(selected.Valid());
    }
  });
  // Every registration landed in some slot.
  int64_t per_slot_total = 0;
  for (int v = 0; v < kNumKernelVariants; ++v) {
    for (int f = 0; f < kNumWeightFormats; ++f) {
      per_slot_total += dispatcher.TableSize(static_cast<KernelVariant>(v),
                                             static_cast<WeightFormat>(f));
    }
  }
  EXPECT_EQ(per_slot_total, dispatcher.TableSize());
  EXPECT_GT(dispatcher.TableSize(), 0);
}

// Searching multiple variants/formats populates separate slots, one winner
// per (shape, variant, format).
TEST(TilingSearchTest, PerVariantSearchPopulatesSeparateSlots) {
  AtmmDispatcher dispatcher;
  TilingSearchOptions options;
  options.nk_pairs = {{32, 128}};
  options.m_min = 64;
  options.m_max = 64;
  options.m_stride_multiplier = 1;
  options.repetitions = 1;
  options.candidates = {TileConfig{16, 16, 32, 4, 4}, TileConfig{64, 32, 64, 8, 8}};
  options.variants = AvailableKernelVariants();
  options.weight_formats = {WeightFormat::kFp32, WeightFormat::kQ8};
  const TilingSearchResult result = RunTilingSearch(options, dispatcher);

  const int64_t variants = static_cast<int64_t>(AvailableKernelVariants().size());
  EXPECT_EQ(result.variants_profiled, variants);
  // 1 shape x 2 formats per variant pass.
  EXPECT_EQ(dispatcher.TableSize(), variants * 2);
  for (KernelVariant variant : AvailableKernelVariants()) {
    EXPECT_EQ(dispatcher.TableSize(variant, WeightFormat::kFp32), 1)
        << KernelVariantName(variant);
    EXPECT_EQ(dispatcher.TableSize(variant, WeightFormat::kQ8), 1)
        << KernelVariantName(variant);
    EXPECT_EQ(dispatcher.TableSize(variant, WeightFormat::kQ4), 0)
        << KernelVariantName(variant);
  }
}

// Requesting AVX2 on a host that cannot run it is skipped with a warning —
// the table never contains entries for a variant the host cannot execute.
TEST(TilingSearchTest, SkipsUnavailableVariants) {
  if (Avx2Available()) {
    GTEST_SKIP() << "host executes AVX2; the skip path is unreachable";
  }
  AtmmDispatcher dispatcher;
  TilingSearchOptions options;
  options.nk_pairs = {{32, 64}};
  options.m_min = 32;
  options.m_max = 32;
  options.m_stride_multiplier = 1;
  options.repetitions = 1;
  options.candidates = {TileConfig{16, 16, 32, 4, 4}};
  options.variants = {KernelVariant::kScalar, KernelVariant::kAvx2};
  RunTilingSearch(options, dispatcher);
  EXPECT_EQ(dispatcher.TableSize(KernelVariant::kAvx2, WeightFormat::kFp32), 0);
  EXPECT_EQ(dispatcher.TableSize(KernelVariant::kScalar, WeightFormat::kFp32), 1);
}

TEST(TilingSearchTest, PrunesOversizedWorkspace) {
  AtmmDispatcher dispatcher;
  TilingSearchOptions options;
  options.nk_pairs = {{32, 64}};
  options.m_min = 32;
  options.m_max = 32;
  options.m_stride_multiplier = 1;
  options.repetitions = 1;
  options.max_workspace_floats = 1;  // prunes every candidate
  options.candidates = {TileConfig{64, 64, 64, 8, 8}};
  const TilingSearchResult result = RunTilingSearch(options, dispatcher);
  EXPECT_EQ(result.configs_tried, 0);
  // Falls back to the heuristic but still registers an entry.
  EXPECT_EQ(dispatcher.TableSize(), 1);
  EXPECT_TRUE(dispatcher.Select(32, 32, 64).Valid());
}

}  // namespace
}  // namespace vlora

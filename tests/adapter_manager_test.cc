#include <gtest/gtest.h>

#include "src/lora/adapter_manager.h"

namespace vlora {
namespace {

LoraAdapter MakeAdapter(const std::string& name, Rng& rng) {
  // 3 targets x 2 layers x 2 x 64 x 8 = 6144 params = 12288 B fp16.
  return LoraAdapter::Random(name, 2, 64, 8, rng);
}
constexpr int64_t kAdapterBytes = 12288;

TEST(UnifiedMemoryPoolTest, ReserveAndRelease) {
  UnifiedMemoryPool pool(1000);
  EXPECT_TRUE(pool.Reserve(UnifiedMemoryPool::Usage::kKvCache, 600));
  EXPECT_TRUE(pool.Reserve(UnifiedMemoryPool::Usage::kAdapter, 400));
  EXPECT_FALSE(pool.Reserve(UnifiedMemoryPool::Usage::kAdapter, 1));
  EXPECT_EQ(pool.used(), 1000);
  EXPECT_EQ(pool.used_kv(), 600);
  EXPECT_EQ(pool.used_adapter(), 400);
  pool.Release(UnifiedMemoryPool::Usage::kKvCache, 600);
  EXPECT_EQ(pool.available(), 600);
  EXPECT_TRUE(pool.Reserve(UnifiedMemoryPool::Usage::kAdapter, 600));
}

TEST(UnifiedMemoryPoolTest, KvAndAdapterShareOneBudget) {
  UnifiedMemoryPool pool(100);
  EXPECT_TRUE(pool.Reserve(UnifiedMemoryPool::Usage::kKvCache, 100));
  // The adapter side cannot allocate because KV took everything — the unified
  // design the paper adopts from S-LoRA.
  EXPECT_FALSE(pool.Reserve(UnifiedMemoryPool::Usage::kAdapter, 1));
}

TEST(SwapCostModelTest, TransferScalesWithBytes) {
  SwapCostModel model;
  EXPECT_GT(model.TransferMs(100 << 20), model.TransferMs(10 << 20));
  EXPECT_NEAR(model.TransferMs(0), model.fixed_ms, 1e-12);
}

TEST(AdapterManagerTest, RegisterAndGet) {
  UnifiedMemoryPool pool(1 << 20);
  AdapterManager manager(&pool);
  Rng rng(1);
  const int id = manager.Register(MakeAdapter("a", rng));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(manager.num_adapters(), 1);
  EXPECT_EQ(manager.Get(0).name(), "a");
  EXPECT_FALSE(manager.IsResident(0));
}

TEST(AdapterManagerTest, EnsureResidentChargesPool) {
  UnifiedMemoryPool pool(1 << 20);
  AdapterManager manager(&pool);
  Rng rng(2);
  const int id = manager.Register(MakeAdapter("a", rng));
  const SwapResult result = manager.EnsureResident(id);
  EXPECT_FALSE(result.was_resident);
  EXPECT_GT(result.visible_ms, 0.0);
  EXPECT_TRUE(manager.IsResident(id));
  EXPECT_EQ(pool.used_adapter(), manager.Get(id).SizeBytesFp16());
  // Second call is a residency hit.
  const SwapResult again = manager.EnsureResident(id);
  EXPECT_TRUE(again.was_resident);
  EXPECT_EQ(again.visible_ms, 0.0);
  EXPECT_EQ(manager.total_swap_ins(), 1);
}

TEST(AdapterManagerTest, LruEvictionUnderPressure) {
  Rng rng(3);
  // Pool fits exactly two adapters.
  UnifiedMemoryPool pool(2 * kAdapterBytes);
  AdapterManager manager(&pool);
  const int a = manager.Register(MakeAdapter("a", rng));
  const int b = manager.Register(MakeAdapter("b", rng));
  const int c = manager.Register(MakeAdapter("c", rng));
  manager.EnsureResident(a);
  manager.EnsureResident(b);
  manager.Touch(a);  // b becomes the LRU victim
  const SwapResult result = manager.EnsureResident(c);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], b);
  EXPECT_TRUE(manager.IsResident(a));
  EXPECT_FALSE(manager.IsResident(b));
  EXPECT_TRUE(manager.IsResident(c));
  EXPECT_EQ(manager.total_evictions(), 1);
}

TEST(AdapterManagerTest, AsyncSlackHidesTransfer) {
  UnifiedMemoryPool pool(1 << 20);
  AdapterManager manager(&pool);
  Rng rng(4);
  const int id = manager.Register(MakeAdapter("a", rng));
  const double transfer = SwapCostModel{}.TransferMs(manager.Get(id).SizeBytesFp16());
  const SwapResult result = manager.EnsureResident(id, /*async_slack_ms=*/transfer + 1.0);
  EXPECT_TRUE(result.hidden_by_async);
  EXPECT_EQ(result.visible_ms, 0.0);
  EXPECT_GT(result.transfer_ms, 0.0);
}

TEST(AdapterManagerTest, PartialSlackReducesVisibleCost) {
  UnifiedMemoryPool pool(1 << 20);
  AdapterManager manager(&pool);
  Rng rng(5);
  const int id = manager.Register(MakeAdapter("a", rng));
  const double transfer = SwapCostModel{}.TransferMs(manager.Get(id).SizeBytesFp16());
  const SwapResult result = manager.EnsureResident(id, transfer / 2.0);
  EXPECT_FALSE(result.hidden_by_async);
  EXPECT_NEAR(result.visible_ms, transfer / 2.0, 1e-9);
}

}  // namespace
}  // namespace vlora

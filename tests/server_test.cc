#include <gtest/gtest.h>

#include "src/core/server.h"
#include "src/engine/vision.h"

namespace vlora {
namespace {

std::vector<int32_t> Prompt(int64_t len, uint64_t seed, int64_t vocab) {
  Rng rng(seed);
  std::vector<int32_t> tokens;
  for (int64_t i = 0; i < len; ++i) {
    tokens.push_back(static_cast<int32_t>(rng.NextInt(2, vocab - 1)));
  }
  return tokens;
}

std::vector<KnowledgeItem> SampleCatalog() {
  std::vector<KnowledgeItem> items;
  AccuracyOracle oracle(7, 0.0);
  auto add = [&](VisionTask task, int n, double slack, int options) {
    for (int i = 0; i < n; ++i) {
      KnowledgeItem item;
      item.domain = std::string(VisionTaskName(task)) + "-" + std::to_string(i);
      item.task = task;
      item.required_accuracy = oracle.LoraAccuracy(task, 1) - slack;
      item.closed_set_options = options;
      items.push_back(item);
    }
  };
  add(VisionTask::kVideoClassification, 3, 3.0, 8);
  add(VisionTask::kVisualQuestionAnswering, 3, 5.0, 0);
  return items;
}

TEST(MaterializeTest, BuildsAdaptersWithHeads) {
  const std::vector<KnowledgeItem> items = SampleCatalog();
  AccuracyOracle oracle(7, 0.0);
  const GeneratorResult generated =
      GenerateAdapters(items, oracle, GeneratorOptions{.shuffle = false});
  Rng rng(21);
  const ModelConfig config = TinyConfig();
  auto adapters = MaterializeAdapters(items, generated, config, 8, rng);
  ASSERT_EQ(adapters.size(), generated.adapters.size());
  for (size_t i = 0; i < adapters.size(); ++i) {
    EXPECT_EQ(adapters[i]->num_layers(), config.num_layers);
    EXPECT_EQ(adapters[i]->d_model(), config.d_model);
    EXPECT_EQ(adapters[i]->fused_domains().size(), generated.adapters[i].item_indices.size());
    EXPECT_EQ(adapters[i]->task_head().has_value(), generated.adapters[i].has_task_head);
  }
  // At least one video-classification adapter carries a head.
  bool any_head = false;
  for (const auto& adapter : adapters) {
    any_head = any_head || adapter->task_head().has_value();
  }
  EXPECT_TRUE(any_head);
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : config_(TinyConfig()) {
    ServerOptions options;
    options.max_batch_size = 4;
    options.alg1.theta_ms = 200.0;
    server_ = std::make_unique<VloraServer>(config_, options);
    Rng rng(31);
    for (int i = 0; i < 3; ++i) {
      server_->AddAdapter(std::make_unique<LoraAdapter>(LoraAdapter::Random(
          "adapter-" + std::to_string(i), config_.num_layers, config_.d_model, 8, rng)));
    }
  }

  EngineRequest MakeRequest(int64_t id, int adapter, uint64_t seed, int new_tokens = 3) {
    EngineRequest request;
    request.id = id;
    request.prompt_tokens = Prompt(18, seed, config_.vocab_size);
    request.adapter_id = adapter;
    request.max_new_tokens = new_tokens;
    request.eos_token = -1;
    return request;
  }

  ModelConfig config_;
  std::unique_ptr<VloraServer> server_;
};

TEST_F(ServerTest, DrainsAllRequests) {
  for (int i = 0; i < 6; ++i) {
    server_->Submit(MakeRequest(i, i % 3, 100 + static_cast<uint64_t>(i)));
  }
  const std::vector<EngineResult> results = server_->RunAll();
  EXPECT_EQ(results.size(), 6u);
  EXPECT_GT(server_->stats().iterations, 0);
}

TEST_F(ServerTest, ResultsMatchStandaloneEngineRuns) {
  // Whatever modes the orchestrator picks, outputs must equal a clean
  // unmerged single-request run — the correctness contract of mode switching.
  std::vector<EngineRequest> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(MakeRequest(i, i % 2, 200 + static_cast<uint64_t>(i)));
  }

  std::vector<std::vector<int32_t>> reference(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    InferenceEngine engine(config_, EngineOptions{});
    LoraAdapter a = server_->adapter(0);  // copies factors
    LoraAdapter b = server_->adapter(1);
    engine.RegisterAdapter(&a);
    engine.RegisterAdapter(&b);
    engine.SetMode(InferMode::kUnmerged);
    reference[i] = engine.RunToCompletion(requests[i]).output_tokens;
  }

  for (const EngineRequest& request : requests) {
    server_->Submit(request);
  }
  std::vector<std::vector<int32_t>> outputs(requests.size());
  for (const EngineResult& result : server_->RunAll()) {
    outputs[static_cast<size_t>(result.request_id)] = result.output_tokens;
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(outputs[i], reference[i]) << "request " << i;
  }
}

TEST_F(ServerTest, SkewedLoadUsesMergedMode) {
  // 6 requests, 5 on adapter 0: with MaxBS 4 the dominant group exceeds
  // MaxBS/2, so merged iterations must appear.
  for (int i = 0; i < 5; ++i) {
    server_->Submit(MakeRequest(i, 0, 300 + static_cast<uint64_t>(i), 5));
  }
  server_->Submit(MakeRequest(5, 1, 310, 5));
  server_->RunAll();
  EXPECT_GT(server_->stats().merged_iterations + server_->stats().mixture_iterations, 0);
}

TEST_F(ServerTest, AdapterResidencyTracked) {
  for (int i = 0; i < 3; ++i) {
    server_->Submit(MakeRequest(i, i, 400 + static_cast<uint64_t>(i)));
  }
  server_->RunAll();
  // Every adapter was swapped in exactly once (the pool is ample), and the
  // async prefetch window hides most of the tiny-adapter transfer.
  EXPECT_EQ(server_->stats().adapter_swap_ins, 3);
  EXPECT_EQ(server_->stats().adapter_evictions, 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(server_->adapter_manager().IsResident(i));
  }
}

TEST(ServerSwapTest, TightPoolForcesEvictions) {
  const ModelConfig config = TinyConfig();
  ServerOptions options;
  options.max_batch_size = 1;  // one adapter active at a time
  Rng rng(17);
  // Size the pool to hold exactly one adapter.
  LoraAdapter probe = LoraAdapter::Random("p", config.num_layers, config.d_model, 8, rng);
  options.device_pool_bytes = probe.SizeBytesFp16() + 16;
  VloraServer server(config, options);
  for (int i = 0; i < 2; ++i) {
    server.AddAdapter(std::make_unique<LoraAdapter>(LoraAdapter::Random(
        "t" + std::to_string(i), config.num_layers, config.d_model, 8, rng)));
  }
  for (int i = 0; i < 4; ++i) {
    EngineRequest request;
    request.id = i;
    Rng prng(600 + static_cast<uint64_t>(i));
    for (int t = 0; t < 10; ++t) {
      request.prompt_tokens.push_back(
          static_cast<int32_t>(prng.NextInt(2, config.vocab_size - 1)));
    }
    request.adapter_id = i % 2;  // alternate adapters -> swap churn
    request.max_new_tokens = 2;
    request.eos_token = -1;
    server.Submit(request);
  }
  const std::vector<EngineResult> results = server.RunAll();
  EXPECT_EQ(results.size(), 4u);
  EXPECT_GT(server.stats().adapter_evictions, 0);
  EXPECT_GT(server.stats().adapter_swap_ins, 2);
}

TEST_F(ServerTest, TaskHeadRequestsServedInOneRound) {
  Rng rng(41);
  auto adapter = std::make_unique<LoraAdapter>(
      LoraAdapter::Random("head", config_.num_layers, config_.d_model, 8, rng));
  VisionTaskHead head;
  head.task = VisionTask::kVideoClassification;
  head.weight = Tensor::Random(Shape(config_.d_model, 6), rng, 0.3f);
  adapter->SetTaskHead(std::move(head));
  const int id = server_->AddAdapter(std::move(adapter));

  EngineRequest request = MakeRequest(99, id, 500);
  request.use_task_head = true;
  server_->Submit(request);
  const std::vector<EngineResult> results = server_->RunAll();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GE(results[0].head_option, 0);
  EXPECT_LT(results[0].head_option, 6);
  EXPECT_EQ(results[0].decode_steps, 0);
}

TEST_F(ServerTest, EndToEndPipelineFromKnowledgeCatalog) {
  // Offline phase: catalogue -> generator -> materialised adapters.
  const std::vector<KnowledgeItem> items = SampleCatalog();
  AccuracyOracle oracle(7, 0.0);
  const GeneratorResult generated =
      GenerateAdapters(items, oracle, GeneratorOptions{.shuffle = false});
  Rng rng(51);
  ServerOptions options;
  options.max_batch_size = 4;
  VloraServer server(config_, options);
  std::vector<int> head_adapters;
  for (auto& adapter : MaterializeAdapters(items, generated, config_, 8, rng)) {
    const bool has_head = adapter->task_head().has_value();
    const int id = server.AddAdapter(std::move(adapter));
    if (has_head) {
      head_adapters.push_back(id);
    }
  }
  ASSERT_GT(server.num_adapters(), 0);

  // Online phase: a small mixed batch, closed-set requests through heads.
  VisionEncoder vision(config_);
  int64_t next_id = 0;
  for (int adapter_id = 0; adapter_id < server.num_adapters(); ++adapter_id) {
    EngineRequest request;
    request.id = next_id++;
    request.prompt_tokens = vision.BuildPrompt(adapter_id, Prompt(6, 600, config_.vocab_size));
    request.adapter_id = adapter_id;
    request.max_new_tokens = 3;
    request.eos_token = -1;
    request.use_task_head = server.adapter(adapter_id).task_head().has_value();
    server.Submit(request);
  }
  const std::vector<EngineResult> results = server.RunAll();
  EXPECT_EQ(results.size(), static_cast<size_t>(server.num_adapters()));
  for (const EngineResult& result : results) {
    const bool via_head = result.head_option >= 0;
    EXPECT_TRUE(via_head || !result.output_tokens.empty());
  }
}

}  // namespace
}  // namespace vlora

#include <gtest/gtest.h>

#include "src/engine/kv_cache.h"
#include "src/engine/model_config.h"

namespace vlora {
namespace {

TEST(KvBlockManagerTest, AllocateAndFree) {
  KvBlockManager kv(TinyConfig(), 8, 4);
  EXPECT_EQ(kv.num_free_blocks(), 4);
  const int64_t a = kv.AllocateBlock();
  const int64_t b = kv.AllocateBlock();
  EXPECT_NE(a, b);
  EXPECT_EQ(kv.num_free_blocks(), 2);
  EXPECT_EQ(kv.RefCount(a), 1);
  kv.Release(a);
  EXPECT_EQ(kv.num_free_blocks(), 3);
}

TEST(KvBlockManagerTest, ExhaustionReturnsMinusOne) {
  KvBlockManager kv(TinyConfig(), 8, 2);
  EXPECT_GE(kv.AllocateBlock(), 0);
  EXPECT_GE(kv.AllocateBlock(), 0);
  EXPECT_EQ(kv.AllocateBlock(), -1);
}

TEST(KvBlockManagerTest, RefCounting) {
  KvBlockManager kv(TinyConfig(), 8, 2);
  const int64_t block = kv.AllocateBlock();
  kv.AddRef(block);
  EXPECT_EQ(kv.RefCount(block), 2);
  kv.Release(block);
  EXPECT_EQ(kv.RefCount(block), 1);
  EXPECT_EQ(kv.num_free_blocks(), 1);  // still held
  kv.Release(block);
  EXPECT_EQ(kv.num_free_blocks(), 2);
}

TEST(KvBlockManagerTest, KvPointersDistinctPerLayer) {
  ModelConfig config = TinyConfig();
  KvBlockManager kv(config, 8, 2);
  const int64_t block = kv.AllocateBlock();
  float* k0 = kv.KPtr(block, 0);
  float* v0 = kv.VPtr(block, 0);
  float* k1 = kv.KPtr(block, 1);
  EXPECT_EQ(v0 - k0, 8 * config.d_model);
  EXPECT_EQ(k1 - k0, 2 * 8 * config.d_model);
  // Writes round-trip.
  k0[3] = 42.0f;
  EXPECT_EQ(kv.KPtr(block, 0)[3], 42.0f);
}

TEST(KvBlockManagerTest, ChainHashOrderSensitive) {
  int32_t tokens_a[] = {1, 2, 3, 4};
  int32_t tokens_b[] = {4, 3, 2, 1};
  const uint64_t ha = KvBlockManager::ChainHash(0, tokens_a, 4);
  const uint64_t hb = KvBlockManager::ChainHash(0, tokens_b, 4);
  EXPECT_NE(ha, hb);
  // Chaining matters: same tokens after different prefixes differ.
  EXPECT_NE(KvBlockManager::ChainHash(ha, tokens_a, 4),
            KvBlockManager::ChainHash(hb, tokens_a, 4));
}

TEST(KvBlockManagerTest, PrefixRegisterLookup) {
  KvBlockManager kv(TinyConfig(), 8, 4);
  const int64_t block = kv.AllocateBlock();
  int32_t tokens[] = {5, 6, 7, 8, 9, 10, 11, 12};
  const uint64_t hash = KvBlockManager::ChainHash(1, tokens, 8);
  EXPECT_EQ(kv.LookupPrefixBlock(hash), -1);
  kv.RegisterPrefixBlock(hash, block);
  EXPECT_EQ(kv.LookupPrefixBlock(hash), block);
  EXPECT_EQ(kv.prefix_hits(), 1);
  EXPECT_EQ(kv.prefix_misses(), 1);
}

TEST(KvBlockManagerTest, FirstRegistrationWins) {
  KvBlockManager kv(TinyConfig(), 8, 4);
  const int64_t a = kv.AllocateBlock();
  const int64_t b = kv.AllocateBlock();
  kv.RegisterPrefixBlock(99, a);
  kv.RegisterPrefixBlock(99, b);
  EXPECT_EQ(kv.LookupPrefixBlock(99), a);
}

TEST(KvBlockManagerTest, CachedBlockOutlivesItsSequence) {
  // The defining property of the persistent prefix cache (§5): the producing
  // sequence releases its reference, but the block stays registered until the
  // cache evicts it.
  KvBlockManager kv(TinyConfig(), 8, 4);
  const int64_t block = kv.AllocateBlock();
  kv.RegisterPrefixBlock(7, block);
  EXPECT_EQ(kv.RefCount(block), 2);  // sequence + cache
  kv.Release(block);                 // sequence finished
  EXPECT_EQ(kv.LookupPrefixBlock(7), block);
  EXPECT_EQ(kv.num_cached_blocks(), 1);
  // Explicit eviction frees it.
  EXPECT_TRUE(kv.EvictOneCachedBlock());
  EXPECT_EQ(kv.LookupPrefixBlock(7), -1);
  EXPECT_EQ(kv.num_free_blocks(), 4);
}

TEST(KvBlockManagerTest, AllocationPressureEvictsCachedBlocks) {
  KvBlockManager kv(TinyConfig(), 8, 2);
  const int64_t a = kv.AllocateBlock();
  kv.RegisterPrefixBlock(1, a);
  kv.Release(a);  // only the cache holds it now
  const int64_t b = kv.AllocateBlock();
  EXPECT_NE(b, a);  // one genuinely free block remained
  // The next allocation must reclaim the cached block.
  const int64_t c = kv.AllocateBlock();
  EXPECT_EQ(c, a);
  EXPECT_EQ(kv.LookupPrefixBlock(1), -1);
}

TEST(KvBlockManagerTest, LruEvictionOrderRefreshedByHits) {
  KvBlockManager kv(TinyConfig(), 8, 4);
  const int64_t a = kv.AllocateBlock();
  const int64_t b = kv.AllocateBlock();
  kv.RegisterPrefixBlock(1, a);
  kv.RegisterPrefixBlock(2, b);
  kv.Release(a);
  kv.Release(b);
  // A hit on `a` makes `b` the LRU victim.
  EXPECT_EQ(kv.LookupPrefixBlock(1), a);
  EXPECT_TRUE(kv.EvictOneCachedBlock());
  EXPECT_EQ(kv.LookupPrefixBlock(1), a);
  EXPECT_EQ(kv.LookupPrefixBlock(2), -1);
}

TEST(KvBlockManagerTest, SharedBlockRefcounting) {
  KvBlockManager kv(TinyConfig(), 8, 4);
  const int64_t block = kv.AllocateBlock();
  kv.RegisterPrefixBlock(3, block);
  kv.AddRef(block);  // second sequence shares it
  EXPECT_EQ(kv.RefCount(block), 3);
  kv.Release(block);
  kv.Release(block);
  // Both sequences done; the cache reference keeps it registered and alive.
  EXPECT_EQ(kv.RefCount(block), 1);
  EXPECT_EQ(kv.LookupPrefixBlock(3), block);
}

TEST(KvBlockManagerTest, ChargesUnifiedPool) {
  ModelConfig config = TinyConfig();
  UnifiedMemoryPool pool(1 << 24);
  {
    KvBlockManager kv(config, 8, 4, &pool);
    const int64_t block = kv.AllocateBlock();
    EXPECT_EQ(pool.used_kv(), kv.BytesPerBlock());
    kv.Release(block);
    EXPECT_EQ(pool.used_kv(), 0);
    // Destructor releases any remaining charge.
    kv.AllocateBlock();
    EXPECT_GT(pool.used_kv(), 0);
  }
  EXPECT_EQ(pool.used_kv(), 0);
}

TEST(KvBlockManagerTest, PoolExhaustionBlocksAllocation) {
  ModelConfig config = TinyConfig();
  KvBlockManager probe(config, 8, 1);
  UnifiedMemoryPool pool(probe.BytesPerBlock());  // exactly one block
  KvBlockManager kv(config, 8, 4, &pool);
  EXPECT_GE(kv.AllocateBlock(), 0);
  EXPECT_EQ(kv.AllocateBlock(), -1);  // pool, not free list, is the limit
}

}  // namespace
}  // namespace vlora

// Wire-protocol tests (src/net): codec edge cases, frame reassembly across
// arbitrary chunk boundaries, rejection of truncated/corrupt/oversized input
// (always a clean Status or false, never UB), a round trip of every message
// type — including bit-exact adapter weights — and a Channel smoke test over
// a real socketpair.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/kv_handle.h"
#include "src/engine/model_config.h"
#include "src/lora/adapter.h"
#include "src/net/channel.h"
#include "src/net/fd.h"
#include "src/net/messages.h"
#include "src/net/wire.h"

namespace vlora {
namespace net {
namespace {

// --- WireWriter / WireReader -----------------------------------------------

TEST(WireCodecTest, VarintRoundTripsEdgeValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t value : values) {
    WireWriter writer;
    writer.Varint(value);
    WireReader reader(writer.data());
    uint64_t decoded = 0;
    EXPECT_TRUE(reader.Varint(&decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(reader.Done());
  }
}

TEST(WireCodecTest, SignedVarintZigzagsSmallNegatives) {
  const int64_t values[] = {0, -1, 1, -64, 64, std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t value : values) {
    WireWriter writer;
    writer.SignedVarint(value);
    WireReader reader(writer.data());
    int64_t decoded = 0;
    EXPECT_TRUE(reader.SignedVarint(&decoded)) << value;
    EXPECT_EQ(decoded, value);
  }
  // -1 must stay one byte on the wire (adapter_id = -1 is the common case).
  WireWriter writer;
  writer.SignedVarint(-1);
  EXPECT_EQ(writer.data().size(), 1u);
}

TEST(WireCodecTest, TruncatedVarintFailsCleanly) {
  WireWriter writer;
  writer.Varint(std::numeric_limits<uint64_t>::max());
  const std::string bytes = writer.data();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader reader(bytes.data(), cut);
    uint64_t decoded = 0;
    EXPECT_FALSE(reader.Varint(&decoded)) << "cut at " << cut;
    EXPECT_FALSE(reader.ok());
  }
}

TEST(WireCodecTest, OverlongVarintIsRejected) {
  // Ten continuation bytes claiming bits beyond the 64th.
  const std::string overlong(10, static_cast<char>(0xFF));
  WireReader reader(overlong);
  uint64_t decoded = 0;
  EXPECT_FALSE(reader.Varint(&decoded));
  EXPECT_FALSE(reader.ok());
}

TEST(WireCodecTest, FailedReaderLatchesAndStopsConsuming) {
  WireWriter writer;
  writer.U8(7);
  WireReader reader(writer.data());
  uint32_t wide = 0;
  EXPECT_FALSE(reader.U32(&wide));  // only one byte available
  // Latched: even a read that would fit now fails.
  uint8_t narrow = 0;
  EXPECT_FALSE(reader.U8(&narrow));
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.Done());
}

TEST(WireCodecTest, StrHonoursCallerBound) {
  WireWriter writer;
  writer.Str("hello world");
  WireReader strict(writer.data());
  std::string out;
  EXPECT_FALSE(strict.Str(&out, /*max_size=*/4));
  WireReader relaxed(writer.data());
  EXPECT_TRUE(relaxed.Str(&out, /*max_size=*/64));
  EXPECT_EQ(out, "hello world");
}

TEST(WireCodecTest, StrLengthBeyondBufferFails) {
  WireWriter writer;
  writer.Varint(1000);  // declares 1000 bytes, provides none
  WireReader reader(writer.data());
  std::string out;
  EXPECT_FALSE(reader.Str(&out));
  EXPECT_FALSE(reader.ok());
}

TEST(WireCodecTest, ArraysRoundTripAndEnforceMaxCount) {
  const std::vector<int32_t> ints = {-3, 0, 7, 1 << 30};
  const std::vector<float> floats = {0.0f, -1.5f, 3.25e6f};
  WireWriter writer;
  writer.I32Array(ints.data(), ints.size());
  writer.F32Array(floats.data(), floats.size());

  WireReader reader(writer.data());
  std::vector<int32_t> ints_out;
  std::vector<float> floats_out;
  EXPECT_TRUE(reader.I32Array(&ints_out, /*max_count=*/16));
  EXPECT_TRUE(reader.F32Array(&floats_out, /*max_count=*/16));
  EXPECT_EQ(ints_out, ints);
  EXPECT_EQ(floats_out, floats);
  EXPECT_TRUE(reader.Done());

  WireReader bounded(writer.data());
  EXPECT_FALSE(bounded.I32Array(&ints_out, /*max_count=*/3));
  EXPECT_FALSE(bounded.ok());
}

TEST(WireCodecTest, MixedFieldsRoundTrip) {
  WireWriter writer;
  writer.U8(0xAB);
  writer.U16(0xBEEF);
  writer.U32(0xDEADBEEFu);
  writer.U64(0x0123456789ABCDEFull);
  writer.F32(2.5f);
  writer.F64(-1e100);
  writer.Str("mixed");

  WireReader reader(writer.data());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  float f32 = 0.0f;
  double f64 = 0.0;
  std::string str;
  EXPECT_TRUE(reader.U8(&u8));
  EXPECT_TRUE(reader.U16(&u16));
  EXPECT_TRUE(reader.U32(&u32));
  EXPECT_TRUE(reader.U64(&u64));
  EXPECT_TRUE(reader.F32(&f32));
  EXPECT_TRUE(reader.F64(&f64));
  EXPECT_TRUE(reader.Str(&str));
  EXPECT_TRUE(reader.Done());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(f32, 2.5f);
  EXPECT_EQ(f64, -1e100);
  EXPECT_EQ(str, "mixed");
}

// --- FrameAssembler ---------------------------------------------------------

TEST(FrameAssemblerTest, ReassemblesByteByByte) {
  const std::string payload = EncodeFrame(MessageType::kStart, "");
  const std::string frame = payload;  // EncodeFrame already length-prefixes
  FrameAssembler assembler;
  std::string out;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    ASSERT_TRUE(assembler.Feed(frame.data() + i, 1).ok());
    EXPECT_FALSE(assembler.Next(&out)) << "frame complete too early at byte " << i;
  }
  ASSERT_TRUE(assembler.Feed(frame.data() + frame.size() - 1, 1).ok());
  ASSERT_TRUE(assembler.Next(&out));
  Result<Envelope> envelope = DecodeEnvelope(out);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope.value().type, MessageType::kStart);
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(FrameAssemblerTest, PopsMultipleFramesFromOneFeed) {
  HelloMessage hello;
  hello.replica = 3;
  hello.pid = 4242;
  StopMessage stop;
  const std::string stream = EncodeMessageFrame(hello) + EncodeMessageFrame(stop);

  FrameAssembler assembler;
  ASSERT_TRUE(assembler.Feed(stream.data(), stream.size()).ok());
  std::string first;
  std::string second;
  std::string third;
  ASSERT_TRUE(assembler.Next(&first));
  ASSERT_TRUE(assembler.Next(&second));
  EXPECT_FALSE(assembler.Next(&third));

  Result<Envelope> a = DecodeEnvelope(first);
  Result<Envelope> b = DecodeEnvelope(second);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().type, MessageType::kHello);
  EXPECT_EQ(b.value().type, MessageType::kStop);
}

TEST(FrameAssemblerTest, OversizedDeclaredLengthPoisons) {
  const uint32_t huge = kMaxFrameBytes + 1;
  char prefix[sizeof(huge)];
  std::memcpy(prefix, &huge, sizeof(huge));

  FrameAssembler assembler;
  const Status fed = assembler.Feed(prefix, sizeof(prefix));
  EXPECT_FALSE(fed.ok());
  EXPECT_EQ(fed.code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(assembler.poisoned());
  std::string out;
  EXPECT_FALSE(assembler.Next(&out));
  // Poisoning is terminal: further feeds are refused, nothing is buffered up.
  const Status refed = assembler.Feed("x", 1);
  EXPECT_FALSE(refed.ok());
  EXPECT_EQ(refed.code(), StatusCode::kFailedPrecondition);
}

TEST(FrameAssemblerTest, OversizedQueuedFramePoisonsAfterPop) {
  // A valid frame followed by a corrupt oversized length in the same buffer.
  // Feed's eager check only sees the head of the buffer (the valid length),
  // so the corrupt length is caught when Next pops past it — the first frame
  // still delivers, then the assembler poisons instead of waiting for 4 GiB.
  std::string stream = EncodeMessageFrame(StopMessage{});
  const uint32_t huge = kMaxFrameBytes + 1;
  stream.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  FrameAssembler assembler;
  ASSERT_TRUE(assembler.Feed(stream.data(), stream.size()).ok());
  std::string out;
  ASSERT_TRUE(assembler.Next(&out));
  EXPECT_EQ(DecodeEnvelope(out).value().type, MessageType::kStop);
  EXPECT_TRUE(assembler.poisoned());
  EXPECT_FALSE(assembler.Next(&out));
}

// --- Envelope validation ----------------------------------------------------

std::string PayloadOf(const std::string& frame) {
  FrameAssembler assembler;
  EXPECT_TRUE(assembler.Feed(frame.data(), frame.size()).ok());
  std::string payload;
  EXPECT_TRUE(assembler.Next(&payload));
  return payload;
}

TEST(EnvelopeTest, RejectsShortHeaderBadMagicBadVersionUnknownType) {
  EXPECT_FALSE(DecodeEnvelope("").ok());
  EXPECT_FALSE(DecodeEnvelope("VL").ok());

  std::string payload = PayloadOf(EncodeFrame(MessageType::kHeartbeat, "body"));
  ASSERT_GE(payload.size(), 4u);

  std::string bad_magic = payload;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeEnvelope(bad_magic).ok());

  std::string bad_version = payload;
  bad_version[2] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_FALSE(DecodeEnvelope(bad_version).ok());

  std::string bad_type = payload;
  bad_type[3] = 0;  // below kHello
  EXPECT_FALSE(DecodeEnvelope(bad_type).ok());
  bad_type[3] = static_cast<char>(static_cast<uint8_t>(MessageType::kKvPage) + 1);
  EXPECT_FALSE(DecodeEnvelope(bad_type).ok());

  Result<Envelope> good = DecodeEnvelope(payload);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().type, MessageType::kHeartbeat);
  EXPECT_EQ(good.value().body, "body");
}

// --- Typed message round trips ----------------------------------------------

template <typename M>
Result<M> RoundTrip(const M& message) {
  const std::string payload = PayloadOf(EncodeMessageFrame(message));
  Result<Envelope> envelope = DecodeEnvelope(payload);
  if (!envelope.ok()) {
    return envelope.status();
  }
  return DecodeAs<M>(envelope.value());
}

TEST(MessagesTest, HelloRoundTrips) {
  HelloMessage hello;
  hello.replica = 5;
  hello.pid = 123456789;
  Result<HelloMessage> out = RoundTrip(hello);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().replica, 5);
  EXPECT_EQ(out.value().pid, 123456789);
}

TEST(MessagesTest, ConfigRoundTripsModelAndTuning) {
  ConfigMessage config;
  config.model = TinyConfig();
  config.kv_block_size = 8;
  config.kv_num_blocks = 99;
  config.engine_seed = 0xC0FFEE;
  config.theta_ms = 12.5;
  config.exec_estimate_ms = 3.25;
  config.switch_ms = 0.75;
  config.slo_urgency_fraction = 0.4;
  config.max_batch_size = 3;
  config.device_pool_bytes = 12345678;
  config.queue_capacity = 17;
  config.heartbeat_period_ms = 7.5;

  Result<ConfigMessage> out = RoundTrip(config);
  ASSERT_TRUE(out.ok());
  const ConfigMessage& decoded = out.value();
  EXPECT_EQ(decoded.model.name, config.model.name);
  EXPECT_EQ(decoded.model.num_layers, config.model.num_layers);
  EXPECT_EQ(decoded.model.d_model, config.model.d_model);
  EXPECT_EQ(decoded.model.vocab_size, config.model.vocab_size);
  EXPECT_EQ(decoded.kv_block_size, 8);
  EXPECT_EQ(decoded.kv_num_blocks, 99);
  EXPECT_EQ(decoded.engine_seed, 0xC0FFEEu);
  EXPECT_EQ(decoded.theta_ms, 12.5);
  EXPECT_EQ(decoded.exec_estimate_ms, 3.25);
  EXPECT_EQ(decoded.switch_ms, 0.75);
  EXPECT_EQ(decoded.slo_urgency_fraction, 0.4);
  EXPECT_EQ(decoded.max_batch_size, 3);
  EXPECT_EQ(decoded.device_pool_bytes, 12345678);
  EXPECT_EQ(decoded.queue_capacity, 17);
  EXPECT_EQ(decoded.heartbeat_period_ms, 7.5);
}

TEST(MessagesTest, AckPrewarmStartStopGoodbyeRoundTrip) {
  AckMessage ack;
  ack.value = 42;
  ack.code = StatusCode::kInvalidArgument;
  ack.message = "nope";
  Result<AckMessage> ack_out = RoundTrip(ack);
  ASSERT_TRUE(ack_out.ok());
  EXPECT_EQ(ack_out.value().value, 42);
  EXPECT_EQ(ack_out.value().code, StatusCode::kInvalidArgument);
  EXPECT_EQ(ack_out.value().message, "nope");

  PrewarmMessage prewarm;
  prewarm.adapter_ids = {0, 3, 1};
  Result<PrewarmMessage> prewarm_out = RoundTrip(prewarm);
  ASSERT_TRUE(prewarm_out.ok());
  EXPECT_EQ(prewarm_out.value().adapter_ids, prewarm.adapter_ids);

  EXPECT_TRUE(RoundTrip(StartMessage{}).ok());
  EXPECT_TRUE(RoundTrip(StopMessage{}).ok());

  GoodbyeMessage goodbye;
  goodbye.completed = 314;
  Result<GoodbyeMessage> goodbye_out = RoundTrip(goodbye);
  ASSERT_TRUE(goodbye_out.ok());
  EXPECT_EQ(goodbye_out.value().completed, 314);
}

TEST(MessagesTest, RequestRoundTripsIncludingInjectedEmbeddings) {
  RequestMessage message;
  EngineRequest& request = message.request;
  request.id = -7;  // ids are signed on the wire
  request.prompt_tokens = {1, 2, 3, 500, 0};
  request.adapter_id = -1;
  request.max_new_tokens = 5;
  request.use_task_head = true;
  request.eos_token = 2;
  request.sampling.temperature = 0.5f;
  request.sampling.top_k = 40;
  request.sampling.seed = 0xFACEu;
  request.capture_final_hidden = true;
  InjectedEmbeddings injected;
  injected.position = 1;
  injected.embeddings = Tensor(Shape(2, 3));
  for (int64_t i = 0; i < injected.embeddings.NumElements(); ++i) {
    injected.embeddings.data()[static_cast<size_t>(i)] = 0.25f * static_cast<float>(i);
  }
  request.injected.push_back(injected);

  Result<RequestMessage> out = RoundTrip(message);
  ASSERT_TRUE(out.ok());
  const EngineRequest& decoded = out.value().request;
  EXPECT_EQ(decoded.id, -7);
  EXPECT_EQ(decoded.prompt_tokens, request.prompt_tokens);
  EXPECT_EQ(decoded.adapter_id, -1);
  EXPECT_EQ(decoded.max_new_tokens, 5);
  EXPECT_TRUE(decoded.use_task_head);
  EXPECT_EQ(decoded.eos_token, 2);
  EXPECT_EQ(decoded.sampling.temperature, 0.5f);
  EXPECT_EQ(decoded.sampling.top_k, 40);
  EXPECT_EQ(decoded.sampling.seed, 0xFACEu);
  EXPECT_TRUE(decoded.capture_final_hidden);
  ASSERT_EQ(decoded.injected.size(), 1u);
  EXPECT_EQ(decoded.injected[0].position, 1);
  ASSERT_EQ(decoded.injected[0].embeddings.NumElements(), 6);
  EXPECT_EQ(std::memcmp(decoded.injected[0].embeddings.data(), injected.embeddings.data(),
                        6 * sizeof(float)),
            0);
}

TEST(MessagesTest, ResultAndFailureRoundTrip) {
  ResultMessage result;
  result.result.request_id = 9;
  result.result.output_tokens = {4, 5, 6};
  result.result.head_option = 2;
  result.result.prefill_tokens = 12;
  result.result.reused_tokens = 4;
  result.result.decode_steps = 3;
  result.result.final_hidden = {1.0f, -2.0f};
  Result<ResultMessage> result_out = RoundTrip(result);
  ASSERT_TRUE(result_out.ok());
  EXPECT_EQ(result_out.value().result.request_id, 9);
  EXPECT_EQ(result_out.value().result.output_tokens, result.result.output_tokens);
  EXPECT_EQ(result_out.value().result.head_option, 2);
  EXPECT_EQ(result_out.value().result.prefill_tokens, 12);
  EXPECT_EQ(result_out.value().result.reused_tokens, 4);
  EXPECT_EQ(result_out.value().result.decode_steps, 3);
  EXPECT_EQ(result_out.value().result.final_hidden, result.result.final_hidden);

  FailureMessage failure;
  failure.request_id = 11;
  failure.code = StatusCode::kUnavailable;
  failure.message = "replica 2 executor killed";
  Result<FailureMessage> failure_out = RoundTrip(failure);
  ASSERT_TRUE(failure_out.ok());
  EXPECT_EQ(failure_out.value().request_id, 11);
  EXPECT_EQ(failure_out.value().ToStatus().code(), StatusCode::kUnavailable);
  EXPECT_EQ(failure_out.value().message, "replica 2 executor killed");
}

TEST(MessagesTest, HeartbeatRoundTrips) {
  HeartbeatMessage heartbeat;
  heartbeat.worker_ms = 1234.5;
  heartbeat.depth = 6;
  heartbeat.completed = 78;
  Result<HeartbeatMessage> out = RoundTrip(heartbeat);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().worker_ms, 1234.5);
  EXPECT_EQ(out.value().depth, 6);
  EXPECT_EQ(out.value().completed, 78);
}

TEST(MessagesTest, TruncatedBodyAndTrailingGarbageAreRejected) {
  HelloMessage hello;
  hello.replica = 1;
  hello.pid = 100000;  // multi-byte varint, so truncation bites
  const std::string payload = PayloadOf(EncodeMessageFrame(hello));
  Result<Envelope> envelope = DecodeEnvelope(payload);
  ASSERT_TRUE(envelope.ok());

  Envelope truncated = envelope.value();
  ASSERT_FALSE(truncated.body.empty());
  truncated.body.pop_back();
  EXPECT_FALSE(DecodeAs<HelloMessage>(truncated).ok());

  Envelope trailing = envelope.value();
  trailing.body.push_back('\0');
  EXPECT_FALSE(DecodeAs<HelloMessage>(trailing).ok());  // Done() rejects padding

  Envelope wrong_type = envelope.value();
  EXPECT_FALSE(DecodeAs<StopMessage>(wrong_type).ok());
}

TEST(MessagesTest, EveryTruncationOfARequestFailsCleanly) {
  RequestMessage message;
  message.request.id = 3;
  message.request.prompt_tokens = {10, 20, 30, 40};
  const std::string payload = PayloadOf(EncodeMessageFrame(message));
  Result<Envelope> envelope = DecodeEnvelope(payload);
  ASSERT_TRUE(envelope.ok());
  const std::string body = envelope.value().body;
  for (size_t cut = 0; cut < body.size(); ++cut) {
    WireReader reader(body.data(), cut);
    RequestMessage out;
    // Either the parse fails outright or it leaves bytes it cannot explain;
    // both are protocol errors. It must never succeed with Done().
    EXPECT_FALSE(RequestMessage::Parse(reader, &out) && reader.Done()) << "cut at " << cut;
  }
}

// --- Disaggregated KV handoff frames ----------------------------------------

// A structurally valid meta: 6 computed tokens in blocks of 4 -> 2 pages,
// one sampled token, so tokens holds computed + generated entries.
KvHandleMetaMessage ValidKvMeta() {
  KvHandleMetaMessage meta;
  meta.request_id = 42;
  meta.computed = 6;
  meta.reused = 2;
  meta.generated = 1;
  meta.block_size = 4;
  meta.num_pages = 2;
  meta.tokens = {1, 2, 3, 4, 5, 6, 7};
  meta.captured_hidden = {0.5f, -1.25f};
  return meta;
}

TEST(KvWireTest, HandleMetaRoundTripsAndRebuildsPageSkeleton) {
  const KvHandleMetaMessage meta = ValidKvMeta();
  Result<KvHandleMetaMessage> out = RoundTrip(meta);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().request_id, 42);
  EXPECT_EQ(out.value().computed, 6);
  EXPECT_EQ(out.value().reused, 2);
  EXPECT_EQ(out.value().generated, 1);
  EXPECT_EQ(out.value().block_size, 4);
  EXPECT_EQ(out.value().num_pages, 2);
  EXPECT_EQ(out.value().tokens, meta.tokens);
  EXPECT_EQ(out.value().captured_hidden, meta.captured_hidden);

  KvHandle handle;
  out.value().ToHandle(&handle);
  EXPECT_EQ(handle.request_id, 42);
  EXPECT_EQ(handle.tokens, meta.tokens);
  ASSERT_EQ(handle.pages.size(), 2u);
  EXPECT_EQ(handle.pages[0].index, 0);
  EXPECT_EQ(handle.pages[1].index, 1);
  EXPECT_TRUE(handle.pages[0].data.empty());  // KvPage frames fill these in
}

TEST(KvWireTest, HandleMetaFromHandleSurvivesTheWire) {
  KvHandle handle;
  handle.request_id = 9;
  handle.tokens = {10, 11, 12, 13, 14};
  handle.computed = 4;
  handle.reused = 0;
  handle.generated = 1;
  handle.block_size = 4;
  handle.pages.resize(1);
  handle.pages[0].index = 0;
  handle.pages[0].data = {3.0f, 4.0f};
  handle.captured_hidden = {7.0f};

  Result<KvHandleMetaMessage> out = RoundTrip(KvHandleMetaMessage::FromHandle(handle));
  ASSERT_TRUE(out.ok());
  KvHandle back;
  out.value().ToHandle(&back);
  EXPECT_EQ(back.request_id, handle.request_id);
  EXPECT_EQ(back.tokens, handle.tokens);
  EXPECT_EQ(back.computed, handle.computed);
  EXPECT_EQ(back.generated, handle.generated);
  EXPECT_EQ(back.block_size, handle.block_size);
  EXPECT_EQ(back.captured_hidden, handle.captured_hidden);
  ASSERT_EQ(back.pages.size(), 1u);  // skeleton only; data rides in KvPage frames
}

TEST(KvWireTest, HandleMetaRejectsStructuralCorruption) {
  auto reject = [](KvHandleMetaMessage meta, const char* what) {
    const std::string payload = PayloadOf(EncodeMessageFrame(meta));
    Result<Envelope> envelope = DecodeEnvelope(payload);
    ASSERT_TRUE(envelope.ok()) << what;
    EXPECT_FALSE(DecodeAs<KvHandleMetaMessage>(envelope.value()).ok()) << what;
  };

  KvHandleMetaMessage meta = ValidKvMeta();
  meta.num_pages += 1;
  reject(meta, "page count disagrees with computed/block_size");

  meta = ValidKvMeta();
  meta.tokens.pop_back();
  reject(meta, "token count disagrees with computed + generated");

  meta = ValidKvMeta();
  meta.computed = 0;
  reject(meta, "no computed tokens");

  meta = ValidKvMeta();
  meta.reused = meta.computed + 1;
  reject(meta, "reused exceeds computed");

  meta = ValidKvMeta();
  meta.block_size = 0;
  reject(meta, "zero block size");

  meta = ValidKvMeta();
  meta.generated = 0;
  reject(meta, "no sampled token");
}

TEST(KvWireTest, EveryTruncationOfAHandleMetaFailsCleanly) {
  WireWriter writer;
  ValidKvMeta().AppendTo(writer);
  const std::string body = writer.Take();
  for (size_t cut = 0; cut < body.size(); ++cut) {
    WireReader reader(body.data(), cut);
    KvHandleMetaMessage out;
    EXPECT_FALSE(KvHandleMetaMessage::Parse(reader, &out) && reader.Done()) << "cut at " << cut;
  }
}

TEST(KvWireTest, PageRoundTripsBitExact) {
  KvPageMessage page;
  page.request_id = 42;
  page.page_index = 1;
  page.data = {1.0f, -0.0f, 3.5f};
  Result<KvPageMessage> out = RoundTrip(page);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().request_id, 42);
  EXPECT_EQ(out.value().page_index, 1);
  ASSERT_EQ(out.value().data.size(), 3u);
  EXPECT_EQ(std::memcmp(out.value().data.data(), page.data.data(), 3 * sizeof(float)), 0);
}

TEST(KvWireTest, PageRejectsEmptyNegativeAndOversized) {
  KvPageMessage page;
  page.request_id = 42;
  page.page_index = 0;
  page.data = {1.0f};

  KvPageMessage empty = page;
  empty.data.clear();
  EXPECT_FALSE(RoundTrip(empty).ok());  // a page with no floats is meaningless

  KvPageMessage negative = page;
  negative.page_index = -1;
  EXPECT_FALSE(RoundTrip(negative).ok());

  // An adversarial frame declaring more floats than the 16 MiB page cap: the
  // parser must refuse on the declared count, before trusting the length.
  WireWriter writer;
  writer.SignedVarint(7);
  writer.SignedVarint(0);
  writer.Varint((1u << 22) + 1);
  Envelope oversized;
  oversized.type = MessageType::kKvPage;
  oversized.body = writer.Take();
  EXPECT_FALSE(DecodeAs<KvPageMessage>(oversized).ok());
}

TEST(MessagesTest, RequestStageFlagsRoundTripAndConflictIsRejected) {
  RequestMessage prefill;
  prefill.request.id = 1;
  prefill.request.prompt_tokens = {1, 2};
  prefill.request.prefill_only = true;
  Result<RequestMessage> out = RoundTrip(prefill);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().request.prefill_only);
  EXPECT_FALSE(out.value().has_resume);

  RequestMessage resume;
  resume.request.id = 2;
  resume.request.prompt_tokens = {3, 4};
  resume.request.resume_handle = std::make_shared<KvHandle>();
  out = RoundTrip(resume);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().request.prefill_only);
  EXPECT_TRUE(out.value().has_resume);  // the handle itself ships as preceding frames
  EXPECT_EQ(out.value().request.resume_handle, nullptr);

  // A request claiming to be both stages at once is a protocol error.
  RequestMessage conflict;
  conflict.request.id = 3;
  conflict.request.prompt_tokens = {5};
  conflict.request.prefill_only = true;
  conflict.request.resume_handle = std::make_shared<KvHandle>();
  const std::string payload = PayloadOf(EncodeMessageFrame(conflict));
  Result<Envelope> envelope = DecodeEnvelope(payload);
  ASSERT_TRUE(envelope.ok());
  EXPECT_FALSE(DecodeAs<RequestMessage>(envelope.value()).ok());
}

TEST(MessagesTest, ResultExpectsHandleFollowsAttachedHandle) {
  ResultMessage message;
  message.result.request_id = 5;
  message.result.output_tokens = {1};
  message.result.handle = std::make_shared<KvHandle>();
  Result<ResultMessage> out = RoundTrip(message);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().expects_handle);
  EXPECT_EQ(out.value().result.handle, nullptr);

  message.result.handle = nullptr;
  out = RoundTrip(message);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().expects_handle);
}

// --- Adapter shipping -------------------------------------------------------

TEST(AdapterWireTest, AdapterWeightsCrossBitExact) {
  const ModelConfig config = TinyConfig();
  Rng rng(0x10adu);
  LoraAdapter adapter =
      LoraAdapter::Random("wire-adapter", config.num_layers, config.d_model, /*rank=*/4, rng);
  adapter.AddFusedDomain("medical");
  adapter.AddFusedDomain("satellite");

  const std::string payload = PayloadOf(EncodeAdapterFrame(adapter));
  Result<Envelope> envelope = DecodeEnvelope(payload);
  ASSERT_TRUE(envelope.ok());
  ASSERT_EQ(envelope.value().type, MessageType::kLoadAdapter);

  WireReader reader(envelope.value().body);
  Result<LoraAdapter> decoded = ParseAdapter(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(reader.Done());

  EXPECT_EQ(decoded.value().name(), adapter.name());
  EXPECT_EQ(decoded.value().num_layers(), adapter.num_layers());
  EXPECT_EQ(decoded.value().d_model(), adapter.d_model());
  EXPECT_EQ(decoded.value().rank(), adapter.rank());
  EXPECT_EQ(decoded.value().scaling(), adapter.scaling());
  EXPECT_EQ(decoded.value().fused_domains(), adapter.fused_domains());
  EXPECT_EQ(decoded.value().task_head().has_value(), adapter.task_head().has_value());
  ASSERT_EQ(decoded.value().targets(), adapter.targets());
  for (LoraTarget target : adapter.targets()) {
    for (int layer = 0; layer < adapter.num_layers(); ++layer) {
      const LoraLayerWeights& a = adapter.layer(target, layer);
      const LoraLayerWeights& b = decoded.value().layer(target, layer);
      ASSERT_EQ(a.down.NumElements(), b.down.NumElements());
      ASSERT_EQ(a.up.NumElements(), b.up.NumElements());
      EXPECT_EQ(std::memcmp(a.down.data(), b.down.data(),
                            static_cast<size_t>(a.down.NumElements()) * sizeof(float)),
                0);
      EXPECT_EQ(std::memcmp(a.up.data(), b.up.data(),
                            static_cast<size_t>(a.up.NumElements()) * sizeof(float)),
                0);
    }
  }
}

TEST(AdapterWireTest, ImplausibleDimensionsAreRejected) {
  WireWriter writer;
  writer.Str("evil");
  writer.SignedVarint(1);    // layers
  writer.SignedVarint(4);    // d_model
  writer.SignedVarint(8);    // rank > d_model
  writer.F32(1.0f);
  writer.Varint(1);          // one target
  WireReader reader(writer.data());
  EXPECT_FALSE(ParseAdapter(reader).ok());

  WireWriter negative;
  negative.Str("evil");
  negative.SignedVarint(-1);  // negative layer count
  negative.SignedVarint(4);
  negative.SignedVarint(2);
  negative.F32(1.0f);
  negative.Varint(1);
  WireReader negative_reader(negative.data());
  EXPECT_FALSE(ParseAdapter(negative_reader).ok());
}

// --- Channel over a real socketpair ----------------------------------------

TEST(ChannelTest, MessagesCrossASocketPairBothWays) {
  Result<std::pair<Fd, Fd>> pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  Channel master(std::move(pair.value().first));
  Channel executor(std::move(pair.value().second));

  HelloMessage hello;
  hello.replica = 2;
  hello.pid = 777;
  ASSERT_TRUE(executor.SendMsg(hello).ok());
  Result<HelloMessage> hello_out = master.RecvMsg<HelloMessage>();
  ASSERT_TRUE(hello_out.ok());
  EXPECT_EQ(hello_out.value().replica, 2);
  EXPECT_EQ(hello_out.value().pid, 777);

  // A large frame (an adapter) survives the kernel's chunked delivery.
  const ModelConfig config = TinyConfig();
  Rng rng(0xcafeu);
  const LoraAdapter adapter =
      LoraAdapter::Random("channel-adapter", config.num_layers, config.d_model, 4, rng);
  WireWriter writer;
  AppendAdapter(writer, adapter);
  ASSERT_TRUE(master.Send(MessageType::kLoadAdapter, writer.Take()).ok());
  Result<Envelope> envelope = executor.Recv();
  ASSERT_TRUE(envelope.ok());
  ASSERT_EQ(envelope.value().type, MessageType::kLoadAdapter);
  WireReader reader(envelope.value().body);
  Result<LoraAdapter> decoded = ParseAdapter(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().name(), "channel-adapter");
}

TEST(ChannelTest, PeerCloseSurfacesAsUnavailable) {
  Result<std::pair<Fd, Fd>> pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  Channel reader(std::move(pair.value().first));
  {
    const Fd peer = std::move(pair.value().second);
    EXPECT_GE(peer.get(), 0);  // held, then closed on scope exit
  }
  Result<Envelope> envelope = reader.Recv();
  EXPECT_FALSE(envelope.ok());
  EXPECT_EQ(envelope.status().code(), StatusCode::kUnavailable);
}

TEST(ChannelTest, RecvTimeoutSurfacesAsDeadlineExceeded) {
  Result<std::pair<Fd, Fd>> pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  Channel reader(std::move(pair.value().first));
  Channel silent(std::move(pair.value().second));
  ASSERT_TRUE(reader.SetRecvTimeoutMs(20.0).ok());
  Result<Envelope> envelope = reader.Recv();
  EXPECT_FALSE(envelope.ok());
  EXPECT_EQ(envelope.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace net
}  // namespace vlora

// Unit tests for the event tracer, the metrics registry, the exporters and
// the TraceMatcher test utility itself. The concurrent-emission test also
// runs under ThreadSanitizer via scripts/verify.sh (ctest label
// "concurrency").

#include "src/common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/server.h"
#include "tests/trace_matcher.h"

namespace vlora {
namespace {

using trace::TraceEvent;
using trace::TraceEventKind;
using trace::TraceMatcher;
using trace::TraceSession;

EngineRequest MakeRequest(int64_t id, int adapter, int prompt_len) {
  EngineRequest request;
  request.id = id;
  request.adapter_id = adapter;
  for (int i = 0; i < prompt_len; ++i) {
    request.prompt_tokens.push_back(2 + (i % 50));
  }
  request.max_new_tokens = 2;
  request.eos_token = -1;
  return request;
}

TEST(TraceTest, DisabledFastPathEmitsNothing) {
  TraceSession session;
  session.Stop();
  trace::EmitEnqueued(/*request_id=*/1, /*adapter=*/0, /*replica=*/0);
  trace::EmitRetry(/*request_id=*/1, /*adapter=*/0, /*attempt=*/2);
  EXPECT_TRUE(session.Collect().empty());
  EXPECT_EQ(session.dropped_events(), 0);
}

TEST(TraceTest, WraparoundDropsOldestAndCountsDropped) {
  trace::TraceOptions options;
  options.ring_capacity = 8;
  TraceSession session(options);
  for (int64_t id = 0; id < 20; ++id) {
    trace::EmitEnqueued(id, /*adapter=*/0, /*replica=*/0);
  }
  session.Stop();
  const std::vector<TraceEvent> events = session.Collect();
  ASSERT_EQ(events.size(), 8u);
  // The ring keeps the newest events; ids 0..11 were overwritten.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].request_id, 12 + static_cast<int64_t>(i));
  }
  EXPECT_EQ(session.dropped_events(), 12);
}

TEST(TraceTest, NewSessionLogicallyClearsOldEvents) {
  {
    TraceSession first;
    trace::EmitQuarantine(0);
    trace::EmitQuarantine(1);
  }
  TraceSession second;
  trace::EmitReadmit(3);
  second.Stop();
  const std::vector<TraceEvent> events = second.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kReadmit);
  EXPECT_EQ(events[0].replica, 3);
  EXPECT_EQ(second.dropped_events(), 0);
}

// Per-thread buffers make emission wait-free and race-free; this is the
// TSan-checked shape: many threads emit concurrently, collection happens
// after they joined.
TEST(TraceTest, ConcurrentEmissionFromManyThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  TraceSession session;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        trace::EmitEnqueued(/*request_id=*/int64_t{t} * kPerThread + i, /*adapter=*/t,
                            /*replica=*/t);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  session.Stop();
  const std::vector<TraceEvent> events = session.Collect();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(session.dropped_events(), 0);
  // Collect returns a single timestamp-sorted stream.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].when_ms, events[i].when_ms);
  }
  TraceMatcher matcher(events);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(matcher.CountForReplica(TraceEventKind::kEnqueued, t), kPerThread);
  }
}

// The adversarial twin of the test above, for the race detector: a toggler
// thread bumps the epoch with Start/Stop while emitter threads run the Emit
// fast path and hammer MetricsRegistry counters. This is exactly the
// epoch-seqlock + counter protocol surface registered in tools/atomics.toml;
// TSan (ctest label "concurrency" under scripts/verify.sh) keeps the
// weakened orderings honest. Ring capacity stays constant across Starts so
// per-thread rings are allocated once and only epochs race.
TEST(TraceTest, ConcurrentEpochBumpsRacingEmittersAndMetrics) {
  constexpr int kEmitters = 4;
  constexpr int kPerThread = 2000;
  constexpr int kToggles = 200;
  constexpr int64_t kCapacity = 1 << 12;
  trace::Tracer& tracer = trace::Tracer::Global();
  Counter* const stress = MetricsRegistry::Global().counter("test.trace.stress");
  Gauge* const depth = MetricsRegistry::Global().gauge("test.trace.stress_depth");
  const int64_t stress_before = stress->value();

  tracer.Start(kCapacity);
  std::vector<std::thread> threads;
  threads.reserve(kEmitters + 1);
  threads.emplace_back([&tracer] {
    for (int i = 0; i < kToggles; ++i) {
      tracer.Stop();
      std::this_thread::yield();
      tracer.Start(kCapacity);
    }
  });
  for (int t = 0; t < kEmitters; ++t) {
    threads.emplace_back([t, stress, depth] {
      for (int i = 0; i < kPerThread; ++i) {
        trace::EmitEnqueued(/*request_id=*/int64_t{t} * kPerThread + i, /*adapter=*/t,
                            /*replica=*/t);
        stress->Increment();
        depth->Set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  tracer.Stop();

  // Counters are exact regardless of the racing epochs (relaxed RMW is still
  // one atomic add per call); the trace keeps a subset — whatever landed in
  // the final epoch — and every kept event is well-formed.
  EXPECT_EQ(stress->value() - stress_before, int64_t{kEmitters} * kPerThread);
  const std::vector<TraceEvent> events = tracer.Collect();
  EXPECT_LE(events.size(), static_cast<size_t>(kEmitters) * kPerThread);
  EXPECT_GE(tracer.dropped_events(), 0);
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.kind, TraceEventKind::kEnqueued);
    EXPECT_GE(event.replica, 0);
    EXPECT_LT(event.replica, kEmitters);
  }
}

TEST(TraceTest, ChromeJsonExportRoundTrips) {
  TraceSession session;
  trace::EmitRequestAdmitted(7, /*adapter=*/1);
  trace::EmitRouted(7, /*adapter=*/1, /*replica=*/0, /*affinity_hit=*/true, /*spilled=*/false);
  trace::EmitEnqueued(7, /*adapter=*/1, /*replica=*/0);
  trace::EmitBatchStepBegin(/*replica=*/0, /*batch_size=*/1);
  trace::EmitKernelDispatch(8, 64, 64, 32, 64, 64, 8, 8);
  trace::EmitBatchStepEnd(/*replica=*/0, /*completed_count=*/1);
  trace::EmitCompleted(7, /*adapter=*/1, /*replica=*/0, StatusCode::kOk);
  session.Stop();
  const std::vector<TraceEvent> events = session.Collect();
  ASSERT_EQ(events.size(), 7u);

  const std::string json = trace::ChromeTraceJson(events);
  int64_t exported = 0;
  ASSERT_TRUE(trace::ValidateChromeTraceJson(json, &exported)) << json;
  // Every event plus the process_name record and one thread_name per distinct
  // replica track (replica 0 and the unattributed -1 track are both absent
  // here: all seven events carry replica 0 except Admitted/Routed... count
  // directly instead of hardcoding).
  std::vector<int32_t> replicas;
  for (const TraceEvent& event : events) {
    replicas.push_back(event.replica);
  }
  std::sort(replicas.begin(), replicas.end());
  replicas.erase(std::unique(replicas.begin(), replicas.end()), replicas.end());
  EXPECT_EQ(exported, static_cast<int64_t>(events.size() + 1 + replicas.size()));
  // Spot-check content: the tile config and terminal status are in the args.
  EXPECT_NE(json.find("\"tile\":\"(32,64,64,8,8)\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"OK\""), std::string::npos);
}

TEST(TraceTest, ValidateChromeTraceJsonRejectsMalformedInput) {
  EXPECT_FALSE(trace::ValidateChromeTraceJson("", nullptr));
  EXPECT_FALSE(trace::ValidateChromeTraceJson("{", nullptr));
  EXPECT_FALSE(trace::ValidateChromeTraceJson("[]", nullptr));            // no traceEvents
  EXPECT_FALSE(trace::ValidateChromeTraceJson("{\"a\":1}", nullptr));     // no traceEvents
  EXPECT_FALSE(trace::ValidateChromeTraceJson("{\"traceEvents\":[}", nullptr));
  EXPECT_FALSE(trace::ValidateChromeTraceJson("{\"traceEvents\":[]} x", nullptr));
  int64_t count = -1;
  EXPECT_TRUE(trace::ValidateChromeTraceJson("{\"traceEvents\":[]}", &count));
  EXPECT_EQ(count, 0);
  EXPECT_TRUE(trace::ValidateChromeTraceJson("{\"traceEvents\":[{\"a\":[1,2]},3]}", &count));
  EXPECT_EQ(count, 2);
}

// Full single-server path: batch-step spans and kernel dispatches appear,
// Begin/End pair up, and the metrics registry advances alongside.
TEST(TraceTest, EngineRunIsTracedEndToEnd) {
  const ModelConfig config = TinyConfig();
  VloraServer server(config);
  Rng rng(17);
  server.AddAdapter(std::make_unique<LoraAdapter>(
      LoraAdapter::Random("trace-a", config.num_layers, config.d_model, 4, rng)));

  Counter* const steps = MetricsRegistry::Global().counter("engine.batch_steps");
  Counter* const dispatches = MetricsRegistry::Global().counter("atmm.dispatches");
  const int64_t steps_before = steps->value();
  const int64_t dispatches_before = dispatches->value();

  TraceSession session;
  server.Submit(MakeRequest(1, 0, 6));
  server.Submit(MakeRequest(2, 0, 4));
  const std::vector<EngineResult> results = server.RunAll();
  session.Stop();
  ASSERT_EQ(results.size(), 2u);

  TraceMatcher matcher(session.Collect());
  const int64_t begins = matcher.Count(TraceEventKind::kBatchStepBegin);
  EXPECT_GT(begins, 0);
  EXPECT_EQ(begins, matcher.Count(TraceEventKind::kBatchStepEnd));
  EXPECT_GT(matcher.Count(TraceEventKind::kKernelDispatch), 0);
  for (const TraceEvent& event : matcher.events()) {
    if (event.kind == TraceEventKind::kKernelDispatch) {
      EXPECT_GT(event.m, 0);
      EXPECT_GT(event.n, 0);
      EXPECT_GT(event.k, 0);
      EXPECT_GT(event.tile_mr, 0) << "tile config missing from kernel event";
    }
  }
  // Standalone server: no replica attribution.
  EXPECT_EQ(matcher.CountForReplica(TraceEventKind::kBatchStepBegin, -1),
            matcher.Count(TraceEventKind::kBatchStepBegin));
  EXPECT_EQ(steps->value() - steps_before, begins);
  EXPECT_GT(dispatches->value() - dispatches_before, 0);
}

TEST(TraceTest, RequestSpanRollupAndTable) {
  TraceSession session;
  trace::EmitRequestAdmitted(11, /*adapter=*/2);
  trace::EmitRouted(11, 2, /*replica=*/1, /*affinity_hit=*/false, /*spilled=*/true);
  trace::EmitEnqueued(11, 2, /*replica=*/1);
  trace::EmitRetry(11, 2, /*attempt=*/2);
  trace::EmitEnqueued(11, 2, /*replica=*/0);
  trace::EmitCompleted(11, 2, /*replica=*/0, StatusCode::kOk);
  trace::EmitRequestAdmitted(12, /*adapter=*/3);
  session.Stop();

  const std::vector<trace::RequestSpan> spans = trace::BuildRequestSpans(session.Collect());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].request_id, 11);
  EXPECT_EQ(spans[0].adapter, 2);
  EXPECT_EQ(spans[0].replica, 0);  // last accepting replica wins
  EXPECT_EQ(spans[0].retries, 1);
  EXPECT_TRUE(spans[0].completed);
  EXPECT_EQ(spans[0].status, StatusCode::kOk);
  EXPECT_GE(spans[0].TotalMs(), spans[0].RouteMs());
  EXPECT_EQ(spans[1].request_id, 12);
  EXPECT_FALSE(spans[1].completed);

  const std::string table = trace::RequestSpanTable(spans, /*max_rows=*/10).ToString();
  EXPECT_NE(table.find("11"), std::string::npos);
  EXPECT_NE(table.find("all (2)"), std::string::npos);
}

TEST(TraceTest, MetricsRegistryCountersGaugesSnapshotReset) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* const counter = registry.counter("test.trace.counter");
  EXPECT_EQ(counter, registry.counter("test.trace.counter"));  // stable handle
  counter->Increment();
  counter->Add(4);
  Gauge* const gauge = registry.gauge("test.trace.gauge");
  gauge->Set(2.5);

  const MetricsRegistry::Snapshot snapshot = registry.Snap();
  EXPECT_EQ(snapshot.counters.at("test.trace.counter"), 5);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("test.trace.gauge"), 2.5);

  registry.Reset();
  EXPECT_EQ(counter->value(), 0);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  // Handles survive a reset.
  EXPECT_EQ(registry.counter("test.trace.counter"), counter);
}

TEST(TraceTest, TraceMatcherSequenceCountsAndOrdering) {
  TraceSession session;
  trace::EmitRequestAdmitted(5, 0);
  trace::EmitRouted(5, 0, 1, false, false);
  trace::EmitEnqueued(5, 0, 1);
  trace::EmitQuarantine(1);
  trace::EmitReadmit(1);
  trace::EmitCompleted(5, 0, 1, StatusCode::kOk);
  session.Stop();

  TraceMatcher matcher(session.Collect());
  EXPECT_TRUE(matcher.ExpectSequence(
      5, {TraceEventKind::kRequestAdmitted, TraceEventKind::kRouted, TraceEventKind::kEnqueued,
          TraceEventKind::kCompleted}));
  // Missing kinds and wrong order both fail.
  EXPECT_FALSE(matcher.ExpectSequence(5, {TraceEventKind::kRetry}));
  EXPECT_FALSE(
      matcher.ExpectSequence(5, {TraceEventKind::kCompleted, TraceEventKind::kRequestAdmitted}));
  EXPECT_TRUE(matcher.ExpectAllBefore({TraceEventKind::kQuarantine, 1},
                                      {TraceEventKind::kReadmit, 1}));
  EXPECT_FALSE(matcher.ExpectAllBefore({TraceEventKind::kReadmit, 1},
                                       {TraceEventKind::kQuarantine, 1}));
  EXPECT_TRUE(matcher.ExpectCompleted(5, StatusCode::kOk));
  EXPECT_FALSE(matcher.ExpectCompleted(5, StatusCode::kCancelled));
  EXPECT_FALSE(matcher.ExpectCompleted(6, StatusCode::kOk));
  EXPECT_TRUE(matcher.ExpectSpanWithin(5, 0.0, 1e6));
  EXPECT_FALSE(matcher.ExpectSpanWithin(6, 0.0, 1e6));
  EXPECT_EQ(matcher.CountForRequest(TraceEventKind::kEnqueued, 5), 1);
  EXPECT_EQ(matcher.CountAfter({TraceEventKind::kEnqueued, 1},
                               matcher.FirstTime({TraceEventKind::kQuarantine, 1})),
            0);
}

}  // namespace
}  // namespace vlora

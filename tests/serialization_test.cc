#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/engine/engine.h"
#include "src/kernels/tiling_search.h"
#include "src/lora/serialization.h"

namespace vlora {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

LoraAdapter SampleAdapter(uint64_t seed) {
  Rng rng(seed);
  LoraAdapter adapter = LoraAdapter::Random("traffic-detect", 3, 32, 8, rng, 0.1f,
                                            {LoraTarget::kWq, LoraTarget::kWo});
  adapter.set_scaling(0.75f);
  VisionTaskHead head;
  head.task = VisionTask::kObjectDetection;
  head.weight = Tensor::Random(Shape(32, 12), rng, 0.3f);
  adapter.SetTaskHead(std::move(head));
  adapter.AddFusedDomain("license-plate");
  adapter.AddFusedDomain("traffic-sign");
  return adapter;
}

TEST(AdapterSerializationTest, RoundTripPreservesEverything) {
  const LoraAdapter original = SampleAdapter(5);
  const std::string path = TempPath("adapter_roundtrip.vlra");
  ASSERT_TRUE(SaveAdapter(original, path).ok());
  Result<LoraAdapter> loaded = LoadAdapter(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoraAdapter& adapter = loaded.value();

  EXPECT_EQ(adapter.name(), original.name());
  EXPECT_EQ(adapter.num_layers(), original.num_layers());
  EXPECT_EQ(adapter.d_model(), original.d_model());
  EXPECT_EQ(adapter.rank(), original.rank());
  EXPECT_EQ(adapter.scaling(), original.scaling());
  ASSERT_EQ(adapter.targets(), original.targets());
  for (LoraTarget target : original.targets()) {
    for (int layer = 0; layer < original.num_layers(); ++layer) {
      EXPECT_EQ(Tensor::MaxAbsDiff(adapter.layer(target, layer).down,
                                   original.layer(target, layer).down),
                0.0f);
      EXPECT_EQ(Tensor::MaxAbsDiff(adapter.layer(target, layer).up,
                                   original.layer(target, layer).up),
                0.0f);
    }
  }
  ASSERT_TRUE(adapter.task_head().has_value());
  EXPECT_EQ(adapter.task_head()->task, VisionTask::kObjectDetection);
  EXPECT_EQ(Tensor::MaxAbsDiff(adapter.task_head()->weight, original.task_head()->weight), 0.0f);
  EXPECT_EQ(adapter.fused_domains(), original.fused_domains());
}

TEST(AdapterSerializationTest, RoundTripWithoutHead) {
  Rng rng(7);
  LoraAdapter original = LoraAdapter::Random("plain", 2, 16, 4, rng);
  const std::string path = TempPath("adapter_nohead.vlra");
  ASSERT_TRUE(SaveAdapter(original, path).ok());
  Result<LoraAdapter> loaded = LoadAdapter(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().task_head().has_value());
  EXPECT_TRUE(loaded.value().fused_domains().empty());
}

TEST(AdapterSerializationTest, MissingFileIsNotFound) {
  Result<LoraAdapter> loaded = LoadAdapter(TempPath("does_not_exist.vlra"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(AdapterSerializationTest, CorruptMagicRejected) {
  const std::string path = TempPath("corrupt.vlra");
  std::ofstream out(path, std::ios::binary);
  out << "garbage data that is definitely not an adapter";
  out.close();
  Result<LoraAdapter> loaded = LoadAdapter(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdapterSerializationTest, TruncatedFileRejected) {
  const LoraAdapter original = SampleAdapter(9);
  const std::string path = TempPath("truncated.vlra");
  ASSERT_TRUE(SaveAdapter(original, path).ok());
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  Result<LoraAdapter> loaded = LoadAdapter(path);
  ASSERT_FALSE(loaded.ok());
}

TEST(AdapterSerializationTest, LoadedAdapterServesIdentically) {
  // The serialized artifact must be behaviourally identical, not just
  // structurally: same engine outputs.
  const LoraAdapter original = SampleAdapter(11);
  const std::string path = TempPath("adapter_behaviour.vlra");
  ASSERT_TRUE(SaveAdapter(original, path).ok());
  Result<LoraAdapter> loaded = LoadAdapter(path);
  ASSERT_TRUE(loaded.ok());

  ModelConfig config = TinyConfig();
  config.d_model = 32;  // matches the sample adapter
  config.num_layers = 3;
  auto run = [&](const LoraAdapter& adapter) {
    InferenceEngine engine(config, EngineOptions{});
    const int id = engine.RegisterAdapter(&adapter);
    engine.SetMode(InferMode::kUnmerged);
    EngineRequest request;
    request.id = 1;
    request.prompt_tokens = {5, 9, 23, 17, 40, 41, 42};
    request.adapter_id = id;
    request.max_new_tokens = 5;
    request.eos_token = -1;
    return engine.RunToCompletion(request).output_tokens;
  };
  EXPECT_EQ(run(original), run(loaded.value()));
}

TEST(TilingTableSerializationTest, RoundTrip) {
  AtmmDispatcher original;
  original.Register(ShapeKey{64, 32, 1024}, TileConfig{64, 32, 128, 8, 8});
  original.Register(ShapeKey{256, 1024, 64}, TileConfig{128, 64, 64, 8, 16});
  original.Register(ShapeKey{32, 16, 512}, TileConfig{16, 16, 64, 4, 4});
  const std::string path = TempPath("table.vltt");
  ASSERT_TRUE(SaveTilingTable(original, path).ok());

  AtmmDispatcher loaded;
  ASSERT_TRUE(LoadTilingTable(path, loaded).ok());
  EXPECT_EQ(loaded.TableSize(), 3);
  EXPECT_EQ(loaded.Select(64, 32, 1024), (TileConfig{64, 32, 128, 8, 8}));
  EXPECT_EQ(loaded.Select(256, 1024, 64), (TileConfig{128, 64, 64, 8, 16}));
  EXPECT_EQ(loaded.Select(32, 16, 512), (TileConfig{16, 16, 64, 4, 4}));
}

TEST(TilingTableSerializationTest, SearchThenPersistThenServe) {
  // The deployment flow: offline search -> save -> load on the serving node.
  AtmmDispatcher searched;
  TilingSearchOptions options;
  options.nk_pairs = {{32, 128}};
  options.m_min = 64;
  options.m_max = 64;
  options.m_stride_multiplier = 1;
  options.repetitions = 1;
  options.candidates = {TileConfig{16, 16, 32, 4, 4}, TileConfig{64, 32, 64, 8, 8}};
  RunTilingSearch(options, searched);
  const std::string path = TempPath("searched.vltt");
  ASSERT_TRUE(SaveTilingTable(searched, path).ok());

  AtmmDispatcher serving;
  ASSERT_TRUE(LoadTilingTable(path, serving).ok());
  EXPECT_EQ(serving.TableSize(), searched.TableSize());
  // Execution correctness through the loaded table.
  Rng rng(3);
  Tensor a = Tensor::Random(Shape(64, 128), rng, 1.0f);
  Tensor b = Tensor::Random(Shape(128, 32), rng, 1.0f);
  Tensor c = Tensor::Zeros(Shape(64, 32));
  serving.Execute(a, b, c);
  EXPECT_LT(Tensor::MaxAbsDiff(c, MatMulReference(a, b)), 1e-3f);
}

// The v2 format round-trips the (variant, format) qualification of every
// entry — a scalar-profiled config must come back in the scalar slot, not
// bleed into the AVX2 or quantized tables.
TEST(TilingTableSerializationTest, RoundTripPreservesComputePath) {
  AtmmDispatcher original;
  const TileConfig scalar_cfg{16, 16, 32, 4, 4};
  const TileConfig avx2_cfg{64, 64, 128, 8, 16};
  const TileConfig q4_cfg{128, 32, 256, 8, 8};
  original.Register(ShapeKey{64, 32, 1024}, scalar_cfg, KernelVariant::kScalar,
                    WeightFormat::kFp32);
  original.Register(ShapeKey{64, 32, 1024}, avx2_cfg, KernelVariant::kAvx2,
                    WeightFormat::kFp32);
  original.Register(ShapeKey{256, 16, 512}, q4_cfg, KernelVariant::kAvx2, WeightFormat::kQ4);
  const std::string path = TempPath("table_v2.vltt");
  ASSERT_TRUE(SaveTilingTable(original, path).ok());

  AtmmDispatcher loaded;
  ASSERT_TRUE(LoadTilingTable(path, loaded).ok());
  EXPECT_EQ(loaded.TableSize(), 3);
  EXPECT_EQ(loaded.Select(64, 32, 1024, KernelVariant::kScalar, WeightFormat::kFp32),
            scalar_cfg);
  EXPECT_EQ(loaded.Select(64, 32, 1024, KernelVariant::kAvx2, WeightFormat::kFp32), avx2_cfg);
  EXPECT_EQ(loaded.Select(256, 16, 512, KernelVariant::kAvx2, WeightFormat::kQ4), q4_cfg);
  // No cross-slot contamination.
  EXPECT_EQ(loaded.TableSize(KernelVariant::kScalar, WeightFormat::kQ4), 0);
  EXPECT_EQ(loaded.TableSize(KernelVariant::kScalar, WeightFormat::kFp32), 1);
  EXPECT_EQ(loaded.TableSize(KernelVariant::kAvx2, WeightFormat::kFp32), 1);
  EXPECT_EQ(loaded.TableSize(KernelVariant::kAvx2, WeightFormat::kQ4), 1);
}

TEST(TilingTableSerializationTest, CorruptTableRejected) {
  const std::string path = TempPath("corrupt.vltt");
  std::ofstream out(path, std::ios::binary);
  out << "nope";
  out.close();
  AtmmDispatcher dispatcher;
  EXPECT_FALSE(LoadTilingTable(path, dispatcher).ok());
}

}  // namespace
}  // namespace vlora

#include <gtest/gtest.h>

#include "src/core/generator.h"

namespace vlora {
namespace {

std::vector<KnowledgeItem> Items(VisionTask task, int count, double required,
                                 int closed_options = 0) {
  std::vector<KnowledgeItem> items;
  for (int i = 0; i < count; ++i) {
    KnowledgeItem item;
    item.domain = std::string(VisionTaskName(task)) + "-" + std::to_string(i);
    item.task = task;
    item.required_accuracy = required;
    item.closed_set_options = closed_options;
    items.push_back(item);
  }
  return items;
}

TEST(GeneratorTest, EmptyInput) {
  AccuracyOracle oracle(7, 0.0);
  const GeneratorResult result = GenerateAdapters({}, oracle);
  EXPECT_TRUE(result.adapters.empty());
  EXPECT_EQ(result.AvgDomainsPerAdapter(), 0.0);
}

TEST(GeneratorTest, EveryItemPackedExactlyOnce) {
  AccuracyOracle oracle(7, 0.0);
  std::vector<KnowledgeItem> items = Items(VisionTask::kImageClassification, 5, 90.0);
  std::vector<KnowledgeItem> more = Items(VisionTask::kVideoClassification, 5, 85.0);
  items.insert(items.end(), more.begin(), more.end());
  const GeneratorResult result = GenerateAdapters(items, oracle);
  std::vector<int> seen(items.size(), 0);
  for (const GeneratedAdapterSpec& adapter : result.adapters) {
    for (int index : adapter.item_indices) {
      ASSERT_GE(index, 0);
      ASSERT_LT(index, static_cast<int>(items.size()));
      ++seen[static_cast<size_t>(index)];
    }
  }
  for (int count : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(GeneratorTest, AllAdaptersSatisfyRequirements) {
  AccuracyOracle oracle(11, 0.3);
  std::vector<KnowledgeItem> items;
  for (VisionTask task :
       {VisionTask::kImageClassification, VisionTask::kObjectDetection,
        VisionTask::kVideoClassification}) {
    auto batch = Items(task, 4, oracle.LoraAccuracy(task, 1) - 5.0);
    items.insert(items.end(), batch.begin(), batch.end());
  }
  const GeneratorResult result = GenerateAdapters(items, oracle);
  for (const GeneratedAdapterSpec& adapter : result.adapters) {
    EXPECT_TRUE(SatisfiesRequirements(items, adapter, oracle));
  }
}

TEST(GeneratorTest, SlowDegradingTasksPackDenser) {
  AccuracyOracle oracle(7, 0.0);
  // Image classification barely degrades: 6 domains at a 90 % floor fit in
  // one adapter. Video classification collapses: the same floor forces many.
  const auto img = GenerateAdapters(Items(VisionTask::kImageClassification, 6, 90.0), oracle,
                                    GeneratorOptions{.shuffle = false});
  const auto vid = GenerateAdapters(Items(VisionTask::kVideoClassification, 6, 88.0), oracle,
                                    GeneratorOptions{.shuffle = false});
  EXPECT_EQ(img.adapters.size(), 1u);
  EXPECT_GT(vid.adapters.size(), 2u);
  EXPECT_GT(img.AvgDomainsPerAdapter(), vid.AvgDomainsPerAdapter());
}

TEST(GeneratorTest, LooseRequirementsPackEverything) {
  AccuracyOracle oracle(7, 0.0);
  const auto result = GenerateAdapters(Items(VisionTask::kVideoClassification, 6, 10.0), oracle,
                                       GeneratorOptions{.shuffle = false});
  EXPECT_EQ(result.adapters.size(), 1u);
  EXPECT_EQ(result.rollbacks, 0);
  EXPECT_DOUBLE_EQ(result.AvgDomainsPerAdapter(), 6.0);
}

TEST(GeneratorTest, RollbackCountMatchesAdapterSplits) {
  AccuracyOracle oracle(7, 0.0);
  const auto result = GenerateAdapters(Items(VisionTask::kVideoClassification, 8, 88.0), oracle,
                                       GeneratorOptions{.shuffle = false});
  // Every new adapter after the first was opened by a rollback.
  EXPECT_EQ(result.rollbacks, static_cast<int>(result.adapters.size()) - 1);
}

TEST(GeneratorTest, UnsatisfiableItemGetsSingletonAdapter) {
  AccuracyOracle oracle(7, 0.0);
  std::vector<KnowledgeItem> items = Items(VisionTask::kObjectDetection, 1, 99.9);
  const auto result = GenerateAdapters(items, oracle, GeneratorOptions{.shuffle = false});
  ASSERT_EQ(result.adapters.size(), 1u);
  EXPECT_EQ(result.adapters[0].item_indices.size(), 1u);
  EXPECT_TRUE(SatisfiesRequirements(items, result.adapters[0], oracle));
}

TEST(GeneratorTest, TaskHeadOnlyForHomogeneousClosedSet) {
  AccuracyOracle oracle(7, 0.0);
  // Homogeneous closed-set: head attached, options summed.
  auto closed = Items(VisionTask::kVideoClassification, 2, 10.0, /*closed_options=*/5);
  auto r1 = GenerateAdapters(closed, oracle, GeneratorOptions{.shuffle = false});
  ASSERT_EQ(r1.adapters.size(), 1u);
  EXPECT_TRUE(r1.adapters[0].has_task_head);
  EXPECT_EQ(r1.adapters[0].head_task, VisionTask::kVideoClassification);
  EXPECT_EQ(r1.adapters[0].head_options, 10);

  // Mixed tasks in one adapter: no head.
  std::vector<KnowledgeItem> mixed = Items(VisionTask::kImageClassification, 1, 10.0, 4);
  auto det = Items(VisionTask::kObjectDetection, 1, 10.0, 4);
  mixed.insert(mixed.end(), det.begin(), det.end());
  auto r2 = GenerateAdapters(mixed, oracle, GeneratorOptions{.shuffle = false});
  ASSERT_EQ(r2.adapters.size(), 1u);
  EXPECT_FALSE(r2.adapters[0].has_task_head);

  // Open-set outputs (VQA): no head even when homogeneous.
  auto open = Items(VisionTask::kVisualQuestionAnswering, 2, 10.0, 0);
  auto r3 = GenerateAdapters(open, oracle, GeneratorOptions{.shuffle = false});
  ASSERT_EQ(r3.adapters.size(), 1u);
  EXPECT_FALSE(r3.adapters[0].has_task_head);
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  AccuracyOracle oracle(7, 0.2);
  std::vector<KnowledgeItem> items = Items(VisionTask::kObjectDetection, 10, 60.0);
  GeneratorOptions options;
  options.seed = 5;
  const auto a = GenerateAdapters(items, oracle, options);
  const auto b = GenerateAdapters(items, oracle, options);
  ASSERT_EQ(a.adapters.size(), b.adapters.size());
  for (size_t i = 0; i < a.adapters.size(); ++i) {
    EXPECT_EQ(a.adapters[i].item_indices, b.adapters[i].item_indices);
  }
}

TEST(GeneratorTest, PaperScaleAveragesAroundFourDomains) {
  // §4.2.1: "in our practical experiments, every LoRA adapter fuses 4 domains
  // of knowledge on average". A mixed catalogue with moderate requirements
  // should land in that neighbourhood.
  AccuracyOracle oracle(7, 0.3);
  std::vector<KnowledgeItem> items;
  auto add = [&](VisionTask task, int n, double slack) {
    auto batch = Items(task, n, oracle.LoraAccuracy(task, 1) - slack);
    items.insert(items.end(), batch.begin(), batch.end());
  };
  add(VisionTask::kImageClassification, 8, 4.0);
  add(VisionTask::kObjectDetection, 8, 6.0);
  add(VisionTask::kVisualQuestionAnswering, 8, 5.0);
  const auto result = GenerateAdapters(items, oracle);
  EXPECT_GE(result.AvgDomainsPerAdapter(), 2.5);
  EXPECT_LE(result.AvgDomainsPerAdapter(), 8.0);
}

}  // namespace
}  // namespace vlora

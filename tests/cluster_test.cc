#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/cluster/cluster_server.h"
#include "src/common/trace.h"
#include "src/workload/trace_gen.h"
#include "tests/trace_matcher.h"

namespace vlora {
namespace {

using trace::TraceEventKind;
using trace::TraceMatcher;
using trace::TraceSession;

// Negative compile-time test (see thread_pool_test.cc for the convention):
// under -DVLORA_THREAD_SAFETY=ON -DVLORA_EXPECT_TS_ERROR this must fail to
// compile — the helper demands the lock via VLORA_REQUIRES but the caller
// never takes it.
#ifdef VLORA_EXPECT_TS_ERROR
struct TsRequiresProbe {
  Mutex mu{Rank::kLeaf, "TsRequiresProbe::mu"};
  int state VLORA_GUARDED_BY(mu) = 0;
  void TouchLocked() VLORA_REQUIRES(mu) { ++state; }
  void CallWithoutLock() { TouchLocked(); }  // thread-safety error here
};
#endif

// Small, fast fixtures: everything here also runs under ThreadSanitizer via
// scripts/verify.sh, so traces stay short.

std::vector<LoraAdapter> MakeAdapters(const ModelConfig& config, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<LoraAdapter> adapters;
  for (int i = 0; i < count; ++i) {
    adapters.push_back(LoraAdapter::Random("cluster-" + std::to_string(i), config.num_layers,
                                           config.d_model, 4, rng));
  }
  return adapters;
}

std::vector<Request> SkewedTrace(int num_adapters, double skewness, double rate_rps,
                                 double duration_s, uint64_t seed) {
  TraceOptions options;
  options.app = AppKind::kVisualRetrieval;
  options.duration_s = duration_s;
  options.rate_rps = rate_rps;
  options.num_adapters = num_adapters;
  options.skewness = skewness;
  options.seed = seed;
  return GenerateTrace(options);
}

TraceMapOptions SmallMap() {
  TraceMapOptions map;
  map.token_scale = 32;
  map.max_prompt_tokens = 16;
  map.max_new_tokens = 3;
  return map;
}

// --- AdapterPlacement ------------------------------------------------------

TEST(PlacementTest, HotSetReplicatedColdSetPartitioned) {
  const std::vector<double> shares = {0.6, 0.15, 0.1, 0.08, 0.05, 0.02};
  PlacementOptions options;
  options.hot_share_threshold = 0.15;
  options.max_hot = 2;
  const AdapterPlacement placement = AdapterPlacement::Compute(shares, 3, options);

  // Adapters 0 and 1 clear the threshold: homed everywhere.
  for (int adapter : {0, 1}) {
    EXPECT_TRUE(placement.IsHot(adapter));
    EXPECT_EQ(placement.HomesOf(adapter).size(), 3u);
  }
  // The cold tail lands on exactly one replica each, and every replica gets
  // at least one cold adapter (greedy balance over 4 cold adapters).
  for (int adapter : {2, 3, 4, 5}) {
    EXPECT_FALSE(placement.IsHot(adapter));
    EXPECT_EQ(placement.HomesOf(adapter).size(), 1u);
  }
  // Base-model requests have no homes.
  EXPECT_TRUE(placement.HomesOf(-1).empty());
}

TEST(PlacementTest, DeterministicForFixedShares) {
  const std::vector<double> shares = {0.3, 0.3, 0.2, 0.1, 0.1};
  const AdapterPlacement a = AdapterPlacement::Compute(shares, 4);
  const AdapterPlacement b = AdapterPlacement::Compute(shares, 4);
  for (int adapter = 0; adapter < 5; ++adapter) {
    EXPECT_EQ(a.HomesOf(adapter), b.HomesOf(adapter)) << "adapter " << adapter;
  }
}

// --- Router ----------------------------------------------------------------

TEST(RouterTest, RoundRobinCyclesDeterministically) {
  Router router(RoutePolicy::kRoundRobin, nullptr, 3, 0);
  const std::vector<int64_t> depths = {5, 0, 9};
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(router.Pick(i % 4, depths).replica, i % 3);
  }
}

TEST(RouterTest, LeastLoadedPicksMinDepthLowestIndexTie) {
  Router router(RoutePolicy::kLeastLoaded, nullptr, 4, 0);
  EXPECT_EQ(router.Pick(0, {3, 1, 1, 2}).replica, 1);
  EXPECT_EQ(router.Pick(0, {0, 0, 0, 0}).replica, 0);
}

TEST(RouterTest, AffinityPrefersHomeAndSpillsOnOverload) {
  const std::vector<double> shares = {0.5, 0.3, 0.2};
  PlacementOptions placement_options;
  placement_options.hot_share_threshold = 0.5;
  placement_options.max_hot = 1;
  const AdapterPlacement placement = AdapterPlacement::Compute(shares, 2, placement_options);
  Router router(RoutePolicy::kAdapterAffinity, &placement, 2, /*overload_depth=*/4);

  // Cold adapters 1 and 2 each have a single home.
  const int home1 = placement.HomesOf(1).front();
  const int home2 = placement.HomesOf(2).front();
  EXPECT_NE(home1, home2);  // partitioned across the two replicas

  std::vector<int64_t> depths = {0, 0};
  RouteDecision d = router.Pick(1, depths);
  EXPECT_EQ(d.replica, home1);
  EXPECT_TRUE(d.affinity_hit);
  EXPECT_FALSE(d.spilled);

  // Overload the home: routing spills to the other (less loaded) replica.
  depths[static_cast<size_t>(home1)] = 10;
  d = router.Pick(1, depths);
  EXPECT_NE(d.replica, home1);
  EXPECT_TRUE(d.spilled);
  EXPECT_FALSE(d.affinity_hit);

  // Base-model requests fall back to least-loaded.
  d = router.Pick(-1, depths);
  EXPECT_NE(d.replica, home1);
  EXPECT_FALSE(d.affinity_hit);
}

TEST(RouterTest, DecisionsDeterministicAcrossRuns) {
  const std::vector<double> shares = {0.4, 0.3, 0.2, 0.1};
  const AdapterPlacement placement = AdapterPlacement::Compute(shares, 3);
  const std::vector<Request> trace = SkewedTrace(4, 0.6, 30.0, 2.0, 7);
  for (RoutePolicy policy : {RoutePolicy::kRoundRobin, RoutePolicy::kAdapterAffinity}) {
    Router a(policy, &placement, 3, 8);
    Router b(policy, &placement, 3, 8);
    const std::vector<int64_t> depths = {0, 0, 0};
    for (const Request& request : trace) {
      EXPECT_EQ(a.Pick(request.adapter_id, depths).replica,
                b.Pick(request.adapter_id, depths).replica);
    }
  }
}

// --- End-to-end cluster ----------------------------------------------------

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : config_(TinyConfig()) {}

  std::unique_ptr<ClusterServer> MakeCluster(int replicas, RoutePolicy policy,
                                             const std::vector<Request>& trace,
                                             AdmissionPolicy admission = AdmissionPolicy::kBlock,
                                             int64_t capacity = 256,
                                             FaultInjector* fault = nullptr,
                                             RecoveryOptions recovery = {}) {
    ClusterOptions options;
    options.num_replicas = replicas;
    options.policy = policy;
    options.admission = admission;
    options.replica_queue_capacity = capacity;
    options.server.max_batch_size = 4;
    options.fault = fault;
    options.recovery = recovery;
    auto cluster = std::make_unique<ClusterServer>(config_, options);
    for (const LoraAdapter& adapter : MakeAdapters(config_, 6, 11)) {
      cluster->AddAdapter(adapter);
    }
    cluster->PlaceAdapters(AdapterShares(trace, 6));
    return cluster;
  }

  // Multiset of (request id, output tokens) — completion order varies across
  // replica counts, content must not.
  static std::map<int64_t, std::vector<int32_t>> ResultKey(
      const std::vector<EngineResult>& results) {
    std::map<int64_t, std::vector<int32_t>> key;
    for (const EngineResult& result : results) {
      key[result.request_id] = result.output_tokens;
    }
    return key;
  }

  ModelConfig config_;
};

TEST_F(ClusterTest, ResultsIdenticalAcrossReplicaCounts) {
  const std::vector<Request> trace = SkewedTrace(6, 0.6, 25.0, 2.0, 13);
  ASSERT_GT(trace.size(), 10u);
  std::map<int64_t, std::vector<int32_t>> reference;
  for (int replicas : {1, 4}) {
    auto cluster = MakeCluster(replicas, RoutePolicy::kAdapterAffinity, trace);
    for (const Request& request : trace) {
      EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(request, config_, SmallMap())));
    }
    const std::vector<EngineResult> results = cluster->Drain();
    EXPECT_EQ(results.size(), trace.size());
    const auto key = ResultKey(results);
    if (replicas == 1) {
      reference = key;
    } else {
      EXPECT_EQ(key, reference);
    }
    const ClusterStats stats = cluster->Stats();
    EXPECT_EQ(stats.completed, static_cast<int64_t>(trace.size()));
    EXPECT_EQ(stats.rejected, 0);
    EXPECT_EQ(stats.latency.count(), static_cast<int64_t>(trace.size()));
    EXPECT_GT(stats.latency.P99Ms(), 0.0);
    EXPECT_GE(stats.latency.P99Ms(), stats.latency.P50Ms());
  }
}

// Satellite 1 (disaggregation): the prefill/decode split with paged-KV
// handoff must be invisible in the results. Same trace, same seeds — the
// unified fleet and the disaggregated pools must emit identical per-request
// token streams, and every KvHandle the master takes ownership of must be
// released by Drain.
TEST_F(ClusterTest, DisaggregatedMatchesUnifiedResults) {
  const std::vector<Request> trace = SkewedTrace(6, 0.6, 25.0, 2.0, 41);
  ASSERT_GT(trace.size(), 10u);
  std::map<int64_t, std::vector<int32_t>> reference;
  for (const bool disagg : {false, true}) {
    ClusterOptions options;
    options.num_replicas = 3;
    options.policy = RoutePolicy::kAdapterAffinity;
    options.replica_queue_capacity = 256;
    options.server.max_batch_size = 4;
    options.disagg.enabled = disagg;
    options.disagg.num_prefill = 1;
    ClusterServer cluster(config_, options);
    for (const LoraAdapter& adapter : MakeAdapters(config_, 6, 11)) {
      cluster.AddAdapter(adapter);
    }
    cluster.PlaceAdapters(AdapterShares(trace, 6));
    for (const Request& request : trace) {
      ASSERT_TRUE(cluster.Submit(EngineRequestFromTrace(request, config_, SmallMap())));
    }
    const std::vector<EngineResult> results = cluster.Drain();
    EXPECT_EQ(results.size(), trace.size());
    const auto key = ResultKey(results);
    if (!disagg) {
      reference = key;
    } else {
      EXPECT_EQ(key, reference);
    }
    const ClusterStats stats = cluster.Stats();
    EXPECT_EQ(stats.completed, static_cast<int64_t>(trace.size()));
    EXPECT_EQ(stats.rejected, 0);
    if (disagg) {
      // Multi-token requests hand off; single-token ones finish in prefill.
      EXPECT_GT(stats.handoffs, 0);
      EXPECT_EQ(stats.handles_created, stats.handoffs);
      EXPECT_EQ(stats.handles_released, stats.handles_created);
    } else {
      EXPECT_EQ(stats.handoffs, 0);
      EXPECT_EQ(stats.handles_created, 0);
      EXPECT_EQ(stats.handles_released, 0);
    }
  }
}

TEST_F(ClusterTest, RoundRobinSpreadsWorkAcrossReplicas) {
  const std::vector<Request> trace = SkewedTrace(6, 0.6, 25.0, 2.0, 17);
  TraceSession session;
  auto cluster = MakeCluster(3, RoutePolicy::kRoundRobin, trace);
  for (const Request& request : trace) {
    ASSERT_TRUE(cluster->Submit(EngineRequestFromTrace(request, config_, SmallMap())));
  }
  (void)cluster->Drain();
  const ClusterStats stats = cluster->Stats();
  for (const ReplicaSnapshot& replica : stats.replicas) {
    // Round-robin gives each replica a third of the trace, within one.
    EXPECT_NEAR(static_cast<double>(replica.submitted),
                static_cast<double>(trace.size()) / 3.0, 1.0);
  }

  cluster.reset();
  session.Stop();
  TraceMatcher matcher(session.Collect());
  // The per-replica ingress spread is visible in the event stream too, and
  // every request walked the full admitted -> routed -> enqueued -> completed
  // lifecycle with a single kOk terminal event.
  for (int r = 0; r < 3; ++r) {
    EXPECT_NEAR(static_cast<double>(matcher.CountForReplica(TraceEventKind::kEnqueued, r)),
                static_cast<double>(trace.size()) / 3.0, 1.0);
  }
  for (const Request& request : trace) {
    EXPECT_TRUE(matcher.ExpectSequence(
        request.id, {TraceEventKind::kRequestAdmitted, TraceEventKind::kRouted,
                     TraceEventKind::kEnqueued, TraceEventKind::kCompleted}));
    EXPECT_TRUE(matcher.ExpectCompleted(request.id, StatusCode::kOk));
  }
}

TEST_F(ClusterTest, BackpressureRejectsAtTheConfiguredBound) {
  // The start gate parks every worker before it touches its queue, so the
  // admission outcome depends only on the fixed routing sequence — exact
  // counts, no dependence on how fast workers drain.
  const std::vector<Request> trace = SkewedTrace(6, 0.6, 60.0, 2.0, 19);
  ASSERT_GT(trace.size(), 20u);
  const int64_t capacity = 4;
  TraceSession session;
  FaultInjector fault;
  fault.GateWorkers();
  RecoveryOptions recovery;
  recovery.stall_quarantine_ms = 0.0;  // gated workers are parked, not stalled
  auto cluster = MakeCluster(2, RoutePolicy::kRoundRobin, trace, AdmissionPolicy::kReject,
                             capacity, &fault, recovery);
  int64_t accepted = 0;
  int64_t rejected = 0;
  for (size_t i = 0; i < 20; ++i) {
    if (cluster->Submit(EngineRequestFromTrace(trace[i], config_, SmallMap()))) {
      ++accepted;
    } else {
      ++rejected;
    }
    for (int r = 0; r < cluster->num_replicas(); ++r) {
      EXPECT_LE(cluster->replica(r).Depth(), capacity);
    }
  }
  // Round-robin over two gated depth-4 replicas: exactly the first four
  // requests per replica are admitted, the remaining twelve shed.
  EXPECT_EQ(accepted, 2 * capacity);
  EXPECT_EQ(rejected, 20 - 2 * capacity);
  fault.OpenGate();
  const std::vector<EngineResult> results = cluster->Drain();
  // Everything accepted still completes once the workers run.
  EXPECT_EQ(static_cast<int64_t>(results.size()), accepted);
  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.completed, accepted);
  EXPECT_EQ(stats.rejected, rejected);
  for (const ReplicaSnapshot& replica : stats.replicas) {
    EXPECT_EQ(replica.peak_depth, capacity);
  }

  cluster.reset();
  session.Stop();
  TraceMatcher matcher(session.Collect());
  // All 20 were admitted, but the bound is visible per replica: exactly
  // `capacity` Enqueued events each, and only the accepted ones completed.
  EXPECT_EQ(matcher.Count(TraceEventKind::kRequestAdmitted), 20);
  EXPECT_EQ(matcher.CountForReplica(TraceEventKind::kEnqueued, 0), capacity);
  EXPECT_EQ(matcher.CountForReplica(TraceEventKind::kEnqueued, 1), capacity);
  EXPECT_EQ(matcher.Count(TraceEventKind::kCompleted), accepted);
}

TEST_F(ClusterTest, ShutdownCancelsQueuedIngressInsteadOfLosingIt) {
  const std::vector<Request> trace = SkewedTrace(6, 0.6, 60.0, 2.0, 37);
  ASSERT_GT(trace.size(), 10u);
  FaultInjector fault;
  fault.GateWorkers();
  RecoveryOptions recovery;
  recovery.stall_quarantine_ms = 0.0;
  auto cluster = MakeCluster(2, RoutePolicy::kRoundRobin, trace, AdmissionPolicy::kBlock,
                             /*capacity=*/8, &fault, recovery);
  const int64_t submitted = 10;
  for (int64_t i = 0; i < submitted; ++i) {
    ASSERT_TRUE(cluster->Submit(
        EngineRequestFromTrace(trace[static_cast<size_t>(i)], config_, SmallMap())));
  }
  // Shut down with the queues still full: the stop opens the gate, and each
  // worker must cancel (not serve, and not silently drop) its queued ingress.
  cluster->Shutdown();
  const std::vector<FailedRequest> failures = cluster->TakeFailures();
  for (const FailedRequest& failure : failures) {
    EXPECT_EQ(failure.status.code(), StatusCode::kCancelled) << failure.status.ToString();
  }
  const std::vector<EngineResult> results = cluster->Drain();
  // Every accepted request is accounted for: completed or cancelled.
  EXPECT_EQ(static_cast<int64_t>(results.size() + failures.size()), submitted);
  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.cancelled, static_cast<int64_t>(failures.size()));
  EXPECT_EQ(stats.completed, static_cast<int64_t>(results.size()));
  // Replica 0's stop flag is set before the shared gate opens, so its queued
  // half of the trace is guaranteed to take the cancel path.
  EXPECT_GE(failures.size(), 5u);
}

TEST_F(ClusterTest, BlockingAdmissionLosesNothing) {
  const std::vector<Request> trace = SkewedTrace(6, 0.6, 40.0, 1.5, 23);
  auto cluster = MakeCluster(2, RoutePolicy::kLeastLoaded, trace, AdmissionPolicy::kBlock,
                             /*capacity=*/3);
  for (const Request& request : trace) {
    EXPECT_TRUE(cluster->Submit(EngineRequestFromTrace(request, config_, SmallMap())));
  }
  const std::vector<EngineResult> results = cluster->Drain();
  EXPECT_EQ(results.size(), trace.size());
  const ClusterStats stats = cluster->Stats();
  EXPECT_EQ(stats.rejected, 0);
  for (const ReplicaSnapshot& replica : stats.replicas) {
    EXPECT_LE(replica.peak_depth, 3);
  }
}

TEST_F(ClusterTest, AffinityReducesSwapInsVersusRoundRobin) {
  // Skewness 0.6 per the acceptance bar; pool sized so a replica holds only
  // its home set comfortably, which makes off-home routing cost swaps.
  const std::vector<Request> trace = SkewedTrace(6, 0.6, 30.0, 3.0, 29);
  std::map<RoutePolicy, int64_t> swap_ins;
  for (RoutePolicy policy : {RoutePolicy::kRoundRobin, RoutePolicy::kAdapterAffinity}) {
    ClusterOptions options;
    options.num_replicas = 3;
    options.policy = policy;
    options.replica_queue_capacity = 512;  // admission out of the picture
    options.server.max_batch_size = 4;
    Rng probe_rng(11);
    const LoraAdapter probe =
        LoraAdapter::Random("probe", config_.num_layers, config_.d_model, 4, probe_rng);
    // Room for ~3 adapters per replica: the hot adapter plus a couple of
    // cold ones; round-robin churns beyond that.
    options.server.device_pool_bytes = 3 * probe.SizeBytesFp16() + 64;
    ClusterServer cluster(config_, options);
    for (const LoraAdapter& adapter : MakeAdapters(config_, 6, 11)) {
      cluster.AddAdapter(adapter);
    }
    cluster.PlaceAdapters(AdapterShares(trace, 6));
    for (const Request& request : trace) {
      ASSERT_TRUE(cluster.Submit(EngineRequestFromTrace(request, config_, SmallMap())));
    }
    (void)cluster.Drain();
    const ClusterStats stats = cluster.Stats();
    swap_ins[policy] = stats.adapter_swap_ins;
    if (policy == RoutePolicy::kAdapterAffinity) {
      EXPECT_GT(stats.affinity_hits, 0);
    }
  }
  EXPECT_LT(swap_ins[RoutePolicy::kAdapterAffinity], swap_ins[RoutePolicy::kRoundRobin]);
}

TEST_F(ClusterTest, ServerStatsReportLatencyPercentiles) {
  // The single-replica server reports the same SLO metrics the cluster does.
  const std::vector<Request> trace = SkewedTrace(4, 0.6, 15.0, 1.5, 31);
  auto cluster = MakeCluster(1, RoutePolicy::kRoundRobin, trace);
  for (const Request& request : trace) {
    ASSERT_TRUE(cluster->Submit(EngineRequestFromTrace(request, config_, SmallMap())));
  }
  (void)cluster->Drain();
  const ReplicaSnapshot snapshot = cluster->replica(0).Snapshot();
  EXPECT_EQ(snapshot.server.latency.count(), static_cast<int64_t>(trace.size()));
  EXPECT_GE(snapshot.server.latency.P95Ms(), snapshot.server.latency.P50Ms());
}

}  // namespace
}  // namespace vlora


// Tests for the simulator extensions: chunked prefill (SARATHI-style) and
// multi-GPU dispatch policies (the paper's stated future work).

#include <gtest/gtest.h>

#include "src/baselines/policies.h"
#include "src/core/scheduler.h"
#include "src/gpusim/simulator.h"
#include "src/workload/trace_gen.h"

namespace vlora {
namespace {

std::vector<Request> AnalyticsTrace(uint64_t seed = 1) {
  TraceOptions options;
  options.app = AppKind::kVideoAnalytics;  // long 1536-token prompts
  options.duration_s = 15.0;
  options.rate_rps = 6.0;
  options.num_adapters = 4;
  options.seed = seed;
  return GenerateTrace(options);
}

TEST(ChunkedPrefillTest, AllRequestsStillComplete) {
  const std::vector<Request> trace = AnalyticsTrace();
  for (int64_t chunk : {0, 128, 256, 512}) {
    SimOptions options;
    options.max_batch_size = 32;
    options.prefill_chunk_tokens = chunk;
    const SimMetrics metrics = RunSimulation(trace, MakeSloraPolicy, options);
    EXPECT_EQ(metrics.completed, static_cast<int64_t>(trace.size())) << "chunk " << chunk;
  }
}

TEST(ChunkedPrefillTest, ChunkingChangesIterationShape) {
  const std::vector<Request> trace = AnalyticsTrace();
  SimOptions options;
  options.max_batch_size = 32;
  options.record_iterations = true;

  options.prefill_chunk_tokens = 0;
  const SimMetrics whole = RunSimulation(trace, MakeSloraPolicy, options);
  options.prefill_chunk_tokens = 256;
  const SimMetrics chunked = RunSimulation(trace, MakeSloraPolicy, options);

  // With 1536-token prompts capped at 256 tokens/iteration, prefill spreads
  // over ~6x more iterations and the per-iteration prefill burst shrinks.
  int64_t whole_max_prefill = 0;
  int64_t chunked_max_prefill = 0;
  for (const IterationRecord& record : whole.iterations) {
    whole_max_prefill = std::max(whole_max_prefill, record.prefill_tokens);
  }
  for (const IterationRecord& record : chunked.iterations) {
    chunked_max_prefill = std::max(chunked_max_prefill, record.prefill_tokens);
  }
  EXPECT_GT(whole_max_prefill, 1024);
  EXPECT_LE(chunked_max_prefill, 256 * 32);
  EXPECT_LT(chunked_max_prefill, whole_max_prefill);
  EXPECT_GT(chunked.iterations.size(), whole.iterations.size());
}

TEST(ChunkedPrefillTest, ReducesDecodeTailUnderLongPrompts) {
  // Head-of-line blocking: a 1536-token prefill stalls concurrent decodes for
  // ~80 ms; chunking caps the stall. The decode-heavy requests' p90 improves.
  const std::vector<Request> trace = AnalyticsTrace(7);
  SimOptions options;
  options.max_batch_size = 32;
  options.prefill_chunk_tokens = 0;
  const SimMetrics whole = RunSimulation(trace, MakeSloraPolicy, options);
  options.prefill_chunk_tokens = 256;
  const SimMetrics chunked = RunSimulation(trace, MakeSloraPolicy, options);
  // Not asserting a strict win (total work is equal and chunking adds
  // iteration overhead); it must at least stay within a small factor.
  EXPECT_LT(chunked.p90_latency_ms, whole.p90_latency_ms * 1.5);
  EXPECT_GT(chunked.p90_latency_ms, 0.0);
}

std::vector<Request> SkewedTrace(int adapters, double skew, uint64_t seed = 3) {
  TraceOptions options;
  options.app = AppKind::kVisualRetrieval;
  options.duration_s = 20.0;
  options.rate_rps = 12.0;
  options.num_adapters = adapters;
  options.skewness = skew;
  options.seed = seed;
  return GenerateTrace(options);
}

TEST(DispatchPolicyTest, AllPoliciesComplete) {
  const std::vector<Request> trace = SkewedTrace(8, 0.4);
  for (DispatchPolicy dispatch : {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastLoaded,
                                  DispatchPolicy::kAdapterAffinity}) {
    SimOptions options;
    options.max_batch_size = 32;
    options.num_gpus = 3;
    options.dispatch = dispatch;
    const SimMetrics metrics =
        RunSimulation(trace, [] { return MakeVloraPolicy(); }, options);
    EXPECT_EQ(metrics.completed, static_cast<int64_t>(trace.size()));
  }
}

TEST(DispatchPolicyTest, AffinityEliminatesCrossDeviceSwaps) {
  // 8 adapters over 4 devices with tiny residency: affinity pins each adapter
  // to one device, so far fewer swap-ins than round-robin (which makes every
  // device host every adapter).
  const std::vector<Request> trace = SkewedTrace(8, 0.2, 5);
  SimOptions options;
  options.max_batch_size = 32;
  options.num_gpus = 4;
  options.gpu_adapter_slots = 2;

  options.dispatch = DispatchPolicy::kRoundRobin;
  const SimMetrics rr = RunSimulation(trace, MakeSloraPolicy, options);
  options.dispatch = DispatchPolicy::kAdapterAffinity;
  const SimMetrics affinity = RunSimulation(trace, MakeSloraPolicy, options);
  EXPECT_LT(affinity.adapter_swaps, rr.adapter_swaps / 2);
}

TEST(DispatchPolicyTest, LeastLoadedBalancesSkewedSizes) {
  // With highly variable request sizes, least-loaded should not lose to
  // round-robin on makespan by any meaningful margin.
  const std::vector<Request> trace = SkewedTrace(8, 0.6, 9);
  SimOptions options;
  options.max_batch_size = 32;
  options.num_gpus = 4;
  options.dispatch = DispatchPolicy::kRoundRobin;
  const SimMetrics rr = RunSimulation(trace, [] { return MakeVloraPolicy(); }, options);
  options.dispatch = DispatchPolicy::kLeastLoaded;
  const SimMetrics ll = RunSimulation(trace, [] { return MakeVloraPolicy(); }, options);
  EXPECT_LT(ll.makespan_s, rr.makespan_s * 1.1);
  EXPECT_EQ(ll.completed, rr.completed);
}

}  // namespace
}  // namespace vlora

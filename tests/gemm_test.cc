#include <gtest/gtest.h>

#include <tuple>

#include "src/kernels/gemm.h"
#include "src/kernels/tile_config.h"
#include "src/tensor/tensor.h"

namespace vlora {
namespace {

float RunAndCompare(int64_t m, int64_t n, int64_t k, const TileConfig& config) {
  Rng rng(static_cast<uint64_t>(m * 1000003 + n * 1009 + k));
  Tensor a = Tensor::Random(Shape(m, k), rng, 1.0f);
  Tensor b = Tensor::Random(Shape(k, n), rng, 1.0f);
  Tensor c = Tensor::Zeros(Shape(m, n));
  GemmWorkspace workspace;
  GemmTiled(a, b, c, config, workspace);
  Tensor ref = MatMulReference(a, b);
  return Tensor::MaxAbsDiff(c, ref);
}

TEST(TileConfigTest, ValidityRules) {
  EXPECT_TRUE((TileConfig{64, 64, 128, 8, 8}.Valid()));
  EXPECT_TRUE((TileConfig{16, 16, 32, 4, 4}.Valid()));
  EXPECT_FALSE((TileConfig{63, 64, 128, 8, 8}.Valid()));   // not power of two
  EXPECT_FALSE((TileConfig{8, 64, 128, 16, 8}.Valid()));   // mc < mr
  EXPECT_FALSE((TileConfig{64, 64, 128, 2, 8}.Valid()));   // mr too small
  EXPECT_FALSE((TileConfig{64, 64, 128, 32, 8}.Valid()));  // mr too large
}

TEST(TileConfigTest, WorkspaceIsDoubleBuffered) {
  TileConfig config{64, 32, 128, 8, 8};
  EXPECT_EQ(config.WorkspaceFloats(), 2 * (64 * 128 + 128 * 32));
}

TEST(TileConfigTest, CanonicalConfigsValid) {
  EXPECT_TRUE(PunicaStaticConfig().Valid());
  EXPECT_TRUE(SloraStaticConfig().Valid());
  EXPECT_TRUE(TableConfig1().Valid());
  EXPECT_TRUE(TableConfig2().Valid());
}

TEST(GemmTest, MicroKernelTableCoversCandidates) {
  for (const TileConfig& config : DefaultCandidateConfigs()) {
    EXPECT_TRUE(HasMicroKernel(config.mr, config.nr)) << config.ToString();
  }
  EXPECT_FALSE(HasMicroKernel(32, 32));
}

TEST(GemmTest, NaiveMatchesReference) {
  Rng rng(77);
  Tensor a = Tensor::Random(Shape(13, 17), rng, 1.0f);
  Tensor b = Tensor::Random(Shape(17, 9), rng, 1.0f);
  Tensor c = Tensor::Zeros(Shape(13, 9));
  GemmNaive(a.data(), b.data(), c.data(), 13, 9, 17);
  EXPECT_LT(Tensor::MaxAbsDiff(c, MatMulReference(a, b)), 1e-4f);
}

TEST(GemmTest, AccumulatesIntoC) {
  Rng rng(78);
  Tensor a = Tensor::Random(Shape(8, 8), rng, 1.0f);
  Tensor b = Tensor::Random(Shape(8, 8), rng, 1.0f);
  Tensor c = Tensor::Full(Shape(8, 8), 1.0f);
  GemmWorkspace workspace;
  GemmTiled(a, b, c, TileConfig{16, 16, 32, 4, 4}, workspace);
  Tensor expected = MatMulReference(a, b);
  expected.AddInPlace(Tensor::Full(Shape(8, 8), 1.0f));
  EXPECT_LT(Tensor::MaxAbsDiff(c, expected), 1e-4f);
}

// Parameterised sweep: shape x config. Shapes include LoRA-realistic skinny
// matrices (rank 16-128 outputs), odd sizes hitting every edge path, and
// sizes larger than any tile.
using GemmParam = std::tuple<int64_t, int64_t, int64_t, TileConfig>;

class GemmShapeConfigTest : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmShapeConfigTest, MatchesReference) {
  const auto& [m, n, k, config] = GetParam();
  EXPECT_LT(RunAndCompare(m, n, k, config), 1e-3f)
      << "m=" << m << " n=" << n << " k=" << k << " config=" << config.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeConfigTest,
    ::testing::Combine(::testing::Values<int64_t>(1, 7, 16, 33, 100, 256),
                       ::testing::Values<int64_t>(1, 5, 32, 64, 130),
                       ::testing::Values<int64_t>(1, 8, 64, 129),
                       ::testing::Values(TileConfig{16, 16, 32, 4, 4},
                                         TileConfig{64, 64, 64, 8, 8},
                                         TileConfig{128, 32, 128, 8, 16},
                                         PunicaStaticConfig(), SloraStaticConfig())));

TEST(GemmTest, WorkspaceReusedAcrossDifferentConfigs) {
  GemmWorkspace workspace;
  Rng rng(79);
  Tensor a = Tensor::Random(Shape(40, 40), rng, 1.0f);
  Tensor b = Tensor::Random(Shape(40, 40), rng, 1.0f);
  Tensor ref = MatMulReference(a, b);
  for (const TileConfig& config :
       {TileConfig{16, 16, 32, 4, 4}, TileConfig{128, 128, 256, 8, 8}}) {
    Tensor c = Tensor::Zeros(Shape(40, 40));
    GemmTiled(a, b, c, config, workspace);
    EXPECT_LT(Tensor::MaxAbsDiff(c, ref), 1e-3f);
  }
}

}  // namespace
}  // namespace vlora

#include <gtest/gtest.h>

#include "src/accuracy/accuracy_model.h"

namespace vlora {
namespace {

TEST(TaskCatalogTest, AllTasksHaveProfiles) {
  for (VisionTask task :
       {VisionTask::kImageClassification, VisionTask::kObjectDetection,
        VisionTask::kVideoClassification, VisionTask::kVisualQuestionAnswering,
        VisionTask::kImageCaptioning}) {
    const TaskAccuracyProfile& profile = TaskProfile(task);
    EXPECT_EQ(profile.task, task);
    EXPECT_GT(profile.lora_acc, profile.base_lmm_acc);
    EXPECT_GT(profile.base_lmm_acc, 0.0);
    EXPECT_LE(profile.lora_acc, 100.0);
  }
}

TEST(AccuracyOracleTest, Fig4GainsReproduced) {
  AccuracyOracle oracle(7, /*noise_pp=*/0.0);
  // Fig 4: +45.2 / +24.5 / +62.2 pp on image cls / detection / video cls.
  EXPECT_NEAR(oracle.LoraAccuracy(VisionTask::kImageClassification, 1) -
                  oracle.BaseAccuracy(VisionTask::kImageClassification),
              45.2, 1.0);
  EXPECT_NEAR(oracle.LoraAccuracy(VisionTask::kObjectDetection, 1) -
                  oracle.BaseAccuracy(VisionTask::kObjectDetection),
              24.5, 1.0);
  EXPECT_NEAR(oracle.LoraAccuracy(VisionTask::kVideoClassification, 1) -
                  oracle.BaseAccuracy(VisionTask::kVideoClassification),
              62.2, 1.0);
}

TEST(AccuracyOracleTest, Fig15VqaCaptioningAdvantage) {
  AccuracyOracle oracle(7, 0.0);
  // §6.2: 4.3-5 pp improvement over small models on VQA and captioning.
  for (VisionTask task :
       {VisionTask::kVisualQuestionAnswering, VisionTask::kImageCaptioning}) {
    const double gain = oracle.LoraAccuracy(task, 1) - oracle.SmallModelAccuracy(task);
    EXPECT_GE(gain, 4.0) << VisionTaskName(task);
    EXPECT_LE(gain, 5.5) << VisionTaskName(task);
  }
}

TEST(AccuracyOracleTest, CompetitiveWhereSmallModelsExcel) {
  AccuracyOracle oracle(7, 0.0);
  // Detection / video understanding: within a few points of the SOTA small
  // model (Fig 15 "competitive accuracy").
  for (VisionTask task : {VisionTask::kObjectDetection, VisionTask::kVideoClassification}) {
    const double gap = oracle.SmallModelAccuracy(task) - oracle.LoraAccuracy(task, 1);
    EXPECT_LT(gap, 3.0) << VisionTaskName(task);
    EXPECT_GT(gap, -3.0) << VisionTaskName(task);
  }
}

TEST(AccuracyOracleTest, MonotoneNonIncreasingInFusionCount) {
  AccuracyOracle oracle(7, 0.0);
  for (VisionTask task :
       {VisionTask::kImageClassification, VisionTask::kObjectDetection,
        VisionTask::kVideoClassification}) {
    double prev = 200.0;
    for (int k = 1; k <= 8; ++k) {
      const double acc = oracle.LoraAccuracy(task, k);
      EXPECT_LE(acc, prev + 1e-9) << VisionTaskName(task) << " k=" << k;
      prev = acc;
    }
  }
}

TEST(AccuracyOracleTest, Fig5DegradationShapes) {
  AccuracyOracle oracle(7, 0.0);
  // Image classification retains > 95 % of its accuracy at k = 6 (Fig 5).
  const double img1 = oracle.LoraAccuracy(VisionTask::kImageClassification, 1);
  const double img6 = oracle.LoraAccuracy(VisionTask::kImageClassification, 6);
  EXPECT_GT(img6 / img1, 0.95);
  // Video classification loses a large fraction.
  const double vid1 = oracle.LoraAccuracy(VisionTask::kVideoClassification, 1);
  const double vid6 = oracle.LoraAccuracy(VisionTask::kVideoClassification, 6);
  EXPECT_LT(vid6 / vid1, 0.70);
  // And video degrades faster than detection, which degrades faster than
  // image classification.
  const double det1 = oracle.LoraAccuracy(VisionTask::kObjectDetection, 1);
  const double det6 = oracle.LoraAccuracy(VisionTask::kObjectDetection, 6);
  EXPECT_LT(vid6 / vid1, det6 / det1);
  EXPECT_LT(det6 / det1, img6 / img1);
}

TEST(AccuracyOracleTest, NeverBelowBaseModel) {
  AccuracyOracle oracle(7, 0.0);
  for (int k = 1; k <= 30; ++k) {
    EXPECT_GE(oracle.LoraAccuracy(VisionTask::kVideoClassification, k),
              oracle.BaseAccuracy(VisionTask::kVideoClassification));
  }
}

TEST(AccuracyOracleTest, DeterministicWithNoise) {
  AccuracyOracle a(42, 0.5);
  AccuracyOracle b(42, 0.5);
  for (int k = 1; k <= 6; ++k) {
    EXPECT_EQ(a.LoraAccuracy(VisionTask::kObjectDetection, k),
              b.LoraAccuracy(VisionTask::kObjectDetection, k));
  }
  AccuracyOracle c(43, 0.5);
  bool any_diff = false;
  for (int k = 1; k <= 6; ++k) {
    if (a.LoraAccuracy(VisionTask::kObjectDetection, k) !=
        c.LoraAccuracy(VisionTask::kObjectDetection, k)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace vlora

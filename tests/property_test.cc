// Randomised property tests across modules: mode-equivalence fuzzing on the
// engine, GEMM shape/config fuzzing, simulator invariants, KV-block-manager
// model checking, and generator packing properties.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/baselines/policies.h"
#include "src/cluster/cluster_server.h"
#include "src/cluster/placement.h"
#include "src/cluster/router.h"
#include "src/common/fault.h"
#include "src/core/generator.h"
#include "src/core/scheduler.h"
#include "src/engine/engine.h"
#include "src/gpusim/simulator.h"
#include "src/kernels/gemm.h"
#include "src/workload/trace_gen.h"

namespace vlora {
namespace {

// ---------------------------------------------------------------------------
// Engine: merged / unmerged / mixture must agree on random configurations.
class EngineModeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineModeFuzzTest, AllModesAgree) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng meta(seed * 7919 + 101);

  ModelConfig config = TinyConfig();
  config.num_layers = static_cast<int>(meta.NextInt(1, 3));
  config.num_heads = static_cast<int>(meta.NextInt(1, 4));
  config.d_model = 16 * config.num_heads * meta.NextInt(1, 2);
  config.d_ff = config.d_model * 2;
  config.vocab_size = 64;

  // Random adapters with random target subsets and ranks.
  const int num_adapters = static_cast<int>(meta.NextInt(1, 3));
  std::vector<LoraAdapter> adapters;
  for (int i = 0; i < num_adapters; ++i) {
    std::vector<LoraTarget> targets;
    for (LoraTarget target : kAllLoraTargets) {
      if (meta.NextDouble() < 0.6) {
        targets.push_back(target);
      }
    }
    if (targets.empty()) {
      targets.push_back(LoraTarget::kWv);
    }
    Rng weight_rng(seed * 31 + static_cast<uint64_t>(i));
    adapters.push_back(LoraAdapter::Random("fz-" + std::to_string(i), config.num_layers,
                                           config.d_model, meta.NextInt(2, 8), weight_rng, 0.08f,
                                           targets));
  }

  // Random batch of requests over those adapters (plus base).
  struct Spec {
    std::vector<int32_t> prompt;
    int adapter;
  };
  std::vector<Spec> specs;
  const int batch = static_cast<int>(meta.NextInt(1, 3));
  for (int i = 0; i < batch; ++i) {
    Spec spec;
    const int64_t len = meta.NextInt(4, 24);
    for (int64_t t = 0; t < len; ++t) {
      spec.prompt.push_back(static_cast<int32_t>(meta.NextInt(2, config.vocab_size - 1)));
    }
    spec.adapter = static_cast<int>(meta.NextInt(-1, num_adapters - 1));
    specs.push_back(std::move(spec));
  }
  const int merged_candidate = static_cast<int>(meta.NextInt(0, num_adapters - 1));

  auto run = [&](InferMode mode, int merged) {
    EngineOptions options;
    options.seed = seed;
    InferenceEngine engine(config, options);
    for (LoraAdapter& adapter : adapters) {
      engine.RegisterAdapter(&adapter);
    }
    engine.SetMode(mode, merged);
    for (size_t i = 0; i < specs.size(); ++i) {
      EngineRequest request;
      request.id = static_cast<int64_t>(i);
      request.prompt_tokens = specs[i].prompt;
      request.adapter_id = specs[i].adapter;
      request.max_new_tokens = 3;
      request.eos_token = -1;
      engine.Submit(request);
    }
    std::map<int64_t, std::vector<int32_t>> outputs;
    while (engine.HasWork()) {
      for (EngineResult& result : engine.Step()) {
        outputs[result.request_id] = std::move(result.output_tokens);
      }
    }
    return outputs;
  };

  const auto unmerged = run(InferMode::kUnmerged, -1);
  const auto mixture = run(InferMode::kMixture, merged_candidate);
  EXPECT_EQ(unmerged, mixture) << "seed " << seed;

  // Merged mode can only serve a homogeneous batch; check it when applicable.
  bool homogeneous = true;
  for (const Spec& spec : specs) {
    homogeneous = homogeneous && spec.adapter == specs[0].adapter;
  }
  if (homogeneous && specs[0].adapter >= 0) {
    const auto merged = run(InferMode::kMerged, specs[0].adapter);
    EXPECT_EQ(unmerged, merged) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineModeFuzzTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// GEMM: random shapes x random valid configs match the reference.
class GemmFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(GemmFuzzTest, RandomShapeRandomConfig) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed * 10007 + 3);
  const int64_t m = rng.NextInt(1, 200);
  const int64_t n = rng.NextInt(1, 150);
  const int64_t k = rng.NextInt(1, 180);
  std::vector<TileConfig> candidates = DefaultCandidateConfigs();
  const TileConfig config =
      candidates[static_cast<size_t>(rng.NextBounded(candidates.size()))];
  Tensor a = Tensor::Random(Shape(m, k), rng, 1.0f);
  Tensor b = Tensor::Random(Shape(k, n), rng, 1.0f);
  Tensor c = Tensor::Zeros(Shape(m, n));
  GemmWorkspace workspace;
  GemmTiled(a, b, c, config, workspace);
  EXPECT_LT(Tensor::MaxAbsDiff(c, MatMulReference(a, b)), 1e-3f)
      << m << "x" << n << "x" << k << " " << config.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmFuzzTest, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Simulator invariants under random traces and every policy.
class SimulatorInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorInvariantTest, ConservationAndOrdering) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed * 7 + 5);
  TraceOptions trace_options;
  trace_options.app = rng.NextDouble() < 0.5 ? AppKind::kVisualRetrieval
                                             : AppKind::kVideoAnalytics;
  trace_options.duration_s = 10.0;
  trace_options.rate_rps = rng.NextUniform(1.0, 8.0);
  trace_options.num_adapters = static_cast<int>(rng.NextInt(1, 12));
  trace_options.skewness = rng.NextDouble();
  trace_options.seed = seed;
  const std::vector<Request> trace = GenerateTrace(trace_options);
  if (trace.empty()) {
    return;
  }

  std::vector<PolicyFactory> factories = {
      [] { return MakeVloraPolicy(); },  MakeSloraPolicy,      MakePunicaPolicy,
      MakeDloraPolicy,                   MakeMergeOnlyPolicy,  MakeUnmergeOnlyPolicy,
  };
  SimOptions options;
  options.max_batch_size = static_cast<int>(rng.NextInt(4, 48));
  options.gpu_adapter_slots = static_cast<int>(rng.NextInt(2, 12));
  options.num_gpus = static_cast<int>(rng.NextInt(1, 3));
  options.prefill_chunk_tokens = rng.NextDouble() < 0.3 ? rng.NextInt(64, 512) : 0;

  const double last_arrival = trace.back().arrival_s;
  for (const PolicyFactory& factory : factories) {
    const SimMetrics metrics = RunSimulation(trace, factory, options);
    EXPECT_EQ(metrics.completed, static_cast<int64_t>(trace.size())) << "seed " << seed;
    EXPECT_GE(metrics.makespan_s, last_arrival);
    EXPECT_LE(metrics.p50_latency_ms, metrics.p90_latency_ms);
    EXPECT_LE(metrics.p90_latency_ms, metrics.p99_latency_ms);
    EXPECT_GT(metrics.avg_token_latency_ms, 0.0);
    EXPECT_GE(metrics.slo_violation_rate, 0.0);
    EXPECT_LE(metrics.slo_violation_rate, 1.0);
    EXPECT_GE(metrics.visible_swap_ms, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorInvariantTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// KV block manager model check: random op sequences against a simple model.
TEST(KvModelCheckTest, RandomOpSequences) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed * 131 + 17);
    const int64_t blocks = 16;
    KvBlockManager kv(TinyConfig(), 4, blocks);
    std::map<int64_t, int> model_refs;      // live block -> external refs
    std::vector<int64_t> cached_fifo;       // cache entries in eviction order
    auto is_cached = [&](int64_t id) {
      return std::find(cached_fifo.begin(), cached_fifo.end(), id) != cached_fifo.end();
    };
    auto model_evict_front = [&]() {
      const int64_t victim = cached_fifo.front();
      cached_fifo.erase(cached_fifo.begin());
      auto it = model_refs.find(victim);
      if (it != model_refs.end() && it->second == 0) {
        model_refs.erase(it);  // cache held the last reference
      }
    };

    for (int step = 0; step < 400; ++step) {
      const double roll = rng.NextDouble();
      if (roll < 0.35 && kv.num_free_blocks() > 0) {
        // Allocation without pressure: never evicts cache entries.
        const int64_t id = kv.AllocateBlock();
        ASSERT_GE(id, 0);
        EXPECT_FALSE(model_refs.contains(id)) << "allocated a live block";
        EXPECT_FALSE(is_cached(id));
        model_refs[id] = 1;
      } else if (roll < 0.45 && !cached_fifo.empty()) {
        // Explicit eviction mirrors the manager's order (FIFO here: this test
        // never performs lookups, so LRU order equals registration order).
        ASSERT_TRUE(kv.EvictOneCachedBlock());
        model_evict_front();
      } else if (roll < 0.6 && !model_refs.empty()) {
        auto it = model_refs.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(model_refs.size())));
        if (it->second > 0) {
          kv.AddRef(it->first);
          ++it->second;
        }
      } else if (roll < 0.85 && !model_refs.empty()) {
        auto it = model_refs.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(model_refs.size())));
        if (it->second > 0) {
          kv.Release(it->first);
          --it->second;
          if (it->second == 0 && !is_cached(it->first)) {
            model_refs.erase(it);
          }
        }
      } else if (!model_refs.empty()) {
        // Register a random live block under a fresh hash (cache ref).
        auto it = model_refs.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(model_refs.size())));
        const uint64_t hash = seed * 100000 + static_cast<uint64_t>(step);
        if (!is_cached(it->first) && it->second > 0) {
          kv.RegisterPrefixBlock(hash, it->first);
          cached_fifo.push_back(it->first);
        }
      }
      // Invariant: external refs + cache ref match the manager's counts.
      for (const auto& [id, refs] : model_refs) {
        const int expected = refs + (is_cached(id) ? 1 : 0);
        ASSERT_EQ(kv.RefCount(id), expected) << "seed " << seed << " step " << step;
      }
      ASSERT_EQ(kv.num_cached_blocks(), static_cast<int64_t>(cached_fifo.size()));
      ASSERT_LE(kv.num_free_blocks(), blocks);
    }
  }
}

// ---------------------------------------------------------------------------
// Generator: random catalogues pack every item exactly once, all constraints
// hold, and adapter count never exceeds item count.
class GeneratorFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorFuzzTest, PackingProperties) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed * 37 + 11);
  AccuracyOracle oracle(seed, 0.3);
  std::vector<KnowledgeItem> items;
  const int n = static_cast<int>(rng.NextInt(1, 20));
  const VisionTask tasks[] = {VisionTask::kImageClassification, VisionTask::kObjectDetection,
                              VisionTask::kVideoClassification,
                              VisionTask::kVisualQuestionAnswering,
                              VisionTask::kImageCaptioning};
  for (int i = 0; i < n; ++i) {
    KnowledgeItem item;
    item.task = tasks[rng.NextBounded(5)];
    item.domain = std::string(VisionTaskName(item.task)) + std::to_string(i);
    item.required_accuracy = oracle.LoraAccuracy(item.task, 1) - rng.NextUniform(0.0, 15.0);
    items.push_back(item);
  }
  GeneratorOptions options;
  options.seed = seed;
  const GeneratorResult result = GenerateAdapters(items, oracle, options);
  EXPECT_LE(result.adapters.size(), items.size());
  std::vector<int> seen(items.size(), 0);
  for (const GeneratedAdapterSpec& adapter : result.adapters) {
    EXPECT_TRUE(SatisfiesRequirements(items, adapter, oracle)) << "seed " << seed;
    for (int index : adapter.item_indices) {
      ++seen[static_cast<size_t>(index)];
    }
  }
  for (int count : seen) {
    EXPECT_EQ(count, 1) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorFuzzTest, ::testing::Range(0, 15));

// ---------------------------------------------------------------------------
// Cluster recovery: under any replica-death sequence that leaves at least one
// replica alive, every adapter keeps a live home and no routing policy ever
// targets a dead replica, whatever the load vector looks like.
class ClusterFailureFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusterFailureFuzzTest, PlacementAndRoutingSurviveDeathSequences) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed * 104729 + 13);
  const int num_replicas = static_cast<int>(rng.NextInt(2, 6));
  const int num_adapters = static_cast<int>(rng.NextInt(1, 12));
  std::vector<double> shares(static_cast<size_t>(num_adapters));
  double total = 0.0;
  for (double& share : shares) {
    share = rng.NextUniform(0.01, 1.0);
    total += share;
  }
  for (double& share : shares) {
    share /= total;
  }
  PlacementOptions options;
  options.hot_share_threshold = rng.NextUniform(0.05, 0.5);
  options.max_hot = static_cast<int>(rng.NextInt(0, 3));
  AdapterPlacement placement = AdapterPlacement::Compute(shares, num_replicas, options);

  Router round_robin(RoutePolicy::kRoundRobin, &placement, num_replicas, 4);
  Router least_loaded(RoutePolicy::kLeastLoaded, &placement, num_replicas, 4);
  Router affinity(RoutePolicy::kAdapterAffinity, &placement, num_replicas, 4);
  Router* const routers[] = {&round_robin, &least_loaded, &affinity};

  std::vector<bool> alive(static_cast<size_t>(num_replicas), true);
  int num_alive = num_replicas;
  while (num_alive > 1) {
    int victim;
    do {
      victim = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(num_replicas)));
    } while (!alive[static_cast<size_t>(victim)]);
    alive[static_cast<size_t>(victim)] = false;
    --num_alive;
    placement.Rebalance(victim);
    for (Router* router : routers) {
      router->SetReplicaAlive(victim, false);
    }

    ASSERT_EQ(placement.num_live_replicas(), num_alive);
    for (int adapter = 0; adapter < num_adapters; ++adapter) {
      const std::vector<int>& homes = placement.HomesOf(adapter);
      ASSERT_FALSE(homes.empty())
          << "seed " << seed << ": adapter " << adapter << " lost every home";
      for (int home : homes) {
        ASSERT_TRUE(alive[static_cast<size_t>(home)])
            << "seed " << seed << ": adapter " << adapter << " homed on dead replica " << home;
      }
    }

    for (int trial = 0; trial < 20; ++trial) {
      std::vector<int64_t> depths(static_cast<size_t>(num_replicas));
      for (int64_t& depth : depths) {
        depth = static_cast<int64_t>(rng.NextBounded(10));
      }
      const int adapter = static_cast<int>(rng.NextInt(-1, num_adapters - 1));
      for (Router* router : routers) {
        const RouteDecision decision = router->Pick(adapter, depths);
        ASSERT_GE(decision.replica, 0) << "seed " << seed;
        ASSERT_LT(decision.replica, num_replicas) << "seed " << seed;
        ASSERT_TRUE(alive[static_cast<size_t>(decision.replica)])
            << "seed " << seed << ": policy " << RoutePolicyName(router->policy())
            << " routed adapter " << adapter << " to dead replica " << decision.replica;
      }
    }
  }

  // With the last survivor, routing still works and owns every adapter.
  for (Router* router : routers) {
    const RouteDecision decision = router->Pick(0, std::vector<int64_t>(
                                                       static_cast<size_t>(num_replicas), 3));
    ASSERT_GE(decision.replica, 0);
    ASSERT_TRUE(alive[static_cast<size_t>(decision.replica)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterFailureFuzzTest, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Disaggregated pools: under any random prefill/decode split and any death
// sequence that leaves each pool at least one survivor, every adapter keeps a
// live home in BOTH pool-local placements — a prefill home to compute the KV
// and a decode home to consume it.
class DisaggPoolFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DisaggPoolFuzzTest, EveryAdapterKeepsALiveHomePerPool) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed * 15485863 + 7);
  const int num_replicas = static_cast<int>(rng.NextInt(3, 7));
  const int num_prefill = static_cast<int>(rng.NextInt(1, num_replicas - 1));
  const int num_decode = num_replicas - num_prefill;
  const int num_adapters = static_cast<int>(rng.NextInt(1, 12));
  std::vector<double> shares(static_cast<size_t>(num_adapters));
  double total = 0.0;
  for (double& share : shares) {
    share = rng.NextUniform(0.01, 1.0);
    total += share;
  }
  for (double& share : shares) {
    share /= total;
  }
  PlacementOptions options;
  options.hot_share_threshold = rng.NextUniform(0.05, 0.5);
  options.max_hot = static_cast<int>(rng.NextInt(0, 3));
  // Pool-local placements over pool-local indices, exactly as ClusterServer
  // builds them in disaggregated mode.
  AdapterPlacement pools[] = {AdapterPlacement::Compute(shares, num_prefill, options),
                              AdapterPlacement::Compute(shares, num_decode, options)};
  const int pool_sizes[] = {num_prefill, num_decode};

  for (int pool = 0; pool < 2; ++pool) {
    std::vector<bool> alive(static_cast<size_t>(pool_sizes[pool]), true);
    int num_alive = pool_sizes[pool];
    while (num_alive > 1) {
      int victim;
      do {
        victim = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(pool_sizes[pool])));
      } while (!alive[static_cast<size_t>(victim)]);
      alive[static_cast<size_t>(victim)] = false;
      --num_alive;
      pools[pool].Rebalance(victim);
      ASSERT_EQ(pools[pool].num_live_replicas(), num_alive);
      for (int adapter = 0; adapter < num_adapters; ++adapter) {
        const std::vector<int>& homes = pools[pool].HomesOf(adapter);
        ASSERT_FALSE(homes.empty()) << "seed " << seed << ": adapter " << adapter
                                    << " lost every home in pool " << pool;
        for (int home : homes) {
          ASSERT_TRUE(alive[static_cast<size_t>(home)])
              << "seed " << seed << ": adapter " << adapter << " homed on dead pool-"
              << pool << " replica " << home;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisaggPoolFuzzTest, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// KV-handle conservation: whatever the pool split and whether a decode
// replica dies mid-run, every KvHandle the master takes ownership of is
// released by the time the workload drains — create/release counts balance,
// so no handle (and no copied KV page) can leak.
class DisaggHandleFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DisaggHandleFuzzTest, HandleCreateAndReleaseCountsBalance) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed * 22801763489ull + 3);
  const ModelConfig config = TinyConfig();
  const int num_replicas = static_cast<int>(rng.NextInt(3, 5));
  const int num_prefill = static_cast<int>(rng.NextInt(1, num_replicas - 2));
  const bool kill_decode = rng.NextDouble() < 0.5;

  TraceOptions trace_options;
  trace_options.app = AppKind::kVisualRetrieval;
  trace_options.duration_s = 1.0;
  trace_options.rate_rps = 20.0;
  trace_options.num_adapters = 4;
  trace_options.skewness = rng.NextUniform(0.3, 0.9);
  trace_options.seed = seed * 31 + 5;
  const std::vector<Request> trace = GenerateTrace(trace_options);
  if (trace.size() < 8u) {
    GTEST_SKIP() << "trace too short for seed " << seed;
  }

  FaultInjector fault(seed * 7 + 1);
  if (kill_decode) {
    // Some decode replica dies after a couple of completions; its queued
    // handles must be re-routed, not leaked.
    const int victim =
        num_prefill + static_cast<int>(rng.NextBounded(
                          static_cast<uint64_t>(num_replicas - num_prefill)));
    fault.KillReplicaAfter(victim, /*completed=*/static_cast<int64_t>(rng.NextBounded(3)));
  }
  RecoveryOptions recovery;
  recovery.stall_quarantine_ms = 0.0;
  recovery.backoff_base_ms = 1.0;
  recovery.health_period_ms = 2.0;
  recovery.max_attempts = 8;

  ClusterOptions options;
  options.num_replicas = num_replicas;
  options.policy = RoutePolicy::kAdapterAffinity;
  options.replica_queue_capacity = 256;
  options.server.max_batch_size = 4;
  options.disagg.enabled = true;
  options.disagg.num_prefill = num_prefill;
  options.fault = &fault;
  options.recovery = recovery;
  ClusterServer cluster(config, options);
  Rng adapter_rng(11);
  for (int i = 0; i < 4; ++i) {
    cluster.AddAdapter(LoraAdapter::Random("hfz-" + std::to_string(i), config.num_layers,
                                           config.d_model, 4, adapter_rng));
  }
  cluster.PlaceAdapters(AdapterShares(trace, 4));

  TraceMapOptions map;
  map.token_scale = 32;
  map.max_prompt_tokens = 16;
  map.max_new_tokens = 3;
  size_t submitted = 0;
  for (const Request& request : trace) {
    if (cluster.Submit(EngineRequestFromTrace(request, config, map))) {
      ++submitted;
    }
  }
  const std::vector<EngineResult> results = cluster.Drain();
  const size_t failed = cluster.TakeFailures().size();
  EXPECT_EQ(results.size() + failed, submitted) << "seed " << seed;
  cluster.Shutdown();

  const ClusterStats stats = cluster.Stats();
  EXPECT_GT(stats.handoffs, 0) << "seed " << seed;
  EXPECT_EQ(stats.handles_created, stats.handoffs) << "seed " << seed;
  EXPECT_EQ(stats.handles_released, stats.handles_created)
      << "seed " << seed << ": leaked " << (stats.handles_created - stats.handles_released)
      << " KV handles";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisaggHandleFuzzTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace vlora

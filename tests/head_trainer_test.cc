#include <gtest/gtest.h>

#include "src/core/head_trainer.h"
#include "src/engine/vision.h"
#include "src/engine/vision_tower.h"

namespace vlora {
namespace {

// Synthetic closed-set dataset: each class is anchored to one base image
// whose visual tokens dominate the prompt; per-example question tokens add
// noise. Same-class prompts produce nearby LMM features, so a linear probe
// separates the classes.
std::vector<HeadExample> MakeDataset(const ModelConfig& config, int classes, int per_class,
                                     uint64_t seed) {
  VisionEncoder vision(config);
  Rng rng(seed);
  std::vector<HeadExample> examples;
  for (int cls = 0; cls < classes; ++cls) {
    for (int i = 0; i < per_class; ++i) {
      // Question first, image last: the captured feature is the final prompt
      // token's hidden state, so ending with the class image keeps the
      // feature image-dominated while the question varies per example.
      HeadExample example;
      for (int q = 0; q < 3; ++q) {
        example.prompt_tokens.push_back(
            static_cast<int32_t>(rng.NextInt(2, config.vocab_size - 1)));
      }
      const std::vector<int32_t> image = vision.Encode(/*image_id=*/1000 * (cls + 1));
      example.prompt_tokens.insert(example.prompt_tokens.end(), image.begin(), image.end());
      example.label = cls;
      examples.push_back(std::move(example));
    }
  }
  return examples;
}

TEST(HeadTrainerTest, LearnsSeparableClasses) {
  const ModelConfig config = TinyConfig();
  InferenceEngine engine(config, EngineOptions{});
  const int classes = 3;
  const std::vector<HeadExample> train = MakeDataset(config, classes, 6, 11);

  HeadTrainerOptions options;
  options.num_classes = classes;
  const HeadTrainingResult result = TrainTaskHead(engine, train, VisionTask::kImageClassification,
                                                  options);
  EXPECT_GT(result.train_accuracy, 0.9);
  EXPECT_LT(result.final_loss, 1.0);
  EXPECT_EQ(result.head.num_options(), classes);
  EXPECT_EQ(result.head.task, VisionTask::kImageClassification);
}

TEST(HeadTrainerTest, TrainedHeadClassifiesThroughEnginePath) {
  const ModelConfig config = TinyConfig();
  InferenceEngine engine(config, EngineOptions{});
  Rng rng(13);
  LoraAdapter adapter =
      LoraAdapter::Random("cls", config.num_layers, config.d_model, 8, rng);
  const int adapter_id = engine.RegisterAdapter(&adapter);
  engine.SetMode(InferMode::kUnmerged);

  const int classes = 3;
  const std::vector<HeadExample> train = MakeDataset(config, classes, 6, 17);
  HeadTrainerOptions options;
  options.num_classes = classes;
  options.adapter_id = adapter_id;  // features extracted with the adapter active
  HeadTrainingResult trained = TrainTaskHead(engine, train, VisionTask::kImageClassification,
                                             options);
  adapter.SetTaskHead(std::move(trained.head));

  // Held-out prompts: same class images, fresh question tokens.
  const std::vector<HeadExample> test = MakeDataset(config, classes, 4, 999);
  const double accuracy = EvaluateTaskHead(engine, adapter_id, test);
  EXPECT_GT(accuracy, 0.75) << "trained head should generalise within classes";

  // An untrained (random) head on the same task is near chance.
  Rng head_rng(23);
  LoraAdapter random_adapter =
      LoraAdapter::Random("rnd", config.num_layers, config.d_model, 8, head_rng);
  VisionTaskHead random_head;
  random_head.task = VisionTask::kImageClassification;
  random_head.weight = Tensor::Random(Shape(config.d_model, classes), head_rng, 0.3f);
  random_adapter.SetTaskHead(std::move(random_head));
  const int random_id = engine.RegisterAdapter(&random_adapter);
  const double random_accuracy = EvaluateTaskHead(engine, random_id, test);
  EXPECT_GT(accuracy, random_accuracy);
}

TEST(HeadTrainerTest, LearnsFromRealVisionTowerFeatures) {
  // The full pipeline: synthetic pixels -> ViT encoder + projector ->
  // injected embeddings -> frozen LMM feature -> trained head. Same-class
  // examples are the class's base image plus small pixel noise.
  const ModelConfig config = TinyConfig();
  VisionTowerConfig tower_config;
  tower_config.image_size = 16;
  tower_config.patch_size = 8;
  tower_config.d_vision = 32;
  tower_config.num_heads = 4;
  tower_config.num_blocks = 2;
  tower_config.d_model = config.d_model;
  VisionTower tower(tower_config, 3);
  InferenceEngine engine(config, EngineOptions{});

  const int classes = 2;
  Rng noise_rng(31);
  auto make_examples = [&](int per_class, uint64_t salt) {
    std::vector<HeadExample> examples;
    for (int cls = 0; cls < classes; ++cls) {
      for (int i = 0; i < per_class; ++i) {
        Tensor image = SyntheticImage(tower_config, 500 * (cls + 1));
        for (int64_t p = 0; p < image.NumElements(); ++p) {
          image.data()[p] = std::clamp(
              image.data()[p] + static_cast<float>(noise_rng.NextUniform(-0.03, 0.03)) +
                  static_cast<float>(salt) * 0.0f,
              0.0f, 1.0f);
        }
        Tensor embeddings = tower.Encode(image);
        HeadExample example;
        example.prompt_tokens = tower.SurrogateTokens(embeddings);
        InjectedEmbeddings span;
        span.position = 0;
        span.embeddings = std::move(embeddings);
        example.injected.push_back(std::move(span));
        example.label = cls;
        examples.push_back(std::move(example));
      }
    }
    return examples;
  };

  // The adapter is registered first so training extracts features with it
  // active — the head must match the features it will see at inference.
  Rng head_rng(41);
  LoraAdapter adapter = LoraAdapter::Random("vt", config.num_layers, config.d_model, 8, head_rng);
  const int adapter_id = engine.RegisterAdapter(&adapter);
  engine.SetMode(InferMode::kUnmerged);

  HeadTrainerOptions options;
  options.num_classes = classes;
  options.adapter_id = adapter_id;
  HeadTrainingResult trained =
      TrainTaskHead(engine, make_examples(6, 1), VisionTask::kImageClassification, options);
  EXPECT_GT(trained.train_accuracy, 0.9);

  // Held-out noisy variants through the real head-inference path.
  adapter.SetTaskHead(std::move(trained.head));
  const double accuracy = EvaluateTaskHead(engine, adapter_id, make_examples(4, 2));
  EXPECT_GT(accuracy, 0.75);
}

TEST(HeadTrainerTest, CaptureFinalHiddenReturnsFeature) {
  const ModelConfig config = TinyConfig();
  InferenceEngine engine(config, EngineOptions{});
  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = {5, 9, 23};
  request.max_new_tokens = 1;
  request.eos_token = -1;
  request.capture_final_hidden = true;
  const EngineResult result = engine.RunToCompletion(request);
  ASSERT_EQ(static_cast<int64_t>(result.final_hidden.size()), config.d_model);
  // Deterministic across runs.
  InferenceEngine engine2(config, EngineOptions{});
  EngineRequest again = request;
  const EngineResult result2 = engine2.RunToCompletion(again);
  EXPECT_EQ(result.final_hidden, result2.final_hidden);
}

TEST(HeadTrainerTest, NoCaptureByDefault) {
  const ModelConfig config = TinyConfig();
  InferenceEngine engine(config, EngineOptions{});
  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = {5, 9, 23};
  request.max_new_tokens = 1;
  request.eos_token = -1;
  const EngineResult result = engine.RunToCompletion(request);
  EXPECT_TRUE(result.final_hidden.empty());
}

}  // namespace
}  // namespace vlora

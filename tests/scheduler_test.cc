#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/scheduler.h"

namespace vlora {
namespace {

RequestView View(int index, int adapter, double wait_ms) {
  RequestView view;
  view.index = index;
  view.adapter_id = adapter;
  view.wait_ms = wait_ms;
  view.arrival_wait_ms = wait_ms;
  view.input_tokens = 256;
  view.remaining_outputs = 10;
  return view;
}

PolicyContext Ctx(int max_bs) {
  PolicyContext context;
  context.max_batch_size = max_bs;
  context.current_mode = InferMode::kUnmerged;
  context.merged_adapter = -1;
  return context;
}

TEST(Alg1Test, EmptyQueueEmptyPlan) {
  const IterationPlan plan = Alg1Schedule({}, Ctx(8), Alg1Options{});
  EXPECT_TRUE(plan.selected.empty());
}

TEST(Alg1Test, MergedWhenQueueHomogeneous) {
  // Every queued request wants adapter 0: pure merged mode, nobody excluded.
  std::vector<RequestView> queue;
  for (int i = 0; i < 6; ++i) {
    queue.push_back(View(i, 0, 10.0));
  }
  const IterationPlan plan = Alg1Schedule(queue, Ctx(8), Alg1Options{});
  EXPECT_EQ(plan.mode, InferMode::kMerged);
  EXPECT_EQ(plan.merged_adapter, 0);
  EXPECT_EQ(plan.selected.size(), 6u);
}

TEST(Alg1Test, MergedWhenGroupFillsBatch) {
  // The hot adapter's requests are the oldest and alone fill MaxBS: the
  // candidate batch is homogeneous and runs merged; the younger foreign
  // requests wait outside the window.
  std::vector<RequestView> queue;
  for (int i = 0; i < 10; ++i) {
    queue.push_back(View(i, 0, 100.0 - i));
  }
  queue.push_back(View(10, 1, 5.0));
  queue.push_back(View(11, 2, 4.0));
  const IterationPlan plan = Alg1Schedule(queue, Ctx(8), Alg1Options{});
  EXPECT_EQ(plan.mode, InferMode::kMerged);
  EXPECT_EQ(plan.merged_adapter, 0);
  EXPECT_EQ(plan.selected.size(), 8u);
  for (int index : plan.selected) {
    EXPECT_LT(index, 10);
  }
}

TEST(Alg1Test, MixtureWhenDominantButHeterogeneous) {
  // 6 of 8 requests want adapter 0 (> MaxBS/2 = 4) but the queue is mixed and
  // fits in one batch: mixture serves everyone while adapter 0 stays merged.
  std::vector<RequestView> queue;
  for (int i = 0; i < 6; ++i) {
    queue.push_back(View(i, 0, 10.0));
  }
  queue.push_back(View(6, 1, 10.0));
  queue.push_back(View(7, 2, 10.0));
  const IterationPlan plan = Alg1Schedule(queue, Ctx(8), Alg1Options{});
  EXPECT_EQ(plan.mode, InferMode::kMixture);
  EXPECT_EQ(plan.merged_adapter, 0);
  EXPECT_EQ(plan.selected.size(), 8u);
}

TEST(Alg1Test, MixtureWhenFewStarving) {
  Alg1Options options;
  options.theta_ms = 500.0;
  std::vector<RequestView> queue;
  for (int i = 0; i < 6; ++i) {
    queue.push_back(View(i, 0, 10.0));
  }
  // Two starving foreign-adapter requests (2 <= MaxBS/2 = 4).
  queue.push_back(View(6, 1, 2000.0));
  queue.push_back(View(7, 2, 2000.0));
  const IterationPlan plan = Alg1Schedule(queue, Ctx(8), options);
  EXPECT_EQ(plan.mode, InferMode::kMixture);
  EXPECT_EQ(plan.merged_adapter, 0);
  // Starving requests are in the batch.
  EXPECT_NE(std::find(plan.selected.begin(), plan.selected.end(), 6), plan.selected.end());
  EXPECT_NE(std::find(plan.selected.begin(), plan.selected.end(), 7), plan.selected.end());
  // Merge-group requests fill the remainder.
  EXPECT_EQ(plan.selected.size(), 8u);
}

TEST(Alg1Test, UnmergedWhenTooManyStarving) {
  Alg1Options options;
  options.theta_ms = 500.0;
  std::vector<RequestView> queue;
  for (int i = 0; i < 3; ++i) {
    queue.push_back(View(i, 0, 10.0));
  }
  // 5 starving > MaxBS/2 = 4.
  for (int i = 3; i < 8; ++i) {
    queue.push_back(View(i, i, 2000.0));
  }
  const IterationPlan plan = Alg1Schedule(queue, Ctx(8), options);
  EXPECT_EQ(plan.mode, InferMode::kUnmerged);
  // Starving requests come first.
  for (int i = 0; i < 5; ++i) {
    EXPECT_GE(plan.selected[static_cast<size_t>(i)], 3);
  }
  EXPECT_EQ(plan.selected.size(), 8u);
}

TEST(Alg1Test, UnmergedWhenNoDominantGroup) {
  // Even spread: 2 requests per adapter, MaxBS 8 -> no group > 4.
  std::vector<RequestView> queue;
  for (int i = 0; i < 8; ++i) {
    queue.push_back(View(i, i / 2, 10.0));
  }
  const IterationPlan plan = Alg1Schedule(queue, Ctx(8), Alg1Options{});
  EXPECT_EQ(plan.mode, InferMode::kUnmerged);
  EXPECT_EQ(plan.selected.size(), 8u);
}

TEST(Alg1Test, RespectsMaxBatchSize) {
  std::vector<RequestView> queue;
  for (int i = 0; i < 20; ++i) {
    queue.push_back(View(i, i % 5, 10.0 * i));
  }
  const IterationPlan plan = Alg1Schedule(queue, Ctx(4), Alg1Options{});
  EXPECT_LE(plan.selected.size(), 4u);
}

TEST(Alg1Test, NoDuplicateSelections) {
  Alg1Options options;
  options.theta_ms = 100.0;
  std::vector<RequestView> queue;
  for (int i = 0; i < 12; ++i) {
    queue.push_back(View(i, i % 3, i < 3 ? 500.0 : 10.0));
  }
  const IterationPlan plan = Alg1Schedule(queue, Ctx(8), options);
  std::vector<int> sorted = plan.selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Alg1Test, CreditIncludesExecAndSwitchEstimates) {
  // wait 460 + exec 40 + switch 8 = 508 > θ = 500: starving even though the
  // raw wait is below θ.
  Alg1Options options;
  options.theta_ms = 500.0;
  options.exec_estimate_ms = 40.0;
  options.switch_ms = 8.0;
  std::vector<RequestView> queue;
  for (int i = 0; i < 6; ++i) {
    queue.push_back(View(i, 0, 10.0));
  }
  queue.push_back(View(6, 1, 460.0));
  const IterationPlan plan = Alg1Schedule(queue, Ctx(8), options);
  EXPECT_EQ(plan.mode, InferMode::kMixture);
  EXPECT_NE(std::find(plan.selected.begin(), plan.selected.end(), 6), plan.selected.end());
}

TEST(Alg1Test, HomogeneousCandidateBatchRunsMerged) {
  Alg1Options options;
  options.theta_ms = 10000.0;
  // MaxBS = 4 and the four oldest requests all use adapter 0: the candidate
  // batch is homogeneous, so pure merged mode fires even though a foreign
  // request waits deeper in the queue.
  std::vector<RequestView> queue;
  for (int i = 0; i < 6; ++i) {
    queue.push_back(View(i, 0, 100.0 - i));  // FCFS: index 0 oldest
  }
  queue.push_back(View(6, 1, 10.0));  // youngest, outside the batch window
  const IterationPlan plan = Alg1Schedule(queue, Ctx(4), options);
  EXPECT_EQ(plan.mode, InferMode::kMerged);
  EXPECT_EQ(plan.selected.size(), 4u);
  EXPECT_EQ(std::find(plan.selected.begin(), plan.selected.end(), 6), plan.selected.end());
}

TEST(Alg1Test, RunningRequestsKeepTheirSlots) {
  // 4 running decodes + 4 waiting requests with huge arrival waits, MaxBS 4:
  // the running set is not preempted (no round-robin churn under overload).
  std::vector<RequestView> queue;
  for (int i = 0; i < 4; ++i) {
    RequestView view = View(i, i, 50.0);
    view.prefilled = true;
    queue.push_back(view);
  }
  for (int i = 4; i < 8; ++i) {
    queue.push_back(View(i, i, 5000.0));
  }
  const IterationPlan plan = Alg1Schedule(queue, Ctx(4), Alg1Options{});
  ASSERT_EQ(plan.selected.size(), 4u);
  for (int index : plan.selected) {
    EXPECT_LT(index, 4);
  }
}

// Starvation-freedom property: under repeated scheduling with waits growing
// for unselected requests, every request is eventually selected.
TEST(Alg1Test, StarvationFreedom) {
  Alg1Options options;
  options.theta_ms = 300.0;
  const int n = 24;
  std::vector<double> waits(n, 0.0);
  std::vector<bool> served(n, false);
  // Adapter 0 dominates; adapters 1..5 each own a few requests.
  std::vector<int> adapters(n);
  for (int i = 0; i < n; ++i) {
    adapters[static_cast<size_t>(i)] = i < 16 ? 0 : 1 + (i - 16) % 5;
  }
  for (int round = 0; round < 200; ++round) {
    std::vector<RequestView> queue;
    for (int i = 0; i < n; ++i) {
      if (!served[static_cast<size_t>(i)]) {
        queue.push_back(View(i, adapters[static_cast<size_t>(i)], waits[static_cast<size_t>(i)]));
      }
    }
    if (queue.empty()) {
      break;
    }
    const IterationPlan plan = Alg1Schedule(queue, Ctx(8), options);
    ASSERT_FALSE(plan.selected.empty());
    for (int index : plan.selected) {
      served[static_cast<size_t>(index)] = true;
    }
    for (int i = 0; i < n; ++i) {
      if (!served[static_cast<size_t>(i)]) {
        waits[static_cast<size_t>(i)] += 50.0;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(served[static_cast<size_t>(i)]) << "request " << i << " starved";
  }
}

TEST(Alg1Test, SloUrgentRequestJumpsAdmissionQueue) {
  Alg1Options options;
  options.theta_ms = 10000.0;  // nobody starves by wait
  options.slo_urgency_fraction = 0.5;
  // Four running decodes occupy rank 0; two waiters compete for nothing at
  // MaxBS 5 — only one waiting slot. The SLO-urgent waiter must win it even
  // though the best-effort waiter arrived earlier.
  std::vector<RequestView> queue;
  for (int i = 0; i < 4; ++i) {
    RequestView view = View(i, i, 50.0);
    view.prefilled = true;
    queue.push_back(view);
  }
  RequestView best_effort = View(4, 4, 900.0);  // older
  RequestView urgent = View(5, 5, 600.0);       // younger but near its SLO
  urgent.slo_ms = 1000.0;                       // 600 > 0.5 * 1000
  queue.push_back(best_effort);
  queue.push_back(urgent);
  const IterationPlan plan = Alg1Schedule(queue, Ctx(5), options);
  ASSERT_EQ(plan.selected.size(), 5u);
  EXPECT_NE(std::find(plan.selected.begin(), plan.selected.end(), 5), plan.selected.end());
  EXPECT_EQ(std::find(plan.selected.begin(), plan.selected.end(), 4), plan.selected.end());
}

TEST(Alg1Test, SloAwarenessOffByDefault) {
  Alg1Options options;
  options.theta_ms = 10000.0;
  std::vector<RequestView> queue;
  for (int i = 0; i < 4; ++i) {
    RequestView view = View(i, i, 50.0);
    view.prefilled = true;
    queue.push_back(view);
  }
  RequestView best_effort = View(4, 4, 900.0);
  RequestView urgent = View(5, 5, 600.0);
  urgent.slo_ms = 1000.0;
  queue.push_back(best_effort);
  queue.push_back(urgent);
  const IterationPlan plan = Alg1Schedule(queue, Ctx(5), options);
  // Default Alg 1 (no SLO term): plain FCFS admission — the older waiter wins.
  EXPECT_NE(std::find(plan.selected.begin(), plan.selected.end(), 4), plan.selected.end());
  EXPECT_EQ(std::find(plan.selected.begin(), plan.selected.end(), 5), plan.selected.end());
}

TEST(VloraPolicyTest, ProfileDescribesVlora) {
  auto policy = MakeVloraPolicy();
  EXPECT_EQ(policy->profile().name, "V-LoRA");
  EXPECT_EQ(policy->profile().op, OperatorKind::kAtmm);
  EXPECT_LT(policy->profile().switch_ms, 10.0);
  EXPECT_TRUE(policy->profile().uses_task_head);
  EXPECT_TRUE(policy->profile().async_adapter_swap);
}

TEST(VloraPolicyTest, NoMixtureVariantNeverPlansMixture) {
  auto policy = MakeVloraNoMixturePolicy(Alg1Options{.theta_ms = 500.0});
  std::vector<RequestView> queue;
  for (int i = 0; i < 6; ++i) {
    queue.push_back(View(i, 0, 10.0));
  }
  queue.push_back(View(6, 1, 2000.0));
  const IterationPlan plan = policy->Plan(queue, Ctx(8));
  EXPECT_EQ(plan.mode, InferMode::kUnmerged);
}

TEST(VloraPolicyTest, LegacySwitchVariantCosts53ms) {
  auto policy = MakeVloraLegacySwitchPolicy();
  EXPECT_NEAR(policy->profile().switch_ms, 53.0, 1e-9);
}

}  // namespace
}  // namespace vlora

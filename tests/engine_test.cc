#include <gtest/gtest.h>

#include <memory>

#include "src/engine/engine.h"
#include "src/engine/vision.h"

namespace vlora {
namespace {

std::vector<int32_t> Prompt(int64_t len, uint64_t seed, int64_t vocab) {
  Rng rng(seed);
  std::vector<int32_t> tokens;
  for (int64_t i = 0; i < len; ++i) {
    // Avoid the EOS token (1) inside prompts.
    tokens.push_back(static_cast<int32_t>(rng.NextInt(2, vocab - 1)));
  }
  return tokens;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : config_(TinyConfig()) {}

  std::unique_ptr<InferenceEngine> MakeEngine(uint64_t seed = 42) {
    EngineOptions options;
    options.seed = seed;
    options.kv_block_size = 16;
    options.kv_num_blocks = 256;
    return std::make_unique<InferenceEngine>(config_, options);
  }

  LoraAdapter MakeAdapter(const std::string& name, uint64_t seed) {
    Rng rng(seed);
    return LoraAdapter::Random(name, config_.num_layers, config_.d_model, 8, rng);
  }

  ModelConfig config_;
};

TEST_F(EngineTest, DeterministicAcrossInstances) {
  auto e1 = MakeEngine();
  auto e2 = MakeEngine();
  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = Prompt(20, 3, config_.vocab_size);
  request.max_new_tokens = 6;
  const EngineResult r1 = e1->RunToCompletion(request);
  const EngineResult r2 = e2->RunToCompletion(request);
  EXPECT_EQ(r1.output_tokens, r2.output_tokens);
  EXPECT_FALSE(r1.output_tokens.empty());
}

TEST_F(EngineTest, RespectsMaxNewTokens) {
  auto engine = MakeEngine();
  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = Prompt(10, 5, config_.vocab_size);
  request.max_new_tokens = 3;
  request.eos_token = -1;  // never emitted
  const EngineResult result = engine->RunToCompletion(request);
  EXPECT_EQ(result.output_tokens.size(), 3u);
  EXPECT_EQ(result.decode_steps, 3);
}

TEST_F(EngineTest, BaseVsAdapterOutputsDiffer) {
  auto engine = MakeEngine();
  LoraAdapter adapter = MakeAdapter("a", 7);
  adapter.set_scaling(4.0f);  // large enough to flip argmax decisions
  const int id = engine->RegisterAdapter(&adapter);

  EngineRequest base;
  base.id = 1;
  base.prompt_tokens = Prompt(24, 9, config_.vocab_size);
  base.max_new_tokens = 8;
  base.eos_token = -1;
  EngineRequest with_adapter = base;
  with_adapter.id = 2;
  with_adapter.adapter_id = id;

  engine->SetMode(InferMode::kUnmerged);
  const EngineResult r_base = engine->RunToCompletion(base);
  const EngineResult r_lora = engine->RunToCompletion(with_adapter);
  EXPECT_NE(r_base.output_tokens, r_lora.output_tokens);
}

TEST_F(EngineTest, MergedEqualsUnmerged) {
  LoraAdapter adapter = MakeAdapter("a", 11);
  EngineRequest request;
  request.prompt_tokens = Prompt(30, 13, config_.vocab_size);
  request.max_new_tokens = 5;
  request.eos_token = -1;

  auto unmerged_engine = MakeEngine();
  const int id_u = unmerged_engine->RegisterAdapter(&adapter);
  unmerged_engine->SetMode(InferMode::kUnmerged);
  EngineRequest ru = request;
  ru.id = 1;
  ru.adapter_id = id_u;
  const EngineResult unmerged = unmerged_engine->RunToCompletion(ru);

  auto merged_engine = MakeEngine();
  const int id_m = merged_engine->RegisterAdapter(&adapter);
  merged_engine->SetMode(InferMode::kMerged, id_m);
  EngineRequest rm = request;
  rm.id = 2;
  rm.adapter_id = id_m;
  const EngineResult merged = merged_engine->RunToCompletion(rm);

  EXPECT_EQ(unmerged.output_tokens, merged.output_tokens);
}

TEST_F(EngineTest, MixtureEqualsUnmergedForForeignAdapter) {
  // Request runs adapter B while adapter A is merged: the deLoRA branch must
  // cancel A exactly, matching a clean unmerged run of B.
  LoraAdapter a = MakeAdapter("a", 17);
  LoraAdapter b = MakeAdapter("b", 19);
  EngineRequest request;
  request.prompt_tokens = Prompt(28, 21, config_.vocab_size);
  request.max_new_tokens = 5;
  request.eos_token = -1;

  auto clean = MakeEngine();
  clean->RegisterAdapter(&a);
  const int idb_clean = clean->RegisterAdapter(&b);
  clean->SetMode(InferMode::kUnmerged);
  EngineRequest rc = request;
  rc.id = 1;
  rc.adapter_id = idb_clean;
  const EngineResult unmerged = clean->RunToCompletion(rc);

  auto mixture = MakeEngine();
  const int ida = mixture->RegisterAdapter(&a);
  const int idb = mixture->RegisterAdapter(&b);
  mixture->SetMode(InferMode::kMixture, ida);
  EngineRequest rx = request;
  rx.id = 2;
  rx.adapter_id = idb;
  const EngineResult mixed = mixture->RunToCompletion(rx);

  EXPECT_EQ(unmerged.output_tokens, mixed.output_tokens);
}

TEST_F(EngineTest, MixtureServesMergedAdapterUntouched) {
  LoraAdapter a = MakeAdapter("a", 23);
  EngineRequest request;
  request.prompt_tokens = Prompt(26, 25, config_.vocab_size);
  request.max_new_tokens = 4;
  request.eos_token = -1;

  auto merged_engine = MakeEngine();
  const int id1 = merged_engine->RegisterAdapter(&a);
  merged_engine->SetMode(InferMode::kMerged, id1);
  EngineRequest r1 = request;
  r1.id = 1;
  r1.adapter_id = id1;
  const EngineResult merged = merged_engine->RunToCompletion(r1);

  auto mixture_engine = MakeEngine();
  const int id2 = mixture_engine->RegisterAdapter(&a);
  mixture_engine->SetMode(InferMode::kMixture, id2);
  EngineRequest r2 = request;
  r2.id = 2;
  r2.adapter_id = id2;
  const EngineResult mixed = mixture_engine->RunToCompletion(r2);

  EXPECT_EQ(merged.output_tokens, mixed.output_tokens);
}

TEST_F(EngineTest, ModeSwitchRoundTripPreservesOutputs) {
  auto engine = MakeEngine();
  LoraAdapter a = MakeAdapter("a", 27);
  LoraAdapter b = MakeAdapter("b", 29);
  const int ida = engine->RegisterAdapter(&a);
  const int idb = engine->RegisterAdapter(&b);

  EngineRequest request;
  request.prompt_tokens = Prompt(22, 31, config_.vocab_size);
  request.max_new_tokens = 4;
  request.eos_token = -1;
  request.adapter_id = ida;

  engine->SetMode(InferMode::kUnmerged);
  EngineRequest r1 = request;
  r1.id = 1;
  const EngineResult before = engine->RunToCompletion(r1);

  // Thrash the switcher: merge a, merge b, back to unmerged.
  engine->SetMode(InferMode::kMerged, ida);
  engine->SetMode(InferMode::kMerged, idb);
  engine->SetMode(InferMode::kUnmerged);
  EXPECT_GE(engine->mode_switch_count(), 3);

  EngineRequest r2 = request;
  r2.id = 2;
  const EngineResult after = engine->RunToCompletion(r2);
  EXPECT_EQ(before.output_tokens, after.output_tokens);
}

TEST_F(EngineTest, MixedTargetAdaptersInOneBatch) {
  // One adapter adapts all three projections, another only Wv: the batched
  // bypass planner must route each adapter's branches to exactly its targets.
  Rng rng(91);
  LoraAdapter full = LoraAdapter::Random("full", config_.num_layers, config_.d_model, 8, rng);
  LoraAdapter v_only = LoraAdapter::Random("v-only", config_.num_layers, config_.d_model, 8, rng,
                                           0.05f, {LoraTarget::kWv});

  auto make_requests = [&](int id_base) {
    std::vector<EngineRequest> requests;
    for (int i = 0; i < 2; ++i) {
      EngineRequest request;
      request.id = id_base + i;
      request.prompt_tokens = Prompt(20 + 3 * i, 200 + static_cast<uint64_t>(i),
                                     config_.vocab_size);
      request.max_new_tokens = 4;
      request.eos_token = -1;
      request.adapter_id = i;
      requests.push_back(request);
    }
    return requests;
  };

  // Reference: each request alone.
  std::vector<std::vector<int32_t>> reference;
  for (const EngineRequest& request : make_requests(0)) {
    auto engine = MakeEngine();
    engine->RegisterAdapter(&full);
    engine->RegisterAdapter(&v_only);
    engine->SetMode(InferMode::kUnmerged);
    reference.push_back(engine->RunToCompletion(request).output_tokens);
  }

  // Batched: both together, then also in mixture mode with `full` merged.
  for (InferMode mode : {InferMode::kUnmerged, InferMode::kMixture}) {
    auto engine = MakeEngine();
    const int full_id = engine->RegisterAdapter(&full);
    engine->RegisterAdapter(&v_only);
    engine->SetMode(mode, mode == InferMode::kMixture ? full_id : -1);
    for (const EngineRequest& request : make_requests(0)) {
      engine->Submit(request);
    }
    std::vector<std::vector<int32_t>> outputs(2);
    while (engine->HasWork()) {
      for (EngineResult& result : engine->Step()) {
        outputs[static_cast<size_t>(result.request_id)] = std::move(result.output_tokens);
      }
    }
    EXPECT_EQ(outputs[0], reference[0]) << InferModeName(mode);
    EXPECT_EQ(outputs[1], reference[1]) << InferModeName(mode);
  }
}

TEST_F(EngineTest, TaskHeadFinishesInOneRound) {
  auto engine = MakeEngine();
  LoraAdapter adapter = MakeAdapter("a", 33);
  Rng rng(35);
  VisionTaskHead head;
  head.task = VisionTask::kVideoClassification;
  head.weight = Tensor::Random(Shape(config_.d_model, 12), rng, 0.3f);
  adapter.SetTaskHead(std::move(head));
  const int id = engine->RegisterAdapter(&adapter);
  engine->SetMode(InferMode::kUnmerged);

  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = Prompt(40, 37, config_.vocab_size);
  request.adapter_id = id;
  request.use_task_head = true;
  request.max_new_tokens = 64;  // irrelevant: the head answers in one round
  const EngineResult result = engine->RunToCompletion(request);
  EXPECT_GE(result.head_option, 0);
  EXPECT_LT(result.head_option, 12);
  EXPECT_TRUE(result.output_tokens.empty());
  EXPECT_EQ(result.decode_steps, 0);
}

TEST_F(EngineTest, ContinuousBatchingMatchesSequentialRuns) {
  LoraAdapter a = MakeAdapter("a", 41);
  LoraAdapter b = MakeAdapter("b", 43);

  // Sequential reference.
  std::vector<EngineResult> reference;
  for (int i = 0; i < 3; ++i) {
    auto engine = MakeEngine();
    const int ida = engine->RegisterAdapter(&a);
    const int idb = engine->RegisterAdapter(&b);
    engine->SetMode(InferMode::kUnmerged);
    EngineRequest request;
    request.id = i;
    request.prompt_tokens = Prompt(15 + 4 * i, 100 + static_cast<uint64_t>(i),
                                   config_.vocab_size);
    request.max_new_tokens = 4;
    request.eos_token = -1;
    request.adapter_id = i == 0 ? ida : (i == 1 ? idb : -1);
    reference.push_back(engine->RunToCompletion(request));
  }

  // Batched run of the same three requests.
  auto engine = MakeEngine();
  const int ida = engine->RegisterAdapter(&a);
  const int idb = engine->RegisterAdapter(&b);
  engine->SetMode(InferMode::kUnmerged);
  for (int i = 0; i < 3; ++i) {
    EngineRequest request;
    request.id = i;
    request.prompt_tokens = Prompt(15 + 4 * i, 100 + static_cast<uint64_t>(i),
                                   config_.vocab_size);
    request.max_new_tokens = 4;
    request.eos_token = -1;
    request.adapter_id = i == 0 ? ida : (i == 1 ? idb : -1);
    engine->Submit(request);
  }
  std::vector<EngineResult> results(3);
  while (engine->HasWork()) {
    for (EngineResult& result : engine->Step()) {
      results[static_cast<size_t>(result.request_id)] = std::move(result);
    }
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].output_tokens,
              reference[static_cast<size_t>(i)].output_tokens)
        << "request " << i;
  }
}

TEST_F(EngineTest, PrefixReuseProducesIdenticalOutputs) {
  auto engine = MakeEngine();
  engine->SetMode(InferMode::kUnmerged);
  VisionEncoder vision(config_);
  const std::vector<int32_t> text = Prompt(9, 51, config_.vocab_size);
  // Two requests over the same image: the second must reuse the first's
  // prompt blocks and still produce the same answer.
  EngineRequest first;
  first.id = 1;
  first.prompt_tokens = vision.BuildPrompt(77, text);
  first.max_new_tokens = 4;
  first.eos_token = -1;
  const EngineResult r1 = engine->RunToCompletion(first);
  EXPECT_EQ(r1.reused_tokens, 0);

  // The persistent prefix cache keeps the prompt blocks alive after the first
  // request finished: the repeat reuses them and answers identically.
  EngineRequest second = first;
  second.id = 2;
  const EngineResult r2 = engine->RunToCompletion(second);
  EXPECT_EQ(r2.output_tokens, r1.output_tokens);
  EXPECT_GT(r2.reused_tokens, 0);
  EXPECT_GT(engine->kv().prefix_hits(), 0);

  // Concurrent clones share blocks too.
  EngineRequest a = first;
  a.id = 3;
  EngineRequest b = first;
  b.id = 4;
  engine->Submit(a);
  engine->Step();  // a prefills (reusing the cache) before b is admitted
  engine->Submit(b);
  std::vector<EngineResult> results;
  while (engine->HasWork()) {
    for (EngineResult& result : engine->Step()) {
      results.push_back(std::move(result));
    }
  }
  for (const EngineResult& result : results) {
    if (result.request_id == 4) {
      EXPECT_GT(result.reused_tokens, 0);
      EXPECT_EQ(result.output_tokens, r1.output_tokens);
    }
  }
}

TEST_F(EngineTest, PrefixReuseDoesNotCrossAdapters) {
  auto engine = MakeEngine();
  LoraAdapter adapter = MakeAdapter("a", 53);
  const int id = engine->RegisterAdapter(&adapter);
  engine->SetMode(InferMode::kUnmerged);

  const std::vector<int32_t> prompt = Prompt(48, 55, config_.vocab_size);
  EngineRequest base;
  base.id = 1;
  base.prompt_tokens = prompt;
  base.max_new_tokens = 12;  // keep it alive while the second runs
  base.eos_token = -1;
  engine->Submit(base);
  engine->Step();  // base prefills and registers its blocks

  EngineRequest with_adapter;
  with_adapter.id = 2;
  with_adapter.prompt_tokens = prompt;
  with_adapter.adapter_id = id;
  with_adapter.max_new_tokens = 2;
  with_adapter.eos_token = -1;
  engine->Submit(with_adapter);
  std::vector<EngineResult> results;
  while (engine->HasWork()) {
    for (EngineResult& result : engine->Step()) {
      results.push_back(std::move(result));
    }
  }
  for (const EngineResult& result : results) {
    if (result.request_id == 2) {
      // Different adapter -> different chain seed -> no reuse.
      EXPECT_EQ(result.reused_tokens, 0);
    }
  }
}

TEST_F(EngineTest, StepSelectedAdvancesOnlySelection) {
  auto engine = MakeEngine();
  engine->SetMode(InferMode::kUnmerged);
  for (int i = 0; i < 2; ++i) {
    EngineRequest request;
    request.id = i;
    request.prompt_tokens = Prompt(12, 60 + static_cast<uint64_t>(i), config_.vocab_size);
    request.max_new_tokens = 2;
    request.eos_token = -1;
    engine->Submit(request);
  }
  // Drive only request 0 to completion.
  std::vector<int64_t> only = {0};
  int64_t finished_id = -1;
  for (int iter = 0; iter < 10 && finished_id < 0; ++iter) {
    for (const EngineResult& result : engine->StepSelected(only)) {
      finished_id = result.request_id;
    }
  }
  EXPECT_EQ(finished_id, 0);
  // Request 1 is still queued and untouched.
  auto queue = engine->Queue();
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue[0].request_id, 1);
  EXPECT_FALSE(queue[0].prefilled);
}

TEST_F(EngineTest, PreemptionUnderKvPressurePreservesOutputs) {
  // Reference run with ample KV.
  std::vector<EngineRequest> requests;
  for (int i = 0; i < 4; ++i) {
    EngineRequest request;
    request.id = i;
    request.prompt_tokens = Prompt(30 + 5 * i, 300 + static_cast<uint64_t>(i),
                                   config_.vocab_size);
    request.max_new_tokens = 6;
    request.eos_token = -1;
    requests.push_back(request);
  }
  std::vector<std::vector<int32_t>> reference;
  {
    auto engine = MakeEngine();
    engine->SetMode(InferMode::kUnmerged);
    for (const EngineRequest& request : requests) {
      engine->Submit(request);
    }
    std::vector<std::vector<int32_t>> outputs(requests.size());
    while (engine->HasWork()) {
      for (EngineResult& result : engine->Step()) {
        outputs[static_cast<size_t>(result.request_id)] = std::move(result.output_tokens);
      }
    }
    reference = std::move(outputs);
  }

  // Starved run: enough blocks for roughly two sequences, forcing preemption.
  EngineOptions tight;
  tight.seed = 42;
  tight.kv_block_size = 16;
  tight.kv_num_blocks = 8;
  InferenceEngine engine(config_, tight);
  engine.SetMode(InferMode::kUnmerged);
  for (const EngineRequest& request : requests) {
    engine.Submit(request);
  }
  std::vector<std::vector<int32_t>> outputs(requests.size());
  int iterations = 0;
  while (engine.HasWork()) {
    ASSERT_LT(++iterations, 500) << "livelock under KV pressure";
    for (EngineResult& result : engine.Step()) {
      outputs[static_cast<size_t>(result.request_id)] = std::move(result.output_tokens);
    }
  }
  EXPECT_GT(engine.preemption_count(), 0);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(outputs[i], reference[i]) << "request " << i;
  }
}

TEST_F(EngineTest, SingleSequenceNeverPreemptsItself) {
  EngineOptions tight;
  tight.kv_block_size = 16;
  tight.kv_num_blocks = 4;  // 64 tokens of capacity
  InferenceEngine engine(config_, tight);
  EngineRequest request;
  request.id = 1;
  request.prompt_tokens = Prompt(40, 400, config_.vocab_size);
  request.max_new_tokens = 5;
  request.eos_token = -1;
  const EngineResult result = engine.RunToCompletion(request);
  EXPECT_EQ(result.output_tokens.size(), 5u);
  EXPECT_EQ(engine.preemption_count(), 0);
}

TEST_F(EngineTest, QueueReportsState) {
  auto engine = MakeEngine();
  EngineRequest request;
  request.id = 9;
  request.prompt_tokens = Prompt(10, 71, config_.vocab_size);
  request.max_new_tokens = 5;
  request.eos_token = -1;
  engine->Submit(request);
  auto queue = engine->Queue();
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue[0].request_id, 9);
  EXPECT_EQ(queue[0].prompt_tokens, 10);
  EXPECT_FALSE(queue[0].prefilled);
  engine->Step();
  queue = engine->Queue();
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_TRUE(queue[0].prefilled);
  EXPECT_EQ(queue[0].remaining_new_tokens, 4);
}

TEST_F(EngineTest, VisionEncoderDeterministic) {
  VisionEncoder vision(config_);
  EXPECT_EQ(vision.Encode(5), vision.Encode(5));
  EXPECT_NE(vision.Encode(5), vision.Encode(6));
  EXPECT_EQ(static_cast<int64_t>(vision.Encode(5).size()), config_.visual_tokens_per_image);
  const std::vector<int32_t> text = {3, 4, 5};
  const std::vector<int32_t> prompt = vision.BuildPrompt(5, text);
  EXPECT_EQ(static_cast<int64_t>(prompt.size()), config_.visual_tokens_per_image + 3);
  const std::vector<int32_t> video = vision.BuildVideoPrompt({1, 2, 3}, text);
  EXPECT_EQ(static_cast<int64_t>(video.size()), 3 * config_.visual_tokens_per_image + 3);
}

}  // namespace
}  // namespace vlora

# Empty dependencies file for request_mapping_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/request_mapping_test.dir/request_mapping_test.cc.o"
  "CMakeFiles/request_mapping_test.dir/request_mapping_test.cc.o.d"
  "request_mapping_test"
  "request_mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

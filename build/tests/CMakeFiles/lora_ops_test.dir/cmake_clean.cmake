file(REMOVE_RECURSE
  "CMakeFiles/lora_ops_test.dir/lora_ops_test.cc.o"
  "CMakeFiles/lora_ops_test.dir/lora_ops_test.cc.o.d"
  "lora_ops_test"
  "lora_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lora_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lora_ops_test.cc" "tests/CMakeFiles/lora_ops_test.dir/lora_ops_test.cc.o" "gcc" "tests/CMakeFiles/lora_ops_test.dir/lora_ops_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vlora_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/vlora_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/vlora_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/vlora_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vlora_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/accuracy/CMakeFiles/vlora_accuracy.dir/DependInfo.cmake"
  "/root/repo/build/src/lora/CMakeFiles/vlora_lora.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/vlora_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vlora_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vlora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

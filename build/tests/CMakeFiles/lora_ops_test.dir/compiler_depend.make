# Empty compiler generated dependencies file for lora_ops_test.
# This may be replaced when dependencies are built.

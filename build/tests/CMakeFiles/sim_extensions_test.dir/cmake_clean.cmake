file(REMOVE_RECURSE
  "CMakeFiles/sim_extensions_test.dir/sim_extensions_test.cc.o"
  "CMakeFiles/sim_extensions_test.dir/sim_extensions_test.cc.o.d"
  "sim_extensions_test"
  "sim_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/real_generation_test.dir/real_generation_test.cc.o"
  "CMakeFiles/real_generation_test.dir/real_generation_test.cc.o.d"
  "real_generation_test"
  "real_generation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_generation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

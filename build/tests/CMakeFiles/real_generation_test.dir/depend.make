# Empty dependencies file for real_generation_test.
# This may be replaced when dependencies are built.

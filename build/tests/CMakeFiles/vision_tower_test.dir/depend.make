# Empty dependencies file for vision_tower_test.
# This may be replaced when dependencies are built.

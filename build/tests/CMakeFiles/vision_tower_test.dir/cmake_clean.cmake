file(REMOVE_RECURSE
  "CMakeFiles/vision_tower_test.dir/vision_tower_test.cc.o"
  "CMakeFiles/vision_tower_test.dir/vision_tower_test.cc.o.d"
  "vision_tower_test"
  "vision_tower_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_tower_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

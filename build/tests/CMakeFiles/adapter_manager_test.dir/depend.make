# Empty dependencies file for adapter_manager_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/adapter_manager_test.dir/adapter_manager_test.cc.o"
  "CMakeFiles/adapter_manager_test.dir/adapter_manager_test.cc.o.d"
  "adapter_manager_test"
  "adapter_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapter_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/head_trainer_test.dir/head_trainer_test.cc.o"
  "CMakeFiles/head_trainer_test.dir/head_trainer_test.cc.o.d"
  "head_trainer_test"
  "head_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for head_trainer_test.
# This may be replaced when dependencies are built.

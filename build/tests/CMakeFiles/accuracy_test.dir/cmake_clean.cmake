file(REMOVE_RECURSE
  "CMakeFiles/accuracy_test.dir/accuracy_test.cc.o"
  "CMakeFiles/accuracy_test.dir/accuracy_test.cc.o.d"
  "accuracy_test"
  "accuracy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for atmm_test.
# This may be replaced when dependencies are built.

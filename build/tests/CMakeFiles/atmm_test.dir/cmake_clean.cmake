file(REMOVE_RECURSE
  "CMakeFiles/atmm_test.dir/atmm_test.cc.o"
  "CMakeFiles/atmm_test.dir/atmm_test.cc.o.d"
  "atmm_test"
  "atmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lora_trainer_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lora_trainer_test.dir/lora_trainer_test.cc.o"
  "CMakeFiles/lora_trainer_test.dir/lora_trainer_test.cc.o.d"
  "lora_trainer_test"
  "lora_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lora_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libvlora_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vlora_workload.dir/request.cc.o"
  "CMakeFiles/vlora_workload.dir/request.cc.o.d"
  "CMakeFiles/vlora_workload.dir/trace_gen.cc.o"
  "CMakeFiles/vlora_workload.dir/trace_gen.cc.o.d"
  "libvlora_workload.a"
  "libvlora_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlora_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for vlora_workload.
# This may be replaced when dependencies are built.

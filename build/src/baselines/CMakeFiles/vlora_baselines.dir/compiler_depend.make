# Empty compiler generated dependencies file for vlora_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvlora_baselines.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vlora_baselines.dir/policies.cc.o"
  "CMakeFiles/vlora_baselines.dir/policies.cc.o.d"
  "libvlora_baselines.a"
  "libvlora_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlora_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

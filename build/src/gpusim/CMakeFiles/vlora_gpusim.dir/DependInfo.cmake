
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/cost_model.cc" "src/gpusim/CMakeFiles/vlora_gpusim.dir/cost_model.cc.o" "gcc" "src/gpusim/CMakeFiles/vlora_gpusim.dir/cost_model.cc.o.d"
  "/root/repo/src/gpusim/simulator.cc" "src/gpusim/CMakeFiles/vlora_gpusim.dir/simulator.cc.o" "gcc" "src/gpusim/CMakeFiles/vlora_gpusim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/vlora_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/lora/CMakeFiles/vlora_lora.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vlora_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/vlora_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vlora_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libvlora_gpusim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vlora_gpusim.dir/cost_model.cc.o"
  "CMakeFiles/vlora_gpusim.dir/cost_model.cc.o.d"
  "CMakeFiles/vlora_gpusim.dir/simulator.cc.o"
  "CMakeFiles/vlora_gpusim.dir/simulator.cc.o.d"
  "libvlora_gpusim.a"
  "libvlora_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlora_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

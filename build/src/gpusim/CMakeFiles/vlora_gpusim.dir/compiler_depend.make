# Empty compiler generated dependencies file for vlora_gpusim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vlora_core.dir/generator.cc.o"
  "CMakeFiles/vlora_core.dir/generator.cc.o.d"
  "CMakeFiles/vlora_core.dir/head_trainer.cc.o"
  "CMakeFiles/vlora_core.dir/head_trainer.cc.o.d"
  "CMakeFiles/vlora_core.dir/lora_trainer.cc.o"
  "CMakeFiles/vlora_core.dir/lora_trainer.cc.o.d"
  "CMakeFiles/vlora_core.dir/scheduler.cc.o"
  "CMakeFiles/vlora_core.dir/scheduler.cc.o.d"
  "CMakeFiles/vlora_core.dir/server.cc.o"
  "CMakeFiles/vlora_core.dir/server.cc.o.d"
  "libvlora_core.a"
  "libvlora_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlora_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

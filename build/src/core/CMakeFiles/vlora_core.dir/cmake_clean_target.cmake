file(REMOVE_RECURSE
  "libvlora_core.a"
)

# Empty dependencies file for vlora_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvlora_kernels.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/atmm.cc" "src/kernels/CMakeFiles/vlora_kernels.dir/atmm.cc.o" "gcc" "src/kernels/CMakeFiles/vlora_kernels.dir/atmm.cc.o.d"
  "/root/repo/src/kernels/gemm.cc" "src/kernels/CMakeFiles/vlora_kernels.dir/gemm.cc.o" "gcc" "src/kernels/CMakeFiles/vlora_kernels.dir/gemm.cc.o.d"
  "/root/repo/src/kernels/lora_ops.cc" "src/kernels/CMakeFiles/vlora_kernels.dir/lora_ops.cc.o" "gcc" "src/kernels/CMakeFiles/vlora_kernels.dir/lora_ops.cc.o.d"
  "/root/repo/src/kernels/request_mapping.cc" "src/kernels/CMakeFiles/vlora_kernels.dir/request_mapping.cc.o" "gcc" "src/kernels/CMakeFiles/vlora_kernels.dir/request_mapping.cc.o.d"
  "/root/repo/src/kernels/segmented_gemm.cc" "src/kernels/CMakeFiles/vlora_kernels.dir/segmented_gemm.cc.o" "gcc" "src/kernels/CMakeFiles/vlora_kernels.dir/segmented_gemm.cc.o.d"
  "/root/repo/src/kernels/tiling_search.cc" "src/kernels/CMakeFiles/vlora_kernels.dir/tiling_search.cc.o" "gcc" "src/kernels/CMakeFiles/vlora_kernels.dir/tiling_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/vlora_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vlora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

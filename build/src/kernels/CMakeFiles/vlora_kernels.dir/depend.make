# Empty dependencies file for vlora_kernels.
# This may be replaced when dependencies are built.

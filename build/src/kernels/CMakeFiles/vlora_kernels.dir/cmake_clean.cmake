file(REMOVE_RECURSE
  "CMakeFiles/vlora_kernels.dir/atmm.cc.o"
  "CMakeFiles/vlora_kernels.dir/atmm.cc.o.d"
  "CMakeFiles/vlora_kernels.dir/gemm.cc.o"
  "CMakeFiles/vlora_kernels.dir/gemm.cc.o.d"
  "CMakeFiles/vlora_kernels.dir/lora_ops.cc.o"
  "CMakeFiles/vlora_kernels.dir/lora_ops.cc.o.d"
  "CMakeFiles/vlora_kernels.dir/request_mapping.cc.o"
  "CMakeFiles/vlora_kernels.dir/request_mapping.cc.o.d"
  "CMakeFiles/vlora_kernels.dir/segmented_gemm.cc.o"
  "CMakeFiles/vlora_kernels.dir/segmented_gemm.cc.o.d"
  "CMakeFiles/vlora_kernels.dir/tiling_search.cc.o"
  "CMakeFiles/vlora_kernels.dir/tiling_search.cc.o.d"
  "libvlora_kernels.a"
  "libvlora_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlora_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

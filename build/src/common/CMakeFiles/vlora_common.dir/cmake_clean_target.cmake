file(REMOVE_RECURSE
  "libvlora_common.a"
)

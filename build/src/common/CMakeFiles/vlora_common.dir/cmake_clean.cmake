file(REMOVE_RECURSE
  "CMakeFiles/vlora_common.dir/logging.cc.o"
  "CMakeFiles/vlora_common.dir/logging.cc.o.d"
  "CMakeFiles/vlora_common.dir/rng.cc.o"
  "CMakeFiles/vlora_common.dir/rng.cc.o.d"
  "CMakeFiles/vlora_common.dir/stats.cc.o"
  "CMakeFiles/vlora_common.dir/stats.cc.o.d"
  "CMakeFiles/vlora_common.dir/table.cc.o"
  "CMakeFiles/vlora_common.dir/table.cc.o.d"
  "CMakeFiles/vlora_common.dir/thread_pool.cc.o"
  "CMakeFiles/vlora_common.dir/thread_pool.cc.o.d"
  "libvlora_common.a"
  "libvlora_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlora_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

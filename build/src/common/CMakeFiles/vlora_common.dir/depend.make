# Empty dependencies file for vlora_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvlora_tensor.a"
)

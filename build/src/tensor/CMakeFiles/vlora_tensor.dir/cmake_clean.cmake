file(REMOVE_RECURSE
  "CMakeFiles/vlora_tensor.dir/slab.cc.o"
  "CMakeFiles/vlora_tensor.dir/slab.cc.o.d"
  "CMakeFiles/vlora_tensor.dir/tensor.cc.o"
  "CMakeFiles/vlora_tensor.dir/tensor.cc.o.d"
  "libvlora_tensor.a"
  "libvlora_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlora_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

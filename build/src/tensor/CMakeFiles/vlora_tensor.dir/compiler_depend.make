# Empty compiler generated dependencies file for vlora_tensor.
# This may be replaced when dependencies are built.

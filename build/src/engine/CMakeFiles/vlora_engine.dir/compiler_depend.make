# Empty compiler generated dependencies file for vlora_engine.
# This may be replaced when dependencies are built.

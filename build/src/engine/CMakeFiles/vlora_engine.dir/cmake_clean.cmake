file(REMOVE_RECURSE
  "CMakeFiles/vlora_engine.dir/engine.cc.o"
  "CMakeFiles/vlora_engine.dir/engine.cc.o.d"
  "CMakeFiles/vlora_engine.dir/kv_cache.cc.o"
  "CMakeFiles/vlora_engine.dir/kv_cache.cc.o.d"
  "CMakeFiles/vlora_engine.dir/model.cc.o"
  "CMakeFiles/vlora_engine.dir/model.cc.o.d"
  "CMakeFiles/vlora_engine.dir/tokenizer.cc.o"
  "CMakeFiles/vlora_engine.dir/tokenizer.cc.o.d"
  "CMakeFiles/vlora_engine.dir/vision.cc.o"
  "CMakeFiles/vlora_engine.dir/vision.cc.o.d"
  "CMakeFiles/vlora_engine.dir/vision_tower.cc.o"
  "CMakeFiles/vlora_engine.dir/vision_tower.cc.o.d"
  "libvlora_engine.a"
  "libvlora_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlora_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/engine.cc" "src/engine/CMakeFiles/vlora_engine.dir/engine.cc.o" "gcc" "src/engine/CMakeFiles/vlora_engine.dir/engine.cc.o.d"
  "/root/repo/src/engine/kv_cache.cc" "src/engine/CMakeFiles/vlora_engine.dir/kv_cache.cc.o" "gcc" "src/engine/CMakeFiles/vlora_engine.dir/kv_cache.cc.o.d"
  "/root/repo/src/engine/model.cc" "src/engine/CMakeFiles/vlora_engine.dir/model.cc.o" "gcc" "src/engine/CMakeFiles/vlora_engine.dir/model.cc.o.d"
  "/root/repo/src/engine/tokenizer.cc" "src/engine/CMakeFiles/vlora_engine.dir/tokenizer.cc.o" "gcc" "src/engine/CMakeFiles/vlora_engine.dir/tokenizer.cc.o.d"
  "/root/repo/src/engine/vision.cc" "src/engine/CMakeFiles/vlora_engine.dir/vision.cc.o" "gcc" "src/engine/CMakeFiles/vlora_engine.dir/vision.cc.o.d"
  "/root/repo/src/engine/vision_tower.cc" "src/engine/CMakeFiles/vlora_engine.dir/vision_tower.cc.o" "gcc" "src/engine/CMakeFiles/vlora_engine.dir/vision_tower.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lora/CMakeFiles/vlora_lora.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/vlora_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vlora_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vlora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

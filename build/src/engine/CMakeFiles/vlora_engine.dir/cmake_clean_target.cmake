file(REMOVE_RECURSE
  "libvlora_engine.a"
)

# Empty compiler generated dependencies file for vlora_lora.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvlora_lora.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vlora_lora.dir/adapter.cc.o"
  "CMakeFiles/vlora_lora.dir/adapter.cc.o.d"
  "CMakeFiles/vlora_lora.dir/adapter_manager.cc.o"
  "CMakeFiles/vlora_lora.dir/adapter_manager.cc.o.d"
  "CMakeFiles/vlora_lora.dir/merge.cc.o"
  "CMakeFiles/vlora_lora.dir/merge.cc.o.d"
  "CMakeFiles/vlora_lora.dir/serialization.cc.o"
  "CMakeFiles/vlora_lora.dir/serialization.cc.o.d"
  "libvlora_lora.a"
  "libvlora_lora.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlora_lora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lora/adapter.cc" "src/lora/CMakeFiles/vlora_lora.dir/adapter.cc.o" "gcc" "src/lora/CMakeFiles/vlora_lora.dir/adapter.cc.o.d"
  "/root/repo/src/lora/adapter_manager.cc" "src/lora/CMakeFiles/vlora_lora.dir/adapter_manager.cc.o" "gcc" "src/lora/CMakeFiles/vlora_lora.dir/adapter_manager.cc.o.d"
  "/root/repo/src/lora/merge.cc" "src/lora/CMakeFiles/vlora_lora.dir/merge.cc.o" "gcc" "src/lora/CMakeFiles/vlora_lora.dir/merge.cc.o.d"
  "/root/repo/src/lora/serialization.cc" "src/lora/CMakeFiles/vlora_lora.dir/serialization.cc.o" "gcc" "src/lora/CMakeFiles/vlora_lora.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/vlora_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vlora_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vlora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

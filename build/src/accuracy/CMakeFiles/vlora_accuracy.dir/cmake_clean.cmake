file(REMOVE_RECURSE
  "CMakeFiles/vlora_accuracy.dir/accuracy_model.cc.o"
  "CMakeFiles/vlora_accuracy.dir/accuracy_model.cc.o.d"
  "CMakeFiles/vlora_accuracy.dir/task_catalog.cc.o"
  "CMakeFiles/vlora_accuracy.dir/task_catalog.cc.o.d"
  "libvlora_accuracy.a"
  "libvlora_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlora_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

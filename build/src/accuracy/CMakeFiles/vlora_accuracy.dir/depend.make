# Empty dependencies file for vlora_accuracy.
# This may be replaced when dependencies are built.

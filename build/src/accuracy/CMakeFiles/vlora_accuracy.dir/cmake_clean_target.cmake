file(REMOVE_RECURSE
  "libvlora_accuracy.a"
)

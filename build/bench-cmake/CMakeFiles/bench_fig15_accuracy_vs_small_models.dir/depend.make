# Empty dependencies file for bench_fig15_accuracy_vs_small_models.
# This may be replaced when dependencies are built.

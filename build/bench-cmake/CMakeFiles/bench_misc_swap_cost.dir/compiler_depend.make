# Empty compiler generated dependencies file for bench_misc_swap_cost.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_misc_swap_cost"
  "../bench/bench_misc_swap_cost.pdb"
  "CMakeFiles/bench_misc_swap_cost.dir/bench_misc_swap_cost.cc.o"
  "CMakeFiles/bench_misc_swap_cost.dir/bench_misc_swap_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misc_swap_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_misc_kv_reuse.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_misc_kv_reuse"
  "../bench/bench_misc_kv_reuse.pdb"
  "CMakeFiles/bench_misc_kv_reuse.dir/bench_misc_kv_reuse.cc.o"
  "CMakeFiles/bench_misc_kv_reuse.dir/bench_misc_kv_reuse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misc_kv_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

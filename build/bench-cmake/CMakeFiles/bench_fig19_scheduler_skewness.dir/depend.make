# Empty dependencies file for bench_fig19_scheduler_skewness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig19_scheduler_skewness"
  "../bench/bench_fig19_scheduler_skewness.pdb"
  "CMakeFiles/bench_fig19_scheduler_skewness.dir/bench_fig19_scheduler_skewness.cc.o"
  "CMakeFiles/bench_fig19_scheduler_skewness.dir/bench_fig19_scheduler_skewness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_scheduler_skewness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

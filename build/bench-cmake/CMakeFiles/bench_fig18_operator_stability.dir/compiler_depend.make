# Empty compiler generated dependencies file for bench_fig18_operator_stability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ablation_parallel_tiles"
  "../bench/bench_ablation_parallel_tiles.pdb"
  "CMakeFiles/bench_ablation_parallel_tiles.dir/bench_ablation_parallel_tiles.cc.o"
  "CMakeFiles/bench_ablation_parallel_tiles.dir/bench_ablation_parallel_tiles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parallel_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

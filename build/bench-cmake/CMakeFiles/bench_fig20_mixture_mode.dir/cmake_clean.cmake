file(REMOVE_RECURSE
  "../bench/bench_fig20_mixture_mode"
  "../bench/bench_fig20_mixture_mode.pdb"
  "CMakeFiles/bench_fig20_mixture_mode.dir/bench_fig20_mixture_mode.cc.o"
  "CMakeFiles/bench_fig20_mixture_mode.dir/bench_fig20_mixture_mode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_mixture_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig20_mixture_mode.
# This may be replaced when dependencies are built.

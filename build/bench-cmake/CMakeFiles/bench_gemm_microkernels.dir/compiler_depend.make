# Empty compiler generated dependencies file for bench_gemm_microkernels.
# This may be replaced when dependencies are built.

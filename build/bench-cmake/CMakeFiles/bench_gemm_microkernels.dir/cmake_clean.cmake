file(REMOVE_RECURSE
  "../bench/bench_gemm_microkernels"
  "../bench/bench_gemm_microkernels.pdb"
  "CMakeFiles/bench_gemm_microkernels.dir/bench_gemm_microkernels.cc.o"
  "CMakeFiles/bench_gemm_microkernels.dir/bench_gemm_microkernels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gemm_microkernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

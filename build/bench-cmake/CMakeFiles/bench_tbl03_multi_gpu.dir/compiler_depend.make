# Empty compiler generated dependencies file for bench_tbl03_multi_gpu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_tbl03_multi_gpu"
  "../bench/bench_tbl03_multi_gpu.pdb"
  "CMakeFiles/bench_tbl03_multi_gpu.dir/bench_tbl03_multi_gpu.cc.o"
  "CMakeFiles/bench_tbl03_multi_gpu.dir/bench_tbl03_multi_gpu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl03_multi_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

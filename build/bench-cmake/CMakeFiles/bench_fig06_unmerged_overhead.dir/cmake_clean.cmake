file(REMOVE_RECURSE
  "../bench/bench_fig06_unmerged_overhead"
  "../bench/bench_fig06_unmerged_overhead.pdb"
  "CMakeFiles/bench_fig06_unmerged_overhead.dir/bench_fig06_unmerged_overhead.cc.o"
  "CMakeFiles/bench_fig06_unmerged_overhead.dir/bench_fig06_unmerged_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_unmerged_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig14_e2e_serving.
# This may be replaced when dependencies are built.

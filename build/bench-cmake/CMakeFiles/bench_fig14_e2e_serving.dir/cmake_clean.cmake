file(REMOVE_RECURSE
  "../bench/bench_fig14_e2e_serving"
  "../bench/bench_fig14_e2e_serving.pdb"
  "CMakeFiles/bench_fig14_e2e_serving.dir/bench_fig14_e2e_serving.cc.o"
  "CMakeFiles/bench_fig14_e2e_serving.dir/bench_fig14_e2e_serving.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_e2e_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

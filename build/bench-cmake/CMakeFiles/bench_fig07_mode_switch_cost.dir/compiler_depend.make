# Empty compiler generated dependencies file for bench_fig07_mode_switch_cost.
# This may be replaced when dependencies are built.

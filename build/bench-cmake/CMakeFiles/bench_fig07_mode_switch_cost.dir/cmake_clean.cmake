file(REMOVE_RECURSE
  "../bench/bench_fig07_mode_switch_cost"
  "../bench/bench_fig07_mode_switch_cost.pdb"
  "CMakeFiles/bench_fig07_mode_switch_cost.dir/bench_fig07_mode_switch_cost.cc.o"
  "CMakeFiles/bench_fig07_mode_switch_cost.dir/bench_fig07_mode_switch_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_mode_switch_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig17_operator_latency"
  "../bench/bench_fig17_operator_latency.pdb"
  "CMakeFiles/bench_fig17_operator_latency.dir/bench_fig17_operator_latency.cc.o"
  "CMakeFiles/bench_fig17_operator_latency.dir/bench_fig17_operator_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_operator_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

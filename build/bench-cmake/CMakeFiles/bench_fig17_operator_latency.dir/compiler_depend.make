# Empty compiler generated dependencies file for bench_fig17_operator_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_tbl01_tiling_configs"
  "../bench/bench_tbl01_tiling_configs.pdb"
  "CMakeFiles/bench_tbl01_tiling_configs.dir/bench_tbl01_tiling_configs.cc.o"
  "CMakeFiles/bench_tbl01_tiling_configs.dir/bench_tbl01_tiling_configs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl01_tiling_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

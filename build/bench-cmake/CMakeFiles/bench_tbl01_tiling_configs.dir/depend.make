# Empty dependencies file for bench_tbl01_tiling_configs.
# This may be replaced when dependencies are built.

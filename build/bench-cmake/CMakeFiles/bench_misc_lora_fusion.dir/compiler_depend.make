# Empty compiler generated dependencies file for bench_misc_lora_fusion.
# This may be replaced when dependencies are built.

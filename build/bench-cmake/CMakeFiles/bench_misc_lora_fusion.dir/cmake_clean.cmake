file(REMOVE_RECURSE
  "../bench/bench_misc_lora_fusion"
  "../bench/bench_misc_lora_fusion.pdb"
  "CMakeFiles/bench_misc_lora_fusion.dir/bench_misc_lora_fusion.cc.o"
  "CMakeFiles/bench_misc_lora_fusion.dir/bench_misc_lora_fusion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misc_lora_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig21_swift_switch"
  "../bench/bench_fig21_swift_switch.pdb"
  "CMakeFiles/bench_fig21_swift_switch.dir/bench_fig21_swift_switch.cc.o"
  "CMakeFiles/bench_fig21_swift_switch.dir/bench_fig21_swift_switch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_swift_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig21_swift_switch.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig04_lora_accuracy_gain.
# This may be replaced when dependencies are built.

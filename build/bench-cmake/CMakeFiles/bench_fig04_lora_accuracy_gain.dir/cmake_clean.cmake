file(REMOVE_RECURSE
  "../bench/bench_fig04_lora_accuracy_gain"
  "../bench/bench_fig04_lora_accuracy_gain.pdb"
  "CMakeFiles/bench_fig04_lora_accuracy_gain.dir/bench_fig04_lora_accuracy_gain.cc.o"
  "CMakeFiles/bench_fig04_lora_accuracy_gain.dir/bench_fig04_lora_accuracy_gain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_lora_accuracy_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_misc_generator_packing.
# This may be replaced when dependencies are built.

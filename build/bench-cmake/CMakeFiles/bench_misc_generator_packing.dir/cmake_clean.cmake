file(REMOVE_RECURSE
  "../bench/bench_misc_generator_packing"
  "../bench/bench_misc_generator_packing.pdb"
  "CMakeFiles/bench_misc_generator_packing.dir/bench_misc_generator_packing.cc.o"
  "CMakeFiles/bench_misc_generator_packing.dir/bench_misc_generator_packing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misc_generator_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig05_fusion_degradation"
  "../bench/bench_fig05_fusion_degradation.pdb"
  "CMakeFiles/bench_fig05_fusion_degradation.dir/bench_fig05_fusion_degradation.cc.o"
  "CMakeFiles/bench_fig05_fusion_degradation.dir/bench_fig05_fusion_degradation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_fusion_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig05_fusion_degradation.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig23_adapter_count.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig22_skewness_systems.
# This may be replaced when dependencies are built.

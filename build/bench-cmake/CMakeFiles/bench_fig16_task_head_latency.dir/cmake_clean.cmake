file(REMOVE_RECURSE
  "../bench/bench_fig16_task_head_latency"
  "../bench/bench_fig16_task_head_latency.pdb"
  "CMakeFiles/bench_fig16_task_head_latency.dir/bench_fig16_task_head_latency.cc.o"
  "CMakeFiles/bench_fig16_task_head_latency.dir/bench_fig16_task_head_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_task_head_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

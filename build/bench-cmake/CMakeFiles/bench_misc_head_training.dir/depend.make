# Empty dependencies file for bench_misc_head_training.
# This may be replaced when dependencies are built.

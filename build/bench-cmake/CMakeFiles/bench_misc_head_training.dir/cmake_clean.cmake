file(REMOVE_RECURSE
  "../bench/bench_misc_head_training"
  "../bench/bench_misc_head_training.pdb"
  "CMakeFiles/bench_misc_head_training.dir/bench_misc_head_training.cc.o"
  "CMakeFiles/bench_misc_head_training.dir/bench_misc_head_training.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misc_head_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

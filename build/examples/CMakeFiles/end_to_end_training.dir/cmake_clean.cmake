file(REMOVE_RECURSE
  "CMakeFiles/end_to_end_training.dir/end_to_end_training.cpp.o"
  "CMakeFiles/end_to_end_training.dir/end_to_end_training.cpp.o.d"
  "end_to_end_training"
  "end_to_end_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

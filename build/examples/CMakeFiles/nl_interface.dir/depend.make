# Empty dependencies file for nl_interface.
# This may be replaced when dependencies are built.

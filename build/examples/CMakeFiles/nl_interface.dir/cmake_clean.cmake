file(REMOVE_RECURSE
  "CMakeFiles/nl_interface.dir/nl_interface.cpp.o"
  "CMakeFiles/nl_interface.dir/nl_interface.cpp.o.d"
  "nl_interface"
  "nl_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

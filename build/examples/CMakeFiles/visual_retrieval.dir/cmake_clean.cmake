file(REMOVE_RECURSE
  "CMakeFiles/visual_retrieval.dir/visual_retrieval.cpp.o"
  "CMakeFiles/visual_retrieval.dir/visual_retrieval.cpp.o.d"
  "visual_retrieval"
  "visual_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visual_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for visual_retrieval.
# This may be replaced when dependencies are built.

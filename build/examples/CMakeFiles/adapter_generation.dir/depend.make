# Empty dependencies file for adapter_generation.
# This may be replaced when dependencies are built.

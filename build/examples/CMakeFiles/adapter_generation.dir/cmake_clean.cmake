file(REMOVE_RECURSE
  "CMakeFiles/adapter_generation.dir/adapter_generation.cpp.o"
  "CMakeFiles/adapter_generation.dir/adapter_generation.cpp.o.d"
  "adapter_generation"
  "adapter_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapter_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

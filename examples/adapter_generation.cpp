// Offline phase walkthrough: accuracy-aware LoRA adapter generation (§4.2).
//
// Takes a catalogue of external knowledge (domain-specific small models /
// datasets with application-specified accuracy floors), runs the greedy
// knowledge-fusion heuristic against the accuracy oracle, materialises the
// resulting adapters (low-rank factors + vision task heads) and registers
// them with a server — the dotted-arrow path of Fig 8.
//
//   ./build/examples/adapter_generation

#include <cstdio>

#include "src/core/server.h"

using namespace vlora;

int main() {
  AccuracyOracle oracle(7, /*noise_pp=*/0.3);

  // The knowledge catalogue: what today's vision applications already deploy.
  std::vector<KnowledgeItem> items;
  auto add = [&](const char* domain, VisionTask task, double required, int options) {
    items.push_back(KnowledgeItem{domain, task, required, options});
  };
  // Six single-class detectors (the Fig 10 example).
  add("license-plate-detect", VisionTask::kObjectDetection, 64.0, 8);
  add("traffic-sign-detect", VisionTask::kObjectDetection, 66.0, 8);
  add("vehicle-detect", VisionTask::kObjectDetection, 55.0, 8);
  add("vegetation-detect", VisionTask::kObjectDetection, 55.0, 8);
  add("bicycle-detect", VisionTask::kObjectDetection, 55.0, 8);
  add("person-detect", VisionTask::kObjectDetection, 55.0, 8);
  // Aerial-scene classifiers (AID-style) — image classification fuses well.
  for (int i = 0; i < 4; ++i) {
    add("aerial-scene", VisionTask::kImageClassification, 88.0, 30);
  }
  // Action recognisers (UCF101-style) — video classification fuses poorly.
  for (int i = 0; i < 3; ++i) {
    add("action-recognition", VisionTask::kVideoClassification, 84.0, 101);
  }
  // Open-set VQA domains: no task head possible, LM head retained.
  add("traffic-vqa", VisionTask::kVisualQuestionAnswering, 78.0, 0);
  add("retail-vqa", VisionTask::kVisualQuestionAnswering, 78.0, 0);

  std::printf("Knowledge catalogue: %zu items\n", items.size());
  const GeneratorResult result =
      GenerateAdapters(items, oracle, GeneratorOptions{.shuffle = false});
  std::printf("Generated %zu adapters (%d rollbacks, %.1f domains/adapter on average; "
              "paper: ~4)\n\n",
              result.adapters.size(), result.rollbacks, result.AvgDomainsPerAdapter());

  int index = 0;
  for (const GeneratedAdapterSpec& spec : result.adapters) {
    std::printf("adapter-%d:%s\n", index++, spec.has_task_head ? " [vision task head]" : "");
    for (size_t i = 0; i < spec.item_indices.size(); ++i) {
      const KnowledgeItem& item = items[static_cast<size_t>(spec.item_indices[i])];
      std::printf("    %-24s %-24s accuracy %.1f%% (required %.1f%%)\n", item.domain.c_str(),
                  VisionTaskName(item.task), spec.item_accuracies[i], item.required_accuracy);
    }
  }

  // Materialise and register with a server — ready for the online phase.
  const ModelConfig config = TinyConfig();
  Rng rng(17);
  VloraServer server(config, ServerOptions{});
  for (auto& adapter : MaterializeAdapters(items, result, config, /*rank=*/8, rng)) {
    const int id = server.AddAdapter(std::move(adapter));
    std::printf("registered adapter %d: %zu fused domains, head=%s\n", id,
                server.adapter(id).fused_domains().size(),
                server.adapter(id).task_head().has_value() ? "yes" : "no");
  }
  return 0;
}

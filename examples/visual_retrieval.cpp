// Visual retrieval example: multi-round VQA over the same image with KV
// prefix reuse, plus a skewed multi-adapter retrieval workload showing
// Algorithm 1's mode choices on the real engine.
//
//   ./build/examples/visual_retrieval

#include <cstdio>

#include "src/core/server.h"
#include "src/engine/vision.h"

using namespace vlora;

namespace {

void MultiRoundVqa() {
  std::printf("=== Multi-round VQA over one image (KV prefix reuse) ===\n");
  ModelConfig config = SmallConfig();
  config.visual_tokens_per_image = 64;
  InferenceEngine engine(config, EngineOptions{.kv_block_size = 16, .kv_num_blocks = 1024});
  engine.SetMode(InferMode::kUnmerged);
  VisionEncoder vision(config);

  int64_t reused_total = 0;
  for (int round = 0; round < 4; ++round) {
    EngineRequest request;
    request.id = round;
    // Same image every round, different question.
    request.prompt_tokens =
        vision.BuildPrompt(/*image_id=*/9, {static_cast<int32_t>(10 + round), 5, 6});
    request.max_new_tokens = 5;
    request.eos_token = -1;
    engine.Submit(request);
    // Sequential dialog: step until this round finishes, keeping earlier
    // rounds' registered prompt blocks alive in the prefix index.
    bool done = false;
    while (!done) {
      for (const EngineResult& result : engine.Step()) {
        if (result.request_id == round) {
          std::printf("  round %d: %ld prompt tokens prefilled, %ld reused from cache\n",
                      round, result.prefill_tokens, result.reused_tokens);
          reused_total += result.reused_tokens;
          done = true;
        }
      }
    }
  }
  std::printf("Prefix cache hits: %ld; total reused prompt tokens: %ld\n\n",
              engine.kv().prefix_hits(), reused_total);
}

void SkewedRetrieval() {
  std::printf("=== Skewed retrieval workload through the orchestrator ===\n");
  const ModelConfig config = TinyConfig();
  ServerOptions options;
  options.max_batch_size = 4;
  VloraServer server(config, options);
  Rng rng(13);
  for (int i = 0; i < 3; ++i) {
    server.AddAdapter(std::make_unique<LoraAdapter>(LoraAdapter::Random(
        "retrieval-" + std::to_string(i), config.num_layers, config.d_model, 8, rng)));
  }
  VisionEncoder vision(config);

  // 8 requests, 6 of which hit adapter 0 (the "60% merge-friendly" pattern).
  int64_t next_id = 0;
  for (int i = 0; i < 8; ++i) {
    EngineRequest request;
    request.id = next_id++;
    request.prompt_tokens = vision.BuildPrompt(100 + i, {7, 8, static_cast<int32_t>(9 + i)});
    request.adapter_id = i < 6 ? 0 : (i - 5);
    request.max_new_tokens = 4;
    request.eos_token = -1;
    server.Submit(request);
  }
  const std::vector<EngineResult> results = server.RunAll();
  std::printf("Served %zu requests.\n", results.size());
  const ServerStats& stats = server.stats();
  std::printf("Iterations: %ld (merged %ld / unmerged %ld / mixture %ld), mode switches %ld\n",
              stats.iterations, stats.merged_iterations, stats.unmerged_iterations,
              stats.mixture_iterations, stats.mode_switches);
  std::printf("The dominant adapter rides the zero-overhead merged path; foreign requests "
              "join through deLoRA mixture batches.\n");
}

}  // namespace

int main() {
  MultiRoundVqa();
  SkewedRetrieval();
  return 0;
}

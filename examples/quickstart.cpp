// Quickstart: the smallest end-to-end V-LoRA program.
//
// Builds a tiny LMM, attaches one LoRA adapter (with a vision task head),
// and answers the same visual request in all three inference modes —
// demonstrating that merged, unmerged and mixture (deLoRA) execution produce
// identical results, and that the task head resolves a closed-set answer in a
// single inference round.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "src/common/logging.h"
#include "src/engine/engine.h"
#include "src/engine/vision.h"

using namespace vlora;

int main() {
  SetLogLevel(LogLevel::kInfo);
  const ModelConfig config = TinyConfig();
  std::printf("Model: %s (%d layers, d=%ld, vocab=%ld)\n", config.name.c_str(),
              config.num_layers, config.d_model, config.vocab_size);

  // --- Offline phase: one domain-specific adapter with an action-recognition
  // task head (10 candidate actions).
  Rng rng(7);
  LoraAdapter adapter =
      LoraAdapter::Random("action-recognition", config.num_layers, config.d_model, 8, rng);
  VisionTaskHead head;
  head.task = VisionTask::kVideoClassification;
  head.weight = Tensor::Random(Shape(config.d_model, 10), rng, 0.3f);
  adapter.SetTaskHead(std::move(head));
  std::printf("Adapter '%s': rank %ld, %ld params (%.2f MB at fp16)\n", adapter.name().c_str(),
              adapter.rank(), adapter.NumParams(),
              static_cast<double>(adapter.SizeBytesFp16()) / (1 << 20));

  // --- Online phase: a visual request = image tokens + question tokens.
  InferenceEngine engine(config, EngineOptions{});
  const int adapter_id = engine.RegisterAdapter(&adapter);
  VisionEncoder vision(config);
  EngineRequest request;
  request.prompt_tokens = vision.BuildPrompt(/*image_id=*/42, /*text_tokens=*/{5, 9, 23, 17});
  request.adapter_id = adapter_id;
  request.max_new_tokens = 6;
  request.eos_token = -1;

  // Same request through each inference mode.
  std::vector<int32_t> reference;
  for (InferMode mode : {InferMode::kUnmerged, InferMode::kMerged, InferMode::kMixture}) {
    engine.SetMode(mode, mode == InferMode::kUnmerged ? -1 : adapter_id);
    EngineRequest r = request;
    r.id = static_cast<int64_t>(mode);
    const EngineResult result = engine.RunToCompletion(r);
    std::printf("mode=%-8s -> tokens:", InferModeName(mode));
    for (int32_t token : result.output_tokens) {
      std::printf(" %d", token);
    }
    std::printf("\n");
    if (reference.empty()) {
      reference = result.output_tokens;
    } else if (reference != result.output_tokens) {
      std::printf("ERROR: modes disagree!\n");
      return 1;
    }
  }
  std::printf("All three inference modes produced identical outputs.\n");

  // The vision task head: one inference round instead of autoregression.
  EngineRequest head_request = request;
  head_request.id = 100;
  head_request.use_task_head = true;
  engine.SetMode(InferMode::kUnmerged);
  const EngineResult head_result = engine.RunToCompletion(head_request);
  std::printf("Task head answered option #%d in %ld decode rounds (LM head used %zu rounds).\n",
              head_result.head_option, head_result.decode_steps, reference.size());
  return 0;
}

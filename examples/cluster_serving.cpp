// Cluster serving: multi-replica V-LoRA with adapter-affinity routing.
//
// Builds a 3-replica cluster over the tiny engine, registers a skewed adapter
// catalogue, computes an InfiniLoRA-style placement (replicated hot set,
// partitioned cold tail), replays a bursty skewed trace through the
// adapter-affinity router with blocking backpressure, and prints per-replica
// and aggregate serving statistics — the same SLO metrics the single-replica
// server reports.
//
//   ./build/examples/cluster_serving

#include <cstdio>

#include "src/cluster/cluster_server.h"
#include "src/common/logging.h"
#include "src/workload/trace_gen.h"

using namespace vlora;

int main() {
  SetLogLevel(LogLevel::kInfo);
  const ModelConfig config = TinyConfig();

  // --- Offline: a catalogue of 6 adapters with Zipf-skewed popularity.
  TraceOptions trace_options;
  trace_options.app = AppKind::kVisualRetrieval;
  trace_options.duration_s = 3.0;
  trace_options.rate_rps = 60.0;
  trace_options.num_adapters = 6;
  trace_options.skewness = 0.6;
  trace_options.seed = 9;
  const std::vector<Request> trace = GenerateTrace(trace_options);
  std::printf("Trace: %zu requests over %.0fs, skewness %.1f\n", trace.size(),
              trace_options.duration_s, trace_options.skewness);

  ClusterOptions options;
  options.num_replicas = 3;
  options.policy = RoutePolicy::kAdapterAffinity;
  options.admission = AdmissionPolicy::kBlock;
  options.replica_queue_capacity = 32;
  options.server.max_batch_size = 4;
  ClusterServer cluster(config, options);

  Rng rng(21);
  for (int i = 0; i < trace_options.num_adapters; ++i) {
    cluster.AddAdapter(LoraAdapter::Random("domain-" + std::to_string(i), config.num_layers,
                                           config.d_model, 4, rng));
  }
  cluster.PlaceAdapters(AdapterShares(trace, trace_options.num_adapters));
  std::printf("Placement (hot adapters marked *):\n%s", cluster.placement().ToString().c_str());

  // --- Online: replay the trace through the router.
  TraceMapOptions map;
  map.token_scale = 32;
  map.max_prompt_tokens = 16;
  map.max_new_tokens = 4;
  int64_t accepted = 0;
  for (const Request& request : trace) {
    accepted += cluster.Submit(EngineRequestFromTrace(request, config, map)) ? 1 : 0;
  }
  const std::vector<EngineResult> results = cluster.Drain();

  const ClusterStats stats = cluster.Stats();
  std::printf("\nAccepted %lld of %zu requests\n", static_cast<long long>(accepted),
              trace.size());
  std::printf("Completed %zu requests in %.0f ms (%.1f rps aggregate)\n", results.size(),
              stats.wall_ms, stats.throughput_rps);
  std::printf("Latency p50/p95/p99: %.1f / %.1f / %.1f ms\n", stats.latency.P50Ms(),
              stats.latency.P95Ms(), stats.latency.P99Ms());
  std::printf("Affinity hits %ld, spills %ld, swap-ins %ld, evictions %ld\n",
              static_cast<long>(stats.affinity_hits), static_cast<long>(stats.affinity_spills),
              static_cast<long>(stats.adapter_swap_ins),
              static_cast<long>(stats.adapter_evictions));
  for (const ReplicaSnapshot& replica : stats.replicas) {
    std::printf(
        "  replica %d: %ld done, peak depth %ld, %ld iterations "
        "(%ld merged / %ld unmerged / %ld mixture), p95 %.1f ms\n",
        replica.index, static_cast<long>(replica.completed),
        static_cast<long>(replica.peak_depth), static_cast<long>(replica.server.iterations),
        static_cast<long>(replica.server.merged_iterations),
        static_cast<long>(replica.server.unmerged_iterations),
        static_cast<long>(replica.server.mixture_iterations), replica.latency.P95Ms());
  }
  return 0;
}

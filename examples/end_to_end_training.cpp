// End-to-end offline -> online pipeline with the REAL vision receptor:
//
//   synthetic camera frames -> ViT encoder + vision-language projector ->
//   task-head training on frozen-LMM features (§4.2.2) -> serving closed-set
//   queries in one inference round through the orchestrated engine.
//
// Unlike the other examples (which use the pseudo-token vision stub), every
// stage here is the functional substrate: pixels are encoded by the mini-ViT,
// the head is fitted with SGD, and the served answers are real
// classifications of held-out noisy frames.
//
//   ./build/examples/end_to_end_training

#include <cstdio>

#include "src/core/head_trainer.h"
#include "src/engine/vision_tower.h"

using namespace vlora;

namespace {

HeadExample MakeExample(VisionTower& tower, const VisionTowerConfig& tower_config, int cls,
                        Rng& noise, int label) {
  Tensor image = SyntheticImage(tower_config, 900 * (cls + 1));
  for (int64_t p = 0; p < image.NumElements(); ++p) {
    image.data()[p] = std::clamp(
        image.data()[p] + static_cast<float>(noise.NextUniform(-0.03, 0.03)), 0.0f, 1.0f);
  }
  Tensor embeddings = tower.Encode(image);
  HeadExample example;
  example.prompt_tokens = tower.SurrogateTokens(embeddings);
  InjectedEmbeddings span;
  span.position = 0;
  span.embeddings = std::move(embeddings);
  example.injected.push_back(std::move(span));
  example.label = label;
  return example;
}

}  // namespace

int main() {
  const ModelConfig config = TinyConfig();
  VisionTowerConfig tower_config;
  tower_config.image_size = 16;
  tower_config.patch_size = 8;
  tower_config.d_vision = 32;
  tower_config.num_heads = 4;
  tower_config.num_blocks = 2;
  tower_config.d_model = config.d_model;
  VisionTower tower(tower_config, 3);
  std::printf("Vision receptor: %dx%d images -> %d patches -> d_vision %ld -> d_model %ld\n",
              tower_config.image_size, tower_config.image_size, tower_config.num_patches(),
              tower_config.d_vision, tower_config.d_model);

  InferenceEngine engine(config, EngineOptions{});
  Rng rng(19);
  LoraAdapter adapter =
      LoraAdapter::Random("scene-classifier", config.num_layers, config.d_model, 8, rng);
  const int adapter_id = engine.RegisterAdapter(&adapter);
  engine.SetMode(InferMode::kUnmerged);

  // --- Offline phase: train the scene-classification head (3 classes).
  const int classes = 3;
  Rng noise(7);
  std::vector<HeadExample> train;
  for (int cls = 0; cls < classes; ++cls) {
    for (int i = 0; i < 6; ++i) {
      train.push_back(MakeExample(tower, tower_config, cls, noise, cls));
    }
  }
  HeadTrainerOptions options;
  options.num_classes = classes;
  options.adapter_id = adapter_id;
  HeadTrainingResult trained =
      TrainTaskHead(engine, train, VisionTask::kImageClassification, options);
  std::printf("Trained task head: train accuracy %.0f%%, final loss %.3f\n",
              100.0 * trained.train_accuracy, trained.final_loss);
  adapter.SetTaskHead(std::move(trained.head));

  // --- Online phase: held-out noisy frames, one inference round each.
  int correct = 0;
  int total = 0;
  for (int cls = 0; cls < classes; ++cls) {
    for (int i = 0; i < 4; ++i) {
      HeadExample example = MakeExample(tower, tower_config, cls, noise, cls);
      EngineRequest request;
      request.id = 1000 + total;
      request.prompt_tokens = example.prompt_tokens;
      request.injected = example.injected;
      request.adapter_id = adapter_id;
      request.use_task_head = true;
      request.eos_token = -1;
      const EngineResult result = engine.RunToCompletion(std::move(request));
      const bool hit = result.head_option == cls;
      correct += hit ? 1 : 0;
      ++total;
      std::printf("  frame class %d -> predicted %d %s (1 round, %ld decode steps)\n", cls,
                  result.head_option, hit ? "OK" : "MISS", result.decode_steps);
    }
  }
  std::printf("Held-out accuracy through the task-head path: %d/%d\n", correct, total);
  return correct * 2 >= total ? 0 : 1;
}

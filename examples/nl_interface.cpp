// Natural-language interface demo (the Fig 1 story).
//
// The LMM's defining feature over small-model pipelines is the natural
// language interface inherited from the LLM (§2: "find the right target when
// only given a text-described query"). This example tokenises real English
// queries, routes each to its LoRA adapter, and decodes the generated
// answers back to text. The tiny model is randomly initialised, so the
// "answers" are gibberish English fragments — the point is the end-to-end
// text -> visual tokens -> LoRA LMM -> text path, with temperature sampling.
//
//   ./build/examples/nl_interface

#include <cstdio>

#include "src/core/server.h"
#include "src/engine/tokenizer.h"
#include "src/engine/vision.h"

using namespace vlora;

int main() {
  const ModelConfig config = SmallConfig();  // vocab 512 fits the tokenizer
  Tokenizer tokenizer;
  std::printf("Tokenizer vocabulary: %ld pieces (model vocab %ld)\n", tokenizer.vocab_size(),
              config.vocab_size);

  ServerOptions options;
  options.max_batch_size = 4;
  VloraServer server(config, options);
  Rng rng(23);
  const int person_adapter = server.AddAdapter(std::make_unique<LoraAdapter>(
      LoraAdapter::Random("person-detect", config.num_layers, config.d_model, 8, rng)));
  const int vqa_adapter = server.AddAdapter(std::make_unique<LoraAdapter>(
      LoraAdapter::Random("traffic-vqa", config.num_layers, config.d_model, 8, rng)));

  VisionEncoder vision(config);
  struct Query {
    const char* text;
    int adapter;
    int64_t image;
  };
  const Query queries[] = {
      {"find a boy wearing a red sweater lost at the corner", person_adapter, 101},
      {"how many cars are in the image", vqa_adapter, 102},
      {"is there a bicycle near the bus", vqa_adapter, 103},
  };

  int64_t next_id = 0;
  for (const Query& query : queries) {
    EngineRequest request;
    request.id = next_id++;
    request.prompt_tokens = vision.BuildPrompt(query.image, tokenizer.Encode(query.text));
    request.adapter_id = query.adapter;
    request.max_new_tokens = 12;
    request.eos_token = Tokenizer::kEosToken;
    request.sampling.temperature = 0.8f;
    request.sampling.top_k = 40;
    request.sampling.seed = 7;
    server.Submit(request);
  }

  std::vector<std::string> answers(std::size(queries));
  for (const EngineResult& result : server.RunAll()) {
    // Clamp generated ids into the tokenizer's range for display (the toy
    // model knows nothing about which ids are words).
    std::vector<int32_t> display;
    for (int32_t token : result.output_tokens) {
      display.push_back(token % static_cast<int32_t>(tokenizer.vocab_size()));
    }
    answers[static_cast<size_t>(result.request_id)] = tokenizer.Decode(display);
  }
  for (size_t i = 0; i < std::size(queries); ++i) {
    std::printf("\nQ [adapter %d]: %s\nA (toy model): %s\n", queries[i].adapter,
                queries[i].text, answers[i].c_str());
  }
  const ServerStats& stats = server.stats();
  std::printf("\nOrchestrator: %ld iterations (%ld merged / %ld unmerged / %ld mixture)\n",
              stats.iterations, stats.merged_iterations, stats.unmerged_iterations,
              stats.mixture_iterations);
  return 0;
}

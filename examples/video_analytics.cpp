// Video analytics example: the paper's latency-sensitive application.
//
// Part 1 (REAL engine): multiple camera streams send one video chunk per
// round; object-detection chunks invoke a detection adapter, video-
// understanding chunks invoke an action adapter with a vision task head. The
// orchestrator (Algorithm 1) runs the tiny engine, and we report per-task
// answers plus the mode distribution it chose.
//
// Part 2 (A100-scale simulation): the same application at paper scale,
// comparing V-LoRA against the S-LoRA baseline on average token latency and
// SLO attainment.
//
//   ./build/examples/video_analytics

#include <cstdio>

#include "src/baselines/policies.h"
#include "src/core/server.h"
#include "src/engine/vision.h"
#include "src/workload/trace_gen.h"

using namespace vlora;

namespace {

void RealEnginePart() {
  std::printf("=== Part 1: real engine, 3 camera streams, 4 chunks each ===\n");
  const ModelConfig config = TinyConfig();
  ServerOptions options;
  options.max_batch_size = 6;
  VloraServer server(config, options);

  Rng rng(11);
  // Detection adapter: 12-way closed set (counts 0-11).
  auto detect = std::make_unique<LoraAdapter>(
      LoraAdapter::Random("vehicle-detect", config.num_layers, config.d_model, 8, rng));
  VisionTaskHead detect_head;
  detect_head.task = VisionTask::kObjectDetection;
  detect_head.weight = Tensor::Random(Shape(config.d_model, 12), rng, 0.3f);
  detect->SetTaskHead(std::move(detect_head));
  const int detect_id = server.AddAdapter(std::move(detect));

  // Action adapter: 8 action classes.
  auto action = std::make_unique<LoraAdapter>(
      LoraAdapter::Random("action-recognition", config.num_layers, config.d_model, 8, rng));
  VisionTaskHead action_head;
  action_head.task = VisionTask::kVideoClassification;
  action_head.weight = Tensor::Random(Shape(config.d_model, 8), rng, 0.3f);
  action->SetTaskHead(std::move(action_head));
  const int action_id = server.AddAdapter(std::move(action));

  VisionEncoder vision(config);
  int64_t next_id = 0;
  for (int chunk = 0; chunk < 4; ++chunk) {
    for (int stream = 0; stream < 3; ++stream) {
      EngineRequest request;
      request.id = next_id++;
      const int64_t frame = 1000 * stream + 30 * chunk;
      if (stream < 2) {
        // Detection on the chunk's key frame.
        request.prompt_tokens = vision.BuildPrompt(frame, {3, 4});
        request.adapter_id = detect_id;
      } else {
        // Action recognition over 6 frames.
        request.prompt_tokens =
            vision.BuildVideoPrompt({frame, frame + 5, frame + 10, frame + 15, frame + 20,
                                     frame + 25},
                                    {6, 7});
        request.adapter_id = action_id;
      }
      request.use_task_head = true;
      server.Submit(request);
    }
  }

  for (const EngineResult& result : server.RunAll()) {
    std::printf("  chunk request %2ld -> option %d (%s)\n", result.request_id,
                result.head_option,
                result.request_id % 3 < 2 ? "vehicle count" : "action class");
  }
  const ServerStats& stats = server.stats();
  std::printf("Orchestrator iterations: %ld (merged %ld, unmerged %ld, mixture %ld), "
              "switches %ld\n\n",
              stats.iterations, stats.merged_iterations, stats.unmerged_iterations,
              stats.mixture_iterations, stats.mode_switches);
}

void SimulationPart() {
  std::printf("=== Part 2: A100-scale simulation (Qwen-VL-7B, 8 streams) ===\n");
  TraceOptions trace_options;
  trace_options.app = AppKind::kVideoAnalytics;
  trace_options.duration_s = 30.0;
  trace_options.rate_rps = 8.0;
  trace_options.num_streams = 8;
  trace_options.num_adapters = 4;
  trace_options.skewness = 0.5;
  const std::vector<Request> trace = GenerateTrace(trace_options);
  SimOptions options;
  options.max_batch_size = 48;

  const SimMetrics vlora = RunSimulation(trace, [] { return MakeVloraPolicy(); }, options);
  const SimMetrics slora = RunSimulation(trace, MakeSloraPolicy, options);
  std::printf("  V-LoRA: %.1f ms/token, p90 %.0f ms, SLO violations %.1f%%\n",
              vlora.avg_token_latency_ms, vlora.p90_latency_ms,
              100.0 * vlora.slo_violation_rate);
  std::printf("  S-LoRA: %.1f ms/token, p90 %.0f ms, SLO violations %.1f%%\n",
              slora.avg_token_latency_ms, slora.p90_latency_ms,
              100.0 * slora.slo_violation_rate);
  std::printf("  (V-LoRA's vision task heads collapse 5-10 decode rounds into one.)\n");
}

}  // namespace

int main() {
  RealEnginePart();
  SimulationPart();
  return 0;
}

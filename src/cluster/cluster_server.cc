#include "src/cluster/cluster_server.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/trace.h"

namespace vlora {

ClusterServer::ClusterServer(const ModelConfig& config, const ClusterOptions& options)
    : options_(options) {
  VLORA_CHECK(options_.num_replicas >= 1);
  VLORA_CHECK(options_.recovery.max_attempts >= 1);
  if (options_.disagg.enabled) {
    // Both pools need at least one replica.
    VLORA_CHECK(options_.disagg.num_prefill >= 1);
    VLORA_CHECK(options_.disagg.num_prefill < options_.num_replicas);
  }
  if (options_.overload_spill_depth <= 0) {
    options_.overload_spill_depth = std::max<int64_t>(1, options_.replica_queue_capacity / 2);
  }
  // TPOT batching: a decode step over B sequences costs ~B * est_decode_step_ms
  // of per-token latency for everyone in the batch, so the SLO bounds B.
  ServerOptions decode_server = options_.server;
  if (options_.disagg.enabled && options_.disagg.tpot_slo_ms > 0.0) {
    const int cap = static_cast<int>(options_.disagg.tpot_slo_ms /
                                     std::max(1e-9, options_.disagg.est_decode_step_ms));
    decode_server.max_batch_size = std::clamp(cap, 1, decode_server.max_batch_size);
  }
  const auto is_prefill = [this](int i) {
    return options_.disagg.enabled && i < options_.disagg.num_prefill;
  };
  const auto server_for = [&](int i) -> const ServerOptions& {
    return options_.disagg.enabled && !is_prefill(i) ? decode_server : options_.server;
  };
  replicas_.reserve(static_cast<size_t>(options_.num_replicas));
  if (options_.backend == ReplicaBackend::kProcess) {
    // The cluster-level knobs win over whatever the caller left in the
    // process sub-options; only transport/window/timing tuning comes from
    // options_.process.
    ProcessReplicaOptions process_options = options_.process;
    process_options.queue_capacity = options_.replica_queue_capacity;
    process_options.admission = options_.admission;
    process_options.fault = options_.fault;
    for (int i = 0; i < options_.num_replicas; ++i) {
      process_options.server = server_for(i);
      replicas_.push_back(std::make_unique<ProcessReplica>(i, config, process_options));
    }
  } else {
    ReplicaOptions replica_options;
    replica_options.queue_capacity = options_.replica_queue_capacity;
    replica_options.admission = options_.admission;
    replica_options.fault = options_.fault;
    for (int i = 0; i < options_.num_replicas; ++i) {
      replica_options.server = server_for(i);
      replicas_.push_back(std::make_unique<ThreadReplica>(i, config, replica_options));
    }
  }
  for (auto& replica : replicas_) {
    replica->SetHandlers(
        [this](int index, int64_t request_id) { OnReplicaComplete(index, request_id); },
        [this](int index, int64_t request_id, const Status& status) {
          OnReplicaFailure(index, request_id, status);
        });
  }
  all_members_.resize(static_cast<size_t>(options_.num_replicas));
  for (int i = 0; i < options_.num_replicas; ++i) {
    all_members_[static_cast<size_t>(i)] = i;
  }
  router_ = std::make_unique<Router>(options_.policy, &placement_, options_.num_replicas,
                                     options_.overload_spill_depth);
  if (options_.disagg.enabled) {
    const int num_prefill = options_.disagg.num_prefill;
    const int num_decode = options_.num_replicas - num_prefill;
    for (int i = 0; i < options_.num_replicas; ++i) {
      (is_prefill(i) ? prefill_members_ : decode_members_).push_back(i);
    }
    prefill_router_ = std::make_unique<Router>(options_.policy, &prefill_placement_, num_prefill,
                                               options_.overload_spill_depth);
    decode_router_ = std::make_unique<Router>(options_.policy, &decode_placement_, num_decode,
                                              options_.overload_spill_depth);
    // Decode replicas never produce prefill_only results, so wiring the
    // handler everywhere is harmless and keeps the replica contract uniform.
    for (auto& replica : replicas_) {
      replica->SetHandoffHandler(
          [this](int index, EngineResult result) { OnReplicaHandoff(index, std::move(result)); });
    }
  }
  health_.assign(static_cast<size_t>(options_.num_replicas), HealthState{});
}

ClusterServer::~ClusterServer() { Shutdown(); }

int ClusterServer::AddAdapter(const LoraAdapter& adapter) {
  VLORA_CHECK(!started_);
  int id = -1;
  for (auto& replica : replicas_) {
    const int replica_id = replica->AddAdapter(adapter);
    VLORA_CHECK(id == -1 || replica_id == id);
    id = replica_id;
  }
  return id;
}

void ClusterServer::PlaceAdapters(const std::vector<double>& shares) {
  VLORA_CHECK(!started_);
  placement_ = AdapterPlacement::Compute(shares, num_replicas(), options_.placement);
  if (options_.disagg.enabled) {
    // Each pool gets an independent placement over its own (pool-local)
    // replica indices: every adapter keeps >= 1 live home in *both* pools.
    const int num_prefill = options_.disagg.num_prefill;
    prefill_placement_ = AdapterPlacement::Compute(shares, num_prefill, options_.placement);
    decode_placement_ =
        AdapterPlacement::Compute(shares, num_replicas() - num_prefill, options_.placement);
    for (int r = 0; r < num_replicas(); ++r) {
      const bool prefill = r < num_prefill;
      const AdapterPlacement& pool = prefill ? prefill_placement_ : decode_placement_;
      replicas_[static_cast<size_t>(r)]->Prewarm(pool.AdaptersOf(prefill ? r : r - num_prefill));
    }
    return;
  }
  for (auto& replica : replicas_) {
    replica->Prewarm(placement_.AdaptersOf(replica->index()));
  }
}

void ClusterServer::SetCompletionObserver(
    std::function<void(int64_t request_id, double completed_ms)> observer) {
  MutexLock lock(&mutex_);
  completion_observer_ = std::move(observer);
}

void ClusterServer::EnsureStartedLocked() {
  if (started_) {
    return;
  }
  started_ = true;
  wall_.Reset();
  wall_started_ = true;
  pool_ = std::make_unique<ThreadPool>(num_replicas());
  for (auto& replica : replicas_) {
    replica->Start(pool_.get());
  }
  // The supervisor blocks on mutex_ immediately, so it only runs once the
  // caller's critical section ends.
  supervisor_ = std::thread([this] { SupervisorLoop(); });
}

double ClusterServer::BackoffMs(int attempts) const {
  const int exponent = std::min(std::max(attempts - 1, 0), 20);
  return options_.recovery.backoff_base_ms * static_cast<double>(int64_t{1} << exponent);
}

bool ClusterServer::Submit(EngineRequest request) {
  if (options_.admission == AdmissionPolicy::kBlock) {
    VLORA_BLOCKING_REGION(nullptr, "ClusterServer::Submit(kBlock)");  // vlora-lint: allow(hot-path-blocking) kBlock admission is backpressure by design
  }
  const int64_t id = request.id;
  {
    MutexLock lock(&mutex_);
    EnsureStartedLocked();
    if (options_.disagg.enabled && options_.disagg.ttft_slo_ms > 0.0) {
      // TTFT admission: a request admitted behind `threshold` queued prefills
      // on its best-case replica cannot start inside the SLO, so shed it now
      // rather than let it rot in a prefill queue.
      const int64_t threshold = std::max<int64_t>(
          1, static_cast<int64_t>(options_.disagg.ttft_slo_ms /
                                  std::max(1e-9, options_.disagg.est_prefill_ms)));
      int64_t min_depth = std::numeric_limits<int64_t>::max();
      for (size_t l = 0; l < prefill_members_.size(); ++l) {
        if (!prefill_router_->IsReplicaAlive(static_cast<int>(l))) {
          continue;
        }
        min_depth = std::min(
            min_depth, replicas_[static_cast<size_t>(prefill_members_[l])]->Depth());
      }
      if (min_depth >= threshold) {  // also covers "no live prefill replica"
        ++rejected_;
        return false;
      }
    }
    Pending pending;
    pending.request = request;
    if (options_.disagg.enabled) {
      pending.stage = Stage::kPrefill;
    }
    pending.deadline_ms = options_.recovery.request_deadline_ms > 0.0
                              ? clock_.ElapsedMillis() + options_.recovery.request_deadline_ms
                              : std::numeric_limits<double>::infinity();
    const bool inserted =
        pending_.emplace(id, std::move(pending)).second;  // vlora-lint: allow(hot-path-alloc) recovery map bounded by in-flight budget; arena planned with ROADMAP item 5
    VLORA_CHECK(inserted);  // recovery tracking needs unique request ids
  }
  trace::EmitRequestAdmitted(id, request.adapter_id);
  static Counter* const submitted = MetricsRegistry::Global().counter("cluster.submitted");
  submitted->Increment();
  if (options_.disagg.enabled) {
    request.prefill_only = true;  // stage 1 of the two-stage lifecycle
  }
  const RouteOutcome outcome =
      RouteAndEnqueue(std::move(request), /*blocking=*/true, /*count_affinity=*/true);
  if (outcome == RouteOutcome::kAccepted) {
    return true;
  }
  // Never dispatched: untrack it. An admission reject keeps the historical
  // Submit() == false contract; no-live-replica additionally surfaces as a
  // failure so callers that only look at TakeFailures() still see it.
  bool drained = false;
  {
    MutexLock lock(&mutex_);
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      if (outcome == RouteOutcome::kUnavailable) {
        drained = FinalizeFailureLocked(it, Status::Unavailable("no live replica"),
                                        /*deadline=*/false);
      } else {
        pending_.erase(it);
        drained = pending_.empty();
      }
    }
    ++rejected_;
  }
  if (drained) {
    drained_cv_.NotifyAll();
  }
  return false;
}

ClusterServer::RouteOutcome ClusterServer::RouteAndEnqueue(EngineRequest request, bool blocking,
                                                           bool count_affinity) {
  // The request's stage flags pick the pool: prefill_only routes into the
  // prefill pool, resume_handle into the decode pool, neither (unified mode)
  // over the whole fleet — all_members_ is the identity mapping, so unified
  // routing is byte-for-byte the historical behavior. Indices in `tried`,
  // router decisions and depth vectors are pool-local; members[] maps them to
  // global replica indices.
  const bool prefill_stage = options_.disagg.enabled && request.prefill_only;
  const bool decode_stage = options_.disagg.enabled && request.resume_handle != nullptr;
  const std::vector<int>& members =
      prefill_stage ? prefill_members_ : (decode_stage ? decode_members_ : all_members_);
  const int pool_size = static_cast<int>(members.size());
  std::vector<char> tried(static_cast<size_t>(pool_size), 0);
  for (int round = 0; round < pool_size; ++round) {
    int local = -1;
    bool affinity_hit = false;
    bool spilled = false;
    {
      MutexLock lock(&mutex_);
      Router& router =
          prefill_stage ? *prefill_router_ : (decode_stage ? *decode_router_ : *router_);
      std::vector<int64_t> depths(static_cast<size_t>(pool_size));
      for (int i = 0; i < pool_size; ++i) {
        depths[static_cast<size_t>(i)] =
            replicas_[static_cast<size_t>(members[static_cast<size_t>(i)])]->Depth();
      }
      const RouteDecision decision = router.Pick(request.adapter_id, depths);
      if (decision.replica >= 0 && !tried[static_cast<size_t>(decision.replica)]) {
        local = decision.replica;
        affinity_hit = decision.affinity_hit;
        spilled = decision.spilled;
        if (count_affinity && round == 0) {
          if (decision.affinity_hit) {
            ++affinity_hits_;
          }
          if (decision.spilled) {
            ++affinity_spills_;
          }
        }
      } else {
        // The router repeated a pick that already refused us (it learns of a
        // death only at the next health tick): probe the least-loaded live
        // replica we have not tried yet.
        for (int i = 0; i < pool_size; ++i) {
          if (tried[static_cast<size_t>(i)] || !router.IsReplicaAlive(i)) {
            continue;
          }
          if (local < 0 ||
              depths[static_cast<size_t>(i)] < depths[static_cast<size_t>(local)]) {
            local = i;
          }
        }
      }
    }
    if (local < 0) {
      return RouteOutcome::kUnavailable;
    }
    const int target = members[static_cast<size_t>(local)];
    if (decode_stage) {
      trace::EmitDecodeRouted(request.id, request.adapter_id, target, affinity_hit, spilled);
    } else {
      trace::EmitRouted(request.id, request.adapter_id, target, affinity_hit, spilled);
    }
    const EnqueueResult result =
        replicas_[static_cast<size_t>(target)]->Enqueue(request, /*never_block=*/!blocking);
    if (result == EnqueueResult::kAccepted) {
      // kDecodeEnqueued is emitted by the replica itself, ordered before the
      // worker can observe the request (kCompleted must not precede it).
      return RouteOutcome::kAccepted;
    }
    if (result == EnqueueResult::kFull) {
      return RouteOutcome::kFull;  // admission verdict, not a liveness one
    }
    tried[static_cast<size_t>(local)] = 1;  // refused: dead or stopping
  }
  return RouteOutcome::kUnavailable;
}

void ClusterServer::DispatchPending(EngineRequest request) {
  const int64_t id = request.id;
  const RouteOutcome outcome =
      RouteAndEnqueue(std::move(request), /*blocking=*/false, /*count_affinity=*/false);
  if (outcome == RouteOutcome::kAccepted) {
    return;
  }
  bool drained = false;
  {
    MutexLock lock(&mutex_);
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return;
    }
    Pending& pending = it->second;
    if (pending.attempts >= options_.recovery.max_attempts) {
      drained = FinalizeFailureLocked(it, Status::Unavailable("no replica accepted the retry"),
                                      /*deadline=*/false);
    } else {
      pending.state = PendingState::kWaitingRetry;
      pending.retry_due_ms = clock_.ElapsedMillis() + BackoffMs(pending.attempts);
    }
  }
  if (drained) {
    drained_cv_.NotifyAll();
  }
}

void ClusterServer::SupervisorLoop() {
  const double period_ms = std::max(1.0, options_.recovery.health_period_ms);
  for (;;) {
    // Collect this tick's work under the lock, then act on it outside the
    // lock — no lock juggling across the dispatch/health-check calls.
    bool drained = false;
    double now = 0.0;
    std::vector<EngineRequest> to_dispatch;
    {
      MutexLock lock(&mutex_);
      if (!supervisor_stop_) {
        supervisor_cv_.WaitForMs(mutex_, period_ms);
      }
      if (supervisor_stop_) {
        return;
      }
      now = clock_.ElapsedMillis();

      // Deadlines first: a request whose budget elapsed while it waited out a
      // backoff fails now rather than burning another attempt.
      std::vector<int64_t> expired;
      for (const auto& entry : pending_) {
        if (entry.second.state == PendingState::kWaitingRetry && now > entry.second.deadline_ms) {
          expired.push_back(entry.first);
        }
      }
      std::sort(expired.begin(), expired.end());
      for (int64_t id : expired) {
        FinalizeFailureLocked(pending_.find(id),
                              Status::DeadlineExceeded("request deadline elapsed"),
                              /*deadline=*/true);
      }
      drained = !expired.empty() && pending_.empty();

      // Due retries: mark them in-flight under the lock, dispatch outside it.
      for (auto& entry : pending_) {
        Pending& pending = entry.second;
        if (pending.state == PendingState::kWaitingRetry && now >= pending.retry_due_ms) {
          pending.state = PendingState::kEnqueued;
          ++pending.attempts;
          ++retries_;
          static Counter* const retries = MetricsRegistry::Global().counter("cluster.retries");
          retries->Increment();
          trace::EmitRetry(entry.first, pending.request.adapter_id, pending.attempts);
          to_dispatch.push_back(BuildDispatchRequestLocked(pending));
        }
      }
      std::sort(to_dispatch.begin(), to_dispatch.end(),
                [](const EngineRequest& a, const EngineRequest& b) { return a.id < b.id; });
    }
    if (drained) {
      drained_cv_.NotifyAll();
    }
    for (EngineRequest& request : to_dispatch) {
      DispatchPending(std::move(request));
    }
    HealthCheck(now);
  }
}

void ClusterServer::HealthCheck(double now_ms) {
  for (int r = 0; r < num_replicas(); ++r) {
    Replica& replica = *replicas_[static_cast<size_t>(r)];
    const bool is_dead = replica.dead();
    const double heartbeat = replica.HeartbeatMs();
    const int64_t depth = replica.Depth();
    bool steal = false;
    bool health_event = false;
    {
      MutexLock lock(&mutex_);
      HealthState& health = health_[static_cast<size_t>(r)];
      if (heartbeat != health.last_heartbeat) {
        health.last_heartbeat = heartbeat;
        health.last_change_ms = now_ms;
      }
      // An idle worker parks without beating, so its heartbeat is
      // legitimately frozen. The stall clock therefore arms when work
      // arrives (depth 0 -> N), never from the stale idle timestamp —
      // otherwise a long-idle replica is convicted (and its queue stolen)
      // the instant it is handed its first request, before its worker has
      // had a single chance to run.
      if (depth > 0 && health.last_depth == 0) {
        health.last_change_ms = now_ms;
      }
      health.last_depth = depth;
      // Disaggregated mode mirrors every liveness flip into the pool router
      // (and a death into the pool placement) under the replica's pool-local
      // index, so stage routing and per-pool adapter homes stay correct.
      const auto set_pool_alive = [this, r](bool alive) VLORA_REQUIRES(mutex_) {
        if (!options_.disagg.enabled) {
          return;
        }
        const int num_prefill = options_.disagg.num_prefill;
        if (r < num_prefill) {
          prefill_router_->SetReplicaAlive(r, alive);
        } else {
          decode_router_->SetReplicaAlive(r - num_prefill, alive);
        }
      };
      if (is_dead) {
        if (!health.death_handled) {
          // The replica failed over its own queue when it died; here we stop
          // routing to it and give its orphaned adapters new homes.
          health.death_handled = true;
          health.quarantined = false;
          ++replica_deaths_;
          health_event = true;
          router_->SetReplicaAlive(r, false);
          placement_.Rebalance(r);
          set_pool_alive(false);
          if (options_.disagg.enabled) {
            const int num_prefill = options_.disagg.num_prefill;
            if (r < num_prefill) {
              prefill_placement_.Rebalance(r);
            } else {
              decode_placement_.Rebalance(r - num_prefill);
            }
          }
        }
      } else if (!health.quarantined) {
        if (options_.recovery.stall_quarantine_ms > 0.0 && depth > 0 &&
            now_ms - health.last_change_ms > options_.recovery.stall_quarantine_ms) {
          health.quarantined = true;
          health.heartbeat_at_quarantine = heartbeat;
          ++quarantines_;
          health_event = true;
          static Counter* const quarantines =
              MetricsRegistry::Global().counter("cluster.quarantines");
          quarantines->Increment();
          trace::EmitQuarantine(r);
          router_->SetReplicaAlive(r, false);
          set_pool_alive(false);
          steal = true;
        }
      } else if (heartbeat != health.heartbeat_at_quarantine) {
        // The worker moved again: readmit. Whatever it still holds in-engine
        // it will finish itself; new traffic may route to it immediately.
        health.quarantined = false;
        ++readmissions_;
        health_event = true;
        trace::EmitReadmit(r);
        router_->SetReplicaAlive(r, true);
        set_pool_alive(true);
      }
    }
    if (health_event) {
      health_cv_.NotifyAll();
    }
    if (steal) {
      std::vector<EngineRequest> stolen = replica.StealIngress();
      if (!stolen.empty()) {
        MutexLock lock(&mutex_);
        rerouted_ += static_cast<int64_t>(stolen.size());
      }
      std::sort(stolen.begin(), stolen.end(),
                [](const EngineRequest& a, const EngineRequest& b) { return a.id < b.id; });
      for (EngineRequest& request : stolen) {
        DispatchPending(std::move(request));
      }
    }
  }
}

void ClusterServer::OnReplicaComplete(int replica, int64_t request_id) {
  (void)replica;
  bool drained = false;
  double now = 0.0;
  std::function<void(int64_t, double)> observer;
  {
    MutexLock lock(&mutex_);
    auto it = pending_.find(request_id);
    if (it != pending_.end()) {
      if (it->second.handle != nullptr) {
        ++handles_released_;  // decode finished; the KV pages die with the entry
      }
      pending_.erase(it);
    }
    drained = pending_.empty();
    now = clock_.ElapsedMillis();
    observer = completion_observer_;
  }
  static Counter* const completed = MetricsRegistry::Global().counter("cluster.completed");
  completed->Increment();
  if (observer) {
    observer(request_id, now);
  }
  if (drained) {
    drained_cv_.NotifyAll();
  }
}

void ClusterServer::OnReplicaFailure(int replica, int64_t request_id, const Status& status) {
  (void)replica;
  bool drained = false;
  bool scheduled = false;
  {
    MutexLock lock(&mutex_);
    auto it = pending_.find(request_id);
    if (it == pending_.end()) {
      return;  // already finalised (e.g. by the deadline scan)
    }
    Pending& pending = it->second;
    const double now = clock_.ElapsedMillis();
    if (status.code() == StatusCode::kCancelled) {
      drained = FinalizeFailureLocked(it, status, /*deadline=*/false);
    } else if (now > pending.deadline_ms) {
      drained = FinalizeFailureLocked(it, Status::DeadlineExceeded("request deadline elapsed"),
                                      /*deadline=*/true);
    } else if (pending.attempts >= options_.recovery.max_attempts) {
      drained = FinalizeFailureLocked(it, status, /*deadline=*/false);
    } else {
      pending.state = PendingState::kWaitingRetry;
      pending.retry_due_ms = now + BackoffMs(pending.attempts);
      scheduled = true;
    }
  }
  if (drained) {
    drained_cv_.NotifyAll();
  }
  if (scheduled) {
    supervisor_cv_.NotifyAll();
  }
}

EngineRequest ClusterServer::BuildDispatchRequestLocked(const Pending& pending) const {
  // pending.request is the clean replay copy; the stage flags are re-attached
  // at dispatch time so a retried prefill re-runs prefill and a retried
  // decode re-routes the same handle.
  EngineRequest request = pending.request;
  switch (pending.stage) {
    case Stage::kUnified:
      break;
    case Stage::kPrefill:
      request.prefill_only = true;
      break;
    case Stage::kDecode:
      request.resume_handle = pending.handle;
      break;
  }
  return request;
}

void ClusterServer::OnReplicaHandoff(int replica, EngineResult result) {
  std::shared_ptr<KvHandle> handle = std::move(result.handle);
  VLORA_CHECK(handle != nullptr);  // only handle-carrying results are diverted
  EngineRequest to_dispatch;
  {
    MutexLock lock(&mutex_);
    auto it = pending_.find(result.request_id);
    if (it == pending_.end()) {
      return;  // finalised while the prefill ran (deadline/shutdown); drop the handle
    }
    Pending& pending = it->second;
    if (pending.stage == Stage::kDecode) {
      // Duplicate: a stalled/replayed prefill completed after its request was
      // already handed off. The first handle won; drop this one uncounted.
      return;
    }
    trace::EmitKvHandoff(result.request_id, pending.request.adapter_id, replica,
                         static_cast<int64_t>(handle->pages.size()), handle->TotalFloats());
    ++handoffs_;
    ++handles_created_;
    pending.stage = Stage::kDecode;
    pending.handle = std::move(handle);
    pending.state = PendingState::kEnqueued;
    to_dispatch = BuildDispatchRequestLocked(pending);
  }
  // Same non-blocking dispatch as a retry: a refusal schedules a backoff
  // round instead of blocking the prefill replica's worker thread.
  DispatchPending(std::move(to_dispatch));
}

bool ClusterServer::FinalizeFailureLocked(std::unordered_map<int64_t, Pending>::iterator it,
                                          const Status& status, bool deadline) {
  VLORA_CHECK(it != pending_.end());
  // Terminal failure: the successful path emits its kCompleted{kOk} from the
  // finishing replica's worker, so the two never double-report.
  trace::EmitCompleted(it->first, it->second.request.adapter_id, /*replica=*/-1, status.code());
  if (it->second.handle != nullptr) {
    ++handles_released_;  // give up the KV pages along with the request
  }
  failures_.push_back(FailedRequest{it->first, status, it->second.attempts});
  if (status.code() == StatusCode::kCancelled) {
    ++cancelled_;
  } else {
    ++failed_;
  }
  if (deadline) {
    ++deadline_failures_;
  }
  pending_.erase(it);
  return pending_.empty();
}

std::vector<EngineResult> ClusterServer::Drain() {
  VLORA_BLOCKING_REGION(nullptr, "ClusterServer::Drain");
  std::vector<EngineResult> results;
  {
    MutexLock lock(&mutex_);
    if (!started_) {
      return results;
    }
    while (!pending_.empty()) {
      drained_cv_.Wait(mutex_);
    }
  }
  for (auto& replica : replicas_) {
    replica->WaitDrained();
  }
  {
    MutexLock lock(&mutex_);
    wall_ms_ = wall_.ElapsedMillis();
  }
  for (auto& replica : replicas_) {
    std::vector<EngineResult> part = replica->TakeResults();
    results.insert(results.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  return results;
}

std::vector<FailedRequest> ClusterServer::TakeFailures() {
  MutexLock lock(&mutex_);
  std::vector<FailedRequest> out;
  out.swap(failures_);
  return out;
}

bool ClusterServer::WaitForReadmissions(int64_t count, double timeout_ms) {
  const double deadline_ms = clock_.ElapsedMillis() + timeout_ms;
  MutexLock lock(&mutex_);
  while (readmissions_ < count) {
    const double remaining_ms = deadline_ms - clock_.ElapsedMillis();
    if (remaining_ms <= 0.0) {
      return false;
    }
    health_cv_.WaitForMs(mutex_, remaining_ms);
  }
  return true;
}

bool ClusterServer::WaitForReplicaDeaths(int64_t count, double timeout_ms) {
  const double deadline_ms = clock_.ElapsedMillis() + timeout_ms;
  MutexLock lock(&mutex_);
  while (replica_deaths_ < count) {
    const double remaining_ms = deadline_ms - clock_.ElapsedMillis();
    if (remaining_ms <= 0.0) {
      return false;
    }
    health_cv_.WaitForMs(mutex_, remaining_ms);
  }
  return true;
}

void ClusterServer::Shutdown() {
  {
    MutexLock lock(&mutex_);
    if (shut_down_) {
      return;
    }
    shut_down_ = true;
    supervisor_stop_ = true;
  }
  supervisor_cv_.NotifyAll();
  if (supervisor_.joinable()) {
    supervisor_.join();
  }
  for (auto& replica : replicas_) {
    replica->RequestStop();
  }
  if (pool_ != nullptr) {
    pool_->WaitIdle();
  }
  // The workers cancelled their queues on the way out (reported through
  // OnReplicaFailure); anything left in the table was waiting out a retry
  // backoff the supervisor will never serve. Cancel it too.
  {
    MutexLock lock(&mutex_);
    std::vector<int64_t> ids;
    ids.reserve(pending_.size());
    for (const auto& entry : pending_) {
      ids.push_back(entry.first);
    }
    std::sort(ids.begin(), ids.end());
    for (int64_t id : ids) {
      FinalizeFailureLocked(pending_.find(id), Status::Cancelled("cluster shutdown"),
                            /*deadline=*/false);
    }
  }
  drained_cv_.NotifyAll();
}

ClusterStats ClusterServer::Stats() {
  ClusterStats stats;
  for (auto& replica : replicas_) {
    ReplicaSnapshot snapshot = replica->Snapshot();
    stats.submitted += snapshot.submitted;
    stats.completed += snapshot.completed;
    stats.adapter_swap_ins += snapshot.server.adapter_swap_ins;
    stats.adapter_evictions += snapshot.server.adapter_evictions;
    stats.visible_swap_ms += snapshot.server.visible_swap_ms;
    stats.latency.Merge(snapshot.latency);
    stats.replicas.push_back(std::move(snapshot));
  }
  MutexLock lock(&mutex_);
  stats.rejected = rejected_;
  stats.affinity_hits = affinity_hits_;
  stats.affinity_spills = affinity_spills_;
  stats.retries = retries_;
  stats.rerouted = rerouted_;
  stats.failed = failed_;
  stats.cancelled = cancelled_;
  stats.deadline_failures = deadline_failures_;
  stats.replica_deaths = replica_deaths_;
  stats.quarantines = quarantines_;
  stats.readmissions = readmissions_;
  stats.handoffs = handoffs_;
  stats.handles_created = handles_created_;
  stats.handles_released = handles_released_;
  const double wall_ms = wall_ms_ > 0.0 ? wall_ms_ : (wall_started_ ? wall_.ElapsedMillis() : 0.0);
  stats.wall_ms = wall_ms;
  if (wall_ms > 0.0) {
    stats.throughput_rps = static_cast<double>(stats.completed) / (wall_ms / 1e3);
  }
  return stats;
}

EngineRequest EngineRequestFromTrace(const Request& request, const ModelConfig& config,
                                     const TraceMapOptions& options) {
  EngineRequest engine_request;
  engine_request.id = request.id;
  engine_request.adapter_id = request.adapter_id;
  const int64_t prompt_len =
      std::clamp(request.input_tokens / options.token_scale, options.min_prompt_tokens,
                 options.max_prompt_tokens);
  // Deterministic per-request prompt: the same trace maps to the same engine
  // requests on every replica count, which is what makes cluster results
  // comparable as multisets.
  Rng rng(0x5eedu + static_cast<uint64_t>(request.id) * 7919u);
  engine_request.prompt_tokens.reserve(static_cast<size_t>(prompt_len));
  for (int64_t i = 0; i < prompt_len; ++i) {
    engine_request.prompt_tokens.push_back(
        static_cast<int32_t>(rng.NextInt(2, config.vocab_size - 1)));
  }
  engine_request.max_new_tokens = static_cast<int>(std::clamp(
      request.output_tokens / options.token_scale, options.min_new_tokens,
      options.max_new_tokens));
  engine_request.use_task_head = options.use_task_heads && request.closed_set_output;
  engine_request.eos_token = -1;  // fixed-length decode keeps runs comparable
  return engine_request;
}

}  // namespace vlora

#include "src/cluster/cluster_server.h"

#include <algorithm>
#include <utility>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace vlora {

ClusterServer::ClusterServer(const ModelConfig& config, const ClusterOptions& options)
    : options_(options) {
  VLORA_CHECK(options_.num_replicas >= 1);
  if (options_.overload_spill_depth <= 0) {
    options_.overload_spill_depth = std::max<int64_t>(1, options_.replica_queue_capacity / 2);
  }
  ReplicaOptions replica_options;
  replica_options.server = options_.server;
  replica_options.queue_capacity = options_.replica_queue_capacity;
  replica_options.admission = options_.admission;
  replicas_.reserve(static_cast<size_t>(options_.num_replicas));
  for (int i = 0; i < options_.num_replicas; ++i) {
    replicas_.push_back(std::make_unique<Replica>(i, config, replica_options));
  }
  router_ = std::make_unique<Router>(options_.policy, &placement_, options_.num_replicas,
                                     options_.overload_spill_depth);
}

ClusterServer::~ClusterServer() {
  for (auto& replica : replicas_) {
    replica->RequestStop();
  }
  if (pool_ != nullptr) {
    pool_->WaitIdle();
  }
}

int ClusterServer::AddAdapter(const LoraAdapter& adapter) {
  VLORA_CHECK(!started_);
  int id = -1;
  for (auto& replica : replicas_) {
    const int replica_id = replica->AddAdapter(adapter);
    VLORA_CHECK(id == -1 || replica_id == id);
    id = replica_id;
  }
  return id;
}

void ClusterServer::PlaceAdapters(const std::vector<double>& shares) {
  VLORA_CHECK(!started_);
  placement_ = AdapterPlacement::Compute(shares, num_replicas(), options_.placement);
  for (auto& replica : replicas_) {
    replica->Prewarm(placement_.AdaptersOf(replica->index()));
  }
}

void ClusterServer::EnsureStarted() {
  if (started_) {
    return;
  }
  started_ = true;
  wall_.Reset();
  wall_started_ = true;
  pool_ = std::make_unique<ThreadPool>(num_replicas());
  for (auto& replica : replicas_) {
    replica->Start(pool_.get());
  }
}

bool ClusterServer::Submit(EngineRequest request) {
  EnsureStarted();
  std::vector<int64_t> depths(static_cast<size_t>(num_replicas()));
  for (int i = 0; i < num_replicas(); ++i) {
    depths[static_cast<size_t>(i)] = replicas_[static_cast<size_t>(i)]->Depth();
  }
  const RouteDecision decision = router_->Pick(request.adapter_id, depths);
  if (decision.affinity_hit) {
    ++affinity_hits_;
  }
  if (decision.spilled) {
    ++affinity_spills_;
  }
  const bool accepted = replicas_[static_cast<size_t>(decision.replica)]->Enqueue(std::move(request));
  if (!accepted) {
    ++rejected_;
  }
  return accepted;
}

std::vector<EngineResult> ClusterServer::Drain() {
  std::vector<EngineResult> results;
  if (!started_) {
    return results;
  }
  for (auto& replica : replicas_) {
    replica->WaitDrained();
  }
  wall_ms_ = wall_.ElapsedMillis();
  for (auto& replica : replicas_) {
    std::vector<EngineResult> part = replica->TakeResults();
    results.insert(results.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  return results;
}

ClusterStats ClusterServer::Stats() {
  ClusterStats stats;
  const double wall_ms = wall_ms_ > 0.0 ? wall_ms_ : (wall_started_ ? wall_.ElapsedMillis() : 0.0);
  for (auto& replica : replicas_) {
    ReplicaSnapshot snapshot = replica->Snapshot();
    stats.submitted += snapshot.submitted;
    stats.completed += snapshot.completed;
    stats.adapter_swap_ins += snapshot.server.adapter_swap_ins;
    stats.adapter_evictions += snapshot.server.adapter_evictions;
    stats.visible_swap_ms += snapshot.server.visible_swap_ms;
    stats.latency.Merge(snapshot.latency);
    stats.replicas.push_back(std::move(snapshot));
  }
  stats.rejected = rejected_;
  stats.affinity_hits = affinity_hits_;
  stats.affinity_spills = affinity_spills_;
  stats.wall_ms = wall_ms;
  if (wall_ms > 0.0) {
    stats.throughput_rps = static_cast<double>(stats.completed) / (wall_ms / 1e3);
  }
  return stats;
}

EngineRequest EngineRequestFromTrace(const Request& request, const ModelConfig& config,
                                     const TraceMapOptions& options) {
  EngineRequest engine_request;
  engine_request.id = request.id;
  engine_request.adapter_id = request.adapter_id;
  const int64_t prompt_len =
      std::clamp(request.input_tokens / options.token_scale, options.min_prompt_tokens,
                 options.max_prompt_tokens);
  // Deterministic per-request prompt: the same trace maps to the same engine
  // requests on every replica count, which is what makes cluster results
  // comparable as multisets.
  Rng rng(0x5eedu + static_cast<uint64_t>(request.id) * 7919u);
  engine_request.prompt_tokens.reserve(static_cast<size_t>(prompt_len));
  for (int64_t i = 0; i < prompt_len; ++i) {
    engine_request.prompt_tokens.push_back(
        static_cast<int32_t>(rng.NextInt(2, config.vocab_size - 1)));
  }
  engine_request.max_new_tokens = static_cast<int>(std::clamp(
      request.output_tokens / options.token_scale, options.min_new_tokens,
      options.max_new_tokens));
  engine_request.use_task_head = options.use_task_heads && request.closed_set_output;
  engine_request.eos_token = -1;  // fixed-length decode keeps runs comparable
  return engine_request;
}

}  // namespace vlora

#include "src/cluster/router.h"

#include "src/common/status.h"

namespace vlora {

Router::Router(RoutePolicy policy, const AdapterPlacement* placement, int num_replicas,
               int64_t overload_depth)
    : policy_(policy),
      placement_(placement),
      num_replicas_(num_replicas),
      overload_depth_(overload_depth) {
  VLORA_CHECK(num_replicas_ >= 1);
  if (policy_ == RoutePolicy::kAdapterAffinity) {
    VLORA_CHECK(placement_ != nullptr);
  }
}

int Router::LeastLoaded(const std::vector<int64_t>& depths) const {
  int best = 0;
  for (int replica = 1; replica < num_replicas_; ++replica) {
    if (depths[static_cast<size_t>(replica)] < depths[static_cast<size_t>(best)]) {
      best = replica;
    }
  }
  return best;
}

RouteDecision Router::Pick(int adapter_id, const std::vector<int64_t>& depths) {
  VLORA_CHECK(static_cast<int>(depths.size()) == num_replicas_);
  RouteDecision decision;
  switch (policy_) {
    case RoutePolicy::kRoundRobin:
      decision.replica = static_cast<int>(round_robin_next_++ % num_replicas_);
      break;
    case RoutePolicy::kLeastLoaded:
      decision.replica = LeastLoaded(depths);
      break;
    case RoutePolicy::kAdapterAffinity: {
      const std::vector<int>& homes = placement_->HomesOf(adapter_id);
      if (homes.empty()) {
        // Base-model requests (and unknown adapters) have no affinity.
        decision.replica = LeastLoaded(depths);
        break;
      }
      int best_home = homes.front();
      for (int home : homes) {
        if (depths[static_cast<size_t>(home)] < depths[static_cast<size_t>(best_home)]) {
          best_home = home;
        }
      }
      if (overload_depth_ > 0 && depths[static_cast<size_t>(best_home)] >= overload_depth_) {
        decision.replica = LeastLoaded(depths);
        decision.spilled = decision.replica != best_home;
        decision.affinity_hit = !decision.spilled;
        if (decision.spilled) {
          break;
        }
      }
      decision.replica = best_home;
      decision.affinity_hit = true;
      break;
    }
  }
  if (placement_ != nullptr && policy_ != RoutePolicy::kAdapterAffinity) {
    decision.affinity_hit = placement_->IsHome(adapter_id, decision.replica);
  }
  return decision;
}

}  // namespace vlora

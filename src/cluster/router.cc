#include "src/cluster/router.h"

#include "src/common/status.h"

namespace vlora {

Router::Router(RoutePolicy policy, const AdapterPlacement* placement, int num_replicas,
               int64_t overload_depth)
    : policy_(policy),
      placement_(placement),
      num_replicas_(num_replicas),
      overload_depth_(overload_depth),
      alive_(static_cast<size_t>(num_replicas), true),
      num_alive_(num_replicas) {
  VLORA_CHECK(num_replicas_ >= 1);
  if (policy_ == RoutePolicy::kAdapterAffinity) {
    VLORA_CHECK(placement_ != nullptr);
  }
}

void Router::SetReplicaAlive(int replica, bool alive) {
  VLORA_CHECK(replica >= 0 && replica < num_replicas_);
  if (alive_[static_cast<size_t>(replica)] == alive) {
    return;
  }
  alive_[static_cast<size_t>(replica)] = alive;
  num_alive_ += alive ? 1 : -1;
}

bool Router::IsReplicaAlive(int replica) const {
  VLORA_CHECK(replica >= 0 && replica < num_replicas_);
  return alive_[static_cast<size_t>(replica)];
}

int Router::LeastLoadedAlive(const std::vector<int64_t>& depths) const {
  int best = -1;
  for (int replica = 0; replica < num_replicas_; ++replica) {
    if (!alive_[static_cast<size_t>(replica)]) {
      continue;
    }
    if (best < 0 || depths[static_cast<size_t>(replica)] < depths[static_cast<size_t>(best)]) {
      best = replica;
    }
  }
  return best;
}

RouteDecision Router::Pick(int adapter_id, const std::vector<int64_t>& depths) {
  VLORA_CHECK(static_cast<int>(depths.size()) == num_replicas_);
  RouteDecision decision;
  if (num_alive_ == 0) {
    decision.replica = -1;
    return decision;
  }
  switch (policy_) {
    case RoutePolicy::kRoundRobin:
      // Rotate past dead replicas; num_alive_ > 0 bounds the scan.
      decision.replica = static_cast<int>(round_robin_next_++ % num_replicas_);
      while (!alive_[static_cast<size_t>(decision.replica)]) {
        decision.replica = static_cast<int>(round_robin_next_++ % num_replicas_);
      }
      break;
    case RoutePolicy::kLeastLoaded:
      decision.replica = LeastLoadedAlive(depths);
      break;
    case RoutePolicy::kAdapterAffinity: {
      const std::vector<int>& homes = placement_->HomesOf(adapter_id);
      int best_home = -1;
      for (int home : homes) {
        if (!alive_[static_cast<size_t>(home)]) {
          continue;
        }
        if (best_home < 0 ||
            depths[static_cast<size_t>(home)] < depths[static_cast<size_t>(best_home)]) {
          best_home = home;
        }
      }
      if (best_home < 0) {
        // Base-model requests, unknown adapters, and adapters whose every
        // home is dead route by load alone.
        decision.replica = LeastLoadedAlive(depths);
        break;
      }
      if (overload_depth_ > 0 && depths[static_cast<size_t>(best_home)] >= overload_depth_) {
        decision.replica = LeastLoadedAlive(depths);
        decision.spilled = decision.replica != best_home;
        decision.affinity_hit = !decision.spilled;
        if (decision.spilled) {
          break;
        }
      }
      decision.replica = best_home;
      decision.affinity_hit = true;
      break;
    }
  }
  if (placement_ != nullptr && policy_ != RoutePolicy::kAdapterAffinity &&
      decision.replica >= 0) {
    decision.affinity_hit = placement_->IsHome(adapter_id, decision.replica);
  }
  return decision;
}

}  // namespace vlora

// Request dispatch across replicas.
//
// Three policies, matching the knobs the multi-GPU literature compares:
//   kRoundRobin      — the paper's Table 3 setup ("no inter-GPU scheduling"):
//                      a rotating counter, blind to load and placement.
//   kLeastLoaded     — minimum outstanding-work depth, ties to the lowest
//                      replica index.
//   kAdapterAffinity — route to a home replica of the request's adapter (the
//                      placement pre-warmed it there), picking the least
//                      loaded home; when every home is at or past the
//                      overload depth, spill to the globally least loaded
//                      replica rather than queue behind a hotspot.
//
// Every policy routes only to replicas marked alive: the cluster's health
// checker marks a replica dead (crashed) or quarantined (stalled) via
// SetReplicaAlive, and the router then treats it as non-existent — dead
// homes are skipped, round-robin rotates past it, and least-loaded ignores
// its depth. When no replica is alive Pick returns replica = -1.
//
// The router is a pure decision function over (adapter, depths, alive mask):
// it owns no locks and touches no replica state, so decisions are
// deterministic for a given mask, depth vector and call sequence. Callers
// serialise Pick and SetReplicaAlive externally.

#ifndef VLORA_SRC_CLUSTER_ROUTER_H_
#define VLORA_SRC_CLUSTER_ROUTER_H_

#include <cstdint>
#include <vector>

#include "src/cluster/placement.h"

namespace vlora {

enum class RoutePolicy {
  kRoundRobin,
  kLeastLoaded,
  kAdapterAffinity,
};

constexpr const char* RoutePolicyName(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kLeastLoaded:
      return "least-loaded";
    case RoutePolicy::kAdapterAffinity:
      return "adapter-affinity";
  }
  return "unknown";
}

struct RouteDecision {
  int replica = 0;            // -1: no routable replica (all dead/quarantined)
  bool affinity_hit = false;  // landed on a home replica of the adapter
  bool spilled = false;       // affinity wanted a home but all were overloaded
};

class Router {
 public:
  // `placement` may outlive routing decisions; not owned. Only consulted by
  // kAdapterAffinity. `overload_depth` is the queue depth at which a home
  // replica stops being preferred (<= 0 disables spilling).
  Router(RoutePolicy policy, const AdapterPlacement* placement, int num_replicas,
         int64_t overload_depth);

  // `depths[i]` is replica i's outstanding work (ingress + in-engine).
  RouteDecision Pick(int adapter_id, const std::vector<int64_t>& depths);

  // Health-checker interface: an unroutable replica receives no new traffic.
  void SetReplicaAlive(int replica, bool alive);
  bool IsReplicaAlive(int replica) const;
  int num_alive() const { return num_alive_; }

  RoutePolicy policy() const { return policy_; }

 private:
  // Least-loaded among alive replicas; -1 when none are alive.
  int LeastLoadedAlive(const std::vector<int64_t>& depths) const;

  RoutePolicy policy_;
  const AdapterPlacement* placement_;
  int num_replicas_;
  int64_t overload_depth_;
  int64_t round_robin_next_ = 0;
  std::vector<bool> alive_;
  int num_alive_ = 0;
};

}  // namespace vlora

#endif  // VLORA_SRC_CLUSTER_ROUTER_H_

// The executor: one engine replica in its own process.
//
//   vlora_executor --connect=unix:/path.sock --replica=0
//   vlora_executor --connect=tcp:127.0.0.1:47001 --replica=1
//
// Spawned by ProcessReplica (or by hand; see vlora_master / README). Dials
// the master, announces itself (Hello), builds a ThreadReplica from the
// pushed Config, loads the streamed adapters, and then serves Requests until
// a Stop arrives — at which point it drains the engine, sends Goodbye, and
// exits 0. Any connection error or protocol violation exits non-zero: the
// master treats an executor that vanishes mid-run as dead and recovers the
// lost requests onto surviving replicas, so dying loudly is the correct
// failure mode here.
//
// Three threads touch the channel: the main loop (sole receiver), the
// replica worker (sends Result/Failure from the completion handlers), and
// the heartbeat thread. Channel::Send serialises whole frames, so their
// writes never interleave on the wire.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/replica.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/net/channel.h"
#include "src/net/fd.h"
#include "src/net/messages.h"

namespace vlora {
namespace {

int ExecutorMain(int argc, char** argv) {
  std::string connect;
  int replica_index = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      connect = arg.substr(10);
    } else if (arg.rfind("--replica=", 0) == 0) {
      replica_index = std::atoi(arg.c_str() + 10);
    } else {
      std::fprintf(stderr, "vlora_executor: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (connect.empty() || replica_index < 0) {
    std::fprintf(stderr,
                 "usage: vlora_executor --connect=<unix:/path|tcp:host:port> --replica=<i>\n");
    return 2;
  }

  Result<net::SocketAddress> address = net::SocketAddress::Parse(connect);
  if (!address.ok()) {
    std::fprintf(stderr, "vlora_executor: bad --connect: %s\n",
                 address.status().message().c_str());
    return 2;
  }
  Result<net::Fd> fd = net::Connect(address.value());
  if (!fd.ok()) {
    std::fprintf(stderr, "vlora_executor: connect failed: %s\n",
                 fd.status().message().c_str());
    return 1;
  }
  net::Channel channel(std::move(fd.value()));

  net::HelloMessage hello;
  hello.replica = replica_index;
  hello.pid = static_cast<int64_t>(::getpid());
  if (!channel.SendMsg(hello).ok()) {
    return 1;
  }

  Result<net::ConfigMessage> config = channel.RecvMsg<net::ConfigMessage>();
  if (!config.ok()) {
    std::fprintf(stderr, "vlora_executor: bad config: %s\n",
                 config.status().message().c_str());
    return 1;
  }

  ReplicaOptions options;
  options.server = config.value().ToServerOptions();
  options.queue_capacity = config.value().queue_capacity;
  options.admission = AdmissionPolicy::kBlock;
  ThreadReplica replica(replica_index, config.value().model, options);

  std::atomic<int64_t> completed{0};  // `counter` protocol (tools/atomics.toml)
  replica.SetHandlers(
      [&](int /*replica*/, int64_t /*request_id*/) {
        // Results accumulate in the replica between handler invocations;
        // flush whatever is there. Channel::Send keeps frames atomic.
        for (EngineResult& result : replica.TakeResults()) {
          if (result.handle != nullptr) {
            // Prefill-only export: the handle's frames must precede the
            // Result frame that references them (Channel sends are FIFO).
            (void)net::SendKvHandle(channel, *result.handle);
          }
          net::ResultMessage message;
          message.result = std::move(result);
          (void)channel.SendMsg(message);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      },
      [&](int /*replica*/, int64_t request_id, const Status& status) {
        net::FailureMessage message;
        message.request_id = request_id;
        message.code = status.code();
        message.message = status.message();
        (void)channel.SendMsg(message);
      });

  net::AckMessage config_ack;
  if (!channel.SendMsg(config_ack).ok()) {
    return 1;
  }

  // Setup phase: adapters stream in until Start flips us to serving.
  for (;;) {
    Result<net::Envelope> envelope = channel.Recv();
    if (!envelope.ok()) {
      return 1;
    }
    if (envelope.value().type == net::MessageType::kStart) {
      break;
    }
    net::AckMessage ack;
    if (envelope.value().type == net::MessageType::kLoadAdapter) {
      net::WireReader reader(envelope.value().body);
      Result<LoraAdapter> adapter = net::ParseAdapter(reader);
      if (!adapter.ok() || !reader.Done()) {
        ack.code = StatusCode::kInvalidArgument;
        ack.message = "malformed adapter";
      } else {
        ack.value = replica.AddAdapter(adapter.value());
      }
    } else if (envelope.value().type == net::MessageType::kPrewarm) {
      Result<net::PrewarmMessage> prewarm = net::DecodeAs<net::PrewarmMessage>(envelope.value());
      if (!prewarm.ok()) {
        ack.code = StatusCode::kInvalidArgument;
        ack.message = "malformed prewarm";
      } else {
        std::vector<int> ids(prewarm.value().adapter_ids.begin(),
                             prewarm.value().adapter_ids.end());
        replica.Prewarm(ids);
      }
    } else {
      std::fprintf(stderr, "vlora_executor: unexpected %s during setup\n",
                   net::MessageTypeName(envelope.value().type));
      return 1;
    }
    if (!channel.SendMsg(ack).ok()) {
      return 1;
    }
  }

  ThreadPool pool(1);
  replica.Start(&pool);

  // Forward the worker's liveness stamp every period; when the worker stalls
  // or the engine wedges, worker_ms freezes and the master's stall detector
  // fires exactly as it would in-process.
  std::atomic<bool> heartbeat_stop{false};  // `flag` protocol (tools/atomics.toml)
  std::thread heartbeat([&] {
    const auto period =
        std::chrono::duration<double, std::milli>(config.value().heartbeat_period_ms);
    while (!heartbeat_stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(period);
      net::HeartbeatMessage hb;
      hb.worker_ms = replica.HeartbeatMs();
      hb.depth = replica.Depth();
      hb.completed = completed.load(std::memory_order_relaxed);
      (void)channel.SendMsg(hb);
    }
  });

  // Disagg KvHandle assembly for incoming resume requests, keyed by request
  // id — the mirror of the master reader's map (see ProcessReplica).
  struct Assembly {
    std::shared_ptr<KvHandle> handle;
    int64_t remaining = 0;  // pages still missing
  };
  std::map<int64_t, Assembly> assembling;

  int exit_code = 0;
  for (;;) {
    Result<net::Envelope> envelope = channel.Recv();
    if (!envelope.ok()) {
      // Master gone without a Stop: nothing to report results to.
      exit_code = 1;
      break;
    }
    if (envelope.value().type == net::MessageType::kStop) {
      replica.RequestStop();
      pool.WaitIdle();  // worker drains in-engine work, handlers flush it
      net::GoodbyeMessage goodbye;
      goodbye.completed = completed.load(std::memory_order_relaxed);
      (void)channel.SendMsg(goodbye);
      break;
    }
    if (envelope.value().type == net::MessageType::kKvHandleMeta) {
      Result<net::KvHandleMetaMessage> msg =
          net::DecodeAs<net::KvHandleMetaMessage>(envelope.value());
      if (!msg.ok()) {
        exit_code = 1;
        break;
      }
      Assembly assembly;
      assembly.handle = std::make_shared<KvHandle>();
      msg.value().ToHandle(assembly.handle.get());
      assembly.remaining = msg.value().num_pages;
      assembling[msg.value().request_id] = std::move(assembly);
      continue;
    }
    if (envelope.value().type == net::MessageType::kKvPage) {
      Result<net::KvPageMessage> msg = net::DecodeAs<net::KvPageMessage>(envelope.value());
      if (!msg.ok()) {
        exit_code = 1;
        break;
      }
      net::KvPageMessage& page = msg.value();
      auto it = assembling.find(page.request_id);
      if (it == assembling.end() ||
          page.page_index >= static_cast<int64_t>(it->second.handle->pages.size()) ||
          !it->second.handle->pages[static_cast<size_t>(page.page_index)].data.empty()) {
        exit_code = 1;  // page without meta, out of range, or a duplicate
        break;
      }
      it->second.handle->pages[static_cast<size_t>(page.page_index)].data = std::move(page.data);
      --it->second.remaining;
      continue;
    }
    if (envelope.value().type == net::MessageType::kRequest) {
      Result<net::RequestMessage> msg = net::DecodeAs<net::RequestMessage>(envelope.value());
      if (!msg.ok()) {
        exit_code = 1;
        break;
      }
      const int64_t id = msg.value().request.id;
      if (msg.value().has_resume) {
        auto it = assembling.find(id);
        if (it == assembling.end() || it->second.remaining != 0) {
          // A resume whose handle never fully arrived is a protocol error:
          // dying loudly routes the request into the master's retry path.
          exit_code = 1;
          break;
        }
        msg.value().request.resume_handle = std::move(it->second.handle);
        assembling.erase(it);
      }
      if (replica.Enqueue(std::move(msg.value().request), /*never_block=*/false) !=
          EnqueueResult::kAccepted) {
        net::FailureMessage failure;
        failure.request_id = id;
        failure.code = StatusCode::kUnavailable;
        failure.message = "executor replica refused the request";
        (void)channel.SendMsg(failure);
      }
      continue;
    }
    std::fprintf(stderr, "vlora_executor: unexpected %s while serving\n",
                 net::MessageTypeName(envelope.value().type));
    exit_code = 1;
    break;
  }

  heartbeat_stop.store(true, std::memory_order_release);
  heartbeat.join();
  if (exit_code != 0) {
    replica.RequestStop();
    pool.WaitIdle();
  }
  return exit_code;
}

}  // namespace
}  // namespace vlora

int main(int argc, char** argv) { return vlora::ExecutorMain(argc, argv); }

// Demo master for the multi-process quick-start (README "Multi-process
// cluster"):
//
//   vlora_master --backend=process --replicas=2 --requests=32
//
// Builds a tiny-model cluster on the chosen backend, registers a few
// adapters, serves a deterministic workload, and prints per-replica stats.
// With --backend=process each replica is a forked vlora_executor reached
// over the wire protocol (unix sockets by default; --transport=tcp for TCP
// loopback); with --backend=thread everything stays in this process. The
// same seeded workload produces the same result multiset on both backends.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/cluster/cluster_server.h"
#include "src/common/rng.h"
#include "src/engine/model_config.h"
#include "src/lora/adapter.h"

namespace vlora {
namespace {

int MasterMain(int argc, char** argv) {
  int replicas = 2;
  int requests = 32;
  int adapters = 4;
  int prefill = 0;  // 0 = unified; N>0 splits N prefill / rest decode
  ReplicaBackend backend = ReplicaBackend::kThread;
  net::Transport transport = net::Transport::kUnix;
  std::string executor;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--replicas=", 0) == 0) {
      replicas = std::atoi(arg.c_str() + 11);
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests = std::atoi(arg.c_str() + 11);
    } else if (arg.rfind("--adapters=", 0) == 0) {
      adapters = std::atoi(arg.c_str() + 11);
    } else if (arg.rfind("--prefill=", 0) == 0) {
      prefill = std::atoi(arg.c_str() + 10);
    } else if (arg == "--backend=thread") {
      backend = ReplicaBackend::kThread;
    } else if (arg == "--backend=process") {
      backend = ReplicaBackend::kProcess;
    } else if (arg == "--transport=unix") {
      transport = net::Transport::kUnix;
    } else if (arg == "--transport=tcp") {
      transport = net::Transport::kTcp;
    } else if (arg.rfind("--executor=", 0) == 0) {
      executor = arg.substr(11);
    } else {
      std::fprintf(stderr,
                   "usage: vlora_master [--backend=thread|process] [--replicas=N]\n"
                   "                    [--requests=N] [--adapters=N] [--prefill=N]\n"
                   "                    [--transport=unix|tcp] [--executor=PATH]\n"
                   "--prefill=N enables disaggregated serving: N prefill replicas,\n"
                   "the rest decode resumed KV handles (0 < N < replicas)\n");
      return 2;
    }
  }
  if (backend == ReplicaBackend::kProcess && executor.empty() &&
      !ProcessReplica::ExecutorAvailable()) {
    std::fprintf(stderr,
                 "vlora_master: vlora_executor not found next to this binary; "
                 "build it or set VLORA_EXECUTOR / --executor\n");
    return 1;
  }

  const ModelConfig config = TinyConfig();
  ClusterOptions options;
  options.num_replicas = replicas;
  options.backend = backend;
  if (prefill > 0) {
    if (prefill >= replicas) {
      std::fprintf(stderr, "vlora_master: --prefill must leave at least one decode replica\n");
      return 2;
    }
    options.disagg.enabled = true;
    options.disagg.num_prefill = prefill;
  }
  options.process.transport = transport;
  options.process.executor_path = executor;
  ClusterServer cluster(config, options);

  Rng adapter_rng(0xada97e50u);
  for (int a = 0; a < adapters; ++a) {
    LoraAdapter adapter = LoraAdapter::Random("demo-" + std::to_string(a), config.num_layers,
                                              config.d_model, /*rank=*/4, adapter_rng);
    cluster.AddAdapter(adapter);
  }
  cluster.PlaceAdapters(std::vector<double>(static_cast<size_t>(adapters),
                                            1.0 / static_cast<double>(adapters)));

  for (int i = 0; i < requests; ++i) {
    Request request;
    request.id = i;
    request.adapter_id = i % adapters;
    request.input_tokens = 128 + 32 * (i % 5);
    request.output_tokens = 64;
    if (!cluster.Submit(EngineRequestFromTrace(request, config))) {
      std::fprintf(stderr, "vlora_master: submit %d rejected\n", i);
    }
  }
  const std::vector<EngineResult> results = cluster.Drain();
  cluster.Shutdown();

  const ClusterStats stats = cluster.Stats();
  std::printf("backend=%s replicas=%d requests=%d completed=%zu wall_ms=%.1f rps=%.1f\n",
              ReplicaBackendName(backend), replicas, requests, results.size(), stats.wall_ms,
              stats.throughput_rps);
  if (prefill > 0) {
    std::printf("disaggregated: %d prefill / %d decode, handoffs=%lld "
                "(handles created=%lld released=%lld)\n",
                prefill, replicas - prefill, static_cast<long long>(stats.handoffs),
                static_cast<long long>(stats.handles_created),
                static_cast<long long>(stats.handles_released));
  }
  std::printf("%-8s %-8s %-10s %-10s %-8s %-10s\n", "replica", "backend", "submitted",
              "completed", "failed", "p50_ms");
  for (const ReplicaSnapshot& snapshot : stats.replicas) {
    std::printf("%-8d %-8s %-10lld %-10lld %-8lld %-10.2f\n", snapshot.index, snapshot.backend,
                static_cast<long long>(snapshot.submitted),
                static_cast<long long>(snapshot.completed),
                static_cast<long long>(snapshot.failed), snapshot.latency.P50Ms());
  }
  return 0;
}

}  // namespace
}  // namespace vlora

int main(int argc, char** argv) { return vlora::MasterMain(argc, argv); }

// One serving replica: a VloraServer behind a bounded ingress queue, driven
// by a worker loop hosted on the cluster's ThreadPool.
//
// Threading model: the router thread calls Enqueue(); exactly one worker
// thread runs WorkerLoop(), which moves queued requests into the server and
// calls StepOnce() until the replica drains. The server itself is therefore
// single-threaded apart from its staged Submit. All cross-thread state
// (ingress queue, outstanding count, result buffer, latency recorder) is
// guarded by one mutex; stats snapshots serialise against StepOnce through a
// separate step mutex so they can be taken mid-run under TSan.
//
// Backpressure: `queue_capacity` bounds *outstanding* requests (queued +
// in-engine). kBlock makes Enqueue wait for space — the caller slows to the
// replica's service rate; kReject makes it fail fast and count the reject.
// Either way a saturating trace cannot grow replica memory without bound.

#ifndef VLORA_SRC_CLUSTER_REPLICA_H_
#define VLORA_SRC_CLUSTER_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/core/server.h"

namespace vlora {

enum class AdmissionPolicy {
  kBlock,   // Enqueue waits for queue space (lossless, caller-paced)
  kReject,  // Enqueue returns false when full (lossy, bounded latency)
};

struct ReplicaOptions {
  ServerOptions server;
  int64_t queue_capacity = 64;  // bound on outstanding requests
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
};

struct ReplicaSnapshot {
  int index = 0;
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t peak_depth = 0;
  ServerStats server;        // logical-clock serving stats
  LatencyRecorder latency;   // wall-clock enqueue -> completion
};

class Replica {
 public:
  Replica(int index, const ModelConfig& config, const ReplicaOptions& options);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  int index() const { return index_; }

  // Setup phase (before Start): register an adapter copy / pre-warm the
  // placement's home set onto the device.
  int AddAdapter(const LoraAdapter& adapter);
  void Prewarm(const std::vector<int>& adapter_ids);

  // Posts the worker loop; the pool must dedicate a thread to it.
  void Start(ThreadPool* pool);

  // Router-thread entry. Returns false when rejected (kReject and full, or
  // the replica is stopping).
  bool Enqueue(EngineRequest request);

  // Outstanding requests (queued + in-engine). Lock-free; the router's load
  // signal.
  int64_t Depth() const { return depth_.load(std::memory_order_relaxed); }

  // Blocks until every accepted request has finished.
  void WaitDrained();

  // Asks the worker loop to exit once drained and wakes blocked submitters.
  void RequestStop();

  // Moves out results accumulated since the last call.
  std::vector<EngineResult> TakeResults();

  // Consistent copy of the counters; safe while the worker runs.
  ReplicaSnapshot Snapshot();

  // Direct server access for tests; only valid when the replica is idle.
  VloraServer& server_for_testing() { return server_; }

 private:
  void WorkerLoop();

  const int index_;
  const int64_t queue_capacity_;
  const AdmissionPolicy admission_;
  VloraServer server_;
  Stopwatch clock_;

  std::mutex mutex_;
  std::condition_variable ingress_cv_;  // wakes the worker
  std::condition_variable space_cv_;    // wakes blocked submitters
  std::condition_variable drained_cv_;  // wakes WaitDrained
  struct Ingress {
    EngineRequest request;
    double enqueue_ms;
  };
  std::deque<Ingress> ingress_;
  int64_t in_server_ = 0;
  bool stop_requested_ = false;
  bool running_ = false;
  int64_t submitted_ = 0;
  int64_t completed_ = 0;
  int64_t rejected_ = 0;
  int64_t peak_depth_ = 0;
  std::vector<EngineResult> results_;
  LatencyRecorder latency_;

  std::mutex step_mutex_;  // serialises StepOnce vs Snapshot

  std::atomic<int64_t> depth_{0};

  // Worker-thread-only: wall enqueue time of requests inside the server.
  std::unordered_map<int64_t, double> enqueue_ms_;
};

}  // namespace vlora

#endif  // VLORA_SRC_CLUSTER_REPLICA_H_

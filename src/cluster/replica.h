// One serving replica: a VloraServer behind a bounded ingress queue, driven
// by a worker loop hosted on the cluster's ThreadPool.
//
// Threading model: the router thread calls Enqueue(); exactly one worker
// thread runs WorkerLoop(), which moves queued requests into the server and
// calls StepOnce() until the replica drains. The server itself is therefore
// single-threaded apart from its staged Submit. All cross-thread state
// (ingress queue, outstanding count, result buffer, latency recorder) is
// guarded by one mutex; stats snapshots serialise against StepOnce through a
// separate step mutex so they can be taken mid-run under TSan.
//
// Backpressure: `queue_capacity` bounds *outstanding* requests (queued +
// in-engine). kBlock makes Enqueue wait for space — the caller slows to the
// replica's service rate; kReject makes it fail fast and count the reject.
// Either way a saturating trace cannot grow replica memory without bound.
//
// Failure semantics: the worker loop consults an optional FaultInjector each
// iteration. An injected kill marks the replica dead and *fails over* every
// request it holds (queued and in-engine) through the failure handler —
// nothing is silently dropped; the cluster's recovery layer retries them on
// survivors. Injected request failures are reported the same way. On
// RequestStop the worker cancels queued-but-unstarted requests with
// Status::Cancelled (rather than serving a possibly long queue during
// shutdown) and finishes only what is already inside the engine. A heartbeat
// stamped each worker iteration lets the cluster health checker distinguish
// a stalled replica (queued work, stale heartbeat) from an idle one.

#ifndef VLORA_SRC_CLUSTER_REPLICA_H_
#define VLORA_SRC_CLUSTER_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/fault.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/sync.h"
#include "src/common/thread_pool.h"
#include "src/core/server.h"

namespace vlora {

enum class AdmissionPolicy {
  kBlock,   // Enqueue waits for queue space (lossless, caller-paced)
  kReject,  // Enqueue returns kFull when full (lossy, bounded latency)
};

enum class EnqueueResult {
  kAccepted,  // request queued
  kFull,      // admission rejected it (kReject, or a non-blocking attempt)
  kRefused,   // replica is dead or stopping; try another replica
};

struct ReplicaOptions {
  ServerOptions server;
  int64_t queue_capacity = 64;  // bound on outstanding requests
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  FaultInjector* fault = nullptr;  // not owned; hooks into the worker loop
};

struct ReplicaSnapshot {
  int index = 0;
  bool dead = false;
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t cancelled = 0;  // queued requests cancelled at shutdown
  int64_t failed = 0;     // injected request failures + failed over on death
  int64_t stolen = 0;     // queued requests reclaimed by the health checker
  int64_t stalls = 0;     // injected worker stalls served
  int64_t peak_depth = 0;
  ServerStats server;        // logical-clock serving stats
  LatencyRecorder latency;   // wall-clock enqueue -> completion
};

class Replica {
 public:
  // Called without the replica lock held; both must be set before Start and
  // be safe to invoke from the worker thread.
  using CompletionHandler = std::function<void(int replica, int64_t request_id)>;
  using FailureHandler = std::function<void(int replica, int64_t request_id, const Status&)>;

  Replica(int index, const ModelConfig& config, const ReplicaOptions& options);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  int index() const { return index_; }

  // Setup phase (before Start): register an adapter copy / pre-warm the
  // placement's home set onto the device.
  int AddAdapter(const LoraAdapter& adapter) VLORA_EXCLUDES(mutex_);
  void Prewarm(const std::vector<int>& adapter_ids) VLORA_EXCLUDES(mutex_);

  // Optional recovery wiring; may be left unset for standalone use.
  void SetHandlers(CompletionHandler on_complete, FailureHandler on_failure)
      VLORA_EXCLUDES(mutex_);

  // Posts the worker loop; the pool must dedicate a thread to it.
  void Start(ThreadPool* pool) VLORA_EXCLUDES(mutex_);

  // Router-thread entry. `never_block` turns a kBlock replica into fail-fast
  // for this one call (the supervisor's retry path must never block).
  [[nodiscard]] EnqueueResult Enqueue(EngineRequest request, bool never_block = false)
      VLORA_EXCLUDES(mutex_);

  // Outstanding requests (queued + in-engine). Lock-free; the router's load
  // signal.
  int64_t Depth() const { return depth_.load(std::memory_order_relaxed); }

  // True once an injected kill has fired; the replica accepts nothing more.
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  // Worker-loop liveness stamp on the replica's own clock. Advances every
  // iteration; stops during an injected stall and after death. Paired with
  // Depth() it is the health checker's stall signal.
  double HeartbeatMs() const { return heartbeat_ms_.load(std::memory_order_relaxed); }

  // Reclaims queued-but-unstarted requests (quarantine spill); the caller
  // re-routes them. In-engine requests cannot be reclaimed.
  [[nodiscard]] std::vector<EngineRequest> StealIngress() VLORA_EXCLUDES(mutex_);

  // Blocks until every accepted request has finished (or failed over).
  void WaitDrained() VLORA_EXCLUDES(mutex_);

  // Asks the worker loop to cancel queued work and exit once the engine is
  // empty; wakes blocked submitters and opens any fault-injector gate.
  void RequestStop() VLORA_EXCLUDES(mutex_);

  // Moves out results accumulated since the last call.
  [[nodiscard]] std::vector<EngineResult> TakeResults() VLORA_EXCLUDES(mutex_);

  // Consistent copy of the counters; safe while the worker runs.
  [[nodiscard]] ReplicaSnapshot Snapshot() VLORA_EXCLUDES(step_mutex_, mutex_);

  // Direct server access for tests; only valid when the replica is idle.
  VloraServer& server_for_testing() { return server_; }

 private:
  struct Ingress {
    EngineRequest request;
    double enqueue_ms;
  };

  void WorkerLoop() VLORA_EXCLUDES(mutex_, step_mutex_);
  // Injected-kill path: fails over everything held (worker thread only).
  void Die() VLORA_EXCLUDES(mutex_);
  void FailRequest(int64_t request_id, const Status& status) VLORA_EXCLUDES(mutex_);
  // Outstanding requests (queued + in-engine) under the lock; the source of
  // truth behind the lock-free depth_ mirror.
  int64_t DepthLocked() const VLORA_REQUIRES(mutex_) {
    return static_cast<int64_t>(ingress_.size()) + in_server_;
  }

  const int index_;
  const int64_t queue_capacity_;
  const AdmissionPolicy admission_;
  FaultInjector* const fault_;  // may be null
  VloraServer server_;
  Stopwatch clock_;
  CompletionHandler on_complete_;
  FailureHandler on_failure_;

  Mutex mutex_{Rank::kReplicaIngress, "Replica::mutex_"};
  CondVar ingress_cv_;  // wakes the worker
  CondVar space_cv_;    // wakes blocked submitters
  CondVar drained_cv_;  // wakes WaitDrained
  std::deque<Ingress> ingress_ VLORA_GUARDED_BY(mutex_);
  int64_t in_server_ VLORA_GUARDED_BY(mutex_) = 0;
  bool stop_requested_ VLORA_GUARDED_BY(mutex_) = false;
  bool running_ VLORA_GUARDED_BY(mutex_) = false;
  int64_t submitted_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t completed_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t rejected_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t cancelled_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t failed_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t stolen_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t stalls_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t peak_depth_ VLORA_GUARDED_BY(mutex_) = 0;
  std::vector<EngineResult> results_ VLORA_GUARDED_BY(mutex_);
  LatencyRecorder latency_ VLORA_GUARDED_BY(mutex_);

  // Serialises StepOnce vs Snapshot's server-stats copy. Lock order: always
  // taken before mutex_ (Snapshot), never the other way around — the rank
  // (kReplicaStep > kReplicaIngress) enforces it at runtime in debug builds.
  Mutex step_mutex_ VLORA_ACQUIRED_BEFORE(mutex_){Rank::kReplicaStep, "Replica::step_mutex_"};

  std::atomic<int64_t> depth_{0};
  std::atomic<bool> dead_{false};
  std::atomic<double> heartbeat_ms_{0.0};

  // Worker-thread-only: wall enqueue time of requests inside the server.
  std::unordered_map<int64_t, double> enqueue_ms_;
};

}  // namespace vlora

#endif  // VLORA_SRC_CLUSTER_REPLICA_H_

// The replica contract and its in-process implementation.
//
// `Replica` is the abstract surface the ClusterServer drives: setup
// (AddAdapter/Prewarm/SetHandlers), a Start that posts the replica's service
// loop onto the cluster's ThreadPool, the router-thread Enqueue with
// admission control, the health signals (Depth/dead/HeartbeatMs), and the
// recovery hooks (StealIngress on quarantine, completion/failure handlers).
// Two implementations exist:
//
//   ThreadReplica   (here)      a VloraServer behind a bounded ingress queue,
//                               driven by a worker loop in this process — the
//                               default and the test backend.
//   ProcessReplica  (process_replica.h)  the same contract over a forked
//                               executor process and the src/net wire
//                               protocol; real SIGKILLs instead of simulated
//                               ones.
//
// ThreadReplica threading model: the router thread calls Enqueue(); exactly
// one worker thread runs WorkerLoop(), which moves queued requests into the
// server and calls StepOnce() until the replica drains. The server itself is
// therefore single-threaded apart from its staged Submit. All cross-thread
// state (ingress queue, outstanding count, result buffer, latency recorder)
// is guarded by one mutex; stats snapshots serialise against StepOnce
// through a separate step mutex so they can be taken mid-run under TSan.
//
// Backpressure: `queue_capacity` bounds *outstanding* requests (queued +
// in-engine). kBlock makes Enqueue wait for space — the caller slows to the
// replica's service rate; kReject makes it fail fast and count the reject.
// Either way a saturating trace cannot grow replica memory without bound.
//
// Failure semantics: the worker loop consults an optional FaultInjector each
// iteration. An injected kill marks the replica dead and *fails over* every
// request it holds (queued and in-engine) through the failure handler —
// nothing is silently dropped; the cluster's recovery layer retries them on
// survivors. Injected request failures are reported the same way. On
// RequestStop the worker cancels queued-but-unstarted requests with
// Status::Cancelled (rather than serving a possibly long queue during
// shutdown) and finishes only what is already inside the engine. A heartbeat
// stamped each worker iteration lets the cluster health checker distinguish
// a stalled replica (queued work, stale heartbeat) from an idle one.

#ifndef VLORA_SRC_CLUSTER_REPLICA_H_
#define VLORA_SRC_CLUSTER_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/fault.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/sync.h"
#include "src/common/thread_pool.h"
#include "src/core/server.h"

namespace vlora {

enum class AdmissionPolicy {
  kBlock,   // Enqueue waits for queue space (lossless, caller-paced)
  kReject,  // Enqueue returns kFull when full (lossy, bounded latency)
};

enum class EnqueueResult {
  kAccepted,  // request queued
  kFull,      // admission rejected it (kReject, or a non-blocking attempt)
  kRefused,   // replica is dead or stopping; try another replica
};

// Which Replica implementation a cluster hosts.
enum class ReplicaBackend {
  kThread,   // in-process worker thread (default; deterministic tests)
  kProcess,  // forked executor process over the wire protocol
};

constexpr const char* ReplicaBackendName(ReplicaBackend backend) {
  switch (backend) {
    case ReplicaBackend::kThread:
      return "thread";
    case ReplicaBackend::kProcess:
      return "process";
  }
  return "?";
}

struct ReplicaOptions {
  ServerOptions server;
  int64_t queue_capacity = 64;  // bound on outstanding requests
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  FaultInjector* fault = nullptr;  // not owned; hooks into the worker loop
};

struct ReplicaSnapshot {
  int index = 0;
  const char* backend = "thread";
  bool dead = false;
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t cancelled = 0;  // queued requests cancelled at shutdown
  int64_t failed = 0;     // injected request failures + failed over on death
  int64_t stolen = 0;     // queued requests reclaimed by the health checker
  int64_t stalls = 0;     // injected worker stalls served
  int64_t handoffs = 0;   // prefill-only results diverted to the handoff handler
  int64_t peak_depth = 0;
  ServerStats server;        // logical-clock serving stats (thread backend only)
  LatencyRecorder latency;   // wall-clock enqueue -> completion
};

// Abstract replica driven by the ClusterServer. All methods are called from
// the master process: Enqueue from router threads, StealIngress and the
// health-signal getters from the supervisor, the rest from the setup /
// shutdown path. Handlers registered via SetHandlers are invoked with no
// replica lock held and may call back into the cluster layer.
class Replica {
 public:
  using CompletionHandler = std::function<void(int replica, int64_t request_id)>;
  using FailureHandler = std::function<void(int replica, int64_t request_id, const Status&)>;
  // Receives prefill-only results carrying a KvHandle (disaggregated mode).
  // Invoked from the replica's service thread with no replica lock held; the
  // result does NOT flow through TakeResults or the completion handler.
  using HandoffHandler = std::function<void(int replica, EngineResult result)>;

  explicit Replica(int index) : index_(index) {}
  virtual ~Replica() = default;

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  int index() const { return index_; }

  // Setup phase (before Start): register an adapter copy / pre-warm the
  // placement's home set onto the device. AddAdapter returns the id the
  // replica assigned (identical across replicas for identical call order).
  virtual int AddAdapter(const LoraAdapter& adapter) = 0;
  virtual void Prewarm(const std::vector<int>& adapter_ids) = 0;

  // Optional recovery wiring; may be left unset for standalone use. Both
  // handlers must be set before Start and be safe to invoke from the
  // replica's service thread.
  virtual void SetHandlers(CompletionHandler on_complete, FailureHandler on_failure) = 0;

  // Optional, disaggregated mode only; set before Start. When unset,
  // handle-carrying results take the ordinary completion path (the executor
  // relies on this to ship handles back over the wire).
  virtual void SetHandoffHandler(HandoffHandler on_handoff) = 0;

  // Posts the replica's service loop; the pool must dedicate a thread to it.
  virtual void Start(ThreadPool* pool) = 0;

  // Router-thread entry. `never_block` turns a kBlock replica into fail-fast
  // for this one call (the supervisor's retry path must never block).
  [[nodiscard]] virtual EnqueueResult Enqueue(EngineRequest request,
                                              bool never_block = false) = 0;

  // Outstanding requests (queued + in-flight). Lock-free; the router's load
  // signal.
  virtual int64_t Depth() const = 0;

  // True once the replica is permanently gone (injected kill, executor
  // death); it accepts nothing more.
  virtual bool dead() const = 0;

  // Service-loop liveness stamp. Advances while the replica makes progress;
  // stops during a stall and after death. Paired with Depth() it is the
  // health checker's stall signal.
  virtual double HeartbeatMs() const = 0;

  // Reclaims queued-but-unstarted requests (quarantine spill); the caller
  // re-routes them. Requests already executing cannot be reclaimed.
  [[nodiscard]] virtual std::vector<EngineRequest> StealIngress() = 0;

  // Blocks until every accepted request has finished (or failed over).
  virtual void WaitDrained() = 0;

  // Asks the replica to cancel queued work and wind down once in-flight
  // requests finish; wakes blocked submitters.
  virtual void RequestStop() = 0;

  // Moves out results accumulated since the last call.
  [[nodiscard]] virtual std::vector<EngineResult> TakeResults() = 0;

  // Consistent copy of the counters; safe while the replica serves.
  [[nodiscard]] virtual ReplicaSnapshot Snapshot() = 0;

 protected:
  const int index_;
};

// The in-process implementation (see the file comment for the threading and
// failure model).
class ThreadReplica : public Replica {
 public:
  ThreadReplica(int index, const ModelConfig& config, const ReplicaOptions& options);
  ~ThreadReplica() override;

  int AddAdapter(const LoraAdapter& adapter) override VLORA_EXCLUDES(mutex_);
  void Prewarm(const std::vector<int>& adapter_ids) override VLORA_EXCLUDES(mutex_);
  void SetHandlers(CompletionHandler on_complete, FailureHandler on_failure) override
      VLORA_EXCLUDES(mutex_);
  void SetHandoffHandler(HandoffHandler on_handoff) override VLORA_EXCLUDES(mutex_);
  void Start(ThreadPool* pool) override VLORA_EXCLUDES(mutex_);
  [[nodiscard]] EnqueueResult Enqueue(EngineRequest request, bool never_block) override
      VLORA_EXCLUDES(mutex_);
  int64_t Depth() const override { return depth_.load(std::memory_order_relaxed); }
  bool dead() const override { return dead_.load(std::memory_order_acquire); }
  double HeartbeatMs() const override { return heartbeat_ms_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::vector<EngineRequest> StealIngress() override VLORA_EXCLUDES(mutex_);
  void WaitDrained() override VLORA_EXCLUDES(mutex_);
  void RequestStop() override VLORA_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<EngineResult> TakeResults() override VLORA_EXCLUDES(mutex_);
  [[nodiscard]] ReplicaSnapshot Snapshot() override VLORA_EXCLUDES(step_mutex_, mutex_);

  // Direct server access for tests; only valid when the replica is idle.
  VloraServer& server_for_testing() { return server_; }

 private:
  struct Ingress {
    EngineRequest request;
    double enqueue_ms;
  };

  void WorkerLoop() VLORA_EXCLUDES(mutex_, step_mutex_) VLORA_HOT;
  // Injected-kill path: fails over everything held (worker thread only).
  void Die() VLORA_EXCLUDES(mutex_);
  void FailRequest(int64_t request_id, const Status& status) VLORA_EXCLUDES(mutex_);
  // Outstanding requests (queued + in-engine) under the lock; the source of
  // truth behind the lock-free depth_ mirror.
  int64_t DepthLocked() const VLORA_REQUIRES(mutex_) {
    return static_cast<int64_t>(ingress_.size()) + in_server_;
  }

  const int64_t queue_capacity_;
  const AdmissionPolicy admission_;
  FaultInjector* const fault_;  // may be null
  VloraServer server_;
  Stopwatch clock_;
  CompletionHandler on_complete_;
  FailureHandler on_failure_;
  HandoffHandler on_handoff_;

  Mutex mutex_{Rank::kReplicaIngress, "ThreadReplica::mutex_"};
  CondVar ingress_cv_;  // wakes the worker
  CondVar space_cv_;    // wakes blocked submitters
  CondVar drained_cv_;  // wakes WaitDrained
  std::deque<Ingress> ingress_ VLORA_GUARDED_BY(mutex_);
  int64_t in_server_ VLORA_GUARDED_BY(mutex_) = 0;
  bool stop_requested_ VLORA_GUARDED_BY(mutex_) = false;
  bool running_ VLORA_GUARDED_BY(mutex_) = false;
  int64_t submitted_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t completed_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t rejected_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t cancelled_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t failed_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t stolen_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t stalls_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t handoffs_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t peak_depth_ VLORA_GUARDED_BY(mutex_) = 0;
  std::vector<EngineResult> results_ VLORA_GUARDED_BY(mutex_);
  LatencyRecorder latency_ VLORA_GUARDED_BY(mutex_);

  // Serialises StepOnce vs Snapshot's server-stats copy. Lock order: always
  // taken before mutex_ (Snapshot), never the other way around — the rank
  // (kReplicaStep > kReplicaIngress) enforces it at runtime in debug builds.
  Mutex step_mutex_ VLORA_ACQUIRED_BEFORE(mutex_){Rank::kReplicaStep,
                                                  "ThreadReplica::step_mutex_"};

  // tools/atomics.toml: depth_/heartbeat_ms_ are `counter`s (monitoring
  // reads, nothing ordered through them); dead_ is a `flag` — the release
  // store in the worker publishes its final stats before the master acts.
  std::atomic<int64_t> depth_{0};
  std::atomic<bool> dead_{false};
  std::atomic<double> heartbeat_ms_{0.0};

  // Worker-thread-only: wall enqueue time of requests inside the server.
  std::unordered_map<int64_t, double> enqueue_ms_;
};

}  // namespace vlora

#endif  // VLORA_SRC_CLUSTER_REPLICA_H_

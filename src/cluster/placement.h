// Adapter-to-replica placement for the cluster serving layer.
//
// Every replica registers every adapter (host copies are cheap; the device
// pool is the scarce resource), so placement decides *residency affinity*:
// which replicas pre-warm an adapter onto the device and advertise it to the
// affinity router. Following InfiniLoRA-style disaggregated multi-LoRA
// serving, the hot set — adapters whose request share clears a threshold,
// e.g. the skew head the workload generator produces — is replicated on every
// replica, while the cold tail is partitioned, each adapter homed on the
// replica with the least cumulative request share (greedy balance,
// hottest-first). Routing to a home replica finds the adapter already
// device-resident, keeping swap traffic off the critical path.

#ifndef VLORA_SRC_CLUSTER_PLACEMENT_H_
#define VLORA_SRC_CLUSTER_PLACEMENT_H_

#include <string>
#include <vector>

namespace vlora {

struct PlacementOptions {
  // Request share at or above which an adapter joins the replicated hot set.
  double hot_share_threshold = 0.10;
  // Upper bound on the hot set, whatever the shares say; device pools are
  // finite and every hot adapter occupies them on all replicas.
  int max_hot = 2;
};

class AdapterPlacement {
 public:
  // Uninitialised placement: no adapters, no homes. Compute() builds one.
  AdapterPlacement() = default;

  // `shares` is AdapterShares() over the (expected) trace; index = adapter id.
  static AdapterPlacement Compute(const std::vector<double>& shares, int num_replicas,
                                  const PlacementOptions& options = {});

  int num_adapters() const { return static_cast<int>(homes_.size()); }
  int num_replicas() const { return num_replicas_; }

  // Replica indices homing this adapter, ascending. Empty for unknown ids
  // (e.g. adapter -1 = base model), which routes by load alone.
  const std::vector<int>& HomesOf(int adapter_id) const;
  // Adapter ids homed on this replica, ascending.
  const std::vector<int>& AdaptersOf(int replica) const;
  bool IsHome(int adapter_id, int replica) const;
  bool IsHot(int adapter_id) const;

  // Cumulative request share assigned to a replica (hot shares split evenly).
  double ReplicaShare(int replica) const;

  std::string ToString() const;  // one line per replica, for bench output

 private:
  int num_replicas_ = 0;
  std::vector<std::vector<int>> homes_;     // adapter id -> replicas
  std::vector<std::vector<int>> adapters_;  // replica -> adapter ids
  std::vector<bool> hot_;                   // adapter id -> in hot set
  std::vector<double> replica_share_;
};

}  // namespace vlora

#endif  // VLORA_SRC_CLUSTER_PLACEMENT_H_

// Adapter-to-replica placement for the cluster serving layer.
//
// Every replica registers every adapter (host copies are cheap; the device
// pool is the scarce resource), so placement decides *residency affinity*:
// which replicas pre-warm an adapter onto the device and advertise it to the
// affinity router. Following InfiniLoRA-style disaggregated multi-LoRA
// serving, the hot set — adapters whose request share clears a threshold,
// e.g. the skew head the workload generator produces — is replicated on every
// replica, while the cold tail is partitioned, each adapter homed on the
// replica with the least cumulative request share (greedy balance,
// hottest-first). Routing to a home replica finds the adapter already
// device-resident, keeping swap traffic off the critical path.
//
// Failure recovery: Rebalance(dead_replica) removes a replica from the plan.
// Hot adapters simply lose one of their homes; cold adapters homed only on
// the dead replica are re-homed greedily (hottest first) onto the surviving
// replica with the least cumulative share. As long as one replica lives,
// every adapter keeps at least one home — the invariant the property test
// checks under random death sequences.

#ifndef VLORA_SRC_CLUSTER_PLACEMENT_H_
#define VLORA_SRC_CLUSTER_PLACEMENT_H_

#include <string>
#include <vector>

namespace vlora {

struct PlacementOptions {
  // Request share at or above which an adapter joins the replicated hot set.
  double hot_share_threshold = 0.10;
  // Upper bound on the hot set, whatever the shares say; device pools are
  // finite and every hot adapter occupies them on all replicas.
  int max_hot = 2;
};

class AdapterPlacement {
 public:
  // Uninitialised placement: no adapters, no homes. Compute() builds one.
  AdapterPlacement() = default;

  // `shares` is AdapterShares() over the (expected) trace; index = adapter id.
  static AdapterPlacement Compute(const std::vector<double>& shares, int num_replicas,
                                  const PlacementOptions& options = {});

  int num_adapters() const { return static_cast<int>(homes_.size()); }
  int num_replicas() const { return num_replicas_; }

  // Replica indices homing this adapter, ascending. Empty for unknown ids
  // (e.g. adapter -1 = base model), which routes by load alone.
  const std::vector<int>& HomesOf(int adapter_id) const;
  // Adapter ids homed on this replica, ascending.
  const std::vector<int>& AdaptersOf(int replica) const;
  bool IsHome(int adapter_id, int replica) const;
  bool IsHot(int adapter_id) const;

  // Cumulative request share assigned to a replica (hot shares split over
  // the homes that actually carry them).
  double ReplicaShare(int replica) const;

  // Removes a dead replica from the plan and re-homes its orphaned cold
  // adapters onto the surviving replica with the least cumulative share
  // (hottest first, ties to the lowest index — deterministic). Idempotent;
  // a no-op on an uninitialised placement. At least one replica must remain
  // alive once any adapter is placed.
  void Rebalance(int dead_replica);

  bool IsReplicaLive(int replica) const;
  int num_live_replicas() const { return num_live_; }

  std::string ToString() const;  // one line per replica, for bench output

 private:
  void RehomeColdAdapter(int adapter);

  int num_replicas_ = 0;
  int num_live_ = 0;
  std::vector<double> shares_;              // adapter id -> request share
  std::vector<std::vector<int>> homes_;     // adapter id -> replicas
  std::vector<std::vector<int>> adapters_;  // replica -> adapter ids
  std::vector<bool> hot_;                   // adapter id -> in hot set
  std::vector<bool> live_;                  // replica -> not declared dead
  std::vector<double> replica_share_;
};

}  // namespace vlora

#endif  // VLORA_SRC_CLUSTER_PLACEMENT_H_

#include "src/cluster/placement.h"

#include <algorithm>
#include <sstream>

#include "src/common/status.h"
#include "src/workload/trace_gen.h"

namespace vlora {

AdapterPlacement AdapterPlacement::Compute(const std::vector<double>& shares, int num_replicas,
                                           const PlacementOptions& options) {
  VLORA_CHECK(num_replicas >= 1);
  AdapterPlacement placement;
  placement.num_replicas_ = num_replicas;
  placement.num_live_ = num_replicas;
  placement.shares_ = shares;
  placement.homes_.assign(shares.size(), {});
  placement.adapters_.assign(static_cast<size_t>(num_replicas), {});
  placement.hot_.assign(shares.size(), false);
  placement.live_.assign(static_cast<size_t>(num_replicas), true);
  placement.replica_share_.assign(static_cast<size_t>(num_replicas), 0.0);

  const std::vector<int> by_popularity = AdaptersByPopularity(shares);

  // Hot set: replicated everywhere, its share spread evenly.
  int hot_count = 0;
  for (int adapter : by_popularity) {
    if (hot_count >= options.max_hot ||
        shares[static_cast<size_t>(adapter)] < options.hot_share_threshold) {
      break;  // by_popularity is descending, so nothing later qualifies
    }
    placement.hot_[static_cast<size_t>(adapter)] = true;
    ++hot_count;
    for (int replica = 0; replica < num_replicas; ++replica) {
      placement.homes_[static_cast<size_t>(adapter)].push_back(replica);
      placement.adapters_[static_cast<size_t>(replica)].push_back(adapter);
      placement.replica_share_[static_cast<size_t>(replica)] +=
          shares[static_cast<size_t>(adapter)] / num_replicas;
    }
  }

  // Cold tail: hottest-first greedy onto the least-loaded replica, ties to
  // the lowest index — deterministic for a fixed share vector.
  for (int adapter : by_popularity) {
    if (placement.hot_[static_cast<size_t>(adapter)]) {
      continue;
    }
    int target = 0;
    for (int replica = 1; replica < num_replicas; ++replica) {
      if (placement.replica_share_[static_cast<size_t>(replica)] <
          placement.replica_share_[static_cast<size_t>(target)]) {
        target = replica;
      }
    }
    placement.homes_[static_cast<size_t>(adapter)].push_back(target);
    placement.adapters_[static_cast<size_t>(target)].push_back(adapter);
    placement.replica_share_[static_cast<size_t>(target)] += shares[static_cast<size_t>(adapter)];
  }

  for (auto& list : placement.adapters_) {
    std::sort(list.begin(), list.end());
  }
  return placement;
}

const std::vector<int>& AdapterPlacement::HomesOf(int adapter_id) const {
  static const std::vector<int> kNone;
  if (adapter_id < 0 || adapter_id >= num_adapters()) {
    return kNone;
  }
  return homes_[static_cast<size_t>(adapter_id)];
}

const std::vector<int>& AdapterPlacement::AdaptersOf(int replica) const {
  VLORA_CHECK(replica >= 0 && replica < num_replicas_);
  return adapters_[static_cast<size_t>(replica)];
}

bool AdapterPlacement::IsHome(int adapter_id, int replica) const {
  const std::vector<int>& homes = HomesOf(adapter_id);
  return std::binary_search(homes.begin(), homes.end(), replica);
}

bool AdapterPlacement::IsHot(int adapter_id) const {
  return adapter_id >= 0 && adapter_id < num_adapters() && hot_[static_cast<size_t>(adapter_id)];
}

double AdapterPlacement::ReplicaShare(int replica) const {
  VLORA_CHECK(replica >= 0 && replica < num_replicas_);
  return replica_share_[static_cast<size_t>(replica)];
}

bool AdapterPlacement::IsReplicaLive(int replica) const {
  VLORA_CHECK(replica >= 0 && replica < num_replicas_);
  return live_[static_cast<size_t>(replica)];
}

void AdapterPlacement::RehomeColdAdapter(int adapter) {
  int target = -1;
  for (int replica = 0; replica < num_replicas_; ++replica) {
    if (!live_[static_cast<size_t>(replica)]) {
      continue;
    }
    if (target < 0 || replica_share_[static_cast<size_t>(replica)] <
                          replica_share_[static_cast<size_t>(target)]) {
      target = replica;
    }
  }
  VLORA_CHECK(target >= 0);
  homes_[static_cast<size_t>(adapter)].push_back(target);
  std::sort(homes_[static_cast<size_t>(adapter)].begin(),
            homes_[static_cast<size_t>(adapter)].end());
  adapters_[static_cast<size_t>(target)].push_back(adapter);
  std::sort(adapters_[static_cast<size_t>(target)].begin(),
            adapters_[static_cast<size_t>(target)].end());
  replica_share_[static_cast<size_t>(target)] += shares_[static_cast<size_t>(adapter)];
}

void AdapterPlacement::Rebalance(int dead_replica) {
  if (num_replicas_ == 0) {
    return;  // uninitialised placement: nothing to re-home
  }
  VLORA_CHECK(dead_replica >= 0 && dead_replica < num_replicas_);
  if (!live_[static_cast<size_t>(dead_replica)]) {
    return;  // already handled
  }
  live_[static_cast<size_t>(dead_replica)] = false;
  --num_live_;
  VLORA_CHECK(num_live_ >= 1);

  // Strip the dead replica from every adapter's home list and collect the
  // orphans (cold adapters homed only there), hottest first so the greedy
  // re-homing below stays balanced.
  std::vector<int> orphans;
  for (int adapter : adapters_[static_cast<size_t>(dead_replica)]) {
    std::vector<int>& homes = homes_[static_cast<size_t>(adapter)];
    homes.erase(std::remove(homes.begin(), homes.end(), dead_replica), homes.end());
    if (homes.empty()) {
      orphans.push_back(adapter);
    }
  }
  adapters_[static_cast<size_t>(dead_replica)].clear();
  replica_share_[static_cast<size_t>(dead_replica)] = 0.0;
  std::sort(orphans.begin(), orphans.end(), [this](int a, int b) {
    const double share_a = shares_[static_cast<size_t>(a)];
    const double share_b = shares_[static_cast<size_t>(b)];
    return share_a != share_b ? share_a > share_b : a < b;
  });
  for (int adapter : orphans) {
    RehomeColdAdapter(adapter);
  }
}

std::string AdapterPlacement::ToString() const {
  std::ostringstream out;
  for (int replica = 0; replica < num_replicas_; ++replica) {
    out << "replica " << replica << (live_[static_cast<size_t>(replica)] ? "" : " (dead)")
        << " (share "
        << static_cast<int>(replica_share_[static_cast<size_t>(replica)] * 100.0 + 0.5)
        << "%):";
    for (int adapter : adapters_[static_cast<size_t>(replica)]) {
      out << " " << adapter << (hot_[static_cast<size_t>(adapter)] ? "*" : "");
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace vlora

// ProcessReplica: the Replica contract over a forked executor process.
//
// The constructor binds a listening socket (Unix-domain by default, TCP
// loopback on request), forks `executor_path` with --connect/--replica
// flags, accepts its connection, and runs the lock-step handshake
// (Hello <- / Config -> Ack <-). Setup calls (AddAdapter / Prewarm) are
// synchronous request/Ack exchanges on the calling thread; after Start the
// connection switches to pipelined mode: requests flow out as the master
// pumps its ingress queue into an inflight window, and a dedicated reader
// loop (posted to the cluster ThreadPool, like ThreadReplica's worker)
// consumes Result / Failure / Heartbeat / Goodbye frames.
//
// Threading model (all in the master process):
//   * router threads call Enqueue; admission and the ingress queue mirror
//     ThreadReplica exactly (same kBlock/kReject semantics, same
//     EmitEnqueued trace point).
//   * one reader thread owns channel_.Recv(); it updates the inflight table,
//     records latency, re-pumps the window, and invokes the completion /
//     failure handlers with no lock held.
//   * the supervisor thread reads Depth/dead/HeartbeatMs and calls
//     StealIngress on quarantine — identical surface to ThreadReplica, so
//     the ClusterServer's health checker needs no backend branches.
//
// Failure semantics — suspicion before conviction. When the reader hits
// connection loss (a real SIGKILL of the executor) while requests are
// outstanding, the replica does NOT immediately mark itself dead: it freezes
// the heartbeat and sets a "lost" flag, so the supervisor sees exactly the
// stalled-replica signature (depth > 0, stale heartbeat) and runs the normal
// quarantine path. Its StealIngress first drains the master-side queue, then
// convicts: marks the replica dead and fails over the inflight window
// through the failure handler, feeding the existing retry machinery. The
// next health tick observes `dead` and rebalances placement. Connection loss
// with nothing outstanding (clean Goodbye or idle crash) convicts
// immediately — there is no work to recover, so no quarantine detour.
//
// Heartbeats ride the wire: the executor periodically reports its worker
// loop's liveness stamp, and the master republishes the *local receive time*
// so the staleness clock never compares timestamps across processes.

#ifndef VLORA_SRC_CLUSTER_PROCESS_REPLICA_H_
#define VLORA_SRC_CLUSTER_PROCESS_REPLICA_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/replica.h"
#include "src/common/fault.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/sync.h"
#include "src/net/channel.h"
#include "src/net/fd.h"

namespace vlora {

struct ProcessReplicaOptions {
  ServerOptions server;
  std::string executor_path;  // empty -> DefaultExecutorPath()
  net::Transport transport = net::Transport::kUnix;
  int64_t queue_capacity = 64;  // master-side bound on outstanding requests
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  // Requests allowed on the wire at once; the rest wait in the master-side
  // ingress queue where StealIngress can still reclaim them.
  int64_t max_inflight = 8;
  double heartbeat_period_ms = 20.0;  // executor's reporting period
  double stop_grace_ms = 2000.0;      // wait for Goodbye before SIGKILL
  double connect_timeout_ms = 15000.0;
  FaultInjector* fault = nullptr;  // not owned; kKillProcess faults only
};

class ProcessReplica : public Replica {
 public:
  // Spawns and handshakes the executor; aborts via VLORA_CHECK on spawn or
  // protocol failure (construction happens before any workload is accepted,
  // so there is nothing to recover).
  ProcessReplica(int index, const ModelConfig& config, const ProcessReplicaOptions& options);
  ~ProcessReplica() override;

  int AddAdapter(const LoraAdapter& adapter) override VLORA_EXCLUDES(mutex_);
  void Prewarm(const std::vector<int>& adapter_ids) override VLORA_EXCLUDES(mutex_);
  void SetHandlers(CompletionHandler on_complete, FailureHandler on_failure) override
      VLORA_EXCLUDES(mutex_);
  void SetHandoffHandler(HandoffHandler on_handoff) override VLORA_EXCLUDES(mutex_);
  void Start(ThreadPool* pool) override VLORA_EXCLUDES(mutex_);
  [[nodiscard]] EnqueueResult Enqueue(EngineRequest request, bool never_block) override
      VLORA_EXCLUDES(mutex_);
  int64_t Depth() const override { return depth_.load(std::memory_order_relaxed); }
  bool dead() const override { return dead_.load(std::memory_order_acquire); }
  double HeartbeatMs() const override { return heartbeat_ms_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::vector<EngineRequest> StealIngress() override VLORA_EXCLUDES(mutex_);
  void WaitDrained() override VLORA_EXCLUDES(mutex_);
  void RequestStop() override VLORA_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<EngineResult> TakeResults() override VLORA_EXCLUDES(mutex_);
  [[nodiscard]] ReplicaSnapshot Snapshot() override VLORA_EXCLUDES(mutex_);

  // Executor pid, for tests that deliver a real SIGKILL from outside.
  pid_t executor_pid() const { return pid_; }

  // Resolves the executor binary: $VLORA_EXECUTOR if set, otherwise probes
  // paths relative to /proc/self/exe (same directory, then the build tree's
  // src/cluster/). Empty string when nothing is found.
  static std::string DefaultExecutorPath();
  static bool ExecutorAvailable() { return !DefaultExecutorPath().empty(); }

 private:
  struct Ingress {
    EngineRequest request;
    double enqueue_ms;
  };

  void SpawnAndHandshake(const ModelConfig& config);
  void ReaderLoop() VLORA_EXCLUDES(mutex_);
  void OnResult(EngineResult result) VLORA_EXCLUDES(mutex_);
  // Moves ingress into the inflight window (up to max_inflight) and ships
  // the frames. Sends happen outside mutex_; a send failure is ignored here
  // because the reader observes the same broken connection and owns the
  // recovery path.
  void Pump() VLORA_EXCLUDES(mutex_);
  // Connection gone while requests are outstanding: freeze the heartbeat and
  // wait for the supervisor's quarantine to call StealIngress (see the file
  // comment). With nothing outstanding, convicts immediately.
  void HandleConnectionLost() VLORA_EXCLUDES(mutex_);
  // Conviction: mark dead, fail over the inflight window, reap the child.
  void MarkDeadAndFailOver() VLORA_EXCLUDES(mutex_);
  void FailRequest(int64_t request_id, const Status& status);
  void KillExecutor() VLORA_EXCLUDES(child_mutex_);         // SIGKILL if unreaped
  void ReapChild(bool block) VLORA_EXCLUDES(child_mutex_);  // waitpid bookkeeping
  int64_t DepthLocked() const VLORA_REQUIRES(mutex_) {
    return static_cast<int64_t>(ingress_.size() + inflight_.size());
  }

  const int64_t queue_capacity_;
  const AdmissionPolicy admission_;
  const int64_t max_inflight_;
  const double stop_grace_ms_;
  const double heartbeat_period_ms_;
  FaultInjector* const fault_;  // may be null
  const ProcessReplicaOptions options_;
  Stopwatch clock_;
  CompletionHandler on_complete_;
  FailureHandler on_failure_;
  HandoffHandler on_handoff_;
  bool reader_started_ = false;  // set in Start, read in the destructor

  std::string socket_path_;  // unix transport: unlinked on destruction
  std::unique_ptr<net::Channel> channel_;

  // Guards the child pid's kill/reap lifecycle (reader, supervisor, and
  // destructor can all race to it). Terminal lock: nothing is acquired
  // under it.
  Mutex child_mutex_{Rank::kLeaf, "ProcessReplica::child_mutex_"};
  pid_t pid_ = -1;
  bool child_reaped_ VLORA_GUARDED_BY(child_mutex_) = false;

  Mutex mutex_{Rank::kReplicaIngress, "ProcessReplica::mutex_"};
  CondVar space_cv_;    // wakes blocked submitters
  CondVar drained_cv_;  // wakes WaitDrained
  std::deque<Ingress> ingress_ VLORA_GUARDED_BY(mutex_);
  // Requests on the wire: id -> master-side enqueue time. Ordered so
  // fail-over walks ids deterministically.
  std::map<int64_t, double> inflight_ VLORA_GUARDED_BY(mutex_);
  bool stop_requested_ VLORA_GUARDED_BY(mutex_) = false;
  bool running_ VLORA_GUARDED_BY(mutex_) = false;
  bool lost_ VLORA_GUARDED_BY(mutex_) = false;       // connection gone
  bool convicted_ VLORA_GUARDED_BY(mutex_) = false;  // fail-over has run
  int64_t submitted_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t completed_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t rejected_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t cancelled_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t failed_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t stolen_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t handoffs_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t peak_depth_ VLORA_GUARDED_BY(mutex_) = 0;
  std::vector<EngineResult> results_ VLORA_GUARDED_BY(mutex_);
  LatencyRecorder latency_ VLORA_GUARDED_BY(mutex_);

  // tools/atomics.toml: depth_/heartbeat_ms_ are `counter`s; dead_ and
  // reader_done_ are `flag`s whose release stores publish the reader
  // thread's final drain before the master joins it.
  std::atomic<int64_t> depth_{0};
  std::atomic<bool> dead_{false};
  std::atomic<double> heartbeat_ms_{0.0};
  std::atomic<bool> reader_done_{false};
};

}  // namespace vlora

#endif  // VLORA_SRC_CLUSTER_PROCESS_REPLICA_H_

#include "src/cluster/process_replica.h"

#include <limits.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/trace.h"

namespace vlora {
namespace {

// Distinguishes the unix socket files of replicas created back-to-back (a
// destroyed replica's path may not be unlinked yet when its successor binds).
// `counter` protocol (tools/atomics.toml): only uniqueness matters.
std::atomic<int64_t> g_socket_sequence{0};

std::string ExeDirectory() {
  char buf[PATH_MAX];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    return std::string();
  }
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool Executable(const std::string& path) {
  return !path.empty() && ::access(path.c_str(), X_OK) == 0;
}

}  // namespace

std::string ProcessReplica::DefaultExecutorPath() {
  const char* env = ::getenv("VLORA_EXECUTOR");  // vlora-lint: allow(getenv-outside-init) runs once, at replica spawn; the name describes the probe, not the phase
  if (env != nullptr && Executable(env)) {
    return env;
  }
  const std::string dir = ExeDirectory();
  if (dir.empty()) {
    return std::string();
  }
  // Probe relative to the running binary: a test lives in build/tests/, a
  // bench in build/bench/, the executor itself in build/src/cluster/.
  const std::string candidates[] = {
      dir + "/vlora_executor",
      dir + "/../src/cluster/vlora_executor",
      dir + "/../../src/cluster/vlora_executor",
  };
  for (const std::string& candidate : candidates) {
    if (Executable(candidate)) {
      return candidate;
    }
  }
  return std::string();
}

ProcessReplica::ProcessReplica(int index, const ModelConfig& config,
                               const ProcessReplicaOptions& options)
    : Replica(index),
      queue_capacity_(options.queue_capacity),
      admission_(options.admission),
      max_inflight_(options.max_inflight),
      stop_grace_ms_(options.stop_grace_ms),
      heartbeat_period_ms_(options.heartbeat_period_ms),
      fault_(options.fault),
      options_(options) {
  VLORA_CHECK(queue_capacity_ >= 1);
  VLORA_CHECK(max_inflight_ >= 1);
  SpawnAndHandshake(config);
}

void ProcessReplica::SpawnAndHandshake(const ModelConfig& config) {
  std::string executor = options_.executor_path;
  if (executor.empty()) {
    executor = DefaultExecutorPath();
  }
  VLORA_CHECK(!executor.empty());  // see ExecutorAvailable()

  net::SocketAddress address;
  if (options_.transport == net::Transport::kUnix) {
    socket_path_ = "/tmp/vlora-exec-" + std::to_string(::getpid()) + "-" +
                   std::to_string(index_) + "-" +
                   std::to_string(g_socket_sequence.fetch_add(
                       1, std::memory_order_relaxed)) +
                   ".sock";
    address = net::SocketAddress::Unix(socket_path_);
  } else {
    address = net::SocketAddress::Tcp("127.0.0.1", 0);
  }
  Result<net::Fd> listener = net::Listen(address);
  VLORA_CHECK(listener.ok());
  if (options_.transport == net::Transport::kTcp) {
    Result<int> port = net::BoundTcpPort(listener.value());
    VLORA_CHECK(port.ok());
    address.port = port.value();
  }

  // argv is fully built before fork: between fork and exec only
  // async-signal-safe calls are allowed in a threaded parent.
  const std::string connect_arg = "--connect=" + address.ToString();
  const std::string replica_arg = "--replica=" + std::to_string(index_);
  char* const argv[] = {const_cast<char*>(executor.c_str()),
                        const_cast<char*>(connect_arg.c_str()),
                        const_cast<char*>(replica_arg.c_str()), nullptr};
  const pid_t pid = ::fork();
  VLORA_CHECK(pid >= 0);
  if (pid == 0) {
    ::execv(executor.c_str(), argv);
    ::_exit(127);  // exec failed; the parent sees it as a connect timeout
  }
  pid_ = pid;

  Result<net::Fd> accepted = net::AcceptWithTimeout(listener.value(), options_.connect_timeout_ms);
  VLORA_CHECK(accepted.ok());
  channel_ = std::make_unique<net::Channel>(std::move(accepted.value()));

  Result<net::HelloMessage> hello = channel_->RecvMsg<net::HelloMessage>();
  VLORA_CHECK(hello.ok());
  VLORA_CHECK(hello.value().replica == index_);
  VLORA_CHECK(hello.value().pid == static_cast<int64_t>(pid_));

  // The executor's own queue only ever holds the inflight window; the big
  // master-side queue is what StealIngress can still reclaim.
  const net::ConfigMessage cfg = net::ConfigMessage::FromOptions(
      config, options_.server, max_inflight_, heartbeat_period_ms_);
  VLORA_CHECK(channel_->SendMsg(cfg).ok());
  Result<net::AckMessage> ack = channel_->RecvMsg<net::AckMessage>();
  VLORA_CHECK(ack.ok());
  VLORA_CHECK(ack.value().code == StatusCode::kOk);
}

ProcessReplica::~ProcessReplica() {
  RequestStop();
  if (reader_started_) {
    // The reader owns the connection teardown; its exit is bounded by the
    // stop grace (SO_RCVTIMEO armed in RequestStop) plus SIGKILL escalation.
    VLORA_BLOCKING_REGION(nullptr, "ProcessReplica::~ProcessReplica");
    while (!reader_done_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  KillExecutor();
  ReapChild(/*block=*/true);
  if (!socket_path_.empty()) {
    net::UnlinkSocketFile(socket_path_);
  }
}

int ProcessReplica::AddAdapter(const LoraAdapter& adapter) {
  {
    MutexLock lock(&mutex_);
    VLORA_CHECK(!running_);
  }
  net::WireWriter writer;
  net::AppendAdapter(writer, adapter);
  VLORA_CHECK(channel_->Send(net::MessageType::kLoadAdapter, writer.Take()).ok());
  Result<net::AckMessage> ack = channel_->RecvMsg<net::AckMessage>();
  VLORA_CHECK(ack.ok());
  VLORA_CHECK(ack.value().code == StatusCode::kOk);
  return ack.value().value;
}

void ProcessReplica::Prewarm(const std::vector<int>& adapter_ids) {
  {
    MutexLock lock(&mutex_);
    VLORA_CHECK(!running_);
  }
  net::PrewarmMessage message;
  message.adapter_ids.assign(adapter_ids.begin(), adapter_ids.end());
  VLORA_CHECK(channel_->SendMsg(message).ok());
  Result<net::AckMessage> ack = channel_->RecvMsg<net::AckMessage>();
  VLORA_CHECK(ack.ok());
  VLORA_CHECK(ack.value().code == StatusCode::kOk);
}

void ProcessReplica::SetHandlers(CompletionHandler on_complete, FailureHandler on_failure) {
  {
    MutexLock lock(&mutex_);
    VLORA_CHECK(!running_);
  }
  on_complete_ = std::move(on_complete);
  on_failure_ = std::move(on_failure);
}

void ProcessReplica::SetHandoffHandler(HandoffHandler on_handoff) {
  {
    MutexLock lock(&mutex_);
    VLORA_CHECK(!running_);
  }
  on_handoff_ = std::move(on_handoff);
}

void ProcessReplica::Start(ThreadPool* pool) {
  VLORA_CHECK(pool != nullptr);
  {
    MutexLock lock(&mutex_);
    VLORA_CHECK(!running_);
    running_ = true;
  }
  VLORA_CHECK(channel_->SendMsg(net::StartMessage{}).ok());
  heartbeat_ms_.store(clock_.ElapsedMillis(), std::memory_order_relaxed);
  reader_started_ = true;
  pool->Post([this] { ReaderLoop(); });
}

EnqueueResult ProcessReplica::Enqueue(EngineRequest request, bool never_block) {
  if (admission_ == AdmissionPolicy::kBlock && !never_block) {
    VLORA_BLOCKING_REGION(nullptr, "ProcessReplica::Enqueue(kBlock)");
  }
  const int64_t request_id = request.id;
  const int adapter_id = request.adapter_id;
  const bool decode_stage = request.resume_handle != nullptr;
  {
    MutexLock lock(&mutex_);
    if (stop_requested_ || lost_ || dead_.load(std::memory_order_acquire)) {
      return EnqueueResult::kRefused;
    }
    if (admission_ == AdmissionPolicy::kReject || never_block) {
      if (DepthLocked() >= queue_capacity_) {
        if (admission_ == AdmissionPolicy::kReject) {
          ++rejected_;
        }
        return EnqueueResult::kFull;
      }
    } else {
      while (!stop_requested_ && !lost_ && !dead_.load(std::memory_order_acquire) &&
             DepthLocked() >= queue_capacity_) {
        space_cv_.Wait(mutex_);
      }
      if (stop_requested_ || lost_ || dead_.load(std::memory_order_acquire)) {
        return EnqueueResult::kRefused;
      }
    }
    ingress_.push_back(Ingress{std::move(request), clock_.ElapsedMillis()});
    ++submitted_;
    const int64_t new_depth = DepthLocked();
    peak_depth_ = std::max(peak_depth_, new_depth);
    depth_.store(new_depth, std::memory_order_relaxed);
  }
  trace::EmitEnqueued(request_id, adapter_id, index_);
  if (decode_stage) {
    trace::EmitDecodeEnqueued(request_id, adapter_id, index_);
  }
  Pump();
  return EnqueueResult::kAccepted;
}

void ProcessReplica::Pump() {
  std::vector<EngineRequest> to_send;
  {
    MutexLock lock(&mutex_);
    if (lost_ || convicted_ || !running_) {
      return;
    }
    while (!ingress_.empty() && static_cast<int64_t>(inflight_.size()) < max_inflight_) {
      Ingress item = std::move(ingress_.front());
      ingress_.pop_front();
      inflight_.emplace(item.request.id, item.enqueue_ms);
      to_send.push_back(std::move(item.request));
    }
  }
  for (EngineRequest& request : to_send) {
    if (request.resume_handle != nullptr) {
      // Decode-stage resume: the KvHandle's frames must precede the Request
      // frame that references them; Channel sends are whole-frame FIFO, so
      // the executor finishes assembly before it sees the request.
      (void)net::SendKvHandle(*channel_, *request.resume_handle);
    }
    net::RequestMessage message;
    message.request = std::move(request);
    // A send failure is deliberately ignored: the reader sees the same
    // broken connection and owns the recovery path; the request stays in
    // the inflight table and is failed over at conviction.
    (void)channel_->SendMsg(message);
  }
}

void ProcessReplica::ReaderLoop() {
  trace::SetCurrentReplica(index_);
  // Disagg KvHandle assembly, keyed by request id: a KvHandleMeta frame
  // opens an entry, KvPage frames fill it, the Result frame that expects it
  // closes it. Recv is single-consumer, so the map is reader-thread-local.
  struct Assembly {
    std::shared_ptr<KvHandle> handle;
    int64_t remaining = 0;  // pages still missing
  };
  std::map<int64_t, Assembly> assembling;
  for (;;) {
    Result<net::Envelope> envelope = channel_->Recv();
    if (!envelope.ok()) {
      bool stopping = false;
      {
        MutexLock lock(&mutex_);
        stopping = stop_requested_;
      }
      if (envelope.status().code() == StatusCode::kDeadlineExceeded && stopping) {
        // Stop grace elapsed without a Goodbye: escalate.
        KillExecutor();
      }
      HandleConnectionLost();
      reader_done_.store(true, std::memory_order_release);
      return;
    }
    switch (envelope.value().type) {
      case net::MessageType::kHeartbeat: {
        Result<net::HeartbeatMessage> hb = net::DecodeAs<net::HeartbeatMessage>(envelope.value());
        if (!hb.ok()) {
          break;
        }
        // Republish the *local receive time*: the staleness clock must never
        // compare timestamps across processes. A wedged executor stops
        // sending, so the stamp freezes exactly like a stalled worker's.
        heartbeat_ms_.store(clock_.ElapsedMillis(), std::memory_order_relaxed);
        continue;
      }
      case net::MessageType::kKvHandleMeta: {
        Result<net::KvHandleMetaMessage> msg =
            net::DecodeAs<net::KvHandleMetaMessage>(envelope.value());
        if (!msg.ok()) {
          break;
        }
        Assembly assembly;
        assembly.handle = std::make_shared<KvHandle>();
        msg.value().ToHandle(assembly.handle.get());
        assembly.remaining = msg.value().num_pages;
        assembling[msg.value().request_id] = std::move(assembly);
        continue;
      }
      case net::MessageType::kKvPage: {
        Result<net::KvPageMessage> msg = net::DecodeAs<net::KvPageMessage>(envelope.value());
        if (!msg.ok()) {
          break;
        }
        net::KvPageMessage& page = msg.value();
        auto it = assembling.find(page.request_id);
        if (it == assembling.end() ||
            page.page_index >= static_cast<int64_t>(it->second.handle->pages.size()) ||
            !it->second.handle->pages[static_cast<size_t>(page.page_index)].data.empty()) {
          break;  // page without meta, out of range, or a duplicate: protocol error
        }
        it->second.handle->pages[static_cast<size_t>(page.page_index)].data =
            std::move(page.data);
        --it->second.remaining;
        continue;
      }
      case net::MessageType::kResult: {
        Result<net::ResultMessage> msg = net::DecodeAs<net::ResultMessage>(envelope.value());
        if (!msg.ok()) {
          break;
        }
        EngineResult result = std::move(msg.value().result);
        if (msg.value().expects_handle) {
          auto it = assembling.find(result.request_id);
          if (it == assembling.end() || it->second.remaining != 0) {
            break;  // result references a handle we never fully received
          }
          result.handle = std::move(it->second.handle);
          assembling.erase(it);
        }
        OnResult(std::move(result));
        continue;
      }
      case net::MessageType::kFailure: {
        Result<net::FailureMessage> msg = net::DecodeAs<net::FailureMessage>(envelope.value());
        if (!msg.ok()) {
          break;
        }
        const int64_t id = msg.value().request_id;
        {
          MutexLock lock(&mutex_);
          inflight_.erase(id);
          ++failed_;
          depth_.store(DepthLocked(), std::memory_order_relaxed);
          if (ingress_.empty() && inflight_.empty()) {
            drained_cv_.NotifyAll();
          }
        }
        space_cv_.NotifyAll();
        FailRequest(id, msg.value().ToStatus());
        Pump();
        continue;
      }
      case net::MessageType::kGoodbye:
        continue;  // the next Recv returns the terminal EOF
      default:
        break;  // protocol error: fall through to connection-lost
    }
    // Undecodable or unexpected frame: the connection is no longer trusted.
    HandleConnectionLost();
    reader_done_.store(true, std::memory_order_release);
    return;
  }
}

void ProcessReplica::OnResult(EngineResult result) {
  static Counter* const completions = MetricsRegistry::Global().counter("replica.completions");
  const int64_t id = result.request_id;
  const double now_ms = clock_.ElapsedMillis();
  // Without a handoff handler wired, handle-carrying results take the
  // ordinary completion path (the Replica contract; the executor itself
  // relies on this when it hosts a prefill-only ThreadReplica).
  const bool handoff = result.handle != nullptr && on_handoff_ != nullptr;
  int64_t completed_now = 0;
  {
    MutexLock lock(&mutex_);
    auto it = inflight_.find(id);
    if (it == inflight_.end()) {
      return;  // late duplicate after a fail-over; the retry owns it now
    }
    latency_.Record(now_ms - it->second);
    inflight_.erase(it);
    if (handoff) {
      ++handoffs_;
    } else {
      ++completed_;
      results_.push_back(std::move(result));
    }
    // Fault keying counts both outcomes so kill-after-N schedules hit
    // prefill replicas (whose requests only ever hand off) too.
    completed_now = completed_ + handoffs_;
    depth_.store(DepthLocked(), std::memory_order_relaxed);
    if (ingress_.empty() && inflight_.empty()) {
      drained_cv_.NotifyAll();
    }
  }
  completions->Add(1);
  space_cv_.NotifyAll();
  if (handoff) {
    // The executor's engine emitted kPrefillDone in the child process;
    // republish it here so the master's tracer sees the whole lifecycle.
    trace::EmitPrefillDone(id, /*adapter=*/-1, result.prefill_tokens, result.reused_tokens);
    on_handoff_(index_, std::move(result));
  } else {
    trace::EmitCompleted(id, /*adapter=*/-1, index_, StatusCode::kOk);
    if (on_complete_) {
      on_complete_(index_, id);
    }
  }
  if (fault_ != nullptr && fault_->ShouldKillProcess(index_, completed_now)) {
    // A real SIGKILL, not a simulated death: the executor vanishes and the
    // master must recover through the same quarantine path a genuine crash
    // would take.
    KillExecutor();
  }
  Pump();
}

void ProcessReplica::HandleConnectionLost() {
  bool defer = false;
  {
    MutexLock lock(&mutex_);
    lost_ = true;
    // Suspicion before conviction: with work outstanding, freeze the
    // heartbeat and let the supervisor's stall-quarantine observe the loss;
    // its StealIngress convicts. With nothing outstanding there is nothing
    // to recover, so convict on the spot.
    defer = !stop_requested_ && !convicted_ && DepthLocked() > 0;
  }
  space_cv_.NotifyAll();
  if (!defer) {
    MarkDeadAndFailOver();
  }
}

void ProcessReplica::MarkDeadAndFailOver() {
  std::vector<int64_t> ids;
  bool stopping = false;
  {
    MutexLock lock(&mutex_);
    if (convicted_) {
      return;
    }
    convicted_ = true;
    lost_ = true;
    running_ = false;
    stopping = stop_requested_;
    if (!stopping) {
      // A clean shutdown is not a death: dead() stays false so post-run
      // snapshots match the thread backend's.
      dead_.store(true, std::memory_order_release);
    }
    for (Ingress& item : ingress_) {
      ids.push_back(item.request.id);
    }
    ingress_.clear();
    for (const auto& [id, enqueue_ms] : inflight_) {
      (void)enqueue_ms;
      ids.push_back(id);
    }
    inflight_.clear();
    if (stopping) {
      cancelled_ += static_cast<int64_t>(ids.size());
    } else {
      failed_ += static_cast<int64_t>(ids.size());
    }
    depth_.store(0, std::memory_order_relaxed);
  }
  space_cv_.NotifyAll();
  drained_cv_.NotifyAll();
  std::sort(ids.begin(), ids.end());
  const Status status =
      stopping ? Status::Cancelled("replica stopping")
               : Status::Unavailable("replica " + std::to_string(index_) + " executor killed");
  for (int64_t id : ids) {
    FailRequest(id, status);
  }
  KillExecutor();
  ReapChild(/*block=*/false);
}

void ProcessReplica::FailRequest(int64_t request_id, const Status& status) {
  if (on_failure_) {
    on_failure_(index_, request_id, status);
  }
}

void ProcessReplica::KillExecutor() {
  MutexLock lock(&child_mutex_);
  if (pid_ > 0 && !child_reaped_) {
    ::kill(pid_, SIGKILL);
  }
}

void ProcessReplica::ReapChild(bool block) {
  MutexLock lock(&child_mutex_);
  if (pid_ <= 0 || child_reaped_) {
    return;
  }
  int status = 0;
  if (block) {
    // Quick: only reached after SIGKILL or a observed executor exit.
    if (::waitpid(pid_, &status, 0) == pid_) {
      child_reaped_ = true;
    }
  } else if (::waitpid(pid_, &status, WNOHANG) == pid_) {
    child_reaped_ = true;
  }
}

std::vector<EngineRequest> ProcessReplica::StealIngress() {
  std::vector<EngineRequest> stolen;
  bool convict = false;
  bool drained = false;
  {
    MutexLock lock(&mutex_);
    for (Ingress& item : ingress_) {
      stolen.push_back(std::move(item.request));
    }
    ingress_.clear();
    stolen_ += static_cast<int64_t>(stolen.size());
    depth_.store(static_cast<int64_t>(inflight_.size()), std::memory_order_relaxed);
    drained = inflight_.empty();
    // The quarantine spill doubles as the conviction point for a lost
    // connection: the master queue is now reclaimed, so fail over the
    // inflight window and let the retry machinery take it from here.
    convict = lost_ && !convicted_;
  }
  space_cv_.NotifyAll();
  if (drained) {
    drained_cv_.NotifyAll();
  }
  if (convict) {
    MarkDeadAndFailOver();
  }
  return stolen;
}

void ProcessReplica::WaitDrained() {
  VLORA_BLOCKING_REGION(nullptr, "ProcessReplica::WaitDrained");
  MutexLock lock(&mutex_);
  while (!ingress_.empty() || !inflight_.empty()) {
    drained_cv_.Wait(mutex_);
  }
}

void ProcessReplica::RequestStop() {
  std::vector<int64_t> cancel_ids;
  bool send_stop = false;
  {
    MutexLock lock(&mutex_);
    if (stop_requested_) {
      return;  // idempotent: the destructor calls it again after Shutdown
    }
    stop_requested_ = true;
    for (Ingress& item : ingress_) {
      cancel_ids.push_back(item.request.id);
    }
    ingress_.clear();
    cancelled_ += static_cast<int64_t>(cancel_ids.size());
    depth_.store(static_cast<int64_t>(inflight_.size()), std::memory_order_relaxed);
    send_stop = !lost_ && !convicted_;
  }
  space_cv_.NotifyAll();
  drained_cv_.NotifyAll();
  std::sort(cancel_ids.begin(), cancel_ids.end());
  for (int64_t id : cancel_ids) {
    FailRequest(id, Status::Cancelled("replica stopping"));
  }
  if (send_stop && channel_ != nullptr) {
    (void)channel_->SendMsg(net::StopMessage{});
    // Bound the reader's wait for the Goodbye; on expiry it escalates to
    // SIGKILL (see ReaderLoop).
    (void)channel_->SetRecvTimeoutMs(stop_grace_ms_);
  }
}

std::vector<EngineResult> ProcessReplica::TakeResults() {
  MutexLock lock(&mutex_);
  std::vector<EngineResult> out;
  out.swap(results_);
  return out;
}

ReplicaSnapshot ProcessReplica::Snapshot() {
  ReplicaSnapshot snapshot;
  snapshot.index = index_;
  snapshot.backend = ReplicaBackendName(ReplicaBackend::kProcess);
  MutexLock lock(&mutex_);
  snapshot.dead = dead_.load(std::memory_order_acquire);
  snapshot.submitted = submitted_;
  snapshot.completed = completed_;
  snapshot.rejected = rejected_;
  snapshot.cancelled = cancelled_;
  snapshot.failed = failed_;
  snapshot.stolen = stolen_;
  snapshot.handoffs = handoffs_;
  snapshot.peak_depth = peak_depth_;
  snapshot.latency = latency_;
  // snapshot.server stays default: the engine's logical-clock stats live in
  // the executor process.
  return snapshot;
}

}  // namespace vlora

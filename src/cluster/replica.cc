#include "src/cluster/replica.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/trace.h"

namespace vlora {

ThreadReplica::ThreadReplica(int index, const ModelConfig& config,
                             const ReplicaOptions& options)
    : Replica(index),
      queue_capacity_(options.queue_capacity),
      admission_(options.admission),
      fault_(options.fault),
      server_(config, options.server) {
  VLORA_CHECK(queue_capacity_ >= 1);
}

ThreadReplica::~ThreadReplica() {
  RequestStop();
  // The hosting pool joins the worker; by the time the pool is destroyed the
  // loop has observed stop_requested_ and returned.
}

int ThreadReplica::AddAdapter(const LoraAdapter& adapter) {
  {
    MutexLock lock(&mutex_);
    VLORA_CHECK(!running_);
  }
  return server_.AddAdapter(std::make_unique<LoraAdapter>(adapter));
}

void ThreadReplica::Prewarm(const std::vector<int>& adapter_ids) {
  {
    MutexLock lock(&mutex_);
    VLORA_CHECK(!running_);
  }
  for (int id : adapter_ids) {
    server_.PrewarmAdapter(id);
  }
}

void ThreadReplica::SetHandlers(CompletionHandler on_complete, FailureHandler on_failure) {
  {
    MutexLock lock(&mutex_);
    VLORA_CHECK(!running_);
  }
  on_complete_ = std::move(on_complete);
  on_failure_ = std::move(on_failure);
}

void ThreadReplica::SetHandoffHandler(HandoffHandler on_handoff) {
  {
    MutexLock lock(&mutex_);
    VLORA_CHECK(!running_);
  }
  on_handoff_ = std::move(on_handoff);
}

void ThreadReplica::Start(ThreadPool* pool) {
  VLORA_CHECK(pool != nullptr);
  {
    MutexLock lock(&mutex_);
    VLORA_CHECK(!running_);
    running_ = true;
  }
  pool->Post([this] { WorkerLoop(); });
}

EnqueueResult ThreadReplica::Enqueue(EngineRequest request, bool never_block) {
  if (admission_ == AdmissionPolicy::kBlock && !never_block) {
    // This call may park on space_cv_; a caller holding any real lock here
    // would stall the whole cluster behind one full queue.
    VLORA_BLOCKING_REGION(nullptr, "ThreadReplica::Enqueue(kBlock)");  // vlora-lint: allow(hot-path-blocking) kBlock admission is backpressure by design
  }
  const int64_t request_id = request.id;
  const int adapter_id = request.adapter_id;
  const bool decode_stage = request.resume_handle != nullptr;
  {
    MutexLock lock(&mutex_);
    if (stop_requested_ || dead_.load(std::memory_order_acquire)) {
      return EnqueueResult::kRefused;
    }
    if (admission_ == AdmissionPolicy::kReject || never_block) {
      if (DepthLocked() >= queue_capacity_) {
        if (admission_ == AdmissionPolicy::kReject) {
          ++rejected_;
        }
        return EnqueueResult::kFull;
      }
    } else {
      while (!stop_requested_ && !dead_.load(std::memory_order_acquire) &&
             DepthLocked() >= queue_capacity_) {
        space_cv_.Wait(mutex_);  // vlora-lint: allow(hot-path-blocking) kBlock admission is backpressure by design
      }
      if (stop_requested_ || dead_.load(std::memory_order_acquire)) {
        return EnqueueResult::kRefused;
      }
    }
    ingress_.push_back(  // vlora-lint: allow(hot-path-alloc) deque growth bounded by queue_capacity_; reaches steady state
        Ingress{std::move(request), clock_.ElapsedMillis()});
    ++submitted_;
    const int64_t new_depth = DepthLocked();
    peak_depth_ = std::max(peak_depth_, new_depth);
    depth_.store(new_depth, std::memory_order_relaxed);
  }
  // Both enqueue events fire before the worker is woken for this request, so
  // a decode-stage completion can never precede its kDecodeEnqueued.
  trace::EmitEnqueued(request_id, adapter_id, index_);
  if (decode_stage) {
    trace::EmitDecodeEnqueued(request_id, adapter_id, index_);
  }
  ingress_cv_.NotifyOne();
  return EnqueueResult::kAccepted;
}

void ThreadReplica::FailRequest(int64_t request_id, const Status& status) {
  if (on_failure_) {
    on_failure_(index_, request_id, status);
  }
}

void ThreadReplica::Die() {
  std::vector<int64_t> failed_ids;
  {
    MutexLock lock(&mutex_);
    dead_.store(true, std::memory_order_release);
    running_ = false;
    for (Ingress& item : ingress_) {
      failed_ids.push_back(item.request.id);
    }
    ingress_.clear();
    // enqueue_ms_ is worker-thread-only and Die runs on the worker: these
    // are the requests already inside the engine, lost with the replica.
    for (const auto& [id, enqueue_ms] : enqueue_ms_) {
      (void)enqueue_ms;
      failed_ids.push_back(id);
    }
    enqueue_ms_.clear();
    in_server_ = 0;
    failed_ += static_cast<int64_t>(failed_ids.size());
    depth_.store(0, std::memory_order_relaxed);
  }
  space_cv_.NotifyAll();
  drained_cv_.NotifyAll();
  // Deterministic fail-over order: the unordered map above scrambles ids.
  std::sort(failed_ids.begin(), failed_ids.end());
  for (int64_t id : failed_ids) {
    FailRequest(id, Status::Unavailable("replica " + std::to_string(index_) + " killed"));
  }
}

void ThreadReplica::WorkerLoop() {
  // Worker-thread attribution: engine batch steps and kernel dispatches
  // emitted from this thread carry the replica index.
  trace::SetCurrentReplica(index_);
  static Counter* const completions = MetricsRegistry::Global().counter("replica.completions");
  int64_t completed_local = 0;
  // Iteration scratch lives outside the loop so the heap buffers reach a
  // steady-state capacity instead of being reallocated every pass.
  std::vector<Ingress> batch;
  std::vector<Ingress> to_cancel;
  std::vector<Ingress> to_fail;
  std::vector<EngineResult> finished;
  std::vector<EngineResult> diverted;
  std::vector<int64_t> finished_ids;
  for (;;) {
    batch.clear();
    to_cancel.clear();
    to_fail.clear();
    finished.clear();
    diverted.clear();
    finished_ids.clear();
    if (fault_ != nullptr) {
      fault_->WaitWhileGated();
      const WorkerFault fault = fault_->OnWorkerIteration(index_, completed_local);
      if (fault.kill) {
        Die();
        return;
      }
      if (fault.stall_ms > 0.0) {
        {
          MutexLock lock(&mutex_);
          ++stalls_;
        }
        std::this_thread::sleep_for(  // vlora-lint: allow(hot-path-blocking) test-only injected stall; fault_ is null in production
            std::chrono::duration<double, std::milli>(fault.stall_ms));
      }
    }
    heartbeat_ms_.store(clock_.ElapsedMillis(), std::memory_order_relaxed);

    bool exiting = false;
    {
      MutexLock lock(&mutex_);
      while (!stop_requested_ && ingress_.empty() && in_server_ == 0) {
        ingress_cv_.Wait(mutex_);  // vlora-lint: allow(hot-path-blocking) idle park until work arrives
      }
      if (stop_requested_) {
        // Shutdown: cancel queued work instead of serving it; only finish
        // what is already inside the engine.
        to_cancel.assign(  // vlora-lint: allow(hot-path-alloc) shutdown-only drain, not steady state
            std::make_move_iterator(ingress_.begin()), std::make_move_iterator(ingress_.end()));
        ingress_.clear();
        cancelled_ += static_cast<int64_t>(to_cancel.size());
        depth_.store(in_server_, std::memory_order_relaxed);
        if (in_server_ == 0) {
          running_ = false;
          exiting = true;
        }
      } else {
        while (!ingress_.empty()) {
          Ingress item = std::move(ingress_.front());
          ingress_.pop_front();
          if (fault_ != nullptr && fault_->ShouldFailRequest(index_, item.request.id)) {
            to_fail.push_back(std::move(item));  // vlora-lint: allow(hot-path-alloc) amortized: scratch capacity hoisted out of the loop
            ++failed_;
          } else {
            batch.push_back(std::move(item));  // vlora-lint: allow(hot-path-alloc) amortized: scratch capacity hoisted out of the loop
          }
        }
        in_server_ += static_cast<int64_t>(batch.size());
        depth_.store(in_server_, std::memory_order_relaxed);
      }
    }
    if (!to_cancel.empty() || !to_fail.empty()) {
      space_cv_.NotifyAll();
      drained_cv_.NotifyAll();  // waiters re-check the predicate
      for (Ingress& item : to_cancel) {
        FailRequest(item.request.id, Status::Cancelled("replica stopping"));
      }
      for (Ingress& item : to_fail) {
        FailRequest(item.request.id, Status::Internal("injected request failure"));
      }
    }
    if (exiting) {
      drained_cv_.NotifyAll();
      return;
    }
    for (Ingress& item : batch) {
      enqueue_ms_[item.request.id] = item.enqueue_ms;
      server_.Submit(std::move(item.request));
    }
    {
      MutexLock step_lock(&step_mutex_);
      finished = server_.StepOnce();
    }
    // Prefill-only results carrying a KvHandle divert to the handoff handler:
    // they are not terminal completions here (no kCompleted, no results_),
    // the request's life continues on a decode replica.
    if (on_handoff_ && !finished.empty()) {
      size_t keep = 0;
      for (size_t i = 0; i < finished.size(); ++i) {
        if (finished[i].handle != nullptr) {
          diverted.push_back(std::move(finished[i]));  // vlora-lint: allow(hot-path-alloc) amortized: scratch capacity hoisted out of the loop
        } else {
          if (keep != i) {  // guard the self-move: it would empty the vectors
            finished[keep] = std::move(finished[i]);
          }
          ++keep;
        }
      }
      finished.resize(keep);  // vlora-lint: allow(hot-path-alloc) shrink within capacity, never grows
    }
    const double now_ms = clock_.ElapsedMillis();
    {
      MutexLock lock(&mutex_);
      in_server_ -= static_cast<int64_t>(finished.size() + diverted.size());
      for (EngineResult& result : finished) {
        auto it = enqueue_ms_.find(result.request_id);
        VLORA_CHECK(it != enqueue_ms_.end());
        latency_.Record(now_ms - it->second);
        enqueue_ms_.erase(it);
        ++completed_;
        finished_ids.push_back(result.request_id);  // vlora-lint: allow(hot-path-alloc) amortized: scratch capacity hoisted out of the loop
        results_.push_back(std::move(result));  // vlora-lint: allow(hot-path-alloc) completion accumulator drained by TakeResults; bounded by in-flight budget
      }
      for (const EngineResult& result : diverted) {
        auto it = enqueue_ms_.find(result.request_id);
        VLORA_CHECK(it != enqueue_ms_.end());
        latency_.Record(now_ms - it->second);  // prefill-stage latency
        enqueue_ms_.erase(it);
        ++handoffs_;
      }
      depth_.store(DepthLocked(), std::memory_order_relaxed);
      if (ingress_.empty() && in_server_ == 0) {
        drained_cv_.NotifyAll();
      }
    }
    completed_local += static_cast<int64_t>(finished_ids.size() + diverted.size());
    heartbeat_ms_.store(clock_.ElapsedMillis(), std::memory_order_relaxed);
    if (!finished_ids.empty()) {
      completions->Add(static_cast<int64_t>(finished_ids.size()));
      for (int64_t id : finished_ids) {
        trace::EmitCompleted(id, /*adapter=*/-1, index_, StatusCode::kOk);
      }
      space_cv_.NotifyAll();
      if (on_complete_) {
        for (int64_t id : finished_ids) {
          on_complete_(index_, id);
        }
      }
    }
    if (!diverted.empty()) {
      space_cv_.NotifyAll();
      for (EngineResult& result : diverted) {
        on_handoff_(index_, std::move(result));
      }
    }
  }
}

std::vector<EngineRequest> ThreadReplica::StealIngress() {
  std::vector<EngineRequest> stolen;
  bool drained = false;
  {
    MutexLock lock(&mutex_);
    for (Ingress& item : ingress_) {
      stolen.push_back(std::move(item.request));
    }
    ingress_.clear();
    stolen_ += static_cast<int64_t>(stolen.size());
    depth_.store(in_server_, std::memory_order_relaxed);
    drained = in_server_ == 0;
  }
  space_cv_.NotifyAll();
  if (drained) {
    drained_cv_.NotifyAll();
  }
  return stolen;
}

void ThreadReplica::WaitDrained() {
  VLORA_BLOCKING_REGION(nullptr, "ThreadReplica::WaitDrained");
  MutexLock lock(&mutex_);
  while (!ingress_.empty() || in_server_ != 0) {
    drained_cv_.Wait(mutex_);
  }
}

void ThreadReplica::RequestStop() {
  {
    MutexLock lock(&mutex_);
    stop_requested_ = true;
  }
  if (fault_ != nullptr) {
    fault_->OpenGate();  // a gated worker must be able to observe the stop
  }
  ingress_cv_.NotifyAll();
  space_cv_.NotifyAll();
}

std::vector<EngineResult> ThreadReplica::TakeResults() {
  MutexLock lock(&mutex_);
  std::vector<EngineResult> out;
  out.swap(results_);
  return out;
}

ReplicaSnapshot ThreadReplica::Snapshot() {
  ReplicaSnapshot snapshot;
  snapshot.index = index_;
  snapshot.backend = ReplicaBackendName(ReplicaBackend::kThread);
  {
    // Order matters for TSan cleanliness: take the step mutex first so the
    // server stats copy cannot overlap a StepOnce, then the state mutex.
    MutexLock step_lock(&step_mutex_);
    snapshot.server = server_.stats();
  }
  MutexLock lock(&mutex_);
  snapshot.dead = dead_.load(std::memory_order_acquire);
  snapshot.submitted = submitted_;
  snapshot.completed = completed_;
  snapshot.rejected = rejected_;
  snapshot.cancelled = cancelled_;
  snapshot.failed = failed_;
  snapshot.stolen = stolen_;
  snapshot.stalls = stalls_;
  snapshot.handoffs = handoffs_;
  snapshot.peak_depth = peak_depth_;
  snapshot.latency = latency_;
  return snapshot;
}

}  // namespace vlora

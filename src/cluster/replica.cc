#include "src/cluster/replica.h"

#include <algorithm>
#include <utility>

#include "src/common/status.h"

namespace vlora {

Replica::Replica(int index, const ModelConfig& config, const ReplicaOptions& options)
    : index_(index),
      queue_capacity_(options.queue_capacity),
      admission_(options.admission),
      server_(config, options.server) {
  VLORA_CHECK(queue_capacity_ >= 1);
}

Replica::~Replica() {
  RequestStop();
  // The hosting pool joins the worker; by the time the pool is destroyed the
  // loop has observed stop_requested_ and returned.
}

int Replica::AddAdapter(const LoraAdapter& adapter) {
  VLORA_CHECK(!running_);
  return server_.AddAdapter(std::make_unique<LoraAdapter>(adapter));
}

void Replica::Prewarm(const std::vector<int>& adapter_ids) {
  VLORA_CHECK(!running_);
  for (int id : adapter_ids) {
    server_.PrewarmAdapter(id);
  }
}

void Replica::Start(ThreadPool* pool) {
  VLORA_CHECK(pool != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    VLORA_CHECK(!running_);
    running_ = true;
  }
  pool->Post([this] { WorkerLoop(); });
}

bool Replica::Enqueue(EngineRequest request) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto depth = [this] { return static_cast<int64_t>(ingress_.size()) + in_server_; };
  if (admission_ == AdmissionPolicy::kReject) {
    if (depth() >= queue_capacity_) {
      ++rejected_;
      return false;
    }
  } else {
    space_cv_.wait(lock, [&] { return stop_requested_ || depth() < queue_capacity_; });
  }
  if (stop_requested_) {
    ++rejected_;
    return false;
  }
  ingress_.push_back(Ingress{std::move(request), clock_.ElapsedMillis()});
  ++submitted_;
  const int64_t new_depth = depth();
  peak_depth_ = std::max(peak_depth_, new_depth);
  depth_.store(new_depth, std::memory_order_relaxed);
  lock.unlock();
  ingress_cv_.notify_one();
  return true;
}

void Replica::WorkerLoop() {
  for (;;) {
    std::vector<Ingress> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ingress_cv_.wait(lock,
                       [this] { return stop_requested_ || !ingress_.empty() || in_server_ > 0; });
      if (stop_requested_ && ingress_.empty() && in_server_ == 0) {
        running_ = false;
        drained_cv_.notify_all();
        return;
      }
      while (!ingress_.empty()) {
        batch.push_back(std::move(ingress_.front()));
        ingress_.pop_front();
      }
      in_server_ += static_cast<int64_t>(batch.size());
    }
    for (Ingress& item : batch) {
      enqueue_ms_[item.request.id] = item.enqueue_ms;
      server_.Submit(std::move(item.request));
    }
    std::vector<EngineResult> finished;
    {
      std::lock_guard<std::mutex> step_lock(step_mutex_);
      finished = server_.StepOnce();
    }
    const double now_ms = clock_.ElapsedMillis();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_server_ -= static_cast<int64_t>(finished.size());
      for (EngineResult& result : finished) {
        auto it = enqueue_ms_.find(result.request_id);
        VLORA_CHECK(it != enqueue_ms_.end());
        latency_.Record(now_ms - it->second);
        enqueue_ms_.erase(it);
        ++completed_;
        results_.push_back(std::move(result));
      }
      depth_.store(static_cast<int64_t>(ingress_.size()) + in_server_,
                   std::memory_order_relaxed);
      if (ingress_.empty() && in_server_ == 0) {
        drained_cv_.notify_all();
      }
    }
    if (!finished.empty()) {
      space_cv_.notify_all();
    }
  }
}

void Replica::WaitDrained() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [this] { return ingress_.empty() && in_server_ == 0; });
}

void Replica::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  ingress_cv_.notify_all();
  space_cv_.notify_all();
}

std::vector<EngineResult> Replica::TakeResults() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EngineResult> out;
  out.swap(results_);
  return out;
}

ReplicaSnapshot Replica::Snapshot() {
  ReplicaSnapshot snapshot;
  snapshot.index = index_;
  {
    // Order matters for TSan cleanliness: take the step mutex first so the
    // server stats copy cannot overlap a StepOnce, then the state mutex.
    std::lock_guard<std::mutex> step_lock(step_mutex_);
    snapshot.server = server_.stats();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.submitted = submitted_;
  snapshot.completed = completed_;
  snapshot.rejected = rejected_;
  snapshot.peak_depth = peak_depth_;
  snapshot.latency = latency_;
  return snapshot;
}

}  // namespace vlora

// ClusterServer: N VloraServer replicas behind an adapter-affinity router.
//
// The real-engine counterpart of the simulator's multi-device dispatch
// (Table 3): every replica owns a full engine + adapter set and is driven by
// its own worker thread on a shared ThreadPool; a Router assigns each
// submitted request to a replica — round-robin (the paper's setup),
// least-loaded, or adapter-affinity over an InfiniLoRA-style AdapterPlacement
// (replicated hot set, partitioned cold tail). Bounded per-replica queues
// give the cluster backpressure: a saturating trace either blocks the
// submitter or sheds load, it never grows memory without bound.

#ifndef VLORA_SRC_CLUSTER_CLUSTER_SERVER_H_
#define VLORA_SRC_CLUSTER_CLUSTER_SERVER_H_

#include <memory>
#include <vector>

#include "src/cluster/placement.h"
#include "src/cluster/replica.h"
#include "src/cluster/router.h"
#include "src/workload/request.h"

namespace vlora {

struct ClusterOptions {
  int num_replicas = 2;
  ServerOptions server;  // applied to every replica
  RoutePolicy policy = RoutePolicy::kAdapterAffinity;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  int64_t replica_queue_capacity = 64;
  // Home-replica depth at which affinity routing spills to least-loaded;
  // 0 derives half the queue capacity.
  int64_t overload_spill_depth = 0;
  PlacementOptions placement;
};

struct ClusterStats {
  std::vector<ReplicaSnapshot> replicas;
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t affinity_hits = 0;    // routed to a home replica of the adapter
  int64_t affinity_spills = 0;  // home overloaded, fell back to least-loaded
  int64_t adapter_swap_ins = 0;     // summed over replicas
  int64_t adapter_evictions = 0;    // summed over replicas
  double visible_swap_ms = 0.0;     // summed over replicas
  double wall_ms = 0.0;             // first Submit -> last Drain
  double throughput_rps = 0.0;      // completed / wall
  LatencyRecorder latency;          // wall-clock submit -> completion, merged
};

class ClusterServer {
 public:
  explicit ClusterServer(const ModelConfig& config, const ClusterOptions& options = {});
  ~ClusterServer();

  ClusterServer(const ClusterServer&) = delete;
  ClusterServer& operator=(const ClusterServer&) = delete;

  int num_replicas() const { return static_cast<int>(replicas_.size()); }

  // Registers a copy of the adapter on every replica so any replica can serve
  // any request; returns the cluster-wide adapter id (identical on each
  // replica). Setup phase only.
  int AddAdapter(const LoraAdapter& adapter);

  // Computes the placement from per-adapter request shares (AdapterShares()
  // over the expected trace) and pre-warms each replica's home set onto its
  // device. Setup phase only; without this call affinity routing degenerates
  // to least-loaded.
  void PlaceAdapters(const std::vector<double>& shares);
  const AdapterPlacement& placement() const { return placement_; }

  // Routes the request to a replica. Returns false when the target replica
  // rejected it (kReject admission and full). Blocks under kBlock admission
  // while the target is full. Starts the worker threads on first use.
  bool Submit(EngineRequest request);

  // Waits for every accepted request to finish; returns the results
  // accumulated since the previous Drain, in completion order per replica.
  std::vector<EngineResult> Drain();

  // Aggregated counters; cheap and safe while serving (snapshots serialise
  // against each replica's step loop).
  ClusterStats Stats();

  Replica& replica(int index) { return *replicas_[static_cast<size_t>(index)]; }

 private:
  void EnsureStarted();

  ClusterOptions options_;
  AdapterPlacement placement_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<ThreadPool> pool_;  // after replicas_: destroyed (joined) first
  bool started_ = false;
  Stopwatch wall_;
  bool wall_started_ = false;
  double wall_ms_ = 0.0;
  int64_t affinity_hits_ = 0;
  int64_t affinity_spills_ = 0;
  int64_t rejected_ = 0;
};

// Maps a synthetic workload request onto the mini engine: a deterministic
// prompt derived from the request id, token counts scaled down by
// `token_scale` (paper-size prompts do not fit a tiny CPU model), and
// closed-set requests resolved through the adapter's task head when it has
// one. Shared by the cluster bench, test and example so they serve the same
// requests the simulator costs.
struct TraceMapOptions {
  int64_t token_scale = 16;       // divide trace token counts by this
  int64_t min_prompt_tokens = 4;
  int64_t max_prompt_tokens = 64;
  int64_t min_new_tokens = 1;
  int64_t max_new_tokens = 16;
  // Route closed-set requests through the adapter's vision task head. Only
  // enable when every adapter the trace references carries a head — the
  // engine checks at submit time.
  bool use_task_heads = false;
};

EngineRequest EngineRequestFromTrace(const Request& request, const ModelConfig& config,
                                     const TraceMapOptions& options = {});

}  // namespace vlora

#endif  // VLORA_SRC_CLUSTER_CLUSTER_SERVER_H_

// ClusterServer: N VloraServer replicas behind an adapter-affinity router.
//
// The real-engine counterpart of the simulator's multi-device dispatch
// (Table 3): every replica owns a full engine + adapter set and is driven by
// its own worker thread on a shared ThreadPool; a Router assigns each
// submitted request to a replica — round-robin (the paper's setup),
// least-loaded, or adapter-affinity over an InfiniLoRA-style AdapterPlacement
// (replicated hot set, partitioned cold tail). Bounded per-replica queues
// give the cluster backpressure: a saturating trace either blocks the
// submitter or sheds load, it never grows memory without bound.
//
// Failure recovery: every accepted request is tracked in a pending table
// (with a copy for replay) until a replica completes or definitively fails
// it. A supervisor thread (a) re-dispatches failed requests to surviving
// replicas with bounded exponential-backoff retries, (b) enforces optional
// per-request deadlines, and (c) health-checks the fleet — a replica whose
// worker heartbeat goes stale while it holds work is quarantined (marked
// unroutable, its queued requests stolen and re-routed) and readmitted when
// the heartbeat resumes; a dead replica is permanently removed from routing
// and its partitioned cold-tail adapters are re-homed onto survivors via
// AdapterPlacement::Rebalance. Faults are injected deterministically through
// an optional FaultInjector (src/common/fault.h); without one the recovery
// layer is dormant apart from the supervisor's idle heartbeat scan.

#ifndef VLORA_SRC_CLUSTER_CLUSTER_SERVER_H_
#define VLORA_SRC_CLUSTER_CLUSTER_SERVER_H_

#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cluster/placement.h"
#include "src/cluster/process_replica.h"
#include "src/cluster/replica.h"
#include "src/cluster/router.h"
#include "src/common/fault.h"
#include "src/common/sync.h"
#include "src/workload/request.h"

namespace vlora {

struct RecoveryOptions {
  // Total enqueue attempts per request (first dispatch included) before it is
  // failed with the last replica-reported status.
  int max_attempts = 3;
  // Retry delay after the Nth failed attempt: backoff_base_ms * 2^(N-1).
  double backoff_base_ms = 2.0;
  // Submit-to-completion budget; a request that cannot be completed within it
  // fails with DEADLINE_EXCEEDED. 0 disables deadlines. Enforced at failure/
  // retry decision points — a request already executing is never interrupted.
  double request_deadline_ms = 0.0;
  // Supervisor tick: health checks + due-retry dispatch.
  double health_period_ms = 5.0;
  // A replica with queued work whose worker heartbeat has not advanced for
  // this long is quarantined. 0 disables stall detection.
  double stall_quarantine_ms = 250.0;
};

// Disaggregated prefill/decode serving (DESIGN.md §15). When enabled the
// replica fleet is split into two pools: replicas [0, num_prefill) run only
// prefill chunks (prefill_only requests) and hand their paged KV state to the
// master, which re-routes each request into the decode pool
// [num_prefill, num_replicas) with the KvHandle attached. Adapters are homed
// per pool (independent AdapterPlacements), and the two SLO knobs act on
// their natural pool: ttft_slo_ms bounds admission by prefill-pool depth,
// tpot_slo_ms caps the decode replicas' batch size.
struct DisaggOptions {
  bool enabled = false;
  int num_prefill = 1;  // prefill pool size; decode pool gets the rest
  // TTFT admission: reject a Submit when every live prefill replica already
  // queues >= max(1, ttft_slo_ms / est_prefill_ms) requests. 0 disables.
  double ttft_slo_ms = 0.0;
  double est_prefill_ms = 5.0;
  // TPOT batching: cap decode replicas' max_batch_size at
  // clamp(tpot_slo_ms / est_decode_step_ms, 1, configured). 0 disables.
  double tpot_slo_ms = 0.0;
  double est_decode_step_ms = 1.0;
};

struct ClusterOptions {
  int num_replicas = 2;
  ServerOptions server;  // applied to every replica
  RoutePolicy policy = RoutePolicy::kAdapterAffinity;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  // kThread hosts every replica in this process (default); kProcess forks a
  // vlora_executor per replica and drives it over the wire protocol. The
  // recovery machinery (quarantine, retries, rebalance) is identical either
  // way — with kProcess an executor death is a real process death.
  ReplicaBackend backend = ReplicaBackend::kThread;
  // kProcess tuning (transport, inflight window, heartbeat/stop timing).
  // The server/queue_capacity/admission/fault members inside are ignored:
  // the cluster-level equivalents above are applied to every backend.
  ProcessReplicaOptions process;
  int64_t replica_queue_capacity = 64;
  // Home-replica depth at which affinity routing spills to least-loaded;
  // 0 derives half the queue capacity.
  int64_t overload_spill_depth = 0;
  PlacementOptions placement;
  RecoveryOptions recovery;
  DisaggOptions disagg;
  FaultInjector* fault = nullptr;  // not owned; must outlive the cluster
};

// A request the recovery layer gave up on, with its final status.
struct FailedRequest {
  int64_t request_id = 0;
  Status status;
  int attempts = 0;
};

struct ClusterStats {
  std::vector<ReplicaSnapshot> replicas;
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t affinity_hits = 0;    // routed to a home replica of the adapter
  int64_t affinity_spills = 0;  // home overloaded, fell back to least-loaded
  int64_t adapter_swap_ins = 0;     // summed over replicas
  int64_t adapter_evictions = 0;    // summed over replicas
  double visible_swap_ms = 0.0;     // summed over replicas
  double wall_ms = 0.0;             // first Submit -> last Drain
  double throughput_rps = 0.0;      // completed / wall
  LatencyRecorder latency;          // wall-clock submit -> completion, merged
  // Recovery counters (cluster-level; per-replica views in `replicas`).
  int64_t retries = 0;            // failed requests re-dispatched
  int64_t rerouted = 0;           // queued requests stolen off a quarantined replica
  int64_t failed = 0;             // requests that exhausted recovery
  int64_t cancelled = 0;          // requests cancelled at shutdown
  int64_t deadline_failures = 0;  // subset of `failed` that hit the deadline
  int64_t replica_deaths = 0;
  int64_t quarantines = 0;
  int64_t readmissions = 0;
  // Disaggregated mode (zero in unified mode).
  int64_t handoffs = 0;          // prefill results diverted to the handoff path
  int64_t handles_created = 0;   // KvHandles the master took ownership of
  int64_t handles_released = 0;  // ... and released (completion or final failure)
};

class ClusterServer {
 public:
  explicit ClusterServer(const ModelConfig& config, const ClusterOptions& options = {});
  ~ClusterServer();

  ClusterServer(const ClusterServer&) = delete;
  ClusterServer& operator=(const ClusterServer&) = delete;

  int num_replicas() const { return static_cast<int>(replicas_.size()); }

  // Registers a copy of the adapter on every replica so any replica can serve
  // any request; returns the cluster-wide adapter id (identical on each
  // replica). Setup phase only.
  int AddAdapter(const LoraAdapter& adapter);

  // Computes the placement from per-adapter request shares (AdapterShares()
  // over the expected trace) and pre-warms each replica's home set onto its
  // device. Setup phase only; without this call affinity routing degenerates
  // to least-loaded.
  void PlaceAdapters(const std::vector<double>& shares);
  const AdapterPlacement& placement() const { return placement_; }
  // Pool-local placements (disaggregated mode; empty otherwise). Local
  // replica index l maps to global index l (prefill) / num_prefill + l
  // (decode). Same setup-phase/quiescent contract as placement().
  const AdapterPlacement& prefill_placement() const { return prefill_placement_; }
  const AdapterPlacement& decode_placement() const { return decode_placement_; }

  // Invoked (from a replica worker thread) whenever a request completes, with
  // the cluster-clock completion time; benches use it to build recovery
  // timelines. Set before the first Submit.
  void SetCompletionObserver(std::function<void(int64_t request_id, double completed_ms)> observer)
      VLORA_EXCLUDES(mutex_);

  // Routes the request to a replica (skipping dead/quarantined ones) and
  // tracks it for recovery. Returns false when no replica accepted it —
  // admission rejection under kReject, or no live replica at all. Blocks
  // under kBlock admission while the chosen target is full. Starts the
  // worker threads and the supervisor on first use. EngineRequest::id must
  // be unique across the cluster's lifetime.
  [[nodiscard]] bool Submit(EngineRequest request) VLORA_EXCLUDES(mutex_) VLORA_HOT;

  // Waits until every accepted request has completed or definitively failed;
  // returns the results accumulated since the previous Drain, in completion
  // order per replica.
  [[nodiscard]] std::vector<EngineResult> Drain() VLORA_EXCLUDES(mutex_);

  // Moves out the requests the recovery layer gave up on since the last call.
  [[nodiscard]] std::vector<FailedRequest> TakeFailures() VLORA_EXCLUDES(mutex_);

  // Blocks until the health checker has recorded at least `count`
  // readmissions, or `timeout_ms` elapsed (returns false). The deterministic
  // replacement for sleep-polling Stats() in tests and benches that observe
  // recovery progress.
  [[nodiscard]] bool WaitForReadmissions(int64_t count, double timeout_ms)
      VLORA_EXCLUDES(mutex_);

  // Same contract for recorded replica deaths. A replica's own fail-over runs
  // before its orphans complete, but the supervisor's health tick *records*
  // the death slightly later — tests that assert on replica_deaths wait here
  // instead of racing Drain against that tick.
  [[nodiscard]] bool WaitForReplicaDeaths(int64_t count, double timeout_ms)
      VLORA_EXCLUDES(mutex_);

  // Stops the supervisor and the replicas, cancelling queued-but-unstarted
  // work with Status::Cancelled (reported through TakeFailures / Stats).
  // Idempotent; the destructor calls it. Stats/TakeFailures remain valid
  // afterwards.
  void Shutdown() VLORA_EXCLUDES(mutex_);

  // Aggregated counters; cheap and safe while serving (snapshots serialise
  // against each replica's step loop).
  [[nodiscard]] ClusterStats Stats() VLORA_EXCLUDES(mutex_);

  Replica& replica(int index) { return *replicas_[static_cast<size_t>(index)]; }

 private:
  enum class PendingState {
    kEnqueued,      // on some replica's queue or inside its engine
    kWaitingRetry,  // failed; waiting out the backoff before re-dispatch
  };
  // Lifecycle stage of a pending request. Unified mode stays kUnified for a
  // request's whole life; disaggregated requests go kPrefill -> kDecode at
  // the handoff.
  enum class Stage {
    kUnified,
    kPrefill,
    kDecode,
  };
  struct Pending {
    EngineRequest request;  // replay copy for retries (no stage flags attached)
    PendingState state = PendingState::kEnqueued;
    Stage stage = Stage::kUnified;
    // kDecode only: the KvHandle the prefill pool produced. Retries re-route
    // the same handle; released (counted) when the pending entry dies.
    std::shared_ptr<KvHandle> handle;
    int attempts = 1;
    double deadline_ms = 0.0;   // cluster clock; +inf when disabled
    double retry_due_ms = 0.0;  // kWaitingRetry only
  };
  struct HealthState {
    double last_heartbeat = -1.0;
    double last_change_ms = 0.0;          // cluster clock of last heartbeat change
    double heartbeat_at_quarantine = 0.0;
    int64_t last_depth = 0;               // depth at the previous health tick
    bool quarantined = false;
    bool death_handled = false;
  };
  enum class RouteOutcome { kAccepted, kFull, kUnavailable };

  // First-Submit initialisation: starts the replica workers, the hosting
  // pool and the supervisor. Holding mutex_ while starting is part of the
  // documented lock order (ClusterServer::mutex_ before Replica::mutex_ /
  // ThreadPool::mutex_; see DESIGN.md "Static concurrency invariants").
  void EnsureStartedLocked() VLORA_REQUIRES(mutex_);
  // Picks a live replica and enqueues; probes other live replicas when the
  // target refuses (dead/stopping). Never holds mutex_ across an Enqueue.
  RouteOutcome RouteAndEnqueue(EngineRequest request, bool blocking, bool count_affinity)
      VLORA_EXCLUDES(mutex_);
  // Re-dispatches a pending request (retry or quarantine spill); on failure
  // schedules another backoff round or finalises. Supervisor thread only.
  void DispatchPending(EngineRequest request) VLORA_EXCLUDES(mutex_);
  void SupervisorLoop() VLORA_EXCLUDES(mutex_);
  void HealthCheck(double now_ms) VLORA_EXCLUDES(mutex_);
  // Replica worker callbacks (invoked without any replica lock held).
  void OnReplicaComplete(int replica, int64_t request_id) VLORA_EXCLUDES(mutex_);
  void OnReplicaFailure(int replica, int64_t request_id, const Status& status)
      VLORA_EXCLUDES(mutex_);
  // Handoff callback (disaggregated mode): takes ownership of the KvHandle,
  // moves the pending entry to Stage::kDecode and dispatches it into the
  // decode pool. Duplicate handoffs (a stalled prefill replica completing
  // after its request was already re-run) are dropped.
  void OnReplicaHandoff(int replica, EngineResult result) VLORA_EXCLUDES(mutex_);
  // The request to put on the wire for `pending`'s current stage: a replay
  // copy with prefill_only / resume_handle attached as the stage demands.
  EngineRequest BuildDispatchRequestLocked(const Pending& pending) const
      VLORA_REQUIRES(mutex_);
  // Returns true when the pending table drained; caller notifies drained_cv_.
  bool FinalizeFailureLocked(std::unordered_map<int64_t, Pending>::iterator it,
                             const Status& status, bool deadline) VLORA_REQUIRES(mutex_);
  double BackoffMs(int attempts) const;

  ClusterOptions options_;
  // Routing/placement state: written under mutex_ once serving starts
  // (Rebalance, SetReplicaAlive). The const placement() accessor is
  // setup-phase / quiescent-only by contract and deliberately unchecked.
  AdapterPlacement placement_;
  // Disaggregated mode: pool-local placements over pool-local replica
  // indices; empty (and the pool routers null) in unified mode.
  AdapterPlacement prefill_placement_;
  AdapterPlacement decode_placement_;
  // Pool membership as global replica indices; all_members_ is the identity
  // list every unified route uses. Const after the ctor.
  std::vector<int> all_members_;
  std::vector<int> prefill_members_;
  std::vector<int> decode_members_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<Router> router_ VLORA_PT_GUARDED_BY(mutex_);  // set once in ctor
  std::unique_ptr<Router> prefill_router_ VLORA_PT_GUARDED_BY(mutex_);  // disagg only
  std::unique_ptr<Router> decode_router_ VLORA_PT_GUARDED_BY(mutex_);   // disagg only
  std::unique_ptr<ThreadPool> pool_;  // after replicas_: destroyed (joined) first
  Stopwatch clock_;  // deadlines, backoff and health tracking; read-only after ctor

  // Router/placement decisions, pending table, counters. Top of the lock
  // hierarchy: held across Replica::Start in EnsureStartedLocked, never
  // acquired while any lower lock is held.
  Mutex mutex_{Rank::kCluster, "ClusterServer::mutex_"};
  CondVar drained_cv_;     // pending table emptied
  CondVar supervisor_cv_;  // retry due / stop
  CondVar health_cv_;      // quarantine / readmission / death recorded
  // Started once under mutex_, joined by Shutdown; the handle itself is only
  // touched by the single start/shutdown lifecycle.
  std::thread supervisor_;
  bool started_ VLORA_GUARDED_BY(mutex_) = false;
  bool shut_down_ VLORA_GUARDED_BY(mutex_) = false;
  Stopwatch wall_ VLORA_GUARDED_BY(mutex_);
  bool wall_started_ VLORA_GUARDED_BY(mutex_) = false;
  double wall_ms_ VLORA_GUARDED_BY(mutex_) = 0.0;
  bool supervisor_stop_ VLORA_GUARDED_BY(mutex_) = false;
  std::unordered_map<int64_t, Pending> pending_ VLORA_GUARDED_BY(mutex_);
  std::vector<HealthState> health_ VLORA_GUARDED_BY(mutex_);
  std::vector<FailedRequest> failures_ VLORA_GUARDED_BY(mutex_);
  std::function<void(int64_t, double)> completion_observer_ VLORA_GUARDED_BY(mutex_);
  int64_t affinity_hits_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t affinity_spills_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t rejected_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t retries_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t rerouted_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t failed_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t cancelled_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t deadline_failures_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t replica_deaths_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t quarantines_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t readmissions_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t handoffs_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t handles_created_ VLORA_GUARDED_BY(mutex_) = 0;
  int64_t handles_released_ VLORA_GUARDED_BY(mutex_) = 0;
};

// Maps a synthetic workload request onto the mini engine: a deterministic
// prompt derived from the request id, token counts scaled down by
// `token_scale` (paper-size prompts do not fit a tiny CPU model), and
// closed-set requests resolved through the adapter's task head when it has
// one. Shared by the cluster bench, test and example so they serve the same
// requests the simulator costs.
struct TraceMapOptions {
  int64_t token_scale = 16;       // divide trace token counts by this
  int64_t min_prompt_tokens = 4;
  int64_t max_prompt_tokens = 64;
  int64_t min_new_tokens = 1;
  int64_t max_new_tokens = 16;
  // Route closed-set requests through the adapter's vision task head. Only
  // enable when every adapter the trace references carries a head — the
  // engine checks at submit time.
  bool use_task_heads = false;
};

EngineRequest EngineRequestFromTrace(const Request& request, const ModelConfig& config,
                                     const TraceMapOptions& options = {});

}  // namespace vlora

#endif  // VLORA_SRC_CLUSTER_CLUSTER_SERVER_H_

#include "src/core/scheduler.h"

#include <algorithm>
#include <unordered_map>

namespace vlora {

namespace {

// Batch-composition order: running (already prefilled) requests keep their
// slots — evicting a mid-decode request for an equal-priority waiter only
// turns FCFS into round-robin processor sharing, which inflates everyone's
// latency under load. Freed slots go to starving waiters first, then to the
// remaining waiters, each cohort FCFS by arrival.
std::vector<const RequestView*> BatchOrder(const std::vector<RequestView>& queue,
                                           double starve_credit_ms,
                                           const Alg1Options& options) {
  std::vector<const RequestView*> sorted;
  sorted.reserve(queue.size());
  for (const RequestView& view : queue) {
    sorted.push_back(&view);
  }
  auto urgent = [&](const RequestView* view) {
    if (options.slo_urgency_fraction <= 0.0 || view->slo_ms <= 0.0) {
      return false;
    }
    return view->arrival_wait_ms > options.slo_urgency_fraction * view->slo_ms;
  };
  auto rank = [&](const RequestView* view) {
    if (view->prefilled) {
      return 0;
    }
    if (urgent(view)) {
      return 1;  // near-deadline: ahead of every other waiter
    }
    const double credit = view->wait_ms + starve_credit_ms;
    return credit > options.theta_ms ? 2 : 3;
  };
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](const RequestView* a, const RequestView* b) {
                     const int ra = rank(a);
                     const int rb = rank(b);
                     if (ra != rb) {
                       return ra < rb;
                     }
                     return a->arrival_wait_ms > b->arrival_wait_ms;
                   });
  return sorted;
}

}  // namespace

IterationPlan Alg1Schedule(const std::vector<RequestView>& queue, const PolicyContext& context,
                           const Alg1Options& options) {
  IterationPlan plan;
  if (queue.empty()) {
    return plan;
  }
  const int max_bs = context.max_batch_size;
  const double starve_credit_ms = options.exec_estimate_ms + options.switch_ms;

  // Candidate batch: the first MaxBS requests in batch order. Alg 1's mode
  // decision ratios (|R_starve|/MaxBS, |R_merge|/MaxBS) are measured over
  // this window — queue-wide counts are meaningless once the backlog exceeds
  // one batch.
  std::vector<const RequestView*> candidates =
      BatchOrder(queue, starve_credit_ms, options);
  if (static_cast<int>(candidates.size()) > max_bs) {
    candidates.resize(static_cast<size_t>(max_bs));
  }

  // Credits and the starving set (line 2); SLO-urgent requests count as
  // starving when SLO awareness is enabled.
  int num_starving = 0;
  for (const RequestView* view : candidates) {
    const bool slo_urgent = options.slo_urgency_fraction > 0.0 && view->slo_ms > 0.0 &&
                            view->arrival_wait_ms > options.slo_urgency_fraction * view->slo_ms;
    if (view->wait_ms + starve_credit_ms > options.theta_ms || slo_urgent) {
      ++num_starving;
    }
  }

  // Largest same-adapter group (line 4), with hysteresis toward the adapter
  // already merged into the weights.
  std::unordered_map<int, int> counts;
  for (const RequestView* view : candidates) {
    if (view->adapter_id >= 0) {
      ++counts[view->adapter_id];
    }
  }
  int merge_adapter = -1;
  int merge_count = 0;
  for (const auto& [adapter, count] : counts) {
    if (count > merge_count || (count == merge_count && adapter == context.merged_adapter)) {
      merge_count = count;
      merge_adapter = adapter;
    }
  }

  const bool starve_ok = num_starving * 2 <= max_bs;  // <= 0.5
  // Dominance threshold with switch hysteresis: keeping the currently merged
  // adapter needs > 50 % of the batch (the paper's condition); adopting a
  // *different* adapter additionally pays a weight switch, so it must clear
  // 60 % — otherwise a 50/50 workload thrashes ΔW in and out every iteration
  // for no net benefit.
  const bool is_current = merge_adapter == context.merged_adapter &&
                          context.current_mode != InferMode::kUnmerged;
  const bool merge_ok =
      merge_adapter >= 0 &&
      (is_current ? merge_count * 2 > max_bs : merge_count * 5 > max_bs * 3);

  for (const RequestView* view : candidates) {
    plan.selected.push_back(view->index);
  }

  // Pure merged mode (lines 6-8): only when the whole candidate batch runs
  // the same adapter — excluding batchable requests just to merge costs more
  // latency than the bypass it saves.
  if (merge_adapter >= 0 && merge_count == static_cast<int>(candidates.size())) {
    plan.mode = InferMode::kMerged;
    plan.merged_adapter = merge_adapter;
    return plan;
  }

  if (starve_ok && merge_ok) {
    // Mixture mode (lines 9-12): the merge group keeps its zero-overhead
    // merged path while every other candidate (starving first) runs through
    // its own bypass plus the deLoRA branch.
    plan.mode = InferMode::kMixture;
    plan.merged_adapter = merge_adapter;
    return plan;
  }

  // Unmerged mode (lines 13-15): no dominant group (or starvation is broad);
  // everyone pays the bypass, nobody pays a merge.
  plan.mode = InferMode::kUnmerged;
  plan.merged_adapter = -1;
  return plan;
}

namespace {

class VloraPolicy : public SchedulerPolicy {
 public:
  enum class Variant { kFull, kNoMixture, kLegacySwitch };

  VloraPolicy(const Alg1Options& options, Variant variant)
      : options_(options), variant_(variant) {
    profile_.name = variant == Variant::kFull          ? "V-LoRA"
                    : variant == Variant::kNoMixture   ? "V-LoRA(no-mix)"
                                                       : "V-LoRA(legacy-switch)";
    profile_.op = OperatorKind::kAtmm;
    profile_.switch_ms = variant == Variant::kLegacySwitch ? 53.0 : 8.0;
    profile_.uses_task_head = true;
    profile_.async_adapter_swap = true;
    options_.switch_ms = profile_.switch_ms;
  }

  const SystemProfile& profile() const override { return profile_; }

  IterationPlan Plan(const std::vector<RequestView>& queue,
                     const PolicyContext& context) override {
    IterationPlan plan = Alg1Schedule(queue, context, options_);
    if (variant_ == Variant::kNoMixture && plan.mode == InferMode::kMixture) {
      // Ablation: starvation forces a full switch to unmerged instead.
      IterationPlan unmerged;
      unmerged.mode = InferMode::kUnmerged;
      unmerged.merged_adapter = -1;
      unmerged.selected = std::move(plan.selected);
      return unmerged;
    }
    return plan;
  }

 private:
  SystemProfile profile_;
  Alg1Options options_;
  Variant variant_;
};

}  // namespace

std::unique_ptr<SchedulerPolicy> MakeVloraPolicy(const Alg1Options& options) {
  return std::make_unique<VloraPolicy>(options, VloraPolicy::Variant::kFull);
}

std::unique_ptr<SchedulerPolicy> MakeVloraNoMixturePolicy(const Alg1Options& options) {
  return std::make_unique<VloraPolicy>(options, VloraPolicy::Variant::kNoMixture);
}

std::unique_ptr<SchedulerPolicy> MakeVloraLegacySwitchPolicy(const Alg1Options& options) {
  return std::make_unique<VloraPolicy>(options, VloraPolicy::Variant::kLegacySwitch);
}

}  // namespace vlora

// Accuracy-aware LoRA adapter generation (§4.2).
//
// Input: a set of knowledge items (domain-specific small models or datasets),
// each with the accuracy its application requires. Output: the minimum-ish
// number of LoRA adapters such that every fused item still meets its
// requirement — the constrained bin-packing problem of §4.2.1, solved with
// the paper's greedy accuracy-aware heuristic:
//
//   start an adapter from the first unpacked dataset; keep fusing the next
//   dataset and re-checking every fused task's accuracy against the oracle;
//   on the first violation, roll the adapter back to its previous state,
//   close it, and start a new adapter from the offending dataset.
//
// When every item in an adapter shares one task type, the generator attaches
// a vision task head (§4.2.2) sized to the task's closed answer set.

#ifndef VLORA_SRC_CORE_GENERATOR_H_
#define VLORA_SRC_CORE_GENERATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "src/accuracy/accuracy_model.h"
#include "src/common/rng.h"
#include "src/common/vision_task.h"

namespace vlora {

// One unit of external knowledge: a domain-specific small model or dataset.
struct KnowledgeItem {
  std::string domain;         // e.g. "traffic-sign-detect"
  VisionTask task = VisionTask::kImageClassification;
  double required_accuracy = 80.0;  // application-specified floor (percent)
  int closed_set_options = 0;        // >0 if the task output is a closed set
};

struct GeneratedAdapterSpec {
  std::vector<int> item_indices;  // into the input list
  bool has_task_head = false;
  VisionTask head_task = VisionTask::kImageClassification;
  int head_options = 0;
  // Final per-item accuracies at this adapter's fusion level.
  std::vector<double> item_accuracies;
};

struct GeneratorResult {
  std::vector<GeneratedAdapterSpec> adapters;
  int rollbacks = 0;  // accuracy violations encountered during fusion
  double AvgDomainsPerAdapter() const;
};

struct GeneratorOptions {
  // Shuffle the item order first (the paper starts from a random dataset).
  bool shuffle = true;
  uint64_t seed = 11;
};

GeneratorResult GenerateAdapters(const std::vector<KnowledgeItem>& items,
                                 const AccuracyOracle& oracle,
                                 const GeneratorOptions& options = {});

// Accuracy probe: given the item subset a candidate adapter would fuse,
// returns the per-item accuracies that adapter achieves (aligned with the
// subset). In a deployment this is a real fine-tuning run (Fig 9's
// "training" box); the LoRA trainer provides one in the tests/benches.
using FusionProbe =
    std::function<std::vector<double>(const std::vector<int>& item_indices)>;

// The same greedy fuse-until-violation-then-rollback procedure, but driven by
// a real accuracy probe instead of the analytical oracle. The probe is called
// once per tentative fusion (the incremental-training step of §4.2.1).
GeneratorResult GenerateAdaptersWithProbe(const std::vector<KnowledgeItem>& items,
                                          const FusionProbe& probe,
                                          const GeneratorOptions& options = {});

// True iff every item of the adapter meets its requirement at the adapter's
// fusion level — the generator's postcondition, used by tests.
bool SatisfiesRequirements(const std::vector<KnowledgeItem>& items,
                           const GeneratedAdapterSpec& adapter, const AccuracyOracle& oracle);

}  // namespace vlora

#endif  // VLORA_SRC_CORE_GENERATOR_H_

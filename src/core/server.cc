#include "src/core/server.h"

#include <algorithm>

#include "src/common/trace.h"

namespace vlora {

std::vector<std::unique_ptr<LoraAdapter>> MaterializeAdapters(
    const std::vector<KnowledgeItem>& items, const GeneratorResult& result,
    const ModelConfig& config, int64_t rank, Rng& rng) {
  std::vector<std::unique_ptr<LoraAdapter>> adapters;
  adapters.reserve(result.adapters.size());
  int counter = 0;
  for (const GeneratedAdapterSpec& spec : result.adapters) {
    auto adapter = std::make_unique<LoraAdapter>(LoraAdapter::Random(
        "gen-" + std::to_string(counter++), config.num_layers, config.d_model, rank, rng));
    for (int index : spec.item_indices) {
      adapter->AddFusedDomain(items[static_cast<size_t>(index)].domain);
    }
    if (spec.has_task_head && spec.head_options > 0) {
      VisionTaskHead head;
      head.task = spec.head_task;
      head.weight = Tensor::Random(Shape(config.d_model, spec.head_options), rng, 0.2f);
      adapter->SetTaskHead(std::move(head));
    }
    adapters.push_back(std::move(adapter));
  }
  return adapters;
}

VloraServer::VloraServer(const ModelConfig& config, const ServerOptions& options)
    : options_(options),
      engine_(config, options.engine),
      pool_(options.device_pool_bytes),
      adapter_manager_(&pool_) {}

int VloraServer::AddAdapter(std::unique_ptr<LoraAdapter> adapter) {
  VLORA_CHECK(adapter != nullptr);
  const int id = engine_.RegisterAdapter(adapter.get());
  // The manager holds an accounting handle (tensor storage is shared) so the
  // unified pool tracks device residency per §5.
  const int manager_id = adapter_manager_.Register(*adapter);
  VLORA_CHECK(manager_id == id);
  adapters_.push_back(std::move(adapter));
  VLORA_CHECK(id == static_cast<int>(adapters_.size()) - 1);
  return id;
}

const LoraAdapter& VloraServer::adapter(int id) const {
  VLORA_CHECK(id >= 0 && id < num_adapters());
  return *adapters_[static_cast<size_t>(id)];
}

void VloraServer::Submit(EngineRequest request) {
  MutexLock lock(&submit_mutex_);
  staged_.push_back(std::move(request));
  queue_depth_.fetch_add(1, std::memory_order_relaxed);
}

void VloraServer::AdmitStaged() {
  std::vector<EngineRequest> staged;
  {
    MutexLock lock(&submit_mutex_);
    staged.swap(staged_);
  }
  for (EngineRequest& request : staged) {
    VLORA_CHECK(!submit_ms_.contains(request.id));
    submit_ms_[request.id] = logical_clock_ms_;
    engine_.Submit(std::move(request));
  }
}

void VloraServer::PrewarmAdapter(int adapter_id) {
  VLORA_CHECK(adapter_id >= 0 && adapter_id < num_adapters());
  adapter_manager_.EnsureResident(adapter_id);
}

std::vector<int> VloraServer::ResidentAdapters() const {
  std::vector<int> resident;
  for (int id = 0; id < num_adapters(); ++id) {
    if (adapter_manager_.IsResident(id)) {
      resident.push_back(id);
    }
  }
  return resident;
}

std::vector<EngineResult> VloraServer::StepOnce() {
  AdmitStaged();
  // Build the Algorithm-1 queue view from the engine's live sequences. The
  // logical clock advances by the estimated iteration time, which is what the
  // credit term measures against θ.
  std::vector<InferenceEngine::QueueEntry> queue = engine_.Queue();
  if (queue.empty()) {
    return {};
  }
  std::vector<RequestView> views;
  views.reserve(queue.size());
  for (size_t i = 0; i < queue.size(); ++i) {
    const auto& entry = queue[i];
    RequestView view;
    view.index = static_cast<int>(i);
    view.adapter_id = entry.adapter_id;
    view.prefilled = entry.prefilled;
    view.arrival_wait_ms = logical_clock_ms_ - submit_ms_.at(entry.request_id);
    auto service_it = last_service_ms_.find(entry.request_id);
    view.wait_ms = service_it == last_service_ms_.end() ? view.arrival_wait_ms
                                                        : logical_clock_ms_ - service_it->second;
    view.input_tokens = entry.prompt_tokens;
    view.remaining_outputs = entry.remaining_new_tokens;
    view.closed_set_output = entry.use_task_head;
    views.push_back(view);
  }

  PolicyContext context;
  context.now_ms = logical_clock_ms_;
  context.max_batch_size = options_.max_batch_size;
  context.current_mode = engine_.mode();
  context.merged_adapter = engine_.merged_adapter();

  IterationPlan plan = Alg1Schedule(views, context, options_.alg1);
  if (plan.selected.empty()) {
    logical_clock_ms_ += options_.alg1.exec_estimate_ms;
    return {};
  }
  // RAII span (Begin here, End on every return path); tid comes from the
  // calling thread's replica attribution.
  trace::BatchStepSpan step_span(static_cast<int64_t>(plan.selected.size()));
  static Counter* const batch_steps = MetricsRegistry::Global().counter("engine.batch_steps");
  batch_steps->Increment();

  // Residency: every adapter the batch touches must be on the device; the
  // asynchronous prefetch window is the previous iteration's estimated time.
  for (int index : plan.selected) {
    const int adapter_id = queue[static_cast<size_t>(index)].adapter_id;
    if (adapter_id >= 0) {
      const SwapResult swap =
          adapter_manager_.EnsureResident(adapter_id, options_.alg1.exec_estimate_ms);
      if (!swap.was_resident) {
        ++stats_.adapter_swap_ins;
        stats_.visible_swap_ms += swap.visible_ms;
        stats_.adapter_evictions += static_cast<int64_t>(swap.evicted.size());
      }
    }
  }

  const int64_t switches_before = engine_.mode_switch_count();
  engine_.SetMode(plan.mode, plan.merged_adapter);
  const bool switched = engine_.mode_switch_count() != switches_before;

  std::vector<int64_t> request_ids;
  request_ids.reserve(plan.selected.size());
  for (int index : plan.selected) {
    request_ids.push_back(queue[static_cast<size_t>(index)].request_id);
    last_service_ms_[queue[static_cast<size_t>(index)].request_id] = logical_clock_ms_;
  }
  std::vector<EngineResult> finished = engine_.StepSelected(request_ids);

  ++stats_.iterations;
  switch (plan.mode) {
    case InferMode::kMerged:
      ++stats_.merged_iterations;
      break;
    case InferMode::kUnmerged:
      ++stats_.unmerged_iterations;
      break;
    case InferMode::kMixture:
      ++stats_.mixture_iterations;
      break;
  }
  if (switched) {
    ++stats_.mode_switches;
  }
  logical_clock_ms_ +=
      options_.alg1.exec_estimate_ms + (switched ? options_.alg1.switch_ms : 0.0);

  for (const EngineResult& result : finished) {
    stats_.latency.Record(logical_clock_ms_ - submit_ms_.at(result.request_id));
    submit_ms_.erase(result.request_id);
    last_service_ms_.erase(result.request_id);
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
  }
  step_span.set_completed(static_cast<int64_t>(finished.size()));
  return finished;
}

std::vector<EngineResult> VloraServer::RunAll() {
  std::vector<EngineResult> all;
  while (QueueDepth() > 0) {
    std::vector<EngineResult> finished = StepOnce();
    all.insert(all.end(), std::make_move_iterator(finished.begin()),
               std::make_move_iterator(finished.end()));
  }
  return all;
}

}  // namespace vlora

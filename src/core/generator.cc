#include "src/core/generator.h"

#include <algorithm>

#include "src/common/status.h"

namespace vlora {

double GeneratorResult::AvgDomainsPerAdapter() const {
  if (adapters.empty()) {
    return 0.0;
  }
  size_t total = 0;
  for (const GeneratedAdapterSpec& adapter : adapters) {
    total += adapter.item_indices.size();
  }
  return static_cast<double>(total) / static_cast<double>(adapters.size());
}

namespace {

// Checks all items of a tentative adapter at fusion level k = item count.
bool AllMeetRequirement(const std::vector<KnowledgeItem>& items,
                        const std::vector<int>& member_indices, const AccuracyOracle& oracle) {
  const int k = static_cast<int>(member_indices.size());
  for (int index : member_indices) {
    const KnowledgeItem& item = items[static_cast<size_t>(index)];
    if (oracle.LoraAccuracy(item.task, k) < item.required_accuracy) {
      return false;
    }
  }
  return true;
}

void FinalizeAdapter(const std::vector<KnowledgeItem>& items, GeneratedAdapterSpec& adapter,
                     const AccuracyOracle& oracle) {
  const int k = static_cast<int>(adapter.item_indices.size());
  adapter.item_accuracies.clear();
  bool same_task = true;
  int total_options = 0;
  bool all_closed = true;
  const VisionTask first_task = items[static_cast<size_t>(adapter.item_indices[0])].task;
  for (int index : adapter.item_indices) {
    const KnowledgeItem& item = items[static_cast<size_t>(index)];
    adapter.item_accuracies.push_back(oracle.LoraAccuracy(item.task, k));
    same_task = same_task && item.task == first_task;
    all_closed = all_closed && item.closed_set_options > 0;
    total_options += item.closed_set_options;
  }
  // Task heads are attachable only when the fused knowledge shares one task
  // type (§4.2.2) and every member's answer set is closed.
  if (same_task && all_closed) {
    adapter.has_task_head = true;
    adapter.head_task = first_task;
    adapter.head_options = total_options;
  }
}

}  // namespace

GeneratorResult GenerateAdapters(const std::vector<KnowledgeItem>& items,
                                 const AccuracyOracle& oracle, const GeneratorOptions& options) {
  GeneratorResult result;
  if (items.empty()) {
    return result;
  }

  std::vector<int> order(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  if (options.shuffle) {
    Rng rng(options.seed);
    std::vector<int64_t> perm = rng.Permutation(static_cast<int64_t>(items.size()));
    for (size_t i = 0; i < items.size(); ++i) {
      order[i] = static_cast<int>(perm[i]);
    }
  }

  GeneratedAdapterSpec current;
  for (int index : order) {
    // A single-item adapter that cannot meet its own requirement is an
    // unsatisfiable input; the heuristic still packs it alone (the adapter
    // simply delivers its best achievable accuracy) rather than looping.
    std::vector<int> tentative = current.item_indices;
    tentative.push_back(index);
    const bool fits = AllMeetRequirement(items, tentative, oracle) || tentative.size() == 1;
    if (fits) {
      current.item_indices = std::move(tentative);
      continue;
    }
    // Accuracy violation: roll back to the previous state (the already-packed
    // items keep their trained adapter) and open a new adapter seeded with
    // the offending dataset (Fig 10 steps 4-5).
    ++result.rollbacks;
    FinalizeAdapter(items, current, oracle);
    result.adapters.push_back(std::move(current));
    current = GeneratedAdapterSpec{};
    current.item_indices.push_back(index);
  }
  if (!current.item_indices.empty()) {
    FinalizeAdapter(items, current, oracle);
    result.adapters.push_back(std::move(current));
  }
  return result;
}

GeneratorResult GenerateAdaptersWithProbe(const std::vector<KnowledgeItem>& items,
                                          const FusionProbe& probe,
                                          const GeneratorOptions& options) {
  GeneratorResult result;
  if (items.empty()) {
    return result;
  }
  VLORA_CHECK(probe != nullptr);

  std::vector<int> order(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  if (options.shuffle) {
    Rng rng(options.seed);
    std::vector<int64_t> perm = rng.Permutation(static_cast<int64_t>(items.size()));
    for (size_t i = 0; i < items.size(); ++i) {
      order[i] = static_cast<int>(perm[i]);
    }
  }

  auto meets = [&](const std::vector<int>& members, const std::vector<double>& accuracies) {
    VLORA_CHECK(accuracies.size() == members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      if (accuracies[i] < items[static_cast<size_t>(members[i])].required_accuracy) {
        return false;
      }
    }
    return true;
  };
  auto finalize = [&](GeneratedAdapterSpec&& adapter, std::vector<double>&& accuracies) {
    adapter.item_accuracies = std::move(accuracies);
    bool same_task = true;
    bool all_closed = true;
    int total_options = 0;
    const VisionTask first_task = items[static_cast<size_t>(adapter.item_indices[0])].task;
    for (int index : adapter.item_indices) {
      const KnowledgeItem& item = items[static_cast<size_t>(index)];
      same_task = same_task && item.task == first_task;
      all_closed = all_closed && item.closed_set_options > 0;
      total_options += item.closed_set_options;
    }
    if (same_task && all_closed) {
      adapter.has_task_head = true;
      adapter.head_task = first_task;
      adapter.head_options = total_options;
    }
    result.adapters.push_back(std::move(adapter));
  };

  GeneratedAdapterSpec current;
  std::vector<double> current_accuracies;
  for (int index : order) {
    std::vector<int> tentative = current.item_indices;
    tentative.push_back(index);
    std::vector<double> accuracies = probe(tentative);
    // A singleton adapter always stands (best-achievable for its item).
    if (tentative.size() == 1 || meets(tentative, accuracies)) {
      current.item_indices = std::move(tentative);
      current_accuracies = std::move(accuracies);
      continue;
    }
    ++result.rollbacks;
    finalize(std::move(current), std::move(current_accuracies));
    current = GeneratedAdapterSpec{};
    current.item_indices.push_back(index);
    current_accuracies = probe(current.item_indices);
  }
  if (!current.item_indices.empty()) {
    finalize(std::move(current), std::move(current_accuracies));
  }
  return result;
}

bool SatisfiesRequirements(const std::vector<KnowledgeItem>& items,
                           const GeneratedAdapterSpec& adapter, const AccuracyOracle& oracle) {
  VLORA_CHECK(!adapter.item_indices.empty());
  if (adapter.item_indices.size() == 1) {
    return true;  // singleton adapters are best-achievable by definition
  }
  const int k = static_cast<int>(adapter.item_indices.size());
  for (int index : adapter.item_indices) {
    const KnowledgeItem& item = items[static_cast<size_t>(index)];
    if (oracle.LoraAccuracy(item.task, k) < item.required_accuracy) {
      return false;
    }
  }
  return true;
}

}  // namespace vlora

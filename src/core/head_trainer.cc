#include "src/core/head_trainer.h"

#include <algorithm>
#include <cmath>

namespace vlora {

namespace {

// Runs one capture-only request and returns the final hidden state.
std::vector<float> ExtractFeature(InferenceEngine& engine, const HeadExample& example,
                                  int adapter_id, int64_t request_id) {
  EngineRequest request;
  request.id = request_id;
  request.prompt_tokens = example.prompt_tokens;
  request.injected = example.injected;
  request.adapter_id = adapter_id;
  request.max_new_tokens = 1;
  request.eos_token = -1;
  request.capture_final_hidden = true;
  EngineResult result = engine.RunToCompletion(std::move(request));
  VLORA_CHECK(!result.final_hidden.empty());
  return std::move(result.final_hidden);
}

}  // namespace

HeadTrainingResult TrainTaskHead(InferenceEngine& engine,
                                 const std::vector<HeadExample>& examples, VisionTask task,
                                 const HeadTrainerOptions& options) {
  VLORA_CHECK(!examples.empty());
  VLORA_CHECK(options.num_classes >= 2);
  const int64_t d = engine.config().d_model;
  const int64_t classes = options.num_classes;

  // Feature extraction through the real engine (frozen LMM + adapter).
  std::vector<std::vector<float>> features;
  features.reserve(examples.size());
  int64_t request_id = 1LL << 40;  // avoid colliding with caller ids
  for (const HeadExample& example : examples) {
    VLORA_CHECK(example.label >= 0 && example.label < classes);
    features.push_back(ExtractFeature(engine, example, options.adapter_id, request_id++));
  }

  // Softmax regression: W (d x classes), plain SGD with weight decay.
  Rng rng(options.seed);
  Tensor weight = Tensor::Random(Shape(d, classes), rng, 0.01f);
  std::vector<double> logits(static_cast<size_t>(classes));
  std::vector<double> probs(static_cast<size_t>(classes));
  double loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    loss = 0.0;
    const std::vector<int64_t> order = rng.Permutation(static_cast<int64_t>(examples.size()));
    for (int64_t index : order) {
      const std::vector<float>& x = features[static_cast<size_t>(index)];
      const int label = examples[static_cast<size_t>(index)].label;
      double max_logit = -1e300;
      for (int64_t c = 0; c < classes; ++c) {
        double z = 0.0;
        for (int64_t i = 0; i < d; ++i) {
          z += static_cast<double>(x[static_cast<size_t>(i)]) * weight.at(i, c);
        }
        logits[static_cast<size_t>(c)] = z;
        max_logit = std::max(max_logit, z);
      }
      double denom = 0.0;
      for (int64_t c = 0; c < classes; ++c) {
        probs[static_cast<size_t>(c)] = std::exp(logits[static_cast<size_t>(c)] - max_logit);
        denom += probs[static_cast<size_t>(c)];
      }
      for (int64_t c = 0; c < classes; ++c) {
        probs[static_cast<size_t>(c)] /= denom;
      }
      loss += -std::log(std::max(1e-12, probs[static_cast<size_t>(label)]));
      // Gradient step: dL/dW[:,c] = (p_c - 1{c==label}) * x.
      for (int64_t c = 0; c < classes; ++c) {
        const float grad_scale = static_cast<float>(
            probs[static_cast<size_t>(c)] - (c == label ? 1.0 : 0.0));
        for (int64_t i = 0; i < d; ++i) {
          float& w = weight.at(i, c);
          w -= options.learning_rate *
               (grad_scale * x[static_cast<size_t>(i)] + options.weight_decay * w);
        }
      }
    }
    loss /= static_cast<double>(examples.size());
  }

  // Training accuracy.
  int correct = 0;
  for (size_t e = 0; e < examples.size(); ++e) {
    const std::vector<float>& x = features[e];
    int best = 0;
    double best_score = -1e300;
    for (int64_t c = 0; c < classes; ++c) {
      double z = 0.0;
      for (int64_t i = 0; i < d; ++i) {
        z += static_cast<double>(x[static_cast<size_t>(i)]) * weight.at(i, c);
      }
      if (z > best_score) {
        best_score = z;
        best = static_cast<int>(c);
      }
    }
    correct += best == examples[e].label ? 1 : 0;
  }

  HeadTrainingResult result;
  result.head.task = task;
  result.head.weight = std::move(weight);
  result.train_accuracy = static_cast<double>(correct) / static_cast<double>(examples.size());
  result.final_loss = loss;
  return result;
}

double EvaluateTaskHead(InferenceEngine& engine, int adapter_id,
                        const std::vector<HeadExample>& examples) {
  VLORA_CHECK(!examples.empty());
  int correct = 0;
  int64_t request_id = 1LL << 41;
  for (const HeadExample& example : examples) {
    EngineRequest request;
    request.id = request_id++;
    request.prompt_tokens = example.prompt_tokens;
    request.injected = example.injected;
    request.adapter_id = adapter_id;
    request.use_task_head = true;
    request.eos_token = -1;
    const EngineResult result = engine.RunToCompletion(std::move(request));
    correct += result.head_option == example.label ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

}  // namespace vlora

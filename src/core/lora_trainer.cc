#include "src/core/lora_trainer.h"

#include <cmath>
#include <cstring>

#include "src/kernels/atmm.h"

namespace vlora {

namespace {

// These three mirror the engine's forward math exactly; the
// FinalHiddenMatchesEngine test guards against drift.

void RmsNormRow(const float* x, const float* gain, float* out, int64_t d) {
  float ss = 0.0f;
  for (int64_t i = 0; i < d; ++i) {
    ss += x[i] * x[i];
  }
  const float inv = 1.0f / std::sqrt(ss / static_cast<float>(d) + 1e-5f);
  for (int64_t i = 0; i < d; ++i) {
    out[i] = x[i] * inv * gain[i];
  }
}

// Backward of y = RMSNorm_g(x) for one row: returns dL/dx given dL/dy.
std::vector<float> RmsNormBackward(const std::vector<float>& x, const float* gain,
                                   const std::vector<float>& dy) {
  const int64_t d = static_cast<int64_t>(x.size());
  float ss = 0.0f;
  for (int64_t i = 0; i < d; ++i) {
    ss += x[i] * x[i];
  }
  const float inv = 1.0f / std::sqrt(ss / static_cast<float>(d) + 1e-5f);
  float dot = 0.0f;  // Σ dL/dy_i * g_i * x_i
  for (int64_t i = 0; i < d; ++i) {
    dot += dy[static_cast<size_t>(i)] * gain[i] * x[static_cast<size_t>(i)];
  }
  std::vector<float> dx(static_cast<size_t>(d));
  const float k = inv * inv * inv / static_cast<float>(d);
  for (int64_t i = 0; i < d; ++i) {
    dx[static_cast<size_t>(i)] =
        inv * gain[i] * dy[static_cast<size_t>(i)] - k * dot * x[static_cast<size_t>(i)];
  }
  return dx;
}

float Silu(float z) { return z / (1.0f + std::exp(-z)); }

float SiluGrad(float z) {
  const float sigma = 1.0f / (1.0f + std::exp(-z));
  return sigma * (1.0f + z * (1.0f - sigma));
}

void AddPositionEmbedding(float* row, int64_t d, int64_t position) {
  for (int64_t i = 0; i < d; i += 2) {
    const double angle = static_cast<double>(position) /
                         std::pow(10000.0, static_cast<double>(i) / static_cast<double>(d));
    row[i] += 0.1f * static_cast<float>(std::sin(angle));
    if (i + 1 < d) {
      row[i + 1] += 0.1f * static_cast<float>(std::cos(angle));
    }
  }
}

}  // namespace

LoraTrainer::LoraTrainer(TransformerModel* model, LoraAdapter* adapter)
    : model_(model), adapter_(adapter) {
  VLORA_CHECK(model != nullptr && adapter != nullptr);
  VLORA_CHECK(adapter->num_layers() == model->config().num_layers);
  VLORA_CHECK(adapter->d_model() == model->config().d_model);
  // The local backward covers exactly the output projection.
  VLORA_CHECK(adapter->targets().size() == 1 && adapter->targets()[0] == LoraTarget::kWo);
}

LoraTrainer::ForwardCache LoraTrainer::ForwardWithCache(const std::vector<int32_t>& prompt) {
  const ModelConfig& config = model_->config();
  const int64_t d = config.d_model;
  const int64_t ff = config.d_ff;
  const int64_t n = static_cast<int64_t>(prompt.size());
  const int64_t d_head = config.d_head();
  const float attn_scale = 1.0f / std::sqrt(static_cast<float>(d_head));
  AtmmDispatcher atmm;

  Tensor x = Tensor::Zeros(Shape(n, d));
  for (int64_t t = 0; t < n; ++t) {
    const int32_t token = prompt[static_cast<size_t>(t)];
    VLORA_CHECK(token >= 0 && token < config.vocab_size);
    float* row = x.data() + t * d;
    std::memcpy(row, model_->embedding().data() + token * d,
                static_cast<size_t>(d) * sizeof(float));
    AddPositionEmbedding(row, d, t);
  }

  Tensor normed = Tensor::Zeros(Shape(n, d));
  Tensor q = Tensor::Zeros(Shape(n, d));
  Tensor k = Tensor::Zeros(Shape(n, d));
  Tensor v = Tensor::Zeros(Shape(n, d));
  Tensor attn = Tensor::Zeros(Shape(n, d));
  Tensor proj = Tensor::Zeros(Shape(n, d));
  Tensor mid = Tensor::Zeros(Shape(n, ff));
  Tensor mlp = Tensor::Zeros(Shape(n, d));
  std::vector<float> scores(static_cast<size_t>(n));
  ForwardCache cache;

  for (int layer = 0; layer < config.num_layers; ++layer) {
    const LayerWeights& w = model_->layer(layer);
    const bool last = layer == config.num_layers - 1;

    for (int64_t t = 0; t < n; ++t) {
      RmsNormRow(x.data() + t * d, w.attn_norm.data(), normed.data() + t * d, d);
    }
    q.Fill(0.0f);
    k.Fill(0.0f);
    v.Fill(0.0f);
    atmm.Execute(normed, w.wq, q);
    atmm.Execute(normed, w.wk, k);
    atmm.Execute(normed, w.wv, v);

    attn.Fill(0.0f);
    for (int64_t t = 0; t < n; ++t) {
      for (int head = 0; head < config.num_heads; ++head) {
        const int64_t off = head * d_head;
        float max_score = -1e30f;
        for (int64_t j = 0; j <= t; ++j) {
          float dot = 0.0f;
          for (int64_t i = 0; i < d_head; ++i) {
            dot += q.at(t, off + i) * k.at(j, off + i);
          }
          scores[static_cast<size_t>(j)] = dot * attn_scale;
          max_score = std::max(max_score, scores[static_cast<size_t>(j)]);
        }
        float denom = 0.0f;
        for (int64_t j = 0; j <= t; ++j) {
          scores[static_cast<size_t>(j)] = std::exp(scores[static_cast<size_t>(j)] - max_score);
          denom += scores[static_cast<size_t>(j)];
        }
        for (int64_t j = 0; j <= t; ++j) {
          const float weight = scores[static_cast<size_t>(j)] / denom;
          for (int64_t i = 0; i < d_head; ++i) {
            attn.at(t, off + i) += weight * v.at(j, off + i);
          }
        }
      }
    }
    if (last) {
      cache.attn_row.assign(attn.data() + (n - 1) * d, attn.data() + n * d);
    }

    // Output projection with the adapter's bypass (unmerged semantics).
    proj.Fill(0.0f);
    atmm.Execute(attn, w.wo, proj);
    const LoraLayerWeights& factors = adapter_->layer(LoraTarget::kWo, layer);
    const int64_t rank = adapter_->rank();
    Tensor t_mid = Tensor::Zeros(Shape(n, rank));
    atmm.Execute(attn, factors.down, t_mid);
    t_mid.ScaleInPlace(adapter_->scaling());
    atmm.Execute(t_mid, factors.up, proj);
    x.AddInPlace(proj);
    if (last) {
      cache.x2.assign(x.data() + (n - 1) * d, x.data() + n * d);
    }

    for (int64_t t = 0; t < n; ++t) {
      RmsNormRow(x.data() + t * d, w.mlp_norm.data(), normed.data() + t * d, d);
    }
    mid.Fill(0.0f);
    atmm.Execute(normed, w.w1, mid);
    if (last) {
      cache.mid.assign(mid.data() + (n - 1) * ff, mid.data() + n * ff);
    }
    for (int64_t i = 0; i < n * ff; ++i) {
      mid.data()[i] = Silu(mid.data()[i]);
    }
    mlp.Fill(0.0f);
    atmm.Execute(mid, w.w2, mlp);
    x.AddInPlace(mlp);
    if (last) {
      cache.x3.assign(x.data() + (n - 1) * d, x.data() + n * d);
    }
  }

  cache.hidden.resize(static_cast<size_t>(d));
  RmsNormRow(x.data() + (n - 1) * d, model_->final_norm().data(), cache.hidden.data(), d);
  return cache;
}

std::vector<float> LoraTrainer::FinalHidden(const std::vector<int32_t>& prompt) {
  return ForwardWithCache(prompt).hidden;
}

double LoraTrainer::BackwardOneExample(const ForwardCache& cache, int label,
                                       const VisionTaskHead& head, Tensor& grad_down,
                                       Tensor& grad_up, Tensor& grad_head) {
  const ModelConfig& config = model_->config();
  const int64_t d = config.d_model;
  const int64_t ff = config.d_ff;
  const int64_t classes = head.num_options();
  const LayerWeights& w = model_->layer(config.num_layers - 1);
  const LoraLayerWeights& factors = adapter_->layer(LoraTarget::kWo, config.num_layers - 1);
  const int64_t rank = adapter_->rank();
  const float s = adapter_->scaling();

  // Head softmax cross-entropy.
  std::vector<double> probs(static_cast<size_t>(classes));
  double max_logit = -1e300;
  for (int64_t c = 0; c < classes; ++c) {
    double z = 0.0;
    for (int64_t i = 0; i < d; ++i) {
      z += static_cast<double>(cache.hidden[static_cast<size_t>(i)]) * head.weight.at(i, c);
    }
    probs[static_cast<size_t>(c)] = z;
    max_logit = std::max(max_logit, z);
  }
  double denom = 0.0;
  for (int64_t c = 0; c < classes; ++c) {
    probs[static_cast<size_t>(c)] = std::exp(probs[static_cast<size_t>(c)] - max_logit);
    denom += probs[static_cast<size_t>(c)];
  }
  for (int64_t c = 0; c < classes; ++c) {
    probs[static_cast<size_t>(c)] /= denom;
  }
  const double loss = -std::log(std::max(1e-12, probs[static_cast<size_t>(label)]));

  // dL/dhidden and head gradient.
  std::vector<float> dh(static_cast<size_t>(d), 0.0f);
  for (int64_t c = 0; c < classes; ++c) {
    const float delta =
        static_cast<float>(probs[static_cast<size_t>(c)] - (c == label ? 1.0 : 0.0));
    for (int64_t i = 0; i < d; ++i) {
      dh[static_cast<size_t>(i)] += delta * head.weight.at(i, c);
      grad_head.at(i, c) += delta * cache.hidden[static_cast<size_t>(i)];
    }
  }

  // Final RMSNorm backward.
  std::vector<float> dx3 = RmsNormBackward(cache.x3, model_->final_norm().data(), dh);

  // MLP block backward: x3 = x2 + SiLU(RMSNorm(x2) W1) W2.
  std::vector<float> da(static_cast<size_t>(ff), 0.0f);  // dL/d SiLU output
  for (int64_t j = 0; j < ff; ++j) {
    float acc = 0.0f;
    for (int64_t i = 0; i < d; ++i) {
      acc += dx3[static_cast<size_t>(i)] * w.w2.at(j, i);
    }
    da[static_cast<size_t>(j)] = acc;
  }
  std::vector<float> dmid(static_cast<size_t>(ff));
  for (int64_t j = 0; j < ff; ++j) {
    dmid[static_cast<size_t>(j)] =
        da[static_cast<size_t>(j)] * SiluGrad(cache.mid[static_cast<size_t>(j)]);
  }
  std::vector<float> dnormed2(static_cast<size_t>(d), 0.0f);
  for (int64_t i = 0; i < d; ++i) {
    float acc = 0.0f;
    for (int64_t j = 0; j < ff; ++j) {
      acc += dmid[static_cast<size_t>(j)] * w.w1.at(i, j);
    }
    dnormed2[static_cast<size_t>(i)] = acc;
  }
  std::vector<float> dx2 = RmsNormBackward(cache.x2, w.mlp_norm.data(), dnormed2);
  for (int64_t i = 0; i < d; ++i) {
    dx2[static_cast<size_t>(i)] += dx3[static_cast<size_t>(i)];  // residual path
  }

  // proj = attn (W + s·down·up): dL/dproj = dx2 (residual into x2).
  // t = attn·down; dL/dt = s · dproj · upᵀ.
  std::vector<float> t_vec(static_cast<size_t>(rank), 0.0f);
  for (int64_t r = 0; r < rank; ++r) {
    float acc = 0.0f;
    for (int64_t i = 0; i < d; ++i) {
      acc += cache.attn_row[static_cast<size_t>(i)] * factors.down.at(i, r);
    }
    t_vec[static_cast<size_t>(r)] = acc;
  }
  std::vector<float> dt(static_cast<size_t>(rank), 0.0f);
  for (int64_t r = 0; r < rank; ++r) {
    float acc = 0.0f;
    for (int64_t i = 0; i < d; ++i) {
      acc += dx2[static_cast<size_t>(i)] * factors.up.at(r, i);
    }
    dt[static_cast<size_t>(r)] = s * acc;
  }
  for (int64_t i = 0; i < d; ++i) {
    const float a = cache.attn_row[static_cast<size_t>(i)];
    for (int64_t r = 0; r < rank; ++r) {
      grad_down.at(i, r) += a * dt[static_cast<size_t>(r)];
    }
  }
  for (int64_t r = 0; r < rank; ++r) {
    const float tr = s * t_vec[static_cast<size_t>(r)];
    for (int64_t i = 0; i < d; ++i) {
      grad_up.at(r, i) += tr * dx2[static_cast<size_t>(i)];
    }
  }
  return loss;
}

double LoraTrainer::ExampleLoss(const LoraTrainExample& example, const VisionTaskHead& head) {
  const ForwardCache cache = ForwardWithCache(example.prompt_tokens);
  const int64_t classes = head.num_options();
  double max_logit = -1e300;
  std::vector<double> logits(static_cast<size_t>(classes));
  for (int64_t c = 0; c < classes; ++c) {
    double z = 0.0;
    for (int64_t i = 0; i < model_->config().d_model; ++i) {
      z += static_cast<double>(cache.hidden[static_cast<size_t>(i)]) * head.weight.at(i, c);
    }
    logits[static_cast<size_t>(c)] = z;
    max_logit = std::max(max_logit, z);
  }
  double denom = 0.0;
  for (int64_t c = 0; c < classes; ++c) {
    denom += std::exp(logits[static_cast<size_t>(c)] - max_logit);
  }
  return -(logits[static_cast<size_t>(example.label)] - max_logit - std::log(denom));
}

LoraTrainResult LoraTrainer::Train(const std::vector<LoraTrainExample>& examples,
                                   VisionTaskHead& head, const LoraTrainerOptions& options) {
  VLORA_CHECK(!examples.empty());
  VLORA_CHECK(head.num_options() == options.num_classes);
  const ModelConfig& config = model_->config();
  const int64_t d = config.d_model;
  const int64_t rank = adapter_->rank();
  LoraLayerWeights& factors = adapter_->layer(LoraTarget::kWo, config.num_layers - 1);

  LoraTrainResult result;
  Rng rng(options.seed);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    const std::vector<int64_t> order = rng.Permutation(static_cast<int64_t>(examples.size()));
    for (int64_t index : order) {
      const LoraTrainExample& example = examples[static_cast<size_t>(index)];
      VLORA_CHECK(example.label >= 0 && example.label < options.num_classes);
      const ForwardCache cache = ForwardWithCache(example.prompt_tokens);
      Tensor grad_down = Tensor::Zeros(Shape(d, rank));
      Tensor grad_up = Tensor::Zeros(Shape(rank, d));
      Tensor grad_head = Tensor::Zeros(Shape(d, options.num_classes));
      epoch_loss += BackwardOneExample(cache, example.label, head, grad_down, grad_up, grad_head);
      // SGD step.
      for (int64_t i = 0; i < d * rank; ++i) {
        factors.down.data()[i] -= options.factor_lr * grad_down.data()[i];
        factors.up.data()[i] -= options.factor_lr * grad_up.data()[i];
      }
      for (int64_t i = 0; i < d * options.num_classes; ++i) {
        head.weight.data()[i] -= options.head_lr * grad_head.data()[i];
      }
    }
    epoch_loss /= static_cast<double>(examples.size());
    if (epoch == 0) {
      result.initial_loss = epoch_loss;
    }
    result.final_loss = epoch_loss;
  }

  int correct = 0;
  for (const LoraTrainExample& example : examples) {
    const ForwardCache cache = ForwardWithCache(example.prompt_tokens);
    int best = 0;
    double best_score = -1e300;
    for (int64_t c = 0; c < options.num_classes; ++c) {
      double z = 0.0;
      for (int64_t i = 0; i < d; ++i) {
        z += static_cast<double>(cache.hidden[static_cast<size_t>(i)]) * head.weight.at(i, c);
      }
      if (z > best_score) {
        best_score = z;
        best = static_cast<int>(c);
      }
    }
    correct += best == example.label ? 1 : 0;
  }
  result.train_accuracy = static_cast<double>(correct) / static_cast<double>(examples.size());
  return result;
}

}  // namespace vlora

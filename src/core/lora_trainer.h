// LoRA factor fine-tuning (§4.2.1's "standard supervised learning pipeline
// that computes the cross-entropy loss").
//
// Trains, by gradient descent on real cross-entropy, the low-rank factors of
// the LAST layer's Wo projection together with a vision task head, keeping
// the base model frozen. Restricting the trainable factors to the final
// layer keeps the backward pass local: the classified feature is the last
// token's hidden state, which depends on that Wo only through row-wise ops
// (output projection -> residual -> MLP block -> final RMSNorm), so the
// whole gradient is a few vector-Jacobian products per example. Gradients
// are validated against finite differences in the tests.
//
// The trainer owns a forward pass that mirrors the engine's math exactly
// (tests assert feature equality), caching the intermediates the backward
// needs.

#ifndef VLORA_SRC_CORE_LORA_TRAINER_H_
#define VLORA_SRC_CORE_LORA_TRAINER_H_

#include <vector>

#include "src/engine/model.h"
#include "src/lora/adapter.h"

namespace vlora {

struct LoraTrainExample {
  std::vector<int32_t> prompt_tokens;
  int label = 0;
};

struct LoraTrainerOptions {
  int num_classes = 2;
  int epochs = 30;
  float factor_lr = 0.05f;  // learning rate for the LoRA factors
  float head_lr = 0.3f;     // learning rate for the task head
  uint64_t seed = 9;
};

struct LoraTrainResult {
  double initial_loss = 0.0;
  double final_loss = 0.0;
  double train_accuracy = 0.0;
};

class LoraTrainer {
 public:
  // `model` is the frozen base; `adapter` must adapt exactly {kWo} and match
  // the model's dimensions. The adapter's last-layer factors and `head` are
  // updated in place.
  LoraTrainer(TransformerModel* model, LoraAdapter* adapter);

  // Forward pass for one prompt; returns the final-layer-normalised hidden
  // state of the last token (identical to the engine's captured feature).
  std::vector<float> FinalHidden(const std::vector<int32_t>& prompt);

  // Cross-entropy loss of the head on one example (no update).
  double ExampleLoss(const LoraTrainExample& example, const VisionTaskHead& head);

  // SGD over examples; returns loss/accuracy trajectory endpoints.
  LoraTrainResult Train(const std::vector<LoraTrainExample>& examples, VisionTaskHead& head,
                        const LoraTrainerOptions& options);

 private:
  struct ForwardCache {
    std::vector<float> attn_row;  // last layer's attention output, last token
    std::vector<float> x2;        // after the Wo residual
    std::vector<float> mid;       // MLP pre-activation
    std::vector<float> x3;        // after the MLP residual
    std::vector<float> hidden;    // final-normalised feature
  };

  // Full forward with caches for the last token's backward.
  ForwardCache ForwardWithCache(const std::vector<int32_t>& prompt);

  // Accumulates dL/d(down, up) of the last layer's kWo factors and dL/dW of
  // the head for one example; returns the example loss.
  double BackwardOneExample(const ForwardCache& cache, int label, const VisionTaskHead& head,
                            Tensor& grad_down, Tensor& grad_up, Tensor& grad_head);

  TransformerModel* model_;
  LoraAdapter* adapter_;
};

}  // namespace vlora

#endif  // VLORA_SRC_CORE_LORA_TRAINER_H_

// V-LoRA's flexible LoRA adapter orchestration (§4.4.3, Algorithm 1).
//
// The scheduler follows two greedy principles: (1) run merged whenever
// possible — it is the fastest mode with zero extra compute; (2) when
// requests starve, fall back to mixture mode first (cheap: no switch away
// from merged, extra compute only for the starved minority), then to
// unmerged mode, in order of switching cost and extra computation.
//
// Each request carries a credit: its waiting time plus the estimated
// execution time in the current mode plus the mode-switch latency. Requests
// whose credit exceeds the tolerance threshold θ are starving.
//
// Algorithm 1:
//   R_starve = { r : r.credit > θ }
//   len      = MaxBS - |R_starve|
//   R_merge  = argmax_l |{ r : r.lora == l }|
//   if |R_starve|/MaxBS <= 0.5 and |R_merge|/MaxBS > 0.5:
//     if |R_starve| == 0:  mode = Merge;  B = R_merge[:MaxBS]
//     else:                mode = Mix;    B = R_starve + (R_merge−R_starve)[:len]
//   else:                  mode = Unmerge;B = R_starve + (R−R_starve)[:len]
//
// The same decision procedure drives both the serving simulator (VloraPolicy)
// and the real engine (VloraServer).

#ifndef VLORA_SRC_CORE_SCHEDULER_H_
#define VLORA_SRC_CORE_SCHEDULER_H_

#include <memory>

#include "src/gpusim/simulator.h"

namespace vlora {

struct Alg1Options {
  // Starvation tolerance θ in milliseconds of credit. A request served every
  // iteration carries roughly one iteration of wait (~40 ms) plus the exec
  // and switch estimates (~48 ms); θ = 150 ms marks requests that missed
  // about two consecutive iterations as starving, which flips merged slots
  // into mixture mode before exclusion hurts tail latency.
  double theta_ms = 150.0;
  // Estimated execution time of one iteration in the current mode, used in
  // the credit term (waiting + execution + switch).
  double exec_estimate_ms = 40.0;
  // Swift switch cost used in the credit term.
  double switch_ms = 8.0;
  // SLO awareness: a request with a latency constraint (slo_ms > 0) whose
  // elapsed time has consumed more than `slo_urgency_fraction` of its budget
  // is treated as starving regardless of its service wait, pulling it into
  // the batch ahead of best-effort work. 0 disables (the paper's Alg 1 has
  // no explicit SLO term).
  double slo_urgency_fraction = 0.0;
};

// The pure decision procedure; stateless w.r.t. requests.
IterationPlan Alg1Schedule(const std::vector<RequestView>& queue, const PolicyContext& context,
                           const Alg1Options& options);

// SchedulerPolicy wrapper for the simulator, carrying V-LoRA's system
// profile: ATMM operator, 8 ms swift switch, vision task heads, async swap.
std::unique_ptr<SchedulerPolicy> MakeVloraPolicy(const Alg1Options& options = {});

// Ablation: V-LoRA without the mixture mode (starvation forces a full switch
// to unmerged), isolating deLoRA's contribution (Fig 20).
std::unique_ptr<SchedulerPolicy> MakeVloraNoMixturePolicy(const Alg1Options& options = {});

// Ablation: V-LoRA scheduling but with dLoRA's 53 ms legacy switcher,
// isolating the swift switcher's contribution (Fig 21).
std::unique_ptr<SchedulerPolicy> MakeVloraLegacySwitchPolicy(const Alg1Options& options = {});

}  // namespace vlora

#endif  // VLORA_SRC_CORE_SCHEDULER_H_

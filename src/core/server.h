// VloraServer: the end-to-end V-LoRA runtime over the real engine.
//
// Ties together the offline and online phases of Fig 8: adapters produced by
// the accuracy-aware generator are materialised (low-rank factors + vision
// task heads) and registered with the inference engine; at runtime the
// orchestrator applies Algorithm 1 every engine iteration — choosing the
// batch, the inference mode and the merged adapter — and drives the engine's
// swift mode switcher accordingly.

#ifndef VLORA_SRC_CORE_SERVER_H_
#define VLORA_SRC_CORE_SERVER_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/sync.h"
#include "src/core/generator.h"
#include "src/core/scheduler.h"
#include "src/engine/engine.h"

namespace vlora {

// Builds concrete LoRA adapters (random low-rank factors at the model's
// dimensions; a task head when the spec carries one) from generator output.
// In a deployment this is the supervised fine-tuning step of §4.2.1; the
// substitution is documented in DESIGN.md.
std::vector<std::unique_ptr<LoraAdapter>> MaterializeAdapters(
    const std::vector<KnowledgeItem>& items, const GeneratorResult& result,
    const ModelConfig& config, int64_t rank, Rng& rng);

struct ServerOptions {
  EngineOptions engine;
  Alg1Options alg1;
  int max_batch_size = 8;
  // Device memory budget shared by adapters and (accounting-only here) the KV
  // cache, per §5's unified memory management. Sized generously by default so
  // small deployments never swap; shrink to exercise the swap path.
  int64_t device_pool_bytes = 64LL << 20;
};

struct ServerStats {
  int64_t iterations = 0;
  int64_t merged_iterations = 0;
  int64_t unmerged_iterations = 0;
  int64_t mixture_iterations = 0;
  int64_t mode_switches = 0;
  int64_t adapter_swap_ins = 0;
  int64_t adapter_evictions = 0;
  double visible_swap_ms = 0.0;  // per the adapter manager's transfer model
  // Per-request submit->finish latency on the server's logical clock; the
  // cluster layer reports the same percentiles on the wall clock.
  LatencyRecorder latency;
};

class VloraServer {
 public:
  VloraServer(const ModelConfig& config, const ServerOptions& options = {});

  // Takes ownership; returns the engine adapter id.
  int AddAdapter(std::unique_ptr<LoraAdapter> adapter);
  const LoraAdapter& adapter(int id) const;
  int num_adapters() const { return static_cast<int>(adapters_.size()); }

  InferenceEngine& engine() { return engine_; }
  const AdapterManager& adapter_manager() const { return adapter_manager_; }

  // Enqueues a request (EngineRequest::id must be unique). Thread-safe with
  // respect to a concurrent StepOnce: the request lands in a staging buffer
  // and joins the engine at the start of the next iteration. Everything else
  // on this class must be called from the serving thread.
  void Submit(EngineRequest request) VLORA_EXCLUDES(submit_mutex_);

  // Requests accepted but not yet finished (staged + in-engine). Thread-safe;
  // this is the load signal the cluster router reads.
  int64_t QueueDepth() const { return queue_depth_.load(std::memory_order_relaxed); }

  // Forces an adapter onto the device outside the serving path (placement
  // warm-up); does not count toward swap statistics. Serving thread only, or
  // before serving starts.
  void PrewarmAdapter(int adapter_id);

  // Adapter ids currently device-resident. Only meaningful when the server is
  // quiescent or called from the serving thread.
  std::vector<int> ResidentAdapters() const;

  // One orchestrated iteration: Algorithm 1 picks batch + mode, the engine
  // switches if needed and executes. Returns newly finished results.
  std::vector<EngineResult> StepOnce();

  // Drains everything, returning results in completion order.
  std::vector<EngineResult> RunAll();

  const ServerStats& stats() const { return stats_; }

 private:
  // Moves staged requests into the engine, stamping their logical enqueue
  // time. Serving thread only.
  void AdmitStaged() VLORA_EXCLUDES(submit_mutex_);

  ServerOptions options_;
  InferenceEngine engine_;
  UnifiedMemoryPool pool_;
  AdapterManager adapter_manager_;
  std::vector<std::unique_ptr<LoraAdapter>> adapters_;
  Mutex submit_mutex_{Rank::kServerStage, "VloraServer::submit_mutex_"};
  std::vector<EngineRequest> staged_ VLORA_GUARDED_BY(submit_mutex_);
  std::atomic<int64_t> queue_depth_{0};  // `counter` protocol (tools/atomics.toml)
  std::unordered_map<int64_t, double> submit_ms_;        // id -> logical enqueue time
  std::unordered_map<int64_t, double> last_service_ms_;  // id -> last scheduled time
  double logical_clock_ms_ = 0.0;
  ServerStats stats_;
};

}  // namespace vlora

#endif  // VLORA_SRC_CORE_SERVER_H_

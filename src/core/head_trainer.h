// Vision task head trainer.
//
// §4.2 trains the vision task head "as a part of the LoRA adapter" with
// standard supervised learning (cross-entropy). Here the head is fitted as a
// linear probe over the frozen LMM's final hidden states: extract the last
// prompt token's feature for every labelled example through the real engine,
// then run softmax-regression SGD. The resulting head plugs into
// LoraAdapter::SetTaskHead and answers closed-set queries in one inference
// round — functionally, not as a random projection.

#ifndef VLORA_SRC_CORE_HEAD_TRAINER_H_
#define VLORA_SRC_CORE_HEAD_TRAINER_H_

#include <vector>

#include "src/engine/engine.h"

namespace vlora {

struct HeadExample {
  std::vector<int32_t> prompt_tokens;
  // Optional visual embeddings (vision-tower output) injected into the prompt.
  std::vector<InjectedEmbeddings> injected;
  int label = 0;  // in [0, num_classes)
};

struct HeadTrainerOptions {
  int num_classes = 2;
  int epochs = 40;
  float learning_rate = 0.5f;
  float weight_decay = 1e-4f;
  uint64_t seed = 5;
  int adapter_id = -1;  // extract features with this adapter active (-1 base)
};

struct HeadTrainingResult {
  VisionTaskHead head;
  double train_accuracy = 0.0;
  double final_loss = 0.0;
};

// Extracts final hidden states for the examples through `engine` (in its
// current mode) and fits the head. The engine must be idle (no queued work).
HeadTrainingResult TrainTaskHead(InferenceEngine& engine, const std::vector<HeadExample>& examples,
                                 VisionTask task, const HeadTrainerOptions& options);

// Accuracy of a trained head on held-out examples, evaluated through the
// engine's real task-head inference path.
double EvaluateTaskHead(InferenceEngine& engine, int adapter_id,
                        const std::vector<HeadExample>& examples);

}  // namespace vlora

#endif  // VLORA_SRC_CORE_HEAD_TRAINER_H_

#include "src/engine/tokenizer.h"

#include <algorithm>

#include "src/common/status.h"

namespace vlora {

namespace {
// Common words of the vision-application domain, stored with a leading space
// so "count the cars" tokenises as [count][ the][ cars].
constexpr const char* kWords[] = {
    " the",    " a",      " an",     " is",      " are",    " was",     " in",     " on",
    " at",     " of",     " and",    " or",      " to",     " how",    " many",   " what",
    " which",  " where",  " who",    " there",   " this",   " that",   " image",  " video",
    " frame",  " picture", " photo", " scene",   " person", " people", " man",    " woman",
    " boy",    " girl",   " child",  " car",     " cars",   " vehicle", " truck", " bus",
    " bicycle", " bike",  " motorcycle", " traffic", " road", " street", " sign", " light",
    " red",    " green",  " blue",   " yellow",  " white",  " black",   " color", " wearing",
    " sweater", " shirt", " jacket", " standing", " walking", " running", " riding", " sitting",
    " holding", " count",  " detect", " find",   " locate", " describe", " action", " activity",
    " left",   " right",  " top",    " bottom",  " corner", " center",  " near",  " next",
    " dog",    " cat",    " bird",   " tree",    " building", " airplane", " plane", " airport",
    " question", " answer", " yes",  " no",      " please", " show",    " lost",  " camera",
    " stream", " chunk",  " object", " objects", " class",  " label",   " box",   " bounding",
};
}  // namespace

Tokenizer::Tokenizer() {
  auto add = [this](const std::string& piece) {
    const int32_t id = static_cast<int32_t>(pieces_.size());
    pieces_.push_back(piece);
    if (!piece.empty()) {
      lookup_[piece] = id;
      max_piece_len_ = std::max(max_piece_len_, piece.size());
    }
  };
  add("");  // pad
  add("");  // eos
  add("");  // unk
  // Printable ASCII bytes + newline as single-character pieces: the byte
  // fallback that makes every printable string encodable.
  for (char c = ' '; c <= '~'; ++c) {
    add(std::string(1, c));
  }
  add("\n");
  for (const char* word : kWords) {
    add(word);
  }
}

std::vector<int32_t> Tokenizer::Encode(const std::string& text) const {
  std::vector<int32_t> tokens;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t max_len = std::min(max_piece_len_, text.size() - pos);
    int32_t best = kUnkToken;
    size_t best_len = 1;
    for (size_t len = max_len; len >= 1; --len) {
      auto it = lookup_.find(text.substr(pos, len));
      if (it != lookup_.end()) {
        best = it->second;
        best_len = len;
        break;
      }
    }
    tokens.push_back(best);
    pos += best_len;
  }
  return tokens;
}

std::string Tokenizer::Decode(const std::vector<int32_t>& tokens) const {
  std::string text;
  for (int32_t token : tokens) {
    if (token == kUnkToken) {
      text += "\xEF\xBF\xBD";
      continue;
    }
    if (token >= 0 && token < static_cast<int32_t>(pieces_.size())) {
      text += pieces_[static_cast<size_t>(token)];
    }
  }
  return text;
}

const std::string& Tokenizer::piece(int32_t token) const {
  VLORA_CHECK(token >= 0 && token < static_cast<int32_t>(pieces_.size()));
  return pieces_[static_cast<size_t>(token)];
}

}  // namespace vlora

// Deterministic greedy longest-match tokenizer.
//
// The paper's LMMs inherit a natural-language interface from their LLM; this
// tokenizer provides that interface for the examples without shipping a
// trained BPE model. The vocabulary is reserved tokens + every printable
// ASCII byte + a built-in list of common words (stored GPT-style with a
// leading space), and encoding is greedy longest-match over the raw string —
// which makes Decode(Encode(s)) == s exact for any printable input.

#ifndef VLORA_SRC_ENGINE_TOKENIZER_H_
#define VLORA_SRC_ENGINE_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace vlora {

class Tokenizer {
 public:
  Tokenizer();

  static constexpr int32_t kPadToken = 0;
  static constexpr int32_t kEosToken = 1;
  static constexpr int32_t kUnkToken = 2;

  // Greedy longest-match encoding. Unencodable bytes map to kUnkToken.
  std::vector<int32_t> Encode(const std::string& text) const;

  // Inverse of Encode; kUnkToken decodes to "\xEF\xBF\xBD" (U+FFFD), control
  // tokens to "".
  std::string Decode(const std::vector<int32_t>& tokens) const;

  int64_t vocab_size() const { return static_cast<int64_t>(pieces_.size()); }
  const std::string& piece(int32_t token) const;

 private:
  std::vector<std::string> pieces_;                  // token id -> piece
  std::unordered_map<std::string, int32_t> lookup_;  // piece -> token id
  size_t max_piece_len_ = 1;
};

}  // namespace vlora

#endif  // VLORA_SRC_ENGINE_TOKENIZER_H_
